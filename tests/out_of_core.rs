//! Proves the out-of-core promise end to end: a `.tns` input whose full
//! coordinate tensor would blow a memory budget can be **streamed** —
//! scanned, tiled, compiled, and factorized — with the host's peak live
//! heap bounded by roughly one tile, not the whole tensor.
//!
//! Method: a counting `#[global_allocator]`
//! ([`cstf_telemetry::alloc::CountingAlloc`]) tracks live heap bytes;
//! scoped [`HeapRegion`]s watermark the in-core parse and the streamed
//! read of the same file, and the streamed watermark must stay under a
//! budget that the in-core parse provably exceeds. Everything runs inside
//! one `#[test]` so no concurrent test pollutes the global live-byte
//! count.

use cstf_core::{Auntf, AuntfConfig, TensorFormat};
use cstf_device::{Device, DeviceSpec};
use cstf_telemetry::alloc::{live_bytes, region_peak, reset_region_peaks, HeapRegion};
use cstf_tensor::{read_tns_file, read_tns_tiles_file, write_tns_file, SparseTensor};

#[global_allocator]
static ALLOC: cstf_telemetry::alloc::CountingAlloc = cstf_telemetry::alloc::CountingAlloc;

/// Deterministic tensor with enough distinct nonzeros that one COO copy
/// dominates every fixed overhead (buffers, histograms, shape vectors).
fn big_tensor(nnz_target: usize) -> SparseTensor {
    let shape = vec![500, 400, 300];
    let mut state: u64 = 0x00c_bee5;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut seen = std::collections::HashSet::new();
    let mut idx = vec![Vec::new(); 3];
    let mut vals = Vec::new();
    while vals.len() < nnz_target {
        let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
        if seen.insert(c.clone()) {
            for (m, &ci) in c.iter().enumerate() {
                idx[m].push(ci);
            }
            vals.push(f64::from(next() % 1000) / 128.0 + 0.01);
        }
    }
    SparseTensor::new(shape, idx, vals)
}

#[test]
fn streamed_ingestion_stays_under_a_budget_the_full_coo_exceeds() {
    let nnz = 40_000usize;
    let tiles = 8usize;
    let dir = std::env::temp_dir().join(format!("cstf-ooc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("big.tns");
    {
        let x = big_tensor(nnz);
        write_tns_file(&x, &path).unwrap();
    } // the generator's COO copy is dead before anything is measured

    reset_region_peaks();
    let baseline = live_bytes();

    // In-core parse: the whole coordinate tensor is resident at once.
    let in_core_shape;
    {
        let _r = HeapRegion::enter("ooc-in-core-read");
        let x = read_tns_file(&path).unwrap();
        assert_eq!(x.nnz(), nnz);
        in_core_shape = x.shape().to_vec();
    }

    // Streamed read at the same semantics: at most one tile plus the
    // O(sum of mode lengths) scan histogram is ever live.
    let mut tile_nnz = 0usize;
    let scan = {
        let _r = HeapRegion::enter("ooc-streamed-read");
        read_tns_tiles_file(&path, tiles, |_, _, _, sub| {
            tile_nnz += sub.nnz();
            Ok(())
        })
        .unwrap()
    };
    assert_eq!(scan.shape, in_core_shape);
    assert_eq!(tile_nnz, scan.nmodes() * nnz, "every mode's tiles partition the nonzeros");

    // The budget: half of one full COO copy, on top of whatever the test
    // harness had live. The in-core parse must exceed it (it holds the
    // whole tensor), the streamed read must fit (it holds ~1/8th).
    let full_coo = scan.coo_bytes();
    let budget = baseline + full_coo / 2;
    let in_core_peak = region_peak("ooc-in-core-read");
    let streamed_peak = region_peak("ooc-streamed-read");
    assert!(
        in_core_peak > budget,
        "in-core parse must exceed the budget: peak {in_core_peak}, budget {budget} \
         (baseline {baseline}, full COO {full_coo})"
    );
    assert!(
        streamed_peak < budget,
        "streamed read must fit the budget: peak {streamed_peak}, budget {budget} \
         (baseline {baseline}, full COO {full_coo})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streamed_construction_factorizes_to_in_core_bits() {
    let dir = std::env::temp_dir().join(format!("cstf-ooc-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("eq.tns");
    let x = big_tensor(2_000);
    write_tns_file(&x, &path).unwrap();

    for format in [TensorFormat::Coo, TensorFormat::Blco] {
        let cfg = AuntfConfig { rank: 3, max_iters: 2, seed: 11, format, ..Default::default() };
        let incore =
            Auntf::new(x.clone(), cfg.clone()).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        let streamed = Auntf::from_tns_file_tiled(&path, AuntfConfig { tiles: 4, ..cfg })
            .unwrap()
            .factorize(&Device::new(DeviceSpec::h100()))
            .unwrap();
        assert_eq!(incore.fits.len(), streamed.fits.len());
        for (a, b) in incore.fits.iter().zip(&streamed.fits) {
            assert_eq!(a.to_bits(), b.to_bits(), "{format:?}: fit history must match");
        }
        for (fa, fb) in incore.model.factors.iter().zip(&streamed.model.factors) {
            for (a, b) in fa.as_slice().iter().zip(fb.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{format:?}: factor bits must match");
            }
        }
        assert_eq!(streamed.tiling.tiles, 4);
        assert!(streamed.tiling.tile_transfers > 0);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
