//! Property-based tests on the cross-crate pipeline invariants.

use cstf_core::admm::AdmmConfig;
use cstf_core::{
    admm_update, AdmmWorkspace, Auntf, AuntfConfig, Constraint, TensorFormat, UpdateMethod,
};
use cstf_device::{Device, DeviceSpec};
use cstf_formats::{mttkrp_ref, Alto, Blco, Csf};
use cstf_linalg::Mat;
use cstf_tensor::SparseTensor;
use proptest::prelude::*;

/// Strategy: a random small sparse tensor with distinct coordinates.
fn tensor_strategy() -> impl Strategy<Value = SparseTensor> {
    (2usize..12, 2usize..12, 2usize..12, 1usize..80, any::<u64>()).prop_map(
        |(d0, d1, d2, nnz, seed)| {
            let shape = vec![d0, d1, d2];
            let mut state = seed | 1;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u32
            };
            let mut seen = std::collections::HashSet::new();
            let mut idx = vec![Vec::new(); 3];
            let mut vals = Vec::new();
            for _ in 0..nnz {
                let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
                if seen.insert(c.clone()) {
                    for (m, &ci) in c.iter().enumerate() {
                        idx[m].push(ci);
                    }
                    vals.push(f64::from(next() % 100) / 25.0 + 0.04);
                }
            }
            SparseTensor::new(shape, idx, vals)
        },
    )
}

fn factors_for(shape: &[usize], rank: usize, seed: u64) -> Vec<Mat> {
    cstf_core::auntf::seeded_factors(shape, rank, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four formats compute the same MTTKRP on arbitrary tensors.
    #[test]
    fn formats_agree_on_mttkrp(x in tensor_strategy(), mode in 0usize..3, seed in any::<u64>()) {
        let f = factors_for(x.shape(), 4, seed);
        let reference = mttkrp_ref(&x, &f, mode);
        let csf = Csf::from_coo(&x, mode).mttkrp(&f);
        let alto = Alto::from_coo(&x).mttkrp(&f, mode);
        let blco = Blco::from_coo(&x).mttkrp(&f, mode);
        for (name, out) in [("csf", csf), ("alto", alto), ("blco", blco)] {
            for i in 0..reference.rows() {
                for j in 0..reference.cols() {
                    let (a, b) = (reference[(i, j)], out[(i, j)]);
                    prop_assert!(
                        (a - b).abs() < 1e-9 * (1.0 + a.abs()),
                        "{name} differs at ({i},{j}): {a} vs {b}"
                    );
                }
            }
        }
    }

    /// Fit never exceeds 1, and the returned factors are always finite and
    /// non-negative under the non-negativity constraint.
    #[test]
    fn factorization_invariants(x in tensor_strategy(), seed in any::<u64>()) {
        let cfg = AuntfConfig {
            rank: 3,
            max_iters: 4,
            update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
            format: TensorFormat::Blco,
            seed,
            ..Default::default()
        };
        let out = Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        for fit in &out.fits {
            prop_assert!(*fit <= 1.0 + 1e-9, "fit {fit} exceeds 1");
            prop_assert!(fit.is_finite());
        }
        for f in &out.model.factors {
            prop_assert!(f.all_finite());
            prop_assert!(f.is_nonnegative(1e-12));
        }
        prop_assert!(out.model.lambda.iter().all(|l| l.is_finite() && *l >= 0.0));
    }

    /// FROSTT round-trip: write + read preserves every nonzero.
    #[test]
    fn tns_roundtrip(x in tensor_strategy()) {
        let mut buf = Vec::new();
        cstf_tensor::write_tns(&x, &mut buf).unwrap();
        let back = cstf_tensor::read_tns(buf.as_slice()).unwrap();
        prop_assert_eq!(back.nnz(), x.nnz());
        for k in 0..x.nnz() {
            prop_assert_eq!(back.get(&x.coord(k)), x.values()[k]);
        }
    }

    /// The single-sweep fused inner iteration is bitwise-identical to the
    /// multi-kernel path — H, U, and the iteration count all match exactly
    /// — for every OF x PI variant and every constraint kind.
    #[test]
    fn single_sweep_is_bitwise_neutral(
        x in tensor_strategy(),
        of in any::<bool>(),
        pi in any::<bool>(),
        which in 0usize..3,
        seed in any::<u64>(),
    ) {
        let f = factors_for(x.shape(), 3, seed);
        let grams: Vec<Mat> = f.iter().map(cstf_linalg::gram::gram).collect();
        let s = cstf_linalg::hadamard_of_grams(&grams, 0);
        let m = mttkrp_ref(&x, &f, 0);
        let constraint = [
            Constraint::NonNegative,
            Constraint::SparseL1 { mu: 0.25 },
            Constraint::Simplex,
        ][which];
        let dev = Device::new(DeviceSpec::h100());
        let run = |sweep: bool| {
            let cfg = AdmmConfig {
                operation_fusion: of,
                pre_inversion: pi,
                single_sweep: sweep,
                constraint,
                tol: 0.0, // fixed iteration count: residual sums are order-sensitive
                ..AdmmConfig::cuadmm()
            };
            let mut h = f[0].clone();
            let mut u = Mat::zeros(h.rows(), h.cols());
            let mut ws = AdmmWorkspace::new(h.rows(), h.cols());
            let stats = admm_update(&dev, &cfg, &m, &s, &mut h, &mut u, &mut ws).unwrap();
            (h, u, stats.iters)
        };
        let (ha, ua, ia) = run(false);
        let (hb, ub, ib) = run(true);
        prop_assert_eq!(ha.as_slice(), hb.as_slice(), "H differs (of={} pi={})", of, pi);
        prop_assert_eq!(ua.as_slice(), ub.as_slice(), "U differs (of={} pi={})", of, pi);
        prop_assert_eq!(ia, ib);
    }

    /// Forcing the lane backend produces bitwise-identical factorizations
    /// to the scalar backend across every format, rank tier, and ADMM
    /// variant: the f64x4 bodies vectorize only across independent output
    /// elements and never reorder a reduction (DESIGN §13). On stable
    /// (feature `simd` off) the lane force is a no-op and the test
    /// degenerates to determinism of repeated runs — still worth holding.
    #[test]
    fn simd_backend_is_bitwise_neutral(
        x in tensor_strategy(),
        which_format in 0usize..6,
        which_rank in 0usize..3,
        fused in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use cstf_linalg::simd::{self, Backend};
        let format = [
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::CsfOne,
            TensorFormat::HiCoo,
            TensorFormat::Alto,
            TensorFormat::Blco,
        ][which_format];
        let rank = [8usize, 16, 64][which_rank];
        let admm = if fused { AdmmConfig::cuadmm_fused() } else { AdmmConfig::cuadmm() };
        let run = |backend: Backend| {
            simd::set_backend_override(Some(backend));
            let cfg = AuntfConfig {
                rank,
                max_iters: 2,
                update: UpdateMethod::Admm(admm),
                format,
                seed,
                ..Default::default()
            };
            let out = Auntf::new(x.clone(), cfg)
                .factorize(&Device::new(DeviceSpec::h100()))
                .unwrap();
            simd::set_backend_override(None);
            out
        };
        let a = run(Backend::Scalar);
        let b = run(Backend::Lanes);
        for (m, (fa, fb)) in a.model.factors.iter().zip(&b.model.factors).enumerate() {
            for (i, (va, vb)) in fa.as_slice().iter().zip(fb.as_slice()).enumerate() {
                prop_assert_eq!(
                    va.to_bits(), vb.to_bits(),
                    "factor {} elem {} differs: {} vs {} ({:?} r{} fused={})",
                    m, i, va, vb, format, rank, fused
                );
            }
        }
        for (la, lb) in a.model.lambda.iter().zip(&b.model.lambda) {
            prop_assert_eq!(la.to_bits(), lb.to_bits(), "lambda differs");
        }
    }

    /// The ADMM update is invariant to kernel granularity: fused and
    /// unfused paths produce bitwise-identical factors on arbitrary inputs.
    #[test]
    fn fusion_is_bitwise_neutral(x in tensor_strategy(), seed in any::<u64>()) {
        let run = |fusion: bool| {
            let cfg = AuntfConfig {
                rank: 3,
                max_iters: 3,
                update: UpdateMethod::Admm(AdmmConfig {
                    operation_fusion: fusion,
                    pre_inversion: true,
                    ..AdmmConfig::cuadmm()
                }),
                format: TensorFormat::Csf,
                seed,
                ..Default::default()
            };
            Auntf::new(x.clone(), cfg).factorize(&Device::new(DeviceSpec::a100())).unwrap()
        };
        let a = run(false);
        let b = run(true);
        for (fa, fb) in a.model.factors.iter().zip(&b.model.factors) {
            prop_assert_eq!(fa.as_slice(), fb.as_slice());
        }
    }
}
