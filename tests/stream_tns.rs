//! `.tns` round-trip fidelity and parse-allocation pins.
//!
//! 1. **Extreme-value round-trip** (proptest): subnormals, near-overflow
//!    magnitudes (±1e308), and full-mantissa doubles survive
//!    `write_tns` → `read_tns` **bit-exactly** — Rust's default `f64`
//!    formatting emits the shortest string that re-parses to the same
//!    bits — and the streaming scan/tile passes see the same bits as the
//!    in-core parse.
//! 2. **Pre-sizing pin** (counting `#[global_allocator]`): the byte-length
//!    heuristic of `read_tns_sized` keeps the parse's peak live heap below
//!    the unsized parse's doubling-reallocation cascade on the same input.
//!    This pins the reader bugfix: shape folding in the parse loop, no
//!    post-parse re-scan, no growth cascade.

use cstf_telemetry::alloc::{live_bytes, region_peak, reset_region_peaks, HeapRegion};
use cstf_tensor::{read_tns, read_tns_sized, read_tns_tile, scan_tns, write_tns, SparseTensor};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: cstf_telemetry::alloc::CountingAlloc = cstf_telemetry::alloc::CountingAlloc;

/// Doubles that stress the decimal round-trip: subnormals, the smallest
/// and largest normal magnitudes, long mantissas, and arbitrary finite
/// bit patterns.
fn extreme_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(5e-324), // smallest positive subnormal
        Just(-5e-324),
        Just(f64::MIN_POSITIVE),       // smallest normal
        Just(f64::MIN_POSITIVE / 8.0), // a deeper subnormal
        Just(1e308),
        Just(-1e308),
        Just(f64::MAX),
        Just(f64::MIN),
        Just(std::f64::consts::PI), // full-mantissa irrational
        Just(0.1 + 0.2),            // classic non-terminating binary fraction
        Just(1.0 / 3.0),
        any::<i64>().prop_map(|b| f64::from_bits(b as u64)),
    ]
    .prop_filter("values must be finite and nonzero", |v| v.is_finite() && *v != 0.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write → read recovers every value bit-for-bit, in-core and
    /// streamed alike.
    #[test]
    fn extreme_values_round_trip_bit_exactly(
        vals in proptest::collection::vec(extreme_f64(), 1..60),
    ) {
        // Distinct coordinates laid out deterministically from the index.
        let n = vals.len();
        let shape = vec![n, 3, 2];
        let idx = vec![
            (0..n as u32).collect::<Vec<_>>(),
            (0..n as u32).map(|k| k % 3).collect(),
            (0..n as u32).map(|k| k % 2).collect(),
        ];
        let x = SparseTensor::new(shape, idx, vals);

        let mut buf = Vec::new();
        write_tns(&x, &mut buf).unwrap();

        // In-core parse: same bits, same order.
        let back = read_tns(buf.as_slice()).unwrap();
        prop_assert_eq!(back.nnz(), x.nnz());
        for k in 0..x.nnz() {
            prop_assert_eq!(back.coord(k), x.coord(k));
            prop_assert_eq!(
                back.values()[k].to_bits(),
                x.values()[k].to_bits(),
                "value {} reparsed as {}", x.values()[k], back.values()[k]
            );
        }

        // Streaming passes: the scan accepts the same input, and every
        // mode-0 tile carries the same bits as the in-core parse.
        let scan = scan_tns(buf.as_slice()).unwrap();
        prop_assert_eq!(&scan.shape, &back.shape().to_vec());
        prop_assert_eq!(scan.nnz, back.nnz());
        for rows in scan.tile_ranges(0, 3) {
            let sub = read_tns_tile(buf.as_slice(), &scan, 0, &rows).unwrap();
            for k in 0..sub.nnz() {
                let orig = sub.mode_indices(0)[k] as usize; // coordinate == nnz index by layout
                prop_assert_eq!(sub.values()[k].to_bits(), x.values()[orig].to_bits());
            }
        }
    }
}

/// One `.tns` text with uniform-width lines so the byte-length heuristic
/// estimates the line count accurately.
fn uniform_tns(nnz: usize) -> String {
    let mut s = String::new();
    let mut state: u64 = 0x7e57;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for _ in 0..nnz {
        let i = next() % 900 + 100; // fixed 3-digit coordinates
        let j = next() % 900 + 100;
        let k = next() % 900 + 100;
        s.push_str(&format!("{i} {j} {k} {:.6e}\n", f64::from(next() % 10_000) / 64.0 + 0.5));
    }
    s
}

#[test]
fn sized_parse_peaks_below_the_unsized_growth_cascade() {
    // Just past a power of two, where the unsized parse's doubling growth
    // transiently holds old + new capacity (~3x the final size) while the
    // pre-sized parse allocates once at the estimate.
    let text = uniform_tns(33_000);

    reset_region_peaks();
    let baseline = live_bytes();
    {
        let _r = HeapRegion::enter("tns-unsized-parse");
        let x = read_tns(text.as_bytes()).unwrap();
        assert_eq!(x.nnz(), 33_000);
    }
    {
        let _r = HeapRegion::enter("tns-sized-parse");
        let x = read_tns_sized(text.as_bytes(), Some(text.len() as u64)).unwrap();
        assert_eq!(x.nnz(), 33_000);
    }
    let unsized_peak = region_peak("tns-unsized-parse") - baseline;
    let sized_peak = region_peak("tns-sized-parse") - baseline;
    assert!(
        sized_peak < unsized_peak,
        "pre-sizing must beat the growth cascade: sized peak {sized_peak}, \
         unsized peak {unsized_peak}"
    );
    // And the pre-sized parse must be near-tight: well under 2x the final
    // coordinate payload (3 index vectors of 4 bytes + values of 8).
    let payload = 33_000u64 * (3 * 4 + 8);
    assert!(
        sized_peak < payload * 2,
        "sized peak {sized_peak} should be close to the {payload}-byte payload"
    );
}
