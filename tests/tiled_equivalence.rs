//! Property: the tiled out-of-core factorization is **bitwise-identical**
//! to the in-core run — for arbitrary small tensors, every storage format,
//! both ADMM execution modes (generic and fused cuADMM), ranks 1–4, and
//! tile counts 1/2/3/5 — and a run resumed from an *in-core* checkpoint
//! with tiling enabled (or vice versa) replays the remaining iterations to
//! the same bits.
//!
//! This is the CI gate for the exactness argument of DESIGN.md §16: tiling
//! only re-orders which nonzeros each kernel launch sees, and every tile
//! commits exactly its owned output rows, so the committed MTTKRP panel is
//! the same bits as the one-shot kernel's.

use cstf_core::admm::AdmmConfig;
use cstf_core::{
    Auntf, AuntfConfig, CheckpointConfig, FactorizeOutput, TensorFormat, UpdateMethod,
};
use cstf_device::{Device, DeviceSpec};
use cstf_tensor::SparseTensor;
use proptest::prelude::*;

/// A random small sparse tensor with 3 or 4 modes and distinct coords.
fn tensor_strategy() -> impl Strategy<Value = SparseTensor> {
    (3usize..5, any::<u64>(), 1usize..300).prop_map(|(nmodes, seed, nnz)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let shape: Vec<usize> = (0..nmodes).map(|_| 3 + (next() % 9) as usize).collect();
        let mut seen = std::collections::HashSet::new();
        let mut idx = vec![Vec::new(); nmodes];
        let mut vals = Vec::new();
        for _ in 0..nnz {
            let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
            if seen.insert(c.clone()) {
                for (m, &ci) in c.iter().enumerate() {
                    idx[m].push(ci);
                }
                vals.push(f64::from(next() % 100) / 25.0 + 0.04);
            }
        }
        SparseTensor::new(shape, idx, vals)
    })
}

fn format_strategy() -> impl Strategy<Value = TensorFormat> {
    prop_oneof![
        Just(TensorFormat::Coo),
        Just(TensorFormat::Csf),
        Just(TensorFormat::CsfOne),
        Just(TensorFormat::HiCoo),
        Just(TensorFormat::Alto),
        Just(TensorFormat::Blco),
    ]
}

fn assert_bitwise(a: &FactorizeOutput, b: &FactorizeOutput) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.fits.len(), b.fits.len());
    for (x, y) in a.fits.iter().zip(&b.fits) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "fit differs: {} vs {}", x, y);
    }
    for (x, y) in a.model.lambda.iter().zip(&b.model.lambda) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "lambda differs: {} vs {}", x, y);
    }
    for (fa, fb) in a.model.factors.iter().zip(&b.model.factors) {
        prop_assert_eq!(fa.rows(), fb.rows());
        for (x, y) in fa.as_slice().iter().zip(fb.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "factor entry differs: {} vs {}", x, y);
        }
    }
    Ok(())
}

mod equivalence {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Tiled == in-core, bitwise, for every format, both ADMM modes,
        /// and tile counts 1/2/3/5 (5 exceeds some mode lengths,
        /// exercising empty tiles).
        #[test]
        fn tiled_is_bitwise_identical_to_in_core(
            x in tensor_strategy(),
            format in format_strategy(),
            fused in any::<bool>(),
            rank in 1usize..5,
            seed in any::<u64>(),
            kidx in 0usize..4,
        ) {
            let tiles = [1usize, 2, 3, 5][kidx];
            let admm = if fused { AdmmConfig::cuadmm_fused() } else { AdmmConfig::generic() };
            let cfg = AuntfConfig {
                rank,
                max_iters: 3,
                seed,
                format,
                update: UpdateMethod::Admm(admm),
                ..Default::default()
            };
            let incore = Auntf::new(x.clone(), cfg.clone())
                .factorize(&Device::new(DeviceSpec::h100()))
                .unwrap();
            let dev = Device::new(DeviceSpec::h100());
            let tiled =
                Auntf::new(x, AuntfConfig { tiles, ..cfg }).factorize(&dev).unwrap();
            assert_bitwise(&incore, &tiled)?;
            prop_assert_eq!(tiled.tiling.tiles, tiles);
            if tiles > 1 {
                prop_assert!(tiled.tiling.tile_transfers > 0, "tiled run must stream");
                prop_assert!(tiled.tiling.streamed_bytes > 0.0);
                prop_assert!(tiled.tiling.transfer_raw_s >= tiled.tiling.transfer_exposed_s);
            } else {
                prop_assert_eq!(tiled.tiling.tile_transfers, 0, "K=1 is the legacy path");
            }
        }
    }
}

mod checkpoint_interop {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// An in-core checkpoint resumed *tiled* (and a tiled checkpoint
        /// resumed *in-core*) replays the remaining iterations to the bits
        /// of an uninterrupted in-core run: the model fingerprint excludes
        /// the tile count, so a budgeted restart can pick a different K.
        #[test]
        fn tiled_resume_from_in_core_checkpoint_is_bitwise(
            x in tensor_strategy(),
            format in format_strategy(),
            rank in 1usize..4,
            seed in any::<u64>(),
            kidx in 0usize..3,
        ) {
            let tiles = [2usize, 3, 5][kidx];
            let dir = std::env::temp_dir().join(format!(
                "cstf-tiled-prop-{}-{seed:x}-{tiles}-{format:?}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let full = AuntfConfig { rank, max_iters: 5, seed, format, ..Default::default() };
            let uninterrupted = Auntf::new(x.clone(), full.clone())
                .factorize(&Device::new(DeviceSpec::h100()))
                .unwrap();

            // Leg 1: three in-core iterations, snapshotting.
            let short = Auntf::new(x.clone(), AuntfConfig { max_iters: 3, ..full.clone() });
            let ck = CheckpointConfig::new(&dir, 3);
            short
                .factorize_checkpointed(&Device::new(DeviceSpec::h100()), &ck, false)
                .unwrap();

            // Leg 2: resume the same run tiled.
            let resumed = Auntf::new(x.clone(), AuntfConfig { tiles, ..full.clone() })
                .factorize_checkpointed(&Device::new(DeviceSpec::h100()), &ck, true)
                .unwrap();
            assert_bitwise(&uninterrupted, &resumed)?;

            // Leg 3: the reverse hand-off — tiled checkpoint, in-core resume.
            let _ = std::fs::remove_dir_all(&dir);
            let short_tiled =
                Auntf::new(x.clone(), AuntfConfig { max_iters: 3, tiles, ..full.clone() });
            short_tiled
                .factorize_checkpointed(&Device::new(DeviceSpec::h100()), &ck, false)
                .unwrap();
            let resumed_incore = Auntf::new(x, full)
                .factorize_checkpointed(&Device::new(DeviceSpec::h100()), &ck, true)
                .unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            assert_bitwise(&uninterrupted, &resumed_incore)?;
        }
    }
}
