//! Proves the zero-allocation hot path end to end: once workspaces are
//! grown (first outer iteration), a steady-state AUNTF outer iteration
//! performs **zero** heap allocations.
//!
//! Method: a counting `#[global_allocator]` wraps the system allocator;
//! we run `factorize` with `max_iters = 1` and `max_iters = 2` on fresh
//! but identically configured instances and assert the allocation *counts*
//! are equal — i.e. the second outer iteration allocated nothing. (Counts,
//! not bytes: `Vec::with_capacity(max_iters)` sizes differ by design.)
//!
//! The tensor is small enough that every kernel stays below the
//! parallelism thresholds in `cstf_linalg::tuning`, so no Rayon jobs are
//! spawned during the measured window; a warm-up run first absorbs
//! one-time global state (Rayon registry, lazy statics).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use cstf_core::admm::AdmmConfig;
use cstf_core::{Auntf, AuntfConfig, TensorFormat, UpdateMethod};
use cstf_device::{Device, DeviceSpec};
use cstf_tensor::SparseTensor;

/// Small deterministic tensor: every kernel stays on its serial path.
fn small_tensor() -> SparseTensor {
    let shape = vec![12, 10, 8];
    let mut state: u64 = 0x5eed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut seen = std::collections::HashSet::new();
    let mut idx = vec![Vec::new(); 3];
    let mut vals = Vec::new();
    for _ in 0..300 {
        let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
        if seen.insert(c.clone()) {
            for (m, &ci) in c.iter().enumerate() {
                idx[m].push(ci);
            }
            vals.push(f64::from(next() % 100) / 50.0 + 0.02);
        }
    }
    SparseTensor::new(shape, idx, vals)
}

fn config(max_iters: usize, format: TensorFormat, admm: AdmmConfig) -> AuntfConfig {
    AuntfConfig {
        rank: 4,
        max_iters,
        update: UpdateMethod::Admm(admm),
        format,
        seed: 7,
        ..Default::default()
    }
}

/// Allocation count of one full `factorize` call (setup + iterations).
fn allocs_for(max_iters: usize, format: TensorFormat, admm: AdmmConfig) -> usize {
    let x = small_tensor();
    let auntf = Auntf::new(x, config(max_iters, format, admm));
    let dev = Device::new(DeviceSpec::h100());
    let before = ALLOCS.load(Ordering::SeqCst);
    let out = auntf.factorize(&dev).unwrap();
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(out.iters, max_iters, "run must not stop early");
    after - before
}

/// The fiber-binned CSF schedule and BLCO's heavy-row bins are built
/// once at format-construction time: repeated `mttkrp_into` calls on a
/// warm workspace must not allocate, even when a tiny cutoff forces the
/// segmented schedule and saturated row bins that the default thresholds
/// would leave dormant on this small tensor.
#[test]
fn binned_mttkrp_steady_state_allocates_nothing() {
    use cstf_formats::{Blco, Csf, MttkrpWorkspace};
    use cstf_linalg::Mat;

    let x = small_tensor();
    let rank = 4;
    let factors: Vec<Mat> = x
        .shape()
        .iter()
        .map(|&d| Mat::from_fn(d, rank, |i, j| ((i * 31 + j * 7) % 13) as f64 / 13.0 + 0.1))
        .collect();

    // Cutoff of 4 nnz: most root slices of the 300-nnz tensor are heavy,
    // so the schedule contains per-child segments, and most BLCO rows are
    // binned heavy (capped at the bin budget).
    let csf = Csf::from_coo_with_cutoff(&x, 0, 4);
    let blco = Blco::from_coo_with_cutoff(&x, 4);
    let mut out = Mat::zeros(x.shape()[0], rank);
    let mut ws = MttkrpWorkspace::new();

    // Warm-up grows the workspace buffers to their steady-state sizes.
    csf.mttkrp_into(&factors, &mut out, &mut ws);
    let before = ALLOCS.load(Ordering::SeqCst);
    csf.mttkrp_into(&factors, &mut out, &mut ws);
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "segmented CSF mttkrp allocated on a warm workspace");

    for mode in 0..x.nmodes() {
        let mut out = Mat::zeros(x.shape()[mode], rank);
        blco.mttkrp_into(&factors, mode, &mut out, &mut ws);
        let before = ALLOCS.load(Ordering::SeqCst);
        blco.mttkrp_into(&factors, mode, &mut out, &mut ws);
        let after = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "slotted BLCO mttkrp (mode {mode}) allocated on a warm workspace"
        );
    }
}

#[test]
fn steady_state_outer_iteration_allocates_nothing() {
    for format in [
        TensorFormat::Coo,
        TensorFormat::Csf,
        TensorFormat::CsfOne,
        TensorFormat::HiCoo,
        TensorFormat::Alto,
        TensorFormat::Blco,
    ] {
        // Both ADMM execution modes must be allocation-free: the paper's
        // multi-kernel cuADMM and the single-sweep extension.
        for admm in [AdmmConfig::cuadmm(), AdmmConfig::cuadmm_fused()] {
            // Warm-up: Rayon's global registry and any lazy statics
            // initialize on the first factorize so they don't skew the
            // measured runs.
            let _ = allocs_for(1, format, admm);

            let one = allocs_for(1, format, admm);
            let two = allocs_for(2, format, admm);
            assert_eq!(
                two,
                one,
                "{format:?} sweep={}: the second (steady-state) outer iteration made {} heap \
                 allocation(s); the hot path must not allocate",
                admm.single_sweep,
                two - one
            );
        }
    }
}
