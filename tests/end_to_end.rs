//! Cross-crate integration tests: data generation -> format compilation ->
//! factorization -> model quality, across the full stack.

use cstf_core::admm::AdmmConfig;
use cstf_core::{Auntf, AuntfConfig, Constraint, HalsConfig, MuConfig, TensorFormat, UpdateMethod};
use cstf_data::{by_name, SynthSpec};
use cstf_device::{Device, DeviceSpec, Phase};

fn workload(seed: u64) -> cstf_tensor::SparseTensor {
    cstf_data::generate(&SynthSpec {
        shape: vec![60, 50, 40],
        nnz: 25_000,
        rank: 5,
        noise: 0.02,
        factor_sparsity: 0.3,
        seed,
    })
}

#[test]
fn full_pipeline_produces_nonnegative_improving_model() {
    let x = workload(1);
    let cfg = AuntfConfig {
        rank: 8,
        max_iters: 12,
        update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
        format: TensorFormat::Blco,
        seed: 2,
        ..Default::default()
    };
    let dev = Device::new(DeviceSpec::h100());
    let out = Auntf::new(x, cfg).factorize(&dev).unwrap();

    assert!(
        out.fits.windows(2).filter(|w| w[1] < w[0] - 1e-6).count() <= 1,
        "fit should be (almost) monotone: {:?}",
        out.fits
    );
    assert!(out.fits.last().unwrap() > &out.fits[0]);
    for f in &out.model.factors {
        assert!(f.is_nonnegative(1e-12));
        assert!(f.all_finite());
    }
}

#[test]
fn all_formats_and_updates_cross_product_agree_on_quality() {
    let x = workload(2);
    let mut fits = Vec::new();
    for format in [TensorFormat::Coo, TensorFormat::Csf, TensorFormat::Alto, TensorFormat::Blco] {
        let cfg = AuntfConfig {
            rank: 6,
            max_iters: 8,
            update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
            format,
            seed: 3,
            ..Default::default()
        };
        let out = Auntf::new(x.clone(), cfg).factorize(&Device::new(DeviceSpec::a100())).unwrap();
        fits.push(*out.fits.last().unwrap());
    }
    for f in &fits[1..] {
        assert!((f - fits[0]).abs() < 1e-5, "format fits diverge: {fits:?}");
    }
}

#[test]
fn catalog_tensors_factorize_on_every_device() {
    let x = by_name("Chicago").unwrap().generate_scaled(15_000, 4);
    for spec in DeviceSpec::table1() {
        let cfg = AuntfConfig {
            rank: 4,
            max_iters: 3,
            update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
            format: TensorFormat::Blco,
            seed: 1,
            ..Default::default()
        };
        let dev = Device::new(spec);
        let out = Auntf::new(x.clone(), cfg).factorize(&dev).unwrap();
        assert_eq!(out.iters, 3);
        assert!(dev.total_seconds() > 0.0);
    }
}

#[test]
fn update_schemes_all_reach_comparable_fits() {
    let x = workload(5);
    let mut results = Vec::new();
    for (name, update) in [
        ("admm", UpdateMethod::Admm(AdmmConfig::cuadmm())),
        ("mu", UpdateMethod::Mu(MuConfig::default())),
        ("hals", UpdateMethod::Hals(HalsConfig::default())),
    ] {
        let cfg = AuntfConfig {
            rank: 6,
            max_iters: 25,
            update,
            format: TensorFormat::Csf,
            seed: 7,
            ..Default::default()
        };
        let out = Auntf::new(x.clone(), cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        results.push((name, *out.fits.last().unwrap()));
    }
    let best = results.iter().map(|&(_, f)| f).fold(f64::NEG_INFINITY, f64::max);
    for (name, fit) in &results {
        assert!(best - fit < 0.25, "{name} fit {fit} far from best {best}: {results:?}");
    }
}

#[test]
fn l1_constraint_yields_sparser_model_than_nonneg() {
    let x = workload(6);
    let run = |constraint| {
        let cfg = AuntfConfig {
            rank: 6,
            max_iters: 15,
            update: UpdateMethod::Admm(AdmmConfig {
                constraint,
                inner_iters: 10,
                ..AdmmConfig::cuadmm()
            }),
            format: TensorFormat::Blco,
            seed: 9,
            ..Default::default()
        };
        Auntf::new(x.clone(), cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap()
    };
    let zeros = |out: &cstf_core::auntf::FactorizeOutput| {
        out.model.factors.iter().flat_map(|f| f.as_slice()).filter(|&&v| v.abs() < 1e-12).count()
    };
    let nn = run(Constraint::NonNegative);
    let l1 = run(Constraint::SparseL1 { mu: 1.0 });
    assert!(zeros(&l1) > zeros(&nn), "L1: {} zeros vs NN: {}", zeros(&l1), zeros(&nn));
}

#[test]
fn device_profile_accounts_every_phase_once_per_run() {
    let x = workload(7);
    let cfg = AuntfConfig {
        rank: 4,
        max_iters: 2,
        compute_fit: false,
        update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
        format: TensorFormat::Blco,
        seed: 1,
        ..Default::default()
    };
    let dev = Device::new(DeviceSpec::a100());
    Auntf::new(x.clone(), cfg).factorize(&dev).unwrap();

    // 2 outer iters x 3 modes = 6 MTTKRP launches.
    assert_eq!(dev.phase_totals(Phase::Mttkrp).launches, 6);
    // Normalize: once per mode visit.
    assert_eq!(dev.phase_totals(Phase::Normalize).launches, 6);
    // Gram: initial (3) + per mode visit hadamard (6) + post-update gram (6).
    assert_eq!(dev.phase_totals(Phase::Gram).launches, 15);
    // Transfers: tensor in, factors in, factors out.
    assert_eq!(dev.phase_totals(Phase::Transfer).launches, 3);
}

#[test]
fn frostt_roundtrip_preserves_factorization_input() {
    let x = workload(8);
    let mut buf = Vec::new();
    cstf_tensor::write_tns(&x, &mut buf).unwrap();
    let back = cstf_tensor::read_tns(buf.as_slice()).unwrap();
    assert_eq!(back.nnz(), x.nnz());

    let cfg = AuntfConfig {
        rank: 4,
        max_iters: 4,
        update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
        format: TensorFormat::Csf,
        seed: 5,
        ..Default::default()
    };
    let a = Auntf::new(x, cfg.clone()).factorize(&Device::new(DeviceSpec::h100())).unwrap();
    let b = Auntf::new(back, cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
    for (fa, fb) in a.fits.iter().zip(&b.fits) {
        assert!((fa - fb).abs() < 1e-9, "roundtrip changed the factorization");
    }
}
