//! Critical-path observatory invariants (DESIGN.md §17), over the same
//! tensor × format matrix as the tiled-equivalence suite:
//!
//! * serial, unfaulted runs: the DAG critical path IS the whole record
//!   stream — `critical_path_s == total_modeled_s` **bit-exactly** (both
//!   are the same left-to-right fold), with zero stall and zero idle;
//! * tiled runs: the DAG's per-link raw/exposed accounting reproduces
//!   `TilingReport.transfer_raw_s` / `transfer_exposed_s` **bitwise**
//!   (the unification gate for the ad-hoc tiled math);
//! * sharded runs: critical path <= serial total, every device satisfies
//!   `busy + stall + idle == span`, and every what-if projection is
//!   monotonically non-increasing;
//! * the `cstf critical-path` artifact and output are byte-deterministic
//!   across runs, and `nvlink=inf` on a 4-GPU run is strictly smaller.

use cstf_core::{Auntf, AuntfConfig, TensorFormat};
use cstf_device::{analyze, apply_what_ifs, ops_from_records, Device, DeviceSpec, OpSpec, WhatIf};
use cstf_device::{DeviceGroup, LinkModel};
use cstf_tensor::SparseTensor;
use proptest::prelude::*;

/// A random small sparse tensor with 3 or 4 modes and distinct coords.
fn tensor_strategy() -> impl Strategy<Value = SparseTensor> {
    (3usize..5, any::<u64>(), 1usize..300).prop_map(|(nmodes, seed, nnz)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let shape: Vec<usize> = (0..nmodes).map(|_| 3 + (next() % 9) as usize).collect();
        let mut seen = std::collections::HashSet::new();
        let mut idx = vec![Vec::new(); nmodes];
        let mut vals = Vec::new();
        for _ in 0..nnz {
            let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
            if seen.insert(c.clone()) {
                for (m, &ci) in c.iter().enumerate() {
                    idx[m].push(ci);
                }
                vals.push(f64::from(next() % 100) / 25.0 + 0.04);
            }
        }
        SparseTensor::new(shape, idx, vals)
    })
}

fn format_strategy() -> impl Strategy<Value = TensorFormat> {
    prop_oneof![
        Just(TensorFormat::Coo),
        Just(TensorFormat::Csf),
        Just(TensorFormat::CsfOne),
        Just(TensorFormat::HiCoo),
        Just(TensorFormat::Alto),
        Just(TensorFormat::Blco),
    ]
}

fn cfg(rank: usize, seed: u64, format: TensorFormat, tiles: usize) -> AuntfConfig {
    AuntfConfig { rank, max_iters: 3, seed, format, tiles, ..Default::default() }
}

mod serial_and_tiled {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Single device, unfaulted: the schedule has one stream, so the
        /// critical path is the whole stream and equals the serial total
        /// bit-exactly; stall and idle are exactly zero. For tiled runs
        /// the DAG's `h2d_tile` link accounting reproduces the engine's
        /// `TilingReport` folds bitwise.
        #[test]
        fn serial_critical_path_is_total_and_tiled_links_match_bitwise(
            x in tensor_strategy(),
            format in format_strategy(),
            rank in 1usize..5,
            seed in any::<u64>(),
            kidx in 0usize..4,
        ) {
            let tiles = [1usize, 2, 3, 5][kidx];
            let dev = Device::with_records(DeviceSpec::h100());
            let result =
                Auntf::new(x, cfg(rank, seed, format, tiles)).factorize(&dev).unwrap();
            let capture = dev.take_run();
            let ops = ops_from_records(0, &capture.records);
            let dag = analyze(&ops);

            // The whole stream is the critical path — the same fold.
            prop_assert_eq!(
                dag.critical_path_s.to_bits(),
                dag.total_modeled_s.to_bits(),
                "serial critical path must equal the serial total bit-exactly"
            );
            prop_assert_eq!(dag.critical_path.len(), ops.len());
            prop_assert_eq!(dag.devices.len(), 1);
            let d = dag.devices[0];
            prop_assert_eq!(d.stall_s, 0.0);
            prop_assert_eq!(d.idle_s, 0.0);
            prop_assert_eq!(d.busy_s.to_bits(), dag.critical_path_s.to_bits());
            prop_assert!(dag.schedule.iter().all(|s| s.slack_s == 0.0));

            // Satellite: the DAG-derived link accounting IS the tiled
            // engine's accounting — same values, same fold order.
            if tiles > 1 {
                let link = dag.link("h2d_tile").expect("tiled run streams tiles");
                prop_assert_eq!(link.transfers as u64, result.tiling.tile_transfers);
                prop_assert_eq!(
                    link.raw_s.to_bits(),
                    result.tiling.transfer_raw_s.to_bits(),
                    "raw fold diverged: {} vs {}", link.raw_s, result.tiling.transfer_raw_s
                );
                prop_assert_eq!(
                    link.exposed_s.to_bits(),
                    result.tiling.transfer_exposed_s.to_bits(),
                    "exposed fold diverged: {} vs {}",
                    link.exposed_s, result.tiling.transfer_exposed_s
                );
            } else {
                prop_assert!(dag.link("h2d_tile").is_none());
            }

            // Against the per-phase profiler total the identity is only
            // associative, not bitwise.
            let profiler_total = capture.total_seconds();
            prop_assert!(
                (dag.critical_path_s - profiler_total).abs() <= 1e-12 * profiler_total.max(1e-30),
                "DAG span {} vs profiler total {}", dag.critical_path_s, profiler_total
            );
        }
    }
}

mod sharded {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Sharded groups: the critical path is bounded by the serial
        /// total, attribution partitions the span on every device, and
        /// zeroing durations (what-ifs) never grows the path.
        #[test]
        fn sharded_attribution_partitions_the_span(
            x in tensor_strategy(),
            format in format_strategy(),
            rank in 1usize..4,
            seed in any::<u64>(),
            gidx in 0usize..3,
        ) {
            let gpus = [2usize, 3, 4][gidx];
            let devices: Vec<Device> =
                (0..gpus).map(|_| Device::with_records(DeviceSpec::h100())).collect();
            let link = LinkModel { bandwidth_gbs: 300.0, latency_us: 10.0 };
            let group = DeviceGroup::new(devices, link);
            Auntf::new(x, cfg(rank, seed, format, 1)).factorize_sharded(&group).unwrap();

            let ops: Vec<OpSpec> = group
                .devices()
                .iter()
                .enumerate()
                .flat_map(|(d, dev)| ops_from_records(d, &dev.take_run().records))
                .collect();
            prop_assert!(
                ops.iter().any(|o| o.collective_seq.is_some()),
                "a sharded run must record collectives"
            );
            let dag = analyze(&ops);

            prop_assert!(
                dag.critical_path_s <= dag.total_modeled_s * (1.0 + 1e-12),
                "critical path {} exceeds serial total {}",
                dag.critical_path_s, dag.total_modeled_s
            );
            prop_assert_eq!(dag.devices.len(), gpus);
            for d in &dag.devices {
                let span = dag.critical_path_s;
                // Idle is the exact residual, except that reassociation
                // dust (within span * 1e-12) snaps to an exact zero.
                let residual = span - (d.busy_s + d.stall_s);
                prop_assert!(
                    d.idle_s.to_bits() == residual.to_bits()
                        || (d.idle_s == 0.0 && residual.abs() <= 1e-12 * span),
                    "gpu{}: idle {} vs residual {}", d.device, d.idle_s, residual
                );
                // Re-summing the three parts lands back on the span within
                // fold-reassociation error.
                prop_assert!(
                    (d.busy_s + d.stall_s + d.idle_s - span).abs() <= 1e-12 * span.max(1e-30),
                    "gpu{}: busy {} + stall {} + idle {} != span {}",
                    d.device, d.busy_s, d.stall_s, d.idle_s, span
                );
                prop_assert!(d.stall_s >= 0.0 && d.idle_s >= 0.0);
            }

            // The makespan is some op's exact finish time (the chain's
            // last node reaches it, modulo collective representation).
            let max_finish =
                dag.schedule.iter().map(|s| s.finish_s).fold(0.0f64, f64::max);
            prop_assert_eq!(max_finish.to_bits(), dag.critical_path_s.to_bits());
            // Non-collective chain ops have zero slack. (A collective's
            // chain representative is the *arrival* that set the
            // rendezvous start; its own finish may legitimately have
            // slack — the slowest member's finish is what gates
            // successors.)
            for &i in &dag.critical_path {
                if ops[i].collective_seq.is_none() {
                    prop_assert_eq!(dag.schedule[i].slack_s, 0.0, "chain op {} has slack", i);
                }
            }

            // What-ifs only zero durations: monotonically non-increasing.
            for w in WhatIf::all() {
                let projected = analyze(&apply_what_ifs(&ops, &[w])).critical_path_s;
                prop_assert!(
                    projected <= dag.critical_path_s,
                    "{}: projected {} > baseline {}",
                    w.label(), projected, dag.critical_path_s
                );
            }
            let all = analyze(&apply_what_ifs(&ops, &WhatIf::all())).critical_path_s;
            prop_assert!(all <= dag.critical_path_s);
        }
    }
}

mod cli_determinism {
    fn cli(args: &[&str]) -> String {
        let parsed =
            cstf_cli::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
        let mut out = Vec::new();
        cstf_cli::dispatch(&parsed, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn telemetry_dir(tag: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("cstf-critical-path-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    fn factorize(dir: &str, extra: &[&str]) {
        let mut args = vec![
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "4",
            "--iters",
            "2",
            "--seed",
            "0",
            "--telemetry",
            dir,
        ];
        args.extend_from_slice(extra);
        cli(&args);
    }

    #[test]
    fn ops_artifact_and_json_output_are_byte_deterministic() {
        let (d1, d2) = (telemetry_dir("det1"), telemetry_dir("det2"));
        factorize(&d1, &[]);
        factorize(&d2, &[]);
        let ops1 = std::fs::read(std::path::Path::new(&d1).join("ops.jsonl")).unwrap();
        let ops2 = std::fs::read(std::path::Path::new(&d2).join("ops.jsonl")).unwrap();
        assert_eq!(ops1, ops2, "ops.jsonl must be byte-identical across reruns");
        assert!(!ops1.is_empty());
        let out1 = cli(&["critical-path", &d1, "--json"]);
        let out2 = cli(&["critical-path", &d2, "--json"]);
        assert_eq!(out1, out2, "critical-path --json must be byte-deterministic");
        assert_eq!(cli(&["critical-path", &d1]), cli(&["critical-path", &d2]));
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }

    #[test]
    fn serial_json_reports_critical_path_equal_to_total() {
        let dir = telemetry_dir("serial");
        factorize(&dir, &[]);
        let line = cli(&["critical-path", &dir, "--json"]);
        let v: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
        let cp = v["critical_path_s"].as_f64().unwrap();
        let total = v["total_modeled_s"].as_f64().unwrap();
        assert_eq!(cp.to_bits(), total.to_bits(), "serial: cp {cp} != total {total}");
        assert_eq!(v["critical_path_ops"], v["ops"]);
        assert_eq!(v["devices"][0]["idle_fraction"], 0.0);
        // All three standard projections are present and non-increasing.
        for key in ["nvlink=inf", "pcie=0", "overlap=perfect"] {
            let p = v["what_if"][key].as_f64().unwrap();
            assert!(p <= cp, "{key}: {p} > {cp}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nvlink_inf_is_strictly_smaller_on_a_sharded_run() {
        let dir = telemetry_dir("g4");
        factorize(&dir, &["--gpus", "4"]);
        let line = cli(&["critical-path", &dir, "--json", "--what-if", "nvlink=inf"]);
        let v: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
        let cp = v["critical_path_s"].as_f64().unwrap();
        let nvlink = v["what_if"]["nvlink=inf"].as_f64().unwrap();
        assert!(
            nvlink < cp,
            "infinite NVLink must strictly shrink a sharded critical path: {nvlink} vs {cp}"
        );
        assert_eq!(
            v["requested_what_if"]["critical_path_s"].as_f64().unwrap().to_bits(),
            nvlink.to_bits()
        );
        let total = v["total_modeled_s"].as_f64().unwrap();
        assert!(cp < total, "4 GPUs must beat the serial bound: {cp} vs {total}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_ops_artifact_reports_a_helpful_error() {
        let dir = telemetry_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(std::path::Path::new(&dir).join("run.json"), "{}").unwrap();
        let parsed = cstf_cli::parse(&["critical-path".to_string(), dir.clone()]).unwrap();
        let mut out = Vec::new();
        let err = cstf_cli::dispatch(&parsed, &mut out).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("ops.jsonl") && msg.contains("--telemetry"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
