//! Cross-checks the byte-exact `MemoryFootprint` accounting against the
//! counting allocator itself: the *live-byte delta* of constructing a
//! format structure must equal the structure's reported `heap_bytes()`.
//! Construction temporaries (sort buffers, hash maps) allocate and free
//! inside the measured window, so the delta is precisely the bytes the
//! structure retains — if `footprint()` over- or under-counts a single
//! component, these tests fail with the exact discrepancy.
//!
//! Tensors stay below the `cstf_linalg::tuning` parallelism thresholds so
//! no worker threads allocate during the measured window, a warm-up
//! construction absorbs one-time lazy state, and a process-wide mutex
//! keeps the two tests from interleaving their allocator snapshots.

use std::sync::Mutex;

use cstf_formats::{Alto, Blco, Csf, HiCoo};
use cstf_telemetry::{alloc, MemoryFootprint};
use cstf_tensor::SparseTensor;
use proptest::prelude::*;

#[global_allocator]
static GLOBAL: alloc::CountingAlloc = alloc::CountingAlloc;

/// Live-byte snapshots are process-global, so the tests in this binary
/// must not run their measured windows concurrently.
static SERIAL: Mutex<()> = Mutex::new(());

/// Small deterministic tensor with distinct coordinates.
fn tensor_from_seed(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut seen = std::collections::HashSet::new();
    let mut idx = vec![Vec::new(); shape.len()];
    let mut vals = Vec::new();
    for _ in 0..nnz {
        let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
        if seen.insert(c.clone()) {
            for (m, &ci) in c.iter().enumerate() {
                idx[m].push(ci);
            }
            vals.push(f64::from(next() % 100) / 25.0 + 0.04);
        }
    }
    SparseTensor::new(shape.to_vec(), idx, vals)
}

/// Absorbs one-time allocations (lazy statics, thread-locals) so they do
/// not land inside a measured window.
fn warm_up() {
    let x = tensor_from_seed(&[6, 5, 4], 30, 0x5eed);
    std::hint::black_box((
        x.clone(),
        Csf::from_coo(&x, 0),
        HiCoo::from_coo(&x),
        Alto::from_coo(&x),
        Blco::from_coo(&x),
    ));
}

/// Builds a structure and returns it with the live-byte delta of its
/// construction (signed, so an under-count fails loudly instead of
/// wrapping).
fn measure<T>(build: impl FnOnce() -> T) -> (T, i64) {
    let before = alloc::live_bytes() as i64;
    let built = build();
    let after = alloc::live_bytes() as i64;
    (built, after - before)
}

#[test]
fn fixed_seed_construction_delta_equals_heap_bytes_for_all_formats() {
    let _guard = SERIAL.lock().unwrap();
    warm_up();
    let x = tensor_from_seed(&[14, 9, 6], 120, 3);

    let (coo, d) = measure(|| x.clone());
    assert_eq!(d, coo.heap_bytes() as i64, "COO clone");
    let (csf, d) = measure(|| Csf::from_coo(&x, 0));
    assert_eq!(d, csf.heap_bytes() as i64, "CSF");
    let (hicoo, d) = measure(|| HiCoo::from_coo(&x));
    assert_eq!(d, hicoo.heap_bytes() as i64, "HiCOO");
    let (alto, d) = measure(|| Alto::from_coo(&x));
    assert_eq!(d, alto.heap_bytes() as i64, "ALTO");
    let (blco, d) = measure(|| Blco::from_coo(&x));
    assert_eq!(d, blco.heap_bytes() as i64, "BLCO");

    // Byte determinism: rebuilding from the same tensor reports the same
    // footprint (what `cstf memstat`'s two-run CI check relies on).
    assert_eq!(Csf::from_coo(&x, 0).heap_bytes(), csf.heap_bytes());
    assert_eq!(Blco::from_coo(&x).heap_bytes(), blco.heap_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On arbitrary small tensors, every format's reported footprint
    /// equals its construction live-byte delta.
    #[test]
    fn footprint_matches_live_delta(
        d0 in 2usize..12, d1 in 2usize..12, d2 in 2usize..12,
        nnz in 1usize..80, seed in any::<u64>(),
    ) {
        let _guard = SERIAL.lock().unwrap();
        warm_up();
        let x = tensor_from_seed(&[d0, d1, d2], nnz, seed);

        let (coo, delta) = measure(|| x.clone());
        prop_assert_eq!(delta, coo.heap_bytes() as i64, "COO clone");
        let (csf, delta) = measure(|| Csf::from_coo(&x, 0));
        prop_assert_eq!(delta, csf.heap_bytes() as i64, "CSF");
        let (hicoo, delta) = measure(|| HiCoo::from_coo(&x));
        prop_assert_eq!(delta, hicoo.heap_bytes() as i64, "HiCOO");
        let (alto, delta) = measure(|| Alto::from_coo(&x));
        prop_assert_eq!(delta, alto.heap_bytes() as i64, "ALTO");
        let (blco, delta) = measure(|| Blco::from_coo(&x));
        prop_assert_eq!(delta, blco.heap_bytes() as i64, "BLCO");
    }
}
