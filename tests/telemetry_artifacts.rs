//! End-to-end validation of the telemetry artifact pipeline: a CLI
//! `factorize --telemetry DIR` run must produce four well-formed
//! artifacts, the per-iteration records must match what the solver
//! actually computed, and `cstf report` must render them.

use cstf_cli::{dispatch, parse};
use cstf_core::admm::AdmmConfig;
use cstf_device::{Device, DeviceSpec};
use cstf_telemetry::{convergence, parse_prometheus, RunSummary};

/// Runs the CLI in-process and returns captured stdout.
fn cli(args: &[&str]) -> String {
    let parsed = parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
    let mut buf = Vec::new();
    dispatch(&parsed, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn telemetry_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cstf_artifact_test_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The exact solver configuration the CLI run below uses, re-run directly
/// so artifact contents can be compared against ground truth.
fn reference_run() -> cstf_core::auntf::FactorizeOutput {
    let x = cstf_data::by_name("Uber").unwrap().generate_scaled(3000, 0);
    let cfg = cstf_core::AuntfConfig {
        rank: 4,
        max_iters: 3,
        fit_tol: 0.0,
        update: cstf_core::UpdateMethod::Admm(AdmmConfig::cuadmm()),
        seed: 0,
        format: cstf_core::TensorFormat::Blco,
        ..Default::default()
    };
    cstf_core::Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap()
}

#[test]
fn four_artifacts_round_trip_and_match_the_solver() {
    let dir = telemetry_dir("roundtrip");
    let d = dir.to_str().unwrap().to_string();
    cli(&[
        "factorize",
        "--dataset",
        "Uber",
        "--nnz",
        "3000",
        "--rank",
        "4",
        "--iters",
        "3",
        "--seed",
        "0",
        "--telemetry",
        &d,
    ]);

    // --- run.json: parses into the shared data model ---
    let run_text = std::fs::read_to_string(dir.join("run.json")).expect("run.json written");
    let summary = RunSummary::from_json(&run_text).expect("run.json parses");
    assert_eq!(summary.system, "cstf-cli");
    assert_eq!(summary.rank, 4);
    assert_eq!(summary.iterations, 3);
    assert_eq!(summary.nnz, 3000);
    assert!(summary.modeled_s > 0.0);
    assert!(summary.phases.iter().any(|p| p.phase == "MTTKRP"));

    // --- events.jsonl: per-iteration records match the solver exactly ---
    let reference = reference_run();
    let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events.jsonl written");
    let records = convergence::read_jsonl(&events).expect("events.jsonl parses");
    assert_eq!(records.len(), reference.iters);
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs());
    for (rec, (i, &fit)) in records.iter().zip(reference.fits.iter().enumerate()) {
        assert_eq!(rec.iter as usize, i);
        assert!(
            close(rec.fit.expect("fit recorded"), fit),
            "iteration {i}: artifact fit {:?} vs solver fit {fit}",
            rec.fit
        );
        let truth = &reference.convergence.records()[i];
        assert_eq!(rec.modes.len(), truth.modes.len());
        for (got, want) in rec.modes.iter().zip(&truth.modes) {
            assert_eq!(got.mode, want.mode);
            assert_eq!(got.inner_iters, want.inner_iters);
            assert!(close(got.primal_residual.unwrap(), want.primal_residual.unwrap()));
            assert!(close(got.dual_residual.unwrap(), want.dual_residual.unwrap()));
            assert!(close(got.rho.unwrap(), want.rho.unwrap()));
        }
    }
    // And run.json's fits agree with the solver too.
    assert_eq!(summary.fits.len(), reference.fits.len());
    for (a, b) in summary.fits.iter().zip(&reference.fits) {
        assert!(close(*a, *b));
    }

    // --- trace.json: valid Chrome Trace JSON with all event kinds ---
    let trace = std::fs::read_to_string(dir.join("trace.json")).expect("trace.json written");
    let parsed: serde_json::Value = serde_json::from_str(&trace).expect("trace is valid JSON");
    let events = parsed.as_array().expect("trace is an array");
    let has_ph = |ph: &str| events.iter().any(|e| e["ph"] == ph);
    assert!(has_ph("X"), "complete events");
    assert!(has_ph("C"), "counter tracks");
    assert!(has_ph("i"), "iteration-boundary instants");
    assert!(has_ph("s") && has_ph("f"), "MTTKRP->UPDATE flow arrows");
    assert_eq!(
        events.iter().filter(|e| e["ph"] == "i" && e["name"] == "outer_iteration").count(),
        3,
        "one instant per outer iteration"
    );
    assert!(
        events.iter().any(|e| e["pid"] == 2 && e["cat"] == "span"),
        "host spans present on the second process"
    );

    // --- metrics.prom: valid Prometheus exposition ---
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("metrics.prom written");
    let samples = parse_prometheus(&prom).expect("exposition format parses");
    let value = |name: &str| {
        samples.iter().find(|s| s.name == name).map(|s| s.value).expect("metric present")
    };
    assert!(value("cstf_launches_total") > 0.0);
    assert!(value("cstf_flops_total") > 0.0);
    assert!(value("cstf_bytes_total") > 0.0);
    assert_eq!(value("cstf_kernel_modeled_ns_count"), value("cstf_launches_total"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_faults_round_trip_through_the_artifacts() {
    let dir = telemetry_dir("faults");
    let d = dir.to_str().unwrap().to_string();
    cli(&[
        "factorize",
        "--dataset",
        "Uber",
        "--nnz",
        "2000",
        "--rank",
        "3",
        "--iters",
        "2",
        "--faults",
        "seed=1,launch=1.0,max=2",
        "--telemetry",
        &d,
    ]);

    // metrics.prom: total and per-kind fault counters.
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("metrics.prom written");
    let samples = parse_prometheus(&prom).expect("exposition format parses");
    let value = |name: &str| samples.iter().find(|s| s.name == name).map(|s| s.value);
    assert_eq!(value("cstf_faults_injected_total"), Some(2.0), "{prom}");
    assert_eq!(value("cstf_fault_transient_launch_total"), Some(2.0), "{prom}");

    // trace.json: one fault instant per injection, on the fault track.
    let trace = std::fs::read_to_string(dir.join("trace.json")).expect("trace.json written");
    let parsed: serde_json::Value = serde_json::from_str(&trace).expect("trace is valid JSON");
    let events = parsed.as_array().expect("trace is an array");
    let fault_instants: Vec<_> =
        events.iter().filter(|e| e["cat"] == "fault" && e["ph"] == "i").collect();
    assert_eq!(fault_instants.len(), 2, "one instant per injected fault");
    assert!(fault_instants.iter().all(|e| e["name"] == "fault_transient_launch"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_chaos_run_exports_device_labeled_fault_and_group_counters() {
    let dir = telemetry_dir("group_counters");
    let d = dir.to_str().unwrap().to_string();
    cli(&[
        "factorize",
        "--dataset",
        "Uber",
        "--nnz",
        "2000",
        "--rank",
        "3",
        "--iters",
        "4",
        "--gpus",
        "3",
        "--faults",
        "device-loss:2@it2,straggler:1x9",
        "--telemetry",
        &d,
    ]);

    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("metrics.prom written");
    let samples = parse_prometheus(&prom).expect("exposition format parses");
    let labeled = |name: &str, label: &str| {
        let want = format!("device=\"{label}\"");
        samples.iter().find(|s| s.name == name && s.labels.contains(&want)).map(|s| s.value)
    };
    let value = |name: &str| samples.iter().find(|s| s.name == name).map(|s| s.value);

    // Per-kind fault counters carry the faulting member's device label.
    // The loss is persistent, so it fires once per retry attempt.
    assert!(value("cstf_faults_injected_total").unwrap_or(0.0) > 0.0, "{prom}");
    assert!(labeled("cstf_fault_device_loss_total", "2").unwrap_or(0.0) >= 1.0, "{prom}");
    assert!(labeled("cstf_fault_straggler_total", "1").unwrap_or(0.0) > 0.0, "{prom}");
    assert_eq!(labeled("cstf_fault_straggler_total", "0"), None, "healthy member unlabeled");

    // The elastic driver's own counters: detection -> retries -> reshard,
    // with retirement attributed to the lost member.
    assert!(value("cstf_group_loss_detections_total").unwrap_or(0.0) >= 1.0, "{prom}");
    assert!(value("cstf_group_loss_retries_total").unwrap_or(0.0) >= 1.0, "{prom}");
    assert_eq!(value("cstf_group_reshards_total"), Some(1.0), "{prom}");
    assert_eq!(labeled("cstf_group_devices_retired_total", "2"), Some(1.0), "{prom}");
    assert_eq!(labeled("cstf_group_retire_iteration", "2"), Some(2.0), "{prom}");
    assert!(labeled("cstf_group_deadline_trips_total", "1").unwrap_or(0.0) > 0.0, "{prom}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_tiling_and_elasticity_sections_match_golden_file() {
    // The sections render from modeled numbers only, so for a fixed
    // dataset/seed they are byte-stable; the golden file pins them.
    let tiled_dir = telemetry_dir("golden_tiled");
    let td = tiled_dir.to_str().unwrap().to_string();
    cli(&[
        "factorize",
        "--dataset",
        "Uber",
        "--nnz",
        "2000",
        "--rank",
        "3",
        "--iters",
        "2",
        "--seed",
        "0",
        "--tiles",
        "3",
        "--telemetry",
        &td,
    ]);
    let tiled_report = cli(&["report", &td]);

    let sharded_dir = telemetry_dir("golden_sharded");
    let sd = sharded_dir.to_str().unwrap().to_string();
    cli(&[
        "factorize",
        "--dataset",
        "Uber",
        "--nnz",
        "2000",
        "--rank",
        "3",
        "--iters",
        "2",
        "--seed",
        "0",
        "--gpus",
        "3",
        "--telemetry",
        &sd,
    ]);
    let sharded_report = cli(&["report", &sd]);

    // The tiling section is the "out-of-core:" line plus its indented
    // continuation; the elasticity section is a single line.
    let mut rendered = String::new();
    let mut lines = tiled_report.lines();
    while let Some(l) = lines.next() {
        if l.starts_with("out-of-core:") {
            rendered.push_str(l);
            rendered.push('\n');
            rendered.push_str(lines.next().expect("continuation line"));
            rendered.push('\n');
        }
    }
    for l in sharded_report.lines().filter(|l| l.starts_with("elasticity:")) {
        rendered.push_str(l);
        rendered.push('\n');
    }
    let golden = include_str!("golden/report_sections.txt");
    assert_eq!(rendered, golden, "report sections drifted from tests/golden/report_sections.txt");

    let _ = std::fs::remove_dir_all(&tiled_dir);
    let _ = std::fs::remove_dir_all(&sharded_dir);
}

#[test]
fn critical_path_gauges_and_ops_artifact_single_device() {
    let dir = telemetry_dir("critical_path_single");
    let d = dir.to_str().unwrap().to_string();
    cli(&[
        "factorize",
        "--dataset",
        "Uber",
        "--nnz",
        "2000",
        "--rank",
        "3",
        "--iters",
        "2",
        "--seed",
        "0",
        "--telemetry",
        &d,
    ]);

    // ops.jsonl: the op-DAG artifact exists and round-trips.
    let ops_text = std::fs::read_to_string(dir.join("ops.jsonl")).expect("ops.jsonl written");
    let ops = cstf_device::read_ops_jsonl(&ops_text).expect("ops.jsonl parses");
    assert!(!ops.is_empty());
    let dag = cstf_device::analyze(&ops);

    // metrics.prom: critical-path and per-device attribution gauges.
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("metrics.prom written");
    let samples = parse_prometheus(&prom).expect("exposition format parses");
    let value = |name: &str| {
        samples.iter().find(|s| s.name == name).map(|s| s.value).expect("metric present")
    };
    let labeled = |name: &str, device: &str| {
        let want = format!("device=\"{device}\"");
        samples
            .iter()
            .find(|s| s.name == name && s.labels.contains(&want))
            .map(|s| s.value)
            .expect("labeled metric present")
    };
    assert!(value("cstf_critical_path_seconds") > 0.0, "{prom}");
    assert_eq!(value("cstf_critical_path_ops"), ops.len() as f64, "{prom}");
    // One device: the whole stream is the path, so the two bounds agree
    // and the device is never idle or stalled.
    assert_eq!(
        value("cstf_critical_path_seconds"),
        value("cstf_critical_path_total_modeled_seconds"),
        "{prom}"
    );
    assert_eq!(value("cstf_critical_path_seconds"), dag.critical_path_s);
    assert!(labeled("cstf_device_busy_seconds", "0") > 0.0, "{prom}");
    assert_eq!(labeled("cstf_device_stall_seconds", "0"), 0.0, "{prom}");
    assert_eq!(labeled("cstf_device_idle_seconds", "0"), 0.0, "{prom}");
    assert_eq!(labeled("cstf_device_idle_fraction", "0"), 0.0, "{prom}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn critical_path_gauges_cover_every_sharded_device() {
    let dir = telemetry_dir("critical_path_sharded");
    let d = dir.to_str().unwrap().to_string();
    cli(&[
        "factorize",
        "--dataset",
        "Uber",
        "--nnz",
        "2000",
        "--rank",
        "3",
        "--iters",
        "2",
        "--seed",
        "0",
        "--gpus",
        "3",
        "--telemetry",
        &d,
    ]);

    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("metrics.prom written");
    let samples = parse_prometheus(&prom).expect("exposition format parses");
    let value = |name: &str| {
        samples.iter().find(|s| s.name == name).map(|s| s.value).expect("metric present")
    };
    let labeled = |name: &str, device: &str| {
        let want = format!("device=\"{device}\"");
        samples
            .iter()
            .find(|s| s.name == name && s.labels.contains(&want))
            .map(|s| s.value)
            .expect("labeled metric present")
    };
    let cp = value("cstf_critical_path_seconds");
    let total = value("cstf_critical_path_total_modeled_seconds");
    assert!(cp > 0.0 && cp < total, "sharding must beat the serial bound: {cp} vs {total}");
    for dev in ["0", "1", "2"] {
        let busy = labeled("cstf_device_busy_seconds", dev);
        let stall = labeled("cstf_device_stall_seconds", dev);
        let idle = labeled("cstf_device_idle_seconds", dev);
        let frac = labeled("cstf_device_idle_fraction", dev);
        assert!(busy > 0.0, "gpu{dev} busy: {prom}");
        assert!(stall >= 0.0 && idle >= 0.0, "gpu{dev}: {prom}");
        assert!((0.0..=1.0).contains(&frac), "gpu{dev} idle fraction {frac}");
        let span = busy + stall + idle;
        assert!((span - cp).abs() <= 1e-9 * cp, "gpu{dev}: {busy}+{stall}+{idle} != {cp}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_renders_and_emits_regression_line() {
    let dir = telemetry_dir("report");
    let d = dir.to_str().unwrap().to_string();
    cli(&[
        "factorize",
        "--dataset",
        "NIPS",
        "--nnz",
        "2000",
        "--rank",
        "3",
        "--iters",
        "2",
        "--telemetry",
        &d,
    ]);

    let text = cli(&["report", &d]);
    assert!(text.contains("cstf-cli"), "{text}");
    assert!(text.contains("MTTKRP"), "{text}");
    assert!(text.lines().any(|l| l.trim_start().starts_with('0')), "iteration rows:\n{text}");

    let line = cli(&["report", &d, "--json"]);
    assert_eq!(line.trim().lines().count(), 1, "single-line JSON");
    let v: serde_json::Value = serde_json::from_str(&line).unwrap();
    assert_eq!(v["schema_version"], 1);
    assert_eq!(v["iterations"], 2);
    assert!(v["per_iter_modeled_s"].as_f64().unwrap() > 0.0);

    let _ = std::fs::remove_dir_all(&dir);
}
