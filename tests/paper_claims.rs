//! The paper's evaluation claims, pinned as integration tests.
//!
//! Each test encodes one qualitative finding from the paper's figures; they
//! are the machine-checked versions of the "shape checks" the figure
//! binaries print (see EXPERIMENTS.md for the quantitative comparison).

use cstf_bench::{run_preset, Workload};
use cstf_core::admm::AdmmConfig;
use cstf_core::auntf::seeded_factors;
use cstf_core::{admm_update, presets, AdmmWorkspace};
use cstf_data::by_name;
use cstf_device::{Device, DeviceSpec, Phase};
use cstf_linalg::{gram, hadamard_of_grams, Mat};

const BASE: usize = 12_000;

fn wl(name: &str) -> Workload {
    Workload::from_entry(by_name(name).unwrap(), BASE, 7)
}

/// Figure 1 / Figure 3 / §4.1: on the CPU baseline, the ADMM UPDATE phase
/// dominates MTTKRP for the large real-world sparse tensors.
#[test]
fn claim_update_dominates_cpu_time_on_long_mode_tensors() {
    for name in ["Flickr", "Delicious", "NELL1"] {
        let w = wl(name);
        let preset = presets::splatt_cpu_on(32, w.device_spec(&DeviceSpec::icelake_xeon()));
        let r = run_preset(&preset, &w.tensor, 1);
        assert!(
            r.per_iter.update > r.per_iter.mttkrp,
            "{name}: UPDATE {:.3e} should exceed MTTKRP {:.3e}",
            r.per_iter.update,
            r.per_iter.mttkrp
        );
    }
}

/// Figures 5/6: the GPU framework beats SPLATT-CPU end-to-end on every
/// tensor, and by a large factor on the long-mode tensors.
#[test]
fn claim_gpu_end_to_end_beats_splatt() {
    for name in ["NIPS", "Flickr", "NELL1"] {
        let w = wl(name);
        let cpu = presets::splatt_cpu_on(32, w.device_spec(&DeviceSpec::icelake_xeon()));
        let gpu = presets::cstf_gpu(32, w.device_spec(&DeviceSpec::h100()));
        let r_cpu = run_preset(&cpu, &w.tensor, 1);
        let r_gpu = run_preset(&gpu, &w.tensor, 1);
        let s = r_gpu.speedup_over(&r_cpu);
        assert!(s > 1.0, "{name}: GPU should win, got {s:.2}x");
        if name != "NIPS" {
            assert!(s > 5.0, "{name}: long-mode speedup should be large, got {s:.2}x");
        }
    }
}

/// §5.3: the H100 outperforms the A100 at equal HBM bandwidth, thanks to
/// its larger caches.
#[test]
fn claim_h100_beats_a100() {
    for name in ["NIPS", "Enron", "Delicious"] {
        let w = wl(name);
        let a =
            run_preset(&presets::cstf_gpu(32, w.device_spec(&DeviceSpec::a100())), &w.tensor, 1);
        let h =
            run_preset(&presets::cstf_gpu(32, w.device_spec(&DeviceSpec::h100())), &w.tensor, 1);
        assert!(
            h.per_iter_total() < a.per_iter_total(),
            "{name}: H100 {:.3e}s should beat A100 {:.3e}s",
            h.per_iter_total(),
            a.per_iter_total()
        );
    }
}

/// Figure 4: cuADMM (OF+PI) beats the generic cuBLAS-style ADMM on the GPU,
/// and combining both optimizations beats either alone.
#[test]
fn claim_cuadmm_beats_generic_admm() {
    let w = wl("Delicious");
    let spec = w.device_spec(&DeviceSpec::h100());
    let x = &w.tensor;
    let factors = seeded_factors(x.shape(), 32, 11);
    let grams: Vec<Mat> = factors.iter().map(gram::gram).collect();
    let s = hadamard_of_grams(&grams, 0);
    let m = cstf_formats::mttkrp_coo_parallel(x, &factors, 0);

    let time = |cfg: &AdmmConfig| {
        let dev = Device::new(spec.clone());
        let mut h = factors[0].clone();
        let mut u = Mat::zeros(h.rows(), h.cols());
        let mut ws = AdmmWorkspace::new(h.rows(), h.cols());
        admm_update(&dev, cfg, &m, &s, &mut h, &mut u, &mut ws).unwrap();
        dev.phase_totals(Phase::Update).seconds
    };

    let generic = time(&AdmmConfig::generic());
    let of =
        time(&AdmmConfig { operation_fusion: true, pre_inversion: false, ..AdmmConfig::generic() });
    let pi =
        time(&AdmmConfig { operation_fusion: false, pre_inversion: true, ..AdmmConfig::generic() });
    let both = time(&AdmmConfig::cuadmm());

    assert!(of < generic, "OF should beat generic: {of:.3e} vs {generic:.3e}");
    assert!(pi < generic, "PI should beat generic: {pi:.3e} vs {generic:.3e}");
    assert!(both < of && both < pi, "OF+PI should beat each alone");
    let speedup = generic / both;
    assert!(
        speedup > 1.3 && speedup < 3.0,
        "cuADMM speedup {speedup:.2} outside the paper's regime"
    );
}

/// Figures 7/8: MTTKRP and ADMM speedups trade off — long-mode tensors
/// gain more on ADMM than short-mode tensors do.
#[test]
fn claim_admm_speedup_grows_with_mode_length() {
    let speedup_of = |name: &str| {
        let w = wl(name);
        let cpu = presets::splatt_cpu_on(32, w.device_spec(&DeviceSpec::icelake_xeon()));
        let gpu = presets::cstf_gpu(32, w.device_spec(&DeviceSpec::h100()));
        let r_cpu = run_preset(&cpu, &w.tensor, 1);
        let r_gpu = run_preset(&gpu, &w.tensor, 1);
        r_cpu.per_iter.update / r_gpu.per_iter.update
    };
    let short = speedup_of("NIPS");
    let long = speedup_of("NELL1");
    assert!(
        long > 2.0 * short,
        "ADMM speedup should grow with mode length: NIPS {short:.2} vs NELL1 {long:.2}"
    );
}

/// §5.1 rank sweep: higher ranks increase arithmetic intensity but the
/// update stays bandwidth-bound; end-to-end GPU advantage persists at all
/// three paper ranks.
#[test]
fn claim_gpu_wins_at_all_paper_ranks() {
    let w = wl("Flickr");
    for rank in [16, 32, 64] {
        let cpu = presets::splatt_cpu_on(rank, w.device_spec(&DeviceSpec::icelake_xeon()));
        let gpu = presets::cstf_gpu(rank, w.device_spec(&DeviceSpec::h100()));
        let s = run_preset(&gpu, &w.tensor, 1).speedup_over(&run_preset(&cpu, &w.tensor, 1));
        assert!(s > 3.0, "rank {rank}: speedup {s:.2} too small");
    }
}

/// §5.4: MU and HALS on the GPU also beat their CPU counterparts.
#[test]
fn claim_mu_hals_gpu_speedups() {
    let w = wl("Flickr");
    let cpu_spec = w.device_spec(&DeviceSpec::icelake_xeon());
    let gpu_spec = w.device_spec(&DeviceSpec::a100());

    let mu_cpu = run_preset(
        &presets::planc_cpu_on(
            32,
            cstf_core::UpdateMethod::Mu(Default::default()),
            cpu_spec.clone(),
        ),
        &w.tensor,
        1,
    );
    let mu_gpu = run_preset(&presets::cstf_gpu_mu(32, gpu_spec.clone()), &w.tensor, 1);
    assert!(mu_gpu.speedup_over(&mu_cpu) > 2.0);

    let hals_cpu = run_preset(
        &presets::planc_cpu_on(32, cstf_core::UpdateMethod::Hals(Default::default()), cpu_spec),
        &w.tensor,
        1,
    );
    let hals_gpu = run_preset(&presets::cstf_gpu_hals(32, gpu_spec), &w.tensor, 1);
    assert!(hals_gpu.speedup_over(&hals_cpu) > 2.0);
}

/// Full GPU residency (§1, §4): the one-time transfer cost is amortized —
/// it must be far below a handful of iterations' compute time on the big
/// tensors.
#[test]
fn claim_transfers_are_amortized() {
    let w = wl("Delicious");
    let gpu = presets::cstf_gpu(32, w.device_spec(&DeviceSpec::h100()));
    let r = run_preset(&gpu, &w.tensor, 5);
    assert!(
        r.transfer < r.per_iter_total() * 5.0,
        "transfers {:.3e}s should be amortized over 5 iterations ({:.3e}s)",
        r.transfer,
        r.per_iter_total() * 5.0
    );
}
