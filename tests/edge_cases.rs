//! Edge-case integration tests: degenerate shapes, extreme values, and
//! corner configurations across the full stack.

use cstf_core::admm::AdmmConfig;
use cstf_core::{Auntf, AuntfConfig, TensorFormat, UpdateMethod};
use cstf_device::{Device, DeviceSpec};
use cstf_formats::{mttkrp_ref, Alto, Blco, Csf};
use cstf_linalg::Mat;
use cstf_tensor::SparseTensor;

fn factors_for(shape: &[usize], rank: usize) -> Vec<Mat> {
    cstf_core::auntf::seeded_factors(shape, rank, 13)
}

fn run_all_formats(x: &SparseTensor, rank: usize) -> Vec<f64> {
    [TensorFormat::Coo, TensorFormat::Csf, TensorFormat::Alto, TensorFormat::Blco]
        .into_iter()
        .map(|format| {
            let cfg = AuntfConfig {
                rank,
                max_iters: 4,
                update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
                format,
                seed: 1,
                ..Default::default()
            };
            let out =
                Auntf::new(x.clone(), cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
            *out.fits.last().unwrap()
        })
        .collect()
}

/// Two-mode tensors are just sparse matrices: the whole cSTF stack must
/// degrade gracefully to constrained NMF.
#[test]
fn two_mode_tensor_is_constrained_nmf() {
    let x = SparseTensor::new(
        vec![30, 25],
        vec![(0..200u32).map(|k| k % 30).collect(), (0..200u32).map(|k| (k * 7) % 25).collect()],
        (0..200).map(|k| 1.0 + (k % 5) as f64).collect(),
    );
    let fits = run_all_formats(&x, 4);
    for w in fits.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-6, "formats disagree on 2-mode: {fits:?}");
    }
    assert!(fits[0].is_finite());
}

/// Five-mode tensors exercise the general-N paths everywhere.
#[test]
fn five_mode_tensor_works_end_to_end() {
    let shape = vec![8, 7, 6, 5, 4];
    let mut idx = vec![Vec::new(); 5];
    let mut vals = Vec::new();
    let mut state = 77u64;
    let mut seen = std::collections::HashSet::new();
    while vals.len() < 500 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let c: Vec<u32> = shape
            .iter()
            .enumerate()
            .map(|(m, &d)| ((state >> (8 * m)) % d as u64) as u32)
            .collect();
        if seen.insert(c.clone()) {
            for (m, &ci) in c.iter().enumerate() {
                idx[m].push(ci);
            }
            vals.push(0.5 + (state % 7) as f64 * 0.25);
        }
    }
    let x = SparseTensor::new(shape.clone(), idx, vals);

    // MTTKRP equivalence on all 5 modes.
    let f = factors_for(&shape, 3);
    let csf: Vec<Csf> = (0..5).map(|m| Csf::from_coo(&x, m)).collect();
    let alto = Alto::from_coo(&x);
    let blco = Blco::from_coo(&x);
    for (mode, csf_tree) in csf.iter().enumerate() {
        let reference = mttkrp_ref(&x, &f, mode);
        for (name, out) in [
            ("csf", csf_tree.mttkrp(&f)),
            ("alto", alto.mttkrp(&f, mode)),
            ("blco", blco.mttkrp(&f, mode)),
        ] {
            for i in 0..reference.rows() {
                for j in 0..reference.cols() {
                    assert!(
                        (reference[(i, j)] - out[(i, j)]).abs() < 1e-9,
                        "{name} mode {mode} at ({i},{j})"
                    );
                }
            }
        }
    }

    // Full driver.
    let fits = run_all_formats(&x, 3);
    assert!(fits.iter().all(|f| f.is_finite()));
}

/// Rank exceeding the smallest mode length: the Gram matrices are rank
/// deficient, but rho-loading must keep the factorization stable.
#[test]
fn rank_exceeding_smallest_mode_stays_stable() {
    let x = SparseTensor::new(
        vec![40, 3, 35],
        vec![
            (0..300u32).map(|k| k % 40).collect(),
            (0..300u32).map(|k| k % 3).collect(),
            (0..300u32).map(|k| (k * 11) % 35).collect(),
        ],
        (0..300).map(|k| 1.0 + (k % 4) as f64 * 0.5).collect(),
    );
    let cfg = AuntfConfig {
        rank: 8, // > mode-1 length of 3
        max_iters: 6,
        update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
        format: TensorFormat::Blco,
        seed: 2,
        ..Default::default()
    };
    let out = Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::a100())).unwrap();
    for f in &out.model.factors {
        assert!(f.all_finite(), "rank-deficient run produced non-finite factors");
        assert!(f.is_nonnegative(1e-12));
    }
    assert!(out.fits.iter().all(|f| f.is_finite()));
}

/// A single nonzero is the sparsest possible tensor.
#[test]
fn single_nonzero_tensor() {
    let x = SparseTensor::new(vec![10, 10, 10], vec![vec![3], vec![4], vec![5]], vec![7.0]);
    let f = factors_for(&[10, 10, 10], 2);
    for mode in 0..3 {
        let reference = mttkrp_ref(&x, &f, mode);
        let blco = Blco::from_coo(&x).mttkrp(&f, mode);
        for i in 0..10 {
            for j in 0..2 {
                assert!((reference[(i, j)] - blco[(i, j)]).abs() < 1e-12);
            }
        }
    }
    let fits = run_all_formats(&x, 1);
    // A rank-1 nonneg model can capture one positive entry nearly exactly.
    assert!(fits[0] > 0.5, "single-nonzero fit {fits:?}");
}

/// All nonzeros in one fiber: maximal CSF compression, degenerate ALTO
/// partitioning.
#[test]
fn single_fiber_tensor() {
    let nnz = 50usize;
    let x = SparseTensor::new(
        vec![4, 4, 64],
        vec![vec![2; nnz], vec![1; nnz], (0..nnz as u32).collect()],
        (0..nnz).map(|k| 1.0 + k as f64 * 0.1).collect(),
    );
    let csf = Csf::from_coo(&x, 0);
    assert_eq!(csf.level_size(0), 1, "one root node");
    assert_eq!(csf.level_size(1), 1, "one fiber");
    let f = factors_for(&[4, 4, 64], 3);
    let reference = mttkrp_ref(&x, &f, 0);
    let got = csf.mttkrp(&f);
    for j in 0..3 {
        assert!((reference[(2, j)] - got[(2, j)]).abs() < 1e-10);
    }
}

/// Extreme value magnitudes must not produce NaN/Inf anywhere.
#[test]
fn extreme_value_magnitudes_stay_finite() {
    for scale in [1e-12, 1e12] {
        let x = SparseTensor::new(
            vec![15, 12, 10],
            vec![
                (0..150u32).map(|k| k % 15).collect(),
                (0..150u32).map(|k| (k * 5) % 12).collect(),
                (0..150u32).map(|k| (k * 3) % 10).collect(),
            ],
            (0..150).map(|k| scale * (1.0 + (k % 9) as f64)).collect(),
        );
        let cfg = AuntfConfig {
            rank: 3,
            max_iters: 5,
            update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
            format: TensorFormat::Csf,
            seed: 3,
            ..Default::default()
        };
        let out = Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        for f in &out.model.factors {
            assert!(f.all_finite(), "scale {scale} produced non-finite factors");
        }
        assert!(out.model.lambda.iter().all(|l| l.is_finite()), "scale {scale} broke lambda");
        assert!(out.fits.iter().all(|f| f.is_finite()));
    }
}

/// Duplicate coordinates must be merged before factorization, and the
/// merged tensor must behave identically to a pre-merged one.
#[test]
fn duplicate_coordinates_sum_consistently() {
    let mut with_dups = SparseTensor::new(
        vec![5, 5],
        vec![vec![1, 1, 2, 3], vec![2, 2, 3, 4]],
        vec![1.0, 2.0, 5.0, 7.0],
    );
    with_dups.sum_duplicates();
    let merged =
        SparseTensor::new(vec![5, 5], vec![vec![1, 2, 3], vec![2, 3, 4]], vec![3.0, 5.0, 7.0]);
    assert_eq!(with_dups.nnz(), 3);
    let f = factors_for(&[5, 5], 2);
    let a = mttkrp_ref(&with_dups, &f, 0);
    let b = mttkrp_ref(&merged, &f, 0);
    assert_eq!(a.as_slice(), b.as_slice());
}

/// A tensor with a fully-empty mode slice (some indices never appear):
/// the corresponding factor rows should survive (ADMM keeps them finite).
#[test]
fn unused_indices_keep_finite_rows() {
    // Mode-0 indices only use 0..5 of 20.
    let x = SparseTensor::new(
        vec![20, 8, 8],
        vec![
            (0..100u32).map(|k| k % 5).collect(),
            (0..100u32).map(|k| k % 8).collect(),
            (0..100u32).map(|k| (k * 3) % 8).collect(),
        ],
        (0..100).map(|k| 1.0 + (k % 3) as f64).collect(),
    );
    let cfg = AuntfConfig {
        rank: 3,
        max_iters: 5,
        update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
        format: TensorFormat::Alto,
        seed: 4,
        ..Default::default()
    };
    let out = Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::a100())).unwrap();
    let h0 = &out.model.factors[0];
    for i in 0..20 {
        for j in 0..3 {
            assert!(h0[(i, j)].is_finite(), "row {i} went non-finite");
            assert!(h0[(i, j)] >= 0.0);
        }
    }
}
