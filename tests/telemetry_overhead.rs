//! Enforces the telemetry overhead budget (DESIGN.md §Observability):
//! running the solver with span recording **enabled** must cost less than
//! 2% wall-clock over the disabled default.
//!
//! Method: best-of-N minimum times (the standard noise-robust estimator
//! for deterministic workloads) on an identical factorization, spans off
//! vs. spans on. Convergence logging and the profiler are active in both
//! arms — they are always on — so the comparison isolates exactly the
//! span layer, which is the only part with a per-event hot-path cost.

use cstf_core::{Auntf, AuntfConfig};
use cstf_device::{Device, DeviceSpec};
use cstf_telemetry::{set_spans_enabled, spans};
use cstf_tensor::SparseTensor;

fn workload() -> SparseTensor {
    cstf_data::by_name("Uber").unwrap().generate_scaled(30_000, 7)
}

fn run_once(x: &SparseTensor) -> f64 {
    let cfg = AuntfConfig { rank: 8, max_iters: 4, seed: 1, ..Default::default() };
    let auntf = Auntf::new(x.clone(), cfg);
    let dev = Device::new(DeviceSpec::h100());
    let t0 = std::time::Instant::now();
    auntf.factorize(&dev).unwrap();
    t0.elapsed().as_secs_f64()
}

fn best_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..n).map(|_| f()).fold(f64::INFINITY, f64::min)
}

#[test]
fn span_recording_stays_within_two_percent_overhead() {
    let x = workload();
    run_once(&x); // warm-up: Rayon pool, lazy statics, allocator arenas

    set_spans_enabled(false);
    let base = best_of(5, || run_once(&x));

    set_spans_enabled(true);
    let instrumented = best_of(5, || {
        spans::clear(); // keep buffers from growing unboundedly across reps
        run_once(&x)
    });
    set_spans_enabled(false);
    spans::clear();

    // 2% relative budget plus 2ms absolute slack for timer jitter on runs
    // this short.
    let budget = base * 1.02 + 0.002;
    assert!(
        instrumented <= budget,
        "span overhead over budget: disabled {base:.4}s, enabled {instrumented:.4}s \
         (budget {budget:.4}s)"
    );
}
