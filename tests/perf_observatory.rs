//! Pinned regression tests for the performance observatory: the §3.3
//! arithmetic-intensity band out of `cstf analyze`, the byte ordering of
//! the ADMM variants, Prometheus text-format correctness (names, escaping,
//! HELP/TYPE pairing, stable ordering, golden file), and the baseline
//! record→compare loop through the CLI.

use cstf_cli::{dispatch, parse};
use cstf_device::{Device, DeviceSpec, KernelClass, KernelCost, Phase};
use cstf_telemetry::{parse_prometheus, Registry};

/// Runs the CLI in-process and returns captured stdout.
fn cli(args: &[&str]) -> String {
    let parsed = parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
    let mut buf = Vec::new();
    dispatch(&parsed, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn analyze_json(update: &str, rank: usize) -> serde_json::Value {
    let rank = rank.to_string();
    let out = cli(&[
        "analyze",
        "--dataset",
        "NELL2",
        "--nnz",
        "4000",
        "--rank",
        &rank,
        "--iters",
        "2",
        "--update",
        update,
        "--format",
        "coo",
        "--device",
        "a100",
        "--json",
    ]);
    serde_json::from_str(&out).expect("analyze --json emits valid JSON")
}

/// §3.3 / Eq. 5: the unfused ADMM update sits in the paper's AI band
/// (≈ 0.29–0.83 flop/byte across R = 16–64), each measured point agrees
/// with the closed form within 5%, and every mode is bandwidth-bound on
/// the A100 (AI far below its ~4.8 flop/byte ridge point).
#[test]
fn analyze_reproduces_the_admm_intensity_band_on_a100() {
    let mut last_ai = 0.0;
    for rank in [16usize, 32, 64] {
        let v = analyze_json("admm", rank);
        let modes = v["admm_ai"].as_array().unwrap();
        assert_eq!(modes.len(), 3, "three tensor modes");
        for m in modes {
            let ai = m["measured_ai"].as_f64().unwrap();
            // The paper rounds the band to [0.29, 0.83]; the closed form at
            // finite I lands a hair outside the rounded endpoints.
            assert!((0.28..=0.84).contains(&ai), "R={rank}: AI {ai} outside band");
            let dev = m["deviation"].as_f64().unwrap();
            assert!(dev < 0.05, "R={rank}: {dev:.4} off Eq. 5");
            assert_eq!(m["flagged"], false);
            assert_eq!(m["bound"], "bandwidth", "R={rank}: unfused ADMM must be bandwidth-bound");
        }
        let ai = modes[0]["measured_ai"].as_f64().unwrap();
        assert!(ai > last_ai, "AI must grow with rank");
        last_ai = ai;
    }
}

/// UPDATE-phase bytes from the per-key table under one config. Only
/// launches attributed to the UPDATE phase count — the fusion/pre-inversion
/// savings the paper claims live entirely there.
fn update_bytes(v: &serde_json::Value) -> f64 {
    v["devices"][0]["kernels"]
        .as_array()
        .unwrap()
        .iter()
        .filter(|k| k["phase"] == "UPDATE")
        .map(|k| k["bytes"].as_f64().unwrap())
        .sum()
}

/// Acceptance: the fused / pre-inverted variants move strictly fewer
/// UPDATE bytes than the generic unfused ADMM in the per-key table.
#[test]
fn fused_and_preinverted_variants_move_strictly_fewer_bytes() {
    let unfused = update_bytes(&analyze_json("admm", 16));
    let cuadmm = update_bytes(&analyze_json("cuadmm", 16));
    let fused = update_bytes(&analyze_json("cuadmm-fused", 16));
    assert!(cuadmm < unfused, "cuADMM {cuadmm} !< unfused {unfused}");
    assert!(fused < unfused, "fused {fused} !< unfused {unfused}");
}

/// Every key the attribution table assigns a finite intensity must also
/// carry a bound consistent with the A100 ridge point when not
/// latency-dominated.
#[test]
fn attribution_bounds_are_consistent_with_the_ridge() {
    let v = analyze_json("admm", 32);
    let ridge = v["ridge_intensity"].as_f64().unwrap();
    assert!((ridge - DeviceSpec::a100().ridge_intensity()).abs() < 1e-12);
    for k in v["devices"][0]["kernels"].as_array().unwrap() {
        let ai = k["intensity"].as_f64().unwrap();
        match k["bound"].as_str().unwrap() {
            "bandwidth" => assert!(ai <= ridge, "{k}"),
            "compute" => assert!(ai == -1.0 || ai > 0.0, "{k}"),
            "latency" => {}
            other => panic!("unknown bound {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Prometheus text-format correctness (satellite: golden-file + validity).
// ---------------------------------------------------------------------------

/// A fully deterministic registry: no device, no wall-clock.
fn golden_registry() -> Registry {
    let r = Registry::new();
    r.counter_add("cstf_launches_total", "Kernel launches recorded in this run", 7.0);
    r.counter_add_labeled(
        "cstf_kernel_flops_total",
        "Exact flops per (phase, kernel, mode) attribution key",
        &[("phase", "UPDATE"), ("kernel", "trsm_fwd_bwd"), ("mode", "2")],
        1024.0,
    );
    r.counter_add_labeled(
        "cstf_kernel_flops_total",
        "Exact flops per (phase, kernel, mode) attribution key",
        &[("phase", "MTTKRP"), ("kernel", "mttkrp"), ("mode", "0")],
        4096.0,
    );
    r.gauge_set("cstf_occupancy_mean", "Mean occupancy proxy", 0.25);
    r
}

/// Golden file: the exposition text is byte-stable — families in sorted
/// name order, series in sorted-label order, one HELP/TYPE pair per
/// family.
#[test]
fn prometheus_exposition_matches_the_golden_text() {
    let expected = "\
# HELP cstf_kernel_flops_total Exact flops per (phase, kernel, mode) attribution key\n\
# TYPE cstf_kernel_flops_total counter\n\
cstf_kernel_flops_total{kernel=\"mttkrp\",mode=\"0\",phase=\"MTTKRP\"} 4096\n\
cstf_kernel_flops_total{kernel=\"trsm_fwd_bwd\",mode=\"2\",phase=\"UPDATE\"} 1024\n\
# HELP cstf_launches_total Kernel launches recorded in this run\n\
# TYPE cstf_launches_total counter\n\
cstf_launches_total 7\n\
# HELP cstf_occupancy_mean Mean occupancy proxy\n\
# TYPE cstf_occupancy_mean gauge\n\
cstf_occupancy_mean 2.5e-1\n";
    assert_eq!(golden_registry().to_prometheus(), expected);
    // And rendering twice is identical (stable ordering).
    assert_eq!(golden_registry().to_prometheus(), golden_registry().to_prometheus());
}

fn is_valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().unwrap().is_ascii_alphabetic()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Structural validity of a real capture's exposition: every line is a
/// comment or a sample, every family has exactly one HELP and one TYPE
/// line (HELP first), and all metric names are legal.
#[test]
fn real_capture_exposition_is_structurally_valid() {
    let spec = DeviceSpec::a100();
    let dev = Device::new(spec.clone());
    for mode in 0..2u32 {
        dev.set_mode(Some(mode as usize));
        dev.launch(
            "mttkrp",
            Phase::Mttkrp,
            KernelClass::SparseGather,
            KernelCost {
                flops: 1e6,
                bytes_read: 8e6,
                parallel_work: 1e6,
                serial_steps: 1.0,
                ..Default::default()
            },
            || (),
        );
    }
    dev.set_mode(None);
    let capture = dev.take_run();
    let text = cstf_device::registry_from_capture(&capture, &spec).to_prometheus();

    let mut seen_help = std::collections::HashSet::new();
    let mut seen_type = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap();
            assert!(is_valid_metric_name(name), "bad metric name {name}");
            assert!(seen_help.insert(name.to_string()), "duplicate HELP for {name}");
            assert!(!seen_type.contains(name), "HELP must precede TYPE for {name}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(["counter", "gauge", "histogram"].contains(&kind), "bad type {kind}");
            assert!(seen_type.insert(name.to_string()), "duplicate TYPE for {name}");
            assert!(seen_help.contains(name), "TYPE without HELP for {name}");
        } else {
            // A sample line: name[{labels}] value.
            let name_end = line.find(['{', ' ']).unwrap();
            assert!(is_valid_metric_name(&line[..name_end]), "bad sample name in {line}");
        }
    }
    // The per-key series are present and the whole text round-trips
    // through the parser.
    let samples = parse_prometheus(&text).expect("valid exposition");
    let per_key: Vec<_> =
        samples.iter().filter(|s| s.name == "cstf_kernel_launches_total").collect();
    assert_eq!(per_key.len(), 2, "one series per mode key");
}

/// Label values survive escaping round-trips: backslash, quote, newline.
#[test]
fn label_value_escaping_round_trips_through_the_parser() {
    let r = Registry::new();
    r.counter_add_labeled(
        "cstf_test_total",
        "escaping probe",
        &[("path", "a\\b\"c\nd"), ("plain", "ok")],
        1.0,
    );
    let text = r.to_prometheus();
    assert!(text.contains("path=\"a\\\\b\\\"c\\nd\""), "{text}");
    let samples = parse_prometheus(&text).expect("escaped text parses");
    assert_eq!(samples.len(), 1);
    assert_eq!(samples[0].value, 1.0);
}

// ---------------------------------------------------------------------------
// Baseline store semantics through the public API.
// ---------------------------------------------------------------------------

/// Record→compare on identical captures yields no deltas at all; a flop
/// change on one key is drift that names exactly that key.
#[test]
fn baseline_compare_is_exact_and_names_the_offending_key() {
    let spec = DeviceSpec::a100();
    let run = |extra_flops: f64| {
        let dev = Device::new(spec.clone());
        dev.set_mode(Some(1));
        dev.launch(
            "trsm_fwd_bwd",
            Phase::Update,
            KernelClass::Trsm,
            KernelCost {
                flops: 1e5 + extra_flops,
                bytes_read: 8e5,
                parallel_work: 1e5,
                serial_steps: 1.0,
                ..Default::default()
            },
            || (),
        );
        dev.set_mode(None);
        dev.take_run()
    };
    let mk = |capture: &cstf_device::RunCapture| {
        let kernels = capture
            .kernels
            .iter()
            .map(|(k, t)| cstf_device::KernelBaseline::from_totals(0, k, t))
            .collect();
        cstf_device::PerfBaseline {
            schema_version: cstf_device::baseline::BASELINE_SCHEMA_VERSION,
            dataset: "synthetic".into(),
            format: "coo".into(),
            rank: 16,
            update: "admm".into(),
            gpus: 1,
            device: spec.name.to_string(),
            kernels,
        }
    };
    let base = mk(&run(0.0));
    // Round-trip through JSON, exactly as the CLI stores it.
    let restored = cstf_device::PerfBaseline::from_json(&base.to_json_pretty()).unwrap();
    let same = cstf_device::compare_baselines(&restored, &mk(&run(0.0))).unwrap();
    assert!(same.iter().all(|d| !d.is_drift()), "{same:?}");

    let drift = cstf_device::compare_baselines(&restored, &mk(&run(64.0))).unwrap();
    let drifting: Vec<_> = drift.iter().filter(|d| d.is_drift()).collect();
    assert_eq!(drifting.len(), 1);
    assert_eq!(drifting[0].key, "gpu0 UPDATE/trsm_fwd_bwd/1");
    assert_eq!(drifting[0].field, "flops");
}
