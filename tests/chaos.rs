//! Chaos suite: end-to-end fault-tolerance guarantees under seeded,
//! deterministic fault injection.
//!
//! The contracts proven here (see DESIGN.md §Fault model & recovery):
//!
//! 1. A run under a bounded seeded [`FaultPlan`] reaches `Ok` and its
//!    factors/fits are **bitwise identical** to the fault-free run —
//!    every recovery action replays a deterministic kernel from clean
//!    state, so healing leaves no numerical trace.
//! 2. Silent NaN corruption is caught by the sentinels and healed the
//!    same way.
//! 3. When the retry budget is exhausted the run fails loudly with a
//!    typed [`FactorizeError::Fault`], never a panic or silent garbage.
//! 4. A run interrupted and resumed from its latest checkpoint is
//!    bitwise identical to an uninterrupted run, even when the newest
//!    snapshot is corrupt (fallback to an older one) and even when the
//!    resumed leg itself takes injected faults.

use cstf_core::admm::AdmmConfig;
use cstf_core::{
    Auntf, AuntfConfig, CheckpointConfig, FactorizeError, FactorizeOutput, TensorFormat,
    UpdateMethod,
};
use cstf_data::SynthSpec;
use cstf_device::{Device, DeviceSpec, FaultPlan};
use cstf_tensor::SparseTensor;

fn workload() -> SparseTensor {
    cstf_data::generate(&SynthSpec {
        shape: vec![24, 20, 16],
        nnz: 3_000,
        rank: 4,
        noise: 0.02,
        factor_sparsity: 0.3,
        seed: 11,
    })
}

fn config(max_iters: usize) -> AuntfConfig {
    AuntfConfig {
        rank: 4,
        max_iters,
        fit_tol: 0.0, // fixed iteration count so trajectories are comparable
        update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
        format: TensorFormat::Blco,
        seed: 3,
        ..Default::default()
    }
}

fn run(max_iters: usize, plan: Option<FaultPlan>) -> Result<FactorizeOutput, FactorizeError> {
    let mut dev = Device::new(DeviceSpec::h100());
    if let Some(p) = plan {
        dev = dev.with_fault_plan(p);
    }
    Auntf::new(workload(), config(max_iters)).factorize(&dev)
}

fn assert_bitwise_equal(a: &FactorizeOutput, b: &FactorizeOutput, label: &str) {
    assert_eq!(a.fits, b.fits, "{label}: fit trajectories differ");
    assert_eq!(a.model.lambda, b.model.lambda, "{label}: lambda differs");
    for (m, (fa, fb)) in a.model.factors.iter().zip(&b.model.factors).enumerate() {
        assert_eq!(fa.as_slice(), fb.as_slice(), "{label}: factor {m} differs");
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cstf_chaos_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Contract 1: bounded transient faults across several plan seeds heal
/// with zero numerical drift. The quota (`max`) keeps the correlated
/// fault rolls from ever exceeding the retry budget; the `launch=1.0`
/// rate guarantees the quota is actually spent, so every arm of this
/// test really exercises recovery.
#[test]
fn seeded_faulted_runs_match_the_fault_free_run_bitwise() {
    let clean = run(6, None).expect("fault-free run");
    assert!(clean.recovery.is_clean());
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::parse(&format!("seed={seed},launch=1.0,max=3")).unwrap();
        let out = run(6, Some(plan)).unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));
        assert!(
            out.recovery.transient_retries >= 1,
            "seed {seed}: quota never drawn — the test exercised nothing"
        );
        assert!(!out.recovery.is_clean());
        assert_bitwise_equal(&clean, &out, &format!("seed {seed}"));
    }
}

/// Contract 2: silent NaN corruption never escapes. The sentinel sees
/// the poisoned panel, the recompute replays the deterministic kernel,
/// and the final model is bitwise equal to the fault-free run.
#[test]
fn nan_corruption_is_caught_and_healed_exactly() {
    let clean = run(6, None).expect("fault-free run");
    let plan = FaultPlan::parse("seed=2,nan=1.0,max=2").unwrap();
    let out = run(6, Some(plan)).expect("corrupted run should heal");
    assert!(out.recovery.nan_events >= 1, "no corruption landed — nothing was tested");
    assert_bitwise_equal(&clean, &out, "nan corruption");
    for f in &out.model.factors {
        assert!(f.all_finite());
    }
}

/// Contract 3: an unbounded fault storm exhausts the retry budget and
/// surfaces as a typed error carrying the attempt count — not a panic.
#[test]
fn retry_exhaustion_is_a_typed_error() {
    let plan = FaultPlan::parse("seed=1,launch=1.0").unwrap();
    match run(6, Some(plan)) {
        Err(FactorizeError::Fault { fault, attempts }) => {
            assert!(attempts >= 1);
            assert!(!fault.kernel.is_empty());
        }
        Err(other) => panic!("expected Fault, got {other:?}"),
        Ok(_) => panic!("unbounded fault storm should not converge"),
    }
}

fn run_checkpointed(
    max_iters: usize,
    ckpt: &CheckpointConfig,
    resume: bool,
    plan: Option<FaultPlan>,
) -> Result<FactorizeOutput, FactorizeError> {
    let mut dev = Device::new(DeviceSpec::h100());
    if let Some(p) = plan {
        dev = dev.with_fault_plan(p);
    }
    Auntf::new(workload(), config(max_iters)).factorize_checkpointed(&dev, ckpt, resume)
}

/// Contract 4a: interrupt at iteration 4 (snapshot every 2), resume to
/// 8 — the stitched trajectory is bitwise identical to an uninterrupted
/// 8-iteration run.
#[test]
fn interrupted_run_resumes_bitwise_identically() {
    let dir = tmpdir("resume");
    let ckpt = CheckpointConfig::new(&dir, 2);
    run_checkpointed(4, &ckpt, false, None).expect("interrupted leg");
    let resumed = run_checkpointed(8, &ckpt, true, None).expect("resumed leg");
    let uninterrupted = run(8, None).expect("uninterrupted run");
    assert_eq!(resumed.iters, 8);
    assert_bitwise_equal(&uninterrupted, &resumed, "resume");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Contract 4b: a corrupt newest snapshot is skipped — resume falls
/// back to the previous valid one and still reproduces the
/// uninterrupted run exactly.
#[test]
fn corrupt_newest_snapshot_falls_back_and_stays_exact() {
    let dir = tmpdir("fallback");
    let ckpt = CheckpointConfig::new(&dir, 2);
    run_checkpointed(4, &ckpt, false, None).expect("interrupted leg");

    let newest = dir.join("ckpt-00000004.cstf");
    let text = std::fs::read_to_string(&newest).expect("newest snapshot exists");
    std::fs::write(&newest, text.replacen("factor", "factoR", 1)).unwrap();

    let resumed = run_checkpointed(8, &ckpt, true, None).expect("resume past corruption");
    let uninterrupted = run(8, None).expect("uninterrupted run");
    assert_bitwise_equal(&uninterrupted, &resumed, "corrupt fallback");
    let _ = std::fs::remove_dir_all(&dir);
}

mod byte_flip {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Contract 4b, generalized: flipping *any single bit of any byte*
        /// of the newest snapshot — payload, checksum line, header,
        /// trailing newline — makes the loader skip it (with a warning on
        /// stderr) and fall back to the previous valid snapshot, and the
        /// resumed run still lands bitwise-exactly on the uninterrupted
        /// one. The FNV-1a checksum covers every payload byte, so no flip
        /// can smuggle a silently-different state through a resume.
        #[test]
        fn any_byte_flip_falls_back_to_previous_snapshot(
            pos_seed in any::<u64>(),
            bit in 0u32..8,
        ) {
            let dir = tmpdir(&format!("byteflip-{pos_seed:x}-{bit}"));
            let ckpt = CheckpointConfig::new(&dir, 2);
            run_checkpointed(4, &ckpt, false, None).expect("interrupted leg");

            let newest = dir.join("ckpt-00000004.cstf");
            let mut bytes = std::fs::read(&newest).expect("newest snapshot exists");
            prop_assert!(!bytes.is_empty());
            let pos = (pos_seed as usize) % bytes.len();
            bytes[pos] ^= 1u8 << bit;
            std::fs::write(&newest, &bytes).unwrap();

            let resumed = run_checkpointed(8, &ckpt, true, None)
                .expect("resume must skip the corrupt snapshot, not fail");
            let uninterrupted = run(8, None).expect("uninterrupted run");
            assert_bitwise_equal(&uninterrupted, &resumed, "byte-flip fallback");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Contract 4c: fault injection and checkpoint/resume compose — a
/// faulted interrupted leg plus a faulted resumed leg still lands
/// bitwise-exactly on the fault-free uninterrupted run.
#[test]
fn faults_and_checkpoint_resume_compose() {
    let dir = tmpdir("compose");
    let ckpt = CheckpointConfig::new(&dir, 2);
    let plan = |seed: u64| FaultPlan::parse(&format!("seed={seed},launch=1.0,max=2")).unwrap();
    let first = run_checkpointed(4, &ckpt, false, Some(plan(5))).expect("faulted first leg");
    assert!(first.recovery.transient_retries >= 1);
    let resumed = run_checkpointed(8, &ckpt, true, Some(plan(6))).expect("faulted resumed leg");
    assert!(resumed.recovery.transient_retries >= 1);
    let uninterrupted = run(8, None).expect("uninterrupted fault-free run");
    assert_bitwise_equal(&uninterrupted, &resumed, "faults + resume");
    let _ = std::fs::remove_dir_all(&dir);
}
