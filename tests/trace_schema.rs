//! Schema validation for the `trace.json` artifact: every event a
//! `--telemetry` run emits must be loadable by the Chrome trace viewers
//! (Perfetto, `chrome://tracing`) — a JSON array of objects whose shape
//! depends on the phase code. Covers single-device and sharded runs,
//! including the critical-path flow arrows the op-DAG layer adds.

use cstf_cli::{dispatch, parse};

fn cli(args: &[&str]) -> String {
    let parsed = parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
    let mut buf = Vec::new();
    dispatch(&parsed, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn run_and_load(tag: &str, extra: &[&str]) -> (Vec<serde_json::Value>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("cstf_trace_schema_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let d = dir.to_str().unwrap().to_string();
    let mut args = vec![
        "factorize",
        "--dataset",
        "Uber",
        "--nnz",
        "2000",
        "--rank",
        "3",
        "--iters",
        "2",
        "--seed",
        "0",
        "--telemetry",
        &d,
    ];
    args.extend_from_slice(extra);
    cli(&args);
    let text = std::fs::read_to_string(dir.join("trace.json")).expect("trace.json written");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("trace is valid JSON");
    let events = parsed.as_array().expect("trace is a JSON array").clone();
    (events, dir)
}

/// Chrome-trace invariants that hold for every event kind we emit.
fn validate(events: &[serde_json::Value]) {
    assert!(!events.is_empty(), "trace must not be empty");
    for e in events {
        let obj = e.as_object().expect("every event is an object");
        let name = obj.get("name").and_then(|n| n.as_str()).expect("string name");
        let ph = obj.get("ph").and_then(|p| p.as_str()).expect("string ph");
        assert!(
            matches!(ph, "M" | "X" | "C" | "i" | "s" | "f"),
            "unknown phase code {ph:?} on {name:?}"
        );
        assert!(obj.get("pid").and_then(|p| p.as_u64()).is_some(), "{name}: numeric pid");
        match ph {
            // Metadata events carry their payload in args, no timestamp.
            "M" => {
                assert!(obj.get("args").and_then(|a| a.as_object()).is_some());
            }
            // Complete events: timestamp + duration, both non-negative.
            "X" => {
                assert!(e["ts"].as_f64().unwrap() >= 0.0, "{name}: ts");
                assert!(e["dur"].as_f64().unwrap() >= 0.0, "{name}: dur");
                assert!(obj.get("tid").and_then(|t| t.as_u64()).is_some());
            }
            // Counter samples: args holds the sampled values.
            "C" => {
                assert!(e["ts"].as_f64().is_some(), "{name}: ts");
                assert!(obj.get("args").and_then(|a| a.as_object()).is_some());
            }
            // Instants: timestamp plus a scope marker.
            "i" => {
                assert!(e["ts"].as_f64().is_some(), "{name}: ts");
                assert!(obj.get("s").and_then(|s| s.as_str()).is_some(), "{name}: scope");
            }
            // Flow arrows: s/f pairs matched by (cat, id); checked below.
            "s" | "f" => {
                assert!(e["ts"].as_f64().is_some(), "{name}: ts");
                assert!(obj.get("cat").and_then(|c| c.as_str()).is_some());
                assert!(obj.get("id").and_then(|i| i.as_u64()).is_some());
            }
            _ => unreachable!(),
        }
    }

    // Every flow start has exactly one finish with the same (cat, id), and
    // every finish binds to its enclosing slice (`"bp": "e"`).
    let flows = |ph: &str| -> Vec<(String, u64)> {
        events
            .iter()
            .filter(|e| e["ph"] == ph)
            .map(|e| (e["cat"].as_str().unwrap().to_string(), e["id"].as_u64().unwrap()))
            .collect()
    };
    let starts = flows("s");
    let finishes = flows("f");
    assert_eq!(starts.len(), finishes.len(), "unbalanced flow arrows");
    for key in &starts {
        assert_eq!(
            finishes.iter().filter(|k| *k == key).count(),
            1,
            "flow {key:?} must have exactly one finish"
        );
    }
    for e in events.iter().filter(|e| e["ph"] == "f") {
        assert_eq!(e["bp"], "e", "flow finish must bind to the enclosing slice");
    }
}

#[test]
fn single_device_trace_is_schema_valid_with_critical_path_flows() {
    let (events, dir) = run_and_load("single", &[]);
    validate(&events);

    // The op-DAG layer adds critical-path flow arrows; a serial run's
    // chain covers every op, so arrows must be present.
    let cp: Vec<_> = events.iter().filter(|e| e["cat"] == "critical_path").collect();
    assert!(!cp.is_empty(), "critical-path flow arrows present");
    assert!(cp.iter().all(|e| e["name"] == "critical_path"));

    // The classic kinds are all still there.
    for ph in ["X", "C", "i", "s", "f"] {
        assert!(events.iter().any(|e| e["ph"] == ph), "missing {ph} events");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_trace_names_one_process_per_device_plus_host() {
    let gpus = 3u64;
    let (events, dir) = run_and_load("sharded", &["--gpus", "3"]);
    validate(&events);

    // Process-name metadata: gpu0..gpu2 on pids 1..=3, host on pid 4.
    let proc_name = |pid: u64| {
        events
            .iter()
            .find(|e| e["ph"] == "M" && e["name"] == "process_name" && e["pid"] == pid)
            .map(|e| e["args"]["name"].as_str().unwrap().to_string())
    };
    for d in 0..gpus {
        assert_eq!(proc_name(d + 1).as_deref(), Some(format!("gpu{d}").as_str()));
        assert!(events.iter().any(|e| e["ph"] == "X" && e["pid"] == d + 1), "gpu{d} has op boxes");
    }
    assert_eq!(proc_name(gpus + 1).as_deref(), Some("host"));

    // The sharded chain spans devices: critical-path arrows exist and
    // only ever point at device pids.
    let cp: Vec<_> = events.iter().filter(|e| e["cat"] == "critical_path").collect();
    assert!(!cp.is_empty(), "critical-path flow arrows present");
    for e in &cp {
        let pid = e["pid"].as_u64().unwrap();
        assert!((1..=gpus).contains(&pid), "flow arrow on device pid, got {pid}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
