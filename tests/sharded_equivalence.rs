//! Property: the executed multi-device sharded factorization is
//! **bitwise-identical** to the single-device run — for arbitrary small
//! tensors, every storage format, ranks 1–4, and group sizes 1/2/3/4/7
//! (7 exceeds some mode lengths, exercising empty shards) — and a
//! sharded run resumed from a single-device checkpoint replays the
//! remaining iterations to the same bits.
//!
//! This is the CI gate for the exactness argument of DESIGN.md §11.

use cstf_core::{Auntf, AuntfConfig, CheckpointConfig, FactorizeOutput, TensorFormat};
use cstf_device::{Device, DeviceGroup, DeviceSpec, FaultPlan};
use cstf_tensor::SparseTensor;
use proptest::prelude::*;

/// A random small sparse tensor with 3 or 4 modes and distinct coords.
fn tensor_strategy() -> impl Strategy<Value = SparseTensor> {
    (3usize..5, any::<u64>(), 1usize..300).prop_map(|(nmodes, seed, nnz)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let shape: Vec<usize> = (0..nmodes).map(|_| 3 + (next() % 9) as usize).collect();
        let mut seen = std::collections::HashSet::new();
        let mut idx = vec![Vec::new(); nmodes];
        let mut vals = Vec::new();
        for _ in 0..nnz {
            let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
            if seen.insert(c.clone()) {
                for (m, &ci) in c.iter().enumerate() {
                    idx[m].push(ci);
                }
                vals.push(f64::from(next() % 100) / 25.0 + 0.04);
            }
        }
        SparseTensor::new(shape, idx, vals)
    })
}

fn format_strategy() -> impl Strategy<Value = TensorFormat> {
    prop_oneof![
        Just(TensorFormat::Coo),
        Just(TensorFormat::Csf),
        Just(TensorFormat::CsfOne),
        Just(TensorFormat::HiCoo),
        Just(TensorFormat::Alto),
        Just(TensorFormat::Blco),
    ]
}

fn assert_bitwise(a: &FactorizeOutput, b: &FactorizeOutput) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.fits.len(), b.fits.len());
    for (x, y) in a.fits.iter().zip(&b.fits) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "fit differs: {} vs {}", x, y);
    }
    for (x, y) in a.model.lambda.iter().zip(&b.model.lambda) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "lambda differs: {} vs {}", x, y);
    }
    for (fa, fb) in a.model.factors.iter().zip(&b.model.factors) {
        prop_assert_eq!(fa.rows(), fb.rows());
        for (x, y) in fa.as_slice().iter().zip(fb.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "factor entry differs: {} vs {}", x, y);
        }
    }
    Ok(())
}

mod equivalence {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sharded == single-device, bitwise, for every format and group size.
        #[test]
        fn sharded_is_bitwise_identical_to_single_device(
            x in tensor_strategy(),
            format in format_strategy(),
            rank in 1usize..5,
            seed in any::<u64>(),
            gidx in 0usize..5,
        ) {
            let gsize = [1usize, 2, 3, 4, 7][gidx];
            let cfg = AuntfConfig { rank, max_iters: 3, seed, format, ..Default::default() };
            let auntf = Auntf::new(x, cfg);
            let single = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();
            let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), gsize);
            let sharded = auntf.factorize_sharded(&group).unwrap();
            assert_bitwise(&single, &sharded)?;
            // Every device must have metered real work when it owns nonzeros.
            prop_assert!(group.devices().iter().any(|d| d.total_seconds() > 0.0));
        }
    }
}

mod checkpoint_interop {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// A single-device checkpoint resumed *sharded* replays the remaining
        /// iterations to the bits of an uninterrupted single-device run.
        #[test]
        fn sharded_resume_from_single_device_checkpoint_is_bitwise(
            x in tensor_strategy(),
            rank in 1usize..4,
            seed in any::<u64>(),
            gidx in 0usize..3,
        ) {
            let gsize = [2usize, 3, 4][gidx];
        let dir = std::env::temp_dir().join(format!(
            "cstf-sharded-prop-{}-{seed:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let full = AuntfConfig { rank, max_iters: 5, seed, ..Default::default() };
        let auntf = Auntf::new(x.clone(), full.clone());
        let uninterrupted = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();

        // Leg 1: three iterations on one device, snapshotting.
        let short = Auntf::new(x, AuntfConfig { max_iters: 3, ..full });
        let ck = CheckpointConfig::new(&dir, 3);
        short
            .factorize_checkpointed(&Device::new(DeviceSpec::h100()), &ck, false)
            .unwrap();

        // Leg 2: resume sharded across `gsize` devices.
        let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), gsize);
        let resumed = auntf.factorize_sharded_checkpointed(&group, &ck, true).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_bitwise(&uninterrupted, &resumed)?;
        }
    }
}

mod elasticity {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Losing device `lose` at outer iteration `at` is bitwise-identical
        /// to a clean run on the surviving group resumed from the state
        /// committed at iteration `at` — and, transitively, to the
        /// uninterrupted single-device run. Every format, g in {2, 3, 4}.
        #[test]
        fn device_loss_equals_clean_survivor_resume(
            x in tensor_strategy(),
            format in format_strategy(),
            rank in 1usize..4,
            seed in any::<u64>(),
            gidx in 0usize..3,
            lose in 0usize..4,
            at in 1usize..4,
        ) {
            let gsize = [2usize, 3, 4][gidx];
            let lose = lose % gsize;
            let cfg = AuntfConfig { rank, max_iters: 4, seed, format, ..Default::default() };
            let auntf = Auntf::new(x.clone(), cfg.clone());

            // The chaos run: the full group loses member `lose` at `at`.
            let plan = FaultPlan::parse(&format!("device-loss:{lose}@it{at}")).unwrap();
            let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), gsize).with_faults(&plan);
            let lossy = auntf.factorize_sharded(&group).unwrap();
            prop_assert!(lossy.elasticity.loss_detections >= 1);
            prop_assert_eq!(lossy.elasticity.reshards, 1);
            prop_assert_eq!(lossy.elasticity.retired.len(), 1);
            prop_assert_eq!(lossy.elasticity.retired[0].device, lose);
            prop_assert_eq!(lossy.elasticity.retired[0].iteration, at);

            // The clean reference: `at` iterations on a healthy group of the
            // same size, then resume on the surviving group of g-1 devices
            // from that committed state.
            let dir = std::env::temp_dir().join(format!(
                "cstf-elastic-prop-{}-{seed:x}-{gsize}-{lose}-{at}-{format:?}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let short = Auntf::new(x.clone(), AuntfConfig { max_iters: at, ..cfg.clone() });
            let ck = CheckpointConfig::new(&dir, 1);
            let clean_full = DeviceGroup::homogeneous(&DeviceSpec::h100(), gsize);
            short.factorize_sharded_checkpointed(&clean_full, &ck, false).unwrap();
            let survivors = DeviceGroup::homogeneous(&DeviceSpec::h100(), gsize - 1);
            let resumed = auntf.factorize_sharded_checkpointed(&survivors, &ck, true).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            assert_bitwise(&lossy, &resumed)?;

            let single = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();
            assert_bitwise(&single, &lossy)?;
        }

        /// Stragglers and degraded links change modeled time only: the run
        /// stays bitwise-identical to fault-free and the deadline monitor
        /// trips at the configured budget.
        #[test]
        fn stragglers_and_degraded_links_are_bitwise_neutral(
            x in tensor_strategy(),
            format in format_strategy(),
            rank in 1usize..4,
            seed in any::<u64>(),
            gidx in 0usize..3,
            slow in 5u32..12,
        ) {
            let gsize = [2usize, 3, 4][gidx];
            let cfg = AuntfConfig { rank, max_iters: 3, seed, format, ..Default::default() };
            let auntf = Auntf::new(x, cfg);
            let single = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();

            let plan = FaultPlan::parse(
                &format!("straggler:0x{slow},link-degrade:0-1x{slow}")
            ).unwrap();
            let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), gsize).with_faults(&plan);
            let out = auntf.factorize_sharded(&group).unwrap();
            assert_bitwise(&single, &out)?;
            prop_assert!(out.recovery.is_clean());
            prop_assert!(out.elasticity.retired.is_empty());
            prop_assert_eq!(out.elasticity.reshards, 0);
            prop_assert!(
                out.elasticity.total_deadline_trips() > 0,
                "a {}x slowdown must trip the default 4x budget", slow
            );
        }
    }
}
