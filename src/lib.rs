//! Umbrella crate re-exporting the cSTF-rs stack for examples and integration tests.
pub use cstf_core as core;
pub use cstf_data as data;
pub use cstf_device as device;
pub use cstf_formats as formats;
pub use cstf_linalg as linalg;
pub use cstf_streaming as streaming;
pub use cstf_tensor as tensor;
