//! Trend analysis on streaming data — another of the paper's motivating
//! applications. A (user x topic) activity stream is ingested one time
//! step at a time; the temporal factor's columns expose each latent
//! component's activity curve, so rising trends show up as growing
//! temporal loadings.
//!
//! ```text
//! cargo run --release --example streaming_trends
//! ```

use cstf_streaming::{SliceTensor, StreamingConfig, StreamingCstf};
use cstf_suite::device::{Device, DeviceSpec};
use cstf_suite::linalg::Mat;

/// Builds one time step of synthetic activity: a stable community plus an
/// emerging trend whose intensity ramps with `t`.
fn make_slice(users: usize, topics: usize, t: usize, steps: usize) -> SliceTensor {
    let mut idx = vec![Vec::new(), Vec::new()];
    let mut vals = Vec::new();
    // Stable community: users 0..u/2 on topics 0..3, constant intensity.
    for u in 0..users / 2 {
        for topic in 0..3usize {
            idx[0].push(u as u32);
            idx[1].push(topic as u32);
            vals.push(1.0 + ((u + topic) % 3) as f64 * 0.2);
        }
    }
    // Emerging trend: users u/2.. on topics 8..10, ramping from 0 to 3.
    let ramp = 3.0 * t as f64 / steps as f64;
    if ramp > 0.05 {
        for u in users / 2..users {
            for topic in 8..10usize.min(topics) {
                idx[0].push(u as u32);
                idx[1].push(topic as u32);
                vals.push(ramp * (1.0 + (u % 2) as f64 * 0.3));
            }
        }
    }
    SliceTensor::new(vec![users, topics], idx, vals)
}

fn main() {
    let (users, topics, steps) = (40usize, 12usize, 30usize);
    let dev = Device::new(DeviceSpec::h100());
    let mut tracker = StreamingCstf::new(
        vec![users, topics],
        StreamingConfig { rank: 4, forgetting: 0.9, refresh_passes: 2, ..Default::default() },
    );

    for t in 0..steps {
        let slice = make_slice(users, topics, t, steps);
        tracker.ingest(&dev, &slice).expect("fault-free ingest");
    }

    let temporal: Mat = tracker.temporal_factor();
    println!("temporal factor ({} steps x rank {}):\n", temporal.rows(), temporal.cols());
    println!("step   component loadings");
    for t in (0..steps).step_by(3) {
        print!("{t:>4}   ");
        for r in 0..temporal.cols() {
            print!("{:>8.3}", temporal[(t, r)]);
        }
        println!();
    }

    // Identify the trending component: the one whose temporal loading grew
    // the most between the first and last thirds of the stream.
    let third = steps / 3;
    let growth: Vec<f64> = (0..temporal.cols())
        .map(|r| {
            let early: f64 = (0..third).map(|t| temporal[(t, r)]).sum::<f64>() / third as f64;
            let late: f64 =
                (steps - third..steps).map(|t| temporal[(t, r)]).sum::<f64>() / third as f64;
            late - early
        })
        .collect();
    let (trend_r, &trend_growth) =
        growth.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();

    println!("\ncomponent {trend_r} is the emerging trend (loading growth {trend_growth:+.3})");

    // Its topic profile must concentrate on the trending topics (8, 9).
    let topic_factor = &tracker.factors()[1];
    let mut topic_weights: Vec<(usize, f64)> =
        (0..topics).map(|k| (k, topic_factor[(k, trend_r)])).collect();
    topic_weights.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top topics of the trend component: {:?}", &topic_weights[..3]);

    assert!(trend_growth > 0.1, "the ramping trend must dominate some component");
    let top2: Vec<usize> = topic_weights[..2].iter().map(|&(k, _)| k).collect();
    assert!(
        top2.contains(&8) && top2.contains(&9),
        "trend component should load on topics 8 and 9, got {top2:?}"
    );
    println!("\n[trend recovered: ramping topics 8-9 isolated in one component]");
}
