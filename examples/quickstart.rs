//! Quickstart: factorize a synthetic non-negative sparse tensor with
//! cuADMM on the simulated H100 and print the fit trajectory and the
//! per-phase time breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cstf_suite::core::admm::AdmmConfig;
use cstf_suite::core::{Auntf, AuntfConfig, TensorFormat, UpdateMethod};
use cstf_suite::data::SynthSpec;
use cstf_suite::device::{Device, DeviceSpec};

fn main() {
    // 1. Generate a workload: a 200 x 150 x 100 sparse tensor with 50k
    //    nonzeros drawn from a planted non-negative rank-8 model.
    let spec = SynthSpec {
        shape: vec![200, 150, 100],
        nnz: 50_000,
        rank: 8,
        noise: 0.02,
        factor_sparsity: 0.3,
        seed: 42,
    };
    let x = cstf_suite::data::generate(&spec);
    println!("tensor: {:?}, nnz = {}, density = {:.2e}", x.shape(), x.nnz(), x.density());

    // 2. Configure the factorization: rank 16, cuADMM (operation fusion +
    //    pre-inversion), BLCO format — the paper's GPU configuration.
    let cfg = AuntfConfig {
        rank: 16,
        max_iters: 25,
        fit_tol: 1e-5,
        update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
        format: TensorFormat::Blco,
        seed: 1,
        ..Default::default()
    };

    // 3. Run on the simulated H100 (numerics are real; time is modeled).
    let dev = Device::new(DeviceSpec::h100());
    let out = Auntf::new(x, cfg).factorize(&dev).expect("fault-free run");

    println!("\nfit trajectory:");
    for (i, fit) in out.fits.iter().enumerate() {
        println!("  iter {:>2}: fit = {fit:.6}", i + 1);
    }
    println!(
        "\nconverged = {}, iterations = {}, final fit = {:.4}",
        out.converged,
        out.iters,
        out.fits.last().unwrap()
    );

    // 4. Inspect the model: factors are non-negative by construction.
    for (m, f) in out.model.factors.iter().enumerate() {
        assert!(f.is_nonnegative(1e-12));
        println!("factor {m}: {} x {}", f.rows(), f.cols());
    }
    println!("lambda: {:?}", &out.model.lambda[..4.min(out.model.lambda.len())]);

    // 5. Phase breakdown from the device profiler (modeled seconds).
    println!("\nmodeled phase breakdown on {}:", dev.spec().name);
    for (phase, totals) in dev.phases() {
        println!(
            "  {:<10} {:>10.3e} s  ({} kernel launches)",
            phase.label(),
            totals.seconds,
            totals.launches
        );
    }
}
