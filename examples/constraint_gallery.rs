//! Constraint gallery: the same tensor factorized under every supported
//! constraint, showing how AO-ADMM's proximity-operator plug-in point
//! (§2.4, §4.3.1) changes the solution's character.
//!
//! Also demonstrates swapping the update scheme entirely (MU, HALS), the
//! flexibility the paper demonstrates in §5.4.
//!
//! ```text
//! cargo run --release --example constraint_gallery
//! ```

use cstf_suite::core::admm::AdmmConfig;
use cstf_suite::core::{
    Auntf, AuntfConfig, Constraint, HalsConfig, MuConfig, TensorFormat, UpdateMethod,
};
use cstf_suite::data::SynthSpec;
use cstf_suite::device::{Device, DeviceSpec};
use cstf_suite::linalg::Mat;

fn sparsity(m: &Mat) -> f64 {
    m.as_slice().iter().filter(|&&v| v.abs() < 1e-10).count() as f64 / m.len() as f64
}

fn main() {
    let spec = SynthSpec {
        shape: vec![80, 70, 60],
        nnz: 20_000,
        rank: 6,
        noise: 0.05,
        factor_sparsity: 0.4,
        seed: 11,
    };
    let x = cstf_suite::data::generate(&spec);
    println!("tensor {:?}, nnz = {}\n", x.shape(), x.nnz());
    println!(
        "{:<28} {:>8} {:>12} {:>12} {:>10}",
        "update / constraint", "fit", "min entry", "max entry", "zeros"
    );

    let admm = |constraint| {
        UpdateMethod::Admm(AdmmConfig { inner_iters: 10, constraint, ..AdmmConfig::cuadmm() })
    };
    let variants: Vec<(&str, UpdateMethod)> = vec![
        ("ADMM / unconstrained", admm(Constraint::Unconstrained)),
        ("ADMM / non-negative", admm(Constraint::NonNegative)),
        ("ADMM / L1 sparse (mu=0.5)", admm(Constraint::SparseL1 { mu: 0.5 })),
        ("ADMM / ridge (mu=1.0)", admm(Constraint::Ridge { mu: 1.0 })),
        ("ADMM / box [0, 1]", admm(Constraint::Box { lo: 0.0, hi: 1.0 })),
        ("ADMM / row simplex", admm(Constraint::Simplex)),
        ("MU / non-negative", UpdateMethod::Mu(MuConfig::default())),
        ("HALS / non-negative", UpdateMethod::Hals(HalsConfig::default())),
    ];

    for (name, update) in variants {
        let cfg = AuntfConfig {
            rank: 6,
            max_iters: 20,
            update,
            format: TensorFormat::Csf,
            seed: 5,
            ..Default::default()
        };
        let dev = Device::new(DeviceSpec::h100());
        let out = Auntf::new(x.clone(), cfg).factorize(&dev).expect("fault-free run");

        let min = out
            .model
            .factors
            .iter()
            .flat_map(|f| f.as_slice())
            .fold(f64::INFINITY, |a, &b| a.min(b));
        let max = out
            .model
            .factors
            .iter()
            .flat_map(|f| f.as_slice())
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let zeros: f64 =
            out.model.factors.iter().map(sparsity).sum::<f64>() / out.model.factors.len() as f64;

        println!(
            "{:<28} {:>8.4} {:>12.4} {:>12.4} {:>9.1}%",
            name,
            out.fits.last().unwrap(),
            min,
            max,
            100.0 * zeros
        );
    }

    println!(
        "\nExpected character: unconstrained may go negative; non-negative\n\
         variants have min >= 0; L1 zeroes a larger share of entries; box\n\
         keeps entries within [0, 1] (scale carried by lambda)."
    );
}
