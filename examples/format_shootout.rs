//! Format shootout: compile one tensor into COO, CSF, ALTO and BLCO,
//! verify all four MTTKRP engines agree numerically, and compare their
//! storage footprints and modeled kernel times on the CPU and both GPUs —
//! a working tour of the paper's format landscape (§2.3).
//!
//! ```text
//! cargo run --release --example format_shootout
//! ```

use cstf_suite::core::auntf::seeded_factors;
use cstf_suite::data::by_name;
use cstf_suite::device::{kernel_time, DeviceSpec, KernelClass, KernelCost};
use cstf_suite::formats::{mttkrp_ref, Alto, Blco, Csf, HiCoo, TrafficEstimate};
use cstf_suite::linalg::Mat;

fn cost_of(t: &TrafficEstimate) -> KernelCost {
    KernelCost {
        flops: t.flops,
        bytes_read: t.bytes_read,
        bytes_written: t.bytes_written,
        gather_traffic: t.gather_bytes,
        parallel_work: t.parallel_work,
        serial_steps: 1.0,
        working_set: t.working_set,
    }
}

fn max_abs_diff(a: &Mat, b: &Mat) -> f64 {
    a.as_slice().iter().zip(b.as_slice()).fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
}

fn main() {
    let rank = 32;
    let entry = by_name("NELL2").expect("catalog entry");
    let x = entry.generate_scaled(entry.default_target_nnz(60_000), 3);
    println!("NELL2 analogue: {:?}, nnz = {}, density = {:.2e}\n", x.shape(), x.nnz(), x.density());

    let factors = seeded_factors(x.shape(), rank, 9);
    let reference = mttkrp_ref(&x, &factors, 0);

    // Compile all formats.
    let csf = Csf::from_coo(&x, 0);
    let alto = Alto::from_coo(&x);
    let blco = Blco::from_coo(&x);
    let hicoo = HiCoo::from_coo(&x);

    // Numerics must agree across every engine.
    for (name, out) in [
        ("CSF", csf.mttkrp(&factors)),
        ("ALTO", alto.mttkrp(&factors, 0)),
        ("BLCO", blco.mttkrp(&factors, 0)),
        ("HiCOO", hicoo.mttkrp(&factors, 0)),
        ("CSF-1", csf.mttkrp_any(&factors, 1)),
    ] {
        if name == "CSF-1" {
            // Non-root target: compare against the mode-1 reference instead.
            let ref1 = mttkrp_ref(&x, &factors, 1);
            let err = max_abs_diff(&out, &ref1);
            println!("{name:<5} MTTKRP max |diff| vs reference = {err:.3e} (mode 1, ONEMODE)");
            assert!(err < 1e-8);
            continue;
        }
        let err = max_abs_diff(&out, &reference);
        println!("{name:<5} MTTKRP max |diff| vs reference = {err:.3e}");
        assert!(err < 1e-8, "{name} diverged from the reference MTTKRP");
    }

    // Storage comparison.
    let coo_bytes = x.nnz() * (x.nmodes() * 4 + 8);
    println!("\nstorage (bytes):");
    println!("  COO   {coo_bytes:>12}");
    println!("  CSF   {:>12}   (x{} trees for ALLMODE)", csf.storage_bytes(), x.nmodes());
    println!(
        "  HiCOO {:>12}   ({} blocks, side {})",
        hicoo.storage_bytes(),
        hicoo.nblocks(),
        hicoo.block_side()
    );
    println!("  ALTO  {:>12}   ({} index bits)", alto.storage_bytes(), alto.index_bits());
    println!(
        "  BLCO  {:>12}   ({} blocks, {} index bits)",
        blco.storage_bytes(),
        blco.nblocks(),
        blco.index_bits()
    );

    // Modeled mode-0 MTTKRP time per device (traffic-driven roofline).
    println!("\nmodeled mode-0 MTTKRP kernel time:");
    println!("{:<28} {:>10} {:>10} {:>10}", "", "Xeon", "A100", "H100");
    let devices = [DeviceSpec::icelake_xeon(), DeviceSpec::a100(), DeviceSpec::h100()];
    for (name, traffic) in [
        ("CSF (CPU format)", csf.mttkrp_traffic(rank)),
        ("ALTO (CPU format)", alto.mttkrp_traffic(0, rank)),
        ("BLCO (GPU format)", blco.mttkrp_traffic(0, rank)),
        ("HiCOO", hicoo.mttkrp_traffic(0, rank)),
    ] {
        let times: Vec<String> = devices
            .iter()
            .map(|d| {
                format!("{:.2e}s", kernel_time(d, KernelClass::SparseGather, &cost_of(&traffic)))
            })
            .collect();
        println!("{:<28} {:>10} {:>10} {:>10}", name, times[0], times[1], times[2]);
    }
}
