//! Anomaly detection with non-negative CP factorization — one of the
//! motivating applications in the paper's introduction (network/behavior
//! anomaly detection).
//!
//! The approach is *baselining* (as in the knowledge-guided tensor
//! decomposition literature the paper cites): fit a low-rank non-negative
//! model to a window of normal multi-aspect event data (source x
//! destination x time), then score incoming events by reconstruction
//! residual. Events the baseline model explains poorly are anomalies. We
//! plant a burst of anomalous events and check they surface at the top of
//! the residual ranking.
//!
//! ```text
//! cargo run --release --example anomaly_detection
//! ```

use cstf_suite::core::admm::AdmmConfig;
use cstf_suite::core::{Auntf, AuntfConfig, TensorFormat, UpdateMethod};
use cstf_suite::data::SynthSpec;
use cstf_suite::device::{Device, DeviceSpec};
use cstf_suite::tensor::SparseTensor;

fn main() {
    // Normal traffic: a planted rank-6 model over 120 sources x 120
    // destinations x 60 time slots.
    let spec = SynthSpec {
        shape: vec![120, 120, 60],
        nnz: 30_000,
        rank: 6,
        noise: 0.01,
        factor_sparsity: 0.2,
        seed: 7,
    };
    let normal = cstf_suite::data::generate(&spec);

    // Fit the baseline model on the normal window only.
    let cfg = AuntfConfig {
        rank: 6,
        max_iters: 30,
        update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
        format: TensorFormat::Blco,
        seed: 3,
        ..Default::default()
    };
    let dev = Device::new(DeviceSpec::a100());
    let out = Auntf::new(normal.clone(), cfg).factorize(&dev).expect("fault-free run");
    println!("baseline model fit on normal window = {:.4}", out.fits.last().unwrap());

    // Incoming events: a fresh batch of normal events (drawn from the same
    // planted generator) plus a burst from one source to scattered
    // destinations in a narrow time window.
    let incoming_normal = cstf_suite::data::generate(&SynthSpec { seed: 8, nnz: 4_000, ..spec });
    let n_anomalies = 40;
    let mut idx: Vec<Vec<u32>> = (0..3).map(|m| incoming_normal.mode_indices(m).to_vec()).collect();
    let mut vals = incoming_normal.values().to_vec();
    let mut planted = Vec::new();
    for k in 0..n_anomalies {
        let coord = [13u32, (k * 7 % 120) as u32, (55 + k % 5) as u32];
        idx[0].push(coord[0]);
        idx[1].push(coord[1]);
        idx[2].push(coord[2]);
        vals.push(25.0); // far above normal magnitudes
        planted.push(coord);
    }
    let x = SparseTensor::new(vec![120, 120, 60], idx, vals);
    println!("scoring {} incoming events ({} anomalous)", x.nnz(), n_anomalies);

    // Rank incoming events by residual against the baseline.
    let mut scored: Vec<(f64, Vec<u32>)> = (0..x.nnz())
        .map(|k| {
            let coord = x.coord(k);
            let residual = (x.values()[k] - out.model.value_at(&coord)).abs();
            (residual, coord)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    // Precision@K: how many of the top-n_anomalies residuals are planted?
    let top: Vec<&Vec<u32>> = scored.iter().take(n_anomalies).map(|(_, c)| c).collect();
    let hits = top.iter().filter(|c| planted.iter().any(|p| p.as_slice() == c.as_slice())).count();
    let precision = hits as f64 / n_anomalies as f64;

    println!("\ntop-5 residuals:");
    for (r, c) in scored.iter().take(5) {
        let mark =
            if planted.iter().any(|p| p.as_slice() == c.as_slice()) { "ANOMALY" } else { "normal" };
        println!("  residual {r:>8.3} at {c:?}  [{mark}]");
    }
    println!("\nprecision@{n_anomalies} = {precision:.2}");
    assert!(precision >= 0.9, "anomaly detection should recover the planted burst");
    println!("[planted anomaly burst recovered]");
}
