//! Reference and COO MTTKRP kernels.
//!
//! [`mttkrp_ref`] is the gold standard every compressed format is tested
//! against: a direct, serial transcription of the sparse MTTKRP definition
//! (paper Fig. 2). [`mttkrp_coo_parallel`] is the parallel baseline: an
//! owner-computes row partition in which every thread scans all nonzeros
//! but accumulates only its own contiguous slice of output rows, keeping
//! each row's accumulation order identical to the serial reference so the
//! parallel result is bitwise-equal to [`mttkrp_ref`].

use rayon::prelude::*;

use cstf_linalg::{simd, tuning, Mat};
use cstf_telemetry::Span;
use cstf_tensor::SparseTensor;

use crate::workspace::MttkrpWorkspace;

/// Scratch-free serial reference MTTKRP.
///
/// `M[i_mode, r] += x * prod_{m != mode} H^(m)[i_m, r]` for every nonzero.
/// Allocating wrapper over [`mttkrp_ref_into`].
pub fn mttkrp_ref(x: &SparseTensor, factors: &[Mat], mode: usize) -> Mat {
    let mut out = Mat::zeros(x.dim(mode), factors[mode].cols());
    let mut ws = MttkrpWorkspace::new();
    mttkrp_ref_into(x, factors, mode, &mut out, &mut ws);
    out
}

/// Serial reference MTTKRP into a caller-owned output.
///
/// `out` is overwritten; `ws` provides the Hadamard scratch row.
///
/// # Panics
/// Panics if `factors`/`mode`/`out` shapes disagree with the tensor.
pub fn mttkrp_ref_into(
    x: &SparseTensor,
    factors: &[Mat],
    mode: usize,
    out: &mut Mat,
    ws: &mut MttkrpWorkspace,
) {
    assert_eq!(factors.len(), x.nmodes(), "one factor per mode");
    assert!(mode < x.nmodes(), "mode out of range");
    let rank = factors[mode].cols();
    assert_eq!((out.rows(), out.cols()), (x.dim(mode), rank), "output must be I_mode x R");
    out.as_mut_slice().fill(0.0);
    let row = ws.rows(1, rank);

    for k in 0..x.nnz() {
        row.fill(x.values()[k]);
        for (m, f) in factors.iter().enumerate() {
            if m == mode {
                continue;
            }
            simd::mul_assign(row, f.row(x.mode_indices(m)[k] as usize));
        }
        let target = out.row_mut(x.mode_indices(mode)[k] as usize);
        simd::add_assign(target, row);
    }
}

/// Parallel COO MTTKRP with owner-computes row partitioning.
///
/// Allocating wrapper over [`mttkrp_coo_parallel_into`].
pub fn mttkrp_coo_parallel(x: &SparseTensor, factors: &[Mat], mode: usize) -> Mat {
    let mut out = Mat::zeros(x.dim(mode), factors[mode].cols());
    let mut ws = MttkrpWorkspace::new();
    mttkrp_coo_parallel_into(x, factors, mode, &mut out, &mut ws);
    out
}

/// Parallel COO MTTKRP into a caller-owned output.
///
/// Owner-computes: each Rayon task owns a contiguous range of output rows
/// and scans every nonzero, computing the Khatri-Rao row product only for
/// the rows it owns. Per output row the accumulation is a left fold in
/// storage order directly into `out` — exactly the serial reference's fold
/// — so the parallel result is **bitwise-identical to [`mttkrp_ref_into`]
/// for any nonzero count**. That identity is what makes nnz-balanced
/// sharding bitwise-neutral: an order-preserving row filter cannot change
/// any row's fold, regardless of which side of the parallelism cutoff the
/// shard lands on. The scan costs each task one index load per nonzero;
/// the `O(M x R)` product work is done once per nonzero overall.
/// Steady-state calls with stable shapes do not allocate.
///
/// # Panics
/// Panics if `factors`/`mode`/`out` shapes disagree with the tensor.
pub fn mttkrp_coo_parallel_into(
    x: &SparseTensor,
    factors: &[Mat],
    mode: usize,
    out: &mut Mat,
    ws: &mut MttkrpWorkspace,
) {
    let _span = Span::enter_mode("mttkrp_coo", mode);
    assert_eq!(factors.len(), x.nmodes(), "one factor per mode");
    assert!(mode < x.nmodes(), "mode out of range");
    let rank = factors[mode].cols();
    let rows = x.dim(mode);
    assert_eq!((out.rows(), out.cols()), (rows, rank), "output must be I_mode x R");
    let nnz = x.nnz();
    if nnz < tuning::coo_nnz_cutoff() || rank == 0 || rows == 0 {
        mttkrp_ref_into(x, factors, mode, out, ws);
        return;
    }

    let ntasks = rayon::current_num_threads().max(1).min(rows);
    let rows_per = rows.div_ceil(ntasks).max(1);
    let mode_idx = x.mode_indices(mode);

    out.as_mut_slice().fill(0.0);
    let row_scratch = ws.rows(ntasks, rank);
    out.as_mut_slice()
        .par_chunks_mut(rows_per * rank)
        .zip(row_scratch.par_chunks_mut(rank))
        .enumerate()
        .for_each(|(t, (block, row))| {
            let r0 = t * rows_per;
            let r1 = r0 + block.len() / rank;
            for (k, &mi) in mode_idx.iter().enumerate() {
                let i = mi as usize;
                if i < r0 || i >= r1 {
                    continue;
                }
                row.fill(x.values()[k]);
                for (m, f) in factors.iter().enumerate() {
                    if m == mode {
                        continue;
                    }
                    simd::mul_assign(row, f.row(x.mode_indices(m)[k] as usize));
                }
                simd::add_assign(&mut block[(i - r0) * rank..(i - r0 + 1) * rank], row);
            }
        });
}

/// Asserts two MTTKRP outputs agree to a relative tolerance (test helper,
/// shared by the format equivalence tests).
pub fn assert_mttkrp_close(a: &Mat, b: &Mat, tol: f64) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "output shape mismatch");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let (x, y) = (a[(i, j)], b[(i, j)]);
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at ({i},{j}): {x} vs {y}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        // Simple deterministic LCG so the formats crate needs no rand dep in unit tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut idx = vec![Vec::with_capacity(nnz); shape.len()];
        let mut vals = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            for (m, &d) in shape.iter().enumerate() {
                idx[m].push(next() % d as u32);
            }
            vals.push(f64::from(next() % 100) / 25.0 - 2.0);
        }
        SparseTensor::new(shape.to_vec(), idx, vals)
    }

    fn factors_for(shape: &[usize], rank: usize) -> Vec<Mat> {
        shape
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                Mat::from_fn(d, rank, |i, j| ((i * 7 + j * 3 + m) % 11) as f64 * 0.2 - 1.0)
            })
            .collect()
    }

    #[test]
    fn reference_matches_definition_single_nnz() {
        let x = SparseTensor::new(vec![3, 4, 5], vec![vec![1], vec![2], vec![3]], vec![2.0]);
        let f = factors_for(&[3, 4, 5], 2);
        let m = mttkrp_ref(&x, &f, 0);
        for r in 0..2 {
            let want = 2.0 * f[1][(2, r)] * f[2][(3, r)];
            assert!((m[(1, r)] - want).abs() < 1e-14);
        }
        // Other rows stay zero.
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn reference_accumulates_shared_rows() {
        let x = SparseTensor::new(
            vec![2, 2, 2],
            vec![vec![0, 0], vec![0, 1], vec![0, 1]],
            vec![1.0, 3.0],
        );
        let f = factors_for(&[2, 2, 2], 1);
        let m = mttkrp_ref(&x, &f, 0);
        let want = 1.0 * f[1][(0, 0)] * f[2][(0, 0)] + 3.0 * f[1][(1, 0)] * f[2][(1, 0)];
        assert!((m[(0, 0)] - want).abs() < 1e-14);
    }

    #[test]
    fn parallel_matches_reference_all_modes() {
        let shape = [40, 25, 30];
        let x = random_tensor(&shape, 20_000, 7);
        let f = factors_for(&shape, 8);
        for mode in 0..3 {
            let a = mttkrp_ref(&x, &f, mode);
            let b = mttkrp_coo_parallel(&x, &f, mode);
            assert_mttkrp_close(&a, &b, 1e-10);
        }
    }

    #[test]
    fn parallel_matches_reference_4mode() {
        let shape = [12, 9, 14, 7];
        let x = random_tensor(&shape, 30_000, 13);
        let f = factors_for(&shape, 4);
        for mode in 0..4 {
            assert_mttkrp_close(
                &mttkrp_ref(&x, &f, mode),
                &mttkrp_coo_parallel(&x, &f, mode),
                1e-10,
            );
        }
    }

    #[test]
    fn parallel_is_bitwise_identical_to_reference() {
        // 20k nonzeros clears the COO parallelism cutoff, so this pins the
        // owner-computes path against the serial reference bit for bit —
        // the invariant that keeps nnz-balanced sharding bitwise-neutral
        // whichever side of the cutoff a shard lands on.
        let shape = [40, 25, 30];
        let x = random_tensor(&shape, 20_000, 11);
        let f = factors_for(&shape, 8);
        for mode in 0..3 {
            let a = mttkrp_ref(&x, &f, mode);
            let b = mttkrp_coo_parallel(&x, &f, mode);
            assert!(
                a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits()),
                "mode {mode}: parallel COO MTTKRP must be bitwise equal to the reference"
            );
        }
    }

    #[test]
    fn empty_tensor_gives_zero_output() {
        let x = SparseTensor::empty(vec![5, 6, 7]);
        let f = factors_for(&[5, 6, 7], 3);
        let m = mttkrp_ref(&x, &f, 1);
        assert_eq!((m.rows(), m.cols()), (6, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }
}
