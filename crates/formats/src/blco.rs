//! BLCO — Blocked Linearized COOrdinates (Nguyen et al., ICS '22).
//!
//! BLCO is the state-of-the-art GPU MTTKRP format the paper plugs into its
//! framework (§2.3, §4). Unlike ALTO's bit-interleaving, BLCO concatenates
//! the mode indices into one mode-major linearized integer; tensors whose
//! index needs more than 64 bits are split into *blocks* that share their
//! high bits, so each stored element is a single `u64` — one coalesced load
//! per nonzero on the GPU.
//!
//! The serial MTTKRP kernel resolves output conflicts with atomic
//! compare-and-swap adds on the output image — mirroring the GPU kernel's
//! `atomicAdd` (our simulated device executes the same strategy on host
//! threads). The parallel path is owner-computes over contiguous output-row
//! ranges: each thread scans every nonzero in linearized order but
//! accumulates only rows it owns, which reproduces the serial kernel's
//! per-row accumulation order exactly and keeps the result bitwise-equal to
//! the serial path for any nonzero count or thread count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use cstf_linalg::{simd, tuning, Mat};
use cstf_telemetry::Span;
use cstf_tensor::SparseTensor;

use crate::traffic::{coordinate_mttkrp_traffic, TrafficEstimate};
use crate::workspace::MttkrpWorkspace;

/// Per-mode bit field inside the linearized index.
#[derive(Debug, Clone, Copy)]
struct Field {
    shift: u32,
    bits: u32,
}

/// One BLCO block: elements sharing the high bits `base`.
#[derive(Debug, Clone)]
pub struct BlcoBlock {
    /// Shared high part (bits 64 and up of the full linearized index).
    base: u128,
    /// Low 64 bits of each element's linearized index.
    idx: Vec<u64>,
    /// Element values.
    vals: Vec<f64>,
}

impl BlcoBlock {
    /// Number of nonzeros in this block.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True if the block holds no nonzeros.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }
}

/// Cap on heavy rows binned per mode: more bins than a thread's worth of
/// hot rows adds bookkeeping without sharpening the skew picture.
const MAX_HEAVY_SLOTS: usize = 64;

/// A BLCO-encoded sparse tensor.
#[derive(Debug, Clone)]
pub struct Blco {
    shape: Vec<usize>,
    fields: Vec<Field>,
    total_bits: u32,
    blocks: Vec<BlcoBlock>,
    /// Per mode: `(row, slot)` pairs sorted by row — output rows with at
    /// least [`tuning::blco_heavy_row_cutoff`] nonzeros, capped at the
    /// [`MAX_HEAVY_SLOTS`] heaviest. Row-skew metadata binned at
    /// construction: the owner-computes kernel needs no privatization (each
    /// output row has exactly one writer), so the bins now serve
    /// diagnostics, memory accounting, and skew-aware scheduling.
    heavy: Vec<Vec<(u32, u32)>>,
}

impl Blco {
    /// Encodes a COO tensor.
    pub fn from_coo(x: &SparseTensor) -> Self {
        Self::from_coo_with_cutoff(x, tuning::blco_heavy_row_cutoff())
    }

    /// [`Blco::from_coo`] with an explicit heavy-row cutoff (in nonzeros).
    ///
    /// Output rows touched by at least `cutoff` nonzeros in some mode are
    /// binned as heavy (see the `heavy` field). Exposed so tests and
    /// benches can exercise the binning on small tensors.
    pub fn from_coo_with_cutoff(x: &SparseTensor, cutoff: usize) -> Self {
        let nmodes = x.nmodes();
        // Mode-major concatenation: mode 0 occupies the highest bits.
        let bits: Vec<u32> = x
            .shape()
            .iter()
            .map(|&d| if d <= 1 { 1 } else { usize::BITS - (d - 1).leading_zeros() })
            .collect();
        let total_bits: u32 = bits.iter().sum();
        assert!(total_bits <= 128, "linearized index exceeds 128 bits");
        let mut fields = Vec::with_capacity(nmodes);
        let mut shift = total_bits;
        for &b in &bits {
            shift -= b;
            fields.push(Field { shift, bits: b });
        }

        // Linearize and sort.
        let mut pairs: Vec<(u128, f64)> = (0..x.nnz())
            .map(|k| {
                let mut lin: u128 = 0;
                for (m, f) in fields.iter().enumerate() {
                    lin |= (x.mode_indices(m)[k] as u128) << f.shift;
                }
                (lin, x.values()[k])
            })
            .collect();
        pairs.par_sort_unstable_by(|a, b| a.0.cmp(&b.0));

        // Bin heavy output rows per mode while the linearized pairs are
        // still in hand: count row occupancy, keep rows at or above the
        // cutoff (heaviest first, row index breaking ties so the selection
        // is deterministic), and assign slots in ascending row order.
        let cutoff = cutoff.max(1);
        let heavy: Vec<Vec<(u32, u32)>> = fields
            .iter()
            .map(|f| {
                let mask = (1u128 << f.bits) - 1;
                let mut counts: HashMap<u32, u32> = HashMap::new();
                for &(lin, _) in &pairs {
                    *counts.entry(((lin >> f.shift) & mask) as u32).or_insert(0) += 1;
                }
                let mut rows: Vec<(u32, u32)> =
                    counts.into_iter().filter(|&(_, c)| c as usize >= cutoff).collect();
                rows.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                rows.truncate(MAX_HEAVY_SLOTS);
                let mut slots: Vec<(u32, u32)> =
                    rows.iter().enumerate().map(|(s, &(r, _))| (r, s as u32)).collect();
                slots.sort_unstable_by_key(|&(r, _)| r);
                slots
            })
            .collect();

        // Split into blocks by the bits above position 64.
        let mut blocks: Vec<BlcoBlock> = Vec::new();
        for (lin, v) in pairs {
            let base = lin >> 64;
            let low = lin as u64;
            match blocks.last_mut() {
                Some(b) if b.base == base => {
                    b.idx.push(low);
                    b.vals.push(v);
                }
                _ => blocks.push(BlcoBlock { base, idx: vec![low], vals: vec![v] }),
            }
        }

        Self { shape: x.shape().to_vec(), fields, total_bits, blocks, heavy }
    }

    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.shape.len()
    }

    /// Mode dimensions.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(BlcoBlock::len).sum()
    }

    /// Number of blocks (1 unless the index exceeds 64 bits).
    pub fn nblocks(&self) -> usize {
        self.blocks.len()
    }

    /// Bits of the full linearized index.
    pub fn index_bits(&self) -> u32 {
        self.total_bits
    }

    /// Storage bytes: one `u64` index + `f64` value per element, plus block
    /// headers.
    pub fn storage_bytes(&self) -> usize {
        self.nnz() * 16 + self.nblocks() * 16
    }

    /// Extracts mode `m`'s index from a block element.
    #[inline]
    fn extract(&self, base: u128, low: u64, mode: usize) -> usize {
        let f = self.fields[mode];
        let lin = (base << 64) | low as u128;
        ((lin >> f.shift) & ((1u128 << f.bits) - 1)) as usize
    }

    /// Decodes element `k` (in linearized order) to its coordinate — test
    /// helper.
    pub fn coord(&self, mut k: usize) -> Vec<u32> {
        for b in &self.blocks {
            if k < b.len() {
                return (0..self.nmodes())
                    .map(|m| self.extract(b.base, b.idx[k], m) as u32)
                    .collect();
            }
            k -= b.len();
        }
        panic!("element index out of range");
    }

    /// MTTKRP for `mode` with atomic accumulation (the GPU strategy).
    ///
    /// Allocating wrapper over [`Blco::mttkrp_into`].
    pub fn mttkrp(&self, factors: &[Mat], mode: usize) -> Mat {
        let mut out = Mat::zeros(self.shape[mode], factors[mode].cols());
        let mut ws = MttkrpWorkspace::new();
        self.mttkrp_into(factors, mode, &mut out, &mut ws);
        out
    }

    /// [`Blco::mttkrp`] into a caller-owned output.
    ///
    /// Tensors at or below [`tuning::blco_chunk_floor`] nonzeros take the
    /// serial path ([`Blco::mttkrp_serial_into`]): per-nonzero CAS adds on
    /// an atomic image, exactly as the CUDA kernel uses `atomicAdd` on
    /// global memory. Larger tensors go owner-computes: each Rayon task
    /// owns a contiguous range of output rows and scans every nonzero in
    /// linearized order, accumulating only its own rows directly into
    /// `out`. Per row that is the same add sequence from `+0.0` the serial
    /// CAS path performs (uncontended CAS is an exact add, zero adds are
    /// absorbed identically), so the parallel result is **bitwise-equal to
    /// the serial path for any nonzero or thread count** — the
    /// sharded-equivalence guarantee cannot be broken by a shard landing on
    /// the other side of the parallelism cutoff. All scratch comes from the
    /// workspace, so steady-state calls perform no heap allocation.
    ///
    /// # Panics
    /// Panics if `factors`/`mode`/`out` shapes disagree with the tensor.
    pub fn mttkrp_into(
        &self,
        factors: &[Mat],
        mode: usize,
        out: &mut Mat,
        ws: &mut MttkrpWorkspace,
    ) {
        let _span = Span::enter_mode("mttkrp_blco", mode);
        assert_eq!(factors.len(), self.nmodes(), "one factor per mode");
        assert!(mode < self.nmodes(), "mode out of range");
        let rank = factors[mode].cols();
        let rows = self.shape[mode];
        assert_eq!((out.rows(), out.cols()), (rows, rank), "output must be I_mode x R");

        if self.nnz() <= tuning::blco_chunk_floor() || rank == 0 || rows == 0 {
            self.mttkrp_serial_into(factors, mode, out, ws);
            return;
        }

        let ntasks = rayon::current_num_threads().max(1).min(rows);
        let rows_per = rows.div_ceil(ntasks).max(1);
        let row_scratch = ws.rows(ntasks, rank);
        out.as_mut_slice().fill(0.0);
        out.as_mut_slice()
            .par_chunks_mut(rows_per * rank)
            .zip(row_scratch.par_chunks_mut(rank))
            .enumerate()
            .for_each(|(t, (owned, row))| {
                let r0 = t * rows_per;
                let r1 = r0 + owned.len() / rank;
                for block in &self.blocks {
                    let base = block.base;
                    for (&low, &v) in block.idx.iter().zip(&block.vals) {
                        let i = self.extract(base, low, mode);
                        if i < r0 || i >= r1 {
                            continue;
                        }
                        row.fill(v);
                        for (m, f) in factors.iter().enumerate() {
                            if m == mode {
                                continue;
                            }
                            simd::mul_assign(row, f.row(self.extract(base, low, m)));
                        }
                        simd::add_assign(&mut owned[(i - r0) * rank..(i - r0 + 1) * rank], row);
                    }
                }
            });
    }

    /// Serial MTTKRP: per-nonzero CAS adds on the atomic image in
    /// linearized element order — the literal host-side transcription of
    /// the GPU kernel's `atomicAdd` loop, and the accumulation order the
    /// parallel path reproduces bitwise.
    fn mttkrp_serial_into(
        &self,
        factors: &[Mat],
        mode: usize,
        out: &mut Mat,
        ws: &mut MttkrpWorkspace,
    ) {
        let rank = factors[mode].cols();
        let rows = self.shape[mode];
        let (image, scratch) = ws.atomics_and_rows(rows * rank, 1, rank);
        let row = &mut scratch[..rank];
        for block in &self.blocks {
            let base = block.base;
            for (&low, &v) in block.idx.iter().zip(&block.vals) {
                row.fill(v);
                for (m, f) in factors.iter().enumerate() {
                    if m == mode {
                        continue;
                    }
                    simd::mul_assign(row, f.row(self.extract(base, low, m)));
                }
                let i = self.extract(base, low, mode);
                let target = &image[i * rank..(i + 1) * rank];
                for (slot, &r) in target.iter().zip(row.iter()) {
                    atomic_add_f64(slot, r);
                }
            }
        }
        for (o, a) in out.as_mut_slice().iter_mut().zip(image) {
            *o = f64::from_bits(a.load(Ordering::Relaxed));
        }
    }

    /// Traffic estimate: 8 index bytes per nonzero (the single `u64`), plus
    /// atomic read-modify-write on the output (counted as double write
    /// traffic, which is how atomics hit DRAM).
    pub fn mttkrp_traffic(&self, mode: usize, rank: usize) -> TrafficEstimate {
        let mut t = coordinate_mttkrp_traffic(self.nnz(), &self.shape, mode, rank, 8.0);
        t.bytes_written *= 2.0;
        t
    }
}

impl cstf_telemetry::MemoryFootprint for Blco {
    fn footprint(&self) -> cstf_telemetry::Footprint {
        use cstf_telemetry::vec_heap_bytes;
        let mut fp = cstf_telemetry::Footprint::new();
        fp.add("shape", vec_heap_bytes(&self.shape));
        fp.add("fields", vec_heap_bytes(&self.fields));
        fp.add("blocks.spine", (self.blocks.capacity() * std::mem::size_of::<BlcoBlock>()) as u64);
        for b in &self.blocks {
            fp.add("blocks.idx", vec_heap_bytes(&b.idx));
            fp.add("blocks.vals", vec_heap_bytes(&b.vals));
        }
        fp.add("heavy", cstf_telemetry::nested_vec_heap_bytes(&self.heavy));
        fp
    }
}

/// Lock-free `f64` add via CAS on the bit pattern — the host-side analogue
/// of CUDA's `atomicAdd(double*)`.
fn atomic_add_f64(slot: &AtomicU64, v: f64) {
    if v == 0.0 {
        return;
    }
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match slot.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::{assert_mttkrp_close, mttkrp_ref};

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut state = seed.wrapping_mul(0xD1342543DE82EF95).wrapping_add(7);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut idx = vec![Vec::with_capacity(nnz); shape.len()];
        let mut vals = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            for (m, &d) in shape.iter().enumerate() {
                idx[m].push(next() % d as u32);
            }
            vals.push(f64::from(next() % 64) * 0.125 + 0.125);
        }
        let mut t = SparseTensor::new(shape.to_vec(), idx, vals);
        t.sum_duplicates();
        t
    }

    fn factors_for(shape: &[usize], rank: usize) -> Vec<Mat> {
        shape
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                Mat::from_fn(d, rank, |i, j| ((i + j * 5 + m * 2) % 9) as f64 * 0.2 - 0.8)
            })
            .collect()
    }

    #[test]
    fn footprint_matches_capacity_sum() {
        use cstf_telemetry::MemoryFootprint;
        let blco = Blco::from_coo(&random_tensor(&[60, 17, 9], 400, 2));
        let vb = |c: usize, sz: usize| (c * sz) as u64;
        let mut expected = vb(blco.shape.capacity(), std::mem::size_of::<usize>())
            + vb(blco.fields.capacity(), std::mem::size_of::<Field>())
            + vb(blco.blocks.capacity(), std::mem::size_of::<BlcoBlock>())
            + vb(blco.heavy.capacity(), std::mem::size_of::<Vec<(u32, u32)>>())
            + blco
                .heavy
                .iter()
                .map(|v| vb(v.capacity(), std::mem::size_of::<(u32, u32)>()))
                .sum::<u64>();
        for b in &blco.blocks {
            expected += vb(b.idx.capacity(), std::mem::size_of::<u64>())
                + vb(b.vals.capacity(), std::mem::size_of::<f64>());
        }
        assert_eq!(blco.heap_bytes(), expected);
        assert!(blco.footprint().get("blocks.idx") >= 8 * blco.nnz() as u64);
    }

    #[test]
    fn coordinates_round_trip() {
        let x = random_tensor(&[100, 7, 300], 3_000, 1);
        let blco = Blco::from_coo(&x);
        assert_eq!(blco.nnz(), x.nnz());
        for k in 0..blco.nnz() {
            let c = blco.coord(k);
            assert!(x.get(&c) != 0.0, "decoded coord {c:?} not in tensor");
        }
    }

    #[test]
    fn small_tensor_is_single_block() {
        let x = random_tensor(&[64, 64, 64], 1_000, 2);
        let blco = Blco::from_coo(&x);
        assert_eq!(blco.index_bits(), 18);
        assert_eq!(blco.nblocks(), 1);
    }

    #[test]
    fn oversized_index_splits_into_blocks() {
        // 4 modes x 17 bits = 68 bits > 64 -> multiple blocks.
        let dim = 1 << 17;
        let shape = vec![dim, dim, dim, dim];
        let mut idx = vec![Vec::new(); 4];
        let mut vals = Vec::new();
        for k in 0..64u32 {
            idx[0].push((k * 2048) % dim as u32);
            idx[1].push(k % dim as u32);
            idx[2].push((k * 31) % dim as u32);
            idx[3].push((k * 7) % dim as u32);
            vals.push(k as f64 + 1.0);
        }
        let x = SparseTensor::new(shape, idx, vals);
        let blco = Blco::from_coo(&x);
        assert_eq!(blco.index_bits(), 68);
        assert!(blco.nblocks() > 1, "expected multiple blocks, got {}", blco.nblocks());
        assert_eq!(blco.nnz(), 64);
        // Round trip through blocks.
        for k in 0..blco.nnz() {
            let c = blco.coord(k);
            assert!(x.get(&c) != 0.0);
        }
    }

    #[test]
    fn mttkrp_matches_reference_all_modes() {
        let x = random_tensor(&[40, 60, 25], 12_000, 3);
        let f = factors_for(x.shape(), 8);
        let blco = Blco::from_coo(&x);
        for mode in 0..3 {
            assert_mttkrp_close(&blco.mttkrp(&f, mode), &mttkrp_ref(&x, &f, mode), 1e-9);
        }
    }

    #[test]
    fn mttkrp_matches_reference_multiblock() {
        let dim = 1 << 17;
        let shape = vec![dim, dim, dim, dim];
        let mut idx = vec![Vec::new(); 4];
        let mut vals = Vec::new();
        let mut state = 42u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            for mv in idx.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                // Cluster low so factor matrices stay small to index: use 64 rows.
                mv.push(((state >> 33) % 64) as u32);
            }
            vals.push(((state >> 20) % 16) as f64 * 0.5 - 4.0);
        }
        let x = SparseTensor::new(shape.clone(), idx, vals);
        // Coordinates are clustered in rows < 64; entries beyond stay zero.
        let f: Vec<Mat> = shape
            .iter()
            .map(|&d| {
                let mut full = Mat::zeros(d, 3);
                for i in 0..64.min(d) {
                    for j in 0..3 {
                        full[(i, j)] = ((i * 3 + j) % 5) as f64 * 0.3;
                    }
                }
                full
            })
            .collect();
        let blco = Blco::from_coo(&x);
        assert!(blco.nblocks() >= 1);
        assert_mttkrp_close(&blco.mttkrp(&f, 0), &mttkrp_ref(&x, &f, 0), 1e-10);
    }

    #[test]
    fn heavy_rows_are_binned_deterministically() {
        let x = random_tensor(&[8, 50, 40], 6_000, 4);
        let blco = Blco::from_coo_with_cutoff(&x, 4);
        for (mode, heavy) in blco.heavy.iter().enumerate() {
            assert!(heavy.len() <= MAX_HEAVY_SLOTS);
            assert!(heavy.windows(2).all(|w| w[0].0 < w[1].0), "sorted by row, unique");
            // Slots are a permutation of 0..len.
            let mut slots: Vec<u32> = heavy.iter().map(|&(_, s)| s).collect();
            slots.sort_unstable();
            assert!(slots.iter().enumerate().all(|(i, &s)| s as usize == i));
            // Every binned row really carries >= cutoff nonzeros.
            for &(r, _) in heavy {
                let count = x.mode_indices(mode).iter().filter(|&&i| i == r).count();
                assert!(count >= 4, "mode {mode} row {r} has {count} < cutoff nnz");
            }
        }
        // Rebuilding yields identical bins: selection is deterministic
        // even though counting goes through a HashMap.
        assert_eq!(blco.heavy, Blco::from_coo_with_cutoff(&x, 4).heavy);
    }

    #[test]
    fn mttkrp_on_heavy_binned_tensor_matches_reference_all_modes() {
        // Enough nonzeros to clear the parallel chunk floor, concentrated
        // on few rows so every mode has heavy bins (extreme row skew).
        let x = random_tensor(&[8, 50, 40], 20_000, 5);
        let blco = Blco::from_coo_with_cutoff(&x, 4);
        assert!(blco.heavy.iter().all(|h| !h.is_empty()), "expected heavy bins in every mode");
        let f = factors_for(x.shape(), 6);
        for mode in 0..3 {
            assert_mttkrp_close(&blco.mttkrp(&f, mode), &mttkrp_ref(&x, &f, mode), 1e-9);
        }
    }

    #[test]
    fn slot_cap_overflow_still_accumulates_correctly() {
        // 200 rows above the cutoff but only MAX_HEAVY_SLOTS bins: binning
        // saturates while accumulation must stay exact.
        let x = random_tensor(&[200, 30, 20], 20_000, 6);
        let blco = Blco::from_coo_with_cutoff(&x, 4);
        assert_eq!(blco.heavy[0].len(), MAX_HEAVY_SLOTS);
        let f = factors_for(x.shape(), 5);
        assert_mttkrp_close(&blco.mttkrp(&f, 0), &mttkrp_ref(&x, &f, 0), 1e-9);
    }

    #[test]
    fn parallel_is_bitwise_identical_to_serial() {
        // 12k nonzeros is far above the chunk floor, so `mttkrp` takes the
        // owner-computes path. It must match the serial CAS path bit for
        // bit — the invariant sharded execution relies on, since a shard
        // can land on either side of the parallelism cutoff.
        let x = random_tensor(&[40, 60, 25], 12_000, 8);
        let f = factors_for(x.shape(), 8);
        let blco = Blco::from_coo(&x);
        let mut ws = MttkrpWorkspace::new();
        for mode in 0..3 {
            let par = blco.mttkrp(&f, mode);
            let mut ser = Mat::zeros(x.shape()[mode], 8);
            blco.mttkrp_serial_into(&f, mode, &mut ser, &mut ws);
            assert!(
                par.as_slice().iter().zip(ser.as_slice()).all(|(a, b)| a.to_bits() == b.to_bits()),
                "mode {mode}: parallel and serial BLCO MTTKRP must be bitwise equal"
            );
        }
    }

    #[test]
    fn atomic_add_accumulates_under_contention() {
        let slot = AtomicU64::new(0f64.to_bits());
        rayon::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        atomic_add_f64(&slot, 0.5);
                    }
                });
            }
        });
        assert_eq!(f64::from_bits(slot.into_inner()), 4000.0);
    }

    #[test]
    fn traffic_counts_atomic_write_amplification() {
        let x = random_tensor(&[32, 32, 32], 2_000, 9);
        let blco = Blco::from_coo(&x);
        let t = blco.mttkrp_traffic(0, 16);
        let plain = coordinate_mttkrp_traffic(blco.nnz(), &[32, 32, 32], 0, 16, 8.0);
        assert_eq!(t.bytes_written, 2.0 * plain.bytes_written);
    }

    use crate::traffic::coordinate_mttkrp_traffic;
}
