//! Reusable MTTKRP workspaces.
//!
//! Every format's MTTKRP needs transient storage — privatized output
//! buffers, per-chunk Hadamard scratch rows, CSF recursion scratch, BLCO's
//! atomic output image. The allocating kernels create these per call, which
//! puts `O(threads x I x R)` of allocation on the hot path of every outer
//! iteration. [`MttkrpWorkspace`] owns all of them grow-only, so a
//! steady-state factorization performs zero heap allocation in its MTTKRP
//! phase regardless of format.

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use cstf_linalg::{tuning, PartialBuffers};

/// Grow-only scratch shared by all formats' `mttkrp_into` kernels.
///
/// One workspace serves any number of formats, modes, and shapes: buffers
/// are sized on first use and reused (never shrunk) afterwards. A workspace
/// is not thread-safe itself — each concurrent MTTKRP caller needs its own.
#[derive(Debug, Default)]
pub struct MttkrpWorkspace {
    /// Per-chunk privatized output buffers (COO, CSF, HiCOO) reduced with a
    /// pairwise parallel tree.
    pub partials: PartialBuffers,
    /// Per-chunk Hadamard scratch rows (`nchunks x rank`, contiguous).
    rows: Vec<f64>,
    /// Per-chunk CSF recursion scratch (`nchunks x depth x rank`).
    stack: Vec<f64>,
    /// BLCO's atomic output image (`I x R` bit-encoded `f64`s).
    atomics: Vec<AtomicU64>,
    /// ALTO per-partition interval buffers (`width x rank` each).
    alto: Vec<Vec<f64>>,
}

impl MttkrpWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroed scratch of `nchunks` rows of `rank` elements, contiguous, for
    /// `par_chunks_mut(rank)` distribution across chunks.
    pub fn rows(&mut self, nchunks: usize, rank: usize) -> &mut [f64] {
        let need = nchunks * rank;
        if self.rows.len() < need {
            self.rows.resize(need, 0.0);
        }
        let s = &mut self.rows[..need];
        s.fill(0.0);
        s
    }

    /// Zeroed recursion scratch of `nchunks` stacks of `depth * rank`
    /// elements, contiguous, for `par_chunks_mut(depth * rank)`.
    pub fn stacks(&mut self, nchunks: usize, depth: usize, rank: usize) -> &mut [f64] {
        let need = nchunks * depth * rank;
        if self.stack.len() < need {
            self.stack.resize(need, 0.0);
        }
        let s = &mut self.stack[..need];
        s.fill(0.0);
        s
    }

    /// Per-chunk privatized buffers plus row and recursion scratch in one
    /// call (one borrow covering the disjoint fields): `nchunks` zeroed
    /// partial buffers of `buf_len`, `nchunks x rank` scratch rows, and
    /// `nchunks x depth x rank` recursion stacks.
    pub fn chunk_scratch(
        &mut self,
        nchunks: usize,
        buf_len: usize,
        depth: usize,
        rank: usize,
    ) -> (&mut [Vec<f64>], &mut [f64], &mut [f64]) {
        let bufs = self.partials.ensure(nchunks, buf_len);
        let rneed = nchunks * rank;
        if self.rows.len() < rneed {
            self.rows.resize(rneed, 0.0);
        }
        let sneed = nchunks * depth * rank;
        if self.stack.len() < sneed {
            self.stack.resize(sneed, 0.0);
        }
        let r = &mut self.rows[..rneed];
        r.fill(0.0);
        let s = &mut self.stack[..sneed];
        s.fill(0.0);
        (bufs, r, s)
    }

    /// One flat zeroed accumulation buffer of `buf_len` elements plus
    /// `nitems` recursion stacks of `depth * rank` elements, in one call
    /// (one borrow covering the disjoint fields) — the scratch shape of
    /// CSF's fiber-binned schedule, where work items own variable-width
    /// slices of a single piece buffer.
    pub fn flat_and_stacks(
        &mut self,
        buf_len: usize,
        nitems: usize,
        depth: usize,
        rank: usize,
    ) -> (&mut [f64], &mut [f64]) {
        let bufs = self.partials.ensure(1, buf_len);
        let sneed = nitems * depth * rank;
        if self.stack.len() < sneed {
            self.stack.resize(sneed, 0.0);
        }
        let s = &mut self.stack[..sneed];
        s.fill(0.0);
        (&mut bufs[0][..buf_len], s)
    }

    /// A zeroed atomic `f64` accumulation image of `len` slots (each slot
    /// stores `f64::to_bits`), for BLCO's CAS-add output.
    pub fn atomics(&mut self, len: usize) -> &[AtomicU64] {
        reset_atomic_image(&mut self.atomics, len);
        &self.atomics[..len]
    }

    /// Both the atomic image and the per-chunk scratch rows in one call
    /// (one borrow covering the disjoint fields): a zeroed `len`-slot
    /// atomic `f64` image plus `nchunks x rank` zeroed scratch rows.
    pub fn atomics_and_rows(
        &mut self,
        len: usize,
        nchunks: usize,
        rank: usize,
    ) -> (&[AtomicU64], &mut [f64]) {
        reset_atomic_image(&mut self.atomics, len);
        let rneed = nchunks * rank;
        if self.rows.len() < rneed {
            self.rows.resize(rneed, 0.0);
        }
        let r = &mut self.rows[..rneed];
        r.fill(0.0);
        (&self.atomics[..len], r)
    }

    /// ALTO's per-partition buffers. Each partition grows and zeroes its own
    /// buffer to the width it needs (done inside the parallel region, where
    /// each task owns exactly one buffer).
    pub fn alto_buffers(&mut self, nparts: usize) -> &mut [Vec<f64>] {
        if self.alto.len() < nparts {
            self.alto.resize_with(nparts, Vec::new);
        }
        &mut self.alto[..nparts]
    }
}

/// Grows `atomics` to at least `len` slots and zeroes the first `len` —
/// in parallel above the element-wise threshold, since resetting an
/// `I x R` image serially would bottleneck every large BLCO MTTKRP.
fn reset_atomic_image(atomics: &mut Vec<AtomicU64>, len: usize) {
    if atomics.len() < len {
        atomics.resize_with(len, || AtomicU64::new(0));
    }
    let zero = 0f64.to_bits();
    let slots = &atomics[..len];
    if len >= tuning::par_elems() {
        slots.par_iter().for_each(|a| a.store(zero, Ordering::Relaxed));
    } else {
        for a in slots {
            a.store(zero, Ordering::Relaxed);
        }
    }
}

/// Grows `buf` to at least `len` and zeroes its first `len` elements —
/// helper for per-task owned buffers inside parallel regions.
pub(crate) fn prepare_buffer(buf: &mut Vec<f64>, len: usize) -> &mut [f64] {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    let s = &mut buf[..len];
    s.fill(0.0);
    s
}

impl cstf_telemetry::MemoryFootprint for MttkrpWorkspace {
    fn footprint(&self) -> cstf_telemetry::Footprint {
        use cstf_telemetry::vec_heap_bytes;
        let mut fp = cstf_telemetry::Footprint::new();
        fp.add_nested("partials", &self.partials.footprint());
        fp.add("rows", vec_heap_bytes(&self.rows));
        fp.add("stack", vec_heap_bytes(&self.stack));
        fp.add("atomics", vec_heap_bytes(&self.atomics));
        fp.add("alto", cstf_telemetry::nested_vec_heap_bytes(&self.alto));
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_capacity_sum() {
        use cstf_telemetry::MemoryFootprint;
        let mut ws = MttkrpWorkspace::new();
        assert_eq!(ws.heap_bytes(), 0, "fresh workspace owns nothing");
        ws.chunk_scratch(3, 64, 2, 8);
        ws.atomics(48);
        ws.alto_buffers(2)[0].resize(32, 0.0);
        let vb = |c: usize, sz: usize| (c * sz) as u64;
        let expected = ws.partials.heap_bytes()
            + vb(ws.rows.capacity(), 8)
            + vb(ws.stack.capacity(), 8)
            + vb(ws.atomics.capacity(), 8)
            + vb(ws.alto.capacity(), std::mem::size_of::<Vec<f64>>())
            + ws.alto.iter().map(|v| vb(v.capacity(), 8)).sum::<u64>();
        assert_eq!(ws.heap_bytes(), expected);
        assert_eq!(ws.footprint().get("atomics"), 48 * 8);
    }

    #[test]
    fn scratch_is_zeroed_on_reuse() {
        let mut ws = MttkrpWorkspace::new();
        ws.rows(2, 4)[0] = 5.0;
        assert!(ws.rows(2, 4).iter().all(|&v| v == 0.0));
        ws.stacks(1, 3, 4)[2] = 1.0;
        assert!(ws.stacks(1, 3, 4).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn atomics_reset_between_calls() {
        let mut ws = MttkrpWorkspace::new();
        ws.atomics(8)[3].store(7.5f64.to_bits(), Ordering::Relaxed);
        let slots = ws.atomics(8);
        assert_eq!(f64::from_bits(slots[3].load(Ordering::Relaxed)), 0.0);
    }

    #[test]
    fn prepare_buffer_grows_and_zeroes() {
        let mut b = Vec::new();
        prepare_buffer(&mut b, 4)[1] = 2.0;
        let s = prepare_buffer(&mut b, 2);
        assert_eq!(s, &[0.0, 0.0]);
        assert_eq!(b.len(), 4, "grow-only; never shrinks");
    }
}
