//! Format-specific MTTKRP traffic estimates.
//!
//! Each compressed format knows how much work and memory traffic its MTTKRP
//! kernel generates; the `cstf-core` drivers convert these plain numbers
//! into `cstf-device` kernel costs. Keeping the estimate here (instead of in
//! the drivers) pins the model to the kernel it describes.

/// Exact flop count and logical memory traffic of one MTTKRP invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrafficEstimate {
    /// Floating-point operations.
    pub flops: f64,
    /// Streaming bytes read (indices, values, output read) — no reuse.
    pub bytes_read: f64,
    /// Bytes written (output).
    pub bytes_written: f64,
    /// Factor-row gather bytes counted per access; collapses toward
    /// `working_set` when cache-resident (the device model applies the
    /// reuse discount).
    pub gather_bytes: f64,
    /// Independent parallel work items (for the occupancy model).
    pub parallel_work: f64,
    /// Hot working set in bytes (the gathered factor rows — their cache
    /// residency determines MTTKRP's data reuse, §5.3).
    pub working_set: f64,
}

/// Common sparse-MTTKRP traffic for an `nnz`-element `N`-mode tensor at rank
/// `R`, shared by all coordinate-ish formats:
///
/// * flops: per nonzero, `(N-1)` Hadamard multiplies of length `R`, one
///   scale by the value and one accumulate — `(N+1) * R` flops;
/// * reads: per nonzero, `index_bytes` of coordinates + 8 bytes of value +
///   `(N-1) * R * 8` bytes of gathered factor rows;
/// * writes: the `I_mode x R` output (plus a read of it for accumulation).
pub fn coordinate_mttkrp_traffic(
    nnz: usize,
    shape: &[usize],
    mode: usize,
    rank: usize,
    index_bytes_per_nnz: f64,
) -> TrafficEstimate {
    let n = shape.len() as f64;
    let nnz_f = nnz as f64;
    let r = rank as f64;
    let out_elems = (shape[mode] * rank) as f64;
    // Working set: the factor rows being gathered (all modes but the target).
    let gather_bytes: f64 = shape
        .iter()
        .enumerate()
        .filter(|&(m, _)| m != mode)
        .map(|(_, &d)| (d * rank * 8) as f64)
        .sum();
    TrafficEstimate {
        flops: nnz_f * (n + 1.0) * r,
        bytes_read: nnz_f * (index_bytes_per_nnz + 8.0) + out_elems * 8.0,
        bytes_written: out_elems * 8.0,
        gather_bytes: nnz_f * (n - 1.0) * r * 8.0,
        parallel_work: nnz_f,
        working_set: gather_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_scales_with_nnz_and_rank() {
        let a = coordinate_mttkrp_traffic(1000, &[10, 20, 30], 0, 16, 12.0);
        let b = coordinate_mttkrp_traffic(2000, &[10, 20, 30], 0, 16, 12.0);
        let c = coordinate_mttkrp_traffic(1000, &[10, 20, 30], 0, 32, 12.0);
        assert!((b.flops / a.flops - 2.0).abs() < 1e-12);
        assert!((c.flops / a.flops - 2.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_excludes_target_mode() {
        let t = coordinate_mttkrp_traffic(100, &[1000, 10, 10], 0, 8, 12.0);
        // Only modes 1 and 2 are gathered: (10 + 10) * 8 * 8 bytes.
        assert_eq!(t.working_set, 20.0 * 8.0 * 8.0);
    }

    #[test]
    fn flop_count_matches_hand_formula_3mode() {
        // 3-mode: 2 hadamard mults + scale + accumulate = 4R per nnz.
        let t = coordinate_mttkrp_traffic(7, &[4, 4, 4], 1, 5, 12.0);
        assert_eq!(t.flops, 7.0 * 4.0 * 5.0);
    }
}
