//! ALTO — Adaptive Linearized Tensor Order (Helal et al., ICS '21).
//!
//! ALTO replaces per-mode coordinates with a single *linearized* index in
//! which the bits of all mode indices are interleaved (adaptively: modes
//! with more bits contribute more positions). Sorting nonzeros by this
//! index clusters them in a space-filling-curve order that is simultaneously
//! local in *every* mode, so one copy of the tensor serves all MTTKRP modes
//! (unlike CSF's one-tree-per-mode). Threads get contiguous partitions of
//! the sorted array; each partition's output rows fall in a small interval
//! of the target mode, so accumulation is privatized per partition and
//! merged without atomics — exactly the ALTO paper's conflict-resolution
//! strategy, and the CPU MTTKRP used by the paper's modified PLANC baseline.

use rayon::prelude::*;

use cstf_linalg::{simd, Mat};
use cstf_telemetry::Span;
use cstf_tensor::SparseTensor;

use crate::traffic::{coordinate_mttkrp_traffic, TrafficEstimate};
use crate::workspace::{prepare_buffer, MttkrpWorkspace};

/// Bit-interleaving schedule: for each output bit position of the linearized
/// index, which mode it came from and which bit of that mode's index.
#[derive(Debug, Clone)]
struct BitSchedule {
    /// `(mode, source_bit)` per linearized bit, least significant first.
    slots: Vec<(u8, u8)>,
}

impl BitSchedule {
    fn for_shape(shape: &[usize]) -> Self {
        let mode_bits: Vec<u8> = shape
            .iter()
            .map(|&d| if d <= 1 { 1 } else { (usize::BITS - (d - 1).leading_zeros()) as u8 })
            .collect();
        // Round-robin interleave, LSB first: modes drop out once exhausted.
        // This is ALTO's "adaptive" schedule — short modes occupy only the
        // low positions they need.
        let mut slots = Vec::new();
        let mut next_bit = vec![0u8; shape.len()];
        loop {
            let mut progressed = false;
            for (m, &bits) in mode_bits.iter().enumerate() {
                if next_bit[m] < bits {
                    slots.push((m as u8, next_bit[m]));
                    next_bit[m] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(slots.len() <= 128, "linearized index exceeds 128 bits");
        Self { slots }
    }

    /// Packs a coordinate into a linearized index.
    fn linearize(&self, coord: &[u32]) -> u128 {
        let mut out: u128 = 0;
        for (pos, &(mode, bit)) in self.slots.iter().enumerate() {
            let b = (coord[mode as usize] >> bit) & 1;
            out |= (b as u128) << pos;
        }
        out
    }

    /// Extracts one mode's index back out of a linearized index.
    fn delinearize_mode(&self, lin: u128, mode: usize) -> u32 {
        let mut out: u32 = 0;
        for (pos, &(m, bit)) in self.slots.iter().enumerate() {
            if m as usize == mode {
                out |= (((lin >> pos) & 1) as u32) << bit;
            }
        }
        out
    }
}

/// An ALTO-encoded sparse tensor.
#[derive(Debug, Clone)]
pub struct Alto {
    shape: Vec<usize>,
    schedule: BitSchedule,
    /// Linearized indices, ascending.
    lin: Vec<u128>,
    values: Vec<f64>,
    /// Partition boundaries into `lin` (one span per worker).
    partitions: Vec<std::ops::Range<usize>>,
    /// Per-partition, per-mode `[min, max]` index intervals, used to size
    /// the privatized accumulation buffers.
    intervals: Vec<Vec<(u32, u32)>>,
}

impl Alto {
    /// Encodes a COO tensor with one key-space partition per available
    /// thread (see [`Alto::with_key_partitions`]).
    pub fn from_coo(x: &SparseTensor) -> Self {
        Self::with_key_partitions(x, rayon::current_num_threads().max(1))
    }

    /// Encodes a COO tensor into `nparts` contiguous partitions of equal
    /// nonzero count.
    ///
    /// Partition boundaries depend on the nonzero *count*, so a row-restricted
    /// shard of the tensor partitions differently from the full tensor; use
    /// [`Alto::with_key_partitions`] when the traversal grouping must be a
    /// pure function of nonzero content.
    pub fn with_partitions(x: &SparseTensor, nparts: usize) -> Self {
        let (schedule, lin, values) = Self::sorted_pairs(x);
        let nnz = lin.len();
        let nparts = nparts.max(1).min(nnz.max(1));
        let chunk = nnz.div_ceil(nparts).max(1);
        let mut bounds = Vec::new();
        let mut start = 0usize;
        while start < nnz {
            let end = (start + chunk).min(nnz);
            bounds.push(start..end);
            start = end;
        }
        if bounds.is_empty() {
            bounds.push(0..0);
        }
        Self::assemble(x, schedule, lin, values, bounds)
    }

    /// Encodes a COO tensor into `nparts` partitions by cutting the
    /// *linearized key space* (its top `min(bits, 16)` bits) into `nparts`
    /// contiguous bucket ranges, instead of chunking by nonzero count.
    ///
    /// Because a bucket's boundary depends only on the tensor shape and
    /// `nparts` — never on how many nonzeros happen to be present — the
    /// partition containing a given nonzero is identical between a tensor
    /// and any sub-tensor of it. That makes the privatize-and-merge MTTKRP
    /// order subset-stable, which the multi-device sharded path requires for
    /// bitwise reproducibility. Load balance degrades only for adversarially
    /// skewed key distributions (empty partitions are allowed and skipped).
    pub fn with_key_partitions(x: &SparseTensor, nparts: usize) -> Self {
        let (schedule, lin, values) = Self::sorted_pairs(x);
        let bits = schedule.slots.len() as u32;
        let pbits = bits.min(16);
        let shift = bits - pbits;
        let nbuckets: u128 = 1u128 << pbits;
        let nparts = nparts.max(1);
        let mut bounds = Vec::with_capacity(nparts);
        for j in 0..nparts {
            // Bucket thresholds j*B/nparts are shape-only; map each to the
            // first nonzero at or past it in the sorted key array.
            let lo_bucket = nbuckets * j as u128 / nparts as u128;
            let hi_bucket = nbuckets * (j + 1) as u128 / nparts as u128;
            let lo = lin.partition_point(|&l| (l >> shift) < lo_bucket);
            let hi = lin.partition_point(|&l| (l >> shift) < hi_bucket);
            bounds.push(lo..hi);
        }
        Self::assemble(x, schedule, lin, values, bounds)
    }

    /// Linearizes and key-sorts the nonzeros.
    fn sorted_pairs(x: &SparseTensor) -> (BitSchedule, Vec<u128>, Vec<f64>) {
        let schedule = BitSchedule::for_shape(x.shape());
        let nnz = x.nnz();
        let mut pairs: Vec<(u128, f64)> = (0..nnz)
            .map(|k| {
                let coord = x.coord(k);
                (schedule.linearize(&coord), x.values()[k])
            })
            .collect();
        pairs.par_sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let lin: Vec<u128> = pairs.iter().map(|p| p.0).collect();
        let values: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        (schedule, lin, values)
    }

    /// Builds the encoded tensor from sorted keys plus partition bounds,
    /// computing the per-partition per-mode index intervals.
    fn assemble(
        x: &SparseTensor,
        schedule: BitSchedule,
        lin: Vec<u128>,
        values: Vec<f64>,
        bounds: Vec<std::ops::Range<usize>>,
    ) -> Self {
        let nmodes = x.nmodes();
        let mut partitions = Vec::with_capacity(bounds.len());
        let mut intervals = Vec::with_capacity(bounds.len());
        for range in bounds {
            let mut iv = vec![(u32::MAX, 0u32); nmodes];
            for &l in &lin[range.clone()] {
                for (m, entry) in iv.iter_mut().enumerate() {
                    let c = schedule.delinearize_mode(l, m);
                    entry.0 = entry.0.min(c);
                    entry.1 = entry.1.max(c);
                }
            }
            if range.is_empty() {
                iv = vec![(0, 0); nmodes];
            }
            partitions.push(range);
            intervals.push(iv);
        }
        if partitions.is_empty() {
            partitions.push(0..0);
            intervals.push(vec![(0, 0); nmodes]);
        }
        Self { shape: x.shape().to_vec(), schedule, lin, values, partitions, intervals }
    }

    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.shape.len()
    }

    /// Mode dimensions.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of contiguous partitions.
    pub fn npartitions(&self) -> usize {
        self.partitions.len()
    }

    /// Bits used by the linearized index.
    pub fn index_bits(&self) -> usize {
        self.schedule.slots.len()
    }

    /// Storage bytes: linearized indices (rounded up to whole bytes) plus
    /// values.
    pub fn storage_bytes(&self) -> usize {
        let idx_bytes = self.index_bits().div_ceil(8);
        self.nnz() * (idx_bytes + 8)
    }

    /// Decodes nonzero `k` back to its full coordinate (for tests and
    /// round-trip verification).
    pub fn coord(&self, k: usize) -> Vec<u32> {
        (0..self.nmodes()).map(|m| self.schedule.delinearize_mode(self.lin[k], m)).collect()
    }

    /// Value of nonzero `k` in linearized order.
    pub fn value(&self, k: usize) -> f64 {
        self.values[k]
    }

    /// MTTKRP for `mode`, with per-partition privatized accumulation over
    /// the partition's target-mode interval, merged serially per row range.
    ///
    /// Allocating wrapper over [`Alto::mttkrp_into`].
    pub fn mttkrp(&self, factors: &[Mat], mode: usize) -> Mat {
        let mut out = Mat::zeros(self.shape[mode], factors[mode].cols());
        let mut ws = MttkrpWorkspace::new();
        self.mttkrp_into(factors, mode, &mut out, &mut ws);
        out
    }

    /// [`Alto::mttkrp`] into a caller-owned output. The per-partition
    /// interval buffers and Hadamard scratch rows come from the workspace
    /// (grown on first use, reused after), so steady-state calls perform no
    /// heap allocation. Partition intervals may overlap on the target mode,
    /// so the merge stays serial — ALTO's conflict-resolution strategy.
    ///
    /// # Panics
    /// Panics if `factors`/`mode`/`out` shapes disagree with the tensor.
    pub fn mttkrp_into(
        &self,
        factors: &[Mat],
        mode: usize,
        out: &mut Mat,
        ws: &mut MttkrpWorkspace,
    ) {
        let _span = Span::enter_mode("mttkrp_alto", mode);
        assert_eq!(factors.len(), self.nmodes(), "one factor per mode");
        assert!(mode < self.nmodes(), "mode out of range");
        let rank = factors[mode].cols();
        let rows = self.shape[mode];
        assert_eq!((out.rows(), out.cols()), (rows, rank), "output must be I_mode x R");
        let nmodes = self.nmodes();
        let nparts = self.partitions.len();
        out.as_mut_slice().fill(0.0);

        // Each partition accumulates into a dense buffer covering its
        // [min,max] interval of the target mode. With a single partition
        // (or one nonzero span) the loop below runs serially via Rayon's
        // single-chunk path.
        let bufs = ws.alto_buffers(nparts);
        let kernel = |range: &std::ops::Range<usize>, iv: &Vec<(u32, u32)>, buf: &mut Vec<f64>| {
            let (lo, hi) = iv[mode];
            if range.is_empty() {
                prepare_buffer(buf, 0);
                return;
            }
            let width = (hi - lo + 1) as usize;
            let (local, row) = prepare_buffer(buf, width * rank + rank).split_at_mut(width * rank);
            for k in range.clone() {
                let l = self.lin[k];
                row.fill(self.values[k]);
                for (m, f) in factors.iter().enumerate().take(nmodes) {
                    if m == mode {
                        continue;
                    }
                    let c = self.schedule.delinearize_mode(l, m) as usize;
                    simd::mul_assign(row, f.row(c));
                }
                let i = (self.schedule.delinearize_mode(l, mode) - lo) as usize;
                simd::add_assign(&mut local[i * rank..(i + 1) * rank], row);
            }
        };
        if nparts > 1 {
            self.partitions
                .par_iter()
                .zip(self.intervals.par_iter())
                .zip(bufs.par_iter_mut())
                .for_each(|((range, iv), buf)| kernel(range, iv, buf));
        } else {
            for ((range, iv), buf) in
                self.partitions.iter().zip(&self.intervals).zip(bufs.iter_mut())
            {
                kernel(range, iv, buf);
            }
        }

        for ((range, iv), buf) in
            self.partitions.iter().zip(&self.intervals).zip(ws.alto_buffers(nparts).iter())
        {
            if range.is_empty() {
                continue;
            }
            let lo = iv[mode].0;
            let width = (iv[mode].1 - lo + 1) as usize;
            for (off, chunk) in buf[..width * rank].chunks_exact(rank.max(1)).enumerate() {
                simd::add_assign(out.row_mut(lo as usize + off), chunk);
            }
        }
    }

    /// Traffic estimate: compact linearized indices instead of N coordinate
    /// words, and a locality discount on the factor-row gathers — the
    /// space-filling traversal order keeps consecutive nonzeros' rows in
    /// cache, roughly halving gather traffic versus unordered COO (the
    /// effect the ALTO paper measures).
    pub fn mttkrp_traffic(&self, mode: usize, rank: usize) -> TrafficEstimate {
        let idx_bytes = self.index_bits().div_ceil(8) as f64;
        let mut t = coordinate_mttkrp_traffic(self.nnz(), &self.shape, mode, rank, idx_bytes);
        t.gather_bytes *= 0.5;
        t
    }
}

impl cstf_telemetry::MemoryFootprint for Alto {
    fn footprint(&self) -> cstf_telemetry::Footprint {
        use cstf_telemetry::vec_heap_bytes;
        let mut fp = cstf_telemetry::Footprint::new();
        fp.add("shape", vec_heap_bytes(&self.shape));
        fp.add("schedule.slots", vec_heap_bytes(&self.schedule.slots));
        fp.add("lin", vec_heap_bytes(&self.lin));
        fp.add("values", vec_heap_bytes(&self.values));
        fp.add(
            "partitions",
            (self.partitions.capacity() * std::mem::size_of::<std::ops::Range<usize>>()) as u64,
        );
        fp.add("intervals", cstf_telemetry::nested_vec_heap_bytes(&self.intervals));
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::{assert_mttkrp_close, mttkrp_ref};

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut idx = vec![Vec::with_capacity(nnz); shape.len()];
        let mut vals = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            for (m, &d) in shape.iter().enumerate() {
                idx[m].push(next() % d as u32);
            }
            vals.push(f64::from(next() % 100) * 0.04 - 2.0);
        }
        let mut t = SparseTensor::new(shape.to_vec(), idx, vals);
        t.sum_duplicates();
        t
    }

    fn factors_for(shape: &[usize], rank: usize) -> Vec<Mat> {
        shape
            .iter()
            .enumerate()
            .map(|(m, &d)| Mat::from_fn(d, rank, |i, j| ((i * 3 + j + m) % 8) as f64 * 0.25 - 1.0))
            .collect()
    }

    #[test]
    fn footprint_matches_capacity_sum() {
        use cstf_telemetry::MemoryFootprint;
        let alto = Alto::from_coo(&random_tensor(&[23, 11, 7], 300, 5));
        let vb = |c: usize, sz: usize| (c * sz) as u64;
        let expected = vb(alto.shape.capacity(), std::mem::size_of::<usize>())
            + vb(alto.schedule.slots.capacity(), std::mem::size_of::<(u8, u8)>())
            + vb(alto.lin.capacity(), std::mem::size_of::<u128>())
            + vb(alto.values.capacity(), std::mem::size_of::<f64>())
            + vb(alto.partitions.capacity(), std::mem::size_of::<std::ops::Range<usize>>())
            + vb(alto.intervals.capacity(), std::mem::size_of::<Vec<(u32, u32)>>())
            + alto
                .intervals
                .iter()
                .map(|v| vb(v.capacity(), std::mem::size_of::<(u32, u32)>()))
                .sum::<u64>();
        assert_eq!(alto.heap_bytes(), expected);
        assert!(alto.footprint().get("lin") >= 16 * alto.nnz() as u64);
    }

    #[test]
    fn linearization_round_trips_coordinates() {
        let x = random_tensor(&[37, 1000, 5, 13], 2_000, 1);
        let alto = Alto::from_coo(&x);
        // Every original coordinate must be recoverable from some position.
        let mut total = 0.0;
        for k in 0..alto.nnz() {
            let c = alto.coord(k);
            assert_eq!(alto.value(k), x.get(&c), "coord {c:?} mismatched");
            total += alto.value(k);
        }
        let want: f64 = x.values().iter().sum();
        assert!((total - want).abs() < 1e-9);
    }

    #[test]
    fn adaptive_bits_match_mode_sizes() {
        let x = random_tensor(&[1 << 10, 4, 2], 100, 2);
        let alto = Alto::from_coo(&x);
        // 10 + 2 + 1 bits.
        assert_eq!(alto.index_bits(), 13);
    }

    #[test]
    fn linearized_indices_are_sorted() {
        let x = random_tensor(&[64, 64, 64], 5_000, 3);
        let alto = Alto::from_coo(&x);
        assert!(alto.lin.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mttkrp_matches_reference_all_modes() {
        let x = random_tensor(&[50, 30, 70], 15_000, 4);
        let f = factors_for(x.shape(), 8);
        let alto = Alto::from_coo(&x);
        for mode in 0..3 {
            assert_mttkrp_close(&alto.mttkrp(&f, mode), &mttkrp_ref(&x, &f, mode), 1e-10);
        }
    }

    #[test]
    fn mttkrp_matches_reference_4mode_many_partitions() {
        let x = random_tensor(&[20, 16, 12, 10], 10_000, 5);
        let f = factors_for(x.shape(), 4);
        let alto = Alto::with_partitions(&x, 31);
        assert_eq!(alto.npartitions(), 31.min(alto.nnz()));
        for mode in 0..4 {
            assert_mttkrp_close(&alto.mttkrp(&f, mode), &mttkrp_ref(&x, &f, mode), 1e-10);
        }
    }

    #[test]
    fn key_partitions_match_reference_all_modes() {
        let x = random_tensor(&[50, 30, 70], 15_000, 4);
        let f = factors_for(x.shape(), 8);
        for nparts in [1usize, 3, 8, 31] {
            let alto = Alto::with_key_partitions(&x, nparts);
            assert_eq!(alto.npartitions(), nparts);
            for mode in 0..3 {
                assert_mttkrp_close(&alto.mttkrp(&f, mode), &mttkrp_ref(&x, &f, mode), 1e-10);
            }
        }
    }

    #[test]
    fn key_partitions_are_subset_stable() {
        // The partition a nonzero lands in must not change when other
        // nonzeros are removed — the property the sharded multi-device path
        // needs for bitwise reproducibility.
        let x = random_tensor(&[40, 30, 20], 3_000, 8);
        let nparts = 5;
        let full = Alto::with_key_partitions(&x, nparts);

        let rows = 10usize..25;
        let keep: Vec<usize> =
            (0..x.nnz()).filter(|&k| rows.contains(&(x.mode_indices(0)[k] as usize))).collect();
        let idx: Vec<Vec<u32>> =
            (0..3).map(|m| keep.iter().map(|&k| x.mode_indices(m)[k]).collect()).collect();
        let vals: Vec<f64> = keep.iter().map(|&k| x.values()[k]).collect();
        let shard_x = SparseTensor::new(x.shape().to_vec(), idx, vals);
        let shard = Alto::with_key_partitions(&shard_x, nparts);

        for p in 0..nparts {
            let full_keys: Vec<u128> = full.lin[full.partitions[p].clone()]
                .iter()
                .copied()
                .filter(|&l| rows.contains(&(full.schedule.delinearize_mode(l, 0) as usize)))
                .collect();
            let shard_keys = shard.lin[shard.partitions[p].clone()].to_vec();
            assert_eq!(full_keys, shard_keys, "partition {p} is not the restriction");
        }
    }

    #[test]
    fn single_partition_matches_reference() {
        let x = random_tensor(&[25, 25, 25], 3_000, 6);
        let f = factors_for(x.shape(), 6);
        let alto = Alto::with_partitions(&x, 1);
        assert_mttkrp_close(&alto.mttkrp(&f, 0), &mttkrp_ref(&x, &f, 0), 1e-11);
    }

    #[test]
    fn storage_is_compact_vs_coo() {
        let x = random_tensor(&[256, 256, 256], 4_000, 7);
        let alto = Alto::from_coo(&x);
        // 24 bits -> 3 bytes of index vs 12 bytes of COO coordinates.
        assert_eq!(alto.index_bits(), 24);
        assert!(alto.storage_bytes() < x.nnz() * (12 + 8));
    }

    #[test]
    fn degenerate_modes_of_size_one() {
        let x = SparseTensor::new(
            vec![1, 5, 1],
            vec![vec![0, 0], vec![1, 4], vec![0, 0]],
            vec![2.0, 3.0],
        );
        let alto = Alto::from_coo(&x);
        let f = factors_for(&[1, 5, 1], 2);
        assert_mttkrp_close(&alto.mttkrp(&f, 1), &mttkrp_ref(&x, &f, 1), 1e-13);
    }
}
