//! Tensor sharding for multi-device factorization.
//!
//! Each device owns a contiguous block of the output-mode rows (AMPED-style
//! shard-per-GPU MTTKRP): for the mode-`m` update, device `d` holds every
//! nonzero whose mode-`m` index falls in its row block, so its MTTKRP output
//! rows are exactly the rows its partitioned ADMM update consumes — no `M`
//! traffic between the two phases. Blocks are nnz-balanced (equal nonzero
//! counts, not equal row counts) because MTTKRP cost follows nonzeros.
//!
//! A shard keeps the full tensor shape and global indices, so every format's
//! `mttkrp_into` writes directly into global output rows; rows outside the
//! shard receive no nonzeros and stay zero.

use std::ops::Range;

use cstf_tensor::SparseTensor;

/// Splits the mode-`mode` rows of `x` into exactly `parts` contiguous
/// ranges with near-equal nonzero counts: range `j` closes once the
/// cumulative nonzero count reaches `(j+1) * nnz / parts`. Trailing ranges
/// may be empty; together the ranges cover `0..shape[mode]`.
///
/// Delegates the range arithmetic to
/// [`cstf_tensor::balanced_ranges_from_counts`] — the same implementation
/// the streaming `.tns` reader partitions with — so in-core shards/tiles
/// and streamed tiles land on bitwise-identical boundaries.
///
/// # Panics
/// Panics if `mode` is out of range.
pub fn nnz_balanced_ranges(x: &SparseTensor, mode: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(mode < x.nmodes(), "mode out of range");
    let mut counts = vec![0usize; x.shape()[mode]];
    for &i in x.mode_indices(mode) {
        counts[i as usize] += 1;
    }
    cstf_tensor::balanced_ranges_from_counts(&counts, parts)
}

/// Extracts the sub-tensor of `x` whose mode-`mode` index lies in `rows`,
/// preserving the full shape, global indices, and the storage order of the
/// surviving nonzeros (an order-preserving filter — required for the
/// formats' traversal orders to restrict cleanly).
///
/// # Panics
/// Panics if `mode` or `rows` is out of range.
pub fn extract_mode_rows(x: &SparseTensor, mode: usize, rows: &Range<usize>) -> SparseTensor {
    assert!(mode < x.nmodes(), "mode out of range");
    assert!(rows.end <= x.shape()[mode], "row range out of bounds");
    let keep: Vec<usize> =
        (0..x.nnz()).filter(|&k| rows.contains(&(x.mode_indices(mode)[k] as usize))).collect();
    let indices: Vec<Vec<u32>> =
        (0..x.nmodes()).map(|m| keep.iter().map(|&k| x.mode_indices(m)[k]).collect()).collect();
    let values: Vec<f64> = keep.iter().map(|&k| x.values()[k]).collect();
    SparseTensor::new(x.shape().to_vec(), indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut idx = vec![Vec::with_capacity(nnz); shape.len()];
        let mut vals = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            for (m, &d) in shape.iter().enumerate() {
                idx[m].push(next() % d as u32);
            }
            vals.push(f64::from(next() % 50) * 0.1 + 0.1);
        }
        let mut t = SparseTensor::new(shape.to_vec(), idx, vals);
        t.sum_duplicates();
        t
    }

    #[test]
    fn ranges_cover_all_rows_with_exact_part_count() {
        let x = random_tensor(&[37, 20, 15], 900, 1);
        for parts in [1usize, 2, 3, 4, 7, 50] {
            let ranges = nnz_balanced_ranges(&x, 0, parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 37);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
            }
        }
    }

    #[test]
    fn ranges_balance_nonzeros_not_rows() {
        // Rows 0..5 carry almost all nonzeros; a row-balanced split would
        // put them all in one part.
        let mut idx = vec![Vec::new(), Vec::new()];
        let mut vals = Vec::new();
        for i in 0..5u32 {
            for j in 0..40u32 {
                idx[0].push(i);
                idx[1].push(j);
                vals.push(1.0);
            }
        }
        for i in 5..50u32 {
            idx[0].push(i);
            idx[1].push(i % 40);
            vals.push(1.0);
        }
        let x = SparseTensor::new(vec![50, 40], idx, vals);
        let ranges = nnz_balanced_ranges(&x, 0, 4);
        let nnz_of = |r: &Range<usize>| {
            x.mode_indices(0).iter().filter(|&&i| r.contains(&(i as usize))).count()
        };
        let per_part: Vec<usize> = ranges.iter().map(nnz_of).collect();
        let total: usize = per_part.iter().sum();
        assert_eq!(total, x.nnz());
        // Every part ends within one heavy row's worth of the ideal quarter.
        let ideal = x.nnz() / 4;
        for (p, &n) in per_part.iter().enumerate() {
            assert!(n <= ideal + 40, "part {p} holds {n} nnz (ideal {ideal})");
        }
    }

    #[test]
    fn extraction_partitions_the_tensor_exactly() {
        let x = random_tensor(&[23, 11, 9], 600, 2);
        for mode in 0..3 {
            let ranges = nnz_balanced_ranges(&x, mode, 3);
            let shards: Vec<SparseTensor> =
                ranges.iter().map(|r| extract_mode_rows(&x, mode, r)).collect();
            let total: usize = shards.iter().map(|s| s.nnz()).sum();
            assert_eq!(total, x.nnz(), "shards must partition the nonzeros");
            for (shard, r) in shards.iter().zip(&ranges) {
                assert_eq!(shard.shape(), x.shape(), "shards keep the global shape");
                assert!(shard.mode_indices(mode).iter().all(|&i| r.contains(&(i as usize))));
            }
        }
    }

    #[test]
    fn extraction_preserves_storage_order() {
        let x = random_tensor(&[16, 8, 8], 300, 3);
        let r = 4usize..12;
        let shard = extract_mode_rows(&x, 0, &r);
        let mut want = Vec::new();
        for k in 0..x.nnz() {
            if r.contains(&(x.mode_indices(0)[k] as usize)) {
                want.push((x.coord(k), x.values()[k]));
            }
        }
        let got: Vec<(Vec<u32>, f64)> =
            (0..shard.nnz()).map(|k| (shard.coord(k), shard.values()[k])).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn more_parts_than_rows_yields_trailing_empties() {
        let x = random_tensor(&[3, 5, 5], 40, 4);
        let ranges = nnz_balanced_ranges(&x, 0, 8);
        assert_eq!(ranges.len(), 8);
        assert_eq!(ranges.last().unwrap().end, 3);
        assert!(ranges.iter().filter(|r| r.is_empty()).count() >= 5);
        let empty = extract_mode_rows(&x, 0, &(0..0));
        assert_eq!(empty.nnz(), 0);
        assert_eq!(empty.shape(), x.shape());
    }
}
