//! HiCOO — Hierarchical COOrdinate format (Li et al., SC '18).
//!
//! HiCOO compresses COO by sorting nonzeros in Z-Morton order and grouping
//! them into small cubical blocks (side `2^block_bits` per mode). Each
//! block stores its base coordinates once (`u32` per mode), and each
//! nonzero stores only `u8` offsets within the block — cutting index
//! memory roughly `4x` against COO while keeping the mode-agnostic,
//! single-copy property ALTO also has. It is the other mainstream
//! compressed format family referenced by the paper's related work
//! (mixed-mode/HiCOO lineage) and completes this crate's format landscape.

use rayon::prelude::*;

use cstf_linalg::{simd, tuning, Mat};
use cstf_telemetry::Span;
use cstf_tensor::SparseTensor;

use crate::traffic::{coordinate_mttkrp_traffic, TrafficEstimate};
use crate::workspace::MttkrpWorkspace;

/// One HiCOO block: base coordinates plus the span of its nonzeros.
#[derive(Debug, Clone)]
struct Block {
    /// Base coordinate of the block per mode (already shifted left by
    /// `block_bits`).
    base: Vec<u32>,
    /// Nonzero span `start..end` into the element arrays.
    start: usize,
    end: usize,
}

/// A HiCOO-encoded sparse tensor.
#[derive(Debug, Clone)]
pub struct HiCoo {
    shape: Vec<usize>,
    block_bits: u32,
    blocks: Vec<Block>,
    /// Per-mode within-block offsets, `u8` each, aligned with `values`.
    offsets: Vec<Vec<u8>>,
    values: Vec<f64>,
}

impl HiCoo {
    /// Encodes a COO tensor with the default 128-wide blocks (`b = 7`).
    pub fn from_coo(x: &SparseTensor) -> Self {
        Self::with_block_bits(x, 7)
    }

    /// Encodes with `2^block_bits`-wide blocks (`block_bits <= 8` so that
    /// offsets fit in a `u8`).
    pub fn with_block_bits(x: &SparseTensor, block_bits: u32) -> Self {
        assert!((1..=8).contains(&block_bits), "block bits must be in 1..=8");
        let nmodes = x.nmodes();
        let nnz = x.nnz();

        // Sort nonzeros by their block coordinate tuple (Morton-ish: block
        // grid in lexicographic order is sufficient for clustering), with a
        // full-coordinate tie-break inside each block. The tie-break makes
        // the storage order a pure function of the nonzero *content* (not of
        // the unstable sort's whims), which the sharded path relies on:
        // restricting the tensor to a row range must restrict the traversal
        // order too.
        let mut order: Vec<u32> = (0..nnz as u32).collect();
        let block_of = |k: usize, m: usize| x.mode_indices(m)[k] >> block_bits;
        order.par_sort_unstable_by(|&a, &b| {
            for m in 0..nmodes {
                match block_of(a as usize, m).cmp(&block_of(b as usize, m)) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            for m in 0..nmodes {
                match x.mode_indices(m)[a as usize].cmp(&x.mode_indices(m)[b as usize]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });

        let mut blocks: Vec<Block> = Vec::new();
        let mut offsets = vec![Vec::with_capacity(nnz); nmodes];
        let mut values = Vec::with_capacity(nnz);

        for (pos, &k) in order.iter().enumerate() {
            let k = k as usize;
            let base: Vec<u32> =
                (0..nmodes).map(|m| (x.mode_indices(m)[k] >> block_bits) << block_bits).collect();
            let new_block = match blocks.last() {
                Some(b) => b.base != base,
                None => true,
            };
            if new_block {
                if let Some(b) = blocks.last_mut() {
                    b.end = pos;
                }
                blocks.push(Block { base, start: pos, end: pos });
            }
            for (m, off) in offsets.iter_mut().enumerate() {
                off.push((x.mode_indices(m)[k] & ((1u32 << block_bits) - 1)) as u8);
            }
            values.push(x.values()[k]);
        }
        if let Some(b) = blocks.last_mut() {
            b.end = nnz;
        }

        Self { shape: x.shape().to_vec(), block_bits, blocks, offsets, values }
    }

    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.shape.len()
    }

    /// Mode dimensions.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of blocks.
    pub fn nblocks(&self) -> usize {
        self.blocks.len()
    }

    /// Block side length (`2^block_bits`).
    pub fn block_side(&self) -> u32 {
        1 << self.block_bits
    }

    /// Storage bytes: per-block base coordinates + per-element `u8`
    /// offsets + values.
    pub fn storage_bytes(&self) -> usize {
        self.nblocks() * (self.nmodes() * 4 + 16) + self.nnz() * (self.nmodes() + 8)
    }

    /// Decodes element `k` (in storage order) to its full coordinate.
    pub fn coord(&self, k: usize) -> Vec<u32> {
        let block =
            self.blocks.iter().find(|b| k >= b.start && k < b.end).expect("element index in range");
        (0..self.nmodes()).map(|m| block.base[m] + self.offsets[m][k] as u32).collect()
    }

    /// Value of element `k` in storage order.
    pub fn value(&self, k: usize) -> f64 {
        self.values[k]
    }

    /// MTTKRP for `mode`, parallel over block chunks with per-chunk output
    /// privatization (blocks cluster output rows, so partial buffers stay
    /// cache-friendly).
    ///
    /// Allocating wrapper over [`HiCoo::mttkrp_into`].
    pub fn mttkrp(&self, factors: &[Mat], mode: usize) -> Mat {
        let mut out = Mat::zeros(self.shape[mode], factors[mode].cols());
        let mut ws = MttkrpWorkspace::new();
        self.mttkrp_into(factors, mode, &mut out, &mut ws);
        out
    }

    /// [`HiCoo::mttkrp`] into a caller-owned output. Per-chunk privatized
    /// buffers and Hadamard scratch rows come from the workspace and are
    /// combined with a pairwise parallel tree reduction; steady-state calls
    /// perform no heap allocation.
    ///
    /// # Panics
    /// Panics if `factors`/`mode`/`out` shapes disagree with the tensor.
    pub fn mttkrp_into(
        &self,
        factors: &[Mat],
        mode: usize,
        out: &mut Mat,
        ws: &mut MttkrpWorkspace,
    ) {
        let _span = Span::enter_mode("mttkrp_hicoo", mode);
        assert_eq!(factors.len(), self.nmodes(), "one factor per mode");
        assert!(mode < self.nmodes(), "mode out of range");
        let rank = factors[mode].cols();
        let rows = self.shape[mode];
        assert_eq!((out.rows(), out.cols()), (rows, rank), "output must be I_mode x R");
        let nmodes = self.nmodes();
        out.as_mut_slice().fill(0.0);

        let process = |local: &mut [f64], row: &mut [f64], block_range: std::ops::Range<usize>| {
            for b in &self.blocks[block_range] {
                for k in b.start..b.end {
                    row.fill(self.values[k]);
                    for (m, f) in factors.iter().enumerate().take(nmodes) {
                        if m == mode {
                            continue;
                        }
                        let idx = (b.base[m] + self.offsets[m][k] as u32) as usize;
                        simd::mul_assign(row, f.row(idx));
                    }
                    let i = (b.base[mode] + self.offsets[mode][k] as u32) as usize;
                    simd::add_assign(&mut local[i * rank..(i + 1) * rank], row);
                }
            }
        };

        let nblocks = self.nblocks();
        if self.nnz() >= tuning::hicoo_nnz_cutoff() && nblocks > 1 {
            let nchunks = rayon::current_num_threads().max(1).min(nblocks);
            let chunk = nblocks.div_ceil(nchunks).max(1);
            let (bufs, rows_scratch, _) = ws.chunk_scratch(nchunks, rows * rank, 0, rank);
            bufs.par_iter_mut().zip(rows_scratch.par_chunks_mut(rank.max(1))).enumerate().for_each(
                |(t, (local, row))| {
                    let start = (t * chunk).min(nblocks);
                    let end = ((t + 1) * chunk).min(nblocks);
                    process(&mut local[..rows * rank], row, start..end);
                },
            );
            ws.partials.reduce_into(nchunks, rows * rank, out.as_mut_slice());
        } else {
            let (_, row, _) = ws.chunk_scratch(1, 0, 0, rank);
            process(out.as_mut_slice(), row, 0..nblocks);
        }
    }

    /// Traffic estimate: `u8` offsets per mode per nonzero plus `u32` bases
    /// per block.
    pub fn mttkrp_traffic(&self, mode: usize, rank: usize) -> TrafficEstimate {
        let idx_bytes = self.nmodes() as f64
            + (self.nblocks() * self.nmodes() * 4) as f64 / self.nnz().max(1) as f64;
        coordinate_mttkrp_traffic(self.nnz(), &self.shape, mode, rank, idx_bytes)
    }
}

impl cstf_telemetry::MemoryFootprint for HiCoo {
    fn footprint(&self) -> cstf_telemetry::Footprint {
        use cstf_telemetry::vec_heap_bytes;
        let mut fp = cstf_telemetry::Footprint::new();
        fp.add("shape", vec_heap_bytes(&self.shape));
        fp.add("blocks.spine", (self.blocks.capacity() * std::mem::size_of::<Block>()) as u64);
        for b in &self.blocks {
            fp.add("blocks.base", vec_heap_bytes(&b.base));
        }
        fp.add("offsets", cstf_telemetry::nested_vec_heap_bytes(&self.offsets));
        fp.add("values", vec_heap_bytes(&self.values));
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::{assert_mttkrp_close, mttkrp_ref};

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut state = seed.wrapping_mul(0xA24BAED4963EE407).wrapping_add(3);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut idx = vec![Vec::with_capacity(nnz); shape.len()];
        let mut vals = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            for (m, &d) in shape.iter().enumerate() {
                idx[m].push(next() % d as u32);
            }
            vals.push(f64::from(next() % 64) * 0.25 + 0.25);
        }
        let mut t = SparseTensor::new(shape.to_vec(), idx, vals);
        t.sum_duplicates();
        t
    }

    fn factors_for(shape: &[usize], rank: usize) -> Vec<Mat> {
        shape
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                Mat::from_fn(d, rank, |i, j| ((i * 3 + j * 5 + m) % 11) as f64 * 0.2 - 1.0)
            })
            .collect()
    }

    #[test]
    fn footprint_matches_capacity_sum() {
        use cstf_telemetry::MemoryFootprint;
        let h = HiCoo::from_coo(&random_tensor(&[40, 33, 12], 500, 4));
        let vb = |c: usize, sz: usize| (c * sz) as u64;
        let mut expected = vb(h.shape.capacity(), std::mem::size_of::<usize>())
            + vb(h.blocks.capacity(), std::mem::size_of::<Block>())
            + vb(h.offsets.capacity(), std::mem::size_of::<Vec<u8>>())
            + h.offsets.iter().map(|v| vb(v.capacity(), 1)).sum::<u64>()
            + vb(h.values.capacity(), std::mem::size_of::<f64>());
        for b in &h.blocks {
            expected += vb(b.base.capacity(), std::mem::size_of::<u32>());
        }
        assert_eq!(h.heap_bytes(), expected);
        assert!(h.footprint().get("offsets") >= (h.nmodes() * h.nnz()) as u64);
    }

    #[test]
    fn coordinates_round_trip() {
        let x = random_tensor(&[300, 200, 150], 5_000, 1);
        let h = HiCoo::from_coo(&x);
        assert_eq!(h.nnz(), x.nnz());
        for k in 0..h.nnz() {
            let c = h.coord(k);
            assert_eq!(x.get(&c), h.value(k), "coord {c:?}");
        }
    }

    #[test]
    fn offsets_fit_block_side() {
        let x = random_tensor(&[1000, 1000, 1000], 3_000, 2);
        for bits in [4u32, 7, 8] {
            let h = HiCoo::with_block_bits(&x, bits);
            let side = h.block_side() as u8 as u32;
            for m in 0..3 {
                assert!(h.offsets[m].iter().all(|&o| (o as u32) < h.block_side().max(side)));
            }
        }
    }

    #[test]
    fn clustered_tensors_compress_well() {
        // Coordinates confined to a 64^3 corner of a large space: few
        // blocks, so index storage approaches nnz * nmodes bytes.
        let mut state = 9u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32 % 64
        };
        let nnz = 4_000;
        let idx: Vec<Vec<u32>> = (0..3).map(|_| (0..nnz).map(|_| next()).collect()).collect();
        let vals = vec![1.0; nnz];
        let mut x = SparseTensor::new(vec![100_000, 100_000, 100_000], idx, vals);
        x.sum_duplicates();
        let h = HiCoo::from_coo(&x);
        let coo_bytes = x.nnz() * (3 * 4 + 8);
        assert!(h.storage_bytes() < coo_bytes, "{} vs {}", h.storage_bytes(), coo_bytes);
        assert!(h.nblocks() <= 8, "64^3 corner with b=7 fits in <= 8 blocks");
    }

    #[test]
    fn mttkrp_matches_reference_all_modes() {
        let x = random_tensor(&[60, 45, 30], 12_000, 3);
        let f = factors_for(x.shape(), 8);
        let h = HiCoo::from_coo(&x);
        for mode in 0..3 {
            assert_mttkrp_close(&h.mttkrp(&f, mode), &mttkrp_ref(&x, &f, mode), 1e-10);
        }
    }

    #[test]
    fn mttkrp_matches_reference_4mode_small_blocks() {
        let x = random_tensor(&[20, 18, 16, 14], 6_000, 4);
        let f = factors_for(x.shape(), 4);
        let h = HiCoo::with_block_bits(&x, 3);
        for mode in 0..4 {
            assert_mttkrp_close(&h.mttkrp(&f, mode), &mttkrp_ref(&x, &f, mode), 1e-10);
        }
    }

    #[test]
    fn single_block_tensor() {
        let x = random_tensor(&[16, 16, 16], 300, 5);
        let h = HiCoo::from_coo(&x); // 128-wide blocks swallow everything
        assert_eq!(h.nblocks(), 1);
        let f = factors_for(x.shape(), 3);
        assert_mttkrp_close(&h.mttkrp(&f, 1), &mttkrp_ref(&x, &f, 1), 1e-11);
    }

    #[test]
    #[should_panic(expected = "block bits")]
    fn oversized_block_bits_rejected() {
        let x = random_tensor(&[8, 8], 10, 6);
        HiCoo::with_block_bits(&x, 9);
    }
}
