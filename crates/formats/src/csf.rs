//! Compressed Sparse Fiber (CSF) — SPLATT's tensor format.
//!
//! CSF generalizes CSR to N modes: nonzeros are sorted lexicographically by
//! a mode order and folded into a tree whose level-`l` nodes are the
//! distinct index prefixes of length `l+1`. SPLATT's CPU MTTKRP walks this
//! tree once per target mode; as in SPLATT's `ALLMODE` configuration, we
//! build one CSF per mode so the target mode is always the root level —
//! making the outer loop over root nodes conflict-free and perfectly
//! parallel.

use rayon::prelude::*;

use cstf_linalg::{simd, tuning, Mat};
use cstf_telemetry::Span;
use cstf_tensor::SparseTensor;

use crate::traffic::TrafficEstimate;
use crate::workspace::MttkrpWorkspace;

/// One level of the CSF tree.
#[derive(Debug, Clone)]
struct CsfLevel {
    /// Index (in the level's tensor mode) of each node.
    fids: Vec<u32>,
    /// `ptr[k]..ptr[k+1]` spans node `k`'s children in the next level
    /// (absent on the leaf level).
    ptr: Vec<usize>,
}

/// One unit of the fiber-binned root walk. Items are ordered by root node;
/// their piece rows partition the schedule's accumulation buffer in the
/// same order, so a bisection executor can hand each item a disjoint
/// slice without bookkeeping.
#[derive(Debug, Clone, Copy)]
enum CsfTask {
    /// Short-fiber run: root nodes `[start, end)`, one piece row each,
    /// whole subtree per node.
    Nodes { start: usize, end: usize },
    /// One segment of a heavy root node: level-1 children `[clo, chi)`
    /// accumulate into one piece row of `node`.
    Segment { node: usize, clo: usize, chi: usize },
}

impl CsfTask {
    /// Piece rows this item writes.
    fn rows(&self) -> usize {
        match *self {
            CsfTask::Nodes { start, end } => end - start,
            CsfTask::Segment { .. } => 1,
        }
    }
}

/// Fiber-length-aware load-balance schedule for the root-parallel MTTKRP,
/// built once at construction (the hot path never allocates or re-bins).
///
/// Root subtrees are binned by nonzero count against
/// [`tuning::csf_heavy_fiber_cutoff`]: short fibers are grouped into
/// nnz-balanced contiguous runs; each heavy fiber is split into
/// child-segments of roughly cutoff nonzeros that accumulate into private
/// piece rows, combined in fixed segment order at copy-out. Both decisions
/// depend only on per-node subtree shape, so a root node schedules — and
/// therefore sums — identically whether it appears in a full tensor or a
/// shard, and whether the walk runs serially or in parallel (the DESIGN
/// §11 bitwise-exactness requirement).
#[derive(Debug, Clone)]
struct RootSchedule {
    /// Work items in root-node order.
    items: Vec<CsfTask>,
    /// Piece-row offsets per root node (`len = nroot + 1`): node `n`'s
    /// pieces occupy buffer rows `offsets[n]..offsets[n + 1]`.
    offsets: Vec<usize>,
    /// First nonzero of each root node plus an `nnz` sentinel
    /// (`len = nroot + 1`); also drives the nnz-balanced chunk bounds of
    /// [`Csf::mttkrp_any_into`].
    root_starts: Vec<usize>,
}

impl RootSchedule {
    /// Bins root nodes by subtree nonzeros. `l1_starts`/`ptr0` supply the
    /// per-child spans used to segment heavy fibers (unused when
    /// `nmodes < 2`, where every root is a leaf and therefore light).
    fn build(
        nmodes: usize,
        root_starts: Vec<usize>,
        l1_starts: &[usize],
        ptr0: &[usize],
        cutoff: usize,
    ) -> Self {
        let nroot = root_starts.len() - 1;
        let cutoff = cutoff.max(1);
        let mut items = Vec::new();
        let mut offsets = Vec::with_capacity(nroot + 1);
        offsets.push(0usize);
        let mut run_start = 0usize;

        // Close the pending short-fiber run `[lo, hi)`, splitting it into
        // chunks of roughly `cutoff` nonzeros.
        fn flush_light(
            items: &mut Vec<CsfTask>,
            root_starts: &[usize],
            lo: usize,
            hi: usize,
            cutoff: usize,
        ) {
            let mut start = lo;
            let mut acc = 0usize;
            for n in lo..hi {
                acc += root_starts[n + 1] - root_starts[n];
                if acc >= cutoff || n + 1 == hi {
                    items.push(CsfTask::Nodes { start, end: n + 1 });
                    start = n + 1;
                    acc = 0;
                }
            }
        }

        for n in 0..nroot {
            let node_nnz = root_starts[n + 1] - root_starts[n];
            if nmodes >= 2 && node_nnz >= cutoff {
                flush_light(&mut items, &root_starts, run_start, n, cutoff);
                let (clo, chi) = (ptr0[n], ptr0[n + 1]);
                let mut seg_lo = clo;
                let mut seg_nnz = 0usize;
                let mut pieces = 0usize;
                for c in clo..chi {
                    seg_nnz += l1_starts[c + 1] - l1_starts[c];
                    if seg_nnz >= cutoff || c + 1 == chi {
                        items.push(CsfTask::Segment { node: n, clo: seg_lo, chi: c + 1 });
                        pieces += 1;
                        seg_lo = c + 1;
                        seg_nnz = 0;
                    }
                }
                debug_assert!(pieces > 0, "a heavy root node always has children");
                offsets.push(offsets[n] + pieces);
                run_start = n + 1;
            } else {
                offsets.push(offsets[n] + 1);
            }
        }
        flush_light(&mut items, &root_starts, run_start, nroot, cutoff);

        Self { items, offsets, root_starts }
    }

    /// Total piece rows in the accumulation buffer.
    fn piece_rows(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }
}

/// A CSF tensor rooted at one mode.
#[derive(Debug, Clone)]
pub struct Csf {
    /// `mode_order[0]` is the root (target) mode.
    mode_order: Vec<usize>,
    shape: Vec<usize>,
    levels: Vec<CsfLevel>,
    /// Nonzero values, aligned with the leaf level's `fids`.
    values: Vec<f64>,
    /// Fiber-binned work schedule for the root walk.
    schedule: RootSchedule,
}

impl Csf {
    /// Compiles a COO tensor into a CSF rooted at `root_mode`.
    pub fn from_coo(x: &SparseTensor, root_mode: usize) -> Self {
        Self::from_coo_with_cutoff(x, root_mode, tuning::csf_heavy_fiber_cutoff())
    }

    /// [`Csf::from_coo`] with an explicit heavy-fiber cutoff (in nonzeros).
    ///
    /// Root slices whose subtree holds at least `cutoff` nonzeros are split
    /// into per-child segments in the load schedule; lighter slices are
    /// coalesced into runs of roughly `cutoff` nonzeros. Exposed so tests
    /// and benches can exercise the segmented schedule on small tensors.
    pub fn from_coo_with_cutoff(x: &SparseTensor, root_mode: usize, cutoff: usize) -> Self {
        assert!(root_mode < x.nmodes(), "root mode out of range");
        let nmodes = x.nmodes();
        let mode_order: Vec<usize> =
            std::iter::once(root_mode).chain((0..nmodes).filter(|&m| m != root_mode)).collect();

        let mut sorted = x.clone();
        sorted.sort_by_mode(root_mode);
        let nnz = sorted.nnz();

        let mut levels: Vec<CsfLevel> = Vec::with_capacity(nmodes);
        // `starts[j]` = first nonzero of the j-th node at the previous level.
        let mut prev_starts: Vec<usize> = vec![0];
        // virtual super-root
        let mut prev_count = 1usize;
        // First-nonzero arrays of the top two levels, kept for the
        // fiber-binning schedule (`starts[j+1] - starts[j]` = subtree nnz).
        let mut root_starts: Vec<usize> = Vec::new();
        let mut l1_starts: Vec<usize> = Vec::new();

        for (l, &mode) in mode_order.iter().enumerate() {
            let idx = sorted.mode_indices(mode);
            let mut fids: Vec<u32> = Vec::new();
            let mut starts: Vec<usize> = Vec::new();
            let mut ptr: Vec<usize> = vec![0; prev_count + 1];

            for parent in 0..prev_count {
                let lo = prev_starts[parent];
                let hi = if parent + 1 < prev_starts.len() { prev_starts[parent + 1] } else { nnz };
                let mut k = lo;
                while k < hi {
                    // A new node begins where the index at this level changes
                    // within the parent's span.
                    if l == nmodes - 1 {
                        // Leaf level: one node per nonzero.
                        fids.push(idx[k]);
                        starts.push(k);
                        k += 1;
                    } else {
                        let fid = idx[k];
                        fids.push(fid);
                        starts.push(k);
                        while k < hi && idx[k] == fid {
                            k += 1;
                        }
                    }
                }
                ptr[parent + 1] = fids.len();
            }

            // Attach child pointers to the *previous* level (or discard the
            // super-root's pointer array since level 0's nodes are its
            // children trivially).
            if l > 0 {
                levels[l - 1].ptr = ptr;
            }
            prev_count = fids.len();
            prev_starts = starts;
            if l == 0 {
                root_starts = prev_starts.clone();
            } else if l == 1 {
                l1_starts = prev_starts.clone();
            }
            levels.push(CsfLevel { fids, ptr: Vec::new() });
        }

        root_starts.push(nnz);
        l1_starts.push(nnz);
        let schedule = RootSchedule::build(nmodes, root_starts, &l1_starts, &levels[0].ptr, cutoff);

        Self {
            mode_order,
            shape: x.shape().to_vec(),
            levels,
            values: sorted.values().to_vec(),
            schedule,
        }
    }

    /// The root (target) mode of this CSF.
    pub fn root_mode(&self) -> usize {
        self.mode_order[0]
    }

    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.mode_order.len()
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of nodes at a tree level (level 0 = root).
    pub fn level_size(&self, level: usize) -> usize {
        self.levels[level].fids.len()
    }

    /// Storage footprint in bytes (fids + ptrs + values): CSF's compression
    /// win over COO comes from sharing index prefixes.
    pub fn storage_bytes(&self) -> usize {
        let idx: usize = self.levels.iter().map(|l| l.fids.len() * 4 + l.ptr.len() * 8).sum();
        idx + self.values.len() * 8
    }

    /// MTTKRP for this CSF's root mode.
    ///
    /// Allocating wrapper over [`Csf::mttkrp_into`].
    pub fn mttkrp(&self, factors: &[Mat]) -> Mat {
        let mut out = Mat::zeros(self.shape[self.root_mode()], factors[self.root_mode()].cols());
        let mut ws = MttkrpWorkspace::new();
        self.mttkrp_into(factors, &mut out, &mut ws);
        out
    }

    /// MTTKRP for this CSF's root mode into a caller-owned output.
    ///
    /// Runs the construction-time fiber-binned [`RootSchedule`]: short-fiber
    /// runs compute one piece row per root node, heavy-fiber segments
    /// compute private partial rows, and a fixed-order copy-out adds every
    /// piece into the output — ascending root node, segments in order. The
    /// same schedule executes serially or via work-stealing `join`
    /// bisection (items are disjoint buffer slices), so serial and parallel
    /// runs are bitwise-identical. Piece buffer and per-item recursion
    /// stacks come from the workspace — steady-state calls perform no heap
    /// allocation. Within a subtree the kernel runs the classic CSF upward
    /// accumulation: leaf rows are scaled by values, then
    /// Hadamard-multiplied by each level's factor row on the way up, all
    /// through the lane-dispatched `simd` primitives.
    ///
    /// # Panics
    /// Panics if `factors` or `out` do not match the tensor's modes.
    pub fn mttkrp_into(&self, factors: &[Mat], out: &mut Mat, ws: &mut MttkrpWorkspace) {
        let _span = Span::enter_mode("mttkrp_csf", self.root_mode());
        assert_eq!(factors.len(), self.nmodes(), "one factor per mode");
        let rank = factors[self.root_mode()].cols();
        let rows = self.shape[self.root_mode()];
        assert_eq!((out.rows(), out.cols()), (rows, rank), "output must be I_root x R");
        let nroot = self.level_size(0);
        let nmodes = self.nmodes();
        out.as_mut_slice().fill(0.0);

        let sched = &self.schedule;
        let stack_len = nmodes * rank;
        let (buf, stacks) =
            ws.flat_and_stacks(sched.piece_rows() * rank, sched.items.len(), nmodes, rank);
        let parallel = self.nnz() >= tuning::csf_nnz_cutoff();
        self.run_schedule(&sched.items, factors, buf, stacks, rank, stack_len, parallel);

        for n in 0..nroot {
            let target = out.row_mut(self.levels[0].fids[n] as usize);
            for piece in sched.offsets[n]..sched.offsets[n + 1] {
                simd::add_assign(target, &buf[piece * rank..(piece + 1) * rank]);
            }
        }
    }

    /// Executes a slice of schedule items against their (disjoint) piece
    /// rows. Parallel runs bisect over items with `rayon::join` — no
    /// per-task heap allocation, work-stealing granularity of one item
    /// (roughly `csf_heavy_fiber_cutoff` nonzeros).
    #[allow(clippy::too_many_arguments)]
    fn run_schedule(
        &self,
        items: &[CsfTask],
        factors: &[Mat],
        buf: &mut [f64],
        stacks: &mut [f64],
        rank: usize,
        stack_len: usize,
        parallel: bool,
    ) {
        if items.len() <= 1 {
            if let Some(task) = items.first() {
                self.exec_task(task, factors, buf, &mut stacks[..stack_len], rank);
            }
            return;
        }
        let mid = items.len() / 2;
        let left_rows: usize = items[..mid].iter().map(CsfTask::rows).sum();
        let (bl, br) = buf.split_at_mut(left_rows * rank);
        let (sl, sr) = stacks.split_at_mut(mid * stack_len);
        if parallel {
            rayon::join(
                || self.run_schedule(&items[..mid], factors, bl, sl, rank, stack_len, true),
                || self.run_schedule(&items[mid..], factors, br, sr, rank, stack_len, true),
            );
        } else {
            self.run_schedule(&items[..mid], factors, bl, sl, rank, stack_len, false);
            self.run_schedule(&items[mid..], factors, br, sr, rank, stack_len, false);
        }
    }

    /// Runs one schedule item into its piece rows (pre-zeroed by the
    /// workspace).
    fn exec_task(
        &self,
        task: &CsfTask,
        factors: &[Mat],
        buf: &mut [f64],
        stack: &mut [f64],
        rank: usize,
    ) {
        match *task {
            CsfTask::Nodes { start, end } => {
                for (local, n) in (start..end).enumerate() {
                    let acc = &mut buf[local * rank..(local + 1) * rank];
                    self.accumulate_subtree(0, n, factors, acc, stack);
                }
            }
            CsfTask::Segment { node, clo, chi } => {
                debug_assert_eq!(self.levels[0].ptr[node].max(clo), clo);
                self.accumulate_children(1, clo, chi, factors, &mut buf[..rank], stack);
            }
        }
    }

    /// Adds the accumulated vector of node `node` at `level` into `acc`.
    /// For the root level the result excludes the root factor (that is the
    /// matrix being solved for). `stack` supplies one `R`-vector of scratch
    /// per tree level below `level`.
    fn accumulate_subtree(
        &self,
        level: usize,
        node: usize,
        factors: &[Mat],
        acc: &mut [f64],
        stack: &mut [f64],
    ) {
        if level == self.nmodes() - 1 {
            // Leaf: value times the leaf mode's factor row.
            let mode = self.mode_order[level];
            let frow = factors[mode].row(self.levels[level].fids[node] as usize);
            simd::axpy(acc, frow, self.values[node]);
            return;
        }
        let lo = self.levels[level].ptr[node];
        let hi = self.levels[level].ptr[node + 1];
        self.accumulate_children(level + 1, lo, hi, factors, acc, stack);
    }

    /// Adds the contributions of nodes `lo..hi` at `level` (≥ 1) into
    /// `acc`: each node's factor row Hadamard its subtree-below sum; leaf
    /// nodes contribute `value * factor_row`. This is the shared body of
    /// whole-subtree accumulation and heavy-fiber segments (a segment is a
    /// sub-range of a root node's children).
    fn accumulate_children(
        &self,
        level: usize,
        lo: usize,
        hi: usize,
        factors: &[Mat],
        acc: &mut [f64],
        stack: &mut [f64],
    ) {
        let rank = acc.len();
        let mode = self.mode_order[level];
        if level == self.nmodes() - 1 {
            // Leaf children; accumulate them directly.
            for child in lo..hi {
                let frow = factors[mode].row(self.levels[level].fids[child] as usize);
                simd::axpy(acc, frow, self.values[child]);
            }
        } else {
            let (scratch, rest) = stack.split_at_mut(rank);
            for child in lo..hi {
                scratch.fill(0.0);
                let clo = self.levels[level].ptr[child];
                let chi = self.levels[level].ptr[child + 1];
                self.accumulate_children(level + 1, clo, chi, factors, scratch, rest);
                let frow = factors[mode].row(self.levels[level].fids[child] as usize);
                simd::mac(acc, scratch, frow);
            }
        }
    }

    /// MTTKRP for an **arbitrary** target mode from this single tree —
    /// SPLATT's `ONEMODE` configuration, which trades the `N x` memory of
    /// one-tree-per-mode for scatter conflicts on non-root targets.
    ///
    /// For a target node at level `l`, the contribution to its output row
    /// is `above x below`: the Hadamard product of its ancestors' factor
    /// rows (levels above `l`, including the root's factor) times the
    /// upward-accumulated sum of its subtree (levels below `l`). Non-root
    /// targets can collide on output rows across subtrees, so parallel
    /// chunks accumulate into private buffers that are reduced at the end
    /// (the CPU strategy; the GPU equivalent uses atomics).
    ///
    /// # Panics
    /// Panics if `factors` does not match the tensor's modes.
    pub fn mttkrp_any(&self, factors: &[Mat], target_mode: usize) -> Mat {
        let mut out = Mat::zeros(self.shape[target_mode], factors[target_mode].cols());
        let mut ws = MttkrpWorkspace::new();
        self.mttkrp_any_into(factors, target_mode, &mut out, &mut ws);
        out
    }

    /// [`Csf::mttkrp_any`] into a caller-owned output: per-chunk privatized
    /// `I x R` buffers from the workspace are combined with a pairwise
    /// parallel tree reduction, and all recursion scratch (`above`/`below`
    /// chains) comes from a preallocated per-chunk stack, so steady-state
    /// calls perform no heap allocation.
    ///
    /// # Panics
    /// Panics if `factors`, `target_mode`, or `out` do not match the tensor.
    pub fn mttkrp_any_into(
        &self,
        factors: &[Mat],
        target_mode: usize,
        out: &mut Mat,
        ws: &mut MttkrpWorkspace,
    ) {
        let _span = Span::enter_mode("mttkrp_csf_any", target_mode);
        assert_eq!(factors.len(), self.nmodes(), "one factor per mode");
        assert!(target_mode < self.nmodes(), "target mode out of range");
        if target_mode == self.root_mode() {
            return self.mttkrp_into(factors, out, ws);
        }
        let target_level =
            self.mode_order.iter().position(|&m| m == target_mode).expect("mode present in order");
        let rank = factors[target_mode].cols();
        let rows = self.shape[target_mode];
        assert_eq!((out.rows(), out.cols()), (rows, rank), "output must be I_target x R");
        let nroot = self.level_size(0);
        // Stack budget per chunk: an `above` chain down to the target level,
        // plus `below` and the subtree recursion beneath it.
        let depth = 2 * self.nmodes() + 2;
        out.as_mut_slice().fill(0.0);

        let process = |local: &mut [f64],
                       above: &mut [f64],
                       stack: &mut [f64],
                       range: std::ops::Range<usize>| {
            for root in range {
                above.fill(1.0);
                // The root's own factor row is an "ancestor" for any deeper
                // target level.
                let root_row = factors[self.root_mode()].row(self.levels[0].fids[root] as usize);
                simd::mul_assign(above, root_row);
                self.scatter_target(0, root, target_level, factors, above, local, stack);
            }
        };

        if nroot >= 64 && self.nnz() >= tuning::csf_nnz_cutoff() {
            let nchunks = rayon::current_num_threads().max(1);
            // nnz-balanced contiguous root ranges: chunk `t` starts at the
            // first root whose first nonzero reaches the t-th equal share
            // of nnz. Replaces uniform root-count chunks, which let one
            // long-fiber chunk serialize the whole walk.
            let starts = &self.schedule.root_starts;
            let bound = |t: usize| starts.partition_point(|&s| s < t * self.nnz() / nchunks);
            let (bufs, above_rows, stacks) = ws.chunk_scratch(nchunks, rows * rank, depth, rank);
            bufs.par_iter_mut()
                .zip(above_rows.par_chunks_mut(rank.max(1)))
                .zip(stacks.par_chunks_mut((depth * rank).max(1)))
                .enumerate()
                .for_each(|(t, ((local, above), stack))| {
                    process(&mut local[..rows * rank], above, stack, bound(t)..bound(t + 1));
                });
            ws.partials.reduce_into(nchunks, rows * rank, out.as_mut_slice());
        } else {
            let (_, above, stack) = ws.chunk_scratch(1, 0, depth, rank);
            process(out.as_mut_slice(), above, stack, 0..nroot);
        }
    }

    /// Recursive helper for [`Csf::mttkrp_any`]: walks from `level`/`node`
    /// toward `target_level`, carrying the Hadamard product of ancestor
    /// factor rows in `above`; at the target level it computes the
    /// upward-accumulated `below` sum of each child subtree and scatters
    /// `above * below` into the output. `stack` supplies one `R`-vector of
    /// scratch per recursion level.
    #[allow(clippy::too_many_arguments)]
    fn scatter_target(
        &self,
        level: usize,
        node: usize,
        target_level: usize,
        factors: &[Mat],
        above: &[f64],
        out: &mut [f64],
        stack: &mut [f64],
    ) {
        let rank = above.len();
        let lo = self.levels[level].ptr[node];
        let hi = self.levels[level].ptr[node + 1];
        if level + 1 == target_level {
            // Children are target-level nodes: compute each child's below
            // sum and scatter.
            let (below, rest) = stack.split_at_mut(rank);
            for child in lo..hi {
                below.fill(0.0);
                if target_level == self.nmodes() - 1 {
                    // Target nodes are leaves: below = value.
                    below.iter_mut().for_each(|b| *b = self.values[child]);
                } else {
                    self.accumulate_subtree(target_level, child, factors, below, rest);
                }
                let i = self.levels[target_level].fids[child] as usize;
                simd::mac(&mut out[i * rank..(i + 1) * rank], above, below);
            }
        } else {
            // Descend, multiplying this child level's factor rows into
            // `above`.
            let mode = self.mode_order[level + 1];
            let (next_above, rest) = stack.split_at_mut(rank);
            for child in lo..hi {
                let frow = factors[mode].row(self.levels[level + 1].fids[child] as usize);
                next_above.copy_from_slice(above);
                simd::mul_assign(next_above, frow);
                self.scatter_target(level + 1, child, target_level, factors, next_above, out, rest);
            }
        }
    }

    /// Traffic estimate for a [`Csf::mttkrp_any`] call targeting
    /// `target_mode`: root targets cost [`Csf::mttkrp_traffic`]; non-root
    /// targets additionally pay scatter conflicts on the output
    /// (read-modify-write, like BLCO's atomics) and re-walk the tree with
    /// the `above` products.
    pub fn mttkrp_any_traffic(&self, target_mode: usize, rank: usize) -> TrafficEstimate {
        let mut t = self.mttkrp_traffic(rank);
        if target_mode != self.root_mode() {
            let out_elems = (self.shape[target_mode] * rank) as f64;
            t.bytes_written = 2.0 * out_elems * 8.0; // conflicting accumulation
            t.bytes_read += out_elems * 8.0;
        }
        t
    }

    /// Traffic estimate for one MTTKRP at `rank`.
    ///
    /// CSF's fiber reuse is what makes it the CPU state of the art: each
    /// tree node's factor row is gathered **once** and its partial Hadamard
    /// product is shared by the whole subtree, so gather traffic is
    /// proportional to the node count per level, not `nnz x (N-1)`.
    pub fn mttkrp_traffic(&self, rank: usize) -> TrafficEstimate {
        let r = rank as f64;
        let idx_entries: usize = self.levels.iter().map(|l| l.fids.len()).sum();
        let ptr_entries: usize = self.levels.iter().map(|l| l.ptr.len()).sum();
        // Factor-row gathers: one row per non-root tree node.
        let gather_rows: usize = self.levels[1..].iter().map(|l| l.fids.len()).sum();
        // Flops: R multiply + R accumulate per non-root node.
        let node_total: usize = self.levels.iter().map(|l| l.fids.len()).sum();
        let out_elems = (self.shape[self.root_mode()] * rank) as f64;

        let gather_bytes: f64 = self
            .shape
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != self.root_mode())
            .map(|(_, &d)| (d * rank * 8) as f64)
            .sum();

        TrafficEstimate {
            flops: 2.0 * node_total as f64 * r,
            bytes_read: (idx_entries * 4 + ptr_entries * 8) as f64
                + self.nnz() as f64 * 8.0
                + out_elems * 8.0,
            bytes_written: out_elems * 8.0,
            gather_bytes: gather_rows as f64 * r * 8.0,
            parallel_work: self.level_size(0) as f64,
            working_set: gather_bytes,
        }
    }
}

impl cstf_telemetry::MemoryFootprint for Csf {
    fn footprint(&self) -> cstf_telemetry::Footprint {
        use cstf_telemetry::vec_heap_bytes;
        let mut fp = cstf_telemetry::Footprint::new();
        fp.add("mode_order", vec_heap_bytes(&self.mode_order));
        fp.add("shape", vec_heap_bytes(&self.shape));
        fp.add("levels.spine", (self.levels.capacity() * std::mem::size_of::<CsfLevel>()) as u64);
        for level in &self.levels {
            fp.add("levels.fids", vec_heap_bytes(&level.fids));
            fp.add("levels.ptr", vec_heap_bytes(&level.ptr));
        }
        fp.add("values", vec_heap_bytes(&self.values));
        fp.add("schedule.items", vec_heap_bytes(&self.schedule.items));
        fp.add("schedule.offsets", vec_heap_bytes(&self.schedule.offsets));
        fp.add("schedule.root_starts", vec_heap_bytes(&self.schedule.root_starts));
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::{assert_mttkrp_close, mttkrp_ref};

    fn toy() -> SparseTensor {
        SparseTensor::new(
            vec![3, 4, 2],
            vec![vec![0, 0, 1, 2, 2], vec![1, 1, 0, 3, 3], vec![0, 1, 1, 0, 1]],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
    }

    fn factors_for(shape: &[usize], rank: usize) -> Vec<Mat> {
        shape
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                Mat::from_fn(d, rank, |i, j| ((i * 5 + j * 2 + m) % 7) as f64 * 0.3 - 0.9)
            })
            .collect()
    }

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut idx = vec![Vec::with_capacity(nnz); shape.len()];
        let mut vals = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            for (m, &d) in shape.iter().enumerate() {
                idx[m].push(next() % d as u32);
            }
            vals.push(f64::from(next() % 200) / 50.0 - 2.0);
        }
        let mut t = SparseTensor::new(shape.to_vec(), idx, vals);
        t.sum_duplicates();
        t
    }

    #[test]
    fn footprint_matches_capacity_sum() {
        use cstf_telemetry::MemoryFootprint;
        let csf = Csf::from_coo(&random_tensor(&[14, 9, 6], 120, 3), 0);
        let vb = |c: usize, sz: usize| (c * sz) as u64;
        let mut expected = vb(csf.mode_order.capacity(), std::mem::size_of::<usize>())
            + vb(csf.shape.capacity(), std::mem::size_of::<usize>())
            + vb(csf.levels.capacity(), std::mem::size_of::<CsfLevel>())
            + vb(csf.values.capacity(), std::mem::size_of::<f64>())
            + vb(csf.schedule.items.capacity(), std::mem::size_of::<CsfTask>())
            + vb(csf.schedule.offsets.capacity(), std::mem::size_of::<usize>())
            + vb(csf.schedule.root_starts.capacity(), std::mem::size_of::<usize>());
        for level in &csf.levels {
            expected += vb(level.fids.capacity(), std::mem::size_of::<u32>())
                + vb(level.ptr.capacity(), std::mem::size_of::<usize>());
        }
        assert_eq!(csf.heap_bytes(), expected);
        assert!(csf.footprint().get("values") > 0);
    }

    #[test]
    fn tree_structure_compresses_prefixes() {
        let csf = Csf::from_coo(&toy(), 0);
        // Root level: distinct mode-0 indices {0, 1, 2} -> 3 nodes.
        assert_eq!(csf.level_size(0), 3);
        // Level 1: distinct (i0, i1) pairs: (0,1), (1,0), (2,3) -> 3 nodes.
        assert_eq!(csf.level_size(1), 3);
        // Leaves: one per nonzero.
        assert_eq!(csf.level_size(2), 5);
        assert_eq!(csf.nnz(), 5);
    }

    #[test]
    fn csf_storage_is_smaller_than_coo_for_clustered_tensors() {
        let x = toy();
        let coo_bytes = x.nnz() * (3 * 4 + 8);
        let csf = Csf::from_coo(&x, 0);
        assert!(csf.storage_bytes() < coo_bytes + 64); // small example; allow ptr overhead
    }

    #[test]
    fn mttkrp_matches_reference_toy_all_roots() {
        let x = toy();
        let f = factors_for(x.shape(), 3);
        for mode in 0..3 {
            let csf = Csf::from_coo(&x, mode);
            assert_mttkrp_close(&csf.mttkrp(&f), &mttkrp_ref(&x, &f, mode), 1e-12);
        }
    }

    #[test]
    fn mttkrp_matches_reference_random_3mode() {
        let x = random_tensor(&[30, 40, 20], 9_000, 3);
        let f = factors_for(x.shape(), 8);
        for mode in 0..3 {
            let csf = Csf::from_coo(&x, mode);
            assert_mttkrp_close(&csf.mttkrp(&f), &mttkrp_ref(&x, &f, mode), 1e-10);
        }
    }

    #[test]
    fn mttkrp_matches_reference_random_4mode() {
        let x = random_tensor(&[15, 10, 12, 8], 12_000, 11);
        let f = factors_for(x.shape(), 4);
        for mode in 0..4 {
            let csf = Csf::from_coo(&x, mode);
            assert_mttkrp_close(&csf.mttkrp(&f), &mttkrp_ref(&x, &f, mode), 1e-10);
        }
    }

    #[test]
    fn onemode_mttkrp_matches_reference_for_every_target() {
        // SPLATT ONEMODE: one tree, any target mode.
        let x = random_tensor(&[25, 30, 20], 8_000, 21);
        let f = factors_for(x.shape(), 6);
        let csf = Csf::from_coo(&x, 0); // single tree rooted at mode 0
        for target in 0..3 {
            assert_mttkrp_close(&csf.mttkrp_any(&f, target), &mttkrp_ref(&x, &f, target), 1e-9);
        }
    }

    #[test]
    fn onemode_mttkrp_4mode_all_targets_all_roots() {
        let x = random_tensor(&[12, 10, 8, 6], 4_000, 22);
        let f = factors_for(x.shape(), 3);
        for root in 0..4 {
            let csf = Csf::from_coo(&x, root);
            for target in 0..4 {
                assert_mttkrp_close(&csf.mttkrp_any(&f, target), &mttkrp_ref(&x, &f, target), 1e-9);
            }
        }
    }

    #[test]
    fn onemode_storage_is_a_fraction_of_allmode() {
        let x = random_tensor(&[40, 40, 40], 20_000, 23);
        let one = Csf::from_coo(&x, 0).storage_bytes();
        let all: usize = (0..3).map(|m| Csf::from_coo(&x, m).storage_bytes()).sum();
        assert!(
            (one as f64) < 0.5 * all as f64,
            "one tree ({one} B) should cost well under all trees ({all} B)"
        );
    }

    #[test]
    fn duplicate_root_rows_accumulate() {
        // Two fibers under one root index must sum into one output row.
        let x = SparseTensor::new(
            vec![1, 2, 2],
            vec![vec![0, 0], vec![0, 1], vec![1, 0]],
            vec![2.0, 3.0],
        );
        let f = factors_for(&[1, 2, 2], 2);
        let csf = Csf::from_coo(&x, 0);
        assert_mttkrp_close(&csf.mttkrp(&f), &mttkrp_ref(&x, &f, 0), 1e-13);
    }

    #[test]
    fn segmented_schedule_partitions_every_root() {
        // Cutoff 4 on a skewed tensor forces heavy-fiber segmentation.
        let x = random_tensor(&[4, 50, 30], 2_000, 7);
        let csf = Csf::from_coo_with_cutoff(&x, 0, 4);
        let sched = &csf.schedule;
        let nroot = csf.level_size(0);
        assert_eq!(sched.offsets.len(), nroot + 1);
        assert_eq!(sched.root_starts.len(), nroot + 1);
        assert_eq!(*sched.root_starts.last().unwrap(), csf.nnz());
        // Offsets are strictly increasing: every root owns >= 1 piece row.
        for n in 0..nroot {
            assert!(sched.offsets[n] < sched.offsets[n + 1]);
        }
        // Item rows partition the piece buffer exactly.
        let rows: usize = sched.items.iter().map(CsfTask::rows).sum();
        assert_eq!(rows, sched.piece_rows());
        // With ~500 nnz per root and cutoff 4, heavy roots must be split.
        assert!(
            sched.items.iter().any(|t| matches!(t, CsfTask::Segment { .. })),
            "long fibers should be segmented"
        );
        assert!(sched.piece_rows() > nroot, "heavy roots own multiple piece rows");
    }

    #[test]
    fn segmented_schedule_matches_reference_all_roots() {
        let x = random_tensor(&[4, 50, 30], 2_000, 8);
        let f = factors_for(x.shape(), 5);
        for mode in 0..3 {
            let csf = Csf::from_coo_with_cutoff(&x, mode, 4);
            assert_mttkrp_close(&csf.mttkrp(&f), &mttkrp_ref(&x, &f, mode), 1e-10);
        }
    }

    #[test]
    fn segmented_serial_and_parallel_runs_are_bitwise_identical() {
        // DESIGN §11: the schedule sums in fixed per-piece order, so the
        // work-stealing bisection cannot perturb a single bit.
        let x = random_tensor(&[6, 40, 25], 3_000, 9);
        let rank = 7;
        let f = factors_for(x.shape(), rank);
        let csf = Csf::from_coo_with_cutoff(&x, 0, 4);
        let sched = &csf.schedule;
        let stack_len = csf.nmodes() * rank;
        let run = |parallel: bool| {
            let mut buf = vec![0.0; sched.piece_rows() * rank];
            let mut stacks = vec![0.0; sched.items.len() * stack_len];
            csf.run_schedule(&sched.items, &f, &mut buf, &mut stacks, rank, stack_len, parallel);
            buf
        };
        let serial = run(false);
        let parallel = run(true);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn schedule_with_large_cutoff_coalesces_light_runs() {
        let x = random_tensor(&[20, 10, 8], 500, 10);
        let csf = Csf::from_coo_with_cutoff(&x, 0, usize::MAX);
        let sched = &csf.schedule;
        assert!(sched.items.iter().all(|t| matches!(t, CsfTask::Nodes { .. })));
        // All-light schedule: exactly one piece row per root node.
        assert_eq!(sched.piece_rows(), csf.level_size(0));
    }

    #[test]
    fn matrix_csf_schedule_never_segments() {
        // nmodes < 2 per-root subtrees are leaves; cutoff must not split.
        let x = SparseTensor::new(vec![5], vec![vec![0, 2, 2, 4]], vec![1.0, 2.0, 3.0, 4.0]);
        let csf = Csf::from_coo_with_cutoff(&x, 0, 1);
        assert!(csf.schedule.items.iter().all(|t| matches!(t, CsfTask::Nodes { .. })));
    }

    #[test]
    fn traffic_reflects_index_compression() {
        let x = random_tensor(&[10, 10, 10], 5_000, 5);
        let csf = Csf::from_coo(&x, 0);
        let t = csf.mttkrp_traffic(16);
        // COO would read 12 index bytes/nnz; CSF reads fewer than 3 modes'
        // worth because upper levels are compressed.
        let coo = coordinate_mttkrp_traffic(csf.nnz(), &[10, 10, 10], 0, 16, 12.0);
        assert!(t.bytes_read <= coo.bytes_read);
    }

    use crate::traffic::coordinate_mttkrp_traffic;
}
