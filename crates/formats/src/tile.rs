//! Tile planning for out-of-core (memory-budgeted) MTTKRP.
//!
//! A tile is the out-of-core analogue of a shard: for the mode-`m` update,
//! tile `t` holds every nonzero whose mode-`m` index falls in its
//! contiguous, nnz-balanced row range — "sharding in time" on a single
//! device instead of sharding in space across a group. Because each format
//! kernel on such a row-restricted sub-tensor writes exactly the global
//! MTTKRP rows the tile owns (the owner-computes property proven for
//! shards in DESIGN.md §11), streaming the tiles sequentially and
//! committing each tile's owned output rows reassembles the in-core MTTKRP
//! panel **bitwise**, in any tile order.
//!
//! The byte-level side of the planner (how many tiles a
//! `--memory-budget` admits) lives in `cstf_device::suggested_tile_count`;
//! this module owns the structural side: which rows land in which tile.

use std::ops::Range;

use cstf_tensor::{SparseTensor, TnsScan};

use crate::shard::nnz_balanced_ranges;

/// A complete tiling of a tensor: for every mode, the nnz-balanced row
/// ranges its MTTKRP output is partitioned into.
#[derive(Debug, Clone)]
pub struct TilePlan {
    /// Tile count `K` (every mode has exactly `K` ranges; trailing ranges
    /// may be empty).
    pub tiles: usize,
    /// `mode_ranges[m][t]` = the mode-`m` output rows tile `t` owns.
    pub mode_ranges: Vec<Vec<Range<usize>>>,
}

impl TilePlan {
    /// Plans `tiles` nnz-balanced tiles per mode from an in-core tensor.
    pub fn build(x: &SparseTensor, tiles: usize) -> Self {
        let tiles = tiles.max(1);
        let mode_ranges = (0..x.nmodes()).map(|m| nnz_balanced_ranges(x, m, tiles)).collect();
        Self { tiles, mode_ranges }
    }

    /// Plans from a streaming scan's histograms without the tensor in
    /// memory. Produces exactly the ranges [`TilePlan::build`] would on
    /// the in-core parse of the same file (both delegate to
    /// [`cstf_tensor::balanced_ranges_from_counts`]).
    pub fn from_scan(scan: &TnsScan, tiles: usize) -> Self {
        let tiles = tiles.max(1);
        let mode_ranges = (0..scan.nmodes()).map(|m| scan.tile_ranges(m, tiles)).collect();
        Self { tiles, mode_ranges }
    }

    /// Number of modes planned.
    pub fn nmodes(&self) -> usize {
        self.mode_ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstf_tensor::{read_tns, scan_tns, write_tns};

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut idx = vec![Vec::with_capacity(nnz); shape.len()];
        let mut vals = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            for (m, &d) in shape.iter().enumerate() {
                idx[m].push(next() % d as u32);
            }
            vals.push(f64::from(next() % 50) * 0.1 + 0.1);
        }
        let mut t = SparseTensor::new(shape.to_vec(), idx, vals);
        t.sum_duplicates();
        t
    }

    #[test]
    fn plan_covers_every_mode_with_exact_tile_count() {
        let x = random_tensor(&[19, 11, 7], 400, 1);
        for tiles in [1usize, 2, 3, 5, 40] {
            let plan = TilePlan::build(&x, tiles);
            assert_eq!(plan.tiles, tiles);
            assert_eq!(plan.nmodes(), 3);
            for (m, ranges) in plan.mode_ranges.iter().enumerate() {
                assert_eq!(ranges.len(), tiles);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, x.shape()[m]);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
                }
            }
        }
    }

    #[test]
    fn scan_plan_equals_in_core_plan() {
        // The invariant the out-of-core bitwise-equivalence rests on:
        // planning from the streaming scan of a written file gives the
        // same ranges as planning from the parsed tensor.
        let x = random_tensor(&[23, 9, 13], 500, 2);
        let mut buf = Vec::new();
        write_tns(&x, &mut buf).unwrap();
        let parsed = read_tns(buf.as_slice()).unwrap();
        let scan = scan_tns(buf.as_slice()).unwrap();
        for tiles in [1usize, 2, 3, 5] {
            let a = TilePlan::build(&parsed, tiles);
            let b = TilePlan::from_scan(&scan, tiles);
            assert_eq!(a.mode_ranges, b.mode_ranges);
        }
    }
}
