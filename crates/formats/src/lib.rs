//! # cstf-formats
//!
//! Compressed sparse tensor formats and their parallel MTTKRP kernels:
//!
//! * [`csf::Csf`] — SPLATT's Compressed Sparse Fiber (the paper's CPU
//!   baseline, §5.3), one tree per target mode, conflict-free root-parallel
//!   MTTKRP;
//! * [`alto::Alto`] — Adaptive Linearized Tensor Order (the modified-PLANC
//!   CPU path, §4), bit-interleaved indices, privatized accumulation;
//! * [`blco::Blco`] — Blocked Linearized COOrdinates (the GPU path, §2.3),
//!   mode-major 64-bit blocked indices, atomic accumulation mirroring
//!   CUDA `atomicAdd`;
//! * [`hicoo::HiCoo`] — Hierarchical COO (Li et al., SC '18 lineage),
//!   Z-blocked bases with `u8` in-block offsets;
//! * [`mttkrp`] — serial reference and parallel COO baselines all formats
//!   are verified against.
//!
//! Every format also reports an exact traffic estimate
//! ([`traffic::TrafficEstimate`]) that the `cstf-device` roofline converts
//! into modeled kernel time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alto;
pub mod blco;
pub mod csf;
pub mod hicoo;
pub mod mttkrp;
pub mod shard;
pub mod tile;
pub mod traffic;
pub mod workspace;

pub use alto::Alto;
pub use blco::Blco;
pub use csf::Csf;
pub use hicoo::HiCoo;
pub use mttkrp::{mttkrp_coo_parallel, mttkrp_coo_parallel_into, mttkrp_ref, mttkrp_ref_into};
pub use shard::{extract_mode_rows, nnz_balanced_ranges};
pub use tile::TilePlan;
pub use traffic::{coordinate_mttkrp_traffic, TrafficEstimate};
pub use workspace::MttkrpWorkspace;
