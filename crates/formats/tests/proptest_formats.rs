//! Property-based tests on the compressed formats: structural invariants
//! and MTTKRP equivalence under arbitrary sparse tensors.

use cstf_formats::{
    mttkrp_coo_parallel, mttkrp_coo_parallel_into, mttkrp_ref, mttkrp_ref_into, Alto, Blco, Csf,
    HiCoo, MttkrpWorkspace,
};
use cstf_linalg::Mat;
use cstf_tensor::SparseTensor;
use proptest::prelude::*;

/// Arbitrary small sparse tensor (3 or 4 modes, distinct coordinates).
fn tensor_strategy() -> impl Strategy<Value = SparseTensor> {
    (2usize..4, 1usize..100, any::<u64>()).prop_flat_map(|(extra_modes, nnz, seed)| {
        proptest::collection::vec(2usize..16, 2 + extra_modes).prop_map(move |shape| {
            let mut state = seed | 1;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u32
            };
            let mut seen = std::collections::HashSet::new();
            let mut idx = vec![Vec::new(); shape.len()];
            let mut vals = Vec::new();
            for _ in 0..nnz {
                let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
                if seen.insert(c.clone()) {
                    for (m, &ci) in c.iter().enumerate() {
                        idx[m].push(ci);
                    }
                    vals.push(f64::from(next() % 64) * 0.25 + 0.125);
                }
            }
            SparseTensor::new(shape, idx, vals)
        })
    })
}

/// Arbitrary small sparse tensor with exactly 3 or 4 modes.
fn tensor_strategy_34() -> impl Strategy<Value = SparseTensor> {
    (3usize..5, 1usize..100, any::<u64>()).prop_flat_map(|(nmodes, nnz, seed)| {
        proptest::collection::vec(2usize..16, nmodes).prop_map(move |shape| {
            let mut state = seed | 1;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u32
            };
            let mut seen = std::collections::HashSet::new();
            let mut idx = vec![Vec::new(); shape.len()];
            let mut vals = Vec::new();
            for _ in 0..nnz {
                let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
                if seen.insert(c.clone()) {
                    for (m, &ci) in c.iter().enumerate() {
                        idx[m].push(ci);
                    }
                    vals.push(f64::from(next() % 64) * 0.25 + 0.125);
                }
            }
            SparseTensor::new(shape, idx, vals)
        })
    })
}

fn factors(shape: &[usize], rank: usize, seed: u64) -> Vec<Mat> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / u32::MAX as f64) - 0.3
    };
    shape.iter().map(|&d| Mat::from_fn(d, rank, |_, _| next())).collect()
}

fn close(a: &Mat, b: &Mat) -> bool {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(&x, &y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every format's MTTKRP equals the serial reference on every mode.
    #[test]
    fn all_formats_match_reference(x in tensor_strategy(), seed in any::<u64>()) {
        let f = factors(x.shape(), 3, seed);
        let alto = Alto::from_coo(&x);
        let blco = Blco::from_coo(&x);
        for mode in 0..x.nmodes() {
            let reference = mttkrp_ref(&x, &f, mode);
            prop_assert!(close(&Csf::from_coo(&x, mode).mttkrp(&f), &reference), "csf mode {mode}");
            prop_assert!(close(&alto.mttkrp(&f, mode), &reference), "alto mode {mode}");
            prop_assert!(close(&blco.mttkrp(&f, mode), &reference), "blco mode {mode}");
            prop_assert!(close(&mttkrp_coo_parallel(&x, &f, mode), &reference), "coo mode {mode}");
        }
    }

    /// ALTO linearization is a bijection on the stored coordinates.
    #[test]
    fn alto_roundtrips_all_coordinates(x in tensor_strategy()) {
        let alto = Alto::from_coo(&x);
        prop_assert_eq!(alto.nnz(), x.nnz());
        let mut value_sum = 0.0;
        for k in 0..alto.nnz() {
            let c = alto.coord(k);
            for (m, &ci) in c.iter().enumerate() {
                prop_assert!((ci as usize) < x.shape()[m]);
            }
            value_sum += alto.value(k);
        }
        let want: f64 = x.values().iter().sum();
        prop_assert!((value_sum - want).abs() < 1e-9 * (1.0 + want.abs()));
    }

    /// BLCO preserves the nonzero count and decodes in-range coordinates.
    #[test]
    fn blco_structure_is_sound(x in tensor_strategy()) {
        let blco = Blco::from_coo(&x);
        prop_assert_eq!(blco.nnz(), x.nnz());
        prop_assert!(blco.nblocks() >= 1);
        for k in 0..blco.nnz() {
            let c = blco.coord(k);
            for (m, &ci) in c.iter().enumerate() {
                prop_assert!((ci as usize) < x.shape()[m]);
            }
        }
    }

    /// CSF's leaf level always has exactly nnz nodes and level sizes are
    /// non-increasing going up the tree.
    #[test]
    fn csf_level_sizes_are_monotone(x in tensor_strategy(), root in 0usize..3) {
        let root = root % x.nmodes();
        let csf = Csf::from_coo(&x, root);
        let n = x.nmodes();
        prop_assert_eq!(csf.level_size(n - 1), x.nnz());
        for l in 1..n {
            prop_assert!(csf.level_size(l - 1) <= csf.level_size(l),
                "level {l} shrank going down");
        }
    }

    /// The workspace-based `*_into` kernels match the serial reference for
    /// every format on random 3- and 4-mode tensors, with ONE shared
    /// workspace reused across all formats and modes (the `Auntf` usage
    /// pattern: grow-only scratch, no per-call state).
    #[test]
    fn mttkrp_into_matches_reference_for_all_formats(
        x in tensor_strategy_34(),
        seed in any::<u64>(),
    ) {
        let rank = 3;
        let f = factors(x.shape(), rank, seed);
        let alto = Alto::from_coo(&x);
        let blco = Blco::from_coo(&x);
        let hicoo = HiCoo::from_coo(&x);
        let csf0 = Csf::from_coo(&x, 0);
        let mut ws = MttkrpWorkspace::new();
        for mode in 0..x.nmodes() {
            let reference = mttkrp_ref(&x, &f, mode);
            let mut out = Mat::zeros(x.dim(mode), rank);

            mttkrp_ref_into(&x, &f, mode, &mut out, &mut ws);
            prop_assert_eq!(out.as_slice(), reference.as_slice(), "ref_into mode {}", mode);

            mttkrp_coo_parallel_into(&x, &f, mode, &mut out, &mut ws);
            prop_assert!(close(&out, &reference), "coo_into mode {mode}");

            Csf::from_coo(&x, mode).mttkrp_into(&f, &mut out, &mut ws);
            prop_assert!(close(&out, &reference), "csf root-mode into mode {mode}");

            csf0.mttkrp_any_into(&f, mode, &mut out, &mut ws);
            prop_assert!(close(&out, &reference), "csf any-mode into mode {mode}");

            alto.mttkrp_into(&f, mode, &mut out, &mut ws);
            prop_assert!(close(&out, &reference), "alto_into mode {mode}");
            let wrapper = alto.mttkrp(&f, mode);
            prop_assert_eq!(
                out.as_slice(),
                wrapper.as_slice(),
                "alto wrapper vs into mode {}",
                mode
            );

            blco.mttkrp_into(&f, mode, &mut out, &mut ws);
            prop_assert!(close(&out, &reference), "blco_into mode {mode}");

            hicoo.mttkrp_into(&f, mode, &mut out, &mut ws);
            prop_assert!(close(&out, &reference), "hicoo_into mode {mode}");
        }
    }

    /// MTTKRP is linear in the tensor values: scaling X scales the output.
    #[test]
    fn mttkrp_is_linear_in_values(x in tensor_strategy(), alpha in 0.25f64..4.0, seed in any::<u64>()) {
        let f = factors(x.shape(), 2, seed);
        let base = mttkrp_ref(&x, &f, 0);
        let mut scaled = x.clone();
        for v in scaled.values_mut() {
            *v *= alpha;
        }
        let out = mttkrp_ref(&scaled, &f, 0);
        for i in 0..base.rows() {
            for j in 0..base.cols() {
                prop_assert!((out[(i, j)] - alpha * base[(i, j)]).abs() < 1e-9 * (1.0 + base[(i, j)].abs()));
            }
        }
    }
}
