//! Bridges one captured run ([`RunCapture`]) into the shared telemetry
//! data model: a metrics [`Registry`] (counters, gauges, per-launch time
//! histograms) and the per-phase [`PhaseSummary`] rows of `run.json`.
//!
//! Export happens once, after the run, from data the profiler already
//! collected — the hot path pays nothing for it.

use cstf_telemetry::metrics::NS_BUCKETS;
use cstf_telemetry::{alloc, PhaseSummary, Registry};

use crate::profiler::RunCapture;
use crate::spec::DeviceSpec;

/// Builds the metrics registry for one captured run.
///
/// Counters: total launches, flops, logical bytes, and process heap
/// allocations (meaningful when the binary installs
/// [`cstf_telemetry::alloc::CountingAlloc`]), plus per-kernel-key labeled
/// families (`cstf_kernel_launches_total{phase=,kernel=,mode=}` and
/// friends). Gauges: heap high-water bytes and the mean occupancy proxy
/// `min(parallel_work / saturation_elems, 1)` over retained records.
/// Histograms: per-launch modeled and measured nanoseconds in the shared
/// log-spaced buckets.
pub fn registry_from_capture(capture: &RunCapture, spec: &DeviceSpec) -> Registry {
    registry_from_captures(&[capture], spec)
}

/// Builds one metrics registry across several device captures (one per
/// device in a sharded run).
///
/// Unlabeled aggregates (`cstf_launches_total`, phase gauges, histograms)
/// sum over all captures, preserving the single-device export shape. The
/// per-kernel-key labeled families gain a `device` label when more than
/// one capture is exported, so per-device attribution survives in the
/// scrape (`device="0"`, `device="1"`, ...).
pub fn registry_from_captures(captures: &[&RunCapture], spec: &DeviceSpec) -> Registry {
    let registry = Registry::new();
    let multi_device = captures.len() > 1;

    let total_launches: usize = captures.iter().map(|c| c.total_launches()).sum();
    registry.counter_add(
        "cstf_launches_total",
        "Kernel launches recorded in this run",
        total_launches as f64,
    );
    let (flops, bytes) = captures
        .iter()
        .flat_map(|c| c.phases.iter())
        .fold((0.0, 0.0), |(f, b), (_, t)| (f + t.flops, b + t.bytes));
    registry.counter_add("cstf_flops_total", "Floating-point operations tallied", flops);
    registry.counter_add("cstf_bytes_total", "Logical bytes moved by kernels", bytes);
    registry.counter_add(
        "cstf_allocations_total",
        "Heap allocations since process start (counting allocator)",
        alloc::allocation_count() as f64,
    );
    let total_faults: usize = captures.iter().map(|c| c.faults.len()).sum();
    if total_faults > 0 {
        registry.counter_add(
            "cstf_faults_injected_total",
            "Device faults injected by the fault plan",
            total_faults as f64,
        );
        for kind in crate::fault::FaultKind::all() {
            let name = format!("cstf_fault_{}_total", kind.label());
            if multi_device {
                for (device, capture) in captures.iter().enumerate() {
                    let n = capture.faults.iter().filter(|f| f.kind == kind).count();
                    if n > 0 {
                        let device_label = device.to_string();
                        registry.counter_add_labeled(
                            &name,
                            "Injected device faults of one kind",
                            &[("device", &device_label)],
                            n as f64,
                        );
                    }
                }
            } else {
                let n: usize = captures
                    .iter()
                    .map(|c| c.faults.iter().filter(|f| f.kind == kind).count())
                    .sum();
                if n > 0 {
                    registry.counter_add(&name, "Injected device faults of one kind", n as f64);
                }
            }
        }
    }

    registry.gauge_set(
        "cstf_heap_high_water_bytes",
        "Peak live heap bytes (counting allocator)",
        alloc::peak_bytes() as f64,
    );
    for (region, peak) in alloc::region_peaks() {
        registry.gauge_set_labeled(
            "cstf_heap_region_peak_bytes",
            "Peak live heap bytes observed while the named region was active",
            &[("region", region)],
            peak as f64,
        );
    }
    let mut phase_seconds: std::collections::BTreeMap<crate::profiler::Phase, f64> =
        std::collections::BTreeMap::new();
    for capture in captures {
        for (phase, totals) in &capture.phases {
            *phase_seconds.entry(*phase).or_insert(0.0) += totals.seconds;
        }
    }
    for (phase, seconds) in &phase_seconds {
        registry.gauge_set(
            &format!("cstf_phase_modeled_seconds_{}", phase.label().to_lowercase()),
            "Modeled seconds attributed to this phase",
            *seconds,
        );
    }
    let total_records: usize = captures.iter().map(|c| c.records.len()).sum();
    if total_records > 0 {
        let occupancy_sum: f64 = captures
            .iter()
            .flat_map(|c| c.records.iter())
            .map(|r| (r.cost.parallel_work / spec.saturation_elems).min(1.0))
            .sum();
        registry.gauge_set(
            "cstf_occupancy_mean",
            "Mean occupancy proxy min(parallel_work / saturation_elems, 1) over launches",
            occupancy_sum / total_records as f64,
        );
    }

    for capture in captures {
        for rec in &capture.records {
            registry.histogram_observe(
                "cstf_kernel_modeled_ns",
                "Per-launch modeled time in nanoseconds",
                &NS_BUCKETS,
                rec.modeled_s * 1e9,
            );
            registry.histogram_observe(
                "cstf_kernel_measured_ns",
                "Per-launch measured host wall-clock in nanoseconds",
                &NS_BUCKETS,
                rec.measured_s * 1e9,
            );
        }
    }

    for (device, capture) in captures.iter().enumerate() {
        let device_label = device.to_string();
        for ((phase, kernel, mode), totals) in &capture.kernels {
            let mode_label = mode.map_or_else(|| "-".to_string(), |m| m.to_string());
            let mut labels: Vec<(&str, &str)> =
                vec![("phase", phase.label()), ("kernel", kernel), ("mode", &mode_label)];
            if multi_device {
                labels.push(("device", &device_label));
            }
            registry.counter_add_labeled(
                "cstf_kernel_launches_total",
                "Launches per (phase, kernel, mode) attribution key",
                &labels,
                totals.launches as f64,
            );
            registry.counter_add_labeled(
                "cstf_kernel_flops_total",
                "Exact flops per (phase, kernel, mode) attribution key",
                &labels,
                totals.flops,
            );
            registry.counter_add_labeled(
                "cstf_kernel_bytes_total",
                "Exact logical bytes per (phase, kernel, mode) attribution key",
                &labels,
                totals.bytes,
            );
            registry.gauge_set_labeled(
                "cstf_kernel_modeled_seconds",
                "Modeled seconds per (phase, kernel, mode) attribution key",
                &labels,
                totals.modeled_s,
            );
            registry.gauge_set_labeled(
                "cstf_kernel_measured_seconds",
                "Measured host seconds per (phase, kernel, mode) attribution key",
                &labels,
                totals.measured_s,
            );
        }
    }

    registry
}

/// The per-phase rows of `run.json`, in display order.
pub fn phase_summaries(capture: &RunCapture) -> Vec<PhaseSummary> {
    capture
        .phases
        .iter()
        .map(|(phase, t)| PhaseSummary {
            phase: phase.label().to_string(),
            modeled_s: t.seconds,
            measured_s: t.measured_s,
            launches: t.launches as u64,
            flops: t.flops,
            bytes: t.bytes,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{KernelClass, KernelCost};
    use crate::device::Device;
    use crate::profiler::Phase;

    fn capture_with_launches() -> (RunCapture, DeviceSpec) {
        let spec = DeviceSpec::a100();
        let dev = Device::with_records(spec.clone());
        for _ in 0..3 {
            dev.launch(
                "mttkrp",
                Phase::Mttkrp,
                KernelClass::SparseGather,
                KernelCost {
                    flops: 1e6,
                    bytes_read: 8e6,
                    bytes_written: 4e6,
                    parallel_work: 1e6,
                    serial_steps: 1.0,
                    working_set: 1.2e7,
                    ..Default::default()
                },
                || (),
            );
        }
        (dev.take_run(), spec)
    }

    #[test]
    fn registry_counts_launches_flops_and_bytes() {
        let (capture, spec) = capture_with_launches();
        let json = registry_from_capture(&capture, &spec).to_json();
        assert_eq!(json["cstf_launches_total"]["value"], 3.0);
        assert_eq!(json["cstf_flops_total"]["value"], 3e6);
        assert_eq!(json["cstf_bytes_total"]["value"], 3.0 * 12e6);
        assert_eq!(json["cstf_kernel_modeled_ns"]["count"], 3);
    }

    #[test]
    fn occupancy_gauge_is_a_bounded_proxy() {
        let (capture, spec) = capture_with_launches();
        let json = registry_from_capture(&capture, &spec).to_json();
        let occ = json["cstf_occupancy_mean"]["value"].as_f64().unwrap();
        let expected = (1e6 / spec.saturation_elems).min(1.0);
        assert!((occ - expected).abs() < 1e-12, "{occ} vs {expected}");
    }

    #[test]
    fn prometheus_export_of_a_real_capture_parses() {
        let (capture, spec) = capture_with_launches();
        let text = registry_from_capture(&capture, &spec).to_prometheus();
        let samples = cstf_telemetry::parse_prometheus(&text).expect("valid exposition format");
        assert!(samples.iter().any(|s| s.name == "cstf_phase_modeled_seconds_mttkrp"));
        assert!(samples.iter().any(|s| s.name == "cstf_kernel_measured_ns_bucket"));
    }

    #[test]
    fn fault_counters_appear_only_when_faults_were_injected() {
        let (clean, spec) = capture_with_launches();
        let json = registry_from_capture(&clean, &spec).to_json();
        assert!(json.get("cstf_faults_injected_total").is_none());

        let dev = Device::new(spec.clone()).with_fault_plan(crate::fault::FaultPlan {
            launch_fault_rate: 1.0,
            max_faults: 2,
            ..crate::fault::FaultPlan::quiet(1)
        });
        for _ in 0..2 {
            let _ = dev.try_launch(
                "mttkrp",
                Phase::Mttkrp,
                KernelClass::SparseGather,
                KernelCost::default(),
                || (),
            );
        }
        let json = registry_from_capture(&dev.take_run(), &spec).to_json();
        assert_eq!(json["cstf_faults_injected_total"]["value"], 2.0);
        assert_eq!(json["cstf_fault_transient_launch_total"]["value"], 2.0);
        assert!(json.get("cstf_fault_device_oom_total").is_none());
    }

    #[test]
    fn per_kernel_key_series_carry_exact_counters() {
        let (capture, spec) = capture_with_launches();
        let json = registry_from_capture(&capture, &spec).to_json();
        let series = &json["cstf_kernel_launches_total"]["series"];
        assert_eq!(series["kernel=\"mttkrp\",mode=\"-\",phase=\"MTTKRP\""], 3.0);
        assert_eq!(
            json["cstf_kernel_flops_total"]["series"]
                ["kernel=\"mttkrp\",mode=\"-\",phase=\"MTTKRP\""],
            3e6
        );
    }

    #[test]
    fn multi_capture_export_sums_aggregates_and_labels_devices() {
        let (a, spec) = capture_with_launches();
        let (b, _) = capture_with_launches();
        let registry = registry_from_captures(&[&a, &b], &spec);
        let json = registry.to_json();
        // Unlabeled aggregates keep the single-device shape, summed.
        assert_eq!(json["cstf_launches_total"]["value"], 6.0);
        assert_eq!(json["cstf_flops_total"]["value"], 6e6);
        // Per-key series gain a device label per capture.
        let series = &json["cstf_kernel_launches_total"]["series"];
        assert_eq!(series["device=\"0\",kernel=\"mttkrp\",mode=\"-\",phase=\"MTTKRP\""], 3.0);
        assert_eq!(series["device=\"1\",kernel=\"mttkrp\",mode=\"-\",phase=\"MTTKRP\""], 3.0);
        // And the whole thing still parses as valid exposition format.
        cstf_telemetry::parse_prometheus(&registry.to_prometheus()).expect("valid");
    }

    #[test]
    fn multi_capture_fault_counters_carry_device_labels() {
        let spec = DeviceSpec::a100();
        let faulty = Device::with_records(spec.clone()).with_fault_plan(crate::fault::FaultPlan {
            launch_fault_rate: 1.0,
            max_faults: 2,
            ..crate::fault::FaultPlan::quiet(1)
        });
        for _ in 0..2 {
            let _ = faulty.try_launch(
                "mttkrp",
                Phase::Mttkrp,
                KernelClass::SparseGather,
                KernelCost::default(),
                || (),
            );
        }
        let (clean, _) = capture_with_launches();
        let json = registry_from_captures(&[&clean, &faulty.take_run()], &spec).to_json();
        assert_eq!(json["cstf_faults_injected_total"]["value"], 2.0);
        let series = &json["cstf_fault_transient_launch_total"]["series"];
        assert_eq!(series["device=\"1\""], 2.0);
        assert!(series.get("device=\"0\"").is_none());
    }

    #[test]
    fn phase_summaries_mirror_capture_totals() {
        let (capture, _) = capture_with_launches();
        let phases = phase_summaries(&capture);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].phase, "MTTKRP");
        assert_eq!(phases[0].launches, 3);
        assert!((phases[0].modeled_s - capture.total_seconds()).abs() < 1e-15);
    }
}
