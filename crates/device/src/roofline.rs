//! Roofline attribution for per-kernel counter aggregates.
//!
//! Classifies each `(phase, kernel, mode)` aggregate from the profiler
//! against a [`DeviceSpec`]'s roofline (§3.3 of the paper): a key is
//! **latency-bound** when its launch overhead dominates both derated
//! throughput terms, otherwise **bandwidth-** or **compute-bound** by
//! whichever derated roofline term is larger. Derates come from the same
//! per-class efficiencies the cost model itself applies
//! ([`KernelClass::compute_efficiency`] / [`KernelClass::memory_efficiency`]),
//! so classification agrees with how the modeled time was actually built.
//!
//! Also hosts the closed forms of **Equations 3–5** — the paper's per-inner-
//! iteration ADMM cost analysis — which `cstf analyze` compares against
//! measured counters to flag metering drift.

use crate::profiler::{KernelKey, KernelTotals};
use crate::spec::DeviceSpec;

/// Which roofline ceiling binds a kernel aggregate on a given device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Derated memory-traffic time exceeds derated compute time.
    Bandwidth,
    /// Derated compute time exceeds derated memory-traffic time.
    Compute,
    /// Fixed launch overhead exceeds both throughput terms: the kernel is
    /// too small for the device (the paper's small-factor regime, §5.3).
    Latency,
}

impl BoundKind {
    /// Short lowercase label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            BoundKind::Bandwidth => "bandwidth",
            BoundKind::Compute => "compute",
            BoundKind::Latency => "latency",
        }
    }
}

/// One row of the roofline attribution table: a kernel key's exact
/// aggregates joined with its derived intensity and bound classification.
#[derive(Debug, Clone)]
pub struct RooflineRow {
    /// The `(phase, kernel, mode)` attribution key.
    pub key: KernelKey,
    /// Exact counter aggregates for the key.
    pub totals: KernelTotals,
    /// Arithmetic intensity, flop/byte (`inf` for byte-free keys).
    pub intensity: f64,
    /// Which ceiling binds this key on the classifying device.
    pub bound: BoundKind,
}

/// Classifies one aggregate against `spec`'s roofline.
///
/// Uses the cost model's own derates: compute time is
/// `flops / (peak * compute_efficiency)`, memory time is
/// `bytes / (bandwidth * memory_efficiency)`, launch time is
/// `launches * kernel_launch_us`. Latency wins ties against either
/// throughput term (a kernel at exactly launch cost is launch-dominated).
pub fn classify(totals: &KernelTotals, spec: &DeviceSpec) -> BoundKind {
    let compute_s =
        totals.flops / (spec.peak_gflops_f64 * 1e9 * totals.class.compute_efficiency(spec.kind));
    let memory_s =
        totals.bytes / (spec.mem_bw_gbs * 1e9 * totals.class.memory_efficiency(spec.kind));
    let launch_s = totals.launches as f64 * spec.kernel_launch_us * 1e-6;
    if launch_s >= compute_s.max(memory_s) {
        BoundKind::Latency
    } else if memory_s >= compute_s {
        BoundKind::Bandwidth
    } else {
        BoundKind::Compute
    }
}

/// Builds the full attribution table from a device's per-key aggregates,
/// preserving the profiler's stable key order.
pub fn attribute(kernels: &[(KernelKey, KernelTotals)], spec: &DeviceSpec) -> Vec<RooflineRow> {
    kernels
        .iter()
        .map(|(key, totals)| RooflineRow {
            key: *key,
            totals: *totals,
            intensity: totals.intensity(),
            bound: classify(totals, spec),
        })
        .collect()
}

/// Eq. 3: flops per ADMM inner iteration on an `I x R` factor,
/// `W = 19*I*R + 2*I*R^2`.
pub fn eq3_flops(i: usize, rank: usize) -> f64 {
    let (i, r) = (i as f64, rank as f64);
    19.0 * i * r + 2.0 * i * r * r
}

/// Eq. 4: words moved per ADMM inner iteration, `Q = 22*I*R + R^2`.
pub fn eq4_words(i: usize, rank: usize) -> f64 {
    let (i, r) = (i as f64, rank as f64);
    22.0 * i * r + r * r
}

/// Eq. 5: arithmetic intensity in flop/byte (8-byte words),
/// `AI = (19 + 2R) / ((22 + R/I) * 8)`.
pub fn eq5_intensity(i: usize, rank: usize) -> f64 {
    eq3_flops(i, rank) / (eq4_words(i, rank) * 8.0)
}

/// Relative deviation `|measured / expected - 1|`; `inf` when the expected
/// value is zero but the measurement is not.
pub fn relative_deviation(measured: f64, expected: f64) -> f64 {
    if expected == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured / expected - 1.0).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelClass;
    use crate::profiler::{Phase, Profiler};

    fn totals(class: KernelClass, launches: usize, flops: f64, bytes: f64) -> KernelTotals {
        let mut p = Profiler::new();
        for _ in 0..launches {
            p.record(crate::profiler::KernelRecord {
                name: "k",
                phase: Phase::Update,
                class,
                cost: crate::cost::KernelCost {
                    flops: flops / launches as f64,
                    bytes_read: bytes / launches as f64,
                    ..Default::default()
                },
                modeled_s: 1e-6,
                raw_s: 1e-6,
                measured_s: 0.0,
                mode: None,
                collective_seq: None,
            });
        }
        p.kernels()[0].1
    }

    #[test]
    fn low_intensity_stream_is_bandwidth_bound() {
        // 1 flop per 8 bytes, far below the A100 ridge (~9.9 flop/byte).
        let t = totals(KernelClass::Stream, 10, 1e9, 8e9);
        assert_eq!(classify(&t, &DeviceSpec::a100()), BoundKind::Bandwidth);
    }

    #[test]
    fn high_intensity_gemm_is_compute_bound() {
        // 1000 flop/byte, far above every ridge point.
        let t = totals(KernelClass::Gemm, 10, 1e12, 1e9);
        assert_eq!(classify(&t, &DeviceSpec::a100()), BoundKind::Compute);
    }

    #[test]
    fn tiny_kernels_are_latency_bound_on_gpu_not_cpu() {
        // 1 MB in one launch: ~0.6 us of HBM traffic hides under the A100's
        // 4 us launch overhead, while the same megabyte costs ~9 us of DDR
        // time against the CPU's 0.5 us dispatch — bandwidth-bound there.
        let t = totals(KernelClass::Stream, 1, 1e4, 1e6);
        assert_eq!(classify(&t, &DeviceSpec::a100()), BoundKind::Latency);
        assert_eq!(classify(&t, &DeviceSpec::icelake_xeon()), BoundKind::Bandwidth);
    }

    #[test]
    fn eq5_matches_paper_reference_points() {
        // §3.3: AI ~ 0.29 / 0.47 / 0.83 for R = 16 / 32 / 64.
        let i = 100_000;
        assert!((eq5_intensity(i, 16) - 0.29).abs() < 0.01);
        assert!((eq5_intensity(i, 32) - 0.47).abs() < 0.01);
        assert!((eq5_intensity(i, 64) - 0.84).abs() < 0.01);
    }

    #[test]
    fn attribution_preserves_key_order_and_intensity() {
        let mut p = Profiler::new();
        for (name, phase) in [("gram_syrk", Phase::Gram), ("mttkrp", Phase::Mttkrp)] {
            p.record(crate::profiler::KernelRecord {
                name,
                phase,
                class: KernelClass::Stream,
                cost: crate::cost::KernelCost {
                    flops: 100.0,
                    bytes_read: 800.0,
                    ..Default::default()
                },
                modeled_s: 1e-6,
                raw_s: 1e-6,
                measured_s: 0.0,
                mode: None,
                collective_seq: None,
            });
        }
        let rows = attribute(&p.kernels(), &DeviceSpec::h100());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key.0, Phase::Gram);
        assert_eq!(rows[1].key.0, Phase::Mttkrp);
        assert!((rows[0].intensity - 0.125).abs() < 1e-12);
    }

    #[test]
    fn relative_deviation_handles_zero_expectations() {
        assert_eq!(relative_deviation(0.0, 0.0), 0.0);
        assert_eq!(relative_deviation(1.0, 0.0), f64::INFINITY);
        assert!((relative_deviation(1.05, 1.0) - 0.05).abs() < 1e-12);
    }
}
