//! # cstf-device
//!
//! The simulated accelerator substrate for cSTF-rs.
//!
//! The ICPP '24 paper evaluates on NVIDIA A100/H100 GPUs, which this
//! environment does not have. Per the reproduction's substitution rule
//! (DESIGN.md §1), this crate replaces CUDA with a *metered execution*
//! model: kernels run for real (Rayon-parallel, exact numerics) through
//! [`Device::launch`], which tallies exact flop/byte counts and converts
//! them to modeled time with a roofline cost model parameterized by the
//! paper's Table 1 hardware ([`DeviceSpec::a100`], [`DeviceSpec::h100`],
//! [`DeviceSpec::icelake_xeon`]).
//!
//! The model captures the four effects the paper's evaluation hinges on:
//! bandwidth-boundedness of low-intensity kernels (§3.3), GPU occupancy
//! ramp on small factor matrices (§5.3), cache residency explaining
//! H100 > A100 at equal HBM bandwidth (§5.3), and triangular-solve
//! serialization that pre-inversion removes (§4.3.2).
//!
//! ```
//! use cstf_device::{Device, DeviceSpec, Phase, KernelClass, KernelCost};
//!
//! let dev = Device::new(DeviceSpec::h100());
//! let n = 1_000_000.0;
//! let sum = dev.launch(
//!     "vector_add",
//!     Phase::Update,
//!     KernelClass::Stream,
//!     KernelCost {
//!         flops: n,
//!         bytes_read: 16.0 * n,
//!         bytes_written: 8.0 * n,
//!         gather_traffic: 0.0,
//!         parallel_work: n,
//!         serial_steps: 1.0,
//!         working_set: 24.0 * n,
//!     },
//!     || (0..1000).sum::<u64>(), // the real work
//! );
//! assert_eq!(sum, 499500);
//! assert!(dev.total_seconds() > 0.0); // modeled time was recorded
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cost;
pub mod dag;
#[allow(clippy::module_inception)]
pub mod device;
pub mod export;
pub mod fault;
pub mod group;
pub mod memstat;
pub mod profiler;
pub mod roofline;
pub mod spec;
pub mod trace;

pub use baseline::{
    compare_baselines, compare_measured_band, BaselineDelta, DeltaKind, KernelBaseline,
    PerfBaseline,
};
pub use cost::{kernel_time, transfer_time, KernelClass, KernelCost};
pub use dag::{
    analyze, apply_what_ifs, ops_from_records, parse_what_ifs, read_ops_jsonl, write_ops_jsonl,
    DagAnalysis, DeviceAttribution, LinkOverlap, OpSpec, ScheduledOp, WhatIf,
};
pub use device::{Device, OverlappedTransfer};
pub use export::{phase_summaries, registry_from_capture, registry_from_captures};
pub use fault::{DeviceFault, FaultKind, FaultPlan, GroupFault, LossPoint};
pub use group::{DeviceGroup, GroupHealth, HealthPolicy, LinkModel};
pub use memstat::{
    device_capacity_bytes, plan_device_fit, plan_fit, suggested_tile_count, DeviceFit,
};
pub use profiler::{
    FaultRecord, KernelKey, KernelRecord, KernelTotals, MarkRecord, Phase, PhaseTotals, Profiler,
    RunCapture,
};
pub use roofline::{attribute, classify, BoundKind, RooflineRow};
pub use spec::{DeviceKind, DeviceSpec};
pub use trace::{
    critical_path_flow_events, write_chrome_trace, write_full_trace,
    write_full_trace_with_critical_path, write_multi_device_full_trace,
    write_multi_device_full_trace_with_critical_path, write_multi_device_trace, write_trace_events,
};
