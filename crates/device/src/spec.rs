//! Device specifications (paper Table 1).
//!
//! A [`DeviceSpec`] captures the handful of architectural parameters the
//! paper's own performance analysis (§3.3) reasons with: peak FP64 rate,
//! memory bandwidth, cache capacity, parallel width, and kernel launch cost.
//! Three concrete specs reproduce Table 1: NVIDIA A100, NVIDIA H100, and the
//! 26-core Intel Ice Lake Xeon Platinum 8367HC the CPU baselines ran on.

use serde::Serialize;

/// Whether a device is a latency-oriented CPU or a throughput-oriented GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DeviceKind {
    /// Multicore CPU: negligible launch cost, modest bandwidth, deep caches.
    Cpu,
    /// Massively parallel GPU: high bandwidth, kernel-launch latency, needs
    /// enough parallel work to reach full occupancy.
    Gpu,
}

/// Architectural parameters driving the roofline cost model.
///
/// All throughputs are *peak*; per-kernel-class efficiency factors in
/// [`crate::cost`] derate them.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceSpec {
    /// Marketing name, printed in Table 1.
    pub name: &'static str,
    /// Microarchitecture, printed in Table 1.
    pub uarch: &'static str,
    /// CPU or GPU.
    pub kind: DeviceKind,
    /// Core clock in GHz (Table 1 row "Frequency").
    pub freq_ghz: f64,
    /// CPU cores, or GPU streaming multiprocessors.
    pub cores: usize,
    /// GPU CUDA cores (0 for CPUs).
    pub cuda_cores: usize,
    /// Peak FP64 rate in GFLOP/s.
    pub peak_gflops_f64: f64,
    /// DRAM/HBM bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Capacity of the largest cache level in MiB (L2 for the GPUs, L3 for
    /// the CPU) — the quantity the paper credits for H100 > A100 at equal
    /// HBM bandwidth.
    pub llc_mib: f64,
    /// Aggregate L1/near cache in MiB (Table 1 row "Caches").
    pub l1_mib: f64,
    /// DRAM capacity in GB (Table 1 row "DRAM").
    pub dram_gb: f64,
    /// Bandwidth multiplier when a working set is cache-resident
    /// (LLC bandwidth / DRAM bandwidth).
    pub cache_bw_mult: f64,
    /// Per-kernel launch latency in microseconds (host API + scheduling for
    /// GPUs; parallel-region fork/join for the CPU).
    pub kernel_launch_us: f64,
    /// Number of concurrently resident work items needed to reach full
    /// throughput; below this, effective throughput ramps linearly
    /// (occupancy). GPUs need hundreds of thousands of threads, CPUs dozens.
    pub saturation_elems: f64,
    /// Latency of one dependent step inside a serialized kernel (triangular
    /// solve), in microseconds.
    pub serial_step_us: f64,
    /// Host link (PCIe/NVLink) bandwidth in GB/s; `f64::INFINITY` for the
    /// CPU (no transfer needed).
    pub host_link_gbs: f64,
    /// OS / driver string, printed in Table 1.
    pub os_driver: &'static str,
    /// Compiler string, printed in Table 1.
    pub compiler: &'static str,
}

impl DeviceSpec {
    /// NVIDIA A100 80 GB (Ampere), as in Table 1.
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100",
            uarch: "Ampere",
            kind: DeviceKind::Gpu,
            freq_ghz: 1.41,
            cores: 108,
            cuda_cores: 6912,
            peak_gflops_f64: 9_700.0,
            mem_bw_gbs: 2_039.0,
            llc_mib: 40.0,
            l1_mib: 20.3,
            dram_gb: 80.0,
            cache_bw_mult: 2.0,
            kernel_launch_us: 4.0,
            saturation_elems: 4.0e5,
            serial_step_us: 1.5,
            host_link_gbs: 64.0, // PCIe 4.0 x16
            os_driver: "525.85.12",
            compiler: "nvcc 11.7",
        }
    }

    /// NVIDIA H100 80 GB (Hopper), as in Table 1. Same HBM bandwidth as the
    /// A100 but ~25 % larger L1/L2 — the cache advantage §5.3 credits for the
    /// higher end-to-end speedup.
    pub fn h100() -> Self {
        Self {
            name: "NVIDIA H100",
            uarch: "Hopper",
            kind: DeviceKind::Gpu,
            freq_ghz: 1.98,
            cores: 114,
            cuda_cores: 14592,
            peak_gflops_f64: 25_600.0,
            mem_bw_gbs: 2_039.0,
            llc_mib: 50.0,
            l1_mib: 28.5,
            dram_gb: 80.0,
            cache_bw_mult: 2.5,
            kernel_launch_us: 3.0,
            saturation_elems: 4.5e5,
            serial_step_us: 1.2,
            host_link_gbs: 64.0,
            os_driver: "535.54.03",
            compiler: "nvcc 12.3",
        }
    }

    /// Intel Xeon Platinum 8367HC, 26-core Ice Lake (Table 1 CPU column).
    ///
    /// Peak FP64 = 26 cores x 3.2 GHz x 2 FMA ports x 8-wide AVX-512 x 2
    /// flops ≈ 2.66 TFLOP/s; sustained DRAM bandwidth ≈ 205 GB/s
    /// (8-channel DDR4-3200).
    pub fn icelake_xeon() -> Self {
        Self {
            name: "Intel Xeon Platinum 8367HC",
            uarch: "Ice Lake (ICX)",
            kind: DeviceKind::Cpu,
            freq_ghz: 3.2,
            cores: 26,
            cuda_cores: 0,
            peak_gflops_f64: 2_662.0,
            mem_bw_gbs: 205.0,
            llc_mib: 143.0,
            l1_mib: 3.3,
            dram_gb: 400.0,
            cache_bw_mult: 5.0,
            kernel_launch_us: 0.5,
            saturation_elems: 2.0e3,
            serial_step_us: 0.05,
            host_link_gbs: f64::INFINITY,
            os_driver: "Ubuntu 20.04",
            compiler: "gcc 9.3.0",
        }
    }

    /// All Table 1 devices, CPU first.
    pub fn table1() -> Vec<Self> {
        vec![Self::icelake_xeon(), Self::a100(), Self::h100()]
    }

    /// Machine balance in flop/byte: the arithmetic intensity at the
    /// roofline ridge point. Kernels below this are bandwidth-bound.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gflops_f64 / self.mem_bw_gbs
    }

    /// A workload-scaled copy of this spec for replaying a paper-scale
    /// experiment on data shrunk by factor `s` (DESIGN.md §1).
    ///
    /// The catalog shrinks every mode length and the nnz by `s`; shrinking
    /// the device's *latency, occupancy and capacity* parameters by the
    /// same factor preserves every dimensionless ratio the roofline model
    /// depends on — work-per-kernel vs. launch latency, parallel work vs.
    /// saturation occupancy, working set vs. cache capacity, serial TRSM
    /// steps vs. streaming time. Throughputs (FLOP/s, GB/s) are *not*
    /// scaled: absolute kernel times simply come out `s` times smaller,
    /// leaving all speedup ratios those of the paper-scale run.
    pub fn scaled(&self, s: f64) -> Self {
        assert!(s > 0.0 && s.is_finite(), "scale must be positive");
        Self {
            llc_mib: self.llc_mib * s,
            l1_mib: self.l1_mib * s,
            kernel_launch_us: self.kernel_launch_us * s,
            saturation_elems: self.saturation_elems * s,
            serial_step_us: self.serial_step_us * s,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_headline_numbers() {
        let a100 = DeviceSpec::a100();
        let h100 = DeviceSpec::h100();
        let cpu = DeviceSpec::icelake_xeon();
        assert_eq!(a100.cores, 108);
        assert_eq!(h100.cores, 114);
        assert_eq!(cpu.cores, 26);
        assert_eq!(a100.mem_bw_gbs, h100.mem_bw_gbs); // equal HBM bandwidth
        assert!(h100.llc_mib > a100.llc_mib); // H100 cache advantage
        assert!(h100.l1_mib > a100.l1_mib);
        assert_eq!(a100.freq_ghz, 1.41);
        assert_eq!(h100.freq_ghz, 1.98);
        assert_eq!(cpu.freq_ghz, 3.2);
    }

    #[test]
    fn gpus_have_big_bandwidth_advantage_over_cpu() {
        let cpu = DeviceSpec::icelake_xeon();
        let a100 = DeviceSpec::a100();
        let ratio = a100.mem_bw_gbs / cpu.mem_bw_gbs;
        // The ~10x bandwidth gap is what makes bandwidth-bound ADMM a GPU win.
        assert!(ratio > 8.0 && ratio < 12.0, "ratio = {ratio}");
    }

    #[test]
    fn ridge_point_classifies_admm_as_bandwidth_bound() {
        // Paper §3.3: ADMM arithmetic intensity is 0.29-0.83 flop/byte for
        // R in {16, 32, 64} — far below every device's ridge point.
        for spec in DeviceSpec::table1() {
            assert!(spec.ridge_intensity() > 1.0, "{} ridge too low", spec.name);
        }
    }

    #[test]
    fn scaled_spec_preserves_speedup_ratios() {
        // Replaying at scale s must leave kernel-time *ratios* unchanged:
        // a workload shrunk by s on a spec scaled by s gives times exactly
        // s times smaller.
        use crate::cost::{kernel_time, KernelClass, KernelCost};
        let s = 1e-3;
        let full = DeviceSpec::a100();
        let scaled = full.scaled(s);
        let cost_at = |scale: f64| KernelCost {
            flops: 1e9 * scale,
            bytes_read: 1.6e10 * scale,
            bytes_written: 8e9 * scale,
            gather_traffic: 0.0,
            parallel_work: 1e6 * scale,
            serial_steps: 64.0,
            working_set: 45.0 * 1024.0 * 1024.0 * scale,
        };
        let t_full = kernel_time(&full, KernelClass::Stream, &cost_at(1.0));
        let t_scaled = kernel_time(&scaled, KernelClass::Stream, &cost_at(s));
        let ratio = t_scaled / t_full;
        assert!((ratio / s - 1.0).abs() < 0.05, "ratio {ratio} vs expected {s}");
    }

    #[test]
    fn scaling_keeps_throughputs() {
        let s = 0.01;
        let a = DeviceSpec::h100();
        let b = a.scaled(s);
        assert_eq!(a.peak_gflops_f64, b.peak_gflops_f64);
        assert_eq!(a.mem_bw_gbs, b.mem_bw_gbs);
        assert_eq!(b.llc_mib, a.llc_mib * s);
        assert_eq!(b.saturation_elems, a.saturation_elems * s);
    }

    #[test]
    fn kinds_are_correct() {
        assert_eq!(DeviceSpec::a100().kind, DeviceKind::Gpu);
        assert_eq!(DeviceSpec::icelake_xeon().kind, DeviceKind::Cpu);
    }
}
