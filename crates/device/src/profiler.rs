//! Per-phase kernel profiler.
//!
//! Reproducing the paper's breakdown figures (Figs. 1 and 3) requires
//! attributing every kernel to one of the four cSTF phases — GRAM, MTTKRP,
//! UPDATE, NORMALIZE — and summing modeled time per phase. The profiler also
//! keeps raw flop/byte tallies so the arithmetic-intensity analysis
//! (Eqs. 3–5) can be checked against the machine-counted numbers.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::cost::{KernelClass, KernelCost};

/// The cSTF phases of Algorithm 1, plus host-device transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Phase {
    /// Gram-matrix computation and Hadamard combination (lines 8, 12).
    Gram,
    /// The matricized tensor times Khatri-Rao product (line 9).
    Mttkrp,
    /// The constrained update — ADMM / MU / HALS (line 10).
    Update,
    /// Column normalization and lambda extraction (line 11).
    Normalize,
    /// Host-device data movement.
    Transfer,
    /// Anything else (initialization, fit checks).
    Other,
}

impl Phase {
    /// All phases in display order.
    pub fn all() -> [Phase; 6] {
        [Phase::Gram, Phase::Mttkrp, Phase::Update, Phase::Normalize, Phase::Transfer, Phase::Other]
    }

    /// Serialized variant name (what `#[derive(Serialize)]` emits for the
    /// unit variant) — the wire form used by `ops.jsonl`.
    pub fn variant_name(&self) -> &'static str {
        match self {
            Phase::Gram => "Gram",
            Phase::Mttkrp => "Mttkrp",
            Phase::Update => "Update",
            Phase::Normalize => "Normalize",
            Phase::Transfer => "Transfer",
            Phase::Other => "Other",
        }
    }

    /// Uppercase label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Gram => "GRAM",
            Phase::Mttkrp => "MTTKRP",
            Phase::Update => "UPDATE",
            Phase::Normalize => "NORMALIZE",
            Phase::Transfer => "TRANSFER",
            Phase::Other => "OTHER",
        }
    }
}

/// One recorded kernel launch.
#[derive(Debug, Clone, Serialize)]
pub struct KernelRecord {
    /// Kernel name (e.g. `"compute_auxiliary"`).
    pub name: &'static str,
    /// Phase attribution.
    pub phase: Phase,
    /// Kernel class used by the cost model.
    pub class: KernelClass,
    /// Exact operation tally.
    pub cost: KernelCost,
    /// Modeled execution time in seconds.
    pub modeled_s: f64,
    /// Un-overlapped modeled seconds. Equal to `modeled_s` for every op
    /// except overlapped transfers, where `modeled_s` holds only the
    /// exposed remainder and `raw_s` holds the full link time the bytes
    /// would take in isolation (`raw_s - modeled_s` is the hidden time).
    pub raw_s: f64,
    /// Measured host wall-clock of the launch body in seconds (`0.0` for
    /// transfers, which execute no host code).
    pub measured_s: f64,
    /// The tensor mode being updated when the launch was recorded (stamped
    /// from the profiler's mode context; `None` outside a mode loop).
    pub mode: Option<u32>,
    /// Group-wide collective instance id: every member of one
    /// [`DeviceGroup`](crate::group::DeviceGroup) collective carries the
    /// same sequence number, letting the execution-DAG layer rendezvous
    /// the per-device records. `None` for non-collective ops.
    pub collective_seq: Option<u32>,
}

/// Stable attribution key for kernel aggregation: every launch resolves to
/// one `(phase, kernel name, mode)` triple. The key is what the perf
/// baselines and the roofline attribution table are indexed by, so its
/// ordering (phase display order, then kernel name, then mode) must stay
/// stable across runs.
pub type KernelKey = (Phase, &'static str, Option<u32>);

/// Per-key aggregate over all launches sharing one [`KernelKey`]. Counters
/// (`launches`, `flops`, `bytes`) are exact — on the simulated device they
/// are deterministic tallies, so any drift between runs is a real
/// algorithmic change, not measurement noise.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct KernelTotals {
    /// Kernel class of the launches under this key (stable per kernel).
    pub class: KernelClass,
    /// Number of launches.
    pub launches: usize,
    /// Total flops.
    pub flops: f64,
    /// Total logical bytes (read + written + gather).
    pub bytes: f64,
    /// Total modeled seconds.
    pub modeled_s: f64,
    /// Total measured host wall-clock seconds.
    pub measured_s: f64,
}

impl KernelTotals {
    fn new(class: KernelClass) -> Self {
        Self { class, launches: 0, flops: 0.0, bytes: 0.0, modeled_s: 0.0, measured_s: 0.0 }
    }

    /// Aggregate arithmetic intensity in flop/byte (infinite when the key
    /// moved no bytes — e.g. cache-resident reductions).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }
}

/// A labeled position in the kernel stream — e.g. an outer-iteration
/// boundary. Marks cost two words to record and let the trace writer emit
/// instant events without widening [`KernelRecord`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MarkRecord {
    /// Mark label (e.g. `"outer_iteration"`).
    pub label: &'static str,
    /// Number of launches recorded before this mark.
    pub seq: usize,
    /// Cumulative modeled seconds at the mark.
    pub modeled_s_at: f64,
}

/// One injected device fault, as observed by the profiler. Fault records
/// are always retained (faults are rare by construction, and invisible
/// faults would defeat the point of injecting them), unlike kernel records
/// and marks which require a record-keeping profiler.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FaultRecord {
    /// The kind of fault injected.
    pub kind: crate::fault::FaultKind,
    /// The kernel or transfer name that drew the fault.
    pub kernel: &'static str,
    /// The fallible-operation sequence number that rolled the fault.
    pub op: u64,
    /// Cumulative modeled seconds when the fault was injected.
    pub modeled_s_at: f64,
}

/// Everything one run produced, captured atomically by
/// [`Profiler::take`]: the retained kernel records, the marks, the
/// injected faults, and the per-phase totals. Capturing clears the
/// profiler in the same lock acquisition, so repetition harnesses cannot
/// leak warm-up launches into the next measurement (the double-reset
/// hazard).
#[derive(Debug, Default)]
pub struct RunCapture {
    /// Retained kernel records (empty unless the profiler keeps records).
    pub records: Vec<KernelRecord>,
    /// Marks in record order.
    pub marks: Vec<MarkRecord>,
    /// Injected device faults, in injection order (always retained).
    pub faults: Vec<FaultRecord>,
    /// Per-phase totals in display order, skipping empty phases.
    pub phases: Vec<(Phase, PhaseTotals)>,
    /// Per-key kernel aggregates in key order (always collected — the
    /// key space is small and bounded, unlike the per-launch records).
    pub kernels: Vec<(KernelKey, KernelTotals)>,
}

impl RunCapture {
    /// Total modeled seconds across all phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|(_, t)| t.seconds).sum()
    }

    /// Total measured host wall-clock seconds across all phases.
    pub fn total_measured_seconds(&self) -> f64 {
        self.phases.iter().map(|(_, t)| t.measured_s).sum()
    }

    /// Total kernel launches across all phases.
    pub fn total_launches(&self) -> usize {
        self.phases.iter().map(|(_, t)| t.launches).sum()
    }

    /// Totals for one phase (zeros if nothing ran).
    pub fn phase(&self, phase: Phase) -> PhaseTotals {
        self.phases.iter().find(|(p, _)| *p == phase).map(|(_, t)| *t).unwrap_or_default()
    }

    /// Aggregate for one kernel key, if that key launched anything.
    pub fn kernel(&self, phase: Phase, name: &str, mode: Option<u32>) -> Option<KernelTotals> {
        self.kernels
            .iter()
            .find(|((p, n, m), _)| *p == phase && *n == name && *m == mode)
            .map(|(_, t)| *t)
    }
}

/// Aggregated totals for one phase.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PhaseTotals {
    /// Modeled seconds.
    pub seconds: f64,
    /// Measured host wall-clock seconds.
    pub measured_s: f64,
    /// Kernel launches.
    pub launches: usize,
    /// Total flops.
    pub flops: f64,
    /// Total bytes (read + written).
    pub bytes: f64,
}

/// Accumulates kernel records, per-phase totals and per-key kernel
/// aggregates.
#[derive(Debug, Default)]
pub struct Profiler {
    records: Vec<KernelRecord>,
    marks: Vec<MarkRecord>,
    faults: Vec<FaultRecord>,
    keep_records: bool,
    totals: BTreeMap<Phase, PhaseTotals>,
    kernels: BTreeMap<KernelKey, KernelTotals>,
    /// Mode context stamped onto every record; survives `take`/`reset`
    /// (it is caller state, not run data).
    current_mode: Option<u32>,
    launches_seen: usize,
}

impl Profiler {
    /// A profiler that keeps only aggregate totals (cheap; default).
    pub fn new() -> Self {
        Self::default()
    }

    /// A profiler that additionally retains every [`KernelRecord`].
    pub fn with_records() -> Self {
        Self { keep_records: true, ..Self::default() }
    }

    /// Records one kernel launch, stamping the current mode context onto
    /// the record and folding it into the phase and per-key aggregates.
    pub fn record(&mut self, mut rec: KernelRecord) {
        rec.mode = self.current_mode;
        let t = self.totals.entry(rec.phase).or_default();
        t.seconds += rec.modeled_s;
        t.measured_s += rec.measured_s;
        t.launches += 1;
        t.flops += rec.cost.flops;
        t.bytes += rec.cost.bytes();
        let k = self
            .kernels
            .entry((rec.phase, rec.name, rec.mode))
            .or_insert_with(|| KernelTotals::new(rec.class));
        k.launches += 1;
        k.flops += rec.cost.flops;
        k.bytes += rec.cost.bytes();
        k.modeled_s += rec.modeled_s;
        k.measured_s += rec.measured_s;
        self.launches_seen += 1;
        if self.keep_records {
            self.records.push(rec);
        }
    }

    /// Sets the mode context stamped onto subsequent records (`None` to
    /// leave the mode loop).
    pub fn set_mode(&mut self, mode: Option<u32>) {
        self.current_mode = mode;
    }

    /// Records a labeled position in the kernel stream (retained only
    /// when the profiler keeps records, like the records themselves).
    pub fn mark(&mut self, label: &'static str) {
        if self.keep_records {
            self.marks.push(MarkRecord {
                label,
                seq: self.launches_seen,
                modeled_s_at: self.total_seconds(),
            });
        }
    }

    /// Marks recorded so far.
    pub fn marks(&self) -> &[MarkRecord] {
        &self.marks
    }

    /// Records one injected fault (always retained).
    pub fn record_fault(&mut self, kind: crate::fault::FaultKind, kernel: &'static str, op: u64) {
        self.faults.push(FaultRecord { kind, kernel, op, modeled_s_at: self.total_seconds() });
    }

    /// Injected faults recorded so far.
    pub fn faults(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// Totals for one phase (zeros if nothing ran).
    pub fn phase(&self, phase: Phase) -> PhaseTotals {
        self.totals.get(&phase).copied().unwrap_or_default()
    }

    /// Per-phase totals in display order, skipping empty phases.
    pub fn phases(&self) -> Vec<(Phase, PhaseTotals)> {
        Phase::all().into_iter().filter_map(|p| self.totals.get(&p).map(|t| (p, *t))).collect()
    }

    /// Per-key kernel aggregates in stable key order.
    pub fn kernels(&self) -> Vec<(KernelKey, KernelTotals)> {
        self.kernels.iter().map(|(k, t)| (*k, *t)).collect()
    }

    /// Total modeled time across all phases, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.totals.values().map(|t| t.seconds).sum()
    }

    /// Total measured host wall-clock across all phases, in seconds.
    pub fn total_measured_seconds(&self) -> f64 {
        self.totals.values().map(|t| t.measured_s).sum()
    }

    /// Total kernel launches.
    pub fn total_launches(&self) -> usize {
        self.totals.values().map(|t| t.launches).sum()
    }

    /// Retained records (empty unless constructed with
    /// [`Profiler::with_records`]).
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Clears all records, marks, faults, totals and kernel aggregates
    /// (the mode context is caller state and survives).
    pub fn reset(&mut self) {
        self.records.clear();
        self.marks.clear();
        self.faults.clear();
        self.totals.clear();
        self.kernels.clear();
        self.launches_seen = 0;
    }

    /// Captures everything recorded so far and clears the profiler in the
    /// same operation (see [`RunCapture`]).
    pub fn take(&mut self) -> RunCapture {
        let capture = RunCapture {
            records: std::mem::take(&mut self.records),
            marks: std::mem::take(&mut self.marks),
            faults: std::mem::take(&mut self.faults),
            phases: self.phases(),
            kernels: std::mem::take(&mut self.kernels).into_iter().collect(),
        };
        self.totals.clear();
        self.launches_seen = 0;
        capture
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(phase: Phase, secs: f64, flops: f64) -> KernelRecord {
        KernelRecord {
            name: "k",
            phase,
            class: KernelClass::Stream,
            cost: KernelCost { flops, bytes_read: 10.0, bytes_written: 5.0, ..Default::default() },
            modeled_s: secs,
            raw_s: secs,
            measured_s: secs * 0.5,
            mode: None,
            collective_seq: None,
        }
    }

    #[test]
    fn measured_time_accumulates_alongside_modeled() {
        let mut p = Profiler::new();
        p.record(rec(Phase::Update, 2.0, 1.0));
        p.record(rec(Phase::Gram, 1.0, 1.0));
        assert_eq!(p.phase(Phase::Update).measured_s, 1.0);
        assert_eq!(p.total_measured_seconds(), 1.5);
    }

    #[test]
    fn totals_accumulate_per_phase() {
        let mut p = Profiler::new();
        p.record(rec(Phase::Update, 1.0, 100.0));
        p.record(rec(Phase::Update, 2.0, 50.0));
        p.record(rec(Phase::Gram, 0.5, 10.0));
        let u = p.phase(Phase::Update);
        assert_eq!(u.seconds, 3.0);
        assert_eq!(u.launches, 2);
        assert_eq!(u.flops, 150.0);
        assert_eq!(u.bytes, 30.0);
        assert_eq!(p.total_seconds(), 3.5);
        assert_eq!(p.total_launches(), 3);
    }

    #[test]
    fn records_kept_only_when_requested() {
        let mut lean = Profiler::new();
        lean.record(rec(Phase::Gram, 0.1, 1.0));
        assert!(lean.records().is_empty());

        let mut full = Profiler::with_records();
        full.record(rec(Phase::Gram, 0.1, 1.0));
        assert_eq!(full.records().len(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = Profiler::with_records();
        p.record(rec(Phase::Mttkrp, 1.0, 1.0));
        p.reset();
        assert_eq!(p.total_seconds(), 0.0);
        assert!(p.records().is_empty());
        assert!(p.phases().is_empty());
    }

    #[test]
    fn phases_in_display_order() {
        let mut p = Profiler::new();
        p.record(rec(Phase::Normalize, 1.0, 0.0));
        p.record(rec(Phase::Gram, 1.0, 0.0));
        let order: Vec<Phase> = p.phases().into_iter().map(|(ph, _)| ph).collect();
        assert_eq!(order, vec![Phase::Gram, Phase::Normalize]);
    }

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(Phase::Update.label(), "UPDATE");
        assert_eq!(Phase::Mttkrp.label(), "MTTKRP");
    }

    #[test]
    fn marks_carry_sequence_and_cumulative_time() {
        let mut p = Profiler::with_records();
        p.record(rec(Phase::Mttkrp, 1.0, 1.0));
        p.mark("outer_iteration");
        p.record(rec(Phase::Update, 2.0, 1.0));
        p.mark("outer_iteration");
        let marks = p.marks();
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[0].seq, 1);
        assert_eq!(marks[0].modeled_s_at, 1.0);
        assert_eq!(marks[1].seq, 2);
        assert_eq!(marks[1].modeled_s_at, 3.0);
    }

    #[test]
    fn fault_records_are_retained_even_on_lean_profilers() {
        use crate::fault::FaultKind;
        let mut p = Profiler::new(); // lean: no kernel records
        p.record(rec(Phase::Update, 2.0, 1.0));
        p.record_fault(FaultKind::TransientLaunch, "fused_inner_sweep", 7);
        assert_eq!(p.faults().len(), 1);
        assert_eq!(p.faults()[0].kernel, "fused_inner_sweep");
        assert_eq!(p.faults()[0].op, 7);
        assert_eq!(p.faults()[0].modeled_s_at, 2.0);
        let capture = p.take();
        assert_eq!(capture.faults.len(), 1);
        assert!(p.faults().is_empty(), "take clears faults too");
    }

    #[test]
    fn kernel_aggregates_key_on_phase_name_and_mode() {
        let mut p = Profiler::new(); // lean profiler: aggregates still collected
        p.set_mode(Some(0));
        p.record(rec(Phase::Update, 1.0, 100.0));
        p.record(rec(Phase::Update, 2.0, 50.0));
        p.set_mode(Some(1));
        p.record(rec(Phase::Update, 4.0, 25.0));
        p.set_mode(None);
        p.record(rec(Phase::Other, 0.5, 5.0));

        let kernels = p.kernels();
        assert_eq!(kernels.len(), 3);
        let m0 = kernels
            .iter()
            .find(|((ph, n, m), _)| *ph == Phase::Update && *n == "k" && *m == Some(0))
            .map(|(_, t)| *t)
            .expect("mode-0 key present");
        assert_eq!(m0.launches, 2);
        assert_eq!(m0.flops, 150.0);
        assert_eq!(m0.bytes, 30.0);
        assert_eq!(m0.modeled_s, 3.0);
        let m1 = kernels.iter().find(|((_, _, m), _)| *m == Some(1)).map(|(_, t)| t).unwrap();
        assert_eq!(m1.launches, 1);
        assert!((m1.intensity() - 25.0 / 15.0).abs() < 1e-15);
    }

    #[test]
    fn mode_context_survives_take_but_aggregates_do_not() {
        let mut p = Profiler::new();
        p.set_mode(Some(2));
        p.record(rec(Phase::Mttkrp, 1.0, 1.0));
        let capture = p.take();
        assert_eq!(capture.kernels.len(), 1);
        assert_eq!(capture.kernel(Phase::Mttkrp, "k", Some(2)).unwrap().launches, 1);
        assert!(p.kernels().is_empty(), "take clears the aggregates");
        // The mode context is caller state: the next record is still mode 2.
        p.record(rec(Phase::Mttkrp, 1.0, 1.0));
        let ((_, _, mode), _) = p.kernels()[0];
        assert_eq!(mode, Some(2));
    }

    #[test]
    fn zero_byte_keys_report_infinite_intensity() {
        let t = KernelTotals { bytes: 0.0, flops: 5.0, ..KernelTotals::new(KernelClass::Reduce) };
        assert_eq!(t.intensity(), f64::INFINITY);
    }

    #[test]
    fn take_captures_and_clears_atomically() {
        let mut p = Profiler::with_records();
        p.record(rec(Phase::Mttkrp, 1.0, 1.0));
        p.mark("outer_iteration");
        let capture = p.take();
        assert_eq!(capture.records.len(), 1);
        assert_eq!(capture.marks.len(), 1);
        assert_eq!(capture.total_seconds(), 1.0);
        assert_eq!(capture.phase(Phase::Mttkrp).launches, 1);
        // The profiler is empty again: nothing from the first run can
        // leak into the next capture.
        assert_eq!(p.total_seconds(), 0.0);
        assert!(p.records().is_empty());
        assert!(p.marks().is_empty());
        let second = p.take();
        assert_eq!(second.total_launches(), 0);
        assert!(second.marks.is_empty());
    }
}
