//! Seeded, deterministic device fault injection.
//!
//! Real accelerators fail in ways the roofline model does not capture:
//! transient launch errors, silent memory corruption, NVLink/PCIe transfer
//! failures, and out-of-memory conditions. A [`FaultPlan`] attaches those
//! failure modes to the simulated [`Device`](crate::Device) so recovery
//! logic upstream (retry, NaN sentinels, checkpoint/restart) can be tested
//! under reproducible fault schedules.
//!
//! Determinism: every *fallible* launch or transfer draws its fault rolls
//! from a SplitMix64 hash of `(plan.seed, launch sequence number, salt)`.
//! The sequence number counts only fallible operations, so infallible
//! launches (which cannot consult the plan) never shift the schedule, and
//! the same seed always reproduces the same fault pattern for a given
//! kernel stream.
//!
//! Cost when disabled: the device holds `Option<FaultPlan>`; with `None`
//! every fallible launch pays one branch and one relaxed atomic increment —
//! no allocation, no locking.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// The kinds of injected device faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// The kernel launch failed before executing (e.g. a transient
    /// `CUDA_ERROR_LAUNCH_FAILED`). The output buffers are untouched;
    /// the launch is retryable.
    TransientLaunch,
    /// The kernel ran but silently corrupted one element of its output
    /// buffer to NaN (a simulated uncorrected memory error). Not reported
    /// to the caller — only NaN sentinels downstream can catch it.
    NanCorruption,
    /// A host-device or device-device transfer failed (link error).
    TransferFailure,
    /// Device memory exhaustion at a specific launch. One-shot: the retry
    /// draws a fresh sequence number and proceeds.
    DeviceOom,
}

impl FaultKind {
    /// Stable label used in trace events and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TransientLaunch => "transient_launch",
            FaultKind::NanCorruption => "nan_corruption",
            FaultKind::TransferFailure => "transfer_failure",
            FaultKind::DeviceOom => "device_oom",
        }
    }
}

/// A fault surfaced to the caller of a fallible launch or transfer.
///
/// Silent faults ([`FaultKind::NanCorruption`]) are never returned as
/// errors — they are only visible in the profiler's fault records and to
/// whatever numerical sentinel catches them downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFault {
    /// What failed.
    pub kind: FaultKind,
    /// The kernel or transfer name that drew the fault.
    pub kernel: &'static str,
    /// The fallible-operation sequence number that rolled the fault.
    pub seq: u64,
}

impl std::fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FaultKind::TransientLaunch => {
                write!(f, "transient launch failure in `{}` (op #{})", self.kernel, self.seq)
            }
            FaultKind::NanCorruption => {
                write!(f, "silent NaN corruption in `{}` (op #{})", self.kernel, self.seq)
            }
            FaultKind::TransferFailure => {
                write!(f, "transfer failure in `{}` (op #{})", self.kernel, self.seq)
            }
            FaultKind::DeviceOom => {
                write!(f, "device out of memory at `{}` (op #{})", self.kernel, self.seq)
            }
        }
    }
}

impl std::error::Error for DeviceFault {}

/// A deterministic, seeded schedule of injected faults.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per
/// fallible operation; `oom_at_op` fires exactly once, at the given
/// fallible-operation sequence number. `max_faults` caps the total number
/// of injected faults so chaos runs always terminate.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the per-operation hash rolls.
    pub seed: u64,
    /// Probability a fallible launch fails transiently.
    pub launch_fault_rate: f64,
    /// Probability a corruptible launch's output gets one NaN element.
    pub nan_rate: f64,
    /// Probability a fallible transfer fails.
    pub transfer_fault_rate: f64,
    /// Inject a one-shot device OOM at this fallible-operation number.
    pub oom_at_op: Option<u64>,
    /// Hard cap on total injected faults (0 = unlimited).
    pub max_faults: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for struct update).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            launch_fault_rate: 0.0,
            nan_rate: 0.0,
            transfer_fault_rate: 0.0,
            oom_at_op: None,
            max_faults: 0,
        }
    }

    /// Parses a `key=value` comma-separated spec, e.g.
    /// `seed=1,launch=0.05,nan=0.02,transfer=0.01,oom=120,max=50`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::quiet(0);
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{part}` is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("fault spec `{key}={value}`: {e}");
            match key {
                "seed" => plan.seed = value.parse().map_err(|e| bad(&e))?,
                "launch" => plan.launch_fault_rate = value.parse().map_err(|e| bad(&e))?,
                "nan" => plan.nan_rate = value.parse().map_err(|e| bad(&e))?,
                "transfer" => plan.transfer_fault_rate = value.parse().map_err(|e| bad(&e))?,
                "oom" => plan.oom_at_op = Some(value.parse().map_err(|e| bad(&e))?),
                "max" => plan.max_faults = value.parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        for (name, rate) in [
            ("launch", plan.launch_fault_rate),
            ("nan", plan.nan_rate),
            ("transfer", plan.transfer_fault_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate `{name}` must be in [0, 1], got {rate}"));
            }
        }
        Ok(plan)
    }
}

/// Per-device fault state: the immutable plan plus the fallible-operation
/// counter and the injected-fault counter (atomics, so the device stays
/// `Sync` without adding lock traffic to the launch path).
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    next_op: AtomicU64,
    injected: AtomicU64,
}

/// SplitMix64 finalizer — the same mixer `cstf_core::auntf::seeded_factors`
/// uses, applied to a combined `(seed, op, salt)` state.
fn mix(seed: u64, op: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(op.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(salt.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform roll in `[0, 1)` for `(seed, op, salt)`.
fn roll(seed: u64, op: u64, salt: u64) -> f64 {
    (mix(seed, op, salt) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        Self { plan, next_op: AtomicU64::new(0), injected: AtomicU64::new(0) }
    }

    /// Draws the next fallible-operation sequence number.
    pub(crate) fn next_op(&self) -> u64 {
        self.next_op.fetch_add(1, Ordering::Relaxed)
    }

    /// True if the fault budget still allows injecting; reserves one slot.
    fn budget_allows(&self) -> bool {
        if self.plan.max_faults == 0 {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        self.injected
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.plan.max_faults).then_some(n + 1)
            })
            .is_ok()
    }

    /// Rolls the pre-launch faults (OOM, transient failure) for op `op`.
    pub(crate) fn launch_fault(&self, kernel: &'static str, op: u64) -> Option<DeviceFault> {
        if self.plan.oom_at_op == Some(op) && self.budget_allows() {
            return Some(DeviceFault { kind: FaultKind::DeviceOom, kernel, seq: op });
        }
        if self.plan.launch_fault_rate > 0.0
            && roll(self.plan.seed, op, SALT_LAUNCH) < self.plan.launch_fault_rate
            && self.budget_allows()
        {
            return Some(DeviceFault { kind: FaultKind::TransientLaunch, kernel, seq: op });
        }
        None
    }

    /// Rolls silent output corruption for op `op`; returns the flat index
    /// to poison in an output of length `len`.
    pub(crate) fn corruption_index(&self, op: u64, len: usize) -> Option<usize> {
        if len == 0 || self.plan.nan_rate == 0.0 {
            return None;
        }
        if roll(self.plan.seed, op, SALT_NAN) < self.plan.nan_rate && self.budget_allows() {
            return Some((mix(self.plan.seed, op, SALT_NAN_IDX) % len as u64) as usize);
        }
        None
    }

    /// Rolls a transfer/link failure for op `op`.
    pub(crate) fn transfer_fault(&self, name: &'static str, op: u64) -> Option<DeviceFault> {
        if self.plan.transfer_fault_rate > 0.0
            && roll(self.plan.seed, op, SALT_TRANSFER) < self.plan.transfer_fault_rate
            && self.budget_allows()
        {
            return Some(DeviceFault { kind: FaultKind::TransferFailure, kernel: name, seq: op });
        }
        None
    }
}

const SALT_LAUNCH: u64 = 0x4c41554e43480001;
const SALT_NAN: u64 = 0x4e414e0000000002;
const SALT_NAN_IDX: u64 = 0x4e414e0000000003;
const SALT_TRANSFER: u64 = 0x5452414e53460004;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_faults() {
        let state = FaultState::new(FaultPlan::quiet(42));
        for op in 0..10_000 {
            assert!(state.launch_fault("k", op).is_none());
            assert!(state.corruption_index(op, 64).is_none());
            assert!(state.transfer_fault("t", op).is_none());
        }
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let plan = FaultPlan { launch_fault_rate: 0.1, ..FaultPlan::quiet(7) };
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        let faults = |s: &FaultState| {
            (0..1000).filter(|&op| s.launch_fault("k", op).is_some()).collect::<Vec<_>>()
        };
        let fa = faults(&a);
        assert_eq!(fa, faults(&b));
        assert!(!fa.is_empty(), "a 10% rate over 1000 ops should fire");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mk =
            |seed| FaultState::new(FaultPlan { launch_fault_rate: 0.1, ..FaultPlan::quiet(seed) });
        let faults = |s: &FaultState| {
            (0..1000).filter(|&op| s.launch_fault("k", op).is_some()).collect::<Vec<_>>()
        };
        assert_ne!(faults(&mk(1)), faults(&mk(2)));
    }

    #[test]
    fn rate_is_respected_roughly() {
        let state = FaultState::new(FaultPlan { launch_fault_rate: 0.2, ..FaultPlan::quiet(3) });
        let n = (0..10_000).filter(|&op| state.launch_fault("k", op).is_some()).count();
        assert!((1500..2500).contains(&n), "got {n} faults for rate 0.2");
    }

    #[test]
    fn oom_fires_exactly_once_at_the_requested_op() {
        let state = FaultState::new(FaultPlan { oom_at_op: Some(5), ..FaultPlan::quiet(0) });
        for op in 0..10 {
            let fault = state.launch_fault("k", op);
            if op == 5 {
                assert_eq!(fault.map(|f| f.kind), Some(FaultKind::DeviceOom));
            } else {
                assert!(fault.is_none());
            }
        }
    }

    #[test]
    fn max_faults_caps_injection() {
        let state = FaultState::new(FaultPlan {
            launch_fault_rate: 1.0,
            max_faults: 3,
            ..FaultPlan::quiet(9)
        });
        let n = (0..100).filter(|&op| state.launch_fault("k", op).is_some()).count();
        assert_eq!(n, 3);
    }

    #[test]
    fn corruption_index_is_in_bounds_and_deterministic() {
        let plan = FaultPlan { nan_rate: 0.5, ..FaultPlan::quiet(11) };
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        for op in 0..200 {
            let ia = a.corruption_index(op, 48);
            assert_eq!(ia, b.corruption_index(op, 48));
            if let Some(i) = ia {
                assert!(i < 48);
            }
        }
    }

    #[test]
    fn spec_parsing_round_trips() {
        let plan = FaultPlan::parse("seed=5, launch=0.1, nan=0.02, transfer=0.3, oom=12, max=7")
            .expect("valid spec");
        assert_eq!(plan.seed, 5);
        assert_eq!(plan.launch_fault_rate, 0.1);
        assert_eq!(plan.nan_rate, 0.02);
        assert_eq!(plan.transfer_fault_rate, 0.3);
        assert_eq!(plan.oom_at_op, Some(12));
        assert_eq!(plan.max_faults, 7);
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(FaultPlan::parse("launch").is_err(), "missing =");
        assert!(FaultPlan::parse("bogus=1").is_err(), "unknown key");
        assert!(FaultPlan::parse("launch=2.0").is_err(), "rate out of range");
        assert!(FaultPlan::parse("seed=abc").is_err(), "non-numeric");
    }

    #[test]
    fn fault_display_names_the_kernel() {
        let f = DeviceFault { kind: FaultKind::TransientLaunch, kernel: "mttkrp", seq: 4 };
        assert!(f.to_string().contains("mttkrp"));
        assert!(f.to_string().contains("transient"));
    }
}
