//! Seeded, deterministic device fault injection.
//!
//! Real accelerators fail in ways the roofline model does not capture:
//! transient launch errors, silent memory corruption, NVLink/PCIe transfer
//! failures, and out-of-memory conditions. A [`FaultPlan`] attaches those
//! failure modes to the simulated [`Device`](crate::Device) so recovery
//! logic upstream (retry, NaN sentinels, checkpoint/restart) can be tested
//! under reproducible fault schedules.
//!
//! Determinism: every *fallible* launch or transfer draws its fault rolls
//! from a SplitMix64 hash of `(plan.seed, launch sequence number, salt)`.
//! The sequence number counts only fallible operations, so infallible
//! launches (which cannot consult the plan) never shift the schedule, and
//! the same seed always reproduces the same fault pattern for a given
//! kernel stream.
//!
//! Beyond the per-device stochastic kinds, a plan can carry *group-scoped*
//! faults ([`GroupFault`]) targeting members of a
//! [`DeviceGroup`](crate::DeviceGroup): whole-device loss at a chosen
//! fallible op or outer iteration ([`LossPoint`]), stragglers that stretch a
//! device's modeled time by a constant factor, and degraded links that
//! stretch collective time on an edge. Loss is persistent — once a device
//! is lost every subsequent fallible op fails with
//! [`FaultKind::DeviceLoss`] — while stragglers and degraded links never
//! touch numerics or control flow, only modeled time (and the
//! [`GroupHealth`](crate::group::GroupHealth) deadline monitor).
//!
//! Cost when disabled: the device holds `Option<FaultPlan>`; with `None`
//! every fallible launch pays one branch and one relaxed atomic increment —
//! no allocation, no locking.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// The kinds of injected device faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// The kernel launch failed before executing (e.g. a transient
    /// `CUDA_ERROR_LAUNCH_FAILED`). The output buffers are untouched;
    /// the launch is retryable.
    TransientLaunch,
    /// The kernel ran but silently corrupted one element of its output
    /// buffer to NaN (a simulated uncorrected memory error). Not reported
    /// to the caller — only NaN sentinels downstream can catch it.
    NanCorruption,
    /// A host-device or device-device transfer failed (link error).
    TransferFailure,
    /// Device memory exhaustion at a specific launch. One-shot: the retry
    /// draws a fresh sequence number and proceeds.
    DeviceOom,
    /// The whole device dropped off the bus. Persistent: every fallible
    /// operation after the loss point fails with this kind — only the
    /// group-level shrink-to-survivors ladder can make progress.
    DeviceLoss,
    /// A deadline trip attributed to a straggling device: its modeled time
    /// exceeded the collective deadline budget. Never returned from a
    /// launch — recorded by [`GroupHealth`](crate::group::GroupHealth).
    Straggler,
    /// A deadline trip attributed to a degraded link on the collective
    /// ring. Never returned from a launch — recorded by
    /// [`GroupHealth`](crate::group::GroupHealth).
    LinkDegrade,
}

impl FaultKind {
    /// Stable label used in trace events and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TransientLaunch => "transient_launch",
            FaultKind::NanCorruption => "nan_corruption",
            FaultKind::TransferFailure => "transfer_failure",
            FaultKind::DeviceOom => "device_oom",
            FaultKind::DeviceLoss => "device_loss",
            FaultKind::Straggler => "straggler",
            FaultKind::LinkDegrade => "link_degrade",
        }
    }

    /// Every kind, in declaration order (drives metric export).
    pub fn all() -> [FaultKind; 7] {
        [
            FaultKind::TransientLaunch,
            FaultKind::NanCorruption,
            FaultKind::TransferFailure,
            FaultKind::DeviceOom,
            FaultKind::DeviceLoss,
            FaultKind::Straggler,
            FaultKind::LinkDegrade,
        ]
    }
}

/// A fault surfaced to the caller of a fallible launch or transfer.
///
/// Silent faults ([`FaultKind::NanCorruption`]) are never returned as
/// errors — they are only visible in the profiler's fault records and to
/// whatever numerical sentinel catches them downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFault {
    /// What failed.
    pub kind: FaultKind,
    /// The kernel or transfer name that drew the fault.
    pub kernel: &'static str,
    /// The fallible-operation sequence number that rolled the fault.
    pub seq: u64,
}

impl std::fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FaultKind::TransientLaunch => {
                write!(f, "transient launch failure in `{}` (op #{})", self.kernel, self.seq)
            }
            FaultKind::NanCorruption => {
                write!(f, "silent NaN corruption in `{}` (op #{})", self.kernel, self.seq)
            }
            FaultKind::TransferFailure => {
                write!(f, "transfer failure in `{}` (op #{})", self.kernel, self.seq)
            }
            FaultKind::DeviceOom => {
                write!(f, "device out of memory at `{}` (op #{})", self.kernel, self.seq)
            }
            FaultKind::DeviceLoss => {
                write!(f, "device lost before `{}` (op #{})", self.kernel, self.seq)
            }
            FaultKind::Straggler => {
                write!(f, "straggler deadline trip at `{}` (op #{})", self.kernel, self.seq)
            }
            FaultKind::LinkDegrade => {
                write!(f, "degraded-link deadline trip at `{}` (op #{})", self.kernel, self.seq)
            }
        }
    }
}

impl std::error::Error for DeviceFault {}

/// When a [`GroupFault::DeviceLoss`] takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossPoint {
    /// The device dies at this fallible-operation sequence number (every
    /// fallible op `>= n` fails).
    Op(u64),
    /// The device dies at the start of this outer iteration (epoch), as
    /// counted by [`Device::advance_epoch`](crate::Device::advance_epoch).
    Iter(u64),
}

/// A group-scoped fault targeting a member (or link) of a
/// [`DeviceGroup`](crate::DeviceGroup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupFault {
    /// Device `device` drops off the bus at `at_launch` and never returns.
    DeviceLoss {
        /// Group member index (position in the group's device vector).
        device: usize,
        /// When the loss takes effect.
        at_launch: LossPoint,
    },
    /// Device `device` runs `slowdown`× slower than modeled (modeled time
    /// only; numerics are untouched, so runs stay bitwise-identical).
    Straggler {
        /// Group member index.
        device: usize,
        /// Modeled-time multiplier, `>= 1`.
        slowdown: f64,
    },
    /// The link between members `edge.0` and `edge.1` carries `factor`×
    /// the modeled collective time (modeled time only).
    LinkDegrade {
        /// Unordered pair of group member indices.
        edge: (usize, usize),
        /// Modeled-time multiplier, `>= 1`.
        factor: f64,
    },
}

impl GroupFault {
    /// True when this fault rides on group member `d`'s own device plan
    /// (link degradation is a group-level property, not a member one).
    pub fn targets(&self, d: usize) -> bool {
        match *self {
            GroupFault::DeviceLoss { device, .. } | GroupFault::Straggler { device, .. } => {
                device == d
            }
            GroupFault::LinkDegrade { .. } => false,
        }
    }
}

/// A deterministic, seeded schedule of injected faults.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per
/// fallible operation; `oom_at_op` fires exactly once, at the given
/// fallible-operation sequence number. `max_faults` caps the total number
/// of injected faults so chaos runs always terminate. `group` carries
/// group-scoped faults; they are distributed to members by
/// [`FaultPlan::for_group_member`] and are *not* subject to `max_faults`
/// (device loss is a persistent condition, not a budgeted injection).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the per-operation hash rolls.
    pub seed: u64,
    /// Probability a fallible launch fails transiently.
    pub launch_fault_rate: f64,
    /// Probability a corruptible launch's output gets one NaN element.
    pub nan_rate: f64,
    /// Probability a fallible transfer fails.
    pub transfer_fault_rate: f64,
    /// Inject a one-shot device OOM at this fallible-operation number.
    pub oom_at_op: Option<u64>,
    /// Hard cap on total injected faults (0 = unlimited).
    pub max_faults: u64,
    /// Group-scoped faults (device loss, stragglers, degraded links).
    pub group: Vec<GroupFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for struct update).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            launch_fault_rate: 0.0,
            nan_rate: 0.0,
            transfer_fault_rate: 0.0,
            oom_at_op: None,
            max_faults: 0,
            group: Vec::new(),
        }
    }

    /// Parses a comma-separated spec mixing `key=value` entries
    /// (`seed=1,launch=0.05,nan=0.02,transfer=0.01,oom=120,max=50`) with
    /// group-fault entries:
    ///
    /// * `device-loss:DEV@itN` — lose device `DEV` at outer iteration `N`
    ///   (`device-loss:2@it7`); `@opN` pins the loss to fallible op `N`.
    /// * `straggler:DEVxF` — device `DEV` runs `F`× slower
    ///   (`straggler:1x8`).
    /// * `link-degrade:A-BxF` — the `A↔B` link runs `F`× slower
    ///   (`link-degrade:0-3x20`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::quiet(0);
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if let Some((kind, body)) = part.split_once(':') {
                plan.group.push(parse_group_fault(kind, body)?);
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{part}` is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("fault spec `{key}={value}`: {e}");
            match key {
                "seed" => plan.seed = value.parse().map_err(|e| bad(&e))?,
                "launch" => plan.launch_fault_rate = value.parse().map_err(|e| bad(&e))?,
                "nan" => plan.nan_rate = value.parse().map_err(|e| bad(&e))?,
                "transfer" => plan.transfer_fault_rate = value.parse().map_err(|e| bad(&e))?,
                "oom" => plan.oom_at_op = Some(value.parse().map_err(|e| bad(&e))?),
                "max" => plan.max_faults = value.parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        for (name, rate) in [
            ("launch", plan.launch_fault_rate),
            ("nan", plan.nan_rate),
            ("transfer", plan.transfer_fault_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate `{name}` must be in [0, 1], got {rate}"));
            }
        }
        Ok(plan)
    }

    /// The plan group member `d` should carry, or `None` when `d` needs no
    /// fault state at all. The stochastic per-device kinds stay on member 0
    /// (matching the single-plan CLI contract where one `--faults` spec
    /// drives one fallible-op schedule); group faults are filtered to those
    /// targeting `d`.
    pub fn for_group_member(&self, d: usize) -> Option<FaultPlan> {
        let group: Vec<GroupFault> = self.group.iter().filter(|g| g.targets(d)).copied().collect();
        if d == 0 {
            return Some(FaultPlan { group, ..self.clone() });
        }
        if group.is_empty() {
            return None;
        }
        Some(FaultPlan { group, ..FaultPlan::quiet(self.seed) })
    }

    /// The modeled-time multiplier on the link between members `a` and `b`
    /// (unordered), `1.0` when undegraded. The worst edge wins.
    pub fn link_factor(&self, a: usize, b: usize) -> f64 {
        self.group
            .iter()
            .filter_map(|g| match *g {
                GroupFault::LinkDegrade { edge, factor }
                    if (edge == (a, b)) || (edge == (b, a)) =>
                {
                    Some(factor)
                }
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// True when any group-scoped fault is present.
    pub fn has_group_faults(&self) -> bool {
        !self.group.is_empty()
    }
}

/// Parses one `kind:body` group-fault entry (see [`FaultPlan::parse`]).
fn parse_group_fault(kind: &str, body: &str) -> Result<GroupFault, String> {
    let bad = |msg: &str| format!("fault spec `{kind}:{body}`: {msg}");
    match kind {
        "device-loss" => {
            let (dev, at) =
                body.split_once('@').ok_or_else(|| bad("expected DEV@itN or DEV@opN"))?;
            let device: usize = dev.parse().map_err(|_| bad("bad device index"))?;
            let at_launch = if let Some(n) = at.strip_prefix("it") {
                LossPoint::Iter(n.parse().map_err(|_| bad("bad iteration number"))?)
            } else if let Some(n) = at.strip_prefix("op") {
                LossPoint::Op(n.parse().map_err(|_| bad("bad op number"))?)
            } else {
                return Err(bad("loss point must be itN or opN"));
            };
            Ok(GroupFault::DeviceLoss { device, at_launch })
        }
        "straggler" => {
            let (dev, f) = body.split_once('x').ok_or_else(|| bad("expected DEVxFACTOR"))?;
            let device: usize = dev.parse().map_err(|_| bad("bad device index"))?;
            let slowdown: f64 = f.parse().map_err(|_| bad("bad slowdown factor"))?;
            if slowdown < 1.0 || !slowdown.is_finite() {
                return Err(bad("slowdown must be a finite factor >= 1"));
            }
            Ok(GroupFault::Straggler { device, slowdown })
        }
        "link-degrade" => {
            let (edge, f) = body.split_once('x').ok_or_else(|| bad("expected A-BxFACTOR"))?;
            let (a, b) = edge.split_once('-').ok_or_else(|| bad("edge must be A-B"))?;
            let a: usize = a.parse().map_err(|_| bad("bad device index"))?;
            let b: usize = b.parse().map_err(|_| bad("bad device index"))?;
            let factor: f64 = f.parse().map_err(|_| bad("bad link factor"))?;
            if factor < 1.0 || !factor.is_finite() {
                return Err(bad("link factor must be a finite factor >= 1"));
            }
            Ok(GroupFault::LinkDegrade { edge: (a, b), factor })
        }
        other => Err(format!("unknown group fault kind `{other}`")),
    }
}

/// Per-device fault state: the immutable plan plus the fallible-operation
/// counter, the injected-fault counter, and the outer-iteration epoch
/// (atomics, so the device stays `Sync` without adding lock traffic to the
/// launch path).
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    next_op: AtomicU64,
    injected: AtomicU64,
    epoch: AtomicU64,
}

/// SplitMix64 finalizer — the same mixer `cstf_core::auntf::seeded_factors`
/// uses, applied to a combined `(seed, op, salt)` state.
fn mix(seed: u64, op: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(op.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(salt.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform roll in `[0, 1)` for `(seed, op, salt)`.
fn roll(seed: u64, op: u64, salt: u64) -> f64 {
    (mix(seed, op, salt) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            next_op: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// Draws the next fallible-operation sequence number.
    pub(crate) fn next_op(&self) -> u64 {
        self.next_op.fetch_add(1, Ordering::Relaxed)
    }

    /// Advances the outer-iteration epoch (loss points given as `itN`
    /// trigger against this counter).
    pub(crate) fn advance_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// True once the device's loss point (if any) has been reached for
    /// fallible op `op`.
    fn loss_due(&self, op: u64) -> bool {
        let epoch = self.epoch.load(Ordering::Relaxed);
        self.plan.group.iter().any(|g| match *g {
            GroupFault::DeviceLoss { at_launch: LossPoint::Op(n), .. } => op >= n,
            GroupFault::DeviceLoss { at_launch: LossPoint::Iter(n), .. } => epoch >= n,
            _ => false,
        })
    }

    /// True when the device is lost as of the ops already drawn — the
    /// group-level view the recovery ladder uses to identify the dead
    /// member without drawing new ops.
    pub(crate) fn lost_now(&self) -> bool {
        let drawn = self.next_op.load(Ordering::Relaxed);
        let epoch = self.epoch.load(Ordering::Relaxed);
        self.plan.group.iter().any(|g| match *g {
            GroupFault::DeviceLoss { at_launch: LossPoint::Op(n), .. } => drawn > n,
            GroupFault::DeviceLoss { at_launch: LossPoint::Iter(n), .. } => epoch >= n,
            _ => false,
        })
    }

    /// The straggler modeled-time multiplier for this device (`1.0` when
    /// healthy; the worst configured slowdown wins).
    pub(crate) fn slowdown(&self) -> f64 {
        self.plan
            .group
            .iter()
            .filter_map(|g| match *g {
                GroupFault::Straggler { slowdown, .. } => Some(slowdown),
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// True if the fault budget still allows injecting; reserves one slot.
    fn budget_allows(&self) -> bool {
        if self.plan.max_faults == 0 {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        self.injected
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.plan.max_faults).then_some(n + 1)
            })
            .is_ok()
    }

    /// Rolls the pre-launch faults (loss, OOM, transient failure) for op
    /// `op`. Loss is persistent and exempt from the fault budget.
    pub(crate) fn launch_fault(&self, kernel: &'static str, op: u64) -> Option<DeviceFault> {
        if self.loss_due(op) {
            return Some(DeviceFault { kind: FaultKind::DeviceLoss, kernel, seq: op });
        }
        if self.plan.oom_at_op == Some(op) && self.budget_allows() {
            return Some(DeviceFault { kind: FaultKind::DeviceOom, kernel, seq: op });
        }
        if self.plan.launch_fault_rate > 0.0
            && roll(self.plan.seed, op, SALT_LAUNCH) < self.plan.launch_fault_rate
            && self.budget_allows()
        {
            return Some(DeviceFault { kind: FaultKind::TransientLaunch, kernel, seq: op });
        }
        None
    }

    /// Rolls silent output corruption for op `op`; returns the flat index
    /// to poison in an output of length `len`.
    pub(crate) fn corruption_index(&self, op: u64, len: usize) -> Option<usize> {
        if len == 0 || self.plan.nan_rate == 0.0 {
            return None;
        }
        if roll(self.plan.seed, op, SALT_NAN) < self.plan.nan_rate && self.budget_allows() {
            return Some((mix(self.plan.seed, op, SALT_NAN_IDX) % len as u64) as usize);
        }
        None
    }

    /// Rolls a transfer/link failure for op `op`. A lost device fails its
    /// transfers with [`FaultKind::DeviceLoss`], like its launches.
    pub(crate) fn transfer_fault(&self, name: &'static str, op: u64) -> Option<DeviceFault> {
        if self.loss_due(op) {
            return Some(DeviceFault { kind: FaultKind::DeviceLoss, kernel: name, seq: op });
        }
        if self.plan.transfer_fault_rate > 0.0
            && roll(self.plan.seed, op, SALT_TRANSFER) < self.plan.transfer_fault_rate
            && self.budget_allows()
        {
            return Some(DeviceFault { kind: FaultKind::TransferFailure, kernel: name, seq: op });
        }
        None
    }
}

const SALT_LAUNCH: u64 = 0x4c41554e43480001;
const SALT_NAN: u64 = 0x4e414e0000000002;
const SALT_NAN_IDX: u64 = 0x4e414e0000000003;
const SALT_TRANSFER: u64 = 0x5452414e53460004;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_faults() {
        let state = FaultState::new(FaultPlan::quiet(42));
        for op in 0..10_000 {
            assert!(state.launch_fault("k", op).is_none());
            assert!(state.corruption_index(op, 64).is_none());
            assert!(state.transfer_fault("t", op).is_none());
        }
        assert!(!state.lost_now());
        assert_eq!(state.slowdown(), 1.0);
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let plan = FaultPlan { launch_fault_rate: 0.1, ..FaultPlan::quiet(7) };
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        let faults = |s: &FaultState| {
            (0..1000).filter(|&op| s.launch_fault("k", op).is_some()).collect::<Vec<_>>()
        };
        let fa = faults(&a);
        assert_eq!(fa, faults(&b));
        assert!(!fa.is_empty(), "a 10% rate over 1000 ops should fire");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mk =
            |seed| FaultState::new(FaultPlan { launch_fault_rate: 0.1, ..FaultPlan::quiet(seed) });
        let faults = |s: &FaultState| {
            (0..1000).filter(|&op| s.launch_fault("k", op).is_some()).collect::<Vec<_>>()
        };
        assert_ne!(faults(&mk(1)), faults(&mk(2)));
    }

    #[test]
    fn rate_is_respected_roughly() {
        let state = FaultState::new(FaultPlan { launch_fault_rate: 0.2, ..FaultPlan::quiet(3) });
        let n = (0..10_000).filter(|&op| state.launch_fault("k", op).is_some()).count();
        assert!((1500..2500).contains(&n), "got {n} faults for rate 0.2");
    }

    #[test]
    fn oom_fires_exactly_once_at_the_requested_op() {
        let state = FaultState::new(FaultPlan { oom_at_op: Some(5), ..FaultPlan::quiet(0) });
        for op in 0..10 {
            let fault = state.launch_fault("k", op);
            if op == 5 {
                assert_eq!(fault.map(|f| f.kind), Some(FaultKind::DeviceOom));
            } else {
                assert!(fault.is_none());
            }
        }
    }

    #[test]
    fn max_faults_caps_injection() {
        let state = FaultState::new(FaultPlan {
            launch_fault_rate: 1.0,
            max_faults: 3,
            ..FaultPlan::quiet(9)
        });
        let n = (0..100).filter(|&op| state.launch_fault("k", op).is_some()).count();
        assert_eq!(n, 3);
    }

    #[test]
    fn corruption_index_is_in_bounds_and_deterministic() {
        let plan = FaultPlan { nan_rate: 0.5, ..FaultPlan::quiet(11) };
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        for op in 0..200 {
            let ia = a.corruption_index(op, 48);
            assert_eq!(ia, b.corruption_index(op, 48));
            if let Some(i) = ia {
                assert!(i < 48);
            }
        }
    }

    #[test]
    fn spec_parsing_round_trips() {
        let plan = FaultPlan::parse("seed=5, launch=0.1, nan=0.02, transfer=0.3, oom=12, max=7")
            .expect("valid spec");
        assert_eq!(plan.seed, 5);
        assert_eq!(plan.launch_fault_rate, 0.1);
        assert_eq!(plan.nan_rate, 0.02);
        assert_eq!(plan.transfer_fault_rate, 0.3);
        assert_eq!(plan.oom_at_op, Some(12));
        assert_eq!(plan.max_faults, 7);
        assert!(plan.group.is_empty());
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(FaultPlan::parse("launch").is_err(), "missing =");
        assert!(FaultPlan::parse("bogus=1").is_err(), "unknown key");
        assert!(FaultPlan::parse("launch=2.0").is_err(), "rate out of range");
        assert!(FaultPlan::parse("seed=abc").is_err(), "non-numeric");
    }

    #[test]
    fn group_fault_specs_parse() {
        let plan = FaultPlan::parse("seed=2,device-loss:2@it7,straggler:1x8,link-degrade:0-3x20.5")
            .expect("valid group spec");
        assert_eq!(plan.seed, 2);
        assert_eq!(
            plan.group,
            vec![
                GroupFault::DeviceLoss { device: 2, at_launch: LossPoint::Iter(7) },
                GroupFault::Straggler { device: 1, slowdown: 8.0 },
                GroupFault::LinkDegrade { edge: (0, 3), factor: 20.5 },
            ]
        );
        let op = FaultPlan::parse("device-loss:0@op12").unwrap();
        assert_eq!(
            op.group,
            vec![GroupFault::DeviceLoss { device: 0, at_launch: LossPoint::Op(12) }]
        );
    }

    #[test]
    fn group_fault_specs_reject_garbage() {
        assert!(FaultPlan::parse("device-loss:2").is_err(), "missing loss point");
        assert!(FaultPlan::parse("device-loss:2@soon").is_err(), "bad loss point");
        assert!(FaultPlan::parse("straggler:1x0.5").is_err(), "slowdown < 1");
        assert!(FaultPlan::parse("link-degrade:0x3").is_err(), "missing edge");
        assert!(FaultPlan::parse("link-degrade:0-1xinf").is_err(), "non-finite factor");
        assert!(FaultPlan::parse("meteor:1x2").is_err(), "unknown group kind");
    }

    #[test]
    fn for_group_member_splits_targets_and_keeps_stochastic_on_zero() {
        let plan = FaultPlan::parse("seed=9,launch=0.5,device-loss:2@it1,straggler:1x4").unwrap();
        let p0 = plan.for_group_member(0).expect("member 0 keeps the stochastic kinds");
        assert_eq!(p0.launch_fault_rate, 0.5);
        assert!(p0.group.is_empty());
        let p1 = plan.for_group_member(1).expect("member 1 is a straggler");
        assert_eq!(p1.launch_fault_rate, 0.0, "stochastic kinds stay on member 0");
        assert_eq!(p1.group, vec![GroupFault::Straggler { device: 1, slowdown: 4.0 }]);
        let p2 = plan.for_group_member(2).expect("member 2 dies");
        assert_eq!(p2.group.len(), 1);
        assert!(plan.for_group_member(3).is_none(), "untargeted members carry no state");
    }

    #[test]
    fn link_factor_takes_the_worst_matching_edge_either_direction() {
        let plan = FaultPlan::parse("link-degrade:0-3x20,link-degrade:3-0x5").unwrap();
        assert_eq!(plan.link_factor(0, 3), 20.0);
        assert_eq!(plan.link_factor(3, 0), 20.0);
        assert_eq!(plan.link_factor(1, 2), 1.0);
    }

    #[test]
    fn op_loss_is_persistent_and_budget_exempt() {
        let state = FaultState::new(FaultPlan {
            max_faults: 1,
            group: vec![GroupFault::DeviceLoss { device: 0, at_launch: LossPoint::Op(3) }],
            ..FaultPlan::quiet(0)
        });
        for _ in 0..3 {
            let op = state.next_op();
            assert!(state.launch_fault("k", op).is_none());
        }
        assert!(!state.lost_now(), "op 3 not drawn yet");
        for _ in 3..10 {
            let op = state.next_op();
            let f = state.launch_fault("k", op).expect("persistent loss");
            assert_eq!(f.kind, FaultKind::DeviceLoss);
        }
        assert!(state.transfer_fault("t", state.next_op()).is_some(), "transfers fail too");
        assert!(state.lost_now());
    }

    #[test]
    fn iter_loss_triggers_on_epoch_advance() {
        let state = FaultState::new(FaultPlan {
            group: vec![GroupFault::DeviceLoss { device: 0, at_launch: LossPoint::Iter(2) }],
            ..FaultPlan::quiet(0)
        });
        assert!(state.launch_fault("k", 0).is_none());
        state.advance_epoch();
        assert!(state.launch_fault("k", 1).is_none(), "epoch 1 < loss point 2");
        assert!(!state.lost_now());
        state.advance_epoch();
        let f = state.launch_fault("k", 2).expect("dead at epoch 2");
        assert_eq!(f.kind, FaultKind::DeviceLoss);
        assert!(state.lost_now());
    }

    #[test]
    fn straggler_slowdown_reads_the_worst_factor() {
        let state = FaultState::new(FaultPlan {
            group: vec![
                GroupFault::Straggler { device: 0, slowdown: 3.0 },
                GroupFault::Straggler { device: 0, slowdown: 8.0 },
            ],
            ..FaultPlan::quiet(0)
        });
        assert_eq!(state.slowdown(), 8.0);
        assert!(state.launch_fault("k", 0).is_none(), "stragglers never fail launches");
    }

    #[test]
    fn fault_display_names_the_kernel() {
        let f = DeviceFault { kind: FaultKind::TransientLaunch, kernel: "mttkrp", seq: 4 };
        assert!(f.to_string().contains("mttkrp"));
        assert!(f.to_string().contains("transient"));
        let l = DeviceFault { kind: FaultKind::DeviceLoss, kernel: "mttkrp_shard", seq: 9 };
        assert!(l.to_string().contains("lost"));
    }
}
