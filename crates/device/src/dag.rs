//! Causal execution DAG over metered ops.
//!
//! Every metered op — kernel launch, h2d/d2h transfer, tile stream,
//! collective step — becomes a node with a modeled duration and explicit
//! dependency edges, reconstructed from the per-device record streams the
//! profilers already keep:
//!
//! * **program order** on one device: op `k+1` depends on op `k` (the
//!   simulated device is one stream, like the paper's implementation);
//! * **collective rendezvous** across devices: every member of one
//!   [`DeviceGroup`](crate::group::DeviceGroup) collective carries the
//!   same `collective_seq`, and the instance cannot start until *every*
//!   member has finished its preceding ops.
//!
//! [`analyze`] schedules the DAG (each op as early as its dependencies
//! allow), which yields:
//!
//! * the **modeled critical path** — the longest dependency chain, equal
//!   to the schedule's makespan. For a serial single-device run the chain
//!   is the whole record stream, so `critical_path_s == total_modeled_s`
//!   *bit-exactly* (same left-to-right fold);
//! * **per-device attribution** — `busy` (sum of charged durations),
//!   `stall` (time spent blocked at a rendezvous waiting for slower
//!   members), and `idle` (the residual `span - busy - stall`: trailing
//!   time after the device's stream ends);
//! * **per-op slack** — how far an op can slip without growing the
//!   makespan (zero along the critical path);
//! * **overlap efficiency per link** — for each transfer name, the hidden
//!   fraction `(raw - exposed) / raw` where `raw` is the un-overlapped
//!   link time ([`KernelRecord::raw_s`]) and `exposed` the charged time.
//!   For tiled runs this reproduces `TilingReport`'s accounting bitwise
//!   (same values, same fold order);
//! * **what-if projections** ([`apply_what_ifs`]) — deterministic bounds
//!   obtained by zeroing durations (`nvlink=inf` zeroes collectives,
//!   `pcie=0` zeroes host transfers, `overlap=perfect` hides host
//!   transfers while keeping their raw link time). Zeroing durations can
//!   only move starts earlier, so every projection is monotonically
//!   non-increasing in the critical path.
//!
//! Ops round-trip through a line-oriented JSON artifact (`ops.jsonl`,
//! [`write_ops_jsonl`]/[`read_ops_jsonl`]) that deliberately excludes
//! wall-clock fields, so the downstream `cstf critical-path` output is
//! byte-deterministic across runs.

use std::collections::BTreeMap;
use std::io::Write;

use serde::Serialize;
use serde_json::Value;

use crate::profiler::{KernelRecord, Phase};

/// One DAG node: a metered op lifted out of a [`KernelRecord`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OpSpec {
    /// Owning device (group member index; `0` for single-device runs).
    pub device: usize,
    /// Op name (kernel or transfer name).
    pub name: String,
    /// Phase attribution.
    pub phase: Phase,
    /// Charged modeled duration in seconds (the exposed remainder for
    /// overlapped transfers) — the DAG node's duration.
    pub modeled_s: f64,
    /// Un-overlapped modeled seconds (equals `modeled_s` except for
    /// overlapped transfers); only used for overlap-efficiency.
    pub raw_s: f64,
    /// Tensor-mode context at record time.
    pub mode: Option<u32>,
    /// Group-wide collective instance id (`None` for non-collectives).
    pub collective_seq: Option<u32>,
}

/// Lifts one device's record stream into DAG nodes, in record order.
pub fn ops_from_records(device: usize, records: &[KernelRecord]) -> Vec<OpSpec> {
    records
        .iter()
        .map(|r| OpSpec {
            device,
            name: r.name.to_string(),
            phase: r.phase,
            modeled_s: r.modeled_s,
            raw_s: r.raw_s,
            mode: r.mode,
            collective_seq: r.collective_seq,
        })
        .collect()
}

/// Writes ops as line-oriented JSON (one op per line). The format omits
/// every wall-clock quantity, so two runs of the same configuration
/// produce byte-identical artifacts.
pub fn write_ops_jsonl<W: Write>(ops: &[OpSpec], mut w: W) -> std::io::Result<()> {
    for op in ops {
        let line = serde_json::to_string(op).expect("op serializes");
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Parses an `ops.jsonl` artifact back into DAG nodes.
pub fn read_ops_jsonl(text: &str) -> Result<Vec<OpSpec>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, line)| {
            let v: Value =
                serde_json::from_str(line).map_err(|e| format!("ops.jsonl line {}: {e}", i + 1))?;
            op_from_value(&v).map_err(|e| format!("ops.jsonl line {}: {e}", i + 1))
        })
        .collect()
}

fn op_from_value(v: &Value) -> Result<OpSpec, String> {
    let field = |name: &str| v.get(name).ok_or_else(|| format!("missing field '{name}'"));
    let f64_field =
        |name: &str| field(name)?.as_f64().ok_or_else(|| format!("field '{name}' is not a number"));
    let opt_u32 = |name: &str| -> Result<Option<u32>, String> {
        match v.get(name) {
            None => Ok(None),
            Some(val) if val.is_null() => Ok(None),
            Some(val) => val
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(Some)
                .ok_or_else(|| format!("field '{name}' is not a u32")),
        }
    };
    let phase_name =
        field("phase")?.as_str().ok_or_else(|| "field 'phase' is not a string".to_string())?;
    let phase = Phase::all()
        .into_iter()
        .find(|p| p.variant_name() == phase_name)
        .ok_or_else(|| format!("unknown phase '{phase_name}'"))?;
    Ok(OpSpec {
        device: f64_field("device")? as usize,
        name: field("name")?
            .as_str()
            .ok_or_else(|| "field 'name' is not a string".to_string())?
            .to_string(),
        phase,
        modeled_s: f64_field("modeled_s")?,
        raw_s: f64_field("raw_s")?,
        mode: opt_u32("mode")?,
        collective_seq: opt_u32("collective_seq")?,
    })
}

/// Where one op landed in the earliest-start schedule of the DAG.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScheduledOp {
    /// Start time, seconds from schedule origin.
    pub start_s: f64,
    /// Finish time (`start_s + modeled_s`).
    pub finish_s: f64,
    /// Rendezvous wait charged immediately before this op: how long the
    /// device sat blocked at a collective waiting for slower members
    /// (`0` for non-collective ops).
    pub stall_s: f64,
    /// How far this op can slip without growing the makespan (`0` along
    /// the critical path).
    pub slack_s: f64,
}

/// Per-device busy/stall/idle attribution over the schedule span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DeviceAttribution {
    /// Device (group member) index.
    pub device: usize,
    /// Ops this device executed.
    pub ops: usize,
    /// Sum of charged durations (left fold in stream order).
    pub busy_s: f64,
    /// Sum of rendezvous waits (left fold in stream order).
    pub stall_s: f64,
    /// Residual `span - (busy + stall)`: time after the device's stream
    /// ended while other devices were still running. Exactly `0` for
    /// every device whose stream ends at the makespan (residuals within
    /// `span * 1e-12` — fold-reassociation dust — are snapped to `0`).
    pub idle_s: f64,
}

impl DeviceAttribution {
    /// `idle_s` as a fraction of the schedule span (`0` when empty).
    pub fn idle_fraction(&self, span_s: f64) -> f64 {
        if span_s > 0.0 {
            self.idle_s / span_s
        } else {
            0.0
        }
    }
}

/// Raw-vs-exposed accounting for one link (all transfers sharing a name).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LinkOverlap {
    /// Transfer name (e.g. `"h2d_tile"`, `"allreduce_gram"`).
    pub name: String,
    /// Number of transfers.
    pub transfers: usize,
    /// Un-overlapped link seconds (left fold of `raw_s` in record order).
    pub raw_s: f64,
    /// Charged (exposed) seconds (left fold of `modeled_s` in record
    /// order — bitwise the same accumulation `TilingReport` performs).
    pub exposed_s: f64,
}

impl LinkOverlap {
    /// Seconds hidden behind concurrent compute.
    pub fn hidden_s(&self) -> f64 {
        (self.raw_s - self.exposed_s).max(0.0)
    }

    /// `hidden / raw` — `1.0` is a perfectly hidden link, `0.0` fully
    /// exposed (defined as `0` when the link moved nothing).
    pub fn overlap_efficiency(&self) -> f64 {
        if self.raw_s > 0.0 {
            self.hidden_s() / self.raw_s
        } else {
            0.0
        }
    }
}

/// The scheduled DAG: critical path, per-device attribution, per-link
/// overlap, and per-op schedule detail.
#[derive(Debug, Clone)]
pub struct DagAnalysis {
    /// The input ops, in analysis order.
    pub ops: Vec<OpSpec>,
    /// Schedule entry per op (parallel to `ops`).
    pub schedule: Vec<ScheduledOp>,
    /// Makespan of the earliest-start schedule == length of the longest
    /// dependency chain (the modeled critical path), seconds.
    pub critical_path_s: f64,
    /// Total charged modeled seconds across all devices (left fold over
    /// `ops`): the serial lower bound. Bit-equal to `critical_path_s` for
    /// single-device runs.
    pub total_modeled_s: f64,
    /// Per-device attribution, ascending device index. Invariant:
    /// `busy + stall + idle == critical_path_s` for every device (idle is
    /// computed as that exact residual).
    pub devices: Vec<DeviceAttribution>,
    /// Per-link overlap accounting, ascending by name.
    pub links: Vec<LinkOverlap>,
    /// The critical path as indices into `ops`, start to finish. Ties are
    /// broken deterministically (the chain stays on one device stream
    /// where possible, else the lowest device wins).
    pub critical_path: Vec<usize>,
}

impl DagAnalysis {
    /// The critical path as `(device, per-device record index)` pairs —
    /// the form the Chrome-trace flow-arrow writer consumes.
    pub fn chain_refs(&self) -> Vec<(usize, usize)> {
        let mut seen_per_device: BTreeMap<usize, usize> = BTreeMap::new();
        let mut pos_of = vec![0usize; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            let next = seen_per_device.entry(op.device).or_insert(0);
            pos_of[i] = *next;
            *next += 1;
        }
        self.critical_path.iter().map(|&i| (self.ops[i].device, pos_of[i])).collect()
    }

    /// Per-link accounting for one transfer name, if it moved anything.
    pub fn link(&self, name: &str) -> Option<&LinkOverlap> {
        self.links.iter().find(|l| l.name == name)
    }

    /// Modeled seconds on the critical path attributed to each phase, in
    /// display order, skipping empty phases.
    pub fn critical_path_phases(&self) -> Vec<(Phase, f64)> {
        let mut by_phase: BTreeMap<Phase, f64> = BTreeMap::new();
        for &i in &self.critical_path {
            *by_phase.entry(self.ops[i].phase).or_insert(0.0) += self.ops[i].modeled_s;
        }
        Phase::all().into_iter().filter_map(|p| by_phase.get(&p).map(|&s| (p, s))).collect()
    }
}

/// Schedules the op DAG earliest-start and derives the critical path,
/// per-device attribution, per-op slack and per-link overlap.
///
/// Per-device streams execute in record order; a collective instance
/// starts when the *last* of its members reaches it (`start = max` over
/// member cursors), charging each member the wait as stall. Because every
/// op starts exactly at its latest predecessor's finish, the makespan
/// equals the longest dependency chain — the modeled critical path.
pub fn analyze(ops: &[OpSpec]) -> DagAnalysis {
    let ndev = ops.iter().map(|o| o.device).max().map_or(0, |d| d + 1);
    let mut streams: Vec<Vec<usize>> = vec![Vec::new(); ndev];
    for (i, op) in ops.iter().enumerate() {
        streams[op.device].push(i);
    }

    // --- forward pass: earliest-start schedule -------------------------
    let mut pos = vec![0usize; ndev];
    let mut cursor = vec![0.0f64; ndev];
    let mut schedule = vec![ScheduledOp::default(); ops.len()];
    let mut order: Vec<usize> = Vec::with_capacity(ops.len()); // topological
    loop {
        // Drain every device's non-collective prefix: each op starts
        // exactly when its predecessor finishes.
        for d in 0..ndev {
            while pos[d] < streams[d].len() {
                let i = streams[d][pos[d]];
                if ops[i].collective_seq.is_some() {
                    break;
                }
                let start = cursor[d];
                let finish = start + ops[i].modeled_s;
                schedule[i] =
                    ScheduledOp { start_s: start, finish_s: finish, stall_s: 0.0, slack_s: 0.0 };
                cursor[d] = finish;
                pos[d] += 1;
                order.push(i);
            }
        }
        // Rendezvous the lowest pending collective instance. Instance ids
        // are issued in group program order and appear as monotone
        // subsequences per member, so the minimum pending id has every
        // one of its members parked on it.
        let mut seq: Option<u32> = None;
        for d in 0..ndev {
            if pos[d] < streams[d].len() {
                if let Some(s) = ops[streams[d][pos[d]]].collective_seq {
                    seq = Some(seq.map_or(s, |cur| cur.min(s)));
                }
            }
        }
        let Some(seq) = seq else { break };
        let members: Vec<usize> = (0..ndev)
            .filter(|&d| pos[d] < streams[d].len())
            .filter(|&d| ops[streams[d][pos[d]]].collective_seq == Some(seq))
            .collect();
        let start = members.iter().map(|&d| cursor[d]).fold(0.0f64, f64::max);
        for &d in &members {
            let i = streams[d][pos[d]];
            let stall = start - cursor[d];
            let finish = start + ops[i].modeled_s;
            schedule[i] =
                ScheduledOp { start_s: start, finish_s: finish, stall_s: stall, slack_s: 0.0 };
            cursor[d] = finish;
            pos[d] += 1;
            order.push(i);
        }
    }
    let span = cursor.iter().copied().fold(0.0f64, f64::max);

    // --- backward pass: latest finish times → per-op slack -------------
    // Successor edges: the next op on the same device — except that when
    // the next op is a collective, op `i` releases *every* member of that
    // instance (the rendezvous max depends on all predecessors).
    let mut members_of: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        if let Some(s) = op.collective_seq {
            members_of.entry(s).or_default().push(i);
        }
    }
    for members in members_of.values_mut() {
        members.sort_by_key(|&i| ops[i].device);
    }
    let mut latest_finish = vec![span; ops.len()];
    let mut stream_pos = vec![0usize; ops.len()];
    for stream in &streams {
        for (k, &i) in stream.iter().enumerate() {
            stream_pos[i] = k;
        }
    }
    for &i in order.iter().rev() {
        let d = ops[i].device;
        let k = stream_pos[i];
        let mut lf = span;
        if let Some(&j) = streams[d].get(k + 1) {
            let succs: &[usize] = match ops[j].collective_seq {
                Some(s) => &members_of[&s],
                None => std::slice::from_ref(&j),
            };
            for &j in succs {
                lf = lf.min(latest_finish[j] - ops[j].modeled_s);
            }
        }
        latest_finish[i] = lf;
        // Backward subtraction does not invert the forward fold bitwise;
        // snap sub-epsilon residue to an exact zero so critical-path ops
        // report `slack == 0.0`.
        let slack = lf - schedule[i].finish_s;
        schedule[i].slack_s = if slack <= span * 1e-12 { 0.0 } else { slack };
    }

    // --- critical path: backtrack from the makespan --------------------
    // End node: the op with the maximal finish (ties: lowest device). Each
    // non-collective starts exactly at its in-stream predecessor's finish.
    // A collective instance is one DAG node with a representative per
    // member; the chain represents it by the member whose arrival set the
    // rendezvous `max` (ties: the successor's device so the chain stays on
    // one stream where possible, then lowest device).
    let mut critical_path = Vec::new();
    let mut end: Option<usize> = None;
    for stream in &streams {
        if let Some(&last) = stream.last() {
            if end.is_none_or(|e| schedule[last].finish_s > schedule[e].finish_s) {
                end = Some(last);
            }
        }
    }
    let prev_finish_of = |m: usize| -> f64 {
        let (md, mk) = (ops[m].device, stream_pos[m]);
        mk.checked_sub(1).map_or(0.0, |p| schedule[streams[md][p]].finish_s)
    };
    let mut cur = end;
    let mut succ_device: Option<usize> = None;
    while let Some(mut i) = cur {
        if let Some(s) = ops[i].collective_seq {
            // Pick the member whose stream cursor set the rendezvous start.
            let start = schedule[i].start_s;
            let arrivals: Vec<usize> = members_of[&s]
                .iter()
                .copied()
                .filter(|&m| prev_finish_of(m).to_bits() == start.to_bits())
                .collect();
            i = arrivals
                .iter()
                .copied()
                .find(|&m| Some(ops[m].device) == succ_device)
                .unwrap_or(arrivals[0]);
        }
        critical_path.push(i);
        succ_device = Some(ops[i].device);
        let (d, k) = (ops[i].device, stream_pos[i]);
        cur = k.checked_sub(1).map(|p| streams[d][p]);
    }
    critical_path.reverse();

    // --- attribution and link overlap ----------------------------------
    let devices = (0..ndev)
        .map(|d| {
            let mut busy = 0.0f64;
            let mut stall = 0.0f64;
            for &i in &streams[d] {
                busy += ops[i].modeled_s;
                stall += schedule[i].stall_s;
            }
            // `busy` and `stall` are separate folds; re-summing them can
            // land ulps past the interleaved cursor fold that set `span`.
            // Snap that reassociation dust to an exact zero so trailing
            // devices never report negative idle.
            let idle = span - (busy + stall);
            let idle = if idle.abs() <= span * 1e-12 { 0.0 } else { idle };
            DeviceAttribution {
                device: d,
                ops: streams[d].len(),
                busy_s: busy,
                stall_s: stall,
                idle_s: idle,
            }
        })
        .collect();

    let mut links: BTreeMap<&str, LinkOverlap> = BTreeMap::new();
    for op in ops {
        if op.phase != Phase::Transfer {
            continue;
        }
        let l = links.entry(op.name.as_str()).or_insert_with(|| LinkOverlap {
            name: op.name.clone(),
            transfers: 0,
            raw_s: 0.0,
            exposed_s: 0.0,
        });
        l.transfers += 1;
        l.raw_s += op.raw_s;
        l.exposed_s += op.modeled_s;
    }

    let mut total_modeled_s = 0.0f64;
    for op in ops {
        total_modeled_s += op.modeled_s;
    }

    DagAnalysis {
        ops: ops.to_vec(),
        schedule,
        critical_path_s: span,
        total_modeled_s,
        devices,
        links: links.into_values().collect(),
        critical_path,
    }
}

/// A deterministic counterfactual transform over the op DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhatIf {
    /// Infinite device-to-device interconnect: collectives cost nothing.
    NvlinkInf,
    /// Free host link: non-collective transfers cost nothing.
    PcieZero,
    /// Perfect overlap: non-collective transfers hide entirely behind
    /// compute (charged time zero, raw link time kept so the overlap
    /// efficiency reports `1.0`).
    OverlapPerfect,
}

impl WhatIf {
    /// The `--what-if` token for this projection.
    pub fn label(&self) -> &'static str {
        match self {
            WhatIf::NvlinkInf => "nvlink=inf",
            WhatIf::PcieZero => "pcie=0",
            WhatIf::OverlapPerfect => "overlap=perfect",
        }
    }

    /// All projections in display order.
    pub fn all() -> [WhatIf; 3] {
        [WhatIf::NvlinkInf, WhatIf::PcieZero, WhatIf::OverlapPerfect]
    }
}

/// Parses a comma-separated `--what-if` list (`"nvlink=inf,pcie=0"`).
pub fn parse_what_ifs(spec: &str) -> Result<Vec<WhatIf>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            WhatIf::all().into_iter().find(|w| w.label() == t).ok_or_else(|| {
                format!(
                    "unknown what-if '{t}' (expected one of nvlink=inf, pcie=0, overlap=perfect)"
                )
            })
        })
        .collect()
}

/// Applies what-if transforms to a copy of the ops. Every transform only
/// zeroes durations, so any schedule derived from the result is
/// monotonically non-increasing against the baseline.
pub fn apply_what_ifs(ops: &[OpSpec], what_ifs: &[WhatIf]) -> Vec<OpSpec> {
    let mut out = ops.to_vec();
    for op in &mut out {
        let collective = op.collective_seq.is_some();
        let host_transfer = op.phase == Phase::Transfer && !collective;
        for w in what_ifs {
            match w {
                WhatIf::NvlinkInf if collective => {
                    op.modeled_s = 0.0;
                    op.raw_s = 0.0;
                }
                WhatIf::PcieZero if host_transfer => {
                    op.modeled_s = 0.0;
                    op.raw_s = 0.0;
                }
                WhatIf::OverlapPerfect if host_transfer => {
                    op.modeled_s = 0.0;
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(device: usize, name: &str, phase: Phase, secs: f64) -> OpSpec {
        OpSpec {
            device,
            name: name.to_string(),
            phase,
            modeled_s: secs,
            raw_s: secs,
            mode: None,
            collective_seq: None,
        }
    }

    fn coll(device: usize, name: &str, secs: f64, seq: u32) -> OpSpec {
        OpSpec { collective_seq: Some(seq), ..op(device, name, Phase::Transfer, secs) }
    }

    #[test]
    fn serial_critical_path_is_the_whole_stream_bit_exactly() {
        let ops = vec![
            op(0, "mttkrp", Phase::Mttkrp, 0.1),
            op(0, "admm", Phase::Update, 0.2),
            op(0, "normalize", Phase::Normalize, 0.3),
        ];
        let a = analyze(&ops);
        let fold = ((0.0f64 + 0.1) + 0.2) + 0.3;
        assert_eq!(a.critical_path_s.to_bits(), fold.to_bits());
        assert_eq!(a.total_modeled_s.to_bits(), a.critical_path_s.to_bits());
        assert_eq!(a.critical_path, vec![0, 1, 2]);
        let d = a.devices[0];
        assert_eq!(d.stall_s, 0.0);
        assert_eq!(d.idle_s, 0.0);
        assert_eq!(d.busy_s.to_bits(), a.critical_path_s.to_bits());
        assert!(a.schedule.iter().all(|s| s.slack_s == 0.0), "serial ops have no slack");
    }

    #[test]
    fn rendezvous_charges_the_fast_member_the_stall() {
        // d0 computes 1.0s, d1 computes 3.0s, then both all-reduce 0.5s.
        let ops = vec![
            op(0, "mttkrp_shard", Phase::Mttkrp, 1.0),
            coll(0, "allreduce_gram", 0.5, 0),
            op(1, "mttkrp_shard", Phase::Mttkrp, 3.0),
            coll(1, "allreduce_gram", 0.5, 0),
        ];
        let a = analyze(&ops);
        assert_eq!(a.critical_path_s, 3.5);
        assert!(a.critical_path_s < a.total_modeled_s);
        assert_eq!(a.schedule[1].start_s, 3.0, "collective waits for the slow member");
        assert_eq!(a.schedule[1].stall_s, 2.0);
        assert_eq!(a.schedule[3].stall_s, 0.0);
        let d0 = a.devices[0];
        assert_eq!((d0.busy_s, d0.stall_s, d0.idle_s), (1.5, 2.0, 0.0));
        let d1 = a.devices[1];
        assert_eq!((d1.busy_s, d1.stall_s, d1.idle_s), (3.5, 0.0, 0.0));
        // Critical path runs through the slow member, then its collective.
        assert_eq!(a.critical_path, vec![2, 3]);
        // The fast member's compute has exactly the stall as slack.
        assert_eq!(a.schedule[0].slack_s, 2.0);
        assert_eq!(a.schedule[2].slack_s, 0.0);
    }

    #[test]
    fn trailing_imbalance_shows_up_as_idle() {
        let ops = vec![op(0, "k", Phase::Update, 1.0), op(1, "k", Phase::Update, 4.0)];
        let a = analyze(&ops);
        assert_eq!(a.critical_path_s, 4.0);
        assert_eq!(a.devices[0].idle_s, 3.0);
        assert_eq!(a.devices[1].idle_s, 0.0);
        for d in &a.devices {
            assert_eq!(d.busy_s + d.stall_s + d.idle_s, a.critical_path_s);
        }
    }

    #[test]
    fn interleaved_collectives_rendezvous_in_issue_order() {
        // Two collectives; the second depends on the first through both
        // streams (0 then 1 on each device).
        let ops = vec![
            coll(0, "allgather_factor", 0.1, 0),
            op(0, "update", Phase::Update, 1.0),
            coll(0, "allreduce_gram", 0.1, 1),
            coll(1, "allgather_factor", 0.1, 0),
            op(1, "update", Phase::Update, 2.0),
            coll(1, "allreduce_gram", 0.1, 1),
        ];
        let a = analyze(&ops);
        // seq 0 at t=0, updates run 1.0/2.0, seq 1 at t=0.1+2.0.
        assert_eq!(a.schedule[0].start_s, 0.0);
        assert_eq!(a.schedule[2].start_s, 0.1 + 2.0);
        assert_eq!(a.schedule[2].stall_s, 1.0);
        assert_eq!(a.critical_path_s, 0.1 + 2.0 + 0.1);
        // Chain: seq-0 collective (lowest device), slow update, seq-1 collective.
        assert_eq!(a.critical_path, vec![3, 4, 5]);
    }

    #[test]
    fn overlap_efficiency_reproduces_raw_vs_exposed_folds() {
        let mut t1 = op(0, "h2d_tile", Phase::Transfer, 0.4); // fully exposed
        t1.raw_s = 0.4;
        let mut t2 = op(0, "h2d_tile", Phase::Transfer, 0.1); // mostly hidden
        t2.raw_s = 0.5;
        let ops = vec![t1, t2, op(0, "mttkrp_tile", Phase::Mttkrp, 1.0)];
        let a = analyze(&ops);
        let l = a.link("h2d_tile").expect("link present");
        assert_eq!(l.transfers, 2);
        assert_eq!(l.raw_s.to_bits(), (0.4f64 + 0.5).to_bits());
        assert_eq!(l.exposed_s.to_bits(), (0.4f64 + 0.1).to_bits());
        assert!((l.overlap_efficiency() - 0.4 / 0.9).abs() < 1e-15);
        assert!(a.link("mttkrp_tile").is_none(), "compute ops are not links");
    }

    #[test]
    fn what_ifs_zero_the_right_ops_and_never_increase_the_path() {
        let ops = vec![
            op(0, "h2d_tensor", Phase::Transfer, 0.5),
            op(0, "mttkrp_shard", Phase::Mttkrp, 1.0),
            coll(0, "allreduce_gram", 0.3, 0),
            op(1, "h2d_tensor", Phase::Transfer, 0.5),
            op(1, "mttkrp_shard", Phase::Mttkrp, 2.0),
            coll(1, "allreduce_gram", 0.3, 0),
        ];
        let base = analyze(&ops).critical_path_s;
        for w in WhatIf::all() {
            let projected = analyze(&apply_what_ifs(&ops, &[w])).critical_path_s;
            assert!(projected <= base, "{}: {projected} > {base}", w.label());
        }
        let nvlink = analyze(&apply_what_ifs(&ops, &[WhatIf::NvlinkInf]));
        assert_eq!(nvlink.critical_path_s, 2.5, "collective gone, transfers stay");
        assert!(nvlink.critical_path_s < base);
        let pcie = analyze(&apply_what_ifs(&ops, &[WhatIf::PcieZero]));
        assert_eq!(pcie.critical_path_s, 2.3, "host transfer gone, collective stays");
        let both = analyze(&apply_what_ifs(&ops, &[WhatIf::NvlinkInf, WhatIf::PcieZero]));
        assert_eq!(both.critical_path_s, 2.0);
        // overlap=perfect zeroes the charge but keeps the raw link time.
        let perfect = analyze(&apply_what_ifs(&ops, &[WhatIf::OverlapPerfect]));
        let l = perfect.link("h2d_tensor").unwrap();
        assert_eq!(l.exposed_s, 0.0);
        assert_eq!(l.raw_s, 1.0);
        assert_eq!(l.overlap_efficiency(), 1.0);
    }

    #[test]
    fn what_if_parser_accepts_lists_and_rejects_unknowns() {
        assert_eq!(
            parse_what_ifs("nvlink=inf,pcie=0").unwrap(),
            vec![WhatIf::NvlinkInf, WhatIf::PcieZero]
        );
        assert_eq!(parse_what_ifs("overlap=perfect").unwrap(), vec![WhatIf::OverlapPerfect]);
        assert!(parse_what_ifs("warp=9").is_err());
    }

    #[test]
    fn ops_jsonl_round_trips_bit_exactly() {
        let ops = vec![
            OpSpec { mode: Some(2), ..op(0, "mttkrp", Phase::Mttkrp, 1.0e-3 / 3.0) },
            coll(1, "allreduce_gram", 2.5e-6, 7),
        ];
        let mut buf = Vec::new();
        write_ops_jsonl(&ops, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = read_ops_jsonl(&text).unwrap();
        assert_eq!(back, ops);
        assert_eq!(back[0].modeled_s.to_bits(), ops[0].modeled_s.to_bits());
        assert!(read_ops_jsonl("not json\n").is_err());
    }

    #[test]
    fn chain_refs_map_flat_indices_to_per_device_positions() {
        let ops = vec![
            op(0, "a", Phase::Gram, 1.0),
            op(1, "b", Phase::Gram, 2.0),
            op(1, "c", Phase::Update, 1.0),
        ];
        let a = analyze(&ops);
        assert_eq!(a.critical_path, vec![1, 2]);
        assert_eq!(a.chain_refs(), vec![(1, 0), (1, 1)]);
    }

    #[test]
    fn empty_ops_produce_an_empty_zero_span_analysis() {
        let a = analyze(&[]);
        assert_eq!(a.critical_path_s, 0.0);
        assert_eq!(a.total_modeled_s, 0.0);
        assert!(a.critical_path.is_empty() && a.devices.is_empty() && a.links.is_empty());
    }

    #[test]
    fn critical_path_phase_breakdown_sums_to_the_span_for_serial_runs() {
        let ops = vec![
            op(0, "gram", Phase::Gram, 0.25),
            op(0, "mttkrp", Phase::Mttkrp, 0.5),
            op(0, "mttkrp2", Phase::Mttkrp, 0.5),
        ];
        let a = analyze(&ops);
        let phases = a.critical_path_phases();
        assert_eq!(phases, vec![(Phase::Gram, 0.25), (Phase::Mttkrp, 1.0)]);
    }
}
