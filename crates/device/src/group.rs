//! Multi-device groups with modeled ring collectives.
//!
//! A [`DeviceGroup`] joins N simulated devices behind an NVLink-style
//! [`LinkModel`]. Its collective primitives really move the data on the
//! host (so numerics stay exact and testable, like every kernel launch)
//! while each member device's profiler is charged the *modeled* ring
//! collective time and per-device traffic:
//!
//! - ring all-gather: each device forwards `(g-1)/g` of the full buffer;
//! - ring all-reduce: reduce-scatter + all-gather, `2(g-1)/g` per device.
//!
//! The all-reduce's floating-point association is fixed (a pairwise
//! halving tree, matching `cstf-linalg`'s partial-buffer reduction), so a
//! sharded computation that fills the same partial buffers reduces to a
//! bitwise-identical result regardless of group size.

use crate::cost::{KernelClass, KernelCost};
use crate::device::Device;
use crate::profiler::Phase;
use crate::spec::DeviceSpec;

/// A modeled device-to-device interconnect (NVLink-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Effective per-direction peer bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Per-collective software/launch latency, microseconds.
    pub latency_us: f64,
}

impl LinkModel {
    /// NVLink 3 class link: ~300 GB/s effective, 10 µs collective latency
    /// (matches `MultiGpuConfig::dgx` in the modeled path).
    pub fn nvlink() -> Self {
        Self { bandwidth_gbs: 300.0, latency_us: 10.0 }
    }

    /// An [`LinkModel::nvlink`] link with a different bandwidth.
    pub fn with_bandwidth(bandwidth_gbs: f64) -> Self {
        Self { bandwidth_gbs, ..Self::nvlink() }
    }

    /// Bytes each device moves in a ring all-gather of a `bytes`-sized
    /// buffer across `g` devices: `(g-1)/g * bytes` (zero when `g <= 1`).
    pub fn all_gather_bytes(&self, bytes: f64, g: usize) -> f64 {
        if g <= 1 {
            0.0
        } else {
            (g as f64 - 1.0) / g as f64 * bytes
        }
    }

    /// Bytes each device moves in a ring all-reduce (reduce-scatter plus
    /// all-gather): `2 (g-1)/g * bytes` (zero when `g <= 1`).
    pub fn all_reduce_bytes(&self, bytes: f64, g: usize) -> f64 {
        2.0 * self.all_gather_bytes(bytes, g)
    }

    /// Modeled seconds for a ring all-gather of `bytes` across `g` devices.
    pub fn all_gather_s(&self, bytes: f64, g: usize) -> f64 {
        if g <= 1 {
            0.0
        } else {
            self.latency_us * 1e-6 + self.all_gather_bytes(bytes, g) / (self.bandwidth_gbs * 1e9)
        }
    }

    /// Modeled seconds for a ring all-reduce of `bytes` across `g` devices.
    pub fn all_reduce_s(&self, bytes: f64, g: usize) -> f64 {
        if g <= 1 {
            0.0
        } else {
            self.latency_us * 1e-6 + self.all_reduce_bytes(bytes, g) / (self.bandwidth_gbs * 1e9)
        }
    }
}

/// N simulated devices joined by a modeled interconnect.
#[derive(Debug)]
pub struct DeviceGroup {
    devices: Vec<Device>,
    link: LinkModel,
}

impl DeviceGroup {
    /// A group of caller-built devices.
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    pub fn new(devices: Vec<Device>, link: LinkModel) -> Self {
        assert!(!devices.is_empty(), "a device group needs at least one device");
        Self { devices, link }
    }

    /// `n` identical devices of `spec` on an NVLink-class link.
    pub fn homogeneous(spec: &DeviceSpec, n: usize) -> Self {
        let devices = (0..n.max(1)).map(|_| Device::new(spec.clone())).collect();
        Self::new(devices, LinkModel::nvlink())
    }

    /// Like [`DeviceGroup::homogeneous`] but every device retains kernel
    /// records (for per-device trace export).
    pub fn homogeneous_with_records(spec: &DeviceSpec, n: usize) -> Self {
        let devices = (0..n.max(1)).map(|_| Device::with_records(spec.clone())).collect();
        Self::new(devices, LinkModel::nvlink())
    }

    /// Replaces the link model (builder style).
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false (construction rejects empty groups).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The member devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// One member device.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// The interconnect model.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Ring all-gather of per-device row blocks into the full buffer:
    /// `blocks[d]` is copied to `out[offsets[d] .. offsets[d] + blocks[d].len()]`,
    /// and every device is charged `(g-1)/g` of the gathered buffer plus the
    /// ring latency.
    ///
    /// # Panics
    /// Panics if `blocks`/`offsets` lengths disagree with the group or a
    /// block overruns `out`.
    pub fn all_gather_rows(
        &self,
        name: &'static str,
        blocks: &[&[f64]],
        offsets: &[usize],
        out: &mut [f64],
    ) {
        let g = self.len();
        assert_eq!(blocks.len(), g, "one block per device");
        assert_eq!(offsets.len(), g, "one offset per device");
        for (block, &off) in blocks.iter().zip(offsets) {
            out[off..off + block.len()].copy_from_slice(block);
        }
        let total_bytes = out.len() as f64 * 8.0;
        let modeled_s = self.link.all_gather_s(total_bytes, g);
        let per_device_bytes = self.link.all_gather_bytes(total_bytes, g);
        for dev in &self.devices {
            dev.collective(name, per_device_bytes, modeled_s);
        }
    }

    /// Ring all-reduce of per-device partial buffers: sums
    /// `bufs[0..][..len]` into `out[..len]` (accumulating — zero `out`
    /// first for a plain sum) with a pairwise halving tree whose
    /// floating-point association matches `cstf-linalg`'s
    /// `PartialBuffers::reduce_into`, then charges every device
    /// `2(g-1)/g` of the buffer plus the ring latency.
    ///
    /// `bufs` may hold more than one partial per device (the caller assigns
    /// contiguous runs of partials to devices); the modeled traffic covers
    /// one `len`-sized buffer per ring step regardless.
    ///
    /// # Panics
    /// Panics if `bufs` is empty or any buffer is shorter than `len`.
    pub fn all_reduce_mat(
        &self,
        name: &'static str,
        bufs: &mut [Vec<f64>],
        len: usize,
        out: &mut [f64],
    ) {
        assert!(!bufs.is_empty(), "all_reduce_mat needs at least one partial buffer");
        let mut live = bufs.len();
        while live > 1 {
            let half = live / 2;
            let keep_len = live - half;
            let (keep, fold) = bufs[..live].split_at_mut(keep_len);
            let dsts = &mut keep[keep_len - half..];
            for (dst, src) in dsts.iter_mut().zip(fold.iter()) {
                for (d, &s) in dst[..len].iter_mut().zip(&src[..len]) {
                    *d += s;
                }
            }
            live -= half;
        }
        for (o, &b) in out[..len].iter_mut().zip(&bufs[0][..len]) {
            *o += b;
        }

        let g = self.len();
        let bytes = len as f64 * 8.0;
        let modeled_s = self.link.all_reduce_s(bytes, g);
        let per_device_bytes = self.link.all_reduce_bytes(bytes, g);
        for dev in &self.devices {
            dev.collective(name, per_device_bytes, modeled_s);
        }
    }

    /// Runs `body` once on device 0 (metered there) and charges every other
    /// device an identical launch without re-running the body — the data-
    /// parallel pattern for replicated compute (each device would perform
    /// the same `R x R`-scale work on its own copy).
    pub fn replicated<T>(
        &self,
        name: &'static str,
        phase: Phase,
        class: KernelClass,
        cost: KernelCost,
        body: impl FnOnce() -> T,
    ) -> T {
        let out = self.devices[0].launch(name, phase, class, cost, body);
        for dev in &self.devices[1..] {
            dev.launch(name, phase, class, cost, || ());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: usize) -> DeviceGroup {
        DeviceGroup::homogeneous(&DeviceSpec::h100(), n)
    }

    #[test]
    fn all_gather_moves_blocks_and_meters_every_device() {
        let g = group(3);
        let b0 = vec![1.0, 2.0];
        let b1 = vec![3.0, 4.0, 5.0];
        let b2 = vec![6.0];
        let mut out = vec![0.0; 6];
        g.all_gather_rows("allgather_factor", &[&b0, &b1, &b2], &[0, 2, 5], &mut out);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        for dev in g.devices() {
            let t = dev.phase_totals(Phase::Transfer);
            assert_eq!(t.launches, 1);
            assert!(t.seconds > 0.0, "collective time must be charged");
            assert!((t.bytes - 2.0 / 3.0 * 48.0).abs() < 1e-9, "ring traffic is (g-1)/g");
        }
    }

    #[test]
    fn all_reduce_uses_the_pairwise_halving_tree() {
        let g = group(3);
        let mk = |v: f64| vec![v, v * 0.5];
        let mut bufs = vec![mk(0.1), mk(0.2), mk(0.3)];
        let mut out = vec![0.0; 2];
        g.all_reduce_mat("allreduce_gram", &mut bufs, 2, &mut out);
        // Tree for 3 buffers: b1 += b2, then b0 += b1, then out += b0 —
        // association (b0 + (b1 + b2)), NOT a left fold.
        let want0: f64 = 0.0 + (0.1 + (0.2 + 0.3));
        let want1: f64 = 0.0 + (0.05 + (0.1 + 0.15));
        assert_eq!(out[0].to_bits(), want0.to_bits());
        assert_eq!(out[1].to_bits(), want1.to_bits());
        for dev in g.devices() {
            let t = dev.phase_totals(Phase::Transfer);
            assert_eq!(t.launches, 1);
            assert!((t.bytes - 2.0 * 2.0 / 3.0 * 16.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_device_collectives_are_free() {
        let g = group(1);
        let mut bufs = vec![vec![1.0, 2.0]];
        let mut out = vec![0.0; 2];
        g.all_reduce_mat("allreduce_gram", &mut bufs, 2, &mut out);
        let block = [5.0, 6.0];
        g.all_gather_rows("allgather_factor", &[&block], &[0], &mut out);
        assert_eq!(out, vec![5.0, 6.0]);
        let t = g.device(0).phase_totals(Phase::Transfer);
        assert_eq!(t.launches, 2);
        assert_eq!(t.seconds, 0.0, "g = 1 moves nothing over the link");
        assert_eq!(t.bytes, 0.0);
    }

    #[test]
    fn replicated_runs_body_once_but_meters_everyone() {
        let g = group(4);
        let mut runs = 0;
        let cost = KernelCost { flops: 64.0, parallel_work: 64.0, ..Default::default() };
        let v = g.replicated("hadamard_of_grams", Phase::Gram, KernelClass::Stream, cost, || {
            runs += 1;
            7
        });
        assert_eq!((v, runs), (7, 1));
        for dev in g.devices() {
            assert_eq!(dev.phase_totals(Phase::Gram).launches, 1);
            assert!(dev.total_seconds() > 0.0);
        }
    }

    #[test]
    fn link_model_scales_with_group_size_and_bandwidth() {
        let link = LinkModel::nvlink();
        let bytes = 1e9;
        assert_eq!(link.all_gather_s(bytes, 1), 0.0);
        assert_eq!(link.all_reduce_s(bytes, 1), 0.0);
        let t2 = link.all_reduce_s(bytes, 2);
        let t4 = link.all_reduce_s(bytes, 4);
        let t8 = link.all_reduce_s(bytes, 8);
        assert!(t2 < t4 && t4 < t8, "ring volume grows with (g-1)/g");
        let fat = LinkModel::with_bandwidth(600.0);
        assert!(fat.all_reduce_s(bytes, 4) < t4, "more bandwidth, less time");
        // (g-1)/g approaches 1: per-device volume is bounded by the buffer.
        assert!(link.all_gather_bytes(bytes, 1000) < bytes);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_groups_are_rejected() {
        DeviceGroup::new(Vec::new(), LinkModel::nvlink());
    }
}
