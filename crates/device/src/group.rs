//! Multi-device groups with modeled ring collectives.
//!
//! A [`DeviceGroup`] joins N simulated devices behind an NVLink-style
//! [`LinkModel`]. Its collective primitives really move the data on the
//! host (so numerics stay exact and testable, like every kernel launch)
//! while each member device's profiler is charged the *modeled* ring
//! collective time and per-device traffic:
//!
//! - ring all-gather: each device forwards `(g-1)/g` of the full buffer;
//! - ring all-reduce: reduce-scatter + all-gather, `2(g-1)/g` per device.
//!
//! The all-reduce's floating-point association is fixed (a pairwise
//! halving tree, matching `cstf-linalg`'s partial-buffer reduction), so a
//! sharded computation that fills the same partial buffers reduces to a
//! bitwise-identical result regardless of group size.
//!
//! # Elasticity
//!
//! A group can carry group-scoped faults
//! ([`FaultPlan::for_group_member`] via [`DeviceGroup::with_faults`]) and
//! a [`GroupHealth`] deadline monitor. Every collective computes each
//! member's *effective* time — the modeled ring time stretched by that
//! member's straggler slowdown and the worst degraded link it rides — and
//! records a deadline trip (a [`FaultKind::Straggler`] /
//! [`FaultKind::LinkDegrade`] fault record plus a health counter) whenever
//! the effective time exceeds `deadline_factor ×` the modeled time.
//! The `*_on` collective variants operate on a *survivor subset* of
//! members, which is how the sharded driver keeps collecting after
//! shrinking past a device loss.

use parking_lot::Mutex;

use crate::cost::{KernelClass, KernelCost};
use crate::device::Device;
use crate::fault::{FaultKind, FaultPlan};
use crate::profiler::Phase;
use crate::spec::DeviceSpec;

/// A modeled device-to-device interconnect (NVLink-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Effective per-direction peer bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Per-collective software/launch latency, microseconds.
    pub latency_us: f64,
}

impl LinkModel {
    /// NVLink 3 class link: ~300 GB/s effective, 10 µs collective latency
    /// (matches `MultiGpuConfig::dgx` in the modeled path).
    pub fn nvlink() -> Self {
        Self { bandwidth_gbs: 300.0, latency_us: 10.0 }
    }

    /// An [`LinkModel::nvlink`] link with a different bandwidth.
    pub fn with_bandwidth(bandwidth_gbs: f64) -> Self {
        Self { bandwidth_gbs, ..Self::nvlink() }
    }

    /// Bytes each device moves in a ring all-gather of a `bytes`-sized
    /// buffer across `g` devices: `(g-1)/g * bytes` (zero when `g <= 1`).
    pub fn all_gather_bytes(&self, bytes: f64, g: usize) -> f64 {
        if g <= 1 {
            0.0
        } else {
            (g as f64 - 1.0) / g as f64 * bytes
        }
    }

    /// Bytes each device moves in a ring all-reduce (reduce-scatter plus
    /// all-gather): `2 (g-1)/g * bytes` (zero when `g <= 1`).
    pub fn all_reduce_bytes(&self, bytes: f64, g: usize) -> f64 {
        2.0 * self.all_gather_bytes(bytes, g)
    }

    /// Modeled seconds for a ring all-gather of `bytes` across `g` devices.
    pub fn all_gather_s(&self, bytes: f64, g: usize) -> f64 {
        if g <= 1 {
            0.0
        } else {
            self.latency_us * 1e-6 + self.all_gather_bytes(bytes, g) / (self.bandwidth_gbs * 1e9)
        }
    }

    /// Modeled seconds for a ring all-reduce of `bytes` across `g` devices.
    pub fn all_reduce_s(&self, bytes: f64, g: usize) -> f64 {
        if g <= 1 {
            0.0
        } else {
            self.latency_us * 1e-6 + self.all_reduce_bytes(bytes, g) / (self.bandwidth_gbs * 1e9)
        }
    }
}

/// How the group detects and survives member failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// A collective's deadline is `deadline_factor ×` its modeled time;
    /// a member whose effective time exceeds it trips the monitor.
    pub deadline_factor: f64,
    /// How many times the driver retries a failed outer iteration
    /// (restoring committed state) before declaring the faulting device
    /// dead and shrinking to survivors.
    pub retries: u32,
    /// Base of the modeled exponential backoff charged between those
    /// retries, seconds.
    pub backoff_base_s: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self { deadline_factor: 4.0, retries: 2, backoff_base_s: 0.01 }
    }
}

/// The group's failure detector: per-member deadline-trip counters plus
/// the [`HealthPolicy`] the recovery ladder consults. Trips are recorded
/// by the collectives; they never fail a run by themselves (stragglers and
/// degraded links are bitwise-neutral), but they are the observable signal
/// that a deadline budget was exceeded.
#[derive(Debug)]
pub struct GroupHealth {
    policy: HealthPolicy,
    trips: Mutex<Vec<u64>>,
}

impl GroupHealth {
    fn new(policy: HealthPolicy, members: usize) -> Self {
        Self { policy, trips: Mutex::new(vec![0; members]) }
    }

    /// The detection/retry policy.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Records one deadline trip for member `d`; returns its new count.
    fn record_trip(&self, d: usize) -> u64 {
        let mut trips = self.trips.lock();
        trips[d] += 1;
        trips[d]
    }

    /// Per-member deadline-trip counts (index = original member id).
    pub fn deadline_trips(&self) -> Vec<u64> {
        self.trips.lock().clone()
    }

    /// Total deadline trips across all members.
    pub fn total_deadline_trips(&self) -> u64 {
        self.trips.lock().iter().sum()
    }
}

/// N simulated devices joined by a modeled interconnect.
#[derive(Debug)]
pub struct DeviceGroup {
    devices: Vec<Device>,
    link: LinkModel,
    health: GroupHealth,
    group_plan: Option<FaultPlan>,
    full_members: Vec<usize>,
    /// Group-wide collective instance counter: every `charge_collective`
    /// call draws one id and stamps it on all member records, so the
    /// execution-DAG layer can rendezvous them (see `crate::dag`).
    collective_seq: std::sync::atomic::AtomicU32,
}

impl DeviceGroup {
    /// A group of caller-built devices.
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    pub fn new(devices: Vec<Device>, link: LinkModel) -> Self {
        assert!(!devices.is_empty(), "a device group needs at least one device");
        let health = GroupHealth::new(HealthPolicy::default(), devices.len());
        let full_members = (0..devices.len()).collect();
        Self {
            devices,
            link,
            health,
            group_plan: None,
            full_members,
            collective_seq: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// `n` identical devices of `spec` on an NVLink-class link.
    pub fn homogeneous(spec: &DeviceSpec, n: usize) -> Self {
        let devices = (0..n.max(1)).map(|_| Device::new(spec.clone())).collect();
        Self::new(devices, LinkModel::nvlink())
    }

    /// Like [`DeviceGroup::homogeneous`] but every device retains kernel
    /// records (for per-device trace export).
    pub fn homogeneous_with_records(spec: &DeviceSpec, n: usize) -> Self {
        let devices = (0..n.max(1)).map(|_| Device::with_records(spec.clone())).collect();
        Self::new(devices, LinkModel::nvlink())
    }

    /// Replaces the link model (builder style).
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Distributes a fault plan across the group (builder style): each
    /// member `d` receives [`FaultPlan::for_group_member`]`(d)` — the
    /// stochastic kinds on member 0, group-scoped faults on their targets —
    /// and the group keeps the full plan for link-degrade lookups.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        self.devices = self
            .devices
            .into_iter()
            .enumerate()
            .map(|(d, dev)| match plan.for_group_member(d) {
                Some(p) => dev.with_fault_plan(p),
                None => dev,
            })
            .collect();
        self.group_plan = Some(plan.clone());
        self
    }

    /// Replaces the health policy (builder style; trip counters reset).
    pub fn with_health_policy(mut self, policy: HealthPolicy) -> Self {
        self.health = GroupHealth::new(policy, self.devices.len());
        self
    }

    /// The group's failure detector.
    pub fn health(&self) -> &GroupHealth {
        &self.health
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false (construction rejects empty groups).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The member devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// One member device.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// The interconnect model.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Member ids whose loss point has been reached (the dead set the
    /// recovery ladder shrinks away from).
    pub fn lost_members(&self) -> Vec<usize> {
        (0..self.devices.len()).filter(|&d| self.devices[d].lost_now()).collect()
    }

    /// The worst degraded-link factor member `d` rides among `members`
    /// (`1.0` on a healthy ring). The slowest link gates the whole ring,
    /// so the max over `d`'s edges is the honest stretch.
    fn member_link_factor(&self, d: usize, members: &[usize]) -> f64 {
        let Some(plan) = &self.group_plan else { return 1.0 };
        members.iter().filter(|&&o| o != d).map(|&o| plan.link_factor(d, o)).fold(1.0, f64::max)
    }

    /// Charges every member its effective collective time and records a
    /// deadline trip when the effective time exceeds the health budget.
    fn charge_collective(
        &self,
        name: &'static str,
        members: &[usize],
        per_device_bytes: f64,
        modeled_s: f64,
    ) {
        let deadline = modeled_s * self.health.policy.deadline_factor;
        let seq = self.collective_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        for &d in members {
            let dev = &self.devices[d];
            let slowdown = dev.slowdown();
            let link_factor = self.member_link_factor(d, members);
            let effective_s = modeled_s * slowdown * link_factor;
            if modeled_s > 0.0 && effective_s > deadline {
                let kind =
                    if slowdown > 1.0 { FaultKind::Straggler } else { FaultKind::LinkDegrade };
                let trip = self.health.record_trip(d);
                dev.record_health_fault(kind, name, trip);
            }
            dev.collective(name, per_device_bytes, effective_s, Some(seq));
        }
    }

    /// Ring all-gather of per-device row blocks into the full buffer:
    /// `blocks[d]` is copied to `out[offsets[d] .. offsets[d] + blocks[d].len()]`,
    /// and every device is charged `(g-1)/g` of the gathered buffer plus the
    /// ring latency.
    ///
    /// # Panics
    /// Panics if `blocks`/`offsets` lengths disagree with the group or a
    /// block overruns `out`.
    pub fn all_gather_rows(
        &self,
        name: &'static str,
        blocks: &[&[f64]],
        offsets: &[usize],
        out: &mut [f64],
    ) {
        let members = self.full_members.clone();
        self.all_gather_rows_on(name, &members, blocks, offsets, out);
    }

    /// [`DeviceGroup::all_gather_rows`] over a survivor subset: `blocks[i]`
    /// belongs to member `members[i]`, and only those members are charged
    /// (with the subset's ring size).
    pub fn all_gather_rows_on(
        &self,
        name: &'static str,
        members: &[usize],
        blocks: &[&[f64]],
        offsets: &[usize],
        out: &mut [f64],
    ) {
        let g = members.len();
        assert_eq!(blocks.len(), g, "one block per member");
        assert_eq!(offsets.len(), g, "one offset per member");
        for (block, &off) in blocks.iter().zip(offsets) {
            out[off..off + block.len()].copy_from_slice(block);
        }
        let total_bytes = out.len() as f64 * 8.0;
        let modeled_s = self.link.all_gather_s(total_bytes, g);
        let per_device_bytes = self.link.all_gather_bytes(total_bytes, g);
        self.charge_collective(name, members, per_device_bytes, modeled_s);
    }

    /// Ring all-reduce of per-device partial buffers: sums
    /// `bufs[0..][..len]` into `out[..len]` (accumulating — zero `out`
    /// first for a plain sum) with a pairwise halving tree whose
    /// floating-point association matches `cstf-linalg`'s
    /// `PartialBuffers::reduce_into`, then charges every device
    /// `2(g-1)/g` of the buffer plus the ring latency.
    ///
    /// `bufs` may hold more than one partial per device (the caller assigns
    /// contiguous runs of partials to devices); the modeled traffic covers
    /// one `len`-sized buffer per ring step regardless.
    ///
    /// # Panics
    /// Panics if `bufs` is empty or any buffer is shorter than `len`.
    pub fn all_reduce_mat(
        &self,
        name: &'static str,
        bufs: &mut [Vec<f64>],
        len: usize,
        out: &mut [f64],
    ) {
        let members = self.full_members.clone();
        self.all_reduce_mat_on(name, &members, bufs, len, out);
    }

    /// [`DeviceGroup::all_reduce_mat`] over a survivor subset: only
    /// `members` are charged, with the subset's ring size. The reduction
    /// tree depends solely on `bufs.len()`, so the sum stays bitwise
    /// identical however the group shrinks.
    pub fn all_reduce_mat_on(
        &self,
        name: &'static str,
        members: &[usize],
        bufs: &mut [Vec<f64>],
        len: usize,
        out: &mut [f64],
    ) {
        assert!(!bufs.is_empty(), "all_reduce_mat needs at least one partial buffer");
        let mut live = bufs.len();
        while live > 1 {
            let half = live / 2;
            let keep_len = live - half;
            let (keep, fold) = bufs[..live].split_at_mut(keep_len);
            let dsts = &mut keep[keep_len - half..];
            for (dst, src) in dsts.iter_mut().zip(fold.iter()) {
                for (d, &s) in dst[..len].iter_mut().zip(&src[..len]) {
                    *d += s;
                }
            }
            live -= half;
        }
        for (o, &b) in out[..len].iter_mut().zip(&bufs[0][..len]) {
            *o += b;
        }

        let g = members.len();
        let bytes = len as f64 * 8.0;
        let modeled_s = self.link.all_reduce_s(bytes, g);
        let per_device_bytes = self.link.all_reduce_bytes(bytes, g);
        self.charge_collective(name, members, per_device_bytes, modeled_s);
    }

    /// Runs `body` once on device 0 (metered there) and charges every other
    /// device an identical launch without re-running the body — the data-
    /// parallel pattern for replicated compute (each device would perform
    /// the same `R x R`-scale work on its own copy).
    pub fn replicated<T>(
        &self,
        name: &'static str,
        phase: Phase,
        class: KernelClass,
        cost: KernelCost,
        body: impl FnOnce() -> T,
    ) -> T {
        let members = self.full_members.clone();
        self.replicated_on(name, &members, phase, class, cost, body)
    }

    /// [`DeviceGroup::replicated`] over a survivor subset: the body runs on
    /// the first listed member, the rest are charged an identical launch.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn replicated_on<T>(
        &self,
        name: &'static str,
        members: &[usize],
        phase: Phase,
        class: KernelClass,
        cost: KernelCost,
        body: impl FnOnce() -> T,
    ) -> T {
        let lead = *members.first().expect("replicated compute needs at least one member");
        let out = self.devices[lead].launch(name, phase, class, cost, body);
        for &d in &members[1..] {
            self.devices[d].launch(name, phase, class, cost, || ());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{GroupFault, LossPoint};

    fn group(n: usize) -> DeviceGroup {
        DeviceGroup::homogeneous(&DeviceSpec::h100(), n)
    }

    #[test]
    fn all_gather_moves_blocks_and_meters_every_device() {
        let g = group(3);
        let b0 = vec![1.0, 2.0];
        let b1 = vec![3.0, 4.0, 5.0];
        let b2 = vec![6.0];
        let mut out = vec![0.0; 6];
        g.all_gather_rows("allgather_factor", &[&b0, &b1, &b2], &[0, 2, 5], &mut out);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        for dev in g.devices() {
            let t = dev.phase_totals(Phase::Transfer);
            assert_eq!(t.launches, 1);
            assert!(t.seconds > 0.0, "collective time must be charged");
            assert!((t.bytes - 2.0 / 3.0 * 48.0).abs() < 1e-9, "ring traffic is (g-1)/g");
        }
    }

    #[test]
    fn all_reduce_uses_the_pairwise_halving_tree() {
        let g = group(3);
        let mk = |v: f64| vec![v, v * 0.5];
        let mut bufs = vec![mk(0.1), mk(0.2), mk(0.3)];
        let mut out = vec![0.0; 2];
        g.all_reduce_mat("allreduce_gram", &mut bufs, 2, &mut out);
        // Tree for 3 buffers: b1 += b2, then b0 += b1, then out += b0 —
        // association (b0 + (b1 + b2)), NOT a left fold.
        let want0: f64 = 0.0 + (0.1 + (0.2 + 0.3));
        let want1: f64 = 0.0 + (0.05 + (0.1 + 0.15));
        assert_eq!(out[0].to_bits(), want0.to_bits());
        assert_eq!(out[1].to_bits(), want1.to_bits());
        for dev in g.devices() {
            let t = dev.phase_totals(Phase::Transfer);
            assert_eq!(t.launches, 1);
            assert!((t.bytes - 2.0 * 2.0 / 3.0 * 16.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_device_collectives_are_free() {
        let g = group(1);
        let mut bufs = vec![vec![1.0, 2.0]];
        let mut out = vec![0.0; 2];
        g.all_reduce_mat("allreduce_gram", &mut bufs, 2, &mut out);
        let block = [5.0, 6.0];
        g.all_gather_rows("allgather_factor", &[&block], &[0], &mut out);
        assert_eq!(out, vec![5.0, 6.0]);
        let t = g.device(0).phase_totals(Phase::Transfer);
        assert_eq!(t.launches, 2);
        assert_eq!(t.seconds, 0.0, "g = 1 moves nothing over the link");
        assert_eq!(t.bytes, 0.0);
    }

    #[test]
    fn replicated_runs_body_once_but_meters_everyone() {
        let g = group(4);
        let mut runs = 0;
        let cost = KernelCost { flops: 64.0, parallel_work: 64.0, ..Default::default() };
        let v = g.replicated("hadamard_of_grams", Phase::Gram, KernelClass::Stream, cost, || {
            runs += 1;
            7
        });
        assert_eq!((v, runs), (7, 1));
        for dev in g.devices() {
            assert_eq!(dev.phase_totals(Phase::Gram).launches, 1);
            assert!(dev.total_seconds() > 0.0);
        }
    }

    #[test]
    fn link_model_scales_with_group_size_and_bandwidth() {
        let link = LinkModel::nvlink();
        let bytes = 1e9;
        assert_eq!(link.all_gather_s(bytes, 1), 0.0);
        assert_eq!(link.all_reduce_s(bytes, 1), 0.0);
        let t2 = link.all_reduce_s(bytes, 2);
        let t4 = link.all_reduce_s(bytes, 4);
        let t8 = link.all_reduce_s(bytes, 8);
        assert!(t2 < t4 && t4 < t8, "ring volume grows with (g-1)/g");
        let fat = LinkModel::with_bandwidth(600.0);
        assert!(fat.all_reduce_s(bytes, 4) < t4, "more bandwidth, less time");
        // (g-1)/g approaches 1: per-device volume is bounded by the buffer.
        assert!(link.all_gather_bytes(bytes, 1000) < bytes);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_groups_are_rejected() {
        DeviceGroup::new(Vec::new(), LinkModel::nvlink());
    }

    #[test]
    fn with_faults_distributes_group_targets_to_members() {
        let plan = FaultPlan::parse("seed=4,launch=0.5,device-loss:1@it0,straggler:2x8").unwrap();
        let g = group(3).with_faults(&plan);
        assert_eq!(g.device(0).fault_plan().unwrap().launch_fault_rate, 0.5);
        assert!(g.device(0).fault_plan().unwrap().group.is_empty());
        assert_eq!(
            g.device(1).fault_plan().unwrap().group,
            vec![GroupFault::DeviceLoss { device: 1, at_launch: LossPoint::Iter(0) }]
        );
        assert_eq!(g.device(2).slowdown(), 8.0);
        assert_eq!(g.lost_members(), vec![1], "iter-0 loss is immediate");
    }

    #[test]
    fn straggler_collective_trips_the_deadline_monitor() {
        let plan = FaultPlan::parse("straggler:1x8").unwrap();
        let g = group(3).with_faults(&plan);
        let mk = |v: f64| vec![v, v];
        let mut bufs = vec![mk(0.1), mk(0.2), mk(0.3)];
        let mut out = vec![0.0; 2];
        g.all_reduce_mat("allreduce_gram", &mut bufs, 2, &mut out);
        // 8x > the default 4x deadline budget: member 1 trips, others not.
        assert_eq!(g.health().deadline_trips(), vec![0, 1, 0]);
        assert_eq!(g.health().total_deadline_trips(), 1);
        // The straggler's collective time is stretched 8x.
        let base = g.device(0).phase_totals(Phase::Transfer).seconds;
        let slow = g.device(1).phase_totals(Phase::Transfer).seconds;
        assert!((slow - 8.0 * base).abs() < 1e-15, "slow {slow} vs base {base}");
        // The numeric result is untouched.
        assert_eq!(out[0].to_bits(), (0.0f64 + (0.1 + (0.2 + 0.3))).to_bits());
    }

    #[test]
    fn degraded_link_trips_only_its_endpoints() {
        let plan = FaultPlan::parse("link-degrade:0-2x9").unwrap();
        let g = group(3).with_faults(&plan);
        let block = [1.0f64, 2.0];
        let mut out = vec![0.0; 6];
        g.all_gather_rows("allgather_factor", &[&block, &block, &block], &[0, 2, 4], &mut out);
        assert_eq!(g.health().deadline_trips(), vec![1, 0, 1], "both endpoints of 0-2 trip");
        let healthy = g.device(1).phase_totals(Phase::Transfer).seconds;
        let degraded = g.device(0).phase_totals(Phase::Transfer).seconds;
        assert!((degraded - 9.0 * healthy).abs() < 1e-15);
    }

    #[test]
    fn below_budget_slowdown_never_trips() {
        let plan = FaultPlan::parse("straggler:0x2").unwrap();
        let g = group(2).with_faults(&plan);
        let block = [1.0f64];
        let mut out = vec![0.0; 2];
        g.all_gather_rows("allgather_factor", &[&block, &block], &[0, 1], &mut out);
        assert_eq!(g.health().total_deadline_trips(), 0, "2x < the 4x budget");
    }

    #[test]
    fn custom_health_policy_tightens_the_budget() {
        let plan = FaultPlan::parse("straggler:0x2").unwrap();
        let policy = HealthPolicy { deadline_factor: 1.5, ..HealthPolicy::default() };
        let g = group(2).with_faults(&plan).with_health_policy(policy);
        let block = [1.0f64];
        let mut out = vec![0.0; 2];
        g.all_gather_rows("allgather_factor", &[&block, &block], &[0, 1], &mut out);
        assert_eq!(g.health().deadline_trips(), vec![1, 0], "2x > the 1.5x budget");
        // Trips surface as fault records on the tripping device.
        let faults = g.device(0).faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::Straggler);
    }

    #[test]
    fn survivor_subset_collectives_charge_only_members() {
        let g = group(4);
        let survivors = [0usize, 1, 3];
        let mk = |v: f64| vec![v];
        let mut bufs = vec![mk(1.0), mk(2.0), mk(3.0)];
        let mut out = vec![0.0; 1];
        g.all_reduce_mat_on("allreduce_gram", &survivors, &mut bufs, 1, &mut out);
        assert_eq!(out[0], 6.0);
        for d in survivors {
            let t = g.device(d).phase_totals(Phase::Transfer);
            assert_eq!(t.launches, 1);
            assert!((t.bytes - 2.0 * 2.0 / 3.0 * 8.0).abs() < 1e-9, "3-member ring traffic");
        }
        assert_eq!(g.device(2).phase_totals(Phase::Transfer).launches, 0, "dead member idle");

        let block = [7.0f64];
        let mut gat = vec![0.0; 3];
        g.all_gather_rows_on(
            "allgather_factor",
            &survivors,
            &[&block, &block, &block],
            &[0, 1, 2],
            &mut gat,
        );
        assert_eq!(gat, vec![7.0, 7.0, 7.0]);
        assert_eq!(g.device(2).phase_totals(Phase::Transfer).launches, 0);

        let cost = KernelCost { flops: 8.0, parallel_work: 8.0, ..Default::default() };
        let v =
            g.replicated_on("hadamard", &survivors, Phase::Gram, KernelClass::Stream, cost, || 9);
        assert_eq!(v, 9);
        assert_eq!(g.device(2).phase_totals(Phase::Gram).launches, 0);
        assert_eq!(g.device(3).phase_totals(Phase::Gram).launches, 1);
    }
}
