//! Modeled device-occupancy fit planning.
//!
//! Combines a byte-exact footprint (from `cstf-telemetry`'s
//! `MemoryFootprint` accounting) with a [`DeviceSpec`]'s DRAM capacity to
//! answer the question every GPU port asks first: *does this (format,
//! rank, device-count) configuration fit in device memory, and if not, by
//! how many bytes does it miss?* The deficit is exactly what a future
//! out-of-core tiling layer must stream per sweep (ROADMAP item 2), so
//! the planner reports it byte-exactly rather than as a ratio.
//!
//! The planner deliberately takes plain byte counts, not format values:
//! `cstf-device` models hardware and must stay independent of
//! `cstf-formats` (the CLI composes the two).

use crate::spec::DeviceSpec;

/// Decimal gigabyte, matching vendor DRAM capacity marketing (an "80 GB"
/// A100 exposes 80e9 usable bytes, not 80 GiB).
pub const GB: f64 = 1e9;

/// Verdict of one occupancy plan: does `required_bytes` fit in
/// `capacity_bytes`, and with what headroom or deficit?
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceFit {
    /// Budget the plan was checked against (device DRAM, or an explicit
    /// `--memory-budget` override).
    pub capacity_bytes: u64,
    /// Deep heap bytes the configuration needs resident.
    pub required_bytes: u64,
    /// `required / capacity` (infinite when capacity is 0 and bytes are
    /// required).
    pub occupancy: f64,
    /// Whether the configuration fits.
    pub fits: bool,
    /// Bytes over budget (0 when it fits) — the amount an out-of-core
    /// tiling layer would have to stream.
    pub deficit_bytes: u64,
    /// Bytes of headroom under budget (0 when it does not fit).
    pub headroom_bytes: u64,
}

/// Plans whether `required_bytes` fits a budget of `capacity_bytes`.
pub fn plan_fit(required_bytes: u64, capacity_bytes: u64) -> DeviceFit {
    let occupancy = if capacity_bytes == 0 {
        if required_bytes == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        required_bytes as f64 / capacity_bytes as f64
    };
    let fits = required_bytes <= capacity_bytes;
    DeviceFit {
        capacity_bytes,
        required_bytes,
        occupancy,
        fits,
        deficit_bytes: required_bytes.saturating_sub(capacity_bytes),
        headroom_bytes: capacity_bytes.saturating_sub(required_bytes),
    }
}

/// Plans against a device's DRAM capacity, or `budget_bytes` when given
/// (the `--memory-budget` override; it wins even when larger than DRAM,
/// so hypothetical devices can be modeled).
pub fn plan_device_fit(
    required_bytes: u64,
    spec: &DeviceSpec,
    budget_bytes: Option<u64>,
) -> DeviceFit {
    plan_fit(required_bytes, budget_bytes.unwrap_or_else(|| device_capacity_bytes(spec)))
}

/// A device's DRAM capacity in bytes (`dram_gb` × 1e9).
pub fn device_capacity_bytes(spec: &DeviceSpec) -> u64 {
    (spec.dram_gb * GB) as u64
}

/// The smallest tile count `K` at which a tiled out-of-core run fits
/// `budget_bytes`, or `None` when no tile count can fit.
///
/// The residency model matches the tiled driver exactly: the factors and
/// other per-run state (`fixed_bytes`) stay device-resident for the whole
/// run, while the tensor (`tensor_bytes`, the in-core footprint of the
/// chosen format) streams through in `K` nnz-balanced tiles of at most
/// `ceil(tensor/K)` bytes — **two** of which are resident at a time,
/// because the next tile's host→device copy is double-buffered against
/// the current tile's compute. So the requirement is
/// `2 * ceil(tensor_bytes / K) + fixed_bytes <= budget_bytes`.
///
/// `Some(1)` means the configuration fits in-core (a `K = 1` run takes
/// the untiled path, holding one copy of the tensor). `None` means even
/// infinitely fine tiling cannot help — the fixed state alone (or the
/// two-tile minimum) exceeds the budget.
pub fn suggested_tile_count(tensor_bytes: u64, fixed_bytes: u64, budget_bytes: u64) -> Option<u64> {
    let avail = budget_bytes.checked_sub(fixed_bytes)?;
    // K = 1 is the untiled in-core path: a single resident copy.
    if tensor_bytes <= avail {
        return Some(1);
    }
    // Largest admissible per-tile size under double-buffering.
    let per_tile = avail / 2;
    if per_tile == 0 {
        return None;
    }
    // ceil(tensor / per_tile): the smallest K with ceil(tensor/K) <= per_tile.
    Some(tensor_bytes.div_ceil(per_tile).max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_decimal_gigabytes() {
        assert_eq!(device_capacity_bytes(&DeviceSpec::a100()), 80_000_000_000);
        assert_eq!(device_capacity_bytes(&DeviceSpec::icelake_xeon()), 400_000_000_000);
    }

    #[test]
    fn fit_reports_headroom() {
        let fit = plan_fit(30, 100);
        assert!(fit.fits);
        assert_eq!(fit.deficit_bytes, 0);
        assert_eq!(fit.headroom_bytes, 70);
        assert!((fit.occupancy - 0.3).abs() < 1e-12);
    }

    #[test]
    fn unfit_reports_exact_deficit() {
        let fit = plan_fit(130, 100);
        assert!(!fit.fits);
        assert_eq!(fit.deficit_bytes, 30);
        assert_eq!(fit.headroom_bytes, 0);
        assert!((fit.occupancy - 1.3).abs() < 1e-12);
    }

    #[test]
    fn boundary_exactly_full_fits() {
        let fit = plan_fit(100, 100);
        assert!(fit.fits);
        assert_eq!(fit.deficit_bytes, 0);
        assert_eq!(fit.headroom_bytes, 0);
        assert_eq!(fit.occupancy, 1.0);
    }

    #[test]
    fn budget_override_wins_over_dram() {
        let spec = DeviceSpec::a100();
        let fit = plan_device_fit(1024, &spec, Some(512));
        assert!(!fit.fits);
        assert_eq!(fit.capacity_bytes, 512);
        assert_eq!(fit.deficit_bytes, 512);
        let unbudgeted = plan_device_fit(1024, &spec, None);
        assert!(unbudgeted.fits);
        assert_eq!(unbudgeted.capacity_bytes, 80_000_000_000);
    }

    #[test]
    fn zero_capacity_is_infinite_occupancy() {
        let fit = plan_fit(1, 0);
        assert!(!fit.fits);
        assert!(fit.occupancy.is_infinite());
        assert_eq!(plan_fit(0, 0).occupancy, 0.0);
    }

    #[test]
    fn tile_count_is_one_when_in_core_fits() {
        assert_eq!(suggested_tile_count(1000, 24, 1024), Some(1));
        assert_eq!(suggested_tile_count(0, 24, 24), Some(1));
    }

    #[test]
    fn tile_count_is_minimal_and_sufficient() {
        for (tensor, fixed, budget) in
            [(1000u64, 100u64, 700u64), (1 << 30, 1 << 20, 1 << 24), (999, 0, 100), (10, 5, 14)]
        {
            let k = suggested_tile_count(tensor, fixed, budget)
                .unwrap_or_else(|| panic!("({tensor},{fixed},{budget}) should fit at some K"));
            let resident = |k: u64| 2 * tensor.div_ceil(k) + fixed;
            assert!(resident(k) <= budget, "K={k} does not fit: {} > {budget}", resident(k));
            if k > 2 {
                assert!(resident(k - 1) > budget, "K={} already fits — {k} is not minimal", k - 1);
            }
        }
    }

    #[test]
    fn tile_count_none_when_fixed_state_cannot_fit() {
        // Fixed bytes alone blow the budget.
        assert_eq!(suggested_tile_count(1000, 2048, 1024), None);
        // Fixed bytes fit exactly but leave no room for any tile.
        assert_eq!(suggested_tile_count(1000, 1024, 1024), None);
        // One spare byte still cannot host two tile buffers.
        assert_eq!(suggested_tile_count(1000, 1023, 1024), None);
    }
}
