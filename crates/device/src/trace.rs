//! Chrome-trace / Perfetto export of kernel records.
//!
//! Serializes retained [`KernelRecord`]s into the Chrome Trace Event
//! format (the `chrome://tracing` / Perfetto JSON array form), laying the
//! modeled kernels out on one timeline track per phase. Useful for eyeball
//! inspection of where a factorization's modeled time goes.
//!
//! Two writers share the event builder:
//!
//! * [`write_chrome_trace`] — complete events only (the original surface);
//! * [`write_trace_events`] — complete events plus counter tracks for the
//!   modeled byte and flop rates (`"ph": "C"`), instant events at profiler
//!   marks such as outer-iteration boundaries (`"ph": "i"`), and flow
//!   arrows (`"ph": "s"`/`"f"`) linking each MTTKRP kernel to the UPDATE
//!   kernel that consumes its output.
//!
//! All JSON is built through `serde_json` values, so kernel names and
//! labels are escaped correctly and non-finite rates are clamped to zero
//! instead of producing invalid tokens like `inf`.

use std::io::Write;

use cstf_telemetry::{alloc, SpanRecord};
use serde_json::{json, Value};

use crate::profiler::{FaultRecord, KernelRecord, MarkRecord, Phase};

/// Serializes records as a Chrome Trace Event JSON array.
///
/// Events are complete-events (`"ph": "X"`) with microsecond timestamps;
/// kernels are laid end-to-end per phase track in record order (the model
/// has no concurrency between kernels — the device is one stream, like the
/// paper's implementation).
pub fn write_chrome_trace<W: Write>(records: &[KernelRecord], mut w: W) -> std::io::Result<()> {
    let events = complete_events(records);
    let text = serde_json::to_string_pretty(&events).expect("trace events serialize");
    writeln!(w, "{text}")
}

/// Serializes records and marks as a full trace: complete events, byte/flop
/// rate counter tracks, instant events at marks, and MTTKRP→UPDATE flow
/// arrows.
pub fn write_trace_events<W: Write>(
    records: &[KernelRecord],
    marks: &[MarkRecord],
    mut w: W,
) -> std::io::Result<()> {
    let mut events = complete_events(records);
    events.extend(counter_events(records));
    events.extend(key_counter_events(records, 1));
    events.extend(instant_events(marks));
    events.extend(flow_events(records));
    let text = serde_json::to_string_pretty(&events).expect("trace events serialize");
    writeln!(w, "{text}")
}

/// Serializes the complete picture of one run: everything
/// [`write_trace_events`] emits, plus injected-fault instants on their own
/// track and host-side telemetry spans laid out on their own per-thread
/// tracks under a second process (`pid` 2). Span timestamps are wall-clock
/// (relative to the first span), while kernel tracks use modeled time —
/// Perfetto renders the two processes side-by-side without conflating the
/// clocks.
pub fn write_full_trace<W: Write>(
    records: &[KernelRecord],
    marks: &[MarkRecord],
    faults: &[FaultRecord],
    spans: &[SpanRecord],
    w: W,
) -> std::io::Result<()> {
    write_full_trace_with_critical_path(records, marks, faults, spans, &[], w)
}

/// [`write_full_trace`] plus flow arrows along the modeled critical path:
/// `chain` holds `(device, record index)` pairs in path order (device is
/// always 0 for a single-device trace, mapped to pid 1).
pub fn write_full_trace_with_critical_path<W: Write>(
    records: &[KernelRecord],
    marks: &[MarkRecord],
    faults: &[FaultRecord],
    spans: &[SpanRecord],
    chain: &[(usize, usize)],
    mut w: W,
) -> std::io::Result<()> {
    let mut events = complete_events(records);
    events.extend(counter_events(records));
    events.extend(key_counter_events(records, 1));
    events.extend(instant_events(marks));
    events.extend(fault_events(faults));
    events.extend(flow_events(records));
    events.extend(critical_path_flow_events(&[records], chain));
    events.extend(span_events(spans));
    events.extend(heap_counter_events(1));
    let text = serde_json::to_string_pretty(&events).expect("trace events serialize");
    writeln!(w, "{text}")
}

/// Serializes a multi-device run: device `d`'s kernels (and their counter
/// tracks) render under process `d + 1`, named `gpu<d>` through process
/// metadata, each with the usual per-phase timeline tracks; host-side
/// telemetry spans render under one further process after the last device.
/// One trace pid per device is the contract the sharded factorization
/// driver exposes (DESIGN.md §11).
pub fn write_multi_device_trace<W: Write>(
    records_per_device: &[Vec<KernelRecord>],
    spans: &[SpanRecord],
    w: W,
) -> std::io::Result<()> {
    write_multi_device_full_trace(records_per_device, &[], &[], spans, w)
}

/// The elastic-run variant of [`write_multi_device_trace`]: in addition to
/// each device's kernel and counter tracks, renders that device's profiler
/// marks (`reshard`, `device_retired`, outer-iteration boundaries) and
/// injected-fault records as instant events on the same per-device pid, so
/// a chaos-sharded timeline shows *where* each device slowed, faulted,
/// retired, and where the survivors resharded. `marks_per_device` and
/// `faults_per_device` may be shorter than `records_per_device` (or empty);
/// missing entries render nothing for that device.
pub fn write_multi_device_full_trace<W: Write>(
    records_per_device: &[Vec<KernelRecord>],
    marks_per_device: &[Vec<MarkRecord>],
    faults_per_device: &[Vec<FaultRecord>],
    spans: &[SpanRecord],
    w: W,
) -> std::io::Result<()> {
    write_multi_device_full_trace_with_critical_path(
        records_per_device,
        marks_per_device,
        faults_per_device,
        spans,
        &[],
        w,
    )
}

/// [`write_multi_device_full_trace`] plus flow arrows along the modeled
/// critical path: `chain` holds `(device, record index)` pairs in path
/// order, rendered between the op boxes they connect (device `d` → pid
/// `d + 1`).
pub fn write_multi_device_full_trace_with_critical_path<W: Write>(
    records_per_device: &[Vec<KernelRecord>],
    marks_per_device: &[Vec<MarkRecord>],
    faults_per_device: &[Vec<FaultRecord>],
    spans: &[SpanRecord],
    chain: &[(usize, usize)],
    mut w: W,
) -> std::io::Result<()> {
    let mut events = Vec::new();
    for (d, records) in records_per_device.iter().enumerate() {
        let pid = d as u32 + 1;
        let args = json!({ "name": format!("gpu{d}") });
        events.push(json!({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": args,
        }));
        events.extend(complete_events_pid(records, pid));
        events.extend(counter_events_pid(records, pid));
        if let Some(marks) = marks_per_device.get(d) {
            events.extend(instant_events_pid(marks, pid));
        }
        if let Some(faults) = faults_per_device.get(d) {
            events.extend(fault_events_pid(faults, pid));
        }
    }
    let per_device: Vec<&[KernelRecord]> =
        records_per_device.iter().map(|r| r.as_slice()).collect();
    events.extend(critical_path_flow_events(&per_device, chain));
    let span_pid = records_per_device.len() as u32 + 1;
    let host_args = json!({ "name": "host" });
    events.push(json!({
        "name": "process_name",
        "ph": "M",
        "pid": span_pid,
        "args": host_args,
    }));
    events.extend(span_events_pid(spans, span_pid));
    events.extend(heap_counter_events(span_pid));
    let text = serde_json::to_string_pretty(&events).expect("trace events serialize");
    writeln!(w, "{text}")
}

/// Counter samples (`"ph": "C"`) for the host heap: the process high-water
/// mark plus one `heap_peak[<region>]` track per registered [`HeapRegion`]
/// (`cstf_telemetry::HeapRegion`). The counters are process-wide watermarks,
/// not time series, so each track carries a single sample at `ts` 0 — a
/// horizontal line Perfetto draws across the whole trace. Empty (and
/// therefore absent) in binaries without the counting allocator.
fn heap_counter_events(pid: u32) -> Vec<Value> {
    let mut events = Vec::new();
    if alloc::peak_bytes() > 0 {
        let args = json!({ "value": alloc::peak_bytes() });
        events.push(json!({
            "name": "heap_high_water_bytes", "ph": "C", "ts": 0.0, "pid": pid, "args": args,
        }));
    }
    for (region, peak) in alloc::region_peaks() {
        let args = json!({ "value": peak });
        events.push(json!({
            "name": format!("heap_peak[{region}]"), "ph": "C", "ts": 0.0, "pid": pid,
            "args": args,
        }));
    }
    events
}

/// Instant events (`"ph": "i"`, process scope) for each injected device
/// fault, named `fault_<kind>` with the faulted kernel in `args`.
fn fault_events(faults: &[FaultRecord]) -> Vec<Value> {
    fault_events_pid(faults, 1)
}

fn fault_events_pid(faults: &[FaultRecord], pid: u32) -> Vec<Value> {
    faults
        .iter()
        .map(|f| {
            let args = json!({ "kernel": f.kernel, "op": f.op });
            json!({
                "name": format!("fault_{}", f.kind.label()),
                "cat": "fault",
                "ph": "i",
                "ts": finite(f.modeled_s_at) * 1e6,
                "pid": pid,
                "tid": 0,
                "s": "p",
                "args": args,
            })
        })
        .collect()
}

/// Complete events for host-side spans, one track per recording thread,
/// timestamped relative to the earliest span.
fn span_events(spans: &[SpanRecord]) -> Vec<Value> {
    span_events_pid(spans, 2)
}

fn span_events_pid(spans: &[SpanRecord], pid: u32) -> Vec<Value> {
    let t0 = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    spans
        .iter()
        .map(|s| {
            let args = match s.mode {
                Some(m) => json!({ "mode": m, "depth": s.depth }),
                None => json!({ "depth": s.depth }),
            };
            json!({
                "name": s.name,
                "cat": "span",
                "ph": "X",
                "ts": (s.start_ns - t0) as f64 / 1e3,
                "dur": s.dur_ns as f64 / 1e3,
                "pid": pid,
                "tid": s.thread,
                "args": args,
            })
        })
        .collect()
}

/// Start timestamps (µs) of each record laid end-to-end in record order.
fn start_times_us(records: &[KernelRecord]) -> Vec<f64> {
    let mut starts = Vec::with_capacity(records.len());
    let mut cursor_us = 0.0;
    for rec in records {
        starts.push(cursor_us);
        cursor_us += finite(rec.modeled_s) * 1e6;
    }
    starts
}

fn complete_events(records: &[KernelRecord]) -> Vec<Value> {
    complete_events_pid(records, 1)
}

fn complete_events_pid(records: &[KernelRecord], pid: u32) -> Vec<Value> {
    let starts = start_times_us(records);
    records
        .iter()
        .zip(&starts)
        .map(|(rec, &ts)| {
            let args = match rec.mode {
                Some(m) => json!({
                    "flops": finite(rec.cost.flops),
                    "bytes": finite(rec.cost.bytes()),
                    "measured_s": finite(rec.measured_s),
                    "mode": m,
                }),
                None => json!({
                    "flops": finite(rec.cost.flops),
                    "bytes": finite(rec.cost.bytes()),
                    "measured_s": finite(rec.measured_s),
                }),
            };
            json!({
                "name": rec.name,
                "cat": rec.phase.label(),
                "ph": "X",
                "ts": ts,
                "dur": finite(rec.modeled_s) * 1e6,
                "pid": pid,
                "tid": phase_track(rec.phase),
                "args": args,
            })
        })
        .collect()
}

/// One counter sample per kernel on the `flop/s` and `bytes/s` tracks: the
/// kernel's modeled rate, stamped at its start time.
fn counter_events(records: &[KernelRecord]) -> Vec<Value> {
    counter_events_pid(records, 1)
}

fn counter_events_pid(records: &[KernelRecord], pid: u32) -> Vec<Value> {
    let starts = start_times_us(records);
    let mut events = Vec::with_capacity(records.len() * 2);
    for (rec, &ts) in records.iter().zip(&starts) {
        let flops_per_s = finite(rec.cost.flops / rec.modeled_s);
        let bytes_per_s = finite(rec.cost.bytes() / rec.modeled_s);
        let flop_args = json!({ "value": flops_per_s });
        let byte_args = json!({ "value": bytes_per_s });
        events.push(json!({
            "name": "flop/s", "ph": "C", "ts": ts, "pid": pid, "args": flop_args,
        }));
        events.push(json!({
            "name": "bytes/s", "ph": "C", "ts": ts, "pid": pid, "args": byte_args,
        }));
    }
    events
}

/// Cumulative per-key counter tracks: one `"ph": "C"` sample per kernel on
/// a track named after its `(phase, kernel, mode)` attribution key, carrying
/// the running flop total for that key. These are the same exact counters
/// `cstf analyze` and the perf baselines consume, rendered over modeled
/// time, so counter drift between two traces is visible as diverging stair
/// steps rather than requiring a diff tool.
fn key_counter_events(records: &[KernelRecord], pid: u32) -> Vec<Value> {
    let starts = start_times_us(records);
    let mut running: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    let mut events = Vec::with_capacity(records.len());
    for (rec, &ts) in records.iter().zip(&starts) {
        let mode = rec.mode.map_or_else(|| "-".to_string(), |m| m.to_string());
        let track = format!("flops[{}/{}/{}]", rec.phase.label(), rec.name, mode);
        let total = running.entry(track.clone()).or_insert(0.0);
        *total += finite(rec.cost.flops);
        let args = json!({ "value": *total });
        events.push(json!({
            "name": track, "ph": "C", "ts": ts, "pid": pid, "args": args,
        }));
    }
    events
}

/// Instant events (`"ph": "i"`, process scope) at each profiler mark.
fn instant_events(marks: &[MarkRecord]) -> Vec<Value> {
    instant_events_pid(marks, 1)
}

fn instant_events_pid(marks: &[MarkRecord], pid: u32) -> Vec<Value> {
    marks
        .iter()
        .map(|m| {
            json!({
                "name": m.label,
                "ph": "i",
                "ts": finite(m.modeled_s_at) * 1e6,
                "pid": pid,
                "tid": 0,
                "s": "p",
            })
        })
        .collect()
}

/// Flow arrows from each MTTKRP kernel to the next UPDATE-phase kernel:
/// the dataflow the paper's Algorithm 1 pairs per mode (the MTTKRP result
/// feeds that mode's constrained update).
fn flow_events(records: &[KernelRecord]) -> Vec<Value> {
    let starts = start_times_us(records);
    let mut events = Vec::new();
    let mut flow_id: u64 = 0;
    for (i, rec) in records.iter().enumerate() {
        if rec.phase != Phase::Mttkrp {
            continue;
        }
        let Some(j) = (i + 1..records.len()).find(|&j| records[j].phase == Phase::Update) else {
            continue;
        };
        flow_id += 1;
        let end_of_mttkrp = starts[i] + finite(rec.modeled_s) * 1e6;
        events.push(json!({
            "name": "mttkrp_to_update",
            "cat": "dataflow",
            "ph": "s",
            "id": flow_id,
            "ts": end_of_mttkrp,
            "pid": 1,
            "tid": phase_track(Phase::Mttkrp),
        }));
        events.push(json!({
            "name": "mttkrp_to_update",
            "cat": "dataflow",
            "ph": "f",
            "bp": "e",
            "id": flow_id,
            "ts": starts[j],
            "pid": 1,
            "tid": phase_track(Phase::Update),
        }));
    }
    events
}

/// Flow arrows (`"ph": "s"`/`"f"`, cat `"critical_path"`) linking each
/// consecutive pair of ops on the modeled critical path. `chain` holds
/// `(device, record index)` pairs in path order, as produced by
/// [`crate::dag::DagAnalysis`]; `records_per_device[d]` must be the same
/// record stream the complete events were built from, so the arrows land
/// exactly on the op boxes (pid `d + 1`, the per-device process layout of
/// [`write_multi_device_full_trace`]; pass a single stream for the
/// single-device writers, where everything is pid 1).
pub fn critical_path_flow_events(
    records_per_device: &[&[KernelRecord]],
    chain: &[(usize, usize)],
) -> Vec<Value> {
    let starts: Vec<Vec<f64>> = records_per_device.iter().map(|r| start_times_us(r)).collect();
    let op = |d: usize, i: usize| -> Option<(&KernelRecord, f64)> {
        let recs = records_per_device.get(d)?;
        Some((recs.get(i)?, *starts.get(d)?.get(i)?))
    };
    let mut events = Vec::new();
    for (flow_id, pair) in chain.windows(2).enumerate() {
        let ((ad, ai), (bd, bi)) = (pair[0], pair[1]);
        let (Some((a, a_ts)), Some((b, b_ts))) = (op(ad, ai), op(bd, bi)) else { continue };
        let id = flow_id as u64 + 1;
        events.push(json!({
            "name": "critical_path",
            "cat": "critical_path",
            "ph": "s",
            "id": id,
            "ts": a_ts + finite(a.modeled_s) * 1e6,
            "pid": ad as u32 + 1,
            "tid": phase_track(a.phase),
        }));
        events.push(json!({
            "name": "critical_path",
            "cat": "critical_path",
            "ph": "f",
            "bp": "e",
            "id": id,
            "ts": b_ts,
            "pid": bd as u32 + 1,
            "tid": phase_track(b.phase),
        }));
    }
    events
}

/// Replaces non-finite values with `0.0`: trace consumers reject `inf` /
/// `NaN` tokens, and a zero-length or zero-rate event is the honest
/// rendering of an unmodeled quantity.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn phase_track(phase: Phase) -> u32 {
    match phase {
        Phase::Gram => 1,
        Phase::Mttkrp => 2,
        Phase::Update => 3,
        Phase::Normalize => 4,
        Phase::Transfer => 5,
        Phase::Other => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{KernelClass, KernelCost};

    fn rec(name: &'static str, phase: Phase, secs: f64) -> KernelRecord {
        KernelRecord {
            name,
            phase,
            class: KernelClass::Stream,
            cost: KernelCost { flops: 100.0, bytes_read: 800.0, ..Default::default() },
            modeled_s: secs,
            raw_s: secs,
            measured_s: 0.0,
            mode: None,
            collective_seq: None,
        }
    }

    #[test]
    fn trace_is_valid_json_array() {
        let records =
            vec![rec("mttkrp", Phase::Mttkrp, 1e-3), rec("compute_auxiliary", Phase::Update, 2e-3)];
        let mut buf = Vec::new();
        write_chrome_trace(&records, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["name"], "mttkrp");
        assert_eq!(arr[1]["cat"], "UPDATE");
        assert_eq!(arr[1]["ts"].as_f64().unwrap(), 1000.0); // after the first ms
        assert_eq!(arr[1]["dur"].as_f64().unwrap(), 2000.0);
    }

    #[test]
    fn empty_records_still_valid() {
        let mut buf = Vec::new();
        write_chrome_trace(&[], &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 0);
    }

    #[test]
    fn phases_map_to_distinct_tracks() {
        let tracks: Vec<u32> = Phase::all().iter().map(|&p| phase_track(p)).collect();
        let unique: std::collections::HashSet<_> = tracks.iter().collect();
        assert_eq!(unique.len(), tracks.len());
    }

    #[test]
    fn names_needing_escapes_still_produce_valid_json() {
        let records = vec![rec("weird\"name\\with\ttokens", Phase::Other, 1e-3)];
        let mut buf = Vec::new();
        write_chrome_trace(&records, &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).expect("escaped JSON");
        assert_eq!(parsed[0]["name"], "weird\"name\\with\ttokens");
    }

    #[test]
    fn non_finite_costs_are_clamped_not_emitted() {
        let mut bad = rec("divergent", Phase::Update, 1e-3);
        bad.cost.flops = f64::INFINITY;
        bad.modeled_s = f64::NAN;
        let mut buf = Vec::new();
        write_trace_events(&[bad], &[], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("inf") && !text.contains("NaN"), "no raw non-finite tokens");
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(parsed[0]["dur"].as_f64().unwrap(), 0.0);
        assert_eq!(parsed[0]["args"]["flops"].as_f64().unwrap(), 0.0);
    }

    #[test]
    fn full_trace_has_counters_instants_and_flows() {
        let records =
            vec![rec("mttkrp_blco", Phase::Mttkrp, 1e-3), rec("admm_iterate", Phase::Update, 2e-3)];
        let marks = vec![crate::profiler::MarkRecord {
            label: "outer_iteration",
            seq: 2,
            modeled_s_at: 3e-3,
        }];
        let mut buf = Vec::new();
        write_trace_events(&records, &marks, &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        let arr = parsed.as_array().unwrap();

        let phases: Vec<&str> = arr.iter().filter_map(|e| e["ph"].as_str()).collect();
        assert!(phases.contains(&"X"), "complete events present");
        assert!(phases.contains(&"C"), "counter events present");
        assert!(phases.contains(&"i"), "instant events present");
        assert!(phases.contains(&"s") && phases.contains(&"f"), "flow pair present");

        let counter = arr.iter().find(|e| e["ph"] == "C" && e["name"] == "flop/s").unwrap();
        assert_eq!(counter["args"]["value"].as_f64().unwrap(), 100.0 / 1e-3);

        let instant = arr.iter().find(|e| e["ph"] == "i").unwrap();
        assert_eq!(instant["name"], "outer_iteration");
        assert_eq!(instant["ts"].as_f64().unwrap(), 3000.0);

        let start = arr.iter().find(|e| e["ph"] == "s").unwrap();
        let finish = arr.iter().find(|e| e["ph"] == "f").unwrap();
        assert_eq!(start["id"], finish["id"]);
        assert_eq!(finish["bp"], "e");
        assert_eq!(start["ts"].as_f64().unwrap(), 1000.0); // end of the MTTKRP kernel
        assert_eq!(finish["ts"].as_f64().unwrap(), 1000.0); // start of the UPDATE kernel
    }

    #[test]
    fn spans_render_as_second_process_with_relative_timestamps() {
        let spans = vec![
            SpanRecord {
                name: "outer_iteration",
                mode: None,
                depth: 0,
                thread: 7,
                start_ns: 5_000,
                dur_ns: 9_000,
            },
            SpanRecord {
                name: "mode_update",
                mode: Some(1),
                depth: 1,
                thread: 7,
                start_ns: 6_000,
                dur_ns: 2_000,
            },
        ];
        let mut buf = Vec::new();
        write_full_trace(&[], &[], &[], &spans, &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        // Heap counter tracks may coexist; look at the span events only.
        let arr: Vec<&serde_json::Value> =
            parsed.as_array().unwrap().iter().filter(|e| e["cat"] == "span").collect();
        assert_eq!(arr.len(), 2);
        assert!(arr.iter().all(|e| e["pid"] == 2 && e["tid"] == 7));
        let outer = arr.iter().find(|e| e["name"] == "outer_iteration").unwrap();
        assert_eq!(outer["ts"].as_f64().unwrap(), 0.0); // relative to first span
        assert_eq!(outer["dur"].as_f64().unwrap(), 9.0);
        let inner = arr.iter().find(|e| e["name"] == "mode_update").unwrap();
        assert_eq!(inner["args"]["mode"], 1);
        assert_eq!(inner["args"]["depth"], 1);
    }

    #[test]
    fn injected_faults_render_as_instants_on_the_fault_track() {
        use crate::fault::FaultKind;
        let faults = vec![
            FaultRecord {
                kind: FaultKind::TransientLaunch,
                kernel: "fused_inner_sweep",
                op: 12,
                modeled_s_at: 2e-3,
            },
            FaultRecord {
                kind: FaultKind::NanCorruption,
                kernel: "mttkrp",
                op: 30,
                modeled_s_at: 5e-3,
            },
        ];
        let mut buf = Vec::new();
        write_full_trace(&[], &[], &faults, &[], &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        let arr = parsed.as_array().unwrap();
        let transient =
            arr.iter().find(|e| e["name"] == "fault_transient_launch").expect("instant present");
        assert_eq!(transient["ph"], "i");
        assert_eq!(transient["cat"], "fault");
        assert_eq!(transient["args"]["kernel"], "fused_inner_sweep");
        assert_eq!(transient["ts"].as_f64().unwrap(), 2000.0);
        assert!(arr.iter().any(|e| e["name"] == "fault_nan_corruption"));
    }

    #[test]
    fn multi_device_trace_gives_each_device_its_own_pid() {
        let per_device = vec![
            vec![rec("mttkrp_shard", Phase::Mttkrp, 1e-3)],
            vec![rec("mttkrp_shard", Phase::Mttkrp, 1e-3), rec("gram_syrk", Phase::Gram, 5e-4)],
        ];
        let spans = vec![SpanRecord {
            name: "outer_iteration",
            mode: None,
            depth: 0,
            thread: 1,
            start_ns: 100,
            dur_ns: 400,
        }];
        let mut buf = Vec::new();
        write_multi_device_trace(&per_device, &spans, &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        let arr = parsed.as_array().unwrap();

        // Device d's kernels carry pid d + 1.
        let kernel_pids: Vec<i64> = arr
            .iter()
            .filter(|e| e["ph"] == "X" && e["cat"] != "span")
            .map(|e| e["pid"].as_i64().unwrap())
            .collect();
        assert_eq!(kernel_pids, vec![1, 2, 2]);

        // Host spans land on the process after the last device.
        let span = arr.iter().find(|e| e["cat"] == "span").unwrap();
        assert_eq!(span["pid"], 3);

        // Process-name metadata labels every pid.
        let names: Vec<(&str, i64)> = arr
            .iter()
            .filter(|e| e["ph"] == "M")
            .map(|e| (e["args"]["name"].as_str().unwrap(), e["pid"].as_i64().unwrap()))
            .collect();
        assert_eq!(names, vec![("gpu0", 1), ("gpu1", 2), ("host", 3)]);
    }

    #[test]
    fn elastic_multi_device_trace_pins_marks_and_faults_to_their_device() {
        use crate::fault::FaultKind;
        let per_device = vec![
            vec![rec("mttkrp_shard", Phase::Mttkrp, 1e-3)],
            vec![rec("mttkrp_shard", Phase::Mttkrp, 1e-3)],
            vec![],
        ];
        let marks = vec![
            vec![MarkRecord { label: "reshard", seq: 1, modeled_s_at: 2e-3 }],
            vec![],
            vec![MarkRecord { label: "device_retired", seq: 1, modeled_s_at: 1e-3 }],
        ];
        let faults = vec![
            vec![],
            vec![FaultRecord {
                kind: FaultKind::Straggler,
                kernel: "all_reduce",
                op: 4,
                modeled_s_at: 5e-4,
            }],
        ];
        let mut buf = Vec::new();
        write_multi_device_full_trace(&per_device, &marks, &faults, &[], &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        let arr = parsed.as_array().unwrap();

        let reshard = arr.iter().find(|e| e["name"] == "reshard").expect("reshard instant");
        assert_eq!(reshard["ph"], "i");
        assert_eq!(reshard["pid"], 1); // device 0 → pid 1
        let retired = arr.iter().find(|e| e["name"] == "device_retired").expect("retire instant");
        assert_eq!(retired["pid"], 3); // device 2 → pid 3
        let straggle = arr.iter().find(|e| e["name"] == "fault_straggler").expect("fault instant");
        assert_eq!(straggle["pid"], 2); // device 1 → pid 2
        assert_eq!(straggle["cat"], "fault");
        // Shorter faults vec than devices: device 2 simply has no fault events.
        assert!(arr.iter().filter(|e| e["cat"] == "fault").count() == 1);
    }

    #[test]
    fn key_counter_tracks_accumulate_per_attribution_key() {
        let mut a = rec("mttkrp", Phase::Mttkrp, 1e-3);
        a.mode = Some(0);
        let mut b = rec("mttkrp", Phase::Mttkrp, 1e-3);
        b.mode = Some(0);
        let c = rec("cholesky_factor", Phase::Update, 1e-4);
        let mut buf = Vec::new();
        write_trace_events(&[a, b, c], &[], &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        let arr = parsed.as_array().unwrap();

        let samples: Vec<f64> = arr
            .iter()
            .filter(|e| e["ph"] == "C" && e["name"] == "flops[MTTKRP/mttkrp/0]")
            .map(|e| e["args"]["value"].as_f64().unwrap())
            .collect();
        assert_eq!(samples, vec![100.0, 200.0], "running total per key");
        assert!(
            arr.iter().any(|e| e["name"] == "flops[UPDATE/cholesky_factor/-]"),
            "mode-less keys land on the '-' track"
        );
        let complete = arr.iter().find(|e| e["ph"] == "X" && e["name"] == "mttkrp").unwrap();
        assert_eq!(complete["args"]["mode"], 0);
    }

    #[test]
    fn heap_region_peaks_render_as_counter_tracks() {
        // Registering a region makes its watermark track appear in every
        // subsequent full trace (process-global, like the allocator).
        let _r = cstf_telemetry::HeapRegion::enter("trace-test-region");
        drop(_r);
        let mut buf = Vec::new();
        write_full_trace(&[], &[], &[], &[], &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        let track = parsed
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["name"] == "heap_peak[trace-test-region]")
            .expect("region counter track present");
        assert_eq!(track["ph"], "C");
        assert!(track["args"]["value"].as_u64().is_some());
    }

    #[test]
    fn mttkrp_without_downstream_update_emits_no_dangling_flow() {
        let records = vec![rec("mttkrp_tail", Phase::Mttkrp, 1e-3)];
        let mut buf = Vec::new();
        write_trace_events(&records, &[], &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert!(parsed.as_array().unwrap().iter().all(|e| e["ph"] != "s" && e["ph"] != "f"));
    }
}
