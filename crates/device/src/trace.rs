//! Chrome-trace export of kernel records.
//!
//! Serializes retained [`KernelRecord`]s into the Chrome Trace Event
//! format (the `chrome://tracing` / Perfetto JSON array form), laying the
//! modeled kernels out on one timeline track per phase. Useful for eyeball
//! inspection of where a factorization's modeled time goes.

use std::io::Write;

use crate::profiler::{KernelRecord, Phase};

/// Serializes records as a Chrome Trace Event JSON array.
///
/// Events are complete-events (`"ph": "X"`) with microsecond timestamps;
/// kernels are laid end-to-end per phase track in record order (the model
/// has no concurrency between kernels — the device is one stream, like the
/// paper's implementation).
pub fn write_chrome_trace<W: Write>(records: &[KernelRecord], mut w: W) -> std::io::Result<()> {
    writeln!(w, "[")?;
    let mut cursor_us: f64 = 0.0;
    for (i, rec) in records.iter().enumerate() {
        let dur_us = rec.modeled_s * 1e6;
        let tid = phase_track(rec.phase);
        let comma = if i + 1 == records.len() { "" } else { "," };
        writeln!(
            w,
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
             \"pid\": 1, \"tid\": {}, \"args\": {{\"flops\": {:.3e}, \"bytes\": {:.3e}}}}}{}",
            rec.name,
            rec.phase.label(),
            cursor_us,
            dur_us,
            tid,
            rec.cost.flops,
            rec.cost.bytes(),
            comma
        )?;
        cursor_us += dur_us;
    }
    writeln!(w, "]")
}

fn phase_track(phase: Phase) -> u32 {
    match phase {
        Phase::Gram => 1,
        Phase::Mttkrp => 2,
        Phase::Update => 3,
        Phase::Normalize => 4,
        Phase::Transfer => 5,
        Phase::Other => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{KernelClass, KernelCost};

    fn rec(name: &'static str, phase: Phase, secs: f64) -> KernelRecord {
        KernelRecord {
            name,
            phase,
            class: KernelClass::Stream,
            cost: KernelCost { flops: 100.0, bytes_read: 800.0, ..Default::default() },
            modeled_s: secs,
            measured_s: 0.0,
        }
    }

    #[test]
    fn trace_is_valid_json_array() {
        let records =
            vec![rec("mttkrp", Phase::Mttkrp, 1e-3), rec("compute_auxiliary", Phase::Update, 2e-3)];
        let mut buf = Vec::new();
        write_chrome_trace(&records, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["name"], "mttkrp");
        assert_eq!(arr[1]["cat"], "UPDATE");
        assert_eq!(arr[1]["ts"].as_f64().unwrap(), 1000.0); // after the first ms
        assert_eq!(arr[1]["dur"].as_f64().unwrap(), 2000.0);
    }

    #[test]
    fn empty_records_still_valid() {
        let mut buf = Vec::new();
        write_chrome_trace(&[], &mut buf).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 0);
    }

    #[test]
    fn phases_map_to_distinct_tracks() {
        let tracks: Vec<u32> = Phase::all().iter().map(|&p| phase_track(p)).collect();
        let unique: std::collections::HashSet<_> = tracks.iter().collect();
        assert_eq!(unique.len(), tracks.len());
    }
}
