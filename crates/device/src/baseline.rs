//! Schema-versioned performance baselines and the counter-exact diff.
//!
//! A [`PerfBaseline`] snapshots the per-key kernel aggregates of one run
//! configuration (dataset x format x rank x update rule x device count) as
//! a JSON artifact under `results/baselines/`. Because the simulated
//! device meters exact flop/byte/launch tallies, the counters in two runs
//! of the same build are bit-identical — so [`compare_baselines`] can
//! demand **exact** equality on `launches`, `flops`, and `bytes`, and any
//! drift is a real algorithmic change rather than measurement noise.
//! Modeled time gets a tight relative tolerance (it is a pure function of
//! the counters and the [`DeviceSpec`](crate::DeviceSpec), but summation
//! order can perturb the last ulp); host wall-clock (`measured_s`) is
//! advisory only and never fails the gate.
//!
//! The CI `perf-gate` job records a fresh baseline per matrix cell and
//! compares it against the checked-in artifact; a non-empty drift set exits
//! with a distinct code so the workflow can fail precisely on unacknowledged
//! counter drift (DESIGN.md §12).

use std::collections::BTreeMap;

use serde::Serialize;
use serde_json::Value;

use crate::profiler::{KernelKey, KernelTotals};

/// Current baseline artifact schema version. Bump when the JSON shape
/// changes; `from_json` rejects mismatched versions so a stale artifact
/// fails loudly instead of diffing garbage.
pub const BASELINE_SCHEMA_VERSION: u64 = 1;

/// One kernel key's aggregates inside a baseline: the flattened
/// `(gpu, phase, kernel, mode)` coordinate plus its exact counters.
#[derive(Debug, Clone, Serialize)]
pub struct KernelBaseline {
    /// Device index within the run (`0` for single-device runs).
    pub gpu: u64,
    /// Phase label (`"GRAM"`, `"MTTKRP"`, ...).
    pub phase: String,
    /// Kernel name.
    pub kernel: String,
    /// Tensor-mode context, or `None` outside the mode loop.
    pub mode: Option<u32>,
    /// Exact launch count.
    pub launches: u64,
    /// Exact flop tally.
    pub flops: f64,
    /// Exact byte tally.
    pub bytes: f64,
    /// Roofline-modeled seconds (deterministic function of the counters).
    pub modeled_s: f64,
    /// Host wall-clock seconds (noisy; advisory only).
    pub measured_s: f64,
}

impl KernelBaseline {
    /// Builds one entry from a profiler aggregate.
    pub fn from_totals(gpu: usize, key: &KernelKey, t: &KernelTotals) -> Self {
        Self {
            gpu: gpu as u64,
            phase: key.0.label().to_string(),
            kernel: key.1.to_string(),
            mode: key.2,
            launches: t.launches as u64,
            flops: t.flops,
            bytes: t.bytes,
            modeled_s: t.modeled_s,
            measured_s: t.measured_s,
        }
    }

    /// Human-readable key string, `gpu0 UPDATE/trsm_fwd_bwd/2`
    /// (`-` for mode-less keys).
    pub fn key_string(&self) -> String {
        let mode = self.mode.map_or_else(|| "-".to_string(), |m| m.to_string());
        format!("gpu{} {}/{}/{}", self.gpu, self.phase, self.kernel, mode)
    }
}

/// A schema-versioned perf baseline: run configuration plus the full
/// per-key counter table.
#[derive(Debug, Clone, Serialize)]
pub struct PerfBaseline {
    /// Artifact schema version ([`BASELINE_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Dataset identifier (`"synthetic"` or a tensor name).
    pub dataset: String,
    /// Sparse format (`"coo"`, `"csf"`, `"alto"`, ...).
    pub format: String,
    /// Decomposition rank.
    pub rank: u64,
    /// Update rule (`"admm"`, `"cuadmm"`, `"cuadmm-fused"`, ...).
    pub update: String,
    /// Device count (`1` = single device).
    pub gpus: u64,
    /// Device spec name the run was modeled on.
    pub device: String,
    /// Per-key aggregates, sorted by (gpu, phase order, kernel, mode).
    pub kernels: Vec<KernelBaseline>,
}

impl PerfBaseline {
    /// Canonical artifact file stem for this configuration:
    /// `<dataset>-<format>-r<rank>-<update>-g<gpus>`.
    pub fn file_stem(&self) -> String {
        format!(
            "{}-{}-r{}-{}-g{}",
            self.dataset,
            self.format,
            self.rank,
            self.update.replace('_', "-"),
            self.gpus
        )
    }

    /// Serializes to pretty JSON (the checked-in artifact format).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline serializes")
    }

    /// Parses a baseline artifact, rejecting unknown schema versions.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("baseline: {e}"))?;
        let version = get_u64(&v, "schema_version")?;
        if version != BASELINE_SCHEMA_VERSION {
            return Err(format!(
                "baseline schema version {version} != supported {BASELINE_SCHEMA_VERSION}"
            ));
        }
        let kernels = v
            .get("kernels")
            .and_then(Value::as_array)
            .ok_or_else(|| "missing kernels array".to_string())?
            .iter()
            .map(kernel_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            schema_version: version,
            dataset: get_str(&v, "dataset")?,
            format: get_str(&v, "format")?,
            rank: get_u64(&v, "rank")?,
            update: get_str(&v, "update")?,
            gpus: get_u64(&v, "gpus")?,
            device: get_str(&v, "device")?,
            kernels,
        })
    }

    /// The run-configuration tuple two baselines must share to be
    /// comparable.
    fn config_tuple(&self) -> (String, String, u64, String, u64, String) {
        (
            self.dataset.clone(),
            self.format.clone(),
            self.rank,
            self.update.clone(),
            self.gpus,
            self.device.clone(),
        )
    }
}

fn kernel_from_value(v: &Value) -> Result<KernelBaseline, String> {
    let mode = match v.get("mode") {
        None | Some(Value::Null) => None,
        Some(m) => Some(m.as_u64().ok_or_else(|| "non-integer mode".to_string())? as u32),
    };
    Ok(KernelBaseline {
        gpu: get_u64(v, "gpu")?,
        phase: get_str(v, "phase")?,
        kernel: get_str(v, "kernel")?,
        mode,
        launches: get_u64(v, "launches")?,
        flops: get_f64(v, "flops")?,
        bytes: get_f64(v, "bytes")?,
        modeled_s: get_f64(v, "modeled_s")?,
        measured_s: get_f64(v, "measured_s")?,
    })
}

fn get_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing integer field {key:?}"))
}

/// Direction of a baseline delta. Both regressions and improvements are
/// *drift* — either fails the gate until the baseline is re-recorded —
/// but the report distinguishes them so an improvement isn't mistaken for
/// a problem. [`DeltaKind::Neutral`] marks advisory rows (wall-clock
/// movement) that never fail the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Counter increased (or a new key appeared): more work than baseline.
    Regression,
    /// Counter decreased (or a key vanished): less work than baseline.
    Improvement,
    /// Advisory only (noisy wall-clock); never fails the gate.
    Neutral,
}

impl DeltaKind {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DeltaKind::Regression => "regression",
            DeltaKind::Improvement => "improvement",
            DeltaKind::Neutral => "neutral",
        }
    }
}

/// One divergence between a baseline and a current run.
#[derive(Debug, Clone)]
pub struct BaselineDelta {
    /// Offending key, as [`KernelBaseline::key_string`].
    pub key: String,
    /// Which field diverged (`"launches"`, `"flops"`, `"bytes"`,
    /// `"modeled_s"`, `"measured_s"`, or `"present"` for a key that exists
    /// on only one side).
    pub field: &'static str,
    /// Baseline value (`0.0` when the key is new).
    pub baseline: f64,
    /// Current value (`0.0` when the key vanished).
    pub current: f64,
    /// Classification; `Regression`/`Improvement` fail the gate.
    pub kind: DeltaKind,
}

impl BaselineDelta {
    /// Whether this delta fails the gate.
    pub fn is_drift(&self) -> bool {
        self.kind != DeltaKind::Neutral
    }
}

/// Relative tolerance for modeled time: it is a deterministic function of
/// the exact counters, but per-record summation order may wiggle the last
/// few ulps when aggregates are folded differently.
const MODELED_S_REL_TOL: f64 = 1e-9;

/// Advisory band for host wall-clock: movement beyond this fraction is
/// *reported* (as [`DeltaKind::Neutral`]) but never fails the gate.
const MEASURED_S_REL_BAND: f64 = 0.5;

/// Diffs `current` against `baseline`, per key.
///
/// Counters (`launches`, `flops`, `bytes`) must match exactly; modeled
/// time must match to [`MODELED_S_REL_TOL`]; wall-clock outside
/// [`MEASURED_S_REL_BAND`] produces an advisory row. Keys present on only
/// one side produce a `"present"` drift row. Errors if the two artifacts
/// describe different run configurations.
pub fn compare_baselines(
    baseline: &PerfBaseline,
    current: &PerfBaseline,
) -> Result<Vec<BaselineDelta>, String> {
    if baseline.config_tuple() != current.config_tuple() {
        return Err(format!(
            "config mismatch: baseline is {}, current is {}",
            baseline.file_stem(),
            current.file_stem()
        ));
    }

    type MapKey = (u64, String, String, Option<u32>);
    let index = |b: &PerfBaseline| -> BTreeMap<MapKey, KernelBaseline> {
        b.kernels
            .iter()
            .map(|k| ((k.gpu, k.phase.clone(), k.kernel.clone(), k.mode), k.clone()))
            .collect()
    };
    let base_map = index(baseline);
    let cur_map = index(current);

    let mut deltas = Vec::new();
    for (key, b) in &base_map {
        let Some(c) = cur_map.get(key) else {
            deltas.push(BaselineDelta {
                key: b.key_string(),
                field: "present",
                baseline: b.launches as f64,
                current: 0.0,
                kind: DeltaKind::Improvement,
            });
            continue;
        };
        let mut exact = |field: &'static str, bv: f64, cv: f64| {
            if bv != cv {
                deltas.push(BaselineDelta {
                    key: b.key_string(),
                    field,
                    baseline: bv,
                    current: cv,
                    kind: if cv > bv { DeltaKind::Regression } else { DeltaKind::Improvement },
                });
            }
        };
        exact("launches", b.launches as f64, c.launches as f64);
        exact("flops", b.flops, c.flops);
        exact("bytes", b.bytes, c.bytes);
        if rel_diff(c.modeled_s, b.modeled_s) > MODELED_S_REL_TOL {
            deltas.push(BaselineDelta {
                key: b.key_string(),
                field: "modeled_s",
                baseline: b.modeled_s,
                current: c.modeled_s,
                kind: if c.modeled_s > b.modeled_s {
                    DeltaKind::Regression
                } else {
                    DeltaKind::Improvement
                },
            });
        }
        if rel_diff(c.measured_s, b.measured_s) > MEASURED_S_REL_BAND {
            deltas.push(BaselineDelta {
                key: b.key_string(),
                field: "measured_s",
                baseline: b.measured_s,
                current: c.measured_s,
                kind: DeltaKind::Neutral,
            });
        }
    }
    for (key, c) in &cur_map {
        if !base_map.contains_key(key) {
            deltas.push(BaselineDelta {
                key: c.key_string(),
                field: "present",
                baseline: 0.0,
                current: c.launches as f64,
                kind: DeltaKind::Regression,
            });
        }
    }
    Ok(deltas)
}

/// Measured-vs-modeled ratchet: compares the aggregate
/// `measured_s / modeled_s` ratio of `current` against `baseline` and
/// returns a `Regression` delta when the current ratio exceeds the
/// baseline's by more than `band` (a fraction, e.g. `0.25` = 25%).
///
/// The per-key wall-clock comparison above is advisory because individual
/// kernels are noisy, but the whole-run ratio of measured to modeled time
/// is the gap the roofline attribution says we *should* close — letting it
/// quietly grow means the implementation is drifting away from the model.
/// Aggregating over every kernel keeps the noise tolerable, and the band
/// absorbs the rest. Returns `None` (no opinion) when either side lacks
/// positive measured and modeled totals — e.g. baselines recorded before
/// wall-clock capture, or runs with timing disabled.
pub fn compare_measured_band(
    baseline: &PerfBaseline,
    current: &PerfBaseline,
    band: f64,
) -> Option<BaselineDelta> {
    let ratio = |b: &PerfBaseline| -> Option<f64> {
        let measured: f64 = b.kernels.iter().map(|k| k.measured_s).sum();
        let modeled: f64 = b.kernels.iter().map(|k| k.modeled_s).sum();
        (measured > 0.0 && modeled > 0.0).then(|| measured / modeled)
    };
    let base_ratio = ratio(baseline)?;
    let cur_ratio = ratio(current)?;
    (cur_ratio > base_ratio * (1.0 + band)).then(|| BaselineDelta {
        key: "aggregate".to_string(),
        field: "measured/modeled",
        baseline: base_ratio,
        current: cur_ratio,
        kind: DeltaKind::Regression,
    })
}

/// `|a - b| / max(|a|, |b|)`, `0.0` when both are zero.
fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::Phase;

    fn entry(kernel: &str, mode: Option<u32>, launches: u64, flops: f64) -> KernelBaseline {
        KernelBaseline {
            gpu: 0,
            phase: Phase::Update.label().to_string(),
            kernel: kernel.to_string(),
            mode,
            launches,
            flops,
            bytes: flops * 8.0,
            modeled_s: flops * 1e-12,
            measured_s: 1e-4,
        }
    }

    fn baseline(kernels: Vec<KernelBaseline>) -> PerfBaseline {
        PerfBaseline {
            schema_version: BASELINE_SCHEMA_VERSION,
            dataset: "synthetic".into(),
            format: "coo".into(),
            rank: 16,
            update: "admm".into(),
            gpus: 1,
            device: "NVIDIA A100".into(),
            kernels,
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let b =
            baseline(vec![entry("trsm_fwd_bwd", Some(2), 30, 1e8), entry("copy", None, 5, 0.0)]);
        let back = PerfBaseline::from_json(&b.to_json_pretty()).unwrap();
        assert_eq!(back.file_stem(), "synthetic-coo-r16-admm-g1");
        assert_eq!(back.kernels.len(), 2);
        assert_eq!(back.kernels[0].mode, Some(2));
        assert_eq!(back.kernels[1].mode, None);
        assert_eq!(back.kernels[0].launches, 30);
        assert!(compare_baselines(&b, &back).unwrap().is_empty(), "roundtrip has zero drift");
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let b = baseline(vec![]);
        let text = b.to_json_pretty().replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = PerfBaseline::from_json(&text).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn counter_drift_is_exact_and_directional() {
        let old = baseline(vec![entry("mttkrp", Some(0), 10, 1e8)]);
        let mut new = old.clone();
        new.kernels[0].launches = 11; // one extra launch
        new.kernels[0].flops = 1.1e8;
        let deltas = compare_baselines(&old, &new).unwrap();
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| d.kind == DeltaKind::Regression && d.is_drift()));
        assert!(deltas.iter().any(|d| d.field == "launches"));
        assert_eq!(deltas[0].key, "gpu0 UPDATE/mttkrp/0");

        new.kernels[0].launches = 9;
        new.kernels[0].flops = 0.9e8;
        let deltas = compare_baselines(&old, &new).unwrap();
        assert!(deltas.iter().all(|d| d.kind == DeltaKind::Improvement));
    }

    #[test]
    fn appearing_and_vanishing_keys_are_drift() {
        let old = baseline(vec![entry("a", None, 1, 1.0)]);
        let new = baseline(vec![entry("b", None, 1, 1.0)]);
        let deltas = compare_baselines(&old, &new).unwrap();
        assert_eq!(deltas.len(), 2);
        let gone = deltas.iter().find(|d| d.key.contains("/a/")).unwrap();
        assert_eq!((gone.field, gone.kind), ("present", DeltaKind::Improvement));
        let born = deltas.iter().find(|d| d.key.contains("/b/")).unwrap();
        assert_eq!((born.field, born.kind), ("present", DeltaKind::Regression));
    }

    #[test]
    fn wall_clock_movement_is_advisory_only() {
        let old = baseline(vec![entry("k", None, 1, 1e6)]);
        let mut new = old.clone();
        new.kernels[0].measured_s = 1.0; // 10^4x slower wall-clock
        let deltas = compare_baselines(&old, &new).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].field, "measured_s");
        assert!(!deltas[0].is_drift(), "wall-clock never fails the gate");
    }

    #[test]
    fn config_mismatch_is_an_error_not_a_diff() {
        let a = baseline(vec![]);
        let mut b = baseline(vec![]);
        b.rank = 32;
        assert!(compare_baselines(&a, &b).unwrap_err().contains("config mismatch"));
    }

    #[test]
    fn measured_band_ratchet_flags_growing_gap() {
        let old = baseline(vec![entry("k", None, 1, 1e6), entry("j", Some(0), 2, 2e6)]);
        let mut new = old.clone();
        // Same ratio: no delta.
        assert!(compare_measured_band(&old, &new, 0.25).is_none());
        // Wall-clock inside the band: still fine.
        for k in &mut new.kernels {
            k.measured_s *= 1.2;
        }
        assert!(compare_measured_band(&old, &new, 0.25).is_none());
        // Beyond the band: regression with the aggregate ratios attached.
        for k in &mut new.kernels {
            k.measured_s *= 2.0;
        }
        let d = compare_measured_band(&old, &new, 0.25).expect("gap grew past the band");
        assert_eq!((d.field, d.kind), ("measured/modeled", DeltaKind::Regression));
        assert!(d.is_drift());
        assert!(d.current > d.baseline * 1.25);
    }

    #[test]
    fn measured_band_shrinking_gap_passes() {
        let old = baseline(vec![entry("k", None, 1, 1e6)]);
        let mut new = old.clone();
        new.kernels[0].measured_s *= 0.5; // faster than baseline: ratchet is happy
        assert!(compare_measured_band(&old, &new, 0.0).is_none());
    }

    #[test]
    fn measured_band_is_silent_without_timing_data() {
        let mut old = baseline(vec![entry("k", None, 1, 1e6)]);
        let new = old.clone();
        old.kernels[0].measured_s = 0.0; // pre-wall-clock artifact
        assert!(compare_measured_band(&old, &new, 0.25).is_none());
        assert!(compare_measured_band(&new, &old, 0.25).is_none());
        let empty = baseline(vec![]);
        assert!(compare_measured_band(&empty, &empty, 0.25).is_none());
    }

    #[test]
    fn modeled_time_has_tight_tolerance() {
        let old = baseline(vec![entry("k", None, 1, 1e6)]);
        let mut new = old.clone();
        new.kernels[0].modeled_s *= 1.0 + 1e-12; // ulp-level wiggle: fine
        assert!(compare_baselines(&old, &new).unwrap().is_empty());
        new.kernels[0].modeled_s *= 1.01; // 1% movement: drift
        let deltas = compare_baselines(&old, &new).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].field, "modeled_s");
        assert!(deltas[0].is_drift());
    }
}
