//! Roofline cost model.
//!
//! The paper's performance argument (§3.3, Eqs. 3–5) is a classic roofline
//! story: a kernel's time is bounded below by both its compute time
//! (`flops / peak`) and its memory time (`bytes / bandwidth`), and ADMM's
//! arithmetic intensity (≈ `(19 + 2R) / (22 + R/I) / 8` flop/byte) pins it to
//! the bandwidth roof. This module turns exact, machine-counted operation
//! tallies into modeled kernel times, with three refinements the paper's
//! results hinge on:
//!
//! 1. **Occupancy ramp** — a GPU only reaches peak throughput once enough
//!    parallel work is resident; small factor matrices (NIPS, Uber) leave it
//!    underutilized, which is why the paper sees only 1.2–1.5x there.
//! 2. **Cache residency** — working sets that fit in the LLC are served at
//!    `cache_bw_mult x` DRAM bandwidth; the H100's larger caches are the
//!    paper's explanation for H100 > A100 at equal HBM bandwidth.
//! 3. **Serialization** — triangular solves advance one dependent step per
//!    column; each step costs `serial_step_us`, which is the penalty
//!    cuADMM's pre-inversion removes.

use serde::Serialize;

use crate::spec::{DeviceKind, DeviceSpec};

/// Kernel classes with distinct efficiency characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum KernelClass {
    /// Element-wise streaming (DGEAM-like, proximity ops): bandwidth-bound,
    /// near-perfect coalescing.
    Stream,
    /// Dense matrix multiply (DGEMM): compute-efficient, high data reuse.
    Gemm,
    /// Triangular solve (TRSM): serialized across columns.
    Trsm,
    /// Small-matrix factorization (Cholesky of an R x R system).
    Factor,
    /// Reductions (norms, convergence checks).
    Reduce,
    /// Sparse gather/scatter (MTTKRP): irregular access, atomics.
    SparseGather,
}

impl KernelClass {
    /// Fraction of peak FLOP rate this class typically sustains on a given
    /// device kind. Triangular solves' dependent chains devastate GPU SIMT
    /// throughput but are bread-and-butter for out-of-order CPU cores.
    pub fn compute_efficiency(self, kind: DeviceKind) -> f64 {
        match (self, kind) {
            (KernelClass::Stream, _) => 0.9,
            (KernelClass::Gemm, _) => 0.75,
            (KernelClass::Trsm, DeviceKind::Gpu) => 0.06,
            (KernelClass::Trsm, DeviceKind::Cpu) => 0.30,
            (KernelClass::Factor, _) => 0.05,
            (KernelClass::Reduce, _) => 0.6,
            (KernelClass::SparseGather, _) => 0.5,
        }
    }

    /// Fraction of peak bandwidth this class typically sustains on a given
    /// device kind.
    ///
    /// CPUs pay read-for-ownership on streaming writes (no non-temporal
    /// stores in the OpenMP baselines) and lose more to irregular gathers'
    /// cache-line waste than GPUs lose on coalesced row gathers; GPUs lose
    /// more than CPUs on fully random access (latency-bound warps).
    pub fn memory_efficiency(self, kind: DeviceKind) -> f64 {
        match (self, kind) {
            (KernelClass::Stream, DeviceKind::Gpu) => 0.85,
            (KernelClass::Stream, DeviceKind::Cpu) => 0.55,
            (KernelClass::Gemm, _) => 0.80,
            (KernelClass::Trsm, _) => 0.50,
            (KernelClass::Factor, _) => 0.50,
            (KernelClass::Reduce, DeviceKind::Gpu) => 0.80,
            (KernelClass::Reduce, DeviceKind::Cpu) => 0.60,
            (KernelClass::SparseGather, DeviceKind::Gpu) => 0.35,
            (KernelClass::SparseGather, DeviceKind::Cpu) => 0.45,
        }
    }
}

/// Exact operation tally for one kernel launch.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct KernelCost {
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes read from memory (logical traffic before cache discounts).
    pub bytes_read: f64,
    /// Bytes written to memory.
    pub bytes_written: f64,
    /// Gather traffic in bytes, counted *per access* (e.g. MTTKRP's
    /// factor-row loads: `nnz * (N-1) * R * 8`). Unlike `bytes_read`, this
    /// traffic collapses toward the `working_set` footprint when the
    /// gathered data is cache-resident — each row is then loaded once and
    /// re-hit from cache, the reuse effect that makes CPU MTTKRP cheap on
    /// small tensors (§5.3).
    pub gather_traffic: f64,
    /// Width of the parallel iteration space (threads' worth of independent
    /// work), used by the occupancy ramp.
    pub parallel_work: f64,
    /// Number of *dependent* sequential steps inside the kernel (1 for fully
    /// parallel kernels; `2R` for a forward+backward triangular solve).
    pub serial_steps: f64,
    /// Bytes of the data the kernel re-touches across calls (its resident
    /// working set) — drives the cache-residency bandwidth boost.
    pub working_set: f64,
}

impl KernelCost {
    /// Total logical bytes moved (before cache discounts), including the
    /// full per-access gather traffic.
    pub fn bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written + self.gather_traffic
    }

    /// Arithmetic intensity in flop/byte.
    pub fn intensity(&self) -> f64 {
        let b = self.bytes();
        if b == 0.0 {
            f64::INFINITY
        } else {
            self.flops / b
        }
    }
}

/// Modeled execution time of one kernel launch on a device, in seconds.
///
/// `t = launch + serial_latency + max(compute, memory)` with occupancy and
/// cache-residency adjustments described at the module level.
pub fn kernel_time(spec: &DeviceSpec, class: KernelClass, cost: &KernelCost) -> f64 {
    let launch = spec.kernel_launch_us * 1e-6;

    // Occupancy: linear ramp until `saturation_elems` independent work items.
    let occupancy = if cost.parallel_work <= 0.0 {
        1.0 / spec.saturation_elems
    } else {
        (cost.parallel_work / spec.saturation_elems).min(1.0)
    };
    // Even one warp makes progress, and tiny kernels are launch-latency
    // bound rather than throughput bound — floor the ramp so under-occupied
    // kernel time stays comparable to the launch cost instead of inflating
    // small workloads' compute time.
    let occupancy = occupancy.max(0.10);

    // Cache residency: fraction of traffic served from the LLC. Working
    // sets that fit are fully resident; oversubscribed working sets thrash
    // under LRU streaming re-reads, retaining only a small random-reuse
    // residue — a cliff, not a linear blend (this is also why CPU-cache-
    // sized ADMM blocks do nothing for a GPU whose L2 they exceed, §4.2).
    // The residency pool is the full on-chip capacity (L1 aggregate + LLC):
    // Enron's ~66 MB factor set at paper scale fits the H100's 78.5 MB but
    // not the A100's 60 MB — the cache cliff behind the paper's Enron jump
    // from 4x (A100) to 17x (H100).
    let pool_bytes = (spec.llc_mib + spec.l1_mib) * 1024.0 * 1024.0;
    let resident = if cost.working_set <= 0.0 {
        0.0
    } else if cost.working_set <= pool_bytes {
        1.0
    } else {
        0.35 * pool_bytes / cost.working_set
    };
    // Only a portion of cache-resident traffic actually re-hits (cold
    // misses, conflict misses); 0.8 is a conventional residency yield.
    let hit_fraction = 0.8 * resident;
    // The class's DRAM derate (coalescing waste, read-for-ownership on CPU
    // streaming writes) applies to the uncached portion only; cache-served
    // traffic runs near the cache's native bandwidth (0.9 derate).
    let eff_bw_gbs = spec.mem_bw_gbs
        * ((1.0 - hit_fraction) * class.memory_efficiency(spec.kind)
            + hit_fraction * spec.cache_bw_mult * 0.9);

    // Gather traffic collapses toward one pass over the working set when
    // the gathered structures are cache-resident (each row loaded once and
    // re-hit), instead of one load per access.
    let effective_gather = if cost.gather_traffic > 0.0 {
        let one_pass = cost.working_set.min(cost.gather_traffic);
        cost.gather_traffic * (1.0 - hit_fraction) + one_pass * hit_fraction
    } else {
        0.0
    };
    let effective_bytes = cost.bytes_read + cost.bytes_written + effective_gather;

    let compute_s =
        cost.flops / (spec.peak_gflops_f64 * 1e9 * class.compute_efficiency(spec.kind) * occupancy);
    let memory_s = effective_bytes / (eff_bw_gbs * 1e9 * occupancy.max(0.25));

    let serial_s = if cost.serial_steps > 1.0 {
        (cost.serial_steps - 1.0) * spec.serial_step_us * 1e-6
    } else {
        0.0
    };

    launch + serial_s + compute_s.max(memory_s)
}

/// Modeled host-device transfer time for `bytes` over PCIe/NVLink; zero for
/// CPUs (data is already in host memory).
pub fn transfer_time(spec: &DeviceSpec, bytes: f64) -> f64 {
    match spec.kind {
        DeviceKind::Cpu => 0.0,
        DeviceKind::Gpu => {
            let latency = 10e-6; // one-way PCIe transaction latency
            latency + bytes / (spec.host_link_gbs * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_cost(elems: f64) -> KernelCost {
        KernelCost {
            flops: elems,
            bytes_read: 2.0 * 8.0 * elems,
            bytes_written: 8.0 * elems,
            gather_traffic: 0.0,
            parallel_work: elems,
            serial_steps: 1.0,
            working_set: 3.0 * 8.0 * elems,
        }
    }

    #[test]
    fn bigger_kernels_take_longer() {
        let spec = DeviceSpec::a100();
        let small = kernel_time(&spec, KernelClass::Stream, &stream_cost(1e4));
        let large = kernel_time(&spec, KernelClass::Stream, &stream_cost(1e8));
        assert!(large > small * 10.0);
    }

    #[test]
    fn launch_latency_dominates_tiny_kernels() {
        let spec = DeviceSpec::a100();
        let t = kernel_time(&spec, KernelClass::Stream, &stream_cost(64.0));
        // A 64-element kernel should cost roughly the 4 us launch latency.
        assert!(t < 10.0 * spec.kernel_launch_us * 1e-6);
        assert!(t >= spec.kernel_launch_us * 1e-6);
    }

    #[test]
    fn gpu_beats_cpu_on_large_streaming_work() {
        let cost = stream_cost(1e8);
        let gpu = kernel_time(&DeviceSpec::a100(), KernelClass::Stream, &cost);
        let cpu = kernel_time(&DeviceSpec::icelake_xeon(), KernelClass::Stream, &cost);
        // Bandwidth-bound: speedup should be near the ~10x bandwidth ratio.
        let speedup = cpu / gpu;
        assert!(speedup > 4.0 && speedup < 20.0, "speedup = {speedup}");
    }

    #[test]
    fn cpu_beats_gpu_on_tiny_work() {
        // Launch latency + under-occupancy make tiny kernels a CPU win.
        let cost = stream_cost(256.0);
        let gpu = kernel_time(&DeviceSpec::a100(), KernelClass::Stream, &cost);
        let cpu = kernel_time(&DeviceSpec::icelake_xeon(), KernelClass::Stream, &cost);
        assert!(cpu < gpu);
    }

    #[test]
    fn trsm_serialization_penalty_on_gpu() {
        // A 2R-step triangular solve vs an equivalent-flop GEMM.
        let r = 32.0;
        let i = 1e6;
        let trsm = KernelCost {
            flops: 2.0 * i * r * r,
            bytes_read: 8.0 * (i * r + r * r),
            bytes_written: 8.0 * i * r,
            gather_traffic: 0.0,
            parallel_work: i,
            serial_steps: 2.0 * r,
            working_set: 8.0 * i * r,
        };
        let gemm = KernelCost { serial_steps: 1.0, ..trsm };
        let spec = DeviceSpec::h100();
        let t_trsm = kernel_time(&spec, KernelClass::Trsm, &trsm);
        let t_gemm = kernel_time(&spec, KernelClass::Gemm, &gemm);
        assert!(t_trsm > t_gemm, "trsm {t_trsm} must exceed gemm {t_gemm}");
    }

    #[test]
    fn h100_faster_than_a100_when_working_set_fits_h100_cache() {
        // 45 MiB working set: inside H100's 50 MiB L2, outside A100's 40 MiB.
        let elems = 45.0 * 1024.0 * 1024.0 / (3.0 * 8.0);
        let cost = stream_cost(elems);
        let a = kernel_time(&DeviceSpec::a100(), KernelClass::Stream, &cost);
        let h = kernel_time(&DeviceSpec::h100(), KernelClass::Stream, &cost);
        assert!(h < a, "H100 ({h}) should beat A100 ({a}) via cache residency");
    }

    #[test]
    fn transfer_time_zero_on_cpu_positive_on_gpu() {
        assert_eq!(transfer_time(&DeviceSpec::icelake_xeon(), 1e9), 0.0);
        let t = transfer_time(&DeviceSpec::a100(), 1e9);
        assert!(t > 1e9 / (64.0 * 1e9));
    }

    #[test]
    fn intensity_matches_definition() {
        let c = KernelCost {
            flops: 100.0,
            bytes_read: 30.0,
            bytes_written: 20.0,
            ..Default::default()
        };
        assert_eq!(c.intensity(), 2.0);
    }
}
