//! The simulated accelerator.
//!
//! [`Device`] is the execution context every cSTF kernel runs through. A
//! kernel launch:
//!
//! 1. executes its Rust closure **for real** (Rayon-parallel on the host),
//!    so all numerics are exact and testable;
//! 2. converts the caller-supplied exact [`KernelCost`] tally into a modeled
//!    time via the roofline model of [`crate::cost`], using this device's
//!    [`DeviceSpec`];
//! 3. attributes the launch to a cSTF [`Phase`] in the device profiler.
//!
//! This is the substitution documented in DESIGN.md §1: the machine we
//! cannot have (A100/H100) is replaced by a spec-parameterized timing model
//! fed by machine-counted operation tallies of real executions.

use cstf_telemetry::Span;
use parking_lot::Mutex;

use crate::cost::{kernel_time, transfer_time, KernelClass, KernelCost};
use crate::fault::{DeviceFault, FaultKind, FaultPlan, FaultState};
use crate::profiler::{
    FaultRecord, KernelRecord, MarkRecord, Phase, PhaseTotals, Profiler, RunCapture,
};
use crate::spec::DeviceSpec;

/// A simulated compute device (GPU or CPU) with an attached profiler and
/// an optional fault-injection plan.
pub struct Device {
    spec: DeviceSpec,
    profiler: Mutex<Profiler>,
    faults: Option<FaultState>,
}

/// Outcome of one [`Device::transfer_overlapped`] call: the raw link time
/// the bytes would take in isolation and the exposed remainder actually
/// charged after hiding behind `overlap_s` of concurrent compute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlappedTransfer {
    /// Un-overlapped modeled link seconds for the full byte count.
    pub raw_s: f64,
    /// `max(0, raw_s - overlap_s)` — the seconds that extend the
    /// timeline (0 when the copy hides entirely behind compute).
    pub exposed_s: f64,
}

impl Device {
    /// Creates a device from a spec, keeping aggregate totals only.
    pub fn new(spec: DeviceSpec) -> Self {
        Self { spec, profiler: Mutex::new(Profiler::new()), faults: None }
    }

    /// Creates a device that retains every kernel record (for kernel-level
    /// inspection in tests and the ablation benches).
    pub fn with_records(spec: DeviceSpec) -> Self {
        Self { spec, profiler: Mutex::new(Profiler::with_records()), faults: None }
    }

    /// Attaches a seeded fault-injection plan (builder style; the schedule
    /// restarts from fallible-operation zero).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(FaultState::new(plan));
        self
    }

    /// The device's architectural parameters.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|s| &s.plan)
    }

    /// The straggler modeled-time multiplier this device runs under
    /// (`1.0` when healthy). Applied to every launch, transfer and — by
    /// the [`DeviceGroup`](crate::group::DeviceGroup) — collective.
    pub fn slowdown(&self) -> f64 {
        self.faults.as_ref().map_or(1.0, |s| s.slowdown())
    }

    /// Advances the device's outer-iteration epoch. Group loss points
    /// written as `device-loss:DEV@itN` trigger against this counter; the
    /// sharded driver calls it once per device per outer iteration.
    pub fn advance_epoch(&self) {
        if let Some(state) = &self.faults {
            state.advance_epoch();
        }
    }

    /// True when the device's loss point has been reached — the query the
    /// group-level recovery ladder uses to identify the dead member
    /// without drawing new fallible ops.
    pub fn lost_now(&self) -> bool {
        self.faults.as_ref().is_some_and(|s| s.lost_now())
    }

    /// Snapshot of injected-fault records.
    pub fn faults(&self) -> Vec<FaultRecord> {
        self.profiler.lock().faults().to_vec()
    }

    /// Records a group-health fault (straggler / degraded-link deadline
    /// trip) against this device without touching the fallible-op
    /// schedule. `seq` carries the trip ordinal, not an op number.
    pub(crate) fn record_health_fault(&self, kind: FaultKind, name: &'static str, seq: u64) {
        self.profiler.lock().record_fault(kind, name, seq);
    }

    /// Launches a kernel: runs `body` immediately, meters it with `cost`,
    /// and returns the body's result.
    ///
    /// Each launch records both the roofline-modeled time and the measured
    /// host wall-clock of the body, so fusion gains can be reported as
    /// model-vs-reality pairs.
    pub fn launch<T>(
        &self,
        name: &'static str,
        phase: Phase,
        class: KernelClass,
        cost: KernelCost,
        body: impl FnOnce() -> T,
    ) -> T {
        let _span = Span::enter(name);
        let start = std::time::Instant::now();
        let out = body();
        let measured_s = start.elapsed().as_secs_f64();
        let modeled_s = kernel_time(&self.spec, class, &cost) * self.slowdown();
        self.profiler.lock().record(KernelRecord {
            name,
            phase,
            class,
            cost,
            modeled_s,
            raw_s: modeled_s,
            measured_s,
            mode: None, // stamped from the profiler's mode context
            collective_seq: None,
        });
        out
    }

    /// Sets the mode context for kernel attribution: every subsequent
    /// launch, transfer and collective is keyed under this tensor mode in
    /// the per-kernel aggregates (`None` outside the mode loop).
    pub fn set_mode(&self, mode: Option<usize>) {
        self.profiler.lock().set_mode(mode.map(|m| m as u32));
    }

    /// Snapshot of the per-key kernel aggregates in stable key order.
    pub fn kernel_totals(
        &self,
    ) -> Vec<(crate::profiler::KernelKey, crate::profiler::KernelTotals)> {
        self.profiler.lock().kernels()
    }

    /// Launches a kernel that may draw an injected fault from the device's
    /// [`FaultPlan`]: a one-shot device OOM or a transient launch failure
    /// aborts the launch *before* the body runs (output buffers untouched,
    /// nothing metered) and returns the fault for the caller's retry
    /// policy. Without a plan this is [`Device::launch`] plus one branch.
    pub fn try_launch<T>(
        &self,
        name: &'static str,
        phase: Phase,
        class: KernelClass,
        cost: KernelCost,
        body: impl FnOnce() -> T,
    ) -> Result<T, DeviceFault> {
        if let Some(state) = &self.faults {
            let op = state.next_op();
            if let Some(fault) = state.launch_fault(name, op) {
                self.profiler.lock().record_fault(fault.kind, name, op);
                return Err(fault);
            }
        }
        Ok(self.launch(name, phase, class, cost, body))
    }

    /// Launches a fallible kernel whose output lives in a caller-owned
    /// buffer, exposing that output to silent corruption faults: after the
    /// body runs, a [`FaultKind::NanCorruption`](crate::fault::FaultKind)
    /// roll may poison one element of the output to NaN *without* reporting
    /// an error — only the profiler's fault record and whatever numerical
    /// sentinel runs downstream can see it.
    ///
    /// `out` is the buffer the body writes into (passed through to the
    /// body); `slice_of` projects its raw `f64` payload so the device can
    /// poison it without knowing the buffer type.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_into<B: ?Sized, T>(
        &self,
        name: &'static str,
        phase: Phase,
        class: KernelClass,
        cost: KernelCost,
        out: &mut B,
        slice_of: impl FnOnce(&mut B) -> &mut [f64],
        body: impl FnOnce(&mut B) -> T,
    ) -> Result<T, DeviceFault> {
        let Some(state) = &self.faults else {
            return Ok(self.launch(name, phase, class, cost, || body(out)));
        };
        let op = state.next_op();
        if let Some(fault) = state.launch_fault(name, op) {
            self.profiler.lock().record_fault(fault.kind, name, op);
            return Err(fault);
        }
        let result = self.launch(name, phase, class, cost, || body(out));
        let payload = slice_of(out);
        if let Some(idx) = state.corruption_index(op, payload.len()) {
            payload[idx] = f64::NAN;
            self.profiler.lock().record_fault(crate::fault::FaultKind::NanCorruption, name, op);
        }
        Ok(result)
    }

    /// Records a host→device or device→host transfer of `bytes`.
    pub fn transfer(&self, name: &'static str, bytes: f64) {
        let modeled_s = transfer_time(&self.spec, bytes) * self.slowdown();
        self.profiler.lock().record(KernelRecord {
            name,
            phase: Phase::Transfer,
            class: KernelClass::Stream,
            cost: KernelCost { bytes_read: bytes, ..Default::default() },
            modeled_s,
            raw_s: modeled_s,
            measured_s: 0.0,
            mode: None,
            collective_seq: None,
        });
    }

    /// A transfer that may draw an injected link failure: on a fault the
    /// transfer is not metered and the error is returned for the caller's
    /// retry policy (simulating a failed NVLink/PCIe copy).
    pub fn try_transfer(&self, name: &'static str, bytes: f64) -> Result<(), DeviceFault> {
        if let Some(state) = &self.faults {
            let op = state.next_op();
            if let Some(fault) = state.transfer_fault(name, op) {
                self.profiler.lock().record_fault(fault.kind, name, op);
                return Err(fault);
            }
        }
        self.transfer(name, bytes);
        Ok(())
    }

    /// Modeled seconds a kernel of this `class`/`cost` takes on this
    /// device (straggler slowdown included) — the compute term the tiled
    /// out-of-core driver overlaps the next tile's transfer against.
    pub fn modeled_kernel_seconds(&self, class: KernelClass, cost: &KernelCost) -> f64 {
        kernel_time(&self.spec, class, cost) * self.slowdown()
    }

    /// Raw (un-overlapped) modeled seconds to move `bytes` over the host
    /// link (straggler slowdown included).
    pub fn modeled_transfer_seconds(&self, bytes: f64) -> f64 {
        transfer_time(&self.spec, bytes) * self.slowdown()
    }

    /// Records a host↔device transfer whose link time is double-buffered
    /// against `overlap_s` seconds of concurrent compute: only the
    /// *exposed* remainder `max(0, raw - overlap_s)` is charged to the
    /// Transfer phase (the rest hides behind the kernel the device is
    /// already running). The full byte count is still recorded, so
    /// bandwidth accounting stays exact while the timeline reflects the
    /// overlap.
    pub fn transfer_overlapped(
        &self,
        name: &'static str,
        bytes: f64,
        overlap_s: f64,
    ) -> OverlappedTransfer {
        let raw_s = self.modeled_transfer_seconds(bytes);
        let exposed_s = (raw_s - overlap_s.max(0.0)).max(0.0);
        self.profiler.lock().record(KernelRecord {
            name,
            phase: Phase::Transfer,
            class: KernelClass::Stream,
            cost: KernelCost { bytes_read: bytes, ..Default::default() },
            modeled_s: exposed_s,
            raw_s,
            measured_s: 0.0,
            mode: None,
            collective_seq: None,
        });
        OverlappedTransfer { raw_s, exposed_s }
    }

    /// [`Device::transfer_overlapped`] with injected link-failure faults:
    /// on a fault nothing is metered and the error is returned for the
    /// caller's retry policy, exactly like [`Device::try_transfer`].
    pub fn try_transfer_overlapped(
        &self,
        name: &'static str,
        bytes: f64,
        overlap_s: f64,
    ) -> Result<OverlappedTransfer, DeviceFault> {
        if let Some(state) = &self.faults {
            let op = state.next_op();
            if let Some(fault) = state.transfer_fault(name, op) {
                self.profiler.lock().record_fault(fault.kind, name, op);
                return Err(fault);
            }
        }
        Ok(self.transfer_overlapped(name, bytes, overlap_s))
    }

    /// Records this device's participation in a modeled collective (ring
    /// all-gather / all-reduce): `bytes` moved over the device-to-device
    /// interconnect and the collective's modeled wall time. The data
    /// movement itself is performed by the caller on the host threads;
    /// only the metering happens here (see
    /// [`DeviceGroup`](crate::group::DeviceGroup)). `seq` is the
    /// group-wide collective instance id stamped by the group so the
    /// execution-DAG layer can rendezvous the members' records (`None`
    /// for ungrouped callers).
    pub fn collective(&self, name: &'static str, bytes: f64, modeled_s: f64, seq: Option<u32>) {
        self.profiler.lock().record(KernelRecord {
            name,
            phase: Phase::Transfer,
            class: KernelClass::Stream,
            cost: KernelCost { bytes_read: bytes, ..Default::default() },
            modeled_s,
            raw_s: modeled_s,
            measured_s: 0.0,
            mode: None,
            collective_seq: seq,
        });
    }

    /// Records a labeled position (e.g. an outer-iteration boundary) in
    /// the kernel stream. Retained only on record-keeping devices.
    pub fn mark(&self, label: &'static str) {
        self.profiler.lock().mark(label);
    }

    /// Snapshot of recorded marks.
    pub fn marks(&self) -> Vec<MarkRecord> {
        self.profiler.lock().marks().to_vec()
    }

    /// Captures records, marks and phase totals and clears the profiler in
    /// one lock acquisition, so concurrent launches can never straddle a
    /// read-then-reset pair (see [`RunCapture`]).
    pub fn take_run(&self) -> RunCapture {
        self.profiler.lock().take()
    }

    /// Totals for one phase.
    pub fn phase_totals(&self, phase: Phase) -> PhaseTotals {
        self.profiler.lock().phase(phase)
    }

    /// All non-empty phases in display order.
    pub fn phases(&self) -> Vec<(Phase, PhaseTotals)> {
        self.profiler.lock().phases()
    }

    /// Total modeled seconds since the last reset.
    pub fn total_seconds(&self) -> f64 {
        self.profiler.lock().total_seconds()
    }

    /// Total measured host wall-clock seconds since the last reset.
    pub fn total_measured_seconds(&self) -> f64 {
        self.profiler.lock().total_measured_seconds()
    }

    /// Total kernel launches since the last reset.
    pub fn total_launches(&self) -> usize {
        self.profiler.lock().total_launches()
    }

    /// Snapshot of retained kernel records.
    pub fn records(&self) -> Vec<KernelRecord> {
        self.profiler.lock().records().to_vec()
    }

    /// Clears the profiler.
    pub fn reset(&mut self) {
        self.profiler.lock().reset();
    }

    /// Clears the profiler through a shared reference (the drivers hold
    /// `&Device` while timing separate stages).
    pub fn reset_shared(&self) {
        self.profiler.lock().reset();
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Device({}, {:.3e}s modeled)", self.spec.name, self.total_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn cost(elems: f64) -> KernelCost {
        KernelCost {
            flops: elems,
            bytes_read: 16.0 * elems,
            bytes_written: 8.0 * elems,
            gather_traffic: 0.0,
            parallel_work: elems,
            serial_steps: 1.0,
            working_set: 24.0 * elems,
        }
    }

    #[test]
    fn launch_executes_body_and_returns_value() {
        let dev = Device::new(DeviceSpec::a100());
        let v = dev.launch("axpy", Phase::Update, KernelClass::Stream, cost(100.0), || 42);
        assert_eq!(v, 42);
        assert_eq!(dev.total_launches(), 1);
        assert!(dev.total_seconds() > 0.0);
    }

    #[test]
    fn phases_are_attributed() {
        let dev = Device::new(DeviceSpec::h100());
        dev.launch("gram", Phase::Gram, KernelClass::Gemm, cost(10.0), || ());
        dev.launch("prox", Phase::Update, KernelClass::Stream, cost(10.0), || ());
        dev.launch("prox2", Phase::Update, KernelClass::Stream, cost(10.0), || ());
        assert_eq!(dev.phase_totals(Phase::Gram).launches, 1);
        assert_eq!(dev.phase_totals(Phase::Update).launches, 2);
        assert_eq!(dev.phase_totals(Phase::Mttkrp).launches, 0);
    }

    #[test]
    fn transfers_are_metered_on_gpu_only() {
        let gpu = Device::new(DeviceSpec::a100());
        gpu.transfer("h2d_factors", 1e6);
        assert!(gpu.phase_totals(Phase::Transfer).seconds > 0.0);

        let cpu = Device::new(DeviceSpec::icelake_xeon());
        cpu.transfer("noop", 1e6);
        assert_eq!(cpu.phase_totals(Phase::Transfer).seconds, 0.0);
    }

    #[test]
    fn reset_clears_totals() {
        let mut dev = Device::new(DeviceSpec::a100());
        dev.launch("k", Phase::Other, KernelClass::Reduce, cost(5.0), || ());
        dev.reset();
        assert_eq!(dev.total_seconds(), 0.0);
        assert_eq!(dev.total_launches(), 0);
    }

    #[test]
    fn records_snapshot_when_enabled() {
        let dev = Device::with_records(DeviceSpec::h100());
        dev.launch("named_kernel", Phase::Update, KernelClass::Gemm, cost(7.0), || ());
        let recs = dev.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "named_kernel");
    }

    #[test]
    fn take_run_captures_then_leaves_device_clean() {
        let dev = Device::with_records(DeviceSpec::a100());
        dev.launch("warm", Phase::Update, KernelClass::Stream, cost(10.0), || ());
        dev.mark("outer_iteration");
        let capture = dev.take_run();
        assert_eq!(capture.records.len(), 1);
        assert_eq!(capture.marks.len(), 1);
        assert!(capture.total_seconds() > 0.0);
        assert_eq!(dev.total_launches(), 0);
        assert!(dev.records().is_empty());
        assert!(dev.marks().is_empty());
    }

    #[test]
    fn marks_not_retained_on_lean_devices() {
        let dev = Device::new(DeviceSpec::a100());
        dev.mark("outer_iteration");
        assert!(dev.marks().is_empty());
    }

    #[test]
    fn try_launch_without_a_plan_behaves_like_launch() {
        let dev = Device::new(DeviceSpec::a100());
        let v = dev
            .try_launch("axpy", Phase::Update, KernelClass::Stream, cost(100.0), || 42)
            .expect("no plan, no fault");
        assert_eq!(v, 42);
        assert_eq!(dev.total_launches(), 1);
        assert!(dev.faults().is_empty());
    }

    #[test]
    fn transient_fault_skips_body_and_is_recorded() {
        use crate::fault::{FaultKind, FaultPlan};
        let dev = Device::new(DeviceSpec::a100())
            .with_fault_plan(FaultPlan { launch_fault_rate: 1.0, ..FaultPlan::quiet(1) });
        let mut ran = false;
        let err = dev
            .try_launch("k", Phase::Update, KernelClass::Stream, cost(10.0), || ran = true)
            .expect_err("rate 1.0 must fault");
        assert_eq!(err.kind, FaultKind::TransientLaunch);
        assert_eq!(err.kernel, "k");
        assert!(!ran, "the body must not run on a launch fault");
        assert_eq!(dev.total_launches(), 0, "faulted launches are not metered");
        assert_eq!(dev.faults().len(), 1);
    }

    #[test]
    fn oom_fires_once_then_retry_succeeds() {
        use crate::fault::{FaultKind, FaultPlan};
        let dev = Device::new(DeviceSpec::h100())
            .with_fault_plan(FaultPlan { oom_at_op: Some(0), ..FaultPlan::quiet(2) });
        let err = dev
            .try_launch("big", Phase::Mttkrp, KernelClass::SparseGather, cost(10.0), || ())
            .expect_err("op 0 ooms");
        assert_eq!(err.kind, FaultKind::DeviceOom);
        // The retry draws op 1 and proceeds.
        dev.try_launch("big", Phase::Mttkrp, KernelClass::SparseGather, cost(10.0), || ())
            .expect("retry clean");
        assert_eq!(dev.total_launches(), 1);
    }

    #[test]
    fn nan_corruption_poisons_one_output_element_silently() {
        use crate::fault::{FaultKind, FaultPlan};
        let dev = Device::new(DeviceSpec::a100())
            .with_fault_plan(FaultPlan { nan_rate: 1.0, ..FaultPlan::quiet(3) });
        let mut out = vec![0.0f64; 32];
        dev.launch_into(
            "mttkrp",
            Phase::Mttkrp,
            KernelClass::SparseGather,
            cost(32.0),
            &mut out,
            |b| &mut b[..],
            |b| b.fill(1.0),
        )
        .expect("corruption is silent — the call still succeeds");
        assert_eq!(out.iter().filter(|v| v.is_nan()).count(), 1);
        assert_eq!(dev.faults().len(), 1);
        assert_eq!(dev.faults()[0].kind, FaultKind::NanCorruption);
    }

    #[test]
    fn transfer_fault_is_injected_and_recorded() {
        use crate::fault::{FaultKind, FaultPlan};
        let dev = Device::new(DeviceSpec::a100())
            .with_fault_plan(FaultPlan { transfer_fault_rate: 1.0, ..FaultPlan::quiet(4) });
        let err = dev.try_transfer("p2p_halo", 1e6).expect_err("rate 1.0 must fault");
        assert_eq!(err.kind, FaultKind::TransferFailure);
        assert_eq!(dev.phase_totals(Phase::Transfer).launches, 0, "faulted transfer not metered");
        assert_eq!(dev.faults().len(), 1);
    }

    #[test]
    fn infallible_launches_do_not_shift_the_fault_schedule() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan { launch_fault_rate: 0.3, ..FaultPlan::quiet(5) };
        let run = |noise: usize| {
            let dev = Device::new(DeviceSpec::a100()).with_fault_plan(plan.clone());
            let mut outcomes = Vec::new();
            for _ in 0..50 {
                for _ in 0..noise {
                    dev.launch("infallible", Phase::Other, KernelClass::Stream, cost(1.0), || ());
                }
                let r = dev.try_launch("k", Phase::Update, KernelClass::Stream, cost(1.0), || ());
                outcomes.push(r.is_err());
            }
            outcomes
        };
        assert_eq!(run(0), run(3), "plain launches must not consume fault ops");
    }

    #[test]
    fn mode_context_keys_kernel_aggregates() {
        let dev = Device::new(DeviceSpec::a100());
        dev.set_mode(Some(0));
        dev.launch("mttkrp", Phase::Mttkrp, KernelClass::SparseGather, cost(10.0), || ());
        dev.set_mode(Some(1));
        dev.launch("mttkrp", Phase::Mttkrp, KernelClass::SparseGather, cost(10.0), || ());
        dev.transfer("h2d", 1e3);
        dev.set_mode(None);
        let kernels = dev.kernel_totals();
        assert_eq!(kernels.len(), 3);
        assert!(kernels.iter().any(|((p, n, m), t)| *p == Phase::Mttkrp
            && *n == "mttkrp"
            && *m == Some(0)
            && t.launches == 1));
        assert!(kernels
            .iter()
            .any(|((p, n, m), _)| *p == Phase::Transfer && *n == "h2d" && *m == Some(1)));
    }

    #[test]
    fn straggler_plan_stretches_modeled_time_only() {
        use crate::fault::{FaultPlan, GroupFault};
        let plan = FaultPlan {
            group: vec![GroupFault::Straggler { device: 0, slowdown: 4.0 }],
            ..FaultPlan::quiet(0)
        };
        let slow = Device::new(DeviceSpec::h100()).with_fault_plan(plan);
        let fast = Device::new(DeviceSpec::h100());
        let v = slow.launch("k", Phase::Update, KernelClass::Stream, cost(100.0), || 7);
        fast.launch("k", Phase::Update, KernelClass::Stream, cost(100.0), || 7);
        assert_eq!(v, 7, "the body runs normally — only modeled time stretches");
        assert_eq!(slow.total_seconds(), 4.0 * fast.total_seconds());
        slow.transfer("h2d", 1e6);
        fast.transfer("h2d", 1e6);
        assert_eq!(
            slow.phase_totals(Phase::Transfer).seconds,
            4.0 * fast.phase_totals(Phase::Transfer).seconds
        );
    }

    #[test]
    fn lost_device_fails_every_fallible_op_after_its_epoch() {
        use crate::fault::{FaultKind, FaultPlan, GroupFault, LossPoint};
        let plan = FaultPlan {
            group: vec![GroupFault::DeviceLoss { device: 0, at_launch: LossPoint::Iter(1) }],
            ..FaultPlan::quiet(0)
        };
        let dev = Device::new(DeviceSpec::h100()).with_fault_plan(plan);
        dev.try_launch("k", Phase::Update, KernelClass::Stream, cost(1.0), || ())
            .expect("alive at epoch 0");
        assert!(!dev.lost_now());
        dev.advance_epoch();
        let err = dev
            .try_launch("k", Phase::Update, KernelClass::Stream, cost(1.0), || ())
            .expect_err("dead at epoch 1");
        assert_eq!(err.kind, FaultKind::DeviceLoss);
        assert!(dev.lost_now());
        assert!(dev.try_transfer("d2h", 8.0).is_err(), "transfers fail too");
    }

    #[test]
    fn overlapped_transfer_charges_only_the_exposed_remainder() {
        let dev = Device::new(DeviceSpec::a100());
        let raw = dev.modeled_transfer_seconds(1e8);
        assert!(raw > 0.0);

        // No compute to hide behind: fully exposed.
        let t0 = dev.transfer_overlapped("h2d_tile", 1e8, 0.0);
        assert_eq!(t0.raw_s, raw);
        assert_eq!(t0.exposed_s, raw);

        // Partial overlap: the exposed time is the arithmetic remainder.
        let t1 = dev.transfer_overlapped("h2d_tile", 1e8, raw * 0.25);
        assert!((t1.exposed_s - raw * 0.75).abs() < 1e-15);

        // Full overlap: nothing exposed, but the bytes are still recorded.
        let t2 = dev.transfer_overlapped("h2d_tile", 1e8, raw * 10.0);
        assert_eq!(t2.exposed_s, 0.0);
        assert_eq!(t2.raw_s, raw);

        let totals = dev.phase_totals(Phase::Transfer);
        assert_eq!(totals.launches, 3);
        let want = t0.exposed_s + t1.exposed_s + t2.exposed_s;
        assert!((totals.seconds - want).abs() < 1e-15);
    }

    #[test]
    fn overlapped_transfer_is_free_on_cpu_specs() {
        let cpu = Device::new(DeviceSpec::icelake_xeon());
        let t = cpu.transfer_overlapped("h2d_tile", 1e9, 0.0);
        assert_eq!(t.raw_s, 0.0);
        assert_eq!(t.exposed_s, 0.0);
    }

    #[test]
    fn try_transfer_overlapped_draws_link_faults() {
        use crate::fault::{FaultKind, FaultPlan};
        let dev = Device::new(DeviceSpec::a100())
            .with_fault_plan(FaultPlan { transfer_fault_rate: 1.0, ..FaultPlan::quiet(9) });
        let err = dev.try_transfer_overlapped("h2d_tile", 1e6, 0.0).expect_err("must fault");
        assert_eq!(err.kind, FaultKind::TransferFailure);
        assert_eq!(dev.phase_totals(Phase::Transfer).launches, 0, "faulted copy not metered");
    }

    #[test]
    fn modeled_kernel_seconds_matches_launch_metering() {
        let dev = Device::new(DeviceSpec::h100());
        let c = cost(1000.0);
        let expect = dev.modeled_kernel_seconds(KernelClass::SparseGather, &c);
        dev.launch("k", Phase::Mttkrp, KernelClass::SparseGather, c, || ());
        assert_eq!(dev.total_seconds(), expect);
    }

    #[test]
    fn device_is_sync_shareable_across_threads() {
        let dev = Device::new(DeviceSpec::a100());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    dev.launch("par", Phase::Update, KernelClass::Stream, cost(10.0), || ());
                });
            }
        });
        assert_eq!(dev.total_launches(), 4);
    }
}
