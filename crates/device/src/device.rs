//! The simulated accelerator.
//!
//! [`Device`] is the execution context every cSTF kernel runs through. A
//! kernel launch:
//!
//! 1. executes its Rust closure **for real** (Rayon-parallel on the host),
//!    so all numerics are exact and testable;
//! 2. converts the caller-supplied exact [`KernelCost`] tally into a modeled
//!    time via the roofline model of [`crate::cost`], using this device's
//!    [`DeviceSpec`];
//! 3. attributes the launch to a cSTF [`Phase`] in the device profiler.
//!
//! This is the substitution documented in DESIGN.md §1: the machine we
//! cannot have (A100/H100) is replaced by a spec-parameterized timing model
//! fed by machine-counted operation tallies of real executions.

use cstf_telemetry::Span;
use parking_lot::Mutex;

use crate::cost::{kernel_time, transfer_time, KernelClass, KernelCost};
use crate::profiler::{KernelRecord, MarkRecord, Phase, PhaseTotals, Profiler, RunCapture};
use crate::spec::DeviceSpec;

/// A simulated compute device (GPU or CPU) with an attached profiler.
pub struct Device {
    spec: DeviceSpec,
    profiler: Mutex<Profiler>,
}

impl Device {
    /// Creates a device from a spec, keeping aggregate totals only.
    pub fn new(spec: DeviceSpec) -> Self {
        Self { spec, profiler: Mutex::new(Profiler::new()) }
    }

    /// Creates a device that retains every kernel record (for kernel-level
    /// inspection in tests and the ablation benches).
    pub fn with_records(spec: DeviceSpec) -> Self {
        Self { spec, profiler: Mutex::new(Profiler::with_records()) }
    }

    /// The device's architectural parameters.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Launches a kernel: runs `body` immediately, meters it with `cost`,
    /// and returns the body's result.
    ///
    /// Each launch records both the roofline-modeled time and the measured
    /// host wall-clock of the body, so fusion gains can be reported as
    /// model-vs-reality pairs.
    pub fn launch<T>(
        &self,
        name: &'static str,
        phase: Phase,
        class: KernelClass,
        cost: KernelCost,
        body: impl FnOnce() -> T,
    ) -> T {
        let _span = Span::enter(name);
        let start = std::time::Instant::now();
        let out = body();
        let measured_s = start.elapsed().as_secs_f64();
        let modeled_s = kernel_time(&self.spec, class, &cost);
        self.profiler.lock().record(KernelRecord {
            name,
            phase,
            class,
            cost,
            modeled_s,
            measured_s,
        });
        out
    }

    /// Records a host→device or device→host transfer of `bytes`.
    pub fn transfer(&self, name: &'static str, bytes: f64) {
        let modeled_s = transfer_time(&self.spec, bytes);
        self.profiler.lock().record(KernelRecord {
            name,
            phase: Phase::Transfer,
            class: KernelClass::Stream,
            cost: KernelCost { bytes_read: bytes, ..Default::default() },
            modeled_s,
            measured_s: 0.0,
        });
    }

    /// Records a labeled position (e.g. an outer-iteration boundary) in
    /// the kernel stream. Retained only on record-keeping devices.
    pub fn mark(&self, label: &'static str) {
        self.profiler.lock().mark(label);
    }

    /// Snapshot of recorded marks.
    pub fn marks(&self) -> Vec<MarkRecord> {
        self.profiler.lock().marks().to_vec()
    }

    /// Captures records, marks and phase totals and clears the profiler in
    /// one lock acquisition, so concurrent launches can never straddle a
    /// read-then-reset pair (see [`RunCapture`]).
    pub fn take_run(&self) -> RunCapture {
        self.profiler.lock().take()
    }

    /// Totals for one phase.
    pub fn phase_totals(&self, phase: Phase) -> PhaseTotals {
        self.profiler.lock().phase(phase)
    }

    /// All non-empty phases in display order.
    pub fn phases(&self) -> Vec<(Phase, PhaseTotals)> {
        self.profiler.lock().phases()
    }

    /// Total modeled seconds since the last reset.
    pub fn total_seconds(&self) -> f64 {
        self.profiler.lock().total_seconds()
    }

    /// Total measured host wall-clock seconds since the last reset.
    pub fn total_measured_seconds(&self) -> f64 {
        self.profiler.lock().total_measured_seconds()
    }

    /// Total kernel launches since the last reset.
    pub fn total_launches(&self) -> usize {
        self.profiler.lock().total_launches()
    }

    /// Snapshot of retained kernel records.
    pub fn records(&self) -> Vec<KernelRecord> {
        self.profiler.lock().records().to_vec()
    }

    /// Clears the profiler.
    pub fn reset(&mut self) {
        self.profiler.lock().reset();
    }

    /// Clears the profiler through a shared reference (the drivers hold
    /// `&Device` while timing separate stages).
    pub fn reset_shared(&self) {
        self.profiler.lock().reset();
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Device({}, {:.3e}s modeled)", self.spec.name, self.total_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn cost(elems: f64) -> KernelCost {
        KernelCost {
            flops: elems,
            bytes_read: 16.0 * elems,
            bytes_written: 8.0 * elems,
            gather_traffic: 0.0,
            parallel_work: elems,
            serial_steps: 1.0,
            working_set: 24.0 * elems,
        }
    }

    #[test]
    fn launch_executes_body_and_returns_value() {
        let dev = Device::new(DeviceSpec::a100());
        let v = dev.launch("axpy", Phase::Update, KernelClass::Stream, cost(100.0), || 42);
        assert_eq!(v, 42);
        assert_eq!(dev.total_launches(), 1);
        assert!(dev.total_seconds() > 0.0);
    }

    #[test]
    fn phases_are_attributed() {
        let dev = Device::new(DeviceSpec::h100());
        dev.launch("gram", Phase::Gram, KernelClass::Gemm, cost(10.0), || ());
        dev.launch("prox", Phase::Update, KernelClass::Stream, cost(10.0), || ());
        dev.launch("prox2", Phase::Update, KernelClass::Stream, cost(10.0), || ());
        assert_eq!(dev.phase_totals(Phase::Gram).launches, 1);
        assert_eq!(dev.phase_totals(Phase::Update).launches, 2);
        assert_eq!(dev.phase_totals(Phase::Mttkrp).launches, 0);
    }

    #[test]
    fn transfers_are_metered_on_gpu_only() {
        let gpu = Device::new(DeviceSpec::a100());
        gpu.transfer("h2d_factors", 1e6);
        assert!(gpu.phase_totals(Phase::Transfer).seconds > 0.0);

        let cpu = Device::new(DeviceSpec::icelake_xeon());
        cpu.transfer("noop", 1e6);
        assert_eq!(cpu.phase_totals(Phase::Transfer).seconds, 0.0);
    }

    #[test]
    fn reset_clears_totals() {
        let mut dev = Device::new(DeviceSpec::a100());
        dev.launch("k", Phase::Other, KernelClass::Reduce, cost(5.0), || ());
        dev.reset();
        assert_eq!(dev.total_seconds(), 0.0);
        assert_eq!(dev.total_launches(), 0);
    }

    #[test]
    fn records_snapshot_when_enabled() {
        let dev = Device::with_records(DeviceSpec::h100());
        dev.launch("named_kernel", Phase::Update, KernelClass::Gemm, cost(7.0), || ());
        let recs = dev.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "named_kernel");
    }

    #[test]
    fn take_run_captures_then_leaves_device_clean() {
        let dev = Device::with_records(DeviceSpec::a100());
        dev.launch("warm", Phase::Update, KernelClass::Stream, cost(10.0), || ());
        dev.mark("outer_iteration");
        let capture = dev.take_run();
        assert_eq!(capture.records.len(), 1);
        assert_eq!(capture.marks.len(), 1);
        assert!(capture.total_seconds() > 0.0);
        assert_eq!(dev.total_launches(), 0);
        assert!(dev.records().is_empty());
        assert!(dev.marks().is_empty());
    }

    #[test]
    fn marks_not_retained_on_lean_devices() {
        let dev = Device::new(DeviceSpec::a100());
        dev.mark("outer_iteration");
        assert!(dev.marks().is_empty());
    }

    #[test]
    fn device_is_sync_shareable_across_threads() {
        let dev = Device::new(DeviceSpec::a100());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    dev.launch("par", Phase::Update, KernelClass::Stream, cost(10.0), || ());
                });
            }
        });
        assert_eq!(dev.total_launches(), 4);
    }
}
