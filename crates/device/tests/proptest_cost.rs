//! Property-based tests on the roofline cost model: basic sanity laws the
//! figure reproductions implicitly rely on.

use cstf_device::{kernel_time, transfer_time, DeviceSpec, KernelClass, KernelCost};
use proptest::prelude::*;

fn cost_strategy() -> impl Strategy<Value = KernelCost> {
    (
        1.0f64..1e12,  // flops
        0.0f64..1e12,  // bytes_read
        0.0f64..1e11,  // bytes_written
        0.0f64..1e11,  // gather
        1.0f64..1e9,   // parallel work
        1.0f64..128.0, // serial steps
        0.0f64..1e10,  // working set
    )
        .prop_map(|(flops, br, bw, ga, pw, ss, ws)| KernelCost {
            flops,
            bytes_read: br,
            bytes_written: bw,
            gather_traffic: ga,
            parallel_work: pw,
            serial_steps: ss,
            working_set: ws,
        })
}

fn class_strategy() -> impl Strategy<Value = KernelClass> {
    prop_oneof![
        Just(KernelClass::Stream),
        Just(KernelClass::Gemm),
        Just(KernelClass::Trsm),
        Just(KernelClass::Factor),
        Just(KernelClass::Reduce),
        Just(KernelClass::SparseGather),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Kernel time is positive, finite, and at least the launch latency.
    #[test]
    fn time_is_positive_and_bounded_below(cost in cost_strategy(), class in class_strategy()) {
        for spec in DeviceSpec::table1() {
            let t = kernel_time(&spec, class, &cost);
            prop_assert!(t.is_finite());
            prop_assert!(t >= spec.kernel_launch_us * 1e-6);
        }
    }

    /// More flops never makes a kernel faster (monotonicity).
    #[test]
    fn monotone_in_flops(cost in cost_strategy(), class in class_strategy(), extra in 1.0f64..1e10) {
        let spec = DeviceSpec::a100();
        let t1 = kernel_time(&spec, class, &cost);
        let more = KernelCost { flops: cost.flops + extra, ..cost };
        prop_assert!(kernel_time(&spec, class, &more) >= t1 - 1e-15);
    }

    /// More bytes never makes a kernel faster.
    #[test]
    fn monotone_in_bytes(cost in cost_strategy(), class in class_strategy(), extra in 1.0f64..1e10) {
        let spec = DeviceSpec::h100();
        let t1 = kernel_time(&spec, class, &cost);
        let more = KernelCost { bytes_read: cost.bytes_read + extra, ..cost };
        prop_assert!(kernel_time(&spec, class, &more) >= t1 - 1e-15);
    }

    /// Growing the working set (less cache residency) never speeds things up.
    #[test]
    fn monotone_in_working_set(cost in cost_strategy(), grow in 1.0f64..100.0) {
        let spec = DeviceSpec::h100();
        let t1 = kernel_time(&spec, KernelClass::Stream, &cost);
        let bigger = KernelCost { working_set: cost.working_set * grow, ..cost };
        prop_assert!(kernel_time(&spec, KernelClass::Stream, &bigger) >= t1 - 1e-15);
    }

    /// More parallel work (at fixed totals) never slows a kernel down —
    /// occupancy can only improve.
    #[test]
    fn monotone_in_parallelism(cost in cost_strategy(), class in class_strategy(), grow in 1.0f64..1000.0) {
        let spec = DeviceSpec::a100();
        let t1 = kernel_time(&spec, class, &cost);
        let wider = KernelCost { parallel_work: cost.parallel_work * grow, ..cost };
        prop_assert!(kernel_time(&spec, class, &wider) <= t1 + 1e-15);
    }

    /// Scale replay: a workload shrunk by s on a spec scaled by s runs
    /// exactly s times faster — for any cost whose every extensive
    /// quantity scales with s.
    #[test]
    fn scale_replay_invariance(cost in cost_strategy(), s in 1e-4f64..1.0) {
        for spec in [DeviceSpec::a100(), DeviceSpec::icelake_xeon()] {
            let t_full = kernel_time(&spec, KernelClass::Stream, &cost);
            let scaled_cost = KernelCost {
                flops: cost.flops * s,
                bytes_read: cost.bytes_read * s,
                bytes_written: cost.bytes_written * s,
                gather_traffic: cost.gather_traffic * s,
                parallel_work: cost.parallel_work * s,
                serial_steps: cost.serial_steps,
                working_set: cost.working_set * s,
            };
            let t_scaled = kernel_time(&spec.scaled(s), KernelClass::Stream, &scaled_cost);
            // Serial steps scale via serial_step_us, everything else via the
            // extensive quantities; allow 1% slack for the fixed floors.
            prop_assert!(
                (t_scaled / (t_full * s) - 1.0).abs() < 0.01,
                "ratio {} at s={s}", t_scaled / (t_full * s)
            );
        }
    }

    /// Transfers: zero-cost on CPU, monotone in bytes on GPU.
    #[test]
    fn transfer_laws(bytes in 0.0f64..1e12, extra in 1.0f64..1e10) {
        prop_assert_eq!(transfer_time(&DeviceSpec::icelake_xeon(), bytes), 0.0);
        let gpu = DeviceSpec::a100();
        prop_assert!(transfer_time(&gpu, bytes + extra) >= transfer_time(&gpu, bytes));
    }
}
