//! One time-step slice of a streaming tensor: an `(N-1)`-mode sparse
//! coordinate tensor.

use cstf_linalg::Mat;

/// A sparse slice (the tensor restricted to one index of the temporal
/// mode), in COO form over the non-temporal modes.
#[derive(Clone, Debug)]
pub struct SliceTensor {
    shape: Vec<usize>,
    indices: Vec<Vec<u32>>,
    values: Vec<f64>,
}

impl SliceTensor {
    /// Builds a slice; panics on inconsistent lengths, out-of-range
    /// coordinates, or non-finite values (same invariants as
    /// `cstf_tensor::SparseTensor`). Prefer [`SliceTensor::try_new`] when
    /// the input is untrusted.
    pub fn new(shape: Vec<usize>, indices: Vec<Vec<u32>>, values: Vec<f64>) -> Self {
        Self::try_new(shape, indices, values).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a slice, returning a descriptive error instead of panicking
    /// on inconsistent lengths, out-of-range coordinates, or non-finite
    /// (NaN/infinite) values.
    pub fn try_new(
        shape: Vec<usize>,
        indices: Vec<Vec<u32>>,
        values: Vec<f64>,
    ) -> Result<Self, String> {
        if indices.len() != shape.len() {
            return Err(format!(
                "one index vector per mode: got {} index vectors for {} modes",
                indices.len(),
                shape.len()
            ));
        }
        for (m, idx) in indices.iter().enumerate() {
            if idx.len() != values.len() {
                return Err(format!(
                    "mode {m} index count must equal nnz ({} vs {})",
                    idx.len(),
                    values.len()
                ));
            }
            if let Some(&i) = idx.iter().find(|&&i| (i as usize) >= shape[m]) {
                return Err(format!("mode {m} index out of range: {i} >= {}", shape[m]));
            }
        }
        if let Some((k, v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(format!("non-finite value {v} at nonzero {k}"));
        }
        Ok(Self { shape, indices, values })
    }

    /// Non-temporal mode dimensions.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of non-temporal modes.
    pub fn nmodes(&self) -> usize {
        self.shape.len()
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Mode-`m` coordinates.
    pub fn mode_indices(&self, mode: usize) -> &[u32] {
        &self.indices[mode]
    }

    /// Values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Squared Frobenius norm of the slice.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// `m_t[r] = sum_k x_k * prod_n H_n[i_n(k), r]` — the length-`R`
    /// "MTTKRP vector" for the temporal row solve.
    pub fn temporal_mttkrp(&self, factors: &[Mat], rank: usize) -> Vec<f64> {
        debug_assert_eq!(factors.len(), self.nmodes());
        let mut out = vec![0.0f64; rank];
        let mut row = vec![0.0f64; rank];
        for k in 0..self.nnz() {
            row.fill(self.values[k]);
            for (m, f) in factors.iter().enumerate() {
                let frow = f.row(self.indices[m][k] as usize);
                for (r, &fv) in row.iter_mut().zip(frow) {
                    *r *= fv;
                }
            }
            for (o, &r) in out.iter_mut().zip(&row) {
                *o += r;
            }
        }
        out
    }

    /// Mode-`mode` MTTKRP of the slice against the other non-temporal
    /// factors and the temporal row `s_t`:
    /// `M[i, r] = s_t[r] * sum_{k: i_mode(k)=i} x_k * prod_{m != mode} H_m[i_m(k), r]`.
    pub fn mode_mttkrp(&self, factors: &[Mat], s_t: &[f64], mode: usize) -> Mat {
        let rank = s_t.len();
        let mut out = Mat::zeros(self.shape[mode], rank);
        let mut row = vec![0.0f64; rank];
        for k in 0..self.nnz() {
            row.copy_from_slice(s_t);
            let x = self.values[k];
            for r in row.iter_mut() {
                *r *= x;
            }
            for (m, f) in factors.iter().enumerate() {
                if m == mode {
                    continue;
                }
                let frow = f.row(self.indices[m][k] as usize);
                for (r, &fv) in row.iter_mut().zip(frow) {
                    *r *= fv;
                }
            }
            let target = out.row_mut(self.indices[mode][k] as usize);
            for (t, &r) in target.iter_mut().zip(&row) {
                *t += r;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_slice() -> SliceTensor {
        SliceTensor::new(vec![3, 2], vec![vec![0, 2, 1], vec![1, 0, 1]], vec![2.0, 3.0, -1.0])
    }

    fn toy_factors() -> Vec<Mat> {
        vec![
            Mat::from_fn(3, 2, |i, j| (i + j + 1) as f64),
            Mat::from_fn(2, 2, |i, j| (2 * i + j + 1) as f64 * 0.5),
        ]
    }

    #[test]
    fn temporal_mttkrp_matches_manual() {
        let s = toy_slice();
        let f = toy_factors();
        let m = s.temporal_mttkrp(&f, 2);
        for r in 0..2 {
            let want = 2.0 * f[0][(0, r)] * f[1][(1, r)] + 3.0 * f[0][(2, r)] * f[1][(0, r)]
                - f[0][(1, r)] * f[1][(1, r)];
            assert!((m[r] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn mode_mttkrp_matches_manual() {
        let s = toy_slice();
        let f = toy_factors();
        let s_t = [0.5, 2.0];
        let m = s.mode_mttkrp(&f, &s_t, 0);
        for i in 0..3 {
            for r in 0..2 {
                let mut want = 0.0;
                for k in 0..s.nnz() {
                    if s.mode_indices(0)[k] as usize == i {
                        want += s.values()[k] * s_t[r] * f[1][(s.mode_indices(1)[k] as usize, r)];
                    }
                }
                assert!((m[(i, r)] - want).abs() < 1e-12, "({i},{r})");
            }
        }
    }

    #[test]
    fn norm_sq_sums_squares() {
        assert_eq!(toy_slice().norm_sq(), 4.0 + 9.0 + 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_coordinates() {
        SliceTensor::new(vec![2, 2], vec![vec![2], vec![0]], vec![1.0]);
    }

    #[test]
    fn try_new_reports_errors_without_panicking() {
        let err = SliceTensor::try_new(vec![2, 2], vec![vec![0], vec![0]], vec![f64::NAN])
            .expect_err("NaN values must be rejected");
        assert!(err.contains("non-finite"), "{err}");
        let err = SliceTensor::try_new(vec![2], vec![vec![0], vec![0]], vec![1.0])
            .expect_err("mode count mismatch must be rejected");
        assert!(err.contains("one index vector per mode"), "{err}");
        let err = SliceTensor::try_new(vec![2, 2], vec![vec![0, 1], vec![0]], vec![1.0])
            .expect_err("ragged indices must be rejected");
        assert!(err.contains("must equal nnz"), "{err}");
        assert!(SliceTensor::try_new(vec![2, 2], vec![vec![1], vec![0]], vec![1.0]).is_ok());
    }
}
