//! # cstf-streaming
//!
//! Streaming constrained sparse tensor factorization — the CP-stream-style
//! algorithm of Soh et al. (IPDPS '21), the paper's reference [33] and the
//! lineage of cuADMM's operation-fusion ideas. The paper's framework is
//! batch; this crate extends it to the streaming setting on the same
//! metered device substrate.
//!
//! The model: an `N`-mode tensor whose last mode is *time*. Slices arrive
//! one time step at a time as `(N-1)`-mode sparse tensors. The tracker
//! maintains the non-temporal factors and, per step:
//!
//! 1. solves a small non-negative least-squares problem for the new time
//!    row `s_t`;
//! 2. folds the slice into exponentially-forgotten history sufficient
//!    statistics (`U_n`, `W_n` — the streaming normal equations);
//! 3. refreshes each non-temporal factor with a constrained ADMM update on
//!    those statistics.
//!
//! ```
//! use cstf_streaming::{StreamingConfig, StreamingCstf, SliceTensor};
//! use cstf_device::{Device, DeviceSpec};
//!
//! let dev = Device::new(DeviceSpec::h100());
//! let mut tracker = StreamingCstf::new(vec![30, 20], StreamingConfig { rank: 4, ..Default::default() });
//! // Two sparse slices (30 x 20 each).
//! for t in 0..2u32 {
//!     let slice = SliceTensor::new(
//!         vec![30, 20],
//!         vec![vec![t, 5], vec![3, t]],
//!         vec![1.0, 2.0],
//!     );
//!     tracker.ingest(&dev, &slice).expect("fault-free ingest");
//! }
//! assert_eq!(tracker.time_steps(), 2);
//! assert_eq!(tracker.temporal_factor().rows(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod slice;
pub mod tracker;

pub use slice::SliceTensor;
pub use tracker::{IngestError, StreamingConfig, StreamingCstf};
