//! The streaming tracker: CP-stream-style constrained factorization.
//!
//! State per non-temporal mode `n`:
//!
//! * the factor `H_n` (`I_n x R`, constrained);
//! * the history statistics `U_n = sum_t gamma^{T-t} MTTKRP_n(X_t, s_t)`
//!   (`I_n x R`) and `W_n = sum_t gamma^{T-t} (hadamard_{m != n} H_m^T H_m)
//!   * (s_t s_t^T)` (`R x R`) — the streaming normal equations with
//!   exponential forgetting `gamma`.
//!
//! Per arriving slice: solve the temporal row (small constrained NNLS via
//! ADMM), fold the slice into `U_n`/`W_n`, and refresh each `H_n` with a
//! constrained ADMM update on `(U_n, W_n)` — the same cuADMM kernels the
//! batch framework uses, metered on the same device substrate.

use std::path::{Path, PathBuf};

use cstf_core::admm::{admm_update, AdmmConfig, AdmmWorkspace};
use cstf_core::auntf::seeded_factors;
use cstf_core::checkpoint::{ArchiveReader, ArchiveWriter, CheckpointConfig, CheckpointError};
use cstf_core::recovery::AdmmError;
use cstf_device::{Device, KernelClass, KernelCost, Phase};
use cstf_linalg::{gram, hadamard_in_place, Mat};
use cstf_telemetry::Span;

use crate::slice::SliceTensor;

const STREAM_PREFIX: &str = "stream-";
const STREAM_SUFFIX: &str = ".cstf";

/// Failures while ingesting one streaming slice.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// A constrained ADMM solve failed (device fault, non-PD system, or a
    /// non-finite residual).
    Admm(AdmmError),
    /// A periodic snapshot could not be written.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Admm(e) => write!(f, "slice ingest failed: {e}"),
            IngestError::Checkpoint(e) => write!(f, "slice ingest snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Admm(e) => Some(e),
            IngestError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<AdmmError> for IngestError {
    fn from(e: AdmmError) -> Self {
        IngestError::Admm(e)
    }
}

impl From<CheckpointError> for IngestError {
    fn from(e: CheckpointError) -> Self {
        IngestError::Checkpoint(e)
    }
}

/// Streaming configuration.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Decomposition rank.
    pub rank: usize,
    /// Exponential forgetting factor in `(0, 1]`; 1 = infinite memory.
    pub forgetting: f64,
    /// ADMM configuration for the non-temporal refreshes and the temporal
    /// row solve.
    pub admm: AdmmConfig,
    /// Non-temporal factor refresh passes per slice.
    pub refresh_passes: usize,
    /// Seed for factor initialization.
    pub seed: u64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self { rank: 8, forgetting: 0.95, admm: AdmmConfig::cuadmm(), refresh_passes: 1, seed: 0 }
    }
}

/// The streaming cSTF tracker.
pub struct StreamingCstf {
    cfg: StreamingConfig,
    shape: Vec<usize>,
    /// Non-temporal factors.
    factors: Vec<Mat>,
    /// Temporal factor: one row per ingested time step.
    temporal: Vec<Vec<f64>>,
    /// History statistics.
    u: Vec<Mat>,
    w: Vec<Mat>,
    /// ADMM dual state per mode (persists across slices, as in the batch
    /// driver).
    duals: Vec<Mat>,
    workspaces: Vec<AdmmWorkspace>,
    /// Optional periodic snapshotting (every `every` ingested slices).
    ckpt: Option<CheckpointConfig>,
}

/// Stable identity of a streaming run: shape + every config field that
/// changes the arithmetic. Snapshots from a differently-configured run
/// must not be silently resumed.
fn fingerprint(shape: &[usize], cfg: &StreamingConfig) -> String {
    let dims: Vec<String> = shape.iter().map(|d| d.to_string()).collect();
    format!(
        "stream shape={} rank={} forgetting={:016x} seed={} refresh={}",
        dims.join("x"),
        cfg.rank,
        cfg.forgetting.to_bits(),
        cfg.seed,
        cfg.refresh_passes
    )
}

impl StreamingCstf {
    /// Creates a tracker for slices of the given non-temporal shape.
    ///
    /// # Panics
    /// Panics if `forgetting` is outside `(0, 1]` or the shape is empty.
    pub fn new(shape: Vec<usize>, cfg: StreamingConfig) -> Self {
        assert!(!shape.is_empty(), "at least one non-temporal mode required");
        assert!(
            cfg.forgetting > 0.0 && cfg.forgetting <= 1.0,
            "forgetting factor must be in (0, 1]"
        );
        let rank = cfg.rank;
        let factors = seeded_factors(&shape, rank, cfg.seed);
        let u = shape.iter().map(|&d| Mat::zeros(d, rank)).collect();
        let w = vec![Mat::zeros(rank, rank); shape.len()];
        let duals = shape.iter().map(|&d| Mat::zeros(d, rank)).collect();
        let workspaces = shape.iter().map(|&d| AdmmWorkspace::new(d, rank)).collect();
        Self { cfg, shape, factors, temporal: Vec::new(), u, w, duals, workspaces, ckpt: None }
    }

    /// Enables periodic snapshotting: every `ckpt.every` ingested slices a
    /// checksummed snapshot of the full tracker state is written into
    /// `ckpt.dir`.
    pub fn with_checkpointing(mut self, ckpt: CheckpointConfig) -> Self {
        self.ckpt = Some(ckpt);
        self
    }

    /// Restores the tracker from the newest valid snapshot in `dir`, or
    /// returns `Ok(None)` if no usable snapshot exists (start fresh).
    /// Corrupt snapshots are skipped (falling back to older ones); a
    /// snapshot written by a differently-configured run is a hard
    /// [`CheckpointError::Fingerprint`] error.
    pub fn resume(
        shape: Vec<usize>,
        cfg: StreamingConfig,
        dir: &Path,
    ) -> Result<Option<Self>, CheckpointError> {
        let fp = fingerprint(&shape, &cfg);
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => return Ok(None), // no directory yet: nothing to resume
        };
        let mut candidates: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(STREAM_PREFIX) && n.ends_with(STREAM_SUFFIX))
            })
            .collect();
        candidates.sort();
        for path in candidates.iter().rev() {
            let mut r = match ArchiveReader::read(path, "stream") {
                Ok(r) => r,
                Err(_) => continue, // corrupt or torn snapshot: fall back
            };
            let found = match r.field("fingerprint") {
                Ok(f) => f,
                Err(_) => continue,
            };
            if found != fp {
                return Err(CheckpointError::Fingerprint { expected: fp, found });
            }
            match Self::restore(shape.clone(), cfg.clone(), &mut r) {
                Ok(tracker) => return Ok(Some(tracker)),
                Err(_) => continue,
            }
        }
        Ok(None)
    }

    fn restore(
        shape: Vec<usize>,
        cfg: StreamingConfig,
        r: &mut ArchiveReader,
    ) -> Result<Self, CheckpointError> {
        let bad = |msg: &str| CheckpointError::Format(msg.to_owned());
        let rank = cfg.rank;
        let slices: usize = r.field("slices")?.parse().map_err(|_| bad("bad `slices` value"))?;
        let temporal_m = r.mat("temporal")?;
        if temporal_m.rows() != slices || temporal_m.cols() != rank {
            return Err(bad("temporal factor dimensions disagree with header"));
        }
        let temporal: Vec<Vec<f64>> = (0..slices).map(|t| temporal_m.row(t).to_vec()).collect();
        let modes: usize = r.field("modes")?.parse().map_err(|_| bad("bad `modes` value"))?;
        if modes != shape.len() {
            return Err(bad("mode count disagrees with the tracker shape"));
        }
        let mut factors = Vec::with_capacity(modes);
        let mut duals = Vec::with_capacity(modes);
        let mut u = Vec::with_capacity(modes);
        let mut w = Vec::with_capacity(modes);
        for (m, &dim) in shape.iter().enumerate() {
            let f = r.mat("factor")?;
            let d = r.mat("dual")?;
            let un = r.mat("hist_u")?;
            let wn = r.mat("hist_w")?;
            if f.rows() != dim || f.cols() != rank || d.rows() != dim || d.cols() != rank {
                return Err(bad(&format!("mode {m} factor/dual dimensions mismatch")));
            }
            if un.rows() != dim || un.cols() != rank || wn.rows() != rank || wn.cols() != rank {
                return Err(bad(&format!("mode {m} history dimensions mismatch")));
            }
            factors.push(f);
            duals.push(d);
            u.push(un);
            w.push(wn);
        }
        let workspaces = shape.iter().map(|&d| AdmmWorkspace::new(d, rank)).collect();
        Ok(Self { cfg, shape, factors, temporal, u, w, duals, workspaces, ckpt: None })
    }

    /// Writes one snapshot of the full tracker state (factors, duals,
    /// history statistics, temporal rows) into `dir`, named by the number
    /// of ingested slices. Returns the snapshot path.
    pub fn save_snapshot(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| CheckpointError::Io(format!("creating {}: {e}", dir.display())))?;
        let mut w = ArchiveWriter::new("stream");
        w.field("fingerprint", fingerprint(&self.shape, &self.cfg));
        w.field("slices", self.temporal.len());
        w.mat("temporal", &self.temporal_factor());
        w.field("modes", self.shape.len());
        for m in 0..self.shape.len() {
            w.mat("factor", &self.factors[m]);
            w.mat("dual", &self.duals[m]);
            w.mat("hist_u", &self.u[m]);
            w.mat("hist_w", &self.w[m]);
        }
        let path = dir.join(format!("{STREAM_PREFIX}{:08}{STREAM_SUFFIX}", self.temporal.len()));
        w.write_atomic(&path)?;
        Ok(path)
    }

    /// Non-temporal factors.
    pub fn factors(&self) -> &[Mat] {
        &self.factors
    }

    /// The temporal factor assembled as a `T x R` matrix.
    pub fn temporal_factor(&self) -> Mat {
        let rank = self.cfg.rank;
        let mut m = Mat::zeros(self.temporal.len(), rank);
        for (i, row) in self.temporal.iter().enumerate() {
            m.row_mut(i).copy_from_slice(row);
        }
        m
    }

    /// Time steps ingested so far.
    pub fn time_steps(&self) -> usize {
        self.temporal.len()
    }

    /// Model value at a slice coordinate for time step `t`.
    pub fn value_at(&self, t: usize, coord: &[u32]) -> f64 {
        let s_t = &self.temporal[t];
        let mut acc = 0.0;
        for (r, &sr) in s_t.iter().enumerate() {
            let mut p = sr;
            for (m, &c) in coord.iter().enumerate() {
                p *= self.factors[m][(c as usize, r)];
            }
            acc += p;
        }
        acc
    }

    /// Relative reconstruction fit of one slice at time `t`
    /// (`1 - ||X_t - model_t|| / ||X_t||`, over the slice's nonzeros only).
    pub fn slice_fit(&self, t: usize, slice: &SliceTensor) -> f64 {
        let mut res = 0.0;
        let mut coord = vec![0u32; slice.nmodes()];
        for k in 0..slice.nnz() {
            for (m, c) in coord.iter_mut().enumerate() {
                *c = slice.mode_indices(m)[k];
            }
            let d = slice.values()[k] - self.value_at(t, &coord);
            res += d * d;
        }
        let norm = slice.norm_sq();
        if norm > 0.0 {
            1.0 - (res / norm).sqrt()
        } else {
            1.0
        }
    }

    /// Ingests one time-step slice: solves its temporal row, folds it into
    /// the history statistics, and refreshes the non-temporal factors.
    /// Returns the new temporal row.
    ///
    /// # Errors
    /// Propagates the first [`AdmmError`] from any constrained solve (the
    /// tracker state may then hold a partially-updated step — restore from
    /// the last snapshot to retry), or a [`CheckpointError`] if a periodic
    /// snapshot write fails.
    ///
    /// # Panics
    /// Panics if the slice shape does not match the tracker's.
    pub fn ingest(&mut self, dev: &Device, slice: &SliceTensor) -> Result<Vec<f64>, IngestError> {
        let _span = Span::enter("stream_ingest");
        assert_eq!(slice.shape(), self.shape.as_slice(), "slice shape mismatch");
        let rank = self.cfg.rank;
        let gamma = self.cfg.forgetting;

        // --- temporal row solve: (hadamard of Grams) s = m_t, nonneg ---
        let grams: Vec<Mat> = self.factors.iter().map(gram::gram).collect();
        let mut g_all = Mat::full(rank, rank, 1.0);
        for g in &grams {
            hadamard_in_place(&mut g_all, g);
        }
        let nnz = slice.nnz() as f64;
        let m_t = dev.launch(
            "stream_temporal_mttkrp",
            Phase::Mttkrp,
            KernelClass::SparseGather,
            KernelCost {
                flops: nnz * (slice.nmodes() + 1) as f64 * rank as f64,
                bytes_read: nnz * ((slice.nmodes() * 4) as f64 + 8.0),
                bytes_written: rank as f64 * 8.0,
                gather_traffic: nnz * slice.nmodes() as f64 * rank as f64 * 8.0,
                parallel_work: nnz,
                serial_steps: 1.0,
                working_set: self.factors.iter().map(|f| f.len() as f64 * 8.0).sum(),
            },
            || slice.temporal_mttkrp(&self.factors, rank),
        );
        // Solve the 1 x R constrained system with the same ADMM machinery.
        let m_row = Mat::from_vec(1, rank, m_t);
        let mut s_row = Mat::full(1, rank, 0.1);
        let mut s_dual = Mat::zeros(1, rank);
        let mut s_ws = AdmmWorkspace::new(1, rank);
        let row_cfg = AdmmConfig { inner_iters: 25, tol: 1e-10, ..self.cfg.admm };
        admm_update(dev, &row_cfg, &m_row, &g_all, &mut s_row, &mut s_dual, &mut s_ws)?;
        let s_t: Vec<f64> = s_row.row(0).to_vec();

        // --- fold the slice into history statistics ---
        let s_outer = {
            let mut o = Mat::zeros(rank, rank);
            for i in 0..rank {
                for j in 0..rank {
                    o[(i, j)] = s_t[i] * s_t[j];
                }
            }
            o
        };
        for mode in 0..self.shape.len() {
            // W_n <- gamma W_n + (hadamard_{m != n} gram) * (s s^T).
            let mut w_inc = Mat::full(rank, rank, 1.0);
            for (m, g) in grams.iter().enumerate() {
                if m != mode {
                    hadamard_in_place(&mut w_inc, g);
                }
            }
            hadamard_in_place(&mut w_inc, &s_outer);
            let w_n = &mut self.w[mode];
            w_n.scale(gamma);
            for (a, &b) in w_n.as_mut_slice().iter_mut().zip(w_inc.as_slice()) {
                *a += b;
            }

            // U_n <- gamma U_n + MTTKRP_n(X_t, s_t).
            let elems = (self.shape[mode] * rank) as f64;
            let m_inc = dev.launch(
                "stream_mode_mttkrp",
                Phase::Mttkrp,
                KernelClass::SparseGather,
                KernelCost {
                    flops: nnz * (slice.nmodes() + 1) as f64 * rank as f64,
                    bytes_read: nnz * ((slice.nmodes() * 4) as f64 + 8.0) + elems * 8.0,
                    bytes_written: elems * 8.0,
                    gather_traffic: nnz * (slice.nmodes() - 1) as f64 * rank as f64 * 8.0,
                    parallel_work: nnz,
                    serial_steps: 1.0,
                    working_set: self.factors.iter().map(|f| f.len() as f64 * 8.0).sum(),
                },
                || slice.mode_mttkrp(&self.factors, &s_t, mode),
            );
            let u_n = &mut self.u[mode];
            dev.launch(
                "stream_history_fold",
                Phase::Update,
                KernelClass::Stream,
                KernelCost {
                    flops: 2.0 * elems,
                    bytes_read: 2.0 * elems * 8.0,
                    bytes_written: elems * 8.0,
                    gather_traffic: 0.0,
                    parallel_work: elems,
                    serial_steps: 1.0,
                    working_set: 2.0 * elems * 8.0,
                },
                || {
                    u_n.scale(gamma);
                    for (a, &b) in u_n.as_mut_slice().iter_mut().zip(m_inc.as_slice()) {
                        *a += b;
                    }
                },
            );
        }

        // --- refresh non-temporal factors on the history statistics ---
        for _ in 0..self.cfg.refresh_passes {
            for mode in 0..self.shape.len() {
                // Guard: W may be near-singular before enough slices arrive;
                // the ADMM's rho-loading handles conditioning.
                let (u_n, w_n) = (&self.u[mode], &self.w[mode]);
                admm_update(
                    dev,
                    &self.cfg.admm,
                    u_n,
                    w_n,
                    &mut self.factors[mode],
                    &mut self.duals[mode],
                    &mut self.workspaces[mode],
                )?;
            }
        }

        // --- re-solve the temporal row against the refreshed factors ---
        // (one extra alternation; markedly improves per-slice fit, as in
        // CP-stream's inner refinement loop).
        let grams: Vec<Mat> = self.factors.iter().map(gram::gram).collect();
        let mut g_all = Mat::full(rank, rank, 1.0);
        for g in &grams {
            hadamard_in_place(&mut g_all, g);
        }
        let m_t2 = slice.temporal_mttkrp(&self.factors, rank);
        let m_row = Mat::from_vec(1, rank, m_t2);
        admm_update(dev, &row_cfg, &m_row, &g_all, &mut s_row, &mut s_dual, &mut s_ws)?;
        let s_t: Vec<f64> = s_row.row(0).to_vec();

        self.temporal.push(s_t.clone());
        if let Some(cc) = &self.ckpt {
            if self.temporal.len().is_multiple_of(cc.every) {
                let dir = cc.dir.clone();
                self.save_snapshot(&dir)?;
            }
        }
        Ok(s_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstf_device::DeviceSpec;

    /// Generates a stream of slices from planted non-temporal factors and
    /// per-step temporal rows; returns (slices, planted temporal rows).
    fn planted_stream(
        shape: &[usize],
        rank: usize,
        steps: usize,
        nnz_per_slice: usize,
        seed: u64,
    ) -> (Vec<SliceTensor>, Vec<Mat>) {
        let truth = seeded_factors(shape, rank, seed ^ 0x5EED);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut slices = Vec::new();
        for t in 0..steps {
            // Temporal row: smooth positive pattern.
            let s_t: Vec<f64> =
                (0..rank).map(|r| 0.5 + 0.5 * (((t + r) % 5) as f64) / 4.0).collect();
            let mut idx = vec![Vec::new(); shape.len()];
            let mut vals = Vec::new();
            let mut seen = std::collections::HashSet::new();
            while vals.len() < nnz_per_slice {
                let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
                if !seen.insert(c.clone()) {
                    continue;
                }
                let mut v = 0.0;
                for (r, &sr) in s_t.iter().enumerate() {
                    let mut p = sr;
                    for (m, &ci) in c.iter().enumerate() {
                        p *= truth[m][(ci as usize, r)];
                    }
                    v += p;
                }
                for (m, &ci) in c.iter().enumerate() {
                    idx[m].push(ci);
                }
                vals.push(v.max(1e-9));
            }
            slices.push(SliceTensor::new(shape.to_vec(), idx, vals));
        }
        (slices, truth)
    }

    #[test]
    fn tracker_ingests_and_grows_temporal_factor() {
        let (slices, _) = planted_stream(&[20, 15], 3, 5, 150, 1);
        let dev = Device::new(DeviceSpec::h100());
        let mut tracker =
            StreamingCstf::new(vec![20, 15], StreamingConfig { rank: 3, ..Default::default() });
        for s in &slices {
            let row = tracker.ingest(&dev, s).unwrap();
            assert_eq!(row.len(), 3);
            assert!(row.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
        assert_eq!(tracker.time_steps(), 5);
        assert_eq!(tracker.temporal_factor().rows(), 5);
    }

    #[test]
    fn fit_improves_as_stream_progresses() {
        // Fully-observed slices: a support-masked low-rank tensor is not
        // low-rank, so only full observation admits fit -> 1 (same ceiling
        // the batch driver tests document).
        let (slices, _) = planted_stream(&[25, 20], 3, 48, 500, 2);
        let dev = Device::new(DeviceSpec::h100());
        let mut tracker = StreamingCstf::new(
            vec![25, 20],
            StreamingConfig { rank: 4, refresh_passes: 3, forgetting: 0.85, ..Default::default() },
        );
        let mut early = Vec::new();
        let mut late = Vec::new();
        for (t, s) in slices.iter().enumerate() {
            tracker.ingest(&dev, s).unwrap();
            let fit = tracker.slice_fit(t, s);
            if t < 6 {
                early.push(fit);
            } else if t >= 42 {
                late.push(fit);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&late) > avg(&early),
            "late fits {:?} should beat early fits {:?}",
            late,
            early
        );
        assert!(
            avg(&late) > 0.5,
            "tracker should reconstruct the planted stream: early {:?} late {:?}",
            early,
            late
        );
    }

    #[test]
    fn factors_stay_nonnegative_under_streaming() {
        let (slices, _) = planted_stream(&[15, 12], 2, 8, 100, 3);
        let dev = Device::new(DeviceSpec::a100());
        let mut tracker =
            StreamingCstf::new(vec![15, 12], StreamingConfig { rank: 2, ..Default::default() });
        for s in &slices {
            tracker.ingest(&dev, s).unwrap();
            for f in tracker.factors() {
                assert!(f.is_nonnegative(0.0));
                assert!(f.all_finite());
            }
        }
    }

    #[test]
    fn forgetting_tracks_drift_better_than_infinite_memory() {
        // A stream whose generating factors switch halfway.
        let shape = [20usize, 16];
        let rank = 3;
        let (first, _) = planted_stream(&shape, rank, 12, 180, 4);
        let (second, _) = planted_stream(&shape, rank, 12, 180, 99);
        let run = |gamma: f64| {
            let dev = Device::new(DeviceSpec::h100());
            let mut tracker = StreamingCstf::new(
                shape.to_vec(),
                StreamingConfig {
                    rank,
                    forgetting: gamma,
                    refresh_passes: 2,
                    ..Default::default()
                },
            );
            let mut t = 0usize;
            for s in first.iter().chain(&second) {
                tracker.ingest(&dev, s).unwrap();
                t += 1;
            }
            // Fit on the final (post-drift) slice.
            tracker.slice_fit(t - 1, second.last().unwrap())
        };
        let forgetful = run(0.7);
        let elephant = run(1.0);
        assert!(
            forgetful > elephant - 0.05,
            "forgetting (fit {forgetful}) should track drift at least as well as \
             infinite memory (fit {elephant})"
        );
    }

    #[test]
    fn device_meters_streaming_kernels() {
        let (slices, _) = planted_stream(&[10, 10], 2, 3, 60, 5);
        let dev = Device::new(DeviceSpec::h100());
        let mut tracker =
            StreamingCstf::new(vec![10, 10], StreamingConfig { rank: 2, ..Default::default() });
        for s in &slices {
            tracker.ingest(&dev, s).unwrap();
        }
        assert!(dev.phase_totals(Phase::Mttkrp).launches >= 9); // temporal + 2 modes x 3 slices
        assert!(dev.phase_totals(Phase::Update).seconds > 0.0);
    }

    #[test]
    #[should_panic(expected = "slice shape mismatch")]
    fn mismatched_slice_is_rejected() {
        let dev = Device::new(DeviceSpec::a100());
        let mut tracker =
            StreamingCstf::new(vec![10, 10], StreamingConfig { rank: 2, ..Default::default() });
        let bad = SliceTensor::new(vec![5, 5], vec![vec![0], vec![0]], vec![1.0]);
        let _ = tracker.ingest(&dev, &bad);
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn invalid_forgetting_rejected() {
        StreamingCstf::new(vec![5, 5], StreamingConfig { forgetting: 1.5, ..Default::default() });
    }

    #[test]
    fn injected_fault_surfaces_as_ingest_error() {
        use cstf_core::recovery::AdmmError;
        use cstf_device::FaultPlan;

        let (slices, _) = planted_stream(&[10, 10], 2, 1, 60, 6);
        let dev = Device::new(DeviceSpec::h100())
            .with_fault_plan(FaultPlan { launch_fault_rate: 1.0, ..FaultPlan::quiet(7) });
        let mut tracker =
            StreamingCstf::new(vec![10, 10], StreamingConfig { rank: 2, ..Default::default() });
        match tracker.ingest(&dev, &slices[0]) {
            Err(IngestError::Admm(AdmmError::Fault(f))) => {
                assert_eq!(f.kernel, "cholesky_factor");
            }
            other => panic!("expected an injected launch fault, got {other:?}"),
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cstf-stream-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn resumed_stream_is_bitwise_identical_to_uninterrupted() {
        let shape = vec![12usize, 9];
        let cfg = StreamingConfig { rank: 3, ..Default::default() };
        let (slices, _) = planted_stream(&shape, 3, 8, 80, 11);

        // Uninterrupted reference run over all 8 slices.
        let dev_a = Device::new(DeviceSpec::h100());
        let mut reference = StreamingCstf::new(shape.clone(), cfg.clone());
        for s in &slices {
            reference.ingest(&dev_a, s).unwrap();
        }

        // Interrupted run: snapshot every 2 slices, stop after 4.
        let dir = tmpdir("resume");
        let dev_b = Device::new(DeviceSpec::h100());
        let mut interrupted = StreamingCstf::new(shape.clone(), cfg.clone())
            .with_checkpointing(CheckpointConfig::new(&dir, 2));
        for s in &slices[..4] {
            interrupted.ingest(&dev_b, s).unwrap();
        }
        drop(interrupted); // "crash"

        // Resume from the snapshot and replay the remaining slices.
        let dev_c = Device::new(DeviceSpec::h100());
        let mut resumed = StreamingCstf::resume(shape.clone(), cfg.clone(), &dir)
            .unwrap()
            .expect("snapshot present");
        assert_eq!(resumed.time_steps(), 4);
        for s in &slices[4..] {
            resumed.ingest(&dev_c, s).unwrap();
        }

        assert_eq!(resumed.time_steps(), reference.time_steps());
        assert_eq!(
            resumed.temporal_factor(),
            reference.temporal_factor(),
            "temporal factor must match bitwise"
        );
        for (a, b) in resumed.factors().iter().zip(reference.factors()) {
            assert_eq!(a, b, "non-temporal factors must match bitwise");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_stream_snapshot_falls_back_to_previous() {
        let shape = vec![8usize, 7];
        let cfg = StreamingConfig { rank: 2, ..Default::default() };
        let (slices, _) = planted_stream(&shape, 2, 4, 40, 13);
        let dir = tmpdir("corrupt");
        let dev = Device::new(DeviceSpec::a100());
        let mut tracker = StreamingCstf::new(shape.clone(), cfg.clone())
            .with_checkpointing(CheckpointConfig::new(&dir, 2));
        for s in &slices {
            tracker.ingest(&dev, s).unwrap();
        }
        // Corrupt the newest snapshot (slices=4) without touching its
        // checksum line; the loader must fall back to the slices=2 one.
        let newest = dir.join("stream-00000004.cstf");
        let text = std::fs::read_to_string(&newest).unwrap();
        std::fs::write(&newest, text.replacen("factor", "factoR", 1)).unwrap();
        let resumed =
            StreamingCstf::resume(shape, cfg, &dir).unwrap().expect("older snapshot usable");
        assert_eq!(resumed.time_steps(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_different_config_is_a_hard_error() {
        let shape = vec![8usize, 7];
        let cfg = StreamingConfig { rank: 2, ..Default::default() };
        let (slices, _) = planted_stream(&shape, 2, 2, 40, 17);
        let dir = tmpdir("fingerprint");
        let dev = Device::new(DeviceSpec::a100());
        let mut tracker = StreamingCstf::new(shape.clone(), cfg.clone())
            .with_checkpointing(CheckpointConfig::new(&dir, 1));
        for s in &slices {
            tracker.ingest(&dev, s).unwrap();
        }
        let other = StreamingConfig { rank: 3, ..cfg };
        match StreamingCstf::resume(shape, other, &dir) {
            Err(CheckpointError::Fingerprint { .. }) => {}
            Err(e) => panic!("expected fingerprint error, got {e:?}"),
            Ok(_) => panic!("expected fingerprint error, got a successful resume"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
