//! Proximity operators for constrained factorization.
//!
//! ADMM's constraint step (Algorithm 2 line 7 / Algorithm 3 line 8) applies
//! the proximity operator of the regularizer `r` to `H_aux - U`. The paper
//! exploits that the operators for all constraints it considers are
//! *element-wise* (§4.3.1), which is what allows fusing the operator with
//! the primal update into one kernel. Every operator here is an element-wise
//! `f64 -> f64` map plus the regularizer value needed for objective
//! tracking.

/// A constraint / regularizer with an element-wise proximity operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constraint {
    /// No constraint: `prox` is the identity (plain CP-ALS least squares).
    Unconstrained,
    /// Non-negativity `H >= 0`: `prox(v) = max(0, v)` — the indicator
    /// function over the non-negative orthant used throughout the paper.
    NonNegative,
    /// L1 sparsity `mu * ||H||_1` combined with non-negativity:
    /// soft-thresholding `prox(v) = max(0, v - mu/rho)`.
    SparseL1 {
        /// Regularization weight `mu`.
        mu: f64,
    },
    /// L2 ridge `mu/2 * ||H||_F^2` (shrinkage): `prox(v) = v / (1 + mu/rho)`.
    Ridge {
        /// Regularization weight `mu`.
        mu: f64,
    },
    /// Box constraint `lo <= H <= hi` (clamping).
    Box {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Probability-simplex constraint: every **row** of `H` lies on
    /// `{x : x >= 0, sum x = 1}` (row-stochastic factors, as in the
    /// AO-ADMM framework of Huang et al. — the paper's ref. [9]). Unlike
    /// the other operators this projection is *not* element-wise: it
    /// couples the entries of a row (sort + threshold), so the fused
    /// proximity kernel falls back to a row-wise path.
    Simplex,
}

/// Projects a vector onto the probability simplex in place
/// (Held et al. / Duchi et al.: sort, find the threshold `tau`, clip).
pub fn project_simplex(row: &mut [f64]) {
    if row.is_empty() {
        return;
    }
    let mut sorted: Vec<f64> = row.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite entries"));
    let mut cumsum = 0.0;
    let mut tau = 0.0;
    for (j, &u) in sorted.iter().enumerate() {
        cumsum += u;
        let candidate = (cumsum - 1.0) / (j + 1) as f64;
        if u - candidate > 0.0 {
            tau = candidate;
        } else {
            break;
        }
    }
    for v in row.iter_mut() {
        *v = (*v - tau).max(0.0);
    }
}

impl Constraint {
    /// Applies the proximity operator to one element. `rho` is the ADMM
    /// penalty parameter, which scales the regularizer inside the operator
    /// (`prox_{r/rho}`).
    #[inline]
    pub fn prox(&self, v: f64, rho: f64) -> f64 {
        match *self {
            Constraint::Unconstrained => v,
            Constraint::NonNegative => v.max(0.0),
            Constraint::SparseL1 { mu } => (v - mu / rho).max(0.0),
            Constraint::Ridge { mu } => v / (1.0 + mu / rho),
            Constraint::Box { lo, hi } => v.clamp(lo, hi),
            Constraint::Simplex => {
                unreachable!("Simplex is not element-wise; use prox_row")
            }
        }
    }

    /// True when the operator acts independently on each element — the
    /// property the paper's fused kernels exploit (§4.3.1).
    pub fn is_elementwise(&self) -> bool {
        !matches!(self, Constraint::Simplex)
    }

    /// Applies the proximity operator to one factor row in place.
    /// Element-wise operators map each entry; the simplex projects the
    /// whole row jointly.
    pub fn prox_row(&self, row: &mut [f64], rho: f64) {
        if self.is_elementwise() {
            for v in row.iter_mut() {
                *v = self.prox(*v, rho);
            }
        } else {
            project_simplex(row);
        }
    }

    /// The regularizer value `r(H)` contributed by one element (for
    /// objective tracking; the indicator parts are 0 on feasible points).
    #[inline]
    pub fn penalty(&self, v: f64) -> f64 {
        match *self {
            Constraint::Unconstrained
            | Constraint::NonNegative
            | Constraint::Box { .. }
            | Constraint::Simplex => 0.0,
            Constraint::SparseL1 { mu } => mu * v.abs(),
            Constraint::Ridge { mu } => 0.5 * mu * v * v,
        }
    }

    /// True when every value produced by this operator is non-negative
    /// (used by invariant checks in the drivers).
    pub fn yields_nonnegative(&self) -> bool {
        match *self {
            Constraint::NonNegative | Constraint::SparseL1 { .. } | Constraint::Simplex => true,
            Constraint::Box { lo, .. } => lo >= 0.0,
            Constraint::Unconstrained | Constraint::Ridge { .. } => false,
        }
    }

    /// Short display name (figure labels).
    pub fn name(&self) -> &'static str {
        match self {
            Constraint::Unconstrained => "none",
            Constraint::NonNegative => "nonneg",
            Constraint::SparseL1 { .. } => "l1",
            Constraint::Ridge { .. } => "ridge",
            Constraint::Box { .. } => "box",
            Constraint::Simplex => "simplex",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonnegative_zeroes_negatives() {
        let c = Constraint::NonNegative;
        assert_eq!(c.prox(-3.0, 1.0), 0.0);
        assert_eq!(c.prox(2.5, 1.0), 2.5);
        assert_eq!(c.prox(0.0, 1.0), 0.0);
    }

    #[test]
    fn unconstrained_is_identity() {
        let c = Constraint::Unconstrained;
        for v in [-2.0, 0.0, 3.5] {
            assert_eq!(c.prox(v, 7.0), v);
        }
    }

    #[test]
    fn l1_soft_thresholds_by_mu_over_rho() {
        let c = Constraint::SparseL1 { mu: 2.0 };
        assert_eq!(c.prox(5.0, 2.0), 4.0); // 5 - 2/2
        assert_eq!(c.prox(0.5, 2.0), 0.0); // below threshold
        assert_eq!(c.prox(-1.0, 2.0), 0.0);
    }

    #[test]
    fn ridge_shrinks_proportionally() {
        let c = Constraint::Ridge { mu: 1.0 };
        assert!((c.prox(3.0, 1.0) - 1.5).abs() < 1e-15);
        assert!((c.prox(-3.0, 1.0) + 1.5).abs() < 1e-15);
    }

    #[test]
    fn box_clamps_both_sides() {
        let c = Constraint::Box { lo: 0.0, hi: 1.0 };
        assert_eq!(c.prox(-5.0, 1.0), 0.0);
        assert_eq!(c.prox(0.5, 1.0), 0.5);
        assert_eq!(c.prox(9.0, 1.0), 1.0);
    }

    #[test]
    fn prox_is_idempotent_on_feasible_points() {
        // prox of an indicator function is a projection: applying twice
        // equals applying once.
        for c in [
            Constraint::NonNegative,
            Constraint::Box { lo: -1.0, hi: 2.0 },
            Constraint::Unconstrained,
        ] {
            for v in [-3.0, -0.5, 0.0, 1.0, 5.0] {
                let once = c.prox(v, 1.0);
                assert_eq!(c.prox(once, 1.0), once, "{c:?} at {v}");
            }
        }
    }

    #[test]
    fn penalties_match_regularizers() {
        assert_eq!(Constraint::NonNegative.penalty(3.0), 0.0);
        assert_eq!(Constraint::SparseL1 { mu: 2.0 }.penalty(-3.0), 6.0);
        assert_eq!(Constraint::Ridge { mu: 4.0 }.penalty(3.0), 18.0);
    }

    #[test]
    fn simplex_projection_satisfies_kkt() {
        // Projection onto the simplex: nonneg, sums to 1, and every
        // positive entry sits at a constant offset tau below its input.
        for input in [
            vec![0.4, 0.3, 0.2, 0.5],
            vec![-1.0, 2.0, 0.1],
            vec![5.0, 5.0],
            vec![-3.0, -4.0, -5.0],
            vec![0.25, 0.25, 0.25, 0.25],
        ] {
            let mut row = input.clone();
            project_simplex(&mut row);
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{input:?} -> {row:?} sums to {sum}");
            assert!(row.iter().all(|&v| v >= 0.0), "{row:?}");
            let taus: Vec<f64> =
                input.iter().zip(&row).filter(|(_, &x)| x > 0.0).map(|(&v, &x)| v - x).collect();
            for w in taus.windows(2) {
                assert!((w[0] - w[1]).abs() < 1e-10, "non-constant tau for {input:?}");
            }
        }
    }

    #[test]
    fn simplex_projection_is_idempotent() {
        let mut row = vec![0.1, -2.0, 3.0, 0.4];
        project_simplex(&mut row);
        let once = row.clone();
        project_simplex(&mut row);
        for (a, b) in once.iter().zip(&row) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn simplex_leaves_feasible_points_unchanged() {
        let mut row = vec![0.2, 0.3, 0.5];
        project_simplex(&mut row);
        assert!((row[0] - 0.2).abs() < 1e-12);
        assert!((row[1] - 0.3).abs() < 1e-12);
        assert!((row[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simplex_is_not_elementwise_but_others_are() {
        assert!(!Constraint::Simplex.is_elementwise());
        for c in [
            Constraint::Unconstrained,
            Constraint::NonNegative,
            Constraint::SparseL1 { mu: 1.0 },
            Constraint::Ridge { mu: 1.0 },
            Constraint::Box { lo: 0.0, hi: 1.0 },
        ] {
            assert!(c.is_elementwise());
        }
    }

    #[test]
    fn prox_row_matches_elementwise_prox() {
        let c = Constraint::SparseL1 { mu: 2.0 };
        let input = [3.0, -1.0, 0.5, 7.0];
        let mut row = input;
        c.prox_row(&mut row, 2.0);
        for (out, &v) in row.iter().zip(&input) {
            assert_eq!(*out, c.prox(v, 2.0));
        }
    }

    #[test]
    fn nonnegativity_flags() {
        assert!(Constraint::NonNegative.yields_nonnegative());
        assert!(Constraint::SparseL1 { mu: 0.1 }.yields_nonnegative());
        assert!(!Constraint::Unconstrained.yields_nonnegative());
        assert!(!Constraint::Ridge { mu: 0.1 }.yields_nonnegative());
        assert!(Constraint::Simplex.yields_nonnegative());
        assert!(Constraint::Box { lo: 0.0, hi: 1.0 }.yields_nonnegative());
        assert!(!Constraint::Box { lo: -1.0, hi: 1.0 }.yields_nonnegative());
    }
}
