//! Executed multi-device sharded factorization.
//!
//! Runs the full AO-ADMM loop of [`Auntf`] across a [`DeviceGroup`]: the
//! tensor is sharded per output mode into nnz-balanced row blocks (one
//! shard per device, compiled into the configured format), each device
//! executes the MTTKRP for its own rows, the partitioned ADMM update runs
//! one partition per device, and the factor all-gather plus Gram
//! all-reduce stitch the modes back together through the group's modeled
//! ring collectives.
//!
//! **Exactness.** The sharded run is bitwise-identical to the
//! single-device [`Auntf::factorize`]:
//!
//! * MTTKRP — device `d` owns every nonzero whose output-mode index falls
//!   in its row block, so its output rows accumulate exactly the global
//!   contributions; the formats' traversal orders restrict cleanly to row
//!   subsets (content-based orders for CSF root modes and key-partitioned
//!   ALTO; serial kernel regimes for the rest — see DESIGN.md §11).
//! * ADMM — rows are independent given the shared `M` rows and `S`
//!   (fixed-iteration mode), so the stage-and-commit partitioned update
//!   equals the unpartitioned one at any partition sizes.
//! * Gram — every device computes the *same* global chunk partials the
//!   single-device kernel would, and [`DeviceGroup::all_reduce_mat`]
//!   reduces them with the same pairwise halving tree.
//! * Normalize / Hadamard — replicated `R x R`-scale compute, executed
//!   once and charged to every device.
//!
//! The sharded fault surface is transfers, MTTKRP, and ADMM (the Gram
//! partial and replicated launches use the infallible path); recovery
//! mirrors the single-device ladder, with the partitioned update's staging
//! standing in for snapshots — a faulted mode update leaves `H`/`U`
//! untouched, so the retry replays from clean state.
//!
//! **Elasticity** (DESIGN.md §15). Group-scoped faults add whole-device
//! loss: every completed outer iteration *commits* its state, and a
//! [`FaultKind::DeviceLoss`] failure restores that commit and retries
//! under the group [`HealthPolicy`](cstf_device::HealthPolicy); once the
//! retry budget is spent the lost members are declared dead and the run
//! *shrinks to the survivors* — re-sharding every format across the
//! remaining devices and resuming from the same committed state. Because
//! each phase above is bitwise member-count-invariant, the recovered run
//! is bitwise-identical to a clean run on the surviving group resumed
//! from that state (and, transitively, to the uninterrupted single-device
//! run). Stragglers and degraded links never enter this ladder: they
//! stretch modeled time only, tripping the
//! [`GroupHealth`](cstf_device::GroupHealth) deadline monitor while the
//! numerics stay bit-exact. Everything observed lands in the
//! [`ElasticityReport`].

use std::ops::Range;

use cstf_device::{Device, DeviceGroup, FaultKind, KernelClass, KernelCost, Phase};
use cstf_formats::{
    extract_mode_rows, nnz_balanced_ranges, Alto, Blco, Csf, HiCoo, MttkrpWorkspace,
    TrafficEstimate,
};
use cstf_linalg::{
    gram_accumulate_range, gram_chunk_count, gram_mirror, hadamard_of_grams_into,
    normalize_columns_scratch, LinalgError, Mat, NormKind,
};
use cstf_telemetry::{ConvergenceLog, Span};
use cstf_tensor::{Ktensor, SparseTensor};
use rayon::prelude::*;

use crate::admm::AdmmConfig;
use crate::auntf::{
    backoff_s, seeded_factors, transfer_with_retry, Auntf, FactorizeOutput, Source, TensorFormat,
    UpdateMethod,
};
use crate::checkpoint::{self, BatchState, BatchView, CheckpointConfig};
use crate::multi_gpu::{partitioned_admm_update_on, row_partitions};
use crate::recovery::{
    AdmmError, ElasticityReport, FactorizeError, RecoveryPolicy, RecoveryReport, RetiredDevice,
};

/// One device's slice of the tensor for one output mode: the owned row
/// block, the extracted sub-tensor, and its compiled MTTKRP engine.
struct Shard {
    coo: SparseTensor,
    engine: ShardEngine,
}

enum ShardEngine {
    /// No nonzeros in the row block — the zeroed output buffer is exact.
    Empty,
    /// Use `Shard::coo` directly.
    Coo,
    Csf(Csf),
    CsfOne(Csf),
    HiCoo(HiCoo),
    Alto(Alto),
    Blco(Blco),
}

fn compile_shard(x: &SparseTensor, mode: usize, rows: Range<usize>, format: TensorFormat) -> Shard {
    let coo = extract_mode_rows(x, mode, &rows);
    let engine = if coo.nnz() == 0 {
        ShardEngine::Empty
    } else {
        match format {
            TensorFormat::Coo => ShardEngine::Coo,
            TensorFormat::Csf => ShardEngine::Csf(Csf::from_coo(&coo, mode)),
            // Same tree shape as the single-device ONEMODE engine (rooted
            // at mode 0), restricted to the shard's nonzeros.
            TensorFormat::CsfOne => ShardEngine::CsfOne(Csf::from_coo(&coo, 0)),
            TensorFormat::HiCoo => ShardEngine::HiCoo(HiCoo::from_coo(&coo)),
            TensorFormat::Alto => ShardEngine::Alto(Alto::from_coo(&coo)),
            TensorFormat::Blco => ShardEngine::Blco(Blco::from_coo(&coo)),
        }
    };
    Shard { coo, engine }
}

/// Device-memory bytes of one shard (drives the per-device h2d transfer).
fn shard_bytes(shard: &Shard, nmodes: usize) -> f64 {
    match &shard.engine {
        ShardEngine::Empty => 0.0,
        ShardEngine::Coo => (shard.coo.nnz() * (nmodes * 4 + 8)) as f64,
        ShardEngine::Csf(t) | ShardEngine::CsfOne(t) => t.storage_bytes() as f64,
        ShardEngine::HiCoo(h) => h.storage_bytes() as f64,
        ShardEngine::Alto(a) => a.storage_bytes() as f64,
        ShardEngine::Blco(b) => b.storage_bytes() as f64,
    }
}

fn shard_traffic(
    shard: &Shard,
    shape: &[usize],
    mode: usize,
    rank: usize,
) -> (TrafficEstimate, KernelClass) {
    match &shard.engine {
        ShardEngine::Empty => unreachable!("empty shards are not launched"),
        ShardEngine::Coo => (
            cstf_formats::coordinate_mttkrp_traffic(
                shard.coo.nnz(),
                shape,
                mode,
                rank,
                (shape.len() * 4) as f64,
            ),
            KernelClass::SparseGather,
        ),
        ShardEngine::Csf(t) => (t.mttkrp_traffic(rank), KernelClass::SparseGather),
        ShardEngine::CsfOne(t) => (t.mttkrp_any_traffic(mode, rank), KernelClass::SparseGather),
        ShardEngine::HiCoo(h) => (h.mttkrp_traffic(mode, rank), KernelClass::SparseGather),
        ShardEngine::Alto(a) => (a.mttkrp_traffic(mode, rank), KernelClass::SparseGather),
        ShardEngine::Blco(b) => (b.mttkrp_traffic(mode, rank), KernelClass::SparseGather),
    }
}

/// Per-device shard MTTKRP with the recovery policy applied (the sharded
/// analogue of `mttkrp_guarded`): transient faults retry with modeled
/// backoff, NaN-corrupted panels recompute. Returns the device's local
/// recovery tally for merging into the run report.
#[allow(clippy::too_many_arguments)]
fn shard_mttkrp_guarded(
    dev: &Device,
    shard: &Shard,
    shape: &[usize],
    factors: &[Mat],
    mode: usize,
    rank: usize,
    out: &mut Mat,
    ws: &mut MttkrpWorkspace,
    policy: &RecoveryPolicy,
    outer: usize,
) -> Result<RecoveryReport, FactorizeError> {
    let mut local = RecoveryReport::default();
    if matches!(shard.engine, ShardEngine::Empty) {
        // The buffer was zeroed at allocation and no kernel ever writes
        // it, so its rows are exactly the (all-zero) global MTTKRP rows.
        return Ok(local);
    }
    let (traffic, class) = shard_traffic(shard, shape, mode, rank);
    let cost = KernelCost {
        flops: traffic.flops,
        bytes_read: traffic.bytes_read,
        bytes_written: traffic.bytes_written,
        gather_traffic: traffic.gather_bytes,
        parallel_work: traffic.parallel_work,
        serial_steps: 1.0,
        working_set: traffic.working_set,
    };
    let mut attempts = 0u32;
    loop {
        let res = dev.launch_into(
            "mttkrp_shard",
            Phase::Mttkrp,
            class,
            cost,
            out,
            Mat::as_mut_slice,
            |out| match &shard.engine {
                ShardEngine::Coo => {
                    cstf_formats::mttkrp_coo_parallel_into(&shard.coo, factors, mode, out, ws)
                }
                ShardEngine::Csf(t) => t.mttkrp_into(factors, out, ws),
                ShardEngine::CsfOne(t) => t.mttkrp_any_into(factors, mode, out, ws),
                ShardEngine::HiCoo(h) => h.mttkrp_into(factors, mode, out, ws),
                ShardEngine::Alto(a) => a.mttkrp_into(factors, mode, out, ws),
                ShardEngine::Blco(b) => b.mttkrp_into(factors, mode, out, ws),
                ShardEngine::Empty => unreachable!("empty shards are not launched"),
            },
        );
        match res {
            Ok(()) => {
                if policy.nan_guard && !out.all_finite() {
                    local.nan_events += 1;
                    attempts += 1;
                    if attempts > policy.max_retries {
                        return Err(FactorizeError::NonFinite {
                            stage: "mttkrp",
                            mode,
                            outer_iter: outer,
                        });
                    }
                    continue;
                }
                return Ok(local);
            }
            Err(fault) => {
                attempts += 1;
                // Device loss is persistent — burning the transient-retry
                // budget on it cannot help; surface it at once for the
                // group-level shrink ladder.
                if fault.kind == FaultKind::DeviceLoss || attempts > policy.max_retries {
                    return Err(FactorizeError::Fault { fault, attempts });
                }
                local.transient_retries += 1;
                local.total_backoff_s += backoff_s(policy, attempts);
            }
        }
    }
}

fn merge_report(into: &mut RecoveryReport, from: &RecoveryReport) {
    into.transient_retries += from.transient_retries;
    into.nan_events += from.nan_events;
    into.cholesky_retries += from.cholesky_retries;
    into.transfer_retries += from.transfer_retries;
    into.degraded_to_unfused |= from.degraded_to_unfused;
    into.total_backoff_s += from.total_backoff_s;
}

/// Sharded Gram: the single-device chunk layout is replicated over the
/// full (gathered) factor, contiguous chunk runs are assigned to the
/// surviving `members`, each member computes its chunks' partials, and the
/// group all-reduces the chunk buffers with the exact association of
/// `PartialBuffers::reduce_into` — bitwise-identical to `gram_into` for
/// any member count (the chunk layout depends only on the factor, so
/// shrinking the group re-assigns chunks without touching the sum's
/// association).
fn sharded_gram_into(
    group: &DeviceGroup,
    members: &[usize],
    h: &Mat,
    out: &mut Mat,
    chunk_bufs: &mut Vec<Vec<f64>>,
) {
    let (rows, r) = (h.rows(), h.cols());
    out.as_mut_slice().fill(0.0);
    if r == 0 {
        return;
    }
    let nchunks = gram_chunk_count(rows, r);
    let chunk = rows.div_ceil(nchunks).max(1);
    if chunk_bufs.len() < nchunks {
        chunk_bufs.resize(nchunks, Vec::new());
    }
    for buf in chunk_bufs.iter_mut().take(nchunks) {
        buf.clear();
        buf.resize(r * r, 0.0);
    }

    let devs: Vec<&Device> = members.iter().map(|&d| group.device(d)).collect();
    let assign = row_partitions(nchunks, devs.len());
    let mut pieces: Vec<&mut [Vec<f64>]> = Vec::with_capacity(devs.len());
    let mut rest = &mut chunk_bufs[..nchunks];
    for rng in &assign {
        let (piece, tail) = rest.split_at_mut(rng.len());
        pieces.push(piece);
        rest = tail;
    }
    devs.par_iter().zip(assign.par_iter()).zip(pieces.into_par_iter()).for_each(
        |((dev, rng), piece)| {
            let rows_d: usize =
                rng.clone().map(|c| ((c + 1) * chunk).min(rows).saturating_sub(c * chunk)).sum();
            if rows_d == 0 {
                return;
            }
            dev.launch(
                "gram_syrk_partial",
                Phase::Gram,
                KernelClass::Gemm,
                KernelCost {
                    flops: (rows_d * r * r) as f64,
                    bytes_read: (rows_d * r) as f64 * 8.0,
                    bytes_written: (rng.len() * r * r) as f64 * 8.0,
                    gather_traffic: 0.0,
                    parallel_work: (rows_d * r) as f64,
                    serial_steps: 1.0,
                    working_set: (rows_d * r) as f64 * 8.0,
                },
                || {
                    for (buf, c) in piece.iter_mut().zip(rng.clone()) {
                        let start = c * chunk;
                        let end = ((c + 1) * chunk).min(rows);
                        if start < end {
                            gram_accumulate_range(h, start..end, buf);
                        }
                    }
                },
            );
        },
    );
    group.all_reduce_mat_on(
        "allreduce_gram",
        members,
        &mut chunk_bufs[..nchunks],
        r * r,
        out.as_mut_slice(),
    );
    gram_mirror(out);
}

/// Hadamard-of-Grams as replicated compute (cost formulas match
/// `Auntf::hadamard_grams_into`).
fn hadamard_replicated(
    group: &DeviceGroup,
    members: &[usize],
    grams: &[Mat],
    skip: usize,
    out: &mut Mat,
) {
    let rank = out.cols();
    let n = grams.len() as f64;
    group.replicated_on(
        "hadamard_of_grams",
        members,
        Phase::Gram,
        KernelClass::Stream,
        KernelCost {
            flops: (n - 1.0) * (rank * rank) as f64,
            bytes_read: n * (rank * rank) as f64 * 8.0,
            bytes_written: (rank * rank) as f64 * 8.0,
            gather_traffic: 0.0,
            parallel_work: (rank * rank) as f64,
            serial_steps: 1.0,
            working_set: n * (rank * rank) as f64 * 8.0,
        },
        || hadamard_of_grams_into(grams, skip, out),
    );
}

/// Column normalization as replicated compute (cost formulas match
/// `Auntf::normalize`).
fn normalize_replicated(
    group: &DeviceGroup,
    members: &[usize],
    h: &mut Mat,
    lambda: &mut [f64],
    norm: NormKind,
    scratch: &mut Vec<f64>,
) {
    let elems = (h.rows() * h.cols()) as f64;
    group.replicated_on(
        "normalize_columns",
        members,
        Phase::Normalize,
        KernelClass::Stream,
        KernelCost {
            flops: 3.0 * elems,
            bytes_read: 2.0 * elems * 8.0,
            bytes_written: elems * 8.0,
            gather_traffic: 0.0,
            parallel_work: elems,
            serial_steps: 1.0,
            working_set: elems * 8.0,
        },
        || {
            lambda.fill(1.0);
            normalize_columns_scratch(h, lambda, norm, scratch);
        },
    );
}

/// Assembles the full MTTKRP output from the per-device panels. Each
/// device's rows are local to it (its ADMM partition is exactly its shard
/// rows — M-locality), so assembly is free except for the last mode when
/// the fit needs the whole panel on device 0: that gather is charged as a
/// real collective.
fn assemble_m(
    group: &DeviceGroup,
    members: &[usize],
    ranges: &[Range<usize>],
    per_dev: &[Mat],
    out: &mut Mat,
    gather_for_fit: bool,
) {
    let rank = out.cols();
    if gather_for_fit {
        let blocks: Vec<&[f64]> = ranges
            .iter()
            .zip(per_dev)
            .map(|(rng, m)| &m.as_slice()[rng.start * rank..rng.end * rank])
            .collect();
        let offsets: Vec<usize> = ranges.iter().map(|rng| rng.start * rank).collect();
        group.all_gather_rows_on(
            "mttkrp_allgather",
            members,
            &blocks,
            &offsets,
            out.as_mut_slice(),
        );
    } else {
        for (rng, m) in ranges.iter().zip(per_dev) {
            out.as_mut_slice()[rng.start * rank..rng.end * rank]
                .copy_from_slice(&m.as_slice()[rng.start * rank..rng.end * rank]);
        }
    }
}

/// All-gathers the committed factor row blocks (each device produced only
/// its partition's rows): really moves every block into the scratch copy,
/// which then becomes the factor.
fn gather_factor(
    group: &DeviceGroup,
    members: &[usize],
    ranges: &[Range<usize>],
    h: &mut Mat,
    scratch: &mut Mat,
) {
    let rank = h.cols();
    {
        let src = h.as_slice();
        let blocks: Vec<&[f64]> =
            ranges.iter().map(|rng| &src[rng.start * rank..rng.end * rank]).collect();
        let offsets: Vec<usize> = ranges.iter().map(|rng| rng.start * rank).collect();
        group.all_gather_rows_on(
            "allgather_factor",
            members,
            &blocks,
            &offsets,
            scratch.as_mut_slice(),
        );
    }
    std::mem::swap(h, scratch);
}

impl Auntf {
    /// Runs the factorization sharded across a device group, bitwise-
    /// identical to the single-device [`factorize`](Self::factorize) (see
    /// the module docs for the exactness argument and format caveats).
    ///
    /// # Errors
    /// [`FactorizeError::InvalidConfig`] for the single-device rejections
    /// plus dense tensors, non-ADMM update schemes, and residual-based
    /// early exit (`tol != 0` — a global all-reduce per inner iteration
    /// would be required); the other variants when the recovery budget is
    /// exhausted.
    pub fn factorize_sharded(
        &self,
        group: &DeviceGroup,
    ) -> Result<FactorizeOutput, FactorizeError> {
        self.run_sharded(group, None)
    }

    /// Like [`factorize_sharded`](Self::factorize_sharded) with the
    /// checkpoint/resume behavior of
    /// [`factorize_checkpointed`](Self::factorize_checkpointed). The
    /// snapshot fingerprint is device-count independent, so sharded and
    /// single-device runs resume each other's snapshots interchangeably.
    ///
    /// # Errors
    /// As [`factorize_sharded`](Self::factorize_sharded), plus
    /// [`FactorizeError::Checkpoint`] for snapshot I/O failures or a
    /// fingerprint mismatch on resume.
    pub fn factorize_sharded_checkpointed(
        &self,
        group: &DeviceGroup,
        ckpt: &CheckpointConfig,
        resume: bool,
    ) -> Result<FactorizeOutput, FactorizeError> {
        self.run_sharded(group, Some((ckpt, resume)))
    }

    fn run_sharded(
        &self,
        group: &DeviceGroup,
        ckpt: Option<(&CheckpointConfig, bool)>,
    ) -> Result<FactorizeOutput, FactorizeError> {
        let _region = cstf_telemetry::HeapRegion::enter("factorize");
        let shape = self.shape();
        let rank = self.cfg.rank;
        let nmodes = shape.len();
        let g = group.len();
        let mut report = RecoveryReport::default();

        if rank == 0 {
            return Err(FactorizeError::InvalidConfig("rank must be at least 1".into()));
        }
        if nmodes == 0 {
            return Err(FactorizeError::InvalidConfig("tensor must have at least one mode".into()));
        }
        if self.nnz() == 0 {
            return Err(FactorizeError::InvalidConfig(
                "tensor has no stored values (empty tensor)".into(),
            ));
        }
        if self.cfg.tiles > 1 {
            return Err(FactorizeError::InvalidConfig(
                "tiled out-of-core execution is single-device; use --gpus 1 with --tiles".into(),
            ));
        }
        let x = match &self.source {
            Source::Sparse(x) => x,
            Source::Dense(_) | Source::Streamed(_) => {
                return Err(FactorizeError::InvalidConfig(
                    "sharded factorization requires an in-core sparse tensor".into(),
                ))
            }
        };
        let admm_cfg = match &self.cfg.update {
            UpdateMethod::Admm(c) if c.tol == 0.0 => *c,
            UpdateMethod::Admm(_) => {
                return Err(FactorizeError::InvalidConfig(
                    "sharded factorization requires fixed ADMM inner iterations (tol = 0); \
                     residual-based early exit would need a global all-reduce per inner iteration"
                        .into(),
                ))
            }
            _ => {
                return Err(FactorizeError::InvalidConfig(
                    "sharded factorization supports only the ADMM update scheme".into(),
                ))
            }
        };

        // Same fingerprint as the single-device path: snapshots are
        // interchangeable between group sizes.
        let fingerprint = self.fingerprint();
        let restored: Option<BatchState> = match ckpt {
            Some((cc, true)) => checkpoint::load_latest_batch(&cc.dir, &fingerprint)
                .map_err(|e| FactorizeError::Checkpoint(e.to_string()))?,
            _ => None,
        };
        let (factors, lambda, fits, duals, start_iter) = match restored {
            Some(st) => {
                if st.factors.len() != nmodes || st.lambda.len() != rank {
                    return Err(FactorizeError::Checkpoint(format!(
                        "snapshot shape mismatch: {} factor(s), lambda of {}",
                        st.factors.len(),
                        st.lambda.len()
                    )));
                }
                (st.factors, st.lambda, st.fits, st.duals, st.completed_iters)
            }
            None => (
                seeded_factors(&shape, rank, self.cfg.seed),
                vec![1.0f64; rank],
                Vec::with_capacity(self.cfg.max_iters),
                shape.iter().map(|&d| Mat::zeros(d, rank)).collect(),
                0,
            ),
        };

        // ---- Elastic ladder ---------------------------------------------
        // The driver holds the last *committed* state (every completed
        // outer iteration commits) and runs attempts over the current
        // survivor set. A DeviceLoss-kind failure restores committed state
        // and retries under the group health policy; once the retry budget
        // is spent the lost members are declared dead, the run shrinks to
        // the survivors, and the attempt resumes from the same committed
        // state. Every phase is member-count-invariant bit for bit, so the
        // recovered run equals a clean run on the surviving group resumed
        // from that committed state.
        let mut committed = Committed {
            factors,
            lambda,
            fits,
            duals,
            convergence: ConvergenceLog::with_capacity(self.cfg.max_iters, nmodes),
            completed: start_iter,
        };
        let mut alive: Vec<usize> = (0..g).collect();
        let mut elastic = ElasticityReport::default();
        let mut degraded = false;
        let mut fused_faults_in_a_row = 0u32;
        let mut suspect_retries = 0u32;
        let mut epochs_advanced = 0u64;

        loop {
            let attempt = self.sharded_attempt(
                group,
                &alive,
                x,
                &admm_cfg,
                ckpt.map(|(cc, _)| cc),
                &fingerprint,
                &mut committed,
                &mut report,
                &mut degraded,
                &mut fused_faults_in_a_row,
                &mut epochs_advanced,
            );
            match attempt {
                Ok((iters, converged)) => {
                    elastic.deadline_trips = group.health().deadline_trips();
                    return Ok(FactorizeOutput {
                        model: Ktensor::new(committed.factors, committed.lambda),
                        iters,
                        fits: committed.fits,
                        converged,
                        convergence: committed.convergence,
                        recovery: report,
                        elasticity: elastic,
                        tiling: crate::tiled::TilingReport::default(),
                    });
                }
                Err(e) if is_device_loss(&e) => {
                    elastic.loss_detections += 1;
                    let dead: Vec<usize> =
                        group.lost_members().into_iter().filter(|d| alive.contains(d)).collect();
                    if dead.is_empty() {
                        // A loss-kind fault without a group-identified
                        // corpse (a hand-built per-device plan): nothing
                        // to shrink away from.
                        return Err(e);
                    }
                    let health = group.health().policy();
                    if suspect_retries < health.retries {
                        // Suspected loss: charge modeled backoff and replay
                        // from committed state — on real hardware the
                        // device may come back.
                        suspect_retries += 1;
                        elastic.loss_retries += 1;
                        elastic.backoff_s += health.backoff_base_s
                            * f64::powi(2.0, suspect_retries.min(20) as i32 - 1);
                        continue;
                    }
                    // The retry budget is spent: declare the corpses dead
                    // and shrink to the survivors.
                    for &d in &dead {
                        elastic
                            .retired
                            .push(RetiredDevice { device: d, iteration: committed.completed });
                        group.device(d).mark("device_retired");
                    }
                    alive.retain(|d| !dead.contains(d));
                    if alive.is_empty() {
                        return Err(e);
                    }
                    elastic.reshards += 1;
                    suspect_retries = 0;
                    for &d in &alive {
                        group.device(d).mark("reshard");
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One elastic attempt: (re)shards every mode across the `alive`
    /// members, replays from the committed state, and commits every
    /// completed outer iteration back into it. Returns
    /// `(iters, converged)` on success; a `DeviceLoss`-kind error sends
    /// the caller's ladder through retry/shrink.
    #[allow(clippy::too_many_arguments)]
    fn sharded_attempt(
        &self,
        group: &DeviceGroup,
        alive: &[usize],
        x: &SparseTensor,
        admm_cfg: &AdmmConfig,
        ckpt: Option<&CheckpointConfig>,
        fingerprint: &str,
        committed: &mut Committed,
        report: &mut RecoveryReport,
        degraded: &mut bool,
        fused_faults_in_a_row: &mut u32,
        epochs_advanced: &mut u64,
    ) -> Result<(usize, bool), FactorizeError> {
        let shape = self.shape();
        let rank = self.cfg.rank;
        let nmodes = shape.len();
        let ga = alive.len();
        let policy = self.cfg.recovery;
        let devs: Vec<&Device> = alive.iter().map(|&d| group.device(d)).collect();

        // Working copies of the last committed state.
        let mut factors = committed.factors.clone();
        let mut lambda = committed.lambda.clone();
        let mut fits = committed.fits.clone();
        let mut duals = committed.duals.clone();
        let mut convergence = committed.convergence.clone();
        let start_iter = committed.completed;

        // Shard every mode: nnz-balanced row blocks, one compiled shard
        // per (mode, survivor). Shard compilation is this path's format
        // construction, so it carries the "construction" heap region.
        let mode_ranges: Vec<Vec<Range<usize>>> =
            (0..nmodes).map(|m| nnz_balanced_ranges(x, m, ga)).collect();
        let shards: Vec<Vec<Shard>> = {
            let _build_region = cstf_telemetry::HeapRegion::enter("construction");
            (0..nmodes)
                .map(|m| {
                    mode_ranges[m]
                        .iter()
                        .map(|rng| compile_shard(x, m, rng.clone(), self.cfg.format))
                        .collect()
                })
                .collect()
        };

        // Per-attempt transfers, per survivor: its shards plus a full
        // replica of the factors (a reshard really re-stages the data).
        let factor_bytes: f64 = factors.iter().map(|f| f.len() as f64 * 8.0).sum();
        for (i, dev) in devs.iter().enumerate() {
            let tensor_bytes: f64 =
                shards.iter().map(|per_mode| shard_bytes(&per_mode[i], nmodes)).sum();
            transfer_with_retry(dev, "h2d_tensor", tensor_bytes, &policy, report)?;
            transfer_with_retry(dev, "h2d_factors", factor_bytes, &policy, report)?;
        }

        // Persistent loop state.
        let mut chunk_bufs: Vec<Vec<f64>> = Vec::new();
        let mut grams: Vec<Mat> = vec![Mat::zeros(rank, rank); nmodes];
        for (gm, h) in grams.iter_mut().zip(&factors) {
            sharded_gram_into(group, alive, h, gm, &mut chunk_bufs);
        }
        let mut mtt_ws: Vec<MttkrpWorkspace> = (0..ga).map(|_| MttkrpWorkspace::new()).collect();
        let mut m_dev: Vec<Vec<Mat>> =
            shape.iter().map(|&d| (0..ga).map(|_| Mat::zeros(d, rank)).collect()).collect();
        let mut m_full: Vec<Mat> = shape.iter().map(|&d| Mat::zeros(d, rank)).collect();
        let mut gathered: Vec<Mat> = shape.iter().map(|&d| Mat::zeros(d, rank)).collect();
        let mut s = Mat::zeros(rank, rank);
        let mut had = Mat::zeros(rank, rank);
        let mut norm_scratch: Vec<f64> = Vec::new();

        let mut converged = false;
        let mut iters = start_iter;

        for outer in start_iter..self.cfg.max_iters {
            let _iter_span = Span::enter("outer_iteration");
            // The loss epoch ticks on *every* group member, dead or alive —
            // retirement does not pause a corpse's clock.
            while *epochs_advanced < outer as u64 {
                for dev in group.devices() {
                    dev.advance_epoch();
                }
                *epochs_advanced += 1;
            }
            iters = outer + 1;
            let mut last_m: Option<usize> = None;
            for mode in 0..nmodes {
                let _mode_span = Span::enter_mode("mode_update", mode);
                // Key every device's launches under the mode being updated
                // so per-device kernel aggregates carry mode attribution.
                for dev in &devs {
                    dev.set_mode(Some(mode));
                }
                hadamard_replicated(group, alive, &grams, mode, &mut s);

                // Per-device shard MTTKRPs, concurrent across survivors.
                let results: Vec<Result<RecoveryReport, FactorizeError>> = devs
                    .par_iter()
                    .zip(shards[mode].par_iter())
                    .zip(m_dev[mode].par_iter_mut())
                    .zip(mtt_ws.par_iter_mut())
                    .map(|(((dev, shard), out), ws)| {
                        shard_mttkrp_guarded(
                            dev, shard, &shape, &factors, mode, rank, out, ws, &policy, outer,
                        )
                    })
                    .collect();
                let mut first_err = None;
                for res in results {
                    match res {
                        Ok(local) => merge_report(report, &local),
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                if let Some(e) = first_err {
                    return Err(e);
                }

                let gather_for_fit = self.cfg.compute_fit && mode == nmodes - 1;
                assemble_m(
                    group,
                    alive,
                    &mode_ranges[mode],
                    &m_dev[mode],
                    &mut m_full[mode],
                    gather_for_fit,
                );

                // Partitioned ADMM, one partition per survivor. Staging
                // means any failure leaves H/U untouched — the retry ladder
                // replays from clean state without snapshots.
                let mut cfg_now = *admm_cfg;
                if *degraded {
                    cfg_now.single_sweep = false;
                }
                let mut attempts = 0u32;
                let mut rescales = 0u32;
                let stats = loop {
                    match partitioned_admm_update_on(
                        &devs,
                        &cfg_now,
                        &mode_ranges[mode],
                        &m_full[mode],
                        &s,
                        &mut factors[mode],
                        &mut duals[mode],
                    ) {
                        Ok(stats) => {
                            *fused_faults_in_a_row = 0;
                            break stats;
                        }
                        Err(AdmmError::Fault(fault)) => {
                            // Loss is persistent: hand it to the elastic
                            // ladder instead of burning transient retries.
                            if fault.kind == FaultKind::DeviceLoss {
                                return Err(FactorizeError::Fault {
                                    fault,
                                    attempts: attempts + 1,
                                });
                            }
                            if cfg_now.single_sweep && fault.kernel == "fused_inner_sweep" {
                                *fused_faults_in_a_row += 1;
                                if *fused_faults_in_a_row >= policy.fused_fault_threshold {
                                    *degraded = true;
                                    cfg_now.single_sweep = false;
                                    report.degraded_to_unfused = true;
                                }
                            }
                            attempts += 1;
                            if attempts > policy.max_retries {
                                return Err(FactorizeError::Fault { fault, attempts });
                            }
                            report.transient_retries += 1;
                            report.total_backoff_s += backoff_s(&policy, attempts);
                        }
                        Err(AdmmError::Cholesky(error)) => {
                            rescales += 1;
                            report.cholesky_retries += 1;
                            if rescales > policy.max_rho_rescales {
                                return Err(FactorizeError::Cholesky {
                                    error,
                                    mode,
                                    rescales: rescales - 1,
                                });
                            }
                            match error.source {
                                LinalgError::NonFinite => {
                                    report.nan_events += 1;
                                    hadamard_replicated(group, alive, &grams, mode, &mut s);
                                }
                                LinalgError::NotPositiveDefinite { .. } => {
                                    cfg_now.rho_scale *= policy.rho_rescale;
                                }
                            }
                        }
                        Err(AdmmError::NonFinite { .. }) => {
                            return Err(FactorizeError::NonFinite {
                                stage: "admm_update",
                                mode,
                                outer_iter: outer,
                            });
                        }
                    }
                };
                // Partition 0's stats stand in for the mode (residuals are
                // per-partition; factors/fits stay exact regardless).
                let lead = &stats[0];
                convergence.log_mode(
                    mode,
                    lead.iters,
                    Some(lead.primal_residual),
                    Some(lead.dual_residual),
                    Some(lead.rho),
                );

                gather_factor(
                    group,
                    alive,
                    &mode_ranges[mode],
                    &mut factors[mode],
                    &mut gathered[mode],
                );
                normalize_replicated(
                    group,
                    alive,
                    &mut factors[mode],
                    &mut lambda,
                    self.cfg.norm,
                    &mut norm_scratch,
                );
                sharded_gram_into(group, alive, &factors[mode], &mut grams[mode], &mut chunk_bufs);
                if mode == nmodes - 1 {
                    last_m = Some(mode);
                }
            }
            // Fit checks and iteration marks are outside any mode.
            for dev in &devs {
                dev.set_mode(None);
            }

            let mut iter_fit = None;
            let mut stop = false;
            if self.cfg.compute_fit {
                let fit = self.fit(
                    devs[0],
                    &factors,
                    &lambda,
                    &grams,
                    last_m.map(|mode| (&m_full[mode], mode)),
                    &mut had,
                );
                iter_fit = Some(fit);
                let improved = fits.last().map_or(f64::INFINITY, |&p| fit - p);
                fits.push(fit);
                if self.cfg.fit_tol > 0.0 && improved.abs() < self.cfg.fit_tol {
                    converged = true;
                    stop = true;
                }
            }
            convergence.end_iteration(iter_fit);
            for dev in &devs {
                dev.mark("outer_iteration");
            }

            // Commit: this iteration is now the elastic restart point.
            committed.factors.clone_from(&factors);
            committed.lambda.clone_from(&lambda);
            committed.fits.clone_from(&fits);
            committed.duals.clone_from(&duals);
            committed.convergence.clone_from(&convergence);
            committed.completed = outer + 1;

            if let Some(cc) = ckpt {
                if (outer + 1) % cc.every == 0 || stop || outer + 1 == self.cfg.max_iters {
                    let _ckpt_region = cstf_telemetry::HeapRegion::enter("checkpoint");
                    checkpoint::save_batch(
                        &cc.dir,
                        &BatchView {
                            fingerprint,
                            completed_iters: outer + 1,
                            lambda: &lambda,
                            fits: &fits,
                            factors: &factors,
                            duals: &duals,
                        },
                    )
                    .map_err(|e| FactorizeError::Checkpoint(e.to_string()))?;
                }
            }
            if stop {
                break;
            }
        }

        // Results back to the host: each survivor returns its own rows.
        for (i, dev) in devs.iter().enumerate() {
            let bytes: f64 =
                mode_ranges.iter().map(|per_dev| (per_dev[i].len() * rank * 8) as f64).sum();
            transfer_with_retry(dev, "d2h_factors", bytes, &policy, report)?;
        }

        Ok((iters, converged))
    }
}

/// The elastic restart point: the full driver state after the last
/// committed outer iteration.
struct Committed {
    factors: Vec<Mat>,
    lambda: Vec<f64>,
    fits: Vec<f64>,
    duals: Vec<Mat>,
    convergence: ConvergenceLog,
    completed: usize,
}

fn is_device_loss(e: &FactorizeError) -> bool {
    matches!(e, FactorizeError::Fault { fault, .. } if fault.kind == FaultKind::DeviceLoss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admm::AdmmConfig;
    use crate::auntf::AuntfConfig;
    use crate::mu::MuConfig;
    use cstf_device::{DeviceSpec, FaultPlan};
    use cstf_tensor::DenseTensor;

    fn planted(shape: &[usize], nnz: usize, rank: usize, seed: u64) -> SparseTensor {
        let truth = Ktensor::from_factors(seeded_factors(shape, rank, seed ^ 0xABCD));
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut seen = std::collections::HashSet::new();
        let mut idx = vec![Vec::new(); shape.len()];
        let mut vals = Vec::new();
        while vals.len() < nnz {
            let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
            if !seen.insert(c.clone()) {
                continue;
            }
            vals.push(truth.value_at(&c).max(1e-6));
            for (m, &ci) in c.iter().enumerate() {
                idx[m].push(ci);
            }
        }
        SparseTensor::new(shape.to_vec(), idx, vals)
    }

    fn cfg(format: TensorFormat) -> AuntfConfig {
        AuntfConfig { rank: 3, max_iters: 4, seed: 11, format, ..Default::default() }
    }

    fn assert_bitwise_eq(a: &FactorizeOutput, b: &FactorizeOutput) {
        assert_eq!(a.fits.len(), b.fits.len());
        for (x, y) in a.fits.iter().zip(&b.fits) {
            assert_eq!(x.to_bits(), y.to_bits(), "fit differs: {x} vs {y}");
        }
        assert_eq!(a.model.lambda.len(), b.model.lambda.len());
        for (x, y) in a.model.lambda.iter().zip(&b.model.lambda) {
            assert_eq!(x.to_bits(), y.to_bits(), "lambda differs: {x} vs {y}");
        }
        for (fa, fb) in a.model.factors.iter().zip(&b.model.factors) {
            assert_eq!(fa.rows(), fb.rows());
            for (x, y) in fa.as_slice().iter().zip(fb.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "factor entry differs: {x} vs {y}");
            }
        }
    }

    #[test]
    fn sharded_matches_single_device_bitwise_across_group_sizes() {
        let x = planted(&[17, 13, 9], 400, 3, 1);
        let auntf = Auntf::new(x, cfg(TensorFormat::Csf));
        let single = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();
        for gsize in [1usize, 2, 3, 4, 7] {
            let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), gsize);
            let sharded = auntf.factorize_sharded(&group).unwrap();
            assert_bitwise_eq(&single, &sharded);
            assert!(sharded.recovery.is_clean());
        }
    }

    #[test]
    fn all_formats_shard_bitwise_exactly() {
        let x = planted(&[14, 11, 8], 300, 3, 2);
        for format in [
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::CsfOne,
            TensorFormat::HiCoo,
            TensorFormat::Alto,
            TensorFormat::Blco,
        ] {
            let auntf = Auntf::new(x.clone(), cfg(format));
            let single = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();
            let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), 3);
            let sharded = auntf.factorize_sharded(&group).unwrap();
            assert_bitwise_eq(&single, &sharded);
        }
    }

    #[test]
    fn more_devices_than_rows_still_exact() {
        // Mode 2 has 4 rows < 7 devices: trailing shards are empty.
        let x = planted(&[9, 6, 4], 120, 2, 3);
        let auntf =
            Auntf::new(x, AuntfConfig { rank: 2, max_iters: 3, seed: 5, ..Default::default() });
        let single = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();
        let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), 7);
        let sharded = auntf.factorize_sharded(&group).unwrap();
        assert_bitwise_eq(&single, &sharded);
    }

    #[test]
    fn per_device_profilers_record_partitioned_work_and_collectives() {
        let x = planted(&[24, 18, 12], 900, 3, 4);
        let auntf = Auntf::new(x.clone(), cfg(TensorFormat::Csf));
        let single_dev = Device::new(DeviceSpec::h100());
        auntf.factorize(&single_dev).unwrap();
        let single_mttkrp = single_dev.phase_totals(Phase::Mttkrp);

        let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), 4);
        auntf.factorize_sharded(&group).unwrap();
        for dev in group.devices() {
            let mttkrp = dev.phase_totals(Phase::Mttkrp);
            assert!(mttkrp.flops > 0.0, "every device ran shard MTTKRPs");
            assert!(
                mttkrp.flops < single_mttkrp.flops,
                "per-device MTTKRP work must be a partition of the total"
            );
            let transfer = dev.phase_totals(Phase::Transfer);
            assert!(transfer.bytes > 0.0, "collective traffic must be metered");
            assert!(dev.phase_totals(Phase::Update).launches > 0);
            assert!(dev.phase_totals(Phase::Gram).launches > 0);
        }
    }

    #[test]
    fn faulted_device_recovers_bitwise_exactly() {
        let x = planted(&[15, 12, 9], 350, 3, 6);
        let auntf = Auntf::new(x, cfg(TensorFormat::Blco));
        let single = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();

        let plan = FaultPlan { launch_fault_rate: 1.0, max_faults: 1, ..FaultPlan::quiet(13) };
        let devices: Vec<Device> = (0..3)
            .map(|d| {
                let dev = Device::new(DeviceSpec::h100());
                if d == 2 {
                    dev.with_fault_plan(plan.clone())
                } else {
                    dev
                }
            })
            .collect();
        let group = DeviceGroup::new(devices, cstf_device::LinkModel::nvlink());
        let sharded = auntf.factorize_sharded(&group).unwrap();
        assert!(
            sharded.recovery.transient_retries >= 1,
            "the injected fault must surface as a retry"
        );
        assert_bitwise_eq(&single, &sharded);
    }

    #[test]
    fn device_loss_shrinks_to_survivors_bitwise_exactly() {
        let x = planted(&[15, 12, 9], 350, 3, 6);
        for format in [
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::CsfOne,
            TensorFormat::HiCoo,
            TensorFormat::Alto,
            TensorFormat::Blco,
        ] {
            let auntf = Auntf::new(x.clone(), cfg(format));
            let single = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();

            let plan = FaultPlan::parse("device-loss:2@it2").unwrap();
            let group =
                DeviceGroup::homogeneous_with_records(&DeviceSpec::h100(), 3).with_faults(&plan);
            let out = auntf.factorize_sharded(&group).unwrap();
            assert_bitwise_eq(&single, &out);

            let e = &out.elasticity;
            assert!(!e.is_clean());
            assert!(e.loss_detections >= 1, "{format:?}: loss must be detected");
            assert_eq!(
                e.retired,
                vec![crate::recovery::RetiredDevice { device: 2, iteration: 2 }],
                "{format:?}: device 2 retires at the iteration it died"
            );
            assert_eq!(e.reshards, 1, "{format:?}");
            assert_eq!(
                e.loss_retries,
                group.health().policy().retries,
                "{format:?}: the full retry budget is spent before declaring death"
            );
            assert!(e.backoff_s > 0.0, "{format:?}: retries charge modeled backoff");
            // Retirement and reshard leave trace marks.
            assert!(group.device(2).marks().iter().any(|m| m.label == "device_retired"));
            assert!(group.device(0).marks().iter().any(|m| m.label == "reshard"));
        }
    }

    #[test]
    fn op_point_loss_mid_iteration_restores_committed_state() {
        let x = planted(&[15, 12, 9], 350, 3, 6);
        let auntf = Auntf::new(x, cfg(TensorFormat::Csf));
        let single = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();

        // Kill device 1 at its 20th fallible op — mid-iteration, so the
        // ladder must restore the last committed state before resharding.
        let plan = FaultPlan::parse("device-loss:1@op20").unwrap();
        let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), 3).with_faults(&plan);
        let out = auntf.factorize_sharded(&group).unwrap();
        assert_bitwise_eq(&single, &out);
        assert_eq!(out.elasticity.retired.len(), 1);
        assert_eq!(out.elasticity.retired[0].device, 1);
        assert_eq!(out.elasticity.reshards, 1);
    }

    #[test]
    fn losing_every_device_is_a_terminal_fault() {
        let x = planted(&[10, 8, 6], 150, 2, 4);
        let auntf =
            Auntf::new(x, AuntfConfig { rank: 2, max_iters: 3, seed: 5, ..Default::default() });
        let plan = FaultPlan::parse("device-loss:0@it1,device-loss:1@it1").unwrap();
        let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), 2).with_faults(&plan);
        let err = auntf.factorize_sharded(&group).unwrap_err();
        assert!(
            matches!(err, FactorizeError::Fault { fault, .. }
                if fault.kind == FaultKind::DeviceLoss),
            "{err:?}"
        );
    }

    #[test]
    fn stragglers_and_degraded_links_stay_bitwise_and_trip_deadlines() {
        let x = planted(&[15, 12, 9], 350, 3, 6);
        let auntf = Auntf::new(x, cfg(TensorFormat::Alto));
        let single = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();

        let plan = FaultPlan::parse("straggler:1x8,link-degrade:0-2x9").unwrap();
        let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), 3).with_faults(&plan);
        let out = auntf.factorize_sharded(&group).unwrap();
        // Only modeled time changes: bits match the fault-free run and no
        // recovery action fires.
        assert_bitwise_eq(&single, &out);
        assert!(out.recovery.is_clean());
        assert!(out.elasticity.retired.is_empty());
        assert_eq!(out.elasticity.reshards, 0);
        // 8x and 9x both exceed the default 4x deadline budget.
        let trips = &out.elasticity.deadline_trips;
        assert!(trips[1] > 0, "straggler must trip: {trips:?}");
        assert!(trips[0] > 0 && trips[2] > 0, "degraded-link endpoints must trip: {trips:?}");
        assert!(!out.elasticity.is_clean());
    }

    #[test]
    fn deadline_budget_is_configurable() {
        let x = planted(&[12, 10, 8], 250, 3, 7);
        let auntf = Auntf::new(x, cfg(TensorFormat::Csf));
        let plan = FaultPlan::parse("straggler:1x2").unwrap();

        // 2x stays under the default 4x budget...
        let lax = DeviceGroup::homogeneous(&DeviceSpec::h100(), 3).with_faults(&plan);
        let out = auntf.factorize_sharded(&lax).unwrap();
        assert_eq!(out.elasticity.total_deadline_trips(), 0);
        assert!(out.elasticity.is_clean());

        // ...but trips a 1.5x budget on every collective.
        let strict =
            DeviceGroup::homogeneous(&DeviceSpec::h100(), 3).with_faults(&plan).with_health_policy(
                cstf_device::HealthPolicy { deadline_factor: 1.5, ..Default::default() },
            );
        let out = auntf.factorize_sharded(&strict).unwrap();
        assert!(out.elasticity.deadline_trips[1] > 0);
        assert_eq!(out.elasticity.deadline_trips[0], 0);
    }

    #[test]
    fn clean_groups_report_clean_elasticity() {
        let x = planted(&[12, 10, 8], 250, 3, 7);
        let auntf = Auntf::new(x, cfg(TensorFormat::Blco));
        let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), 3);
        let out = auntf.factorize_sharded(&group).unwrap();
        assert!(out.elasticity.is_clean());
        assert_eq!(out.elasticity.deadline_trips, vec![0, 0, 0]);
    }

    #[test]
    fn sharded_resumes_single_device_snapshots_interchangeably() {
        let dir =
            std::env::temp_dir().join(format!("cstf-sharded-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let x = planted(&[12, 10, 8], 250, 3, 7);
        let auntf =
            Auntf::new(x, AuntfConfig { rank: 3, max_iters: 6, seed: 9, ..Default::default() });
        let uninterrupted = auntf.factorize(&Device::new(DeviceSpec::h100())).unwrap();

        // First leg on a single device, stopping at iteration 3.
        let short = Auntf::new(
            match &auntf.source {
                Source::Sparse(x) => x.clone(),
                _ => unreachable!(),
            },
            AuntfConfig { max_iters: 3, ..auntf.cfg.clone() },
        );
        let ck = CheckpointConfig::new(&dir, 3);
        short.factorize_checkpointed(&Device::new(DeviceSpec::h100()), &ck, false).unwrap();

        // Resume the remaining iterations sharded across 3 devices.
        let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), 3);
        let resumed = auntf.factorize_sharded_checkpointed(&group, &ck, true).unwrap();
        assert_bitwise_eq(&uninterrupted, &resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), 2);

        let dense = DenseTensor::from_fn(vec![3, 3], |_| 1.0);
        let err =
            Auntf::new_dense(dense, AuntfConfig::default()).factorize_sharded(&group).unwrap_err();
        assert!(matches!(err, FactorizeError::InvalidConfig(ref m) if m.contains("sparse")));

        let x = planted(&[8, 7, 6], 100, 2, 8);
        let mu =
            AuntfConfig { update: UpdateMethod::Mu(MuConfig::default()), ..AuntfConfig::default() };
        let err = Auntf::new(x.clone(), mu).factorize_sharded(&group).unwrap_err();
        assert!(matches!(err, FactorizeError::InvalidConfig(ref m) if m.contains("ADMM")));

        let early_exit = AuntfConfig {
            update: UpdateMethod::Admm(AdmmConfig { tol: 1e-4, ..AdmmConfig::cuadmm() }),
            ..AuntfConfig::default()
        };
        let err = Auntf::new(x, early_exit).factorize_sharded(&group).unwrap_err();
        assert!(matches!(err, FactorizeError::InvalidConfig(ref m) if m.contains("tol")));
    }
}
