//! Multi-GPU extension — the paper's second stated future-work item (§7):
//! *"extend our framework to support multi-GPU and distributed-memory
//! computation"*.
//!
//! Two pieces:
//!
//! 1. **Exactness** — [`partitioned_admm_update`] runs the ADMM update on
//!    row partitions of the factor matrix (one partition per GPU) and
//!    stitches the results. Because every ADMM kernel is row-independent
//!    given `M` and `S` (the `R x R` subproblem matrix is shared), the
//!    partitioned update is *bitwise identical* to the single-device one —
//!    the property that makes data-parallel multi-GPU cSTF correct. Only
//!    the scalar convergence residuals need a cross-device reduction.
//! 2. **Performance model** — [`multi_gpu_iteration_time`] predicts
//!    per-iteration time on `g` GPUs: compute scales with the largest row
//!    partition, while each mode update ends with an all-gather of the
//!    updated factor over NVLink, plus an all-reduce of the `R x R` Gram.
//!    Strong-scaling efficiency degrades exactly where real multi-GPU CP
//!    codes report it: small tensors become launch/communication-bound.

use cstf_device::{Device, DeviceSpec};
use cstf_linalg::Mat;

use crate::admm::{admm_update, AdmmConfig, AdmmStats, AdmmWorkspace};
use crate::hybrid::{predict_phases, WorkloadShape};

/// Multi-GPU system description.
#[derive(Debug, Clone)]
pub struct MultiGpuConfig {
    /// Number of identical GPUs.
    pub n_gpus: usize,
    /// Effective per-direction NVLink bandwidth between peers, GB/s.
    pub nvlink_gbs: f64,
    /// Per-collective latency (all-gather / all-reduce software overhead),
    /// microseconds.
    pub collective_latency_us: f64,
}

impl MultiGpuConfig {
    /// A DGX-style node with `n` GPUs (NVLink 3, ~300 GB/s effective).
    pub fn dgx(n_gpus: usize) -> Self {
        Self { n_gpus, nvlink_gbs: 300.0, collective_latency_us: 10.0 }
    }
}

/// Predicted multi-GPU timing for one outer iteration.
#[derive(Debug, Clone, Copy)]
pub struct MultiGpuEstimate {
    /// Per-iteration compute seconds (largest partition).
    pub compute_s: f64,
    /// Per-iteration communication seconds (all-gathers + all-reduces).
    pub comm_s: f64,
    /// Total.
    pub total_s: f64,
    /// Speedup over the single-GPU prediction.
    pub speedup: f64,
    /// Strong-scaling efficiency (`speedup / n_gpus`).
    pub efficiency: f64,
}

/// Splits row count `rows` into `parts` near-equal contiguous partitions.
pub fn row_partitions(rows: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let chunk = rows.div_ceil(parts).max(1);
    let mut out = Vec::new();
    let mut start = 0;
    while start < rows {
        let end = (start + chunk).min(rows);
        out.push(start..end);
        start = end;
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

/// Runs the ADMM update partitioned across `devices` (one row block each),
/// writing into `h`/`u` in place. Returns per-partition stats.
///
/// Exactness: with identical `AdmmConfig`, the result equals the
/// single-device [`admm_update`] bit for bit (the residual-based early exit
/// must be disabled — `tol = 0` — since per-partition residuals differ from
/// the global one; the paper-style fixed-iteration configuration satisfies
/// this).
///
/// # Errors
/// Propagates the first [`AdmmError`](crate::recovery::AdmmError) from any
/// partition; rows owned by later partitions are then left unmodified.
pub fn partitioned_admm_update(
    devices: &[Device],
    cfg: &AdmmConfig,
    m: &Mat,
    s: &Mat,
    h: &mut Mat,
    u: &mut Mat,
) -> Result<Vec<AdmmStats>, crate::recovery::AdmmError> {
    assert!(!devices.is_empty(), "at least one device required");
    assert!(
        cfg.tol == 0.0,
        "partitioned ADMM requires fixed iterations (tol = 0); residual-based \
         early exit would need a global all-reduce per inner iteration"
    );
    let (rows, rank) = (m.rows(), m.cols());
    let parts = row_partitions(rows, devices.len());

    let mut stats = Vec::with_capacity(parts.len());
    for (dev, range) in devices.iter().zip(&parts) {
        let take = |src: &Mat| {
            let mut block = Mat::zeros(range.len(), rank);
            for (bi, i) in range.clone().enumerate() {
                block.row_mut(bi).copy_from_slice(src.row(i));
            }
            block
        };
        let m_blk = take(m);
        let mut h_blk = take(h);
        let mut u_blk = take(u);
        let mut ws = AdmmWorkspace::new(range.len(), rank);
        stats.push(admm_update(dev, cfg, &m_blk, s, &mut h_blk, &mut u_blk, &mut ws)?);
        for (bi, i) in range.clone().enumerate() {
            h.row_mut(i).copy_from_slice(h_blk.row(bi));
            u.row_mut(i).copy_from_slice(u_blk.row(bi));
        }
    }
    Ok(stats)
}

/// Predicts one outer iteration's time on `mg.n_gpus` GPUs of type `spec`.
pub fn multi_gpu_iteration_time(
    w: &WorkloadShape,
    spec: &DeviceSpec,
    mg: &MultiGpuConfig,
) -> MultiGpuEstimate {
    let g = mg.n_gpus.max(1) as f64;
    let single = predict_phases(w, spec).total();

    // Compute: rows (update/normalize/gram) and nonzeros (MTTKRP) are
    // partitioned; the largest partition is ceil(1/g) of the work, but
    // per-kernel launch latency is NOT divided — model by predicting the
    // phases of a 1/g-sized workload on the same spec.
    let shrunk = WorkloadShape {
        shape: w.shape.iter().map(|&d| d.div_ceil(mg.n_gpus.max(1)).max(1)).collect(),
        nnz: w.nnz.div_ceil(mg.n_gpus.max(1)),
        ..w.clone()
    };
    let compute_s = predict_phases(&shrunk, spec).total();

    // Communication per mode: all-gather of the updated factor block
    // (each GPU sends its I_n/g x R block to g-1 peers; ring all-gather
    // moves (g-1)/g of the full factor per GPU), plus an R^2 all-reduce.
    let rank = w.rank as f64;
    let comm_s: f64 = if mg.n_gpus <= 1 {
        0.0
    } else {
        w.shape
            .iter()
            .map(|&i_n| {
                let factor_bytes = i_n as f64 * rank * 8.0;
                let allgather = (g - 1.0) / g * factor_bytes / (mg.nvlink_gbs * 1e9);
                let allreduce = 2.0 * (rank * rank * 8.0) / (mg.nvlink_gbs * 1e9);
                2.0 * mg.collective_latency_us * 1e-6 + allgather + allreduce
            })
            .sum()
    };

    let total_s = compute_s + comm_s;
    let speedup = single / total_s;
    MultiGpuEstimate { compute_s, comm_s, total_s, speedup, efficiency: speedup / g }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auntf::{seeded_factors, TensorFormat};
    use cstf_linalg::gram;

    fn problem(rows: usize, rank: usize) -> (Mat, Mat, Mat) {
        let f = seeded_factors(&[rows, 40, 30], rank, 5);
        let mut s = gram::gram(&f[1]);
        cstf_linalg::hadamard_in_place(&mut s, &gram::gram(&f[2]));
        let m = cstf_linalg::matmul(&f[0], &s);
        (m, s, f.into_iter().next().unwrap())
    }

    #[test]
    fn row_partitions_cover_exactly() {
        for (rows, parts) in [(10, 3), (100, 7), (5, 8), (0, 4), (64, 1)] {
            let p = row_partitions(rows, parts);
            let total: usize = p.iter().map(|r| r.len()).sum();
            assert_eq!(total, rows, "rows {rows} parts {parts}");
            for w in p.windows(2) {
                assert_eq!(w[0].end, w[1].start, "partitions must be contiguous");
            }
        }
    }

    #[test]
    fn partitioned_admm_is_bitwise_identical_to_single_device() {
        let (m, s, h0) = problem(500, 8);
        let cfg = AdmmConfig { tol: 0.0, inner_iters: 10, ..AdmmConfig::cuadmm() };

        // Single device.
        let dev = Device::new(DeviceSpec::h100());
        let mut h_single = h0.clone();
        let mut u_single = Mat::zeros(500, 8);
        let mut ws = AdmmWorkspace::new(500, 8);
        admm_update(&dev, &cfg, &m, &s, &mut h_single, &mut u_single, &mut ws).unwrap();

        // Four simulated GPUs.
        let devices: Vec<Device> = (0..4).map(|_| Device::new(DeviceSpec::h100())).collect();
        let mut h_multi = h0.clone();
        let mut u_multi = Mat::zeros(500, 8);
        let stats =
            partitioned_admm_update(&devices, &cfg, &m, &s, &mut h_multi, &mut u_multi).unwrap();

        assert_eq!(stats.len(), 4);
        assert_eq!(h_single, h_multi, "partitioned primal must be bitwise identical");
        assert_eq!(u_single, u_multi, "partitioned dual must be bitwise identical");
        // Every device did real metered work.
        for d in &devices {
            assert!(d.total_seconds() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "fixed iterations")]
    fn early_exit_config_is_rejected() {
        let (m, s, h0) = problem(50, 4);
        let devices = vec![Device::new(DeviceSpec::a100())];
        let mut h = h0.clone();
        let mut u = Mat::zeros(50, 4);
        let cfg = AdmmConfig { tol: 1e-4, ..AdmmConfig::cuadmm() };
        let _ = partitioned_admm_update(&devices, &cfg, &m, &s, &mut h, &mut u);
    }

    fn big_workload() -> WorkloadShape {
        WorkloadShape {
            shape: vec![3_000_000, 2_000_000, 25_000_000],
            nnz: 143_000_000,
            rank: 32,
            inner_iters: 10,
            format: TensorFormat::Blco,
        }
    }

    #[test]
    fn multi_gpu_speedup_grows_then_saturates() {
        let w = big_workload();
        let spec = DeviceSpec::h100();
        let mut prev_speedup = 0.0;
        let mut efficiencies = Vec::new();
        for g in [1usize, 2, 4, 8] {
            let est = multi_gpu_iteration_time(&w, &spec, &MultiGpuConfig::dgx(g));
            assert!(est.speedup >= prev_speedup * 0.999, "speedup regressed at g={g}");
            prev_speedup = est.speedup;
            efficiencies.push(est.efficiency);
        }
        // Strong-scaling efficiency is (near-)monotonically non-increasing;
        // mild super-linearity from cache effects at small g is real and
        // tolerated.
        assert!(efficiencies.windows(2).all(|w| w[1] <= w[0] + 1e-2), "{efficiencies:?}");
        // NELL1-scale factorization should scale well to 4 GPUs.
        assert!(efficiencies[2] > 0.5, "4-GPU efficiency too low: {efficiencies:?}");
    }

    #[test]
    fn single_gpu_has_no_communication() {
        let est =
            multi_gpu_iteration_time(&big_workload(), &DeviceSpec::a100(), &MultiGpuConfig::dgx(1));
        assert_eq!(est.comm_s, 0.0);
        assert!((est.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_workload_scales_poorly() {
        let w = WorkloadShape {
            shape: vec![500, 400, 300],
            nnz: 20_000,
            rank: 16,
            inner_iters: 10,
            format: TensorFormat::Blco,
        };
        let est8 = multi_gpu_iteration_time(&w, &DeviceSpec::h100(), &MultiGpuConfig::dgx(8));
        assert!(
            est8.efficiency < 0.5,
            "a tiny tensor should not scale to 8 GPUs (eff {})",
            est8.efficiency
        );
    }
}
