//! Multi-GPU extension — the paper's second stated future-work item (§7):
//! *"extend our framework to support multi-GPU and distributed-memory
//! computation"*.
//!
//! Two pieces:
//!
//! 1. **Exactness** — [`partitioned_admm_update`] runs the ADMM update on
//!    row partitions of the factor matrix (one partition per GPU) and
//!    stitches the results. Because every ADMM kernel is row-independent
//!    given `M` and `S` (the `R x R` subproblem matrix is shared), the
//!    partitioned update is *bitwise identical* to the single-device one —
//!    the property that makes data-parallel multi-GPU cSTF correct. Only
//!    the scalar convergence residuals need a cross-device reduction.
//! 2. **Performance model** — [`multi_gpu_iteration_time`] predicts
//!    per-iteration time on `g` GPUs: compute scales with the largest row
//!    partition, while each mode update ends with an all-gather of the
//!    updated factor over NVLink, plus an all-reduce of the `R x R` Gram.
//!    Strong-scaling efficiency degrades exactly where real multi-GPU CP
//!    codes report it: small tensors become launch/communication-bound.

use rayon::prelude::*;

use cstf_device::{Device, DeviceSpec};
use cstf_linalg::Mat;

use crate::admm::{admm_update, AdmmConfig, AdmmStats, AdmmWorkspace};
use crate::hybrid::{predict_phases, WorkloadShape};

/// Multi-GPU system description.
#[derive(Debug, Clone)]
pub struct MultiGpuConfig {
    /// Number of identical GPUs.
    pub n_gpus: usize,
    /// Effective per-direction NVLink bandwidth between peers, GB/s.
    pub nvlink_gbs: f64,
    /// Per-collective latency (all-gather / all-reduce software overhead),
    /// microseconds.
    pub collective_latency_us: f64,
}

impl MultiGpuConfig {
    /// A DGX-style node with `n` GPUs (NVLink 3, ~300 GB/s effective).
    pub fn dgx(n_gpus: usize) -> Self {
        Self { n_gpus, nvlink_gbs: 300.0, collective_latency_us: 10.0 }
    }
}

/// Predicted multi-GPU timing for one outer iteration.
#[derive(Debug, Clone, Copy)]
pub struct MultiGpuEstimate {
    /// Per-iteration compute seconds (largest partition).
    pub compute_s: f64,
    /// Per-iteration communication seconds (all-gathers + all-reduces).
    pub comm_s: f64,
    /// Total.
    pub total_s: f64,
    /// Speedup over the single-GPU prediction.
    pub speedup: f64,
    /// Strong-scaling efficiency (`speedup / n_gpus`).
    pub efficiency: f64,
}

/// Splits row count `rows` into exactly `parts` contiguous partitions whose
/// sizes differ by at most one (the remainder is spread over the leading
/// partitions; trailing partitions may be empty when `parts > rows`), so
/// `devices.iter().zip(&partitions)` never silently idles a device and the
/// largest partition is a tight `ceil(rows / parts)`.
pub fn row_partitions(rows: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let base = rows / parts;
    let extra = rows % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for j in 0..parts {
        let len = base + usize::from(j < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs the ADMM update partitioned across `devices` (one row block each),
/// writing into `h`/`u` in place. Returns per-partition stats.
///
/// Exactness: with identical `AdmmConfig`, the result equals the
/// single-device [`admm_update`] bit for bit (the residual-based early exit
/// must be disabled — `tol = 0` — since per-partition residuals differ from
/// the global one; the paper-style fixed-iteration configuration satisfies
/// this).
///
/// # Errors
/// Propagates the lowest-partition-index
/// [`AdmmError`](crate::recovery::AdmmError); `h` and `u` are then left
/// entirely unmodified (all partitions are staged into private blocks and
/// committed only after every partition succeeds), so a recovery retry
/// re-enters with pristine state and replays bit for bit.
pub fn partitioned_admm_update(
    devices: &[Device],
    cfg: &AdmmConfig,
    m: &Mat,
    s: &Mat,
    h: &mut Mat,
    u: &mut Mat,
) -> Result<Vec<AdmmStats>, crate::recovery::AdmmError> {
    let parts = row_partitions(m.rows(), devices.len());
    partitioned_admm_update_ranges(devices, cfg, &parts, m, s, h, u)
}

/// [`partitioned_admm_update`] over caller-chosen row `ranges` (one per
/// device; must be disjoint and in-bounds). Partitions run concurrently on
/// the rayon pool, each metered on its own device; outputs are staged and
/// committed only after all partitions succeed.
///
/// # Errors
/// Returns the lowest-partition-index error with `h`/`u` untouched.
///
/// # Panics
/// Panics if `devices` is empty, `ranges.len() != devices.len()`, or
/// `cfg.tol != 0.0`.
pub fn partitioned_admm_update_ranges(
    devices: &[Device],
    cfg: &AdmmConfig,
    ranges: &[std::ops::Range<usize>],
    m: &Mat,
    s: &Mat,
    h: &mut Mat,
    u: &mut Mat,
) -> Result<Vec<AdmmStats>, crate::recovery::AdmmError> {
    let refs: Vec<&Device> = devices.iter().collect();
    partitioned_admm_update_on(&refs, cfg, ranges, m, s, h, u)
}

/// [`partitioned_admm_update_ranges`] over borrowed devices — the form the
/// elastic sharded driver needs, since a survivor subset of a
/// [`DeviceGroup`](cstf_device::DeviceGroup) is not contiguous in the
/// group's device vector.
///
/// # Errors
/// Returns the lowest-partition-index error with `h`/`u` untouched.
///
/// # Panics
/// As [`partitioned_admm_update_ranges`].
pub fn partitioned_admm_update_on(
    devices: &[&Device],
    cfg: &AdmmConfig,
    ranges: &[std::ops::Range<usize>],
    m: &Mat,
    s: &Mat,
    h: &mut Mat,
    u: &mut Mat,
) -> Result<Vec<AdmmStats>, crate::recovery::AdmmError> {
    assert!(!devices.is_empty(), "at least one device required");
    assert_eq!(devices.len(), ranges.len(), "one row range per device");
    assert!(
        cfg.tol == 0.0,
        "partitioned ADMM requires fixed iterations (tol = 0); residual-based \
         early exit would need a global all-reduce per inner iteration"
    );
    let rank = m.cols();

    let staged: Vec<Result<(AdmmStats, Mat, Mat), crate::recovery::AdmmError>> = devices
        .par_iter()
        .zip(ranges.par_iter())
        .map(|(dev, range)| {
            let take = |src: &Mat| {
                let mut block = Mat::zeros(range.len(), rank);
                for (bi, i) in range.clone().enumerate() {
                    block.row_mut(bi).copy_from_slice(src.row(i));
                }
                block
            };
            let m_blk = take(m);
            let mut h_blk = take(h);
            let mut u_blk = take(u);
            let mut ws = AdmmWorkspace::new(range.len(), rank);
            let stats = admm_update(dev, cfg, &m_blk, s, &mut h_blk, &mut u_blk, &mut ws)?;
            Ok((stats, h_blk, u_blk))
        })
        .collect();

    let mut stats = Vec::with_capacity(staged.len());
    let mut blocks = Vec::with_capacity(staged.len());
    for result in staged {
        let (st, h_blk, u_blk) = result?;
        stats.push(st);
        blocks.push((h_blk, u_blk));
    }
    for (range, (h_blk, u_blk)) in ranges.iter().zip(&blocks) {
        for (bi, i) in range.clone().enumerate() {
            h.row_mut(i).copy_from_slice(h_blk.row(bi));
            u.row_mut(i).copy_from_slice(u_blk.row(bi));
        }
    }
    Ok(stats)
}

/// Predicts one outer iteration's time on `mg.n_gpus` GPUs of type `spec`.
pub fn multi_gpu_iteration_time(
    w: &WorkloadShape,
    spec: &DeviceSpec,
    mg: &MultiGpuConfig,
) -> MultiGpuEstimate {
    let g = mg.n_gpus.max(1) as f64;
    let single = predict_phases(w, spec).total();

    // Compute: rows (update/normalize/gram) and nonzeros (MTTKRP) are
    // partitioned; the largest partition is ceil(1/g) of the work, but
    // per-kernel launch latency is NOT divided — model by predicting the
    // phases of a 1/g-sized workload on the same spec.
    let shrunk = WorkloadShape {
        shape: w.shape.iter().map(|&d| d.div_ceil(mg.n_gpus.max(1)).max(1)).collect(),
        nnz: w.nnz.div_ceil(mg.n_gpus.max(1)),
        ..w.clone()
    };
    let compute_s = predict_phases(&shrunk, spec).total();

    // Communication per mode: all-gather of the updated factor block
    // (each GPU sends its I_n/g x R block to g-1 peers; ring all-gather
    // moves (g-1)/g of the full factor per GPU), plus a ring all-reduce of
    // the R^2 Gram, which moves 2(g-1)/g of the buffer per GPU
    // (reduce-scatter + all-gather phases).
    let rank = w.rank as f64;
    let comm_s: f64 = if mg.n_gpus <= 1 {
        0.0
    } else {
        w.shape
            .iter()
            .map(|&i_n| {
                let factor_bytes = i_n as f64 * rank * 8.0;
                let allgather = (g - 1.0) / g * factor_bytes / (mg.nvlink_gbs * 1e9);
                let allreduce = 2.0 * (g - 1.0) / g * (rank * rank * 8.0) / (mg.nvlink_gbs * 1e9);
                2.0 * mg.collective_latency_us * 1e-6 + allgather + allreduce
            })
            .sum()
    };

    let total_s = compute_s + comm_s;
    let speedup = single / total_s;
    MultiGpuEstimate { compute_s, comm_s, total_s, speedup, efficiency: speedup / g }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auntf::{seeded_factors, TensorFormat};
    use cstf_linalg::gram;

    fn problem(rows: usize, rank: usize) -> (Mat, Mat, Mat) {
        let f = seeded_factors(&[rows, 40, 30], rank, 5);
        let mut s = gram::gram(&f[1]);
        cstf_linalg::hadamard_in_place(&mut s, &gram::gram(&f[2]));
        let m = cstf_linalg::matmul(&f[0], &s);
        (m, s, f.into_iter().next().unwrap())
    }

    #[test]
    fn row_partitions_spread_the_remainder() {
        // Regression: the old ceil-chunking gave 4/4/2 for (10, 3); balanced
        // partitioning gives 4/3/3.
        assert_eq!(row_partitions(10, 3), vec![0..4, 4..7, 7..10]);
        for (rows, parts) in [(10, 3), (100, 7), (1000, 13), (7, 7), (63, 8)] {
            let p = row_partitions(rows, parts);
            let min = p.iter().map(|r| r.len()).min().unwrap();
            let max = p.iter().map(|r| r.len()).max().unwrap();
            assert!(max - min <= 1, "rows {rows} parts {parts}: sizes {min}..{max}");
        }
    }

    #[test]
    fn row_partitions_always_return_exactly_parts_ranges() {
        // Regression: the old code returned only 5 ranges for (5, 8),
        // silently idling devices zipped against the partition list.
        let p = row_partitions(5, 8);
        assert_eq!(p.len(), 8);
        assert_eq!(&p[..5], &[0..1, 1..2, 2..3, 3..4, 4..5]);
        assert!(p[5..].iter().all(|r| r.is_empty()), "{p:?}");
        for (rows, parts) in [(5, 8), (0, 4), (1, 3), (10, 3), (64, 1)] {
            assert_eq!(row_partitions(rows, parts).len(), parts, "rows {rows} parts {parts}");
        }
    }

    #[test]
    fn row_partitions_cover_exactly() {
        for (rows, parts) in [(10, 3), (100, 7), (5, 8), (0, 4), (64, 1)] {
            let p = row_partitions(rows, parts);
            let total: usize = p.iter().map(|r| r.len()).sum();
            assert_eq!(total, rows, "rows {rows} parts {parts}");
            for w in p.windows(2) {
                assert_eq!(w[0].end, w[1].start, "partitions must be contiguous");
            }
        }
    }

    #[test]
    fn partitioned_admm_is_bitwise_identical_to_single_device() {
        let (m, s, h0) = problem(500, 8);
        let cfg = AdmmConfig { tol: 0.0, inner_iters: 10, ..AdmmConfig::cuadmm() };

        // Single device.
        let dev = Device::new(DeviceSpec::h100());
        let mut h_single = h0.clone();
        let mut u_single = Mat::zeros(500, 8);
        let mut ws = AdmmWorkspace::new(500, 8);
        admm_update(&dev, &cfg, &m, &s, &mut h_single, &mut u_single, &mut ws).unwrap();

        // Four simulated GPUs.
        let devices: Vec<Device> = (0..4).map(|_| Device::new(DeviceSpec::h100())).collect();
        let mut h_multi = h0.clone();
        let mut u_multi = Mat::zeros(500, 8);
        let stats =
            partitioned_admm_update(&devices, &cfg, &m, &s, &mut h_multi, &mut u_multi).unwrap();

        assert_eq!(stats.len(), 4);
        assert_eq!(h_single, h_multi, "partitioned primal must be bitwise identical");
        assert_eq!(u_single, u_multi, "partitioned dual must be bitwise identical");
        // Every device did real metered work.
        for d in &devices {
            assert!(d.total_seconds() > 0.0);
        }
    }

    #[test]
    fn faulted_partition_leaves_state_untouched_and_retry_is_bitwise_exact() {
        use cstf_device::FaultPlan;

        let (m, s, h0) = problem(120, 6);
        let cfg = AdmmConfig { tol: 0.0, inner_iters: 8, ..AdmmConfig::cuadmm() };

        // Fault-free single-device reference.
        let dev = Device::new(DeviceSpec::h100());
        let mut h_ref = h0.clone();
        let mut u_ref = Mat::zeros(120, 6);
        let mut ws = AdmmWorkspace::new(120, 6);
        admm_update(&dev, &cfg, &m, &s, &mut h_ref, &mut u_ref, &mut ws).unwrap();

        // Four devices; device 2's first fallible launch faults, then its
        // budget is exhausted and every later draw is clean.
        let plan = FaultPlan { launch_fault_rate: 1.0, max_faults: 1, ..FaultPlan::quiet(7) };
        let devices: Vec<Device> = (0..4)
            .map(|d| {
                let dev = Device::new(DeviceSpec::h100());
                if d == 2 {
                    dev.with_fault_plan(plan.clone())
                } else {
                    dev
                }
            })
            .collect();

        let mut h = h0.clone();
        let mut u = Mat::zeros(120, 6);
        let err = partitioned_admm_update(&devices, &cfg, &m, &s, &mut h, &mut u)
            .expect_err("partition 2 must fault");
        assert!(matches!(err, crate::recovery::AdmmError::Fault(_)), "{err:?}");
        // Regression: the pre-fix commit-as-you-go wrote partitions 0 and 1
        // into h/u before partition 2 failed, poisoning the retry.
        assert_eq!(h, h0, "h must be untouched after a partition fault");
        assert_eq!(u, Mat::zeros(120, 6), "u must be untouched after a partition fault");

        // Retry on the same (now fault-exhausted) devices replays the
        // fault-free result bit for bit.
        let stats = partitioned_admm_update(&devices, &cfg, &m, &s, &mut h, &mut u).unwrap();
        assert_eq!(stats.len(), 4);
        assert_eq!(h, h_ref, "retry after partition failure must be bitwise exact");
        assert_eq!(u, u_ref);
    }

    #[test]
    #[should_panic(expected = "fixed iterations")]
    fn early_exit_config_is_rejected() {
        let (m, s, h0) = problem(50, 4);
        let devices = vec![Device::new(DeviceSpec::a100())];
        let mut h = h0.clone();
        let mut u = Mat::zeros(50, 4);
        let cfg = AdmmConfig { tol: 1e-4, ..AdmmConfig::cuadmm() };
        let _ = partitioned_admm_update(&devices, &cfg, &m, &s, &mut h, &mut u);
    }

    fn big_workload() -> WorkloadShape {
        WorkloadShape {
            shape: vec![3_000_000, 2_000_000, 25_000_000],
            nnz: 143_000_000,
            rank: 32,
            inner_iters: 10,
            format: TensorFormat::Blco,
        }
    }

    #[test]
    fn multi_gpu_speedup_grows_then_saturates() {
        let w = big_workload();
        let spec = DeviceSpec::h100();
        let mut prev_speedup = 0.0;
        let mut efficiencies = Vec::new();
        for g in [1usize, 2, 4, 8] {
            let est = multi_gpu_iteration_time(&w, &spec, &MultiGpuConfig::dgx(g));
            assert!(est.speedup >= prev_speedup * 0.999, "speedup regressed at g={g}");
            prev_speedup = est.speedup;
            efficiencies.push(est.efficiency);
        }
        // Strong-scaling efficiency is (near-)monotonically non-increasing;
        // mild super-linearity from cache effects at small g is real and
        // tolerated.
        assert!(efficiencies.windows(2).all(|w| w[1] <= w[0] + 1e-2), "{efficiencies:?}");
        // NELL1-scale factorization should scale well to 4 GPUs.
        assert!(efficiencies[2] > 0.5, "4-GPU efficiency too low: {efficiencies:?}");
    }

    #[test]
    fn ring_allreduce_term_scales_with_group_size() {
        // Regression: the pre-fix model charged a flat 2*R^2*8 bytes for the
        // Gram all-reduce regardless of g; a ring all-reduce moves
        // 2(g-1)/g of the buffer per device.
        let w = big_workload();
        let spec = DeviceSpec::h100();
        for g in [2usize, 4, 8] {
            let mg = MultiGpuConfig::dgx(g);
            let est = multi_gpu_iteration_time(&w, &spec, &mg);
            let gf = g as f64;
            let rank = w.rank as f64;
            let want: f64 = w
                .shape
                .iter()
                .map(|&i_n| {
                    let bw = mg.nvlink_gbs * 1e9;
                    let allgather = (gf - 1.0) / gf * (i_n as f64 * rank * 8.0) / bw;
                    let allreduce = 2.0 * (gf - 1.0) / gf * (rank * rank * 8.0) / bw;
                    2.0 * mg.collective_latency_us * 1e-6 + allgather + allreduce
                })
                .sum();
            assert!(
                (est.comm_s - want).abs() <= 1e-12 * want.max(1.0),
                "g={g}: comm {} != ring closed form {}",
                est.comm_s,
                want
            );
        }
    }

    #[test]
    fn estimate_is_monotone_in_nvlink_bandwidth() {
        let w = big_workload();
        let spec = DeviceSpec::h100();
        let mut prev = f64::INFINITY;
        for gbs in [50.0, 150.0, 300.0, 600.0, 1200.0] {
            let mg = MultiGpuConfig { n_gpus: 4, nvlink_gbs: gbs, collective_latency_us: 10.0 };
            let est = multi_gpu_iteration_time(&w, &spec, &mg);
            assert!(est.total_s < prev, "total_s must decrease as nvlink_gbs grows ({gbs} GB/s)");
            prev = est.total_s;
        }
    }

    #[test]
    fn estimate_approaches_compute_bound_as_comm_vanishes() {
        // With rank 1, zero collective latency, and fat links, g * R^2 -> 0
        // makes the collective terms negligible against MTTKRP compute.
        let w = WorkloadShape {
            shape: vec![4_000, 3_000, 2_000],
            nnz: 80_000_000,
            rank: 1,
            inner_iters: 10,
            format: TensorFormat::Blco,
        };
        let mg = MultiGpuConfig { n_gpus: 2, nvlink_gbs: 900.0, collective_latency_us: 0.0 };
        let est = multi_gpu_iteration_time(&w, &DeviceSpec::h100(), &mg);
        assert!(est.comm_s > 0.0, "two GPUs still communicate");
        assert!(
            est.comm_s / est.total_s < 1e-3,
            "comm fraction {} should vanish as g * R^2 -> 0",
            est.comm_s / est.total_s
        );
        assert!((est.total_s - est.compute_s) / est.total_s < 1e-3);
    }

    #[test]
    fn single_gpu_has_no_communication() {
        let est =
            multi_gpu_iteration_time(&big_workload(), &DeviceSpec::a100(), &MultiGpuConfig::dgx(1));
        assert_eq!(est.comm_s, 0.0);
        assert!((est.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_workload_scales_poorly() {
        let w = WorkloadShape {
            shape: vec![500, 400, 300],
            nnz: 20_000,
            rank: 16,
            inner_iters: 10,
            format: TensorFormat::Blco,
        };
        let est8 = multi_gpu_iteration_time(&w, &DeviceSpec::h100(), &MultiGpuConfig::dgx(8));
        assert!(
            est8.efficiency < 0.5,
            "a tiny tensor should not scale to 8 GPUs (eff {})",
            est8.efficiency
        );
    }
}
