//! Tiled out-of-core MTTKRP execution on a single device.
//!
//! When a tensor's compiled format does not fit the device budget, the
//! driver streams it through device memory in `K` nnz-balanced tiles per
//! mode (planned by [`cstf_formats::TilePlan`]) — "sharding in time" on
//! one device instead of sharding in space across a group. Each tile is
//! the row-restricted sub-tensor of its mode's contiguous output range,
//! compiled into the configured format exactly as a shard would be, so
//! the owner-computes argument of DESIGN.md §11 carries over verbatim:
//! running the tile kernel into a staging panel and committing only the
//! tile's owned rows reassembles the in-core MTTKRP panel **bitwise**.
//!
//! The host→device copy of tile `t + 1`'s bytes is double-buffered
//! against tile `t`'s compute: the device meters only the *exposed*
//! remainder `max(0, raw - compute)` ([`Device::transfer_overlapped`]),
//! while the [`TilingReport`] keeps both sides so the roofline
//! observatory can attribute hidden versus exposed streaming time.

use std::ops::Range;

use cstf_device::{Device, FaultKind, KernelClass, KernelCost, OverlappedTransfer, Phase};
use cstf_formats::{
    extract_mode_rows, Alto, Blco, Csf, HiCoo, MttkrpWorkspace, TilePlan, TrafficEstimate,
};
use cstf_linalg::Mat;
use cstf_telemetry::Span;
use cstf_tensor::SparseTensor;

use crate::auntf::{backoff_s, TensorFormat};
use crate::recovery::{FactorizeError, RecoveryPolicy, RecoveryReport};

/// What one tile runs on the device, compiled with the same per-format
/// recipe as a shard (`sharded::compile_shard`): CSF rooted at the target
/// mode, ONEMODE rooted at mode 0, linearized formats over the tile's
/// nonzeros with the *global* shape.
pub(crate) enum TileKernel {
    /// No nonzeros in the row block — the tile's owned output rows are
    /// exactly the (all-zero) global MTTKRP rows.
    Empty,
    Coo(SparseTensor),
    Csf(Csf),
    CsfOne(Csf),
    HiCoo(HiCoo),
    Alto(Alto),
    Blco(Blco),
}

/// One mode's tile: the owned output rows, its compiled kernel, and the
/// bytes its device-resident image streams over the host link.
pub(crate) struct Tile {
    pub rows: Range<usize>,
    pub bytes: f64,
    pub kernel: TileKernel,
}

impl Tile {
    /// Compiles the row-restricted sub-tensor `coo` (owning `rows` of
    /// mode `mode`) into a tile of the given format.
    pub(crate) fn compile(
        coo: SparseTensor,
        mode: usize,
        rows: Range<usize>,
        format: TensorFormat,
    ) -> Self {
        let nmodes = coo.nmodes();
        let kernel = if coo.nnz() == 0 {
            TileKernel::Empty
        } else {
            match format {
                TensorFormat::Coo => TileKernel::Coo(coo),
                TensorFormat::Csf => TileKernel::Csf(Csf::from_coo(&coo, mode)),
                // Same tree shape as the single-device ONEMODE engine
                // (rooted at mode 0), restricted to the tile's nonzeros.
                TensorFormat::CsfOne => TileKernel::CsfOne(Csf::from_coo(&coo, 0)),
                TensorFormat::HiCoo => TileKernel::HiCoo(HiCoo::from_coo(&coo)),
                TensorFormat::Alto => TileKernel::Alto(Alto::from_coo(&coo)),
                TensorFormat::Blco => TileKernel::Blco(Blco::from_coo(&coo)),
            }
        };
        let bytes = match &kernel {
            TileKernel::Empty => 0.0,
            TileKernel::Coo(x) => (x.nnz() * (nmodes * 4 + 8)) as f64,
            TileKernel::Csf(t) | TileKernel::CsfOne(t) => t.storage_bytes() as f64,
            TileKernel::HiCoo(h) => h.storage_bytes() as f64,
            TileKernel::Alto(a) => a.storage_bytes() as f64,
            TileKernel::Blco(b) => b.storage_bytes() as f64,
        };
        Self { rows, bytes, kernel }
    }
}

/// The complete out-of-core engine: `K` compiled tiles per mode.
pub(crate) struct TiledEngine {
    pub tiles: usize,
    /// `per_mode[m][t]` = tile `t` of the mode-`m` sweep.
    pub per_mode: Vec<Vec<Tile>>,
}

impl TiledEngine {
    /// Compiles a tiling of an in-core tensor: plans nnz-balanced ranges
    /// per mode and extracts + compiles each tile with the shard recipe.
    pub(crate) fn compile(x: &SparseTensor, format: TensorFormat, tiles: usize) -> Self {
        let plan = TilePlan::build(x, tiles);
        let per_mode = plan
            .mode_ranges
            .iter()
            .enumerate()
            .map(|(mode, ranges)| {
                ranges
                    .iter()
                    .map(|r| Tile::compile(extract_mode_rows(x, mode, r), mode, r.clone(), format))
                    .collect()
            })
            .collect();
        Self { tiles: plan.tiles, per_mode }
    }

    /// An empty engine ready for streamed construction: tiles are pushed
    /// mode-major, tile-minor as `read_tns_tiles` visits them.
    pub(crate) fn with_shape(nmodes: usize, tiles: usize) -> Self {
        Self { tiles: tiles.max(1), per_mode: (0..nmodes).map(|_| Vec::new()).collect() }
    }

    /// Appends the next streamed tile of `mode` (must arrive in tile
    /// order, which `read_tns_tiles` guarantees).
    pub(crate) fn push(
        &mut self,
        mode: usize,
        rows: Range<usize>,
        coo: SparseTensor,
        format: TensorFormat,
    ) {
        debug_assert!(self.per_mode[mode].len() < self.tiles, "too many tiles pushed");
        self.per_mode[mode].push(Tile::compile(coo, mode, rows, format));
    }
}

/// What the tiled driver streamed and how much of it the double-buffer
/// hid, reported per run and exported as `cstf_tile_*` telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilingReport {
    /// Tile count `K` the run executed with (1 = in-core, untiled).
    pub tiles: usize,
    /// Host→device tile copies performed (empty tiles move nothing).
    pub tile_transfers: u64,
    /// Bytes streamed across all tile copies.
    pub streamed_bytes: f64,
    /// Un-overlapped modeled seconds of all tile copies.
    pub transfer_raw_s: f64,
    /// Seconds that actually extended the timeline after double-buffering
    /// against the previous tile's compute.
    pub transfer_exposed_s: f64,
}

impl Default for TilingReport {
    fn default() -> Self {
        Self {
            tiles: 1,
            tile_transfers: 0,
            streamed_bytes: 0.0,
            transfer_raw_s: 0.0,
            transfer_exposed_s: 0.0,
        }
    }
}

impl TilingReport {
    /// Streaming seconds the double-buffer hid behind compute.
    pub fn hidden_s(&self) -> f64 {
        (self.transfer_raw_s - self.transfer_exposed_s).max(0.0)
    }

    /// True when the run actually tiled (`K > 1`).
    pub fn is_tiled(&self) -> bool {
        self.tiles > 1
    }
}

fn tile_traffic(
    kernel: &TileKernel,
    shape: &[usize],
    mode: usize,
    rank: usize,
) -> (TrafficEstimate, KernelClass) {
    match kernel {
        TileKernel::Empty => unreachable!("empty tiles are not launched"),
        TileKernel::Coo(x) => (
            cstf_formats::coordinate_mttkrp_traffic(
                x.nnz(),
                shape,
                mode,
                rank,
                (shape.len() * 4) as f64,
            ),
            KernelClass::SparseGather,
        ),
        TileKernel::Csf(t) => (t.mttkrp_traffic(rank), KernelClass::SparseGather),
        TileKernel::CsfOne(t) => (t.mttkrp_any_traffic(mode, rank), KernelClass::SparseGather),
        TileKernel::HiCoo(h) => (h.mttkrp_traffic(mode, rank), KernelClass::SparseGather),
        TileKernel::Alto(a) => (a.mttkrp_traffic(mode, rank), KernelClass::SparseGather),
        TileKernel::Blco(b) => (b.mttkrp_traffic(mode, rank), KernelClass::SparseGather),
    }
}

/// Tile copy with the recovery policy applied: transient link faults
/// retry with modeled backoff (losing the overlap credit is the modeled
/// price of the replay), device loss surfaces at once.
fn transfer_tile_with_retry(
    dev: &Device,
    bytes: f64,
    overlap_s: f64,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
) -> Result<OverlappedTransfer, FactorizeError> {
    let mut attempts = 0u32;
    loop {
        match dev.try_transfer_overlapped("h2d_tile", bytes, overlap_s) {
            Ok(t) => return Ok(t),
            Err(fault) => {
                attempts += 1;
                if fault.kind == FaultKind::DeviceLoss || attempts > policy.max_retries {
                    return Err(FactorizeError::Fault { fault, attempts });
                }
                report.transfer_retries += 1;
                report.total_backoff_s += backoff_s(policy, attempts);
            }
        }
    }
}

/// One full tiled mode-MTTKRP sweep: zero the output panel, then for each
/// tile stream its bytes (double-buffered against the previous tile's
/// compute), launch its kernel into the staging panel under the usual
/// NaN/fault guard, and commit the tile's owned rows.
///
/// Bitwise equivalence with the in-core sweep: every format kernel zeroes
/// its whole output buffer and accumulates only rows indexed by its own
/// nonzeros, so the staging panel's rows `tile.rows` hold exactly the
/// global MTTKRP rows the tile owns (DESIGN.md §11 restricted to one
/// device), and the commits — over disjoint, covering ranges — rebuild
/// the exact panel in file order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn tiled_mttkrp_guarded(
    dev: &Device,
    engine: &TiledEngine,
    shape: &[usize],
    factors: &[Mat],
    mode: usize,
    rank: usize,
    out: &mut Mat,
    stage: &mut Mat,
    ws: &mut MttkrpWorkspace,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
    outer: usize,
    tiling: &mut TilingReport,
) -> Result<(), FactorizeError> {
    out.as_mut_slice().fill(0.0);
    // Compute seconds of the previous tile's kernel, available to hide
    // the next tile's copy behind. The first copy of a sweep has nothing
    // to overlap with — it is fully exposed, like the sharded h2d.
    let mut prev_compute_s = 0.0f64;
    for tile in &engine.per_mode[mode] {
        if matches!(tile.kernel, TileKernel::Empty) {
            // Nothing to move or run; the zeroed rows are exact, and no
            // kernel runs to hide the next tile's copy behind.
            prev_compute_s = 0.0;
            continue;
        }
        let _tile_span = Span::enter("tile_stream");
        let xfer = transfer_tile_with_retry(dev, tile.bytes, prev_compute_s, policy, report)?;
        tiling.tile_transfers += 1;
        tiling.streamed_bytes += tile.bytes;
        tiling.transfer_raw_s += xfer.raw_s;
        tiling.transfer_exposed_s += xfer.exposed_s;

        let (traffic, class) = tile_traffic(&tile.kernel, shape, mode, rank);
        let cost = KernelCost {
            flops: traffic.flops,
            bytes_read: traffic.bytes_read,
            bytes_written: traffic.bytes_written,
            gather_traffic: traffic.gather_bytes,
            parallel_work: traffic.parallel_work,
            serial_steps: 1.0,
            working_set: traffic.working_set,
        };
        let mut attempts = 0u32;
        loop {
            let res = dev.launch_into(
                "mttkrp_tile",
                Phase::Mttkrp,
                class,
                cost,
                stage,
                Mat::as_mut_slice,
                |buf| match &tile.kernel {
                    TileKernel::Coo(x) => {
                        cstf_formats::mttkrp_coo_parallel_into(x, factors, mode, buf, ws)
                    }
                    TileKernel::Csf(t) => t.mttkrp_into(factors, buf, ws),
                    TileKernel::CsfOne(t) => t.mttkrp_any_into(factors, mode, buf, ws),
                    TileKernel::HiCoo(h) => h.mttkrp_into(factors, mode, buf, ws),
                    TileKernel::Alto(a) => a.mttkrp_into(factors, mode, buf, ws),
                    TileKernel::Blco(b) => b.mttkrp_into(factors, mode, buf, ws),
                    TileKernel::Empty => unreachable!("empty tiles are not launched"),
                },
            );
            match res {
                Ok(()) => {
                    if policy.nan_guard && !stage.all_finite() {
                        report.nan_events += 1;
                        attempts += 1;
                        if attempts > policy.max_retries {
                            return Err(FactorizeError::NonFinite {
                                stage: "mttkrp",
                                mode,
                                outer_iter: outer,
                            });
                        }
                        continue;
                    }
                    break;
                }
                Err(fault) => {
                    attempts += 1;
                    if fault.kind == FaultKind::DeviceLoss || attempts > policy.max_retries {
                        return Err(FactorizeError::Fault { fault, attempts });
                    }
                    report.transient_retries += 1;
                    report.total_backoff_s += backoff_s(policy, attempts);
                }
            }
        }
        prev_compute_s = dev.modeled_kernel_seconds(class, &cost);
        // Commit the owned rows (host-side panel assembly, unmetered —
        // the same bookkeeping as the sharded driver's gather).
        let r = &tile.rows;
        out.as_mut_slice()[r.start * rank..r.end * rank]
            .copy_from_slice(&stage.as_slice()[r.start * rank..r.end * rank]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use cstf_device::{Device, DeviceSpec, Phase};
    use cstf_tensor::{write_tns, SparseTensor};

    use crate::auntf::{seeded_factors, Auntf, AuntfConfig, TensorFormat};

    fn planted(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let truth = cstf_tensor::Ktensor::from_factors(seeded_factors(shape, 3, seed ^ 0xABCD));
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut seen = std::collections::HashSet::new();
        let mut idx = vec![Vec::new(); shape.len()];
        let mut vals = Vec::new();
        while vals.len() < nnz {
            let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
            if !seen.insert(c.clone()) {
                continue;
            }
            vals.push(truth.value_at(&c).max(1e-6));
            for (m, &ci) in c.iter().enumerate() {
                idx[m].push(ci);
            }
        }
        SparseTensor::new(shape.to_vec(), idx, vals)
    }

    fn cfg(format: TensorFormat, tiles: usize) -> AuntfConfig {
        AuntfConfig { rank: 3, max_iters: 4, seed: 5, format, tiles, ..Default::default() }
    }

    #[test]
    fn tiled_factors_are_bitwise_identical_to_in_core() {
        let x = planted(&[17, 12, 9], 420, 3);
        for format in [
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::CsfOne,
            TensorFormat::HiCoo,
            TensorFormat::Alto,
            TensorFormat::Blco,
        ] {
            let base = Auntf::new(x.clone(), cfg(format, 1))
                .factorize(&Device::new(DeviceSpec::h100()))
                .unwrap();
            for tiles in [2usize, 3, 5] {
                let out = Auntf::new(x.clone(), cfg(format, tiles))
                    .factorize(&Device::new(DeviceSpec::h100()))
                    .unwrap();
                assert_eq!(out.fits, base.fits, "{format:?} K={tiles} fit trajectory");
                assert_eq!(out.model.lambda, base.model.lambda);
                for (a, b) in out.model.factors.iter().zip(&base.model.factors) {
                    for (&u, &v) in a.as_slice().iter().zip(b.as_slice()) {
                        assert_eq!(u.to_bits(), v.to_bits(), "{format:?} K={tiles}");
                    }
                }
                assert_eq!(out.tiling.tiles, tiles);
                assert!(out.tiling.tile_transfers > 0);
            }
        }
    }

    #[test]
    fn streamed_construction_matches_in_core_tiled_run() {
        // nnz < 64 Ki, so the scan's file-order ||X||² is bit-equal to the
        // in-core serial reduction and the whole run must match bitwise.
        let x = planted(&[15, 11, 8], 350, 9);
        let dir = std::env::temp_dir().join(format!("cstf-tiled-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tns");
        write_tns(&x, std::fs::File::create(&path).unwrap()).unwrap();

        let c = cfg(TensorFormat::Blco, 3);
        let in_core = Auntf::new(x, c.clone()).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        let streamed = Auntf::from_tns_file_tiled(&path, c)
            .unwrap()
            .factorize(&Device::new(DeviceSpec::h100()))
            .unwrap();
        assert_eq!(streamed.fits, in_core.fits);
        for (a, b) in streamed.model.factors.iter().zip(&in_core.model.factors) {
            assert_eq!(
                a.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiled_run_streams_tiles_instead_of_upfront_tensor_copy() {
        let x = planted(&[14, 10, 8], 300, 7);
        let dev = Device::new(DeviceSpec::h100());
        let out = Auntf::new(x, cfg(TensorFormat::Csf, 3)).factorize(&dev).unwrap();
        // Every non-empty tile of every mode sweep moved once per outer
        // iteration, and the double-buffer never hid more than raw time.
        assert!(out.tiling.streamed_bytes > 0.0);
        assert!(out.tiling.transfer_raw_s >= out.tiling.transfer_exposed_s);
        assert!(out.tiling.hidden_s() >= 0.0);
        assert!(dev.phase_totals(Phase::Transfer).launches >= out.tiling.tile_transfers as usize);
    }

    #[test]
    fn sharded_run_rejects_tiling() {
        use cstf_device::DeviceGroup;
        let x = planted(&[12, 10, 8], 200, 11);
        let group = DeviceGroup::homogeneous(&DeviceSpec::h100(), 2);
        let err = Auntf::new(x, cfg(TensorFormat::Blco, 2)).factorize_sharded(&group).unwrap_err();
        assert!(matches!(err, crate::recovery::FactorizeError::InvalidConfig(_)));
    }
}
