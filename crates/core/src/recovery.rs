//! Typed failure taxonomy and recovery policy for fault-tolerant
//! factorization.
//!
//! Three layers of errors compose here (DESIGN.md §10):
//!
//! 1. [`cstf_device::DeviceFault`] — an injected (or, on real hardware, an
//!    actual) device-level failure surfaced by a fallible launch/transfer;
//! 2. [`AdmmError`] — what one ADMM mode update can report: a device fault,
//!    a Cholesky factorization failure ([`CholeskyError`]), or a non-finite
//!    residual caught by the in-loop NaN sentinel;
//! 3. [`FactorizeError`] — the terminal error of
//!    [`Auntf::factorize`](crate::Auntf::factorize) after the
//!    [`RecoveryPolicy`] has exhausted its retry/rescale/degrade budget.
//!
//! The [`RecoveryReport`] in a successful
//! [`FactorizeOutput`](crate::FactorizeOutput) records every recovery
//! action taken, so chaos tests can assert that faults were actually hit
//! *and* healed.

use cstf_device::DeviceFault;
use cstf_linalg::LinalgError;

/// A Cholesky factorization of `S + rho*I` failed.
///
/// With a well-formed Gram matrix this cannot happen (`S` is PSD by
/// construction, so `S + rho*I` is positive definite); it arises from
/// silent corruption of `S` (NaN) or from genuinely rank-deficient /
/// indefinite input, and is recoverable by recomputing `S` or boosting
/// `rho` (see [`RecoveryPolicy::rho_rescale`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CholeskyError {
    /// The underlying linear-algebra failure.
    pub source: LinalgError,
    /// The penalty parameter in effect when the factorization failed.
    pub rho: f64,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cholesky factorization of S + rho*I failed (rho = {}): {}",
            self.rho, self.source
        )
    }
}

impl std::error::Error for CholeskyError {}

/// An error from one ADMM mode update
/// ([`admm_update`](crate::admm::admm_update)).
#[derive(Debug, Clone, PartialEq)]
pub enum AdmmError {
    /// The Cholesky factorization of `S + rho*I` failed.
    Cholesky(CholeskyError),
    /// A kernel launch drew a device fault. The factor and dual buffers
    /// may hold partial results; restore them from a snapshot before
    /// retrying.
    Fault(DeviceFault),
    /// The inner-iteration residuals became non-finite (NaN/Inf), caught
    /// by the per-sweep sentinel.
    NonFinite {
        /// The inner iteration at which the sentinel fired.
        inner_iter: usize,
    },
}

impl std::fmt::Display for AdmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmmError::Cholesky(e) => write!(f, "{e}"),
            AdmmError::Fault(fault) => write!(f, "device fault during ADMM update: {fault}"),
            AdmmError::NonFinite { inner_iter } => {
                write!(f, "non-finite ADMM residual at inner iteration {inner_iter}")
            }
        }
    }
}

impl std::error::Error for AdmmError {}

impl From<DeviceFault> for AdmmError {
    fn from(fault: DeviceFault) -> Self {
        AdmmError::Fault(fault)
    }
}

/// Terminal failure of [`Auntf::factorize`](crate::Auntf::factorize):
/// the recovery policy's budget was exhausted, or the inputs were invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorizeError {
    /// The configuration or tensor is unusable (zero rank, empty tensor,
    /// no modes). Detected before any kernel launches.
    InvalidConfig(String),
    /// Cholesky kept failing after the policy's rho-rescale budget.
    Cholesky {
        /// The last factorization failure.
        error: CholeskyError,
        /// The mode whose update failed.
        mode: usize,
        /// How many rho rescales were attempted before giving up.
        rescales: u32,
    },
    /// Non-finite values survived every guard (a genuine numerical
    /// breakdown, not an injected fault).
    NonFinite {
        /// The pipeline stage that produced the non-finite values.
        stage: &'static str,
        /// The mode being updated.
        mode: usize,
        /// The outer iteration during which the breakdown occurred.
        outer_iter: usize,
    },
    /// A device fault persisted past the policy's retry budget.
    Fault {
        /// The last fault drawn.
        fault: DeviceFault,
        /// How many attempts were made (initial try + retries).
        attempts: u32,
    },
    /// Checkpoint write or restore failed.
    Checkpoint(String),
}

impl std::fmt::Display for FactorizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorizeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FactorizeError::Cholesky { error, mode, rescales } => {
                write!(f, "mode-{mode} ADMM update failed after {rescales} rho rescale(s): {error}")
            }
            FactorizeError::NonFinite { stage, mode, outer_iter } => write!(
                f,
                "non-finite values in `{stage}` (mode {mode}, outer iteration {outer_iter}) \
                 not attributable to an injected fault"
            ),
            FactorizeError::Fault { fault, attempts } => {
                write!(f, "device fault persisted after {attempts} attempt(s): {fault}")
            }
            FactorizeError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for FactorizeError {}

/// How [`Auntf::factorize`](crate::Auntf::factorize) responds to device
/// faults and numerical breakdowns.
///
/// All bounds are per-incident, not global: each mode visit gets a fresh
/// retry budget, so a long run with sporadic transient faults converges
/// instead of exhausting a shared counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries per faulted operation before giving up (initial attempt
    /// excluded).
    pub max_retries: u32,
    /// Base of the simulated exponential backoff, in seconds. Backoff is
    /// *modeled* (accumulated in the report), never slept.
    pub backoff_base_s: f64,
    /// Check MTTKRP and Gram outputs for non-finite values and recompute
    /// on corruption. The in-sweep ADMM residual sentinel is always on
    /// (it is free).
    pub nan_guard: bool,
    /// How many times to boost rho and refactor when Cholesky reports a
    /// non-positive-definite matrix.
    pub max_rho_rescales: u32,
    /// Multiplier applied to the ADMM penalty rho on each
    /// non-positive-definite Cholesky failure.
    pub rho_rescale: f64,
    /// After this many consecutive faulted launches of the fused inner
    /// sweep, degrade permanently to the unfused multi-kernel path
    /// (bitwise-identical numerics, more launches).
    pub fused_fault_threshold: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_s: 0.01,
            nan_guard: true,
            max_rho_rescales: 3,
            rho_rescale: 10.0,
            fused_fault_threshold: 2,
        }
    }
}

/// What the recovery machinery actually did during one factorization.
///
/// All-zero (the `Default`) means the run was fault-free.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Launch retries after transient launch / OOM faults.
    pub transient_retries: u32,
    /// Non-finite values caught by guards (MTTKRP/Gram recomputes plus
    /// ADMM sentinel trips healed by state restore).
    pub nan_events: u32,
    /// Cholesky refactor attempts (rho rescales + corruption recomputes).
    pub cholesky_retries: u32,
    /// Transfer retries after link faults.
    pub transfer_retries: u32,
    /// Whether the fused cuADMM sweep was degraded to the unfused path.
    pub degraded_to_unfused: bool,
    /// Total simulated backoff accumulated across retries, in seconds.
    pub total_backoff_s: f64,
}

impl RecoveryReport {
    /// True if no recovery action was taken (fault-free run).
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// One retired group member: who died and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredDevice {
    /// The member's original id in the device group.
    pub device: usize,
    /// The outer iteration at which it was declared dead.
    pub iteration: usize,
}

/// What the elastic sharded driver observed and did during one run
/// (DESIGN.md §15): device-loss detections, iteration retries under the
/// group health policy, declared deaths with their retire iterations,
/// shrink-to-survivors reshards, and the collective deadline trips pulled
/// from [`cstf_device::GroupHealth`] at run end.
///
/// All-zero/empty (the `Default`) means the group stayed healthy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ElasticityReport {
    /// Device-loss faults detected (every failed attempt counts).
    pub loss_detections: u32,
    /// Outer-iteration retries spent on suspected-lost devices before a
    /// death was declared (restore-committed-state replays).
    pub loss_retries: u32,
    /// Members declared dead, with the outer iteration they retired at.
    pub retired: Vec<RetiredDevice>,
    /// Shrink-to-survivors reshards performed (one per declared death).
    pub reshards: u32,
    /// Per-member collective deadline trips (index = original member id),
    /// as counted by the group health monitor.
    pub deadline_trips: Vec<u64>,
    /// Modeled backoff charged between loss retries, seconds.
    pub backoff_s: f64,
}

impl ElasticityReport {
    /// True if the group stayed healthy (no detections, trips or
    /// reshards).
    pub fn is_clean(&self) -> bool {
        self.loss_detections == 0
            && self.loss_retries == 0
            && self.retired.is_empty()
            && self.reshards == 0
            && self.deadline_trips.iter().all(|&t| t == 0)
            && self.backoff_s == 0.0
    }

    /// Total deadline trips across all members.
    pub fn total_deadline_trips(&self) -> u64 {
        self.deadline_trips.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_bounded() {
        let p = RecoveryPolicy::default();
        assert!(p.max_retries > 0);
        assert!(p.max_rho_rescales > 0);
        assert!(p.rho_rescale > 1.0);
        assert!(p.nan_guard);
    }

    #[test]
    fn clean_report_detects_any_action() {
        let mut r = RecoveryReport::default();
        assert!(r.is_clean());
        r.nan_events = 1;
        assert!(!r.is_clean());
    }

    #[test]
    fn clean_elasticity_report_detects_any_event() {
        let mut r = ElasticityReport::default();
        assert!(r.is_clean());
        r.deadline_trips = vec![0, 0];
        assert!(r.is_clean(), "all-zero trip vector is still clean");
        r.deadline_trips[1] = 3;
        assert!(!r.is_clean());
        assert_eq!(r.total_deadline_trips(), 3);
        let mut s = ElasticityReport::default();
        s.retired.push(RetiredDevice { device: 2, iteration: 7 });
        assert!(!s.is_clean());
    }

    #[test]
    fn errors_display_their_context() {
        let e = CholeskyError {
            source: LinalgError::NotPositiveDefinite { pivot_index: 1, pivot_value: -2.5 },
            rho: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("rho = 1.5"), "{msg}");
        let fe = FactorizeError::Cholesky { error: e, mode: 2, rescales: 3 };
        let msg = fe.to_string();
        assert!(msg.contains("mode-2") && msg.contains("3 rho rescale"), "{msg}");
    }
}
