//! HALS — Hierarchical Alternating Least Squares (Cichocki & Phan).
//!
//! HALS solves the non-negative AO subproblem one *column* (rank-one
//! component) at a time, each column having a closed-form non-negative
//! update:
//!
//! `h_r <- max(eps, h_r + (M[:, r] - H S[:, r]) / S[r, r])`
//!
//! Each column update is a skinny GEMV plus a fused AXPY/clamp kernel; the
//! column loop is short (R iterations) while each kernel is `I`-wide, which
//! is why HALS also accelerates well on GPUs (§5.4).

use rayon::prelude::*;

use cstf_device::{Device, KernelClass, KernelCost, Phase};
use cstf_linalg::Mat;

/// Configuration for the HALS update.
#[derive(Debug, Clone, Copy)]
pub struct HalsConfig {
    /// Full column sweeps per mode visit (PLANC uses 1).
    pub inner_iters: usize,
    /// Floor applied to updated entries (keeps columns from collapsing to
    /// exactly zero, as in PLANC's implementation).
    pub epsilon: f64,
}

impl Default for HalsConfig {
    fn default() -> Self {
        Self { inner_iters: 1, epsilon: 1e-16 }
    }
}

/// Runs HALS sweeps on one mode's factor `h`, metered under
/// [`Phase::Update`].
///
/// # Panics
/// Panics on shape mismatches.
pub fn hals_update(dev: &Device, cfg: &HalsConfig, m: &Mat, s: &Mat, h: &mut Mat) {
    let (rows, rank) = (m.rows(), m.cols());
    assert_eq!((h.rows(), h.cols()), (rows, rank), "H shape mismatch");
    assert_eq!((s.rows(), s.cols()), (rank, rank), "S must be R x R");

    let mut hs_col = vec![0.0f64; rows];

    for _ in 0..cfg.inner_iters {
        for r in 0..rank {
            let s_rr = s[(r, r)];
            if s_rr <= 0.0 {
                // Degenerate component: other factors' Grams vanished for
                // this column; leave it untouched.
                continue;
            }

            // GEMV: hs_col = H * S[:, r].
            {
                let (h_ref, hs_mut) = (&*h, &mut hs_col);
                dev.launch(
                    "hals_gemv_h_s_col",
                    Phase::Update,
                    KernelClass::Gemm,
                    KernelCost {
                        flops: 2.0 * (rows * rank) as f64,
                        bytes_read: ((rows * rank) + rank) as f64 * 8.0,
                        bytes_written: rows as f64 * 8.0,
                        gather_traffic: 0.0,
                        parallel_work: rows as f64,
                        serial_steps: 1.0,
                        working_set: (rows * rank) as f64 * 8.0,
                    },
                    || {
                        let body = |(out, row): (&mut f64, &[f64])| {
                            let mut acc = 0.0;
                            for (q, &hv) in row.iter().enumerate() {
                                acc += hv * s[(q, r)];
                            }
                            *out = acc;
                        };
                        if rows * rank >= 32 * 1024 {
                            hs_mut
                                .par_iter_mut()
                                .zip(h_ref.as_slice().par_chunks_exact(rank))
                                .for_each(body);
                        } else {
                            hs_mut
                                .iter_mut()
                                .zip(h_ref.as_slice().chunks_exact(rank))
                                .for_each(body);
                        }
                    },
                );
            }

            // Fused update: h_r = max(eps, h_r + (m_r - hs_col) / s_rr).
            let eps = cfg.epsilon;
            let (h_mut, hs_ref) = (&mut *h, &hs_col);
            dev.launch(
                "hals_column_update",
                Phase::Update,
                KernelClass::Stream,
                KernelCost {
                    flops: 3.0 * rows as f64,
                    bytes_read: 3.0 * rows as f64 * 8.0,
                    bytes_written: rows as f64 * 8.0,
                    gather_traffic: 0.0,
                    parallel_work: rows as f64,
                    serial_steps: 1.0,
                    working_set: 3.0 * rows as f64 * 8.0,
                },
                || {
                    let h_data = h_mut.as_mut_slice();
                    let body = |(i, hv): (usize, &mut f64)| {
                        let delta = (m[(i / rank, r)] - hs_ref[i / rank]) / s_rr;
                        *hv = (*hv + delta).max(eps);
                    };
                    // Strided column access: iterate rows, touch column r.
                    if rows >= 32 * 1024 {
                        h_data
                            .par_iter_mut()
                            .enumerate()
                            .filter(|(i, _)| i % rank == r)
                            .for_each(body);
                    } else {
                        for i in 0..rows {
                            let idx = i * rank + r;
                            let delta = (m[(i, r)] - hs_ref[i]) / s_rr;
                            h_data[idx] = (h_data[idx] + delta).max(eps);
                        }
                    }
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mu::nnls_objective;
    use cstf_device::DeviceSpec;
    use cstf_linalg::gram;

    fn problem(rows: usize, rank: usize, seed: u64) -> (Mat, Mat, Mat) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let truth = Mat::from_fn(rows, rank, |_, _| next());
        let other = Mat::from_fn(rows + 9, rank, |_, _| next());
        let s = gram::gram(&other);
        let m = cstf_linalg::matmul(&truth, &s);
        let h0 = Mat::from_fn(rows, rank, |_, _| next() + 0.05);
        (m, s, h0)
    }

    #[test]
    fn hals_preserves_positivity_floor() {
        let (m, s, mut h) = problem(40, 5, 1);
        let dev = Device::new(DeviceSpec::a100());
        hals_update(&dev, &HalsConfig { inner_iters: 10, ..Default::default() }, &m, &s, &mut h);
        assert!(h.as_slice().iter().all(|&v| v >= 1e-16));
        assert!(h.all_finite());
    }

    #[test]
    fn hals_monotonically_decreases_objective() {
        let (m, s, mut h) = problem(60, 6, 2);
        let dev = Device::new(DeviceSpec::a100());
        let mut prev = nnls_objective(&h, &s, &m);
        for _ in 0..20 {
            hals_update(&dev, &HalsConfig::default(), &m, &s, &mut h);
            let obj = nnls_objective(&h, &s, &m);
            assert!(obj <= prev + 1e-9, "objective rose: {prev} -> {obj}");
            prev = obj;
        }
    }

    #[test]
    fn hals_converges_to_exact_solution_on_consistent_problem() {
        let (m, s, mut h) = problem(30, 4, 3);
        let dev = Device::new(DeviceSpec::a100());
        hals_update(&dev, &HalsConfig { inner_iters: 300, ..Default::default() }, &m, &s, &mut h);
        // The consistent problem's optimum is truth = M S^{-1} (positive).
        let chol = cstf_linalg::Cholesky::factor(&{
            let mut sp = s.clone();
            sp.add_diagonal(1e-12);
            sp
        })
        .unwrap();
        let mut want = m.clone();
        chol.solve_rows(&mut want);
        for i in 0..h.rows() {
            for j in 0..h.cols() {
                assert!(
                    (h[(i, j)] - want[(i, j)]).abs() < 1e-4,
                    "({i},{j}): {} vs {}",
                    h[(i, j)],
                    want[(i, j)]
                );
            }
        }
    }

    #[test]
    fn degenerate_zero_diagonal_is_skipped() {
        let (m, _, mut h) = problem(20, 3, 4);
        let s = Mat::zeros(3, 3); // all Grams vanished
        let before = h.clone();
        let dev = Device::new(DeviceSpec::a100());
        hals_update(&dev, &HalsConfig::default(), &m, &s, &mut h);
        assert_eq!(h, before);
    }

    #[test]
    fn rank_one_hals_is_exact_in_one_sweep() {
        // With R = 1 the single column update is the exact closed-form NNLS
        // solution, so one sweep must land on the optimum.
        let (m, s, mut h) = problem(40, 1, 5);
        let dev = Device::new(DeviceSpec::a100());
        hals_update(&dev, &HalsConfig::default(), &m, &s, &mut h);
        let s00 = s[(0, 0)];
        for i in 0..h.rows() {
            let want = (m[(i, 0)] / s00).max(1e-16);
            assert!((h[(i, 0)] - want).abs() < 1e-10, "row {i}: {} vs {want}", h[(i, 0)]);
        }
    }
}
