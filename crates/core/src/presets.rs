//! Framework presets matching the systems compared in the paper's
//! evaluation (§5).
//!
//! Each preset pairs a device spec with the format/update configuration the
//! corresponding system uses, so the figure harnesses in `cstf-bench` can
//! say "SPLATT on the Xeon" or "cSTF-GPU on the H100" in one call.

use cstf_device::{Device, DeviceSpec};
use cstf_linalg::NormKind;

use crate::admm::AdmmConfig;
use crate::auntf::{AuntfConfig, TensorFormat, UpdateMethod};
use crate::hals::HalsConfig;
use crate::mu::MuConfig;
use crate::prox::Constraint;

/// A named system: device + driver configuration.
pub struct SystemPreset {
    /// Display name as used in the figures.
    pub name: &'static str,
    /// The device the system runs on.
    pub device: Device,
    /// The driver configuration.
    pub config: AuntfConfig,
}

fn base_config(rank: usize, update: UpdateMethod, format: TensorFormat) -> AuntfConfig {
    AuntfConfig {
        rank,
        max_iters: 1, // figure harnesses measure per-iteration time
        fit_tol: 0.0,
        update,
        norm: NormKind::Two,
        seed: 0,
        compute_fit: false,
        format,
        recovery: crate::recovery::RecoveryPolicy::default(),
        tiles: 1,
    }
}

/// SPLATT (Smith et al.): CPU-only AO-ADMM over CSF — the paper's primary
/// baseline (Figs. 5–8). SPLATT's ADMM is the *generic* unfused variant
/// with triangular solves.
pub fn splatt_cpu(rank: usize) -> SystemPreset {
    splatt_cpu_on(rank, DeviceSpec::icelake_xeon())
}

/// SPLATT on an explicit (e.g. workload-scaled) CPU spec.
pub fn splatt_cpu_on(rank: usize, spec: DeviceSpec) -> SystemPreset {
    SystemPreset {
        name: "SPLATT (CPU)",
        device: Device::new(spec),
        config: base_config(
            rank,
            UpdateMethod::Admm(AdmmConfig {
                constraint: Constraint::NonNegative,
                ..AdmmConfig::generic()
            }),
            TensorFormat::Csf,
        ),
    }
}

/// Modified PLANC (§4): CPU AO over the ALTO format with the requested
/// update scheme — the baseline for the MU/HALS comparisons (Figs. 9–10).
pub fn planc_cpu(rank: usize, update: UpdateMethod) -> SystemPreset {
    planc_cpu_on(rank, update, DeviceSpec::icelake_xeon())
}

/// Modified PLANC on an explicit (e.g. workload-scaled) CPU spec.
pub fn planc_cpu_on(rank: usize, update: UpdateMethod, spec: DeviceSpec) -> SystemPreset {
    SystemPreset {
        name: "PLANC (CPU, modified)",
        device: Device::new(spec),
        config: base_config(rank, update, TensorFormat::Alto),
    }
}

/// The paper's framework: fully GPU-resident cSTF over BLCO with cuADMM
/// (operation fusion + pre-inversion).
pub fn cstf_gpu(rank: usize, spec: DeviceSpec) -> SystemPreset {
    SystemPreset {
        name: "cSTF-GPU (cuADMM)",
        device: Device::new(spec),
        config: base_config(rank, UpdateMethod::Admm(AdmmConfig::cuadmm()), TensorFormat::Blco),
    }
}

/// The GPU framework with the *generic* (unfused, triangular-solve) ADMM —
/// the baseline of the Figure 4 ablation.
pub fn cstf_gpu_generic_admm(rank: usize, spec: DeviceSpec) -> SystemPreset {
    SystemPreset {
        name: "cSTF-GPU (generic ADMM)",
        device: Device::new(spec),
        config: base_config(rank, UpdateMethod::Admm(AdmmConfig::generic()), TensorFormat::Blco),
    }
}

/// GPU framework with MU (Fig. 9/10).
pub fn cstf_gpu_mu(rank: usize, spec: DeviceSpec) -> SystemPreset {
    SystemPreset {
        name: "cSTF-GPU (MU)",
        device: Device::new(spec),
        config: base_config(rank, UpdateMethod::Mu(MuConfig::default()), TensorFormat::Blco),
    }
}

/// GPU framework with HALS (Fig. 9/10).
pub fn cstf_gpu_hals(rank: usize, spec: DeviceSpec) -> SystemPreset {
    SystemPreset {
        name: "cSTF-GPU (HALS)",
        device: Device::new(spec),
        config: base_config(rank, UpdateMethod::Hals(HalsConfig::default()), TensorFormat::Blco),
    }
}

/// CPU PLANC with MU, for the Fig. 9/10 baselines.
pub fn planc_cpu_mu(rank: usize) -> SystemPreset {
    planc_cpu(rank, UpdateMethod::Mu(MuConfig::default()))
}

/// CPU PLANC with HALS, for the Fig. 9/10 baselines.
pub fn planc_cpu_hals(rank: usize) -> SystemPreset {
    planc_cpu(rank, UpdateMethod::Hals(HalsConfig::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstf_device::DeviceKind;

    #[test]
    fn splatt_runs_on_cpu_with_csf_and_generic_admm() {
        let p = splatt_cpu(32);
        assert_eq!(p.device.spec().kind, DeviceKind::Cpu);
        assert_eq!(p.config.format, TensorFormat::Csf);
        match p.config.update {
            UpdateMethod::Admm(c) => {
                assert!(!c.operation_fusion);
                assert!(!c.pre_inversion);
            }
            _ => panic!("SPLATT preset must use ADMM"),
        }
    }

    #[test]
    fn cstf_gpu_uses_blco_and_cuadmm() {
        let p = cstf_gpu(32, DeviceSpec::h100());
        assert_eq!(p.device.spec().kind, DeviceKind::Gpu);
        assert_eq!(p.config.format, TensorFormat::Blco);
        match p.config.update {
            UpdateMethod::Admm(c) => {
                assert!(c.operation_fusion);
                assert!(c.pre_inversion);
            }
            _ => panic!("cSTF preset must use ADMM"),
        }
    }

    #[test]
    fn ranks_are_propagated() {
        for r in [16, 32, 64] {
            assert_eq!(cstf_gpu(r, DeviceSpec::a100()).config.rank, r);
            assert_eq!(splatt_cpu(r).config.rank, r);
        }
    }
}
