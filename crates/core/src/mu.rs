//! Multiplicative Updates (MU) for non-negative factorization.
//!
//! Lee & Seung's rule applied to the AO subproblem: given the MTTKRP output
//! `M` and the Hadamard-of-Grams `S`, the mode's factor is updated as
//! `H <- H * M / (H S)` element-wise. Non-negativity is preserved
//! automatically (all three operands are non-negative for non-negative
//! data), and the NNLS objective `1/2 tr(H S H^T) - tr(H M^T)` is
//! non-increasing — the invariant the tests pin.
//!
//! On the device this is one DGEMM (`H S`) plus one fused element-wise
//! kernel per sweep, which is what makes MU such a natural GPU constraint
//! scheme (§5.4).

use rayon::prelude::*;

use cstf_device::{Device, KernelClass, KernelCost, Phase};
use cstf_linalg::Mat;

/// Configuration for the MU update.
#[derive(Debug, Clone, Copy)]
pub struct MuConfig {
    /// Multiplicative sweeps per mode visit (PLANC uses 1).
    pub inner_iters: usize,
    /// Denominator guard added to `H S`.
    pub epsilon: f64,
}

impl Default for MuConfig {
    fn default() -> Self {
        Self { inner_iters: 1, epsilon: 1e-16 }
    }
}

/// The NNLS subproblem objective `1/2 tr(H S H^T) - tr(H M^T)` (up to the
/// data-dependent constant) — used by tests to verify monotonicity.
pub fn nnls_objective(h: &Mat, s: &Mat, m: &Mat) -> f64 {
    let hs = cstf_linalg::matmul(h, s);
    let mut obj = 0.0;
    for i in 0..h.rows() {
        let (hr, hsr, mr) = (h.row(i), hs.row(i), m.row(i));
        for j in 0..h.cols() {
            obj += 0.5 * hr[j] * hsr[j] - hr[j] * mr[j];
        }
    }
    obj
}

/// Runs MU sweeps on one mode's factor `h`, metered under [`Phase::Update`].
///
/// # Panics
/// Panics on shape mismatches.
pub fn mu_update(dev: &Device, cfg: &MuConfig, m: &Mat, s: &Mat, h: &mut Mat) {
    let (rows, rank) = (m.rows(), m.cols());
    assert_eq!((h.rows(), h.cols()), (rows, rank), "H shape mismatch");
    assert_eq!((s.rows(), s.cols()), (rank, rank), "S must be R x R");
    let elems = rows * rank;
    let mut hs = Mat::zeros(rows, rank);

    for _ in 0..cfg.inner_iters {
        let (hs_mut, h_ref) = (&mut hs, &*h);
        dev.launch(
            "dgemm_h_times_s",
            Phase::Update,
            KernelClass::Gemm,
            KernelCost {
                flops: 2.0 * elems as f64 * rank as f64,
                bytes_read: (elems + rank * rank) as f64 * 8.0,
                bytes_written: elems as f64 * 8.0,
                gather_traffic: 0.0,
                parallel_work: elems as f64,
                serial_steps: 1.0,
                working_set: (2 * elems + rank * rank) as f64 * 8.0,
            },
            || cstf_linalg::gemm(1.0, h_ref, s, 0.0, hs_mut),
        );

        let eps = cfg.epsilon;
        let (h_mut, hs_ref) = (&mut *h, &hs);
        dev.launch(
            "mu_elementwise",
            Phase::Update,
            KernelClass::Stream,
            KernelCost {
                flops: 2.0 * elems as f64,
                bytes_read: 3.0 * elems as f64 * 8.0,
                bytes_written: elems as f64 * 8.0,
                gather_traffic: 0.0,
                parallel_work: elems as f64,
                serial_steps: 1.0,
                working_set: 3.0 * elems as f64 * 8.0,
            },
            || {
                let (hd, md, hsd) = (h_mut.as_mut_slice(), m.as_slice(), hs_ref.as_slice());
                let body = |(h, (&m, &d)): (&mut f64, (&f64, &f64))| {
                    *h *= m.max(0.0) / (d + eps);
                };
                if hd.len() >= 16 * 1024 {
                    hd.par_iter_mut().zip(md.par_iter().zip(hsd)).for_each(body);
                } else {
                    hd.iter_mut().zip(md.iter().zip(hsd)).for_each(body);
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstf_device::DeviceSpec;
    use cstf_linalg::gram;

    fn problem(rows: usize, rank: usize, seed: u64) -> (Mat, Mat, Mat) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let truth = Mat::from_fn(rows, rank, |_, _| next());
        let other = Mat::from_fn(rows + 7, rank, |_, _| next());
        let s = gram::gram(&other);
        let m = cstf_linalg::matmul(&truth, &s);
        let h0 = Mat::from_fn(rows, rank, |_, _| next() + 0.05);
        (m, s, h0)
    }

    #[test]
    fn mu_preserves_nonnegativity() {
        let (m, s, mut h) = problem(40, 5, 1);
        let dev = Device::new(DeviceSpec::a100());
        mu_update(&dev, &MuConfig { inner_iters: 20, ..Default::default() }, &m, &s, &mut h);
        assert!(h.is_nonnegative(0.0));
        assert!(h.all_finite());
    }

    #[test]
    fn mu_monotonically_decreases_objective() {
        let (m, s, mut h) = problem(50, 6, 2);
        let dev = Device::new(DeviceSpec::a100());
        let mut prev = nnls_objective(&h, &s, &m);
        for _ in 0..30 {
            mu_update(&dev, &MuConfig::default(), &m, &s, &mut h);
            let obj = nnls_objective(&h, &s, &m);
            assert!(obj <= prev + 1e-9, "objective rose: {prev} -> {obj}");
            prev = obj;
        }
    }

    #[test]
    fn mu_approaches_exact_solution_on_consistent_problem() {
        let (m, s, mut h) = problem(30, 4, 3);
        let dev = Device::new(DeviceSpec::a100());
        let obj_start = nnls_objective(&h, &s, &m);
        mu_update(&dev, &MuConfig { inner_iters: 500, ..Default::default() }, &m, &s, &mut h);
        let obj_end = nnls_objective(&h, &s, &m);
        assert!(obj_end < obj_start, "MU made no progress");
        // Fixed point check: one more sweep barely moves H.
        let before = h.clone();
        mu_update(&dev, &MuConfig::default(), &m, &s, &mut h);
        let drift = cstf_linalg::diff_norm_sq(&h, &before).sqrt();
        assert!(drift < 1e-2 * cstf_linalg::fro_norm(&h));
    }

    #[test]
    fn zero_rows_stay_zero() {
        // MU cannot revive an exactly-zero entry (multiplicative rule).
        let (m, s, mut h) = problem(20, 3, 4);
        for j in 0..3 {
            h[(5, j)] = 0.0;
        }
        let dev = Device::new(DeviceSpec::a100());
        mu_update(&dev, &MuConfig { inner_iters: 5, ..Default::default() }, &m, &s, &mut h);
        for j in 0..3 {
            assert_eq!(h[(5, j)], 0.0);
        }
    }

    #[test]
    fn kernels_are_metered() {
        let (m, s, mut h) = problem(25, 4, 5);
        let dev = Device::new(DeviceSpec::h100());
        mu_update(&dev, &MuConfig { inner_iters: 3, ..Default::default() }, &m, &s, &mut h);
        assert_eq!(dev.total_launches(), 6); // gemm + elementwise per sweep
        assert!(dev.phase_totals(Phase::Update).seconds > 0.0);
    }
}
