//! Hybrid CPU/GPU placement — the paper's stated future work (§7):
//! *"decision models to dynamically determine whether to execute
//! computations on the CPU, on the GPU, or on both (heterogeneously)"*.
//!
//! The decision model predicts each cSTF phase's per-iteration time on a
//! CPU spec and a GPU spec from the workload's shape — using the same
//! analytic kernel costs the metered execution records — and picks the
//! placement with the lowest total, including the host-device transfer
//! traffic a split placement induces (the MTTKRP output and factor
//! matrices cross the link every iteration when MTTKRP and UPDATE land on
//! different devices).

use cstf_device::{kernel_time, transfer_time, DeviceSpec, KernelClass, KernelCost};

use crate::auntf::TensorFormat;

/// Where a phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// On the CPU spec.
    Cpu,
    /// On the GPU spec.
    Gpu,
}

/// Shape summary of a workload, sufficient for the analytic predictions.
#[derive(Debug, Clone)]
pub struct WorkloadShape {
    /// Mode dimensions.
    pub shape: Vec<usize>,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Factorization rank.
    pub rank: usize,
    /// ADMM inner iterations per mode visit.
    pub inner_iters: usize,
    /// MTTKRP format in use.
    pub format: TensorFormat,
}

impl WorkloadShape {
    /// Sum of mode lengths (the UPDATE-phase workload driver).
    pub fn mode_sum(&self) -> usize {
        self.shape.iter().sum()
    }
}

/// Predicted per-iteration seconds for each phase on one device.
#[derive(Debug, Clone, Copy)]
pub struct PhasePrediction {
    /// GRAM phase.
    pub gram: f64,
    /// MTTKRP phase.
    pub mttkrp: f64,
    /// UPDATE phase (cuADMM-style kernel mix).
    pub update: f64,
    /// NORMALIZE phase.
    pub normalize: f64,
}

impl PhasePrediction {
    /// Total predicted seconds per outer iteration.
    pub fn total(&self) -> f64 {
        self.gram + self.mttkrp + self.update + self.normalize
    }
}

/// The placement plan the decision model recommends.
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    /// Placement of the MTTKRP phase.
    pub mttkrp: Placement,
    /// Placement of the UPDATE (+ GRAM + NORMALIZE) pipeline.
    pub update: Placement,
    /// Predicted per-iteration seconds of the chosen plan, including any
    /// cross-device transfer traffic.
    pub predicted_s: f64,
    /// Predicted per-iteration seconds for the all-CPU plan.
    pub all_cpu_s: f64,
    /// Predicted per-iteration seconds for the all-GPU plan.
    pub all_gpu_s: f64,
}

impl PlacementPlan {
    /// True when the plan splits phases across devices.
    pub fn is_heterogeneous(&self) -> bool {
        self.mttkrp != self.update
    }
}

/// Predicts per-phase, per-outer-iteration time on one device.
pub fn predict_phases(w: &WorkloadShape, spec: &DeviceSpec) -> PhasePrediction {
    let r = w.rank as f64;
    let nnz = w.nnz as f64;
    let n = w.shape.len() as f64;
    let sum_i = w.mode_sum() as f64;
    let factor_bytes = sum_i * r * 8.0;

    // MTTKRP: one launch per mode, coordinate-style traffic with the
    // format's index footprint.
    let idx_bytes = match w.format {
        TensorFormat::Coo => n * 4.0,
        TensorFormat::HiCoo => n,                            // u8 offsets
        TensorFormat::Csf | TensorFormat::CsfOne => n * 2.0, // prefix compression
        TensorFormat::Alto | TensorFormat::Blco => 8.0,
    };
    let mttkrp = (0..w.shape.len())
        .map(|mode| {
            let out_elems = w.shape[mode] as f64 * r;
            let gather = nnz * (n - 1.0) * r * 8.0;
            let ws: f64 = w
                .shape
                .iter()
                .enumerate()
                .filter(|&(m, _)| m != mode)
                .map(|(_, &d)| d as f64 * r * 8.0)
                .sum();
            kernel_time(
                spec,
                KernelClass::SparseGather,
                &KernelCost {
                    flops: nnz * (n + 1.0) * r,
                    bytes_read: nnz * (idx_bytes + 8.0) + out_elems * 8.0,
                    bytes_written: out_elems * 8.0,
                    gather_traffic: gather,
                    parallel_work: nnz,
                    serial_steps: 1.0,
                    working_set: ws,
                },
            )
        })
        .sum();

    // UPDATE: cuADMM kernel mix per inner iteration per mode —
    // ~11 I*R element-reads + 4 I*R writes across 5 streaming kernels,
    // plus one GEMM per inner iteration.
    let stream_kernels = 5.0;
    let update = w
        .shape
        .iter()
        .map(|&i_n| {
            let elems = i_n as f64 * r;
            let per_inner = kernel_time(
                spec,
                KernelClass::Stream,
                &KernelCost {
                    flops: 11.0 * elems,
                    bytes_read: 11.0 * elems * 8.0,
                    bytes_written: 4.0 * elems * 8.0,
                    gather_traffic: 0.0,
                    parallel_work: elems,
                    serial_steps: stream_kernels, // models the extra launches
                    working_set: 4.0 * elems * 8.0,
                },
            ) + kernel_time(
                spec,
                KernelClass::Gemm,
                &KernelCost {
                    flops: 2.0 * elems * r,
                    bytes_read: (elems + r * r) * 8.0,
                    bytes_written: elems * 8.0,
                    gather_traffic: 0.0,
                    parallel_work: elems,
                    serial_steps: 1.0,
                    working_set: 2.0 * elems * 8.0,
                },
            );
            per_inner * w.inner_iters as f64
        })
        .sum();

    // GRAM: one SYRK per mode plus the Hadamard combination.
    let gram = w
        .shape
        .iter()
        .map(|&i_n| {
            let elems = i_n as f64 * r;
            kernel_time(
                spec,
                KernelClass::Gemm,
                &KernelCost {
                    flops: elems * r,
                    bytes_read: elems * 8.0,
                    bytes_written: r * r * 8.0,
                    gather_traffic: 0.0,
                    parallel_work: elems,
                    serial_steps: 1.0,
                    working_set: elems * 8.0,
                },
            )
        })
        .sum::<f64>()
        + kernel_time(
            spec,
            KernelClass::Stream,
            &KernelCost {
                flops: n * r * r,
                bytes_read: n * r * r * 8.0,
                bytes_written: r * r * 8.0,
                gather_traffic: 0.0,
                parallel_work: r * r,
                serial_steps: 1.0,
                working_set: n * r * r * 8.0,
            },
        ) * n;

    // NORMALIZE: one streaming pass per mode.
    let normalize = kernel_time(
        spec,
        KernelClass::Stream,
        &KernelCost {
            flops: 3.0 * factor_bytes / 8.0,
            bytes_read: 2.0 * factor_bytes,
            bytes_written: factor_bytes,
            gather_traffic: 0.0,
            parallel_work: factor_bytes / 8.0,
            serial_steps: 1.0,
            working_set: factor_bytes,
        },
    ) * n;

    PhasePrediction { gram, mttkrp, update, normalize }
}

/// Recommends a placement for the workload given a CPU and a GPU spec.
///
/// Considers four plans — all-CPU, all-GPU, and the two splits — charging
/// split plans the per-iteration transfer of the MTTKRP outputs and the
/// updated factors across the host link.
pub fn recommend_placement(w: &WorkloadShape, cpu: &DeviceSpec, gpu: &DeviceSpec) -> PlacementPlan {
    let p_cpu = predict_phases(w, cpu);
    let p_gpu = predict_phases(w, gpu);

    let factor_bytes = w.mode_sum() as f64 * w.rank as f64 * 8.0;
    // MTTKRP output M (I_n x R per mode) one way, updated factor back.
    let split_transfer = 2.0 * transfer_time(gpu, factor_bytes);

    let all_cpu = p_cpu.total();
    let all_gpu = p_gpu.total();
    let mttkrp_gpu_update_cpu =
        p_gpu.mttkrp + p_cpu.gram + p_cpu.update + p_cpu.normalize + split_transfer;
    let mttkrp_cpu_update_gpu =
        p_cpu.mttkrp + p_gpu.gram + p_gpu.update + p_gpu.normalize + split_transfer;

    let plans = [
        (Placement::Cpu, Placement::Cpu, all_cpu),
        (Placement::Gpu, Placement::Gpu, all_gpu),
        (Placement::Gpu, Placement::Cpu, mttkrp_gpu_update_cpu),
        (Placement::Cpu, Placement::Gpu, mttkrp_cpu_update_gpu),
    ];
    let &(mttkrp, update, predicted_s) = plans
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite predictions"))
        .expect("non-empty plan set");

    PlacementPlan { mttkrp, update, predicted_s, all_cpu_s: all_cpu, all_gpu_s: all_gpu }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize], nnz: usize) -> WorkloadShape {
        WorkloadShape {
            shape: dims.to_vec(),
            nnz,
            rank: 32,
            inner_iters: 10,
            format: TensorFormat::Blco,
        }
    }

    #[test]
    fn large_long_mode_workload_goes_all_gpu() {
        // Flickr-like: long modes, many nonzeros — the paper's best GPU case.
        let w = shape(&[320_000, 28_000_000, 1_600_000, 731], 112_000_000);
        let plan = recommend_placement(&w, &DeviceSpec::icelake_xeon(), &DeviceSpec::h100());
        assert_eq!(plan.mttkrp, Placement::Gpu);
        assert_eq!(plan.update, Placement::Gpu);
        assert!(plan.all_gpu_s < plan.all_cpu_s);
        assert!(!plan.is_heterogeneous());
    }

    #[test]
    fn tiny_workload_prefers_cpu() {
        // A toy tensor: launch latency dominates on the GPU.
        let w = shape(&[50, 40, 30], 2_000);
        let plan = recommend_placement(&w, &DeviceSpec::icelake_xeon(), &DeviceSpec::h100());
        assert_eq!(plan.update, Placement::Cpu, "tiny updates belong on the CPU: {plan:?}");
        assert!(plan.predicted_s <= plan.all_gpu_s);
    }

    #[test]
    fn chosen_plan_is_never_worse_than_pure_plans() {
        for dims in [&[100usize, 100, 100][..], &[100_000, 5_000, 200][..]] {
            for nnz in [10_000usize, 5_000_000] {
                let w = shape(dims, nnz);
                let plan =
                    recommend_placement(&w, &DeviceSpec::icelake_xeon(), &DeviceSpec::a100());
                assert!(plan.predicted_s <= plan.all_cpu_s + 1e-15);
                assert!(plan.predicted_s <= plan.all_gpu_s + 1e-15);
            }
        }
    }

    #[test]
    fn split_plans_pay_transfer_cost() {
        // A workload where MTTKRP loves the GPU but the update is tiny:
        // short modes, huge nnz.
        let w = shape(&[500, 400, 300], 50_000_000);
        let cpu = DeviceSpec::icelake_xeon();
        let gpu = DeviceSpec::h100();
        let plan = recommend_placement(&w, &cpu, &gpu);
        // Whatever it picks, a heterogeneous plan must have been charged
        // transfers: verify the plan beats pure CPU strictly if it is split.
        if plan.is_heterogeneous() {
            assert!(plan.predicted_s < plan.all_cpu_s);
            assert!(plan.predicted_s < plan.all_gpu_s);
        }
    }

    #[test]
    fn prediction_scales_with_rank() {
        let w16 = WorkloadShape { rank: 16, ..shape(&[10_000, 10_000, 10_000], 1_000_000) };
        let w64 = WorkloadShape { rank: 64, ..shape(&[10_000, 10_000, 10_000], 1_000_000) };
        let p16 = predict_phases(&w16, &DeviceSpec::h100());
        let p64 = predict_phases(&w64, &DeviceSpec::h100());
        // Update bytes grow 4x but occupancy also rises with R, so the
        // modeled time grows sub-linearly; it must still grow.
        assert!(p64.update > 1.2 * p16.update);
        assert!(p64.mttkrp > 2.0 * p16.mttkrp);
    }

    #[test]
    fn update_prediction_tracks_mode_sum() {
        let small = predict_phases(&shape(&[1_000, 1_000, 1_000], 1_000_000), &DeviceSpec::a100());
        let large = predict_phases(
            &shape(&[1_000_000, 1_000_000, 1_000_000], 1_000_000),
            &DeviceSpec::a100(),
        );
        assert!(large.update > 50.0 * small.update);
    }
}
