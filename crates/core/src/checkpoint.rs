//! Versioned, checksummed checkpoint/restart snapshots.
//!
//! A checkpoint captures everything the AUNTF outer loop needs to resume
//! **bitwise-identically**: the factor matrices, ADMM dual variables, the
//! column-norm vector `lambda`, the fit history, and the completed outer
//! iteration count (DESIGN.md §10.3). Because every remaining quantity
//! (Gram matrices, workspaces, rho) is recomputed deterministically from
//! those, a resumed run replays the exact arithmetic of an uninterrupted
//! one.
//!
//! Format: a line-oriented text file, one snapshot per file.
//!
//! ```text
//! cstf-checkpoint v1 batch
//! fingerprint shape=20x18x16 rank=4 seed=42 update=admm format=Coo
//! iters 6
//! lambda 3ff0000000000000 ...
//! fits 3fe??????????????? ...
//! factor 20 4 <20*4 hex words>
//! dual 20 4 <...>
//! factor 18 4 <...>
//! ...
//! checksum 1a2b3c4d5e6f7081
//! ```
//!
//! Every `f64` is serialized as the 16-hex-digit big-endian image of its
//! IEEE-754 bits, so round-trips are exact (no decimal parsing). The final
//! line is an FNV-1a 64 checksum of all preceding lines; a snapshot that
//! fails the checksum (torn write, bit rot) is *skipped*, falling back to
//! the previous one, while a fingerprint mismatch (resuming with a
//! different tensor/rank/seed/scheme) is a hard error. Writes go through a
//! temp file + rename so a crash mid-write can never corrupt an existing
//! snapshot.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use cstf_linalg::Mat;

/// The on-disk format version accepted by this build.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "cstf-checkpoint";
const FILE_PREFIX: &str = "ckpt-";
const FILE_SUFFIX: &str = ".cstf";

/// Checkpoint write/read failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem error (directory missing, permission, torn rename).
    Io(String),
    /// The snapshot file is malformed or failed its checksum.
    Format(String),
    /// The snapshot belongs to a different run configuration.
    Fingerprint {
        /// Fingerprint of the run trying to resume.
        expected: String,
        /// Fingerprint recorded in the snapshot.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Format(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::Fingerprint { expected, found } => write!(
                f,
                "checkpoint belongs to a different run: expected `{expected}`, found `{found}`"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Where and how often to snapshot.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding the snapshot files (created if missing).
    pub dir: PathBuf,
    /// Snapshot every this many outer iterations (streaming: slices).
    pub every: usize,
}

impl CheckpointConfig {
    /// A config snapshotting into `dir` every `every` outer iterations.
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        Self { dir: dir.into(), every: every.max(1) }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn unhex(s: &str) -> Result<f64, CheckpointError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::Format(format!("bad f64 hex word `{s}`")))
}

/// Accumulates one snapshot's payload lines and writes them atomically
/// with a trailing checksum. Shared by the batch (AUNTF) and streaming
/// snapshot encoders.
#[derive(Debug)]
pub struct ArchiveWriter {
    lines: Vec<String>,
}

impl ArchiveWriter {
    /// Starts an archive of the given kind (`"batch"` or `"stream"`).
    pub fn new(kind: &str) -> Self {
        Self { lines: vec![format!("{MAGIC} v{FORMAT_VERSION} {kind}")] }
    }

    /// Appends a `key value` line (value must not contain newlines).
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) {
        self.lines.push(format!("{key} {value}"));
    }

    /// Appends a `key <hex>*` line of exact f64 bit images.
    pub fn floats(&mut self, key: &str, vals: &[f64]) {
        let mut line = String::with_capacity(key.len() + 17 * vals.len());
        line.push_str(key);
        for &v in vals {
            let _ = write!(line, " {}", hex(v));
        }
        self.lines.push(line);
    }

    /// Appends a `key rows cols <hex>*` line for a matrix.
    pub fn mat(&mut self, key: &str, m: &Mat) {
        let mut line = String::with_capacity(key.len() + 24 + 17 * m.len());
        let _ = write!(line, "{key} {} {}", m.rows(), m.cols());
        for &v in m.as_slice() {
            let _ = write!(line, " {}", hex(v));
        }
        self.lines.push(line);
    }

    /// Writes the archive to `path` (temp file + rename), appending the
    /// FNV-1a checksum line.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let payload = self.lines.join("\n");
        let text = format!("{payload}\nchecksum {:016x}\n", fnv1a(payload.as_bytes()));
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)
            .map_err(|e| CheckpointError::Io(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| CheckpointError::Io(format!("renaming into {}: {e}", path.display())))
    }
}

/// Sequential reader over a verified snapshot's payload lines.
#[derive(Debug)]
pub struct ArchiveReader {
    lines: Vec<String>,
    pos: usize,
}

impl ArchiveReader {
    /// Reads `path`, verifies the checksum and the `kind` header, and
    /// positions the cursor at the first payload line.
    pub fn read(path: &Path, kind: &str) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("reading {}: {e}", path.display())))?;
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let last = lines.pop().ok_or_else(|| CheckpointError::Format("empty file".into()))?;
        let sum = last
            .strip_prefix("checksum ")
            .ok_or_else(|| CheckpointError::Format("missing checksum line".into()))?;
        let payload = lines.join("\n");
        let expect = format!("{:016x}", fnv1a(payload.as_bytes()));
        if sum != expect {
            return Err(CheckpointError::Format(format!(
                "checksum mismatch (recorded {sum}, computed {expect})"
            )));
        }
        let header = format!("{MAGIC} v{FORMAT_VERSION} {kind}");
        if lines.first().map(String::as_str) != Some(header.as_str()) {
            return Err(CheckpointError::Format(format!(
                "bad header `{}` (want `{header}`)",
                lines.first().map(String::as_str).unwrap_or("")
            )));
        }
        Ok(Self { lines, pos: 1 })
    }

    fn next_line(&mut self, key: &str) -> Result<&str, CheckpointError> {
        let line = self
            .lines
            .get(self.pos)
            .ok_or_else(|| CheckpointError::Format(format!("missing `{key}` line")))?;
        self.pos += 1;
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' ').or(Some(rest).filter(|r| r.is_empty())))
            .ok_or_else(|| CheckpointError::Format(format!("expected `{key}`, found `{line}`")))
    }

    /// Reads a `key value` line, returning the value.
    pub fn field(&mut self, key: &str) -> Result<String, CheckpointError> {
        self.next_line(key).map(str::to_owned)
    }

    /// Reads a `key <hex>*` line back into f64s.
    pub fn floats(&mut self, key: &str) -> Result<Vec<f64>, CheckpointError> {
        self.next_line(key)?.to_owned().split_whitespace().map(unhex).collect()
    }

    /// Reads a `key rows cols <hex>*` matrix line.
    pub fn mat(&mut self, key: &str) -> Result<Mat, CheckpointError> {
        let rest = self.next_line(key)?.to_owned();
        let mut words = rest.split_whitespace();
        let dim = |w: Option<&str>| -> Result<usize, CheckpointError> {
            w.and_then(|s| s.parse().ok())
                .ok_or_else(|| CheckpointError::Format(format!("bad `{key}` dimensions")))
        };
        let rows = dim(words.next())?;
        let cols = dim(words.next())?;
        let vals: Vec<f64> = words.map(unhex).collect::<Result<_, _>>()?;
        if vals.len() != rows * cols {
            return Err(CheckpointError::Format(format!(
                "`{key}` has {} values for a {rows}x{cols} matrix",
                vals.len()
            )));
        }
        let mut m = Mat::zeros(rows, cols);
        m.as_mut_slice().copy_from_slice(&vals);
        Ok(m)
    }
}

/// Borrowed view of the AUNTF loop state to snapshot (no clones on the
/// write path beyond the text encoding itself).
#[derive(Debug)]
pub struct BatchView<'a> {
    /// Run fingerprint (shape/rank/seed/update/format).
    pub fingerprint: &'a str,
    /// Completed outer iterations.
    pub completed_iters: usize,
    /// Column-norm vector.
    pub lambda: &'a [f64],
    /// Fit history (one entry per completed outer iteration, when
    /// fit computation is enabled).
    pub fits: &'a [f64],
    /// Factor matrices, one per mode.
    pub factors: &'a [Mat],
    /// ADMM dual variables, one per mode (empty for MU/HALS).
    pub duals: &'a [Mat],
}

/// Owned state restored from a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchState {
    /// Completed outer iterations.
    pub completed_iters: usize,
    /// Column-norm vector.
    pub lambda: Vec<f64>,
    /// Fit history.
    pub fits: Vec<f64>,
    /// Factor matrices, one per mode.
    pub factors: Vec<Mat>,
    /// ADMM dual variables, one per mode.
    pub duals: Vec<Mat>,
}

fn snapshot_path(dir: &Path, iters: usize) -> PathBuf {
    dir.join(format!("{FILE_PREFIX}{iters:08}{FILE_SUFFIX}"))
}

/// Writes one batch snapshot into `dir`, named by its iteration count.
pub fn save_batch(dir: &Path, view: &BatchView<'_>) -> Result<PathBuf, CheckpointError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CheckpointError::Io(format!("creating {}: {e}", dir.display())))?;
    let mut w = ArchiveWriter::new("batch");
    w.field("fingerprint", view.fingerprint);
    w.field("iters", view.completed_iters);
    w.floats("lambda", view.lambda);
    w.floats("fits", view.fits);
    w.field("modes", view.factors.len());
    for (i, f) in view.factors.iter().enumerate() {
        w.mat("factor", f);
        match view.duals.get(i) {
            Some(d) => w.mat("dual", d),
            None => w.mat("dual", &Mat::zeros(0, 0)),
        }
    }
    let path = snapshot_path(dir, view.completed_iters);
    w.write_atomic(&path)?;
    Ok(path)
}

/// Loads the newest valid batch snapshot from `dir`.
///
/// Snapshots that fail to parse or fail their checksum are skipped (the
/// loader falls back to the previous one); a snapshot whose fingerprint
/// does not match is a hard error, because silently restarting a
/// *different* factorization from it would corrupt results. `Ok(None)`
/// means no usable snapshot exists — start fresh.
pub fn load_latest_batch(
    dir: &Path,
    fingerprint: &str,
) -> Result<Option<BatchState>, CheckpointError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(None), // no directory yet: nothing to resume
    };
    let mut candidates: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(FILE_PREFIX) && n.ends_with(FILE_SUFFIX))
        })
        .collect();
    candidates.sort();
    for path in candidates.iter().rev() {
        match read_batch(path) {
            Ok((found, state)) => {
                if found != fingerprint {
                    return Err(CheckpointError::Fingerprint {
                        expected: fingerprint.to_owned(),
                        found,
                    });
                }
                return Ok(Some(state));
            }
            Err(CheckpointError::Fingerprint { .. }) => unreachable!(),
            Err(e) => {
                // Corrupt or torn snapshot: warn and fall back to the
                // previous one rather than failing the resume.
                eprintln!(
                    "[checkpoint: skipping corrupt snapshot {} ({e}); falling back]",
                    path.display()
                );
                continue;
            }
        }
    }
    Ok(None)
}

fn read_batch(path: &Path) -> Result<(String, BatchState), CheckpointError> {
    let mut r = ArchiveReader::read(path, "batch")?;
    let fingerprint = r.field("fingerprint")?;
    let completed_iters: usize = r
        .field("iters")?
        .parse()
        .map_err(|_| CheckpointError::Format("bad `iters` value".into()))?;
    let lambda = r.floats("lambda")?;
    let fits = r.floats("fits")?;
    let modes: usize =
        r.field("modes")?.parse().map_err(|_| CheckpointError::Format("bad `modes`".into()))?;
    let mut factors = Vec::with_capacity(modes);
    let mut duals = Vec::with_capacity(modes);
    for _ in 0..modes {
        factors.push(r.mat("factor")?);
        duals.push(r.mat("dual")?);
    }
    Ok((fingerprint, BatchState { completed_iters, lambda, fits, factors, duals }))
}

impl cstf_telemetry::MemoryFootprint for BatchState {
    fn footprint(&self) -> cstf_telemetry::Footprint {
        use cstf_telemetry::vec_heap_bytes;
        let mut fp = cstf_telemetry::Footprint::new();
        fp.add("lambda", vec_heap_bytes(&self.lambda));
        fp.add("fits", vec_heap_bytes(&self.fits));
        fp.add("factors.spine", (self.factors.capacity() * std::mem::size_of::<Mat>()) as u64);
        for f in &self.factors {
            fp.add("factors.data", f.heap_bytes());
        }
        fp.add("duals.spine", (self.duals.capacity() * std::mem::size_of::<Mat>()) as u64);
        for d in &self.duals {
            fp.add("duals.data", d.heap_bytes());
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cstf-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_state(iters: usize) -> BatchState {
        let factors = vec![
            Mat::from_fn(3, 2, |i, j| (i as f64 + 0.25) * (j as f64 - 0.75)),
            Mat::from_fn(4, 2, |i, j| 1.0 / (1.0 + i as f64 + j as f64)),
        ];
        let duals = vec![
            Mat::from_fn(3, 2, |i, j| -0.125 * (i * 2 + j) as f64),
            Mat::from_fn(4, 2, |_, _| -0.0),
        ];
        BatchState {
            completed_iters: iters,
            lambda: vec![1.5e-300, -0.0, 3.75, f64::MIN_POSITIVE],
            fits: vec![0.1, 0.2, std::f64::consts::PI],
            factors,
            duals,
        }
    }

    #[test]
    fn footprint_matches_capacity_sum() {
        use cstf_telemetry::MemoryFootprint;
        let st = sample_state(3);
        let vb = |c: usize, sz: usize| (c * sz) as u64;
        let expected = vb(st.lambda.capacity(), 8)
            + vb(st.fits.capacity(), 8)
            + vb(st.factors.capacity(), std::mem::size_of::<Mat>())
            + st.factors.iter().map(MemoryFootprint::heap_bytes).sum::<u64>()
            + vb(st.duals.capacity(), std::mem::size_of::<Mat>())
            + st.duals.iter().map(MemoryFootprint::heap_bytes).sum::<u64>();
        assert_eq!(st.heap_bytes(), expected);
        assert_eq!(
            st.footprint().get("factors.data"),
            st.factors.iter().map(MemoryFootprint::heap_bytes).sum::<u64>()
        );
    }

    fn save(dir: &Path, fp: &str, st: &BatchState) -> PathBuf {
        save_batch(
            dir,
            &BatchView {
                fingerprint: fp,
                completed_iters: st.completed_iters,
                lambda: &st.lambda,
                fits: &st.fits,
                factors: &st.factors,
                duals: &st.duals,
            },
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_bitwise_exact() {
        let dir = tmpdir("roundtrip");
        let st = sample_state(4);
        save(&dir, "fp-a", &st);
        let back = load_latest_batch(&dir, "fp-a").unwrap().expect("snapshot present");
        assert_eq!(back, st);
        // Bitwise, not just PartialEq: -0.0 and subnormals survive.
        assert_eq!(back.lambda[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.duals[1][(0, 0)].to_bits(), (-0.0f64).to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_snapshot_wins() {
        let dir = tmpdir("latest");
        save(&dir, "fp", &sample_state(2));
        save(&dir, "fp", &sample_state(10));
        save(&dir, "fp", &sample_state(6));
        let back = load_latest_batch(&dir, "fp").unwrap().unwrap();
        assert_eq!(back.completed_iters, 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous() {
        let dir = tmpdir("corrupt");
        save(&dir, "fp", &sample_state(2));
        let newest = save(&dir, "fp", &sample_state(5));
        // Flip payload bytes without touching the checksum line.
        let text = std::fs::read_to_string(&newest).unwrap();
        std::fs::write(&newest, text.replacen("factor", "factoR", 1)).unwrap();
        let back = load_latest_batch(&dir, "fp").unwrap().unwrap();
        assert_eq!(back.completed_iters, 2, "loader should skip the corrupt newest snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_a_hard_error() {
        let dir = tmpdir("fingerprint");
        save(&dir, "fp-original", &sample_state(3));
        match load_latest_batch(&dir, "fp-other") {
            Err(CheckpointError::Fingerprint { expected, found }) => {
                assert_eq!(expected, "fp-other");
                assert_eq!(found, "fp-original");
            }
            other => panic!("expected fingerprint error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_means_fresh_start() {
        let dir = std::env::temp_dir().join("cstf-ckpt-test-definitely-missing");
        assert_eq!(load_latest_batch(&dir, "fp").unwrap(), None);
    }

    #[test]
    fn no_stray_tmp_file_after_write() {
        let dir = tmpdir("atomic");
        save(&dir, "fp", &sample_state(1));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file left behind: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
