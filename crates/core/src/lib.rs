//! # cstf-core
//!
//! Constrained sparse tensor factorization — the primary contribution of
//! *"Accelerating Constrained Sparse Tensor Factorization on Massively
//! Parallel Architectures"* (ICPP '24), reproduced in Rust.
//!
//! The crate provides:
//!
//! * [`auntf::Auntf`] — the Alternating-Update NTF driver (Algorithm 1),
//!   device-resident with per-phase metering;
//! * [`admm`] — generic ADMM (Algorithm 2) and cuADMM (Algorithm 3) with
//!   independently switchable *operation fusion* and *pre-inversion*;
//! * [`mu`] / [`hals`] — the two additional non-negativity schemes of §5.4;
//! * [`prox`] — element-wise proximity operators (non-negativity, L1,
//!   ridge, box);
//! * [`presets`] — the systems compared in the paper's figures (SPLATT-CPU,
//!   modified PLANC, cSTF-GPU).
//!
//! ```
//! use cstf_core::{Auntf, AuntfConfig};
//! use cstf_core::auntf::seeded_factors;
//! use cstf_device::{Device, DeviceSpec};
//! use cstf_tensor::{Ktensor, SparseTensor};
//!
//! // A tiny planted non-negative tensor.
//! let truth = Ktensor::from_factors(seeded_factors(&[12, 10, 8], 3, 7));
//! let mut idx = vec![Vec::new(); 3];
//! let mut vals = Vec::new();
//! for i in 0..12u32 {
//!     for j in 0..10u32 {
//!         for k in 0..8u32 {
//!             idx[0].push(i); idx[1].push(j); idx[2].push(k);
//!             vals.push(truth.value_at(&[i, j, k]).max(1e-6));
//!         }
//!     }
//! }
//! let x = SparseTensor::new(vec![12, 10, 8], idx, vals);
//!
//! let cfg = AuntfConfig { rank: 3, max_iters: 40, ..Default::default() };
//! let dev = Device::new(DeviceSpec::h100());
//! let out = Auntf::new(x, cfg).factorize(&dev).expect("fault-free run");
//! assert!(*out.fits.last().unwrap() > 0.9);
//! assert!(out.model.factors.iter().all(|f| f.is_nonnegative(1e-12)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admm;
pub mod auntf;
pub mod checkpoint;
pub mod hals;
pub mod hybrid;
pub mod mu;
pub mod multi_gpu;
pub mod presets;
pub mod prox;
pub mod recovery;
pub mod sharded;
pub mod tiled;

pub use admm::{admm_update, blocked_admm_update, AdmmConfig, AdmmStats, AdmmWorkspace};
pub use auntf::{Auntf, AuntfConfig, FactorizeOutput, TensorFormat, UpdateMethod};
pub use checkpoint::{CheckpointConfig, CheckpointError};
pub use hals::{hals_update, HalsConfig};
pub use mu::{mu_update, MuConfig};
pub use presets::SystemPreset;
pub use prox::Constraint;
pub use recovery::{
    AdmmError, CholeskyError, ElasticityReport, FactorizeError, RecoveryPolicy, RecoveryReport,
    RetiredDevice,
};
pub use tiled::TilingReport;
