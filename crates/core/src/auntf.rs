//! The Alternating-Update Non-negative Tensor Factorization driver.
//!
//! This is the paper's `AUNTF_GPU` class (§4): the outer AO loop of
//! Algorithm 1, device-resident, dispatching per-mode to a pluggable update
//! scheme (ADMM / cuADMM, MU, HALS) and a pluggable MTTKRP engine (COO,
//! CSF, ALTO, BLCO, dense). Every phase — GRAM, MTTKRP, UPDATE, NORMALIZE —
//! is metered on the device so the breakdown figures (Figs. 1, 3) and the
//! end-to-end comparisons (Figs. 5–10) fall directly out of the profiler.

use cstf_device::{Device, DeviceFault, KernelClass, KernelCost, Phase};
use cstf_formats::{Alto, Blco, Csf, HiCoo, MttkrpWorkspace, TrafficEstimate};
use cstf_linalg::{gram, normalize_columns_scratch, LinalgError, Mat, NormKind, PartialBuffers};
use cstf_telemetry::{ConvergenceLog, Span};
use cstf_tensor::{read_tns_tiles_file, DenseTensor, Ktensor, SparseTensor, TnsError};

use crate::admm::{admm_update, AdmmConfig, AdmmWorkspace};
use crate::checkpoint::{self, BatchState, BatchView, CheckpointConfig};
use crate::hals::{hals_update, HalsConfig};
use crate::mu::{mu_update, MuConfig};
use crate::recovery::{
    AdmmError, ElasticityReport, FactorizeError, RecoveryPolicy, RecoveryReport,
};
use crate::tiled::{tiled_mttkrp_guarded, TiledEngine, TilingReport};

/// Which compressed format backs the MTTKRP phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorFormat {
    /// Plain coordinates, privatized parallel accumulation (naive baseline).
    Coo,
    /// SPLATT's CSF, one tree per mode (the CPU state of the art, §5.3).
    Csf,
    /// SPLATT's ONEMODE configuration: a single CSF tree serves every
    /// target mode (1/N the memory, scatter conflicts on non-root modes).
    CsfOne,
    /// HiCOO blocked coordinates (Li et al., SC '18 lineage).
    HiCoo,
    /// ALTO linearized format (the modified-PLANC CPU path, §4).
    Alto,
    /// BLCO blocked linearized format (the GPU state of the art, §2.3).
    Blco,
}

/// The per-mode update scheme (Algorithm 1, line 10).
#[derive(Debug, Clone, Copy)]
pub enum UpdateMethod {
    /// AO-ADMM (generic or cuADMM depending on the config's OF/PI flags).
    Admm(AdmmConfig),
    /// Multiplicative updates.
    Mu(MuConfig),
    /// Hierarchical ALS.
    Hals(HalsConfig),
}

impl UpdateMethod {
    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            UpdateMethod::Admm(c) => c.variant_name(),
            UpdateMethod::Mu(_) => "MU",
            UpdateMethod::Hals(_) => "HALS",
        }
    }
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct AuntfConfig {
    /// Factorization rank `R`.
    pub rank: usize,
    /// Outer AO iterations.
    pub max_iters: usize,
    /// Stop when the fit improves by less than this between outer
    /// iterations (`0.0` disables early stopping; requires `compute_fit`).
    pub fit_tol: f64,
    /// Update scheme.
    pub update: UpdateMethod,
    /// Column norm used by the NORMALIZE phase.
    pub norm: NormKind,
    /// Seed for the random factor initialization.
    pub seed: u64,
    /// Track the CP fit each outer iteration (adds an `Other`-phase cost).
    pub compute_fit: bool,
    /// MTTKRP engine format.
    pub format: TensorFormat,
    /// How the driver responds to device faults and numerical breakdowns.
    pub recovery: RecoveryPolicy,
    /// Out-of-core tile count `K`. `1` (the default) runs the ordinary
    /// in-core path; `K > 1` streams the tensor through device memory in
    /// `K` nnz-balanced tiles per mode, double-buffering each tile's
    /// host→device copy against the previous tile's compute. The factors
    /// are bitwise-identical at every `K` (ignored for dense tensors and
    /// rejected by the sharded multi-device driver).
    pub tiles: usize,
}

impl Default for AuntfConfig {
    fn default() -> Self {
        Self {
            rank: 16,
            max_iters: 10,
            fit_tol: 0.0,
            update: UpdateMethod::Admm(AdmmConfig::cuadmm()),
            norm: NormKind::Two,
            seed: 0,
            compute_fit: true,
            format: TensorFormat::Blco,
            recovery: RecoveryPolicy::default(),
            tiles: 1,
        }
    }
}

/// Result of a factorization run.
#[derive(Debug, Clone)]
pub struct FactorizeOutput {
    /// The fitted CP model.
    pub model: Ktensor,
    /// Outer iterations executed.
    pub iters: usize,
    /// Fit after each outer iteration (empty if `compute_fit` was off).
    pub fits: Vec<f64>,
    /// True when the fit-tolerance stop fired before `max_iters`.
    pub converged: bool,
    /// Per-iteration convergence telemetry: fit, relative error, and the
    /// ADMM inner-iteration counts / residuals / rho of every mode visit.
    pub convergence: ConvergenceLog,
    /// What the recovery machinery did (all-zero for a fault-free run).
    pub recovery: RecoveryReport,
    /// What the elastic sharded driver observed and did (default — clean —
    /// for single-device runs and healthy groups).
    pub elasticity: ElasticityReport,
    /// What the out-of-core tiled streaming did (default — `tiles = 1`,
    /// nothing streamed — for in-core runs).
    pub tiling: TilingReport,
}

/// Scan-time facts about a tensor that was streamed tile-by-tile and
/// never materialized in full (the `fit` computation needs `norm_sq`).
pub(crate) struct StreamedMeta {
    pub shape: Vec<usize>,
    pub nnz: usize,
    pub norm_sq: f64,
}

pub(crate) enum Source {
    Sparse(SparseTensor),
    Dense(DenseTensor),
    /// The tensor exists only as the tiles inside `Engine::Tiled`; this
    /// carries the scan-time global facts.
    Streamed(StreamedMeta),
}

enum Engine {
    /// Use the COO in `Source` directly.
    Coo,
    Csf(Vec<Csf>),
    CsfOne(Csf),
    HiCoo(HiCoo),
    Alto(Alto),
    Blco(Blco),
    /// Use the dense tensor in `Source` directly.
    Dense,
    /// Out-of-core: `K` compiled tiles per mode, streamed per sweep.
    Tiled(TiledEngine),
}

/// The alternating-update driver, holding the tensor and its compiled
/// MTTKRP engine.
pub struct Auntf {
    pub(crate) source: Source,
    engine: Engine,
    pub(crate) cfg: AuntfConfig,
}

impl Auntf {
    /// Builds a driver for a sparse tensor, compiling the configured
    /// format (into `cfg.tiles` out-of-core tiles per mode when the
    /// config asks for tiling).
    pub fn new(x: SparseTensor, cfg: AuntfConfig) -> Self {
        let _region = cstf_telemetry::HeapRegion::enter("construction");
        let engine = if cfg.tiles > 1 {
            Engine::Tiled(TiledEngine::compile(&x, cfg.format, cfg.tiles))
        } else {
            match cfg.format {
                TensorFormat::Coo => Engine::Coo,
                TensorFormat::Csf => {
                    Engine::Csf((0..x.nmodes()).map(|m| Csf::from_coo(&x, m)).collect())
                }
                TensorFormat::CsfOne => Engine::CsfOne(Csf::from_coo(&x, 0)),
                TensorFormat::HiCoo => Engine::HiCoo(HiCoo::from_coo(&x)),
                TensorFormat::Alto => Engine::Alto(Alto::from_coo(&x)),
                TensorFormat::Blco => Engine::Blco(Blco::from_coo(&x)),
            }
        };
        Self { source: Source::Sparse(x), engine, cfg }
    }

    /// Builds a driver by streaming a `.tns` file tile-by-tile: the full
    /// COO is never materialized. The file is scanned once for shape,
    /// nnz-per-row histograms and `||X||²`, then re-read per (mode, tile)
    /// with only one tile's sub-tensor live at a time — peak construction
    /// heap is bounded by the largest tile, not the tensor.
    ///
    /// With `cfg.tiles <= 1` this falls back to the ordinary in-core
    /// parse + [`Auntf::new`] (same bytes, same engine, same numerics).
    ///
    /// # Errors
    /// Any [`TnsError`] from the scan or a tile pass, including a file
    /// that changes between the two passes.
    pub fn from_tns_file_tiled(
        path: impl AsRef<std::path::Path>,
        cfg: AuntfConfig,
    ) -> Result<Self, TnsError> {
        if cfg.tiles <= 1 {
            let x = cstf_tensor::read_tns_file(path)?;
            return Ok(Self::new(x, cfg));
        }
        let _region = cstf_telemetry::HeapRegion::enter("construction");
        let mut engine = TiledEngine::with_shape(0, cfg.tiles);
        let format = cfg.format;
        let scan = read_tns_tiles_file(path, cfg.tiles, |mode, _tile, rows, coo| {
            while engine.per_mode.len() <= mode {
                engine.per_mode.push(Vec::new());
            }
            engine.push(mode, rows.clone(), coo, format);
            Ok(())
        })?;
        let meta = StreamedMeta { shape: scan.shape.clone(), nnz: scan.nnz, norm_sq: scan.norm_sq };
        Ok(Self { source: Source::Streamed(meta), engine: Engine::Tiled(engine), cfg })
    }

    /// Builds a driver for a dense tensor (the Fig. 1 DenseTF study).
    pub fn new_dense(x: DenseTensor, cfg: AuntfConfig) -> Self {
        Self { source: Source::Dense(x), engine: Engine::Dense, cfg }
    }

    /// Tensor shape.
    pub fn shape(&self) -> Vec<usize> {
        match &self.source {
            Source::Sparse(x) => x.shape().to_vec(),
            Source::Dense(x) => x.shape().to_vec(),
            Source::Streamed(meta) => meta.shape.clone(),
        }
    }

    /// Stored nonzeros (cell count for dense tensors).
    pub fn nnz(&self) -> usize {
        match &self.source {
            Source::Sparse(x) => x.nnz(),
            Source::Dense(x) => x.len(),
            Source::Streamed(meta) => meta.nnz,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AuntfConfig {
        &self.cfg
    }

    /// Bytes the tensor occupies in device memory (drives the one-time
    /// host-to-device transfer cost).
    fn tensor_bytes(&self) -> f64 {
        match (&self.engine, &self.source) {
            (Engine::Coo, Source::Sparse(x)) => (x.nnz() * (x.nmodes() * 4 + 8)) as f64,
            (Engine::Csf(ts), _) => ts.iter().map(|t| t.storage_bytes()).sum::<usize>() as f64,
            (Engine::CsfOne(t), _) => t.storage_bytes() as f64,
            (Engine::HiCoo(h), _) => h.storage_bytes() as f64,
            (Engine::Alto(a), _) => a.storage_bytes() as f64,
            (Engine::Blco(b), _) => b.storage_bytes() as f64,
            (Engine::Dense, Source::Dense(x)) => (x.len() * 8) as f64,
            _ => 0.0,
        }
    }

    fn mttkrp_into(
        &self,
        dev: &Device,
        factors: &[Mat],
        mode: usize,
        out: &mut Mat,
        ws: &mut MttkrpWorkspace,
    ) -> Result<(), DeviceFault> {
        let rank = self.cfg.rank;
        let (traffic, class): (TrafficEstimate, KernelClass) = match (&self.engine, &self.source) {
            (Engine::Coo, Source::Sparse(x)) => (
                cstf_formats::coordinate_mttkrp_traffic(
                    x.nnz(),
                    x.shape(),
                    mode,
                    rank,
                    (x.nmodes() * 4) as f64,
                ),
                KernelClass::SparseGather,
            ),
            (Engine::Csf(ts), _) => (ts[mode].mttkrp_traffic(rank), KernelClass::SparseGather),
            (Engine::CsfOne(t), _) => (t.mttkrp_any_traffic(mode, rank), KernelClass::SparseGather),
            (Engine::HiCoo(h), _) => (h.mttkrp_traffic(mode, rank), KernelClass::SparseGather),
            (Engine::Alto(a), _) => (a.mttkrp_traffic(mode, rank), KernelClass::SparseGather),
            (Engine::Blco(b), _) => (b.mttkrp_traffic(mode, rank), KernelClass::SparseGather),
            (Engine::Dense, Source::Dense(x)) => {
                let cells: f64 = x.shape().iter().map(|&d| d as f64).product();
                let n = x.nmodes() as f64;
                (
                    TrafficEstimate {
                        flops: cells * (n + 1.0) * rank as f64,
                        bytes_read: cells * 8.0,
                        bytes_written: (x.shape()[mode] * rank) as f64 * 8.0,
                        gather_bytes: 0.0, // dense walks factors with full reuse
                        parallel_work: cells,
                        working_set: x
                            .shape()
                            .iter()
                            .enumerate()
                            .filter(|&(m, _)| m != mode)
                            .map(|(_, &d)| (d * rank * 8) as f64)
                            .sum(),
                    },
                    KernelClass::Gemm, // dense MTTKRP streams with full reuse
                )
            }
            _ => unreachable!("engine/source mismatch"),
        };
        let cost = KernelCost {
            flops: traffic.flops,
            bytes_read: traffic.bytes_read,
            bytes_written: traffic.bytes_written,
            gather_traffic: traffic.gather_bytes,
            parallel_work: traffic.parallel_work,
            serial_steps: 1.0,
            working_set: traffic.working_set,
        };
        // launch_into exposes the output panel to silent NaN-corruption
        // faults, so the driver's nan_guard has something real to catch.
        dev.launch_into("mttkrp", Phase::Mttkrp, class, cost, out, Mat::as_mut_slice, |out| match (
            &self.engine,
            &self.source,
        ) {
            (Engine::Coo, Source::Sparse(x)) => {
                cstf_formats::mttkrp_coo_parallel_into(x, factors, mode, out, ws)
            }
            (Engine::Csf(ts), _) => ts[mode].mttkrp_into(factors, out, ws),
            (Engine::CsfOne(t), _) => t.mttkrp_any_into(factors, mode, out, ws),
            (Engine::HiCoo(h), _) => h.mttkrp_into(factors, mode, out, ws),
            (Engine::Alto(a), _) => a.mttkrp_into(factors, mode, out, ws),
            (Engine::Blco(b), _) => b.mttkrp_into(factors, mode, out, ws),
            (Engine::Dense, Source::Dense(x)) => *out = x.mttkrp(factors, mode),
            _ => unreachable!("engine/source mismatch"),
        })
    }

    fn compute_gram_into(
        &self,
        dev: &Device,
        h: &Mat,
        out: &mut Mat,
        partials: &mut PartialBuffers,
    ) -> Result<(), DeviceFault> {
        let (rows, rank) = (h.rows(), h.cols());
        dev.launch_into(
            "gram_syrk",
            Phase::Gram,
            KernelClass::Gemm,
            KernelCost {
                flops: (rows * rank * rank) as f64,
                bytes_read: (rows * rank) as f64 * 8.0,
                bytes_written: (rank * rank) as f64 * 8.0,
                gather_traffic: 0.0,
                parallel_work: (rows * rank) as f64,
                serial_steps: 1.0,
                working_set: (rows * rank) as f64 * 8.0,
            },
            out,
            Mat::as_mut_slice,
            |out| gram::gram_into(h, out, partials),
        )
    }

    fn hadamard_grams_into(
        &self,
        dev: &Device,
        grams: &[Mat],
        skip: usize,
        out: &mut Mat,
    ) -> Result<(), DeviceFault> {
        let rank = self.cfg.rank;
        let n = grams.len() as f64;
        // Corruption of S is deliberately left to the Cholesky factorization
        // downstream, which reports NaN as a typed error — exercising the
        // recompute arm of the recovery ladder.
        dev.launch_into(
            "hadamard_of_grams",
            Phase::Gram,
            KernelClass::Stream,
            KernelCost {
                flops: (n - 1.0) * (rank * rank) as f64,
                bytes_read: n * (rank * rank) as f64 * 8.0,
                bytes_written: (rank * rank) as f64 * 8.0,
                gather_traffic: 0.0,
                parallel_work: (rank * rank) as f64,
                serial_steps: 1.0,
                working_set: n * (rank * rank) as f64 * 8.0,
            },
            out,
            Mat::as_mut_slice,
            |out| gram::hadamard_of_grams_into(grams, skip, out),
        )
    }

    fn normalize(&self, dev: &Device, h: &mut Mat, lambda: &mut [f64], scratch: &mut Vec<f64>) {
        let elems = (h.rows() * h.cols()) as f64;
        let norm = self.cfg.norm;
        dev.launch(
            "normalize_columns",
            Phase::Normalize,
            KernelClass::Stream,
            KernelCost {
                flops: 3.0 * elems,
                bytes_read: 2.0 * elems * 8.0,
                bytes_written: elems * 8.0,
                gather_traffic: 0.0,
                parallel_work: elems,
                serial_steps: 1.0,
                working_set: elems * 8.0,
            },
            || {
                lambda.fill(1.0);
                normalize_columns_scratch(h, lambda, norm, scratch);
            },
        )
    }

    /// CP fit `1 - ||X - model|| / ||X||` for the current factors, using
    /// the already-available Grams for the model norm.
    ///
    /// `last_m` is the MTTKRP output of the most recently updated mode
    /// (`last_mode`), computed against the *current* other factors. When
    /// available it enables SPLATT's fit shortcut:
    /// `<X, model> = sum_{i,r} lambda_r * H[i,r] * M[i,r]` — an `O(I R)`
    /// reduction instead of an `O(nnz R)` sparse traversal.
    pub(crate) fn fit(
        &self,
        dev: &Device,
        factors: &[Mat],
        lambda: &[f64],
        grams: &[Mat],
        last_m: Option<(&Mat, usize)>,
        had: &mut Mat,
    ) -> f64 {
        let rank = self.cfg.rank;
        // ||model||^2 = lambda^T (hadamard of all Grams) lambda, built in
        // the caller-owned scratch matrix.
        had.as_mut_slice().fill(1.0);
        for g in grams {
            gram::hadamard_in_place(had, g);
        }
        let mut model_sq = 0.0;
        for i in 0..rank {
            for j in 0..rank {
                model_sq += lambda[i] * had[(i, j)] * lambda[j];
            }
        }

        match &self.source {
            Source::Sparse(x) => {
                let inner = if let Some((m, last_mode)) = last_m {
                    // Fast path: reuse the last MTTKRP. Valid because the
                    // other modes' factors have not changed since `m` was
                    // computed, and mode `last_mode`'s factor was
                    // normalized afterwards with the scale moved into
                    // lambda — the triple product recovers <X, model>.
                    self.fit_inner_from_mttkrp(dev, factors, lambda, m, last_mode)
                } else {
                    let nnz = x.nnz() as f64;
                    dev.launch(
                        "fit_inner_product",
                        Phase::Other,
                        KernelClass::SparseGather,
                        KernelCost {
                            flops: nnz * (x.nmodes() + 1) as f64 * rank as f64,
                            bytes_read: nnz * ((x.nmodes() * 4) as f64 + 8.0),
                            bytes_written: 8.0,
                            gather_traffic: nnz * (x.nmodes() - 1) as f64 * rank as f64 * 8.0,
                            parallel_work: nnz,
                            serial_steps: 1.0,
                            working_set: factors.iter().map(|f| f.len() as f64 * 8.0).sum(),
                        },
                        || {
                            let model = Ktensor::new(factors.to_vec(), lambda.to_vec());
                            model.inner_with(x)
                        },
                    )
                };
                let x_sq = x.norm_sq();
                let res = (x_sq - 2.0 * inner + model_sq).max(0.0);
                if x_sq > 0.0 {
                    1.0 - (res / x_sq).sqrt()
                } else {
                    1.0
                }
            }
            Source::Streamed(meta) => {
                // Only the MTTKRP-reuse shortcut is possible: the tensor
                // is not in memory to traverse, and the driver always has
                // the last panel by fit time. `||X||²` came from the scan,
                // summed in file order — the same order the in-core
                // serial reduction uses.
                let (m, last_mode) =
                    last_m.expect("streamed fit requires the last-mode MTTKRP panel");
                let inner = self.fit_inner_from_mttkrp(dev, factors, lambda, m, last_mode);
                let x_sq = meta.norm_sq;
                let res = (x_sq - 2.0 * inner + model_sq).max(0.0);
                if x_sq > 0.0 {
                    1.0 - (res / x_sq).sqrt()
                } else {
                    1.0
                }
            }
            Source::Dense(x) => {
                // Direct residual over all cells (small tensors only).
                let model = Ktensor::new(factors.to_vec(), lambda.to_vec());
                let mut res = 0.0;
                let shape = x.shape().to_vec();
                let mut coord = vec![0usize; shape.len()];
                let c32: &mut Vec<u32> = &mut vec![0u32; shape.len()];
                for _ in 0..x.len() {
                    for (a, &b) in c32.iter_mut().zip(&coord) {
                        *a = b as u32;
                    }
                    let d = x.get(&coord) - model.value_at(c32);
                    res += d * d;
                    for m in (0..shape.len()).rev() {
                        coord[m] += 1;
                        if coord[m] < shape[m] {
                            break;
                        }
                        coord[m] = 0;
                    }
                }
                let x_sq = x.norm_sq();
                if x_sq > 0.0 {
                    1.0 - (res / x_sq).sqrt()
                } else {
                    1.0
                }
            }
        }
    }

    /// `<X, model> = sum_{i,r} lambda_r * H[i,r] * M[i,r]` from the last
    /// MTTKRP panel `m` of mode `last_mode` — SPLATT's `O(I R)` fit
    /// shortcut, metered as a `Reduce`-class kernel.
    fn fit_inner_from_mttkrp(
        &self,
        dev: &Device,
        factors: &[Mat],
        lambda: &[f64],
        m: &Mat,
        last_mode: usize,
    ) -> f64 {
        let rank = self.cfg.rank;
        let h = &factors[last_mode];
        let elems = (h.rows() * rank) as f64;
        dev.launch(
            "fit_inner_from_mttkrp",
            Phase::Other,
            KernelClass::Reduce,
            KernelCost {
                flops: 3.0 * elems,
                bytes_read: 2.0 * elems * 8.0,
                bytes_written: 8.0,
                gather_traffic: 0.0,
                parallel_work: elems,
                serial_steps: 1.0,
                working_set: 2.0 * elems * 8.0,
            },
            || {
                let mut acc = 0.0;
                for i in 0..h.rows() {
                    let (hr, mr) = (h.row(i), m.row(i));
                    for r in 0..rank {
                        acc += lambda[r] * hr[r] * mr[r];
                    }
                }
                acc
            },
        )
    }

    /// A stable description of everything that determines the iteration
    /// trajectory, recorded in checkpoints so a resume with a different
    /// tensor/rank/seed/scheme is rejected instead of silently corrupting
    /// results. Deliberately excludes `max_iters`, so a resumed run may
    /// extend the iteration budget.
    pub(crate) fn fingerprint(&self) -> String {
        let dims: Vec<String> = self.shape().iter().map(|d| d.to_string()).collect();
        format!(
            "shape={} nnz={} rank={} seed={} update={} format={:?}",
            dims.join("x"),
            self.nnz(),
            self.cfg.rank,
            self.cfg.seed,
            self.cfg.update.name(),
            self.cfg.format
        )
    }

    /// Runs the factorization on a device.
    ///
    /// Performs the one-time host-to-device transfers (tensor + factors),
    /// then iterates Algorithm 1 until `max_iters` or the fit tolerance.
    /// Device faults and numerical breakdowns are healed according to
    /// [`AuntfConfig::recovery`]; because every retry replays the same
    /// deterministic computation from restored state, a recovered run
    /// produces **bitwise-identical** factors to a fault-free one (only a
    /// genuine non-positive-definite Gram, which boosts rho, changes the
    /// numerics).
    ///
    /// # Errors
    /// [`FactorizeError::InvalidConfig`] for zero rank / empty tensors;
    /// the other variants when the recovery budget is exhausted.
    pub fn factorize(&self, dev: &Device) -> Result<FactorizeOutput, FactorizeError> {
        self.run(dev, None)
    }

    /// Like [`factorize`](Self::factorize), but snapshots the loop state
    /// into `ckpt.dir` every `ckpt.every` outer iterations. With `resume`,
    /// restarts from the newest valid snapshot (corrupt snapshots fall
    /// back to older ones); the resumed trajectory is bitwise-identical to
    /// an uninterrupted run.
    ///
    /// # Errors
    /// As [`factorize`](Self::factorize), plus
    /// [`FactorizeError::Checkpoint`] for snapshot I/O failures or a
    /// fingerprint mismatch on resume.
    pub fn factorize_checkpointed(
        &self,
        dev: &Device,
        ckpt: &CheckpointConfig,
        resume: bool,
    ) -> Result<FactorizeOutput, FactorizeError> {
        self.run(dev, Some((ckpt, resume)))
    }

    fn run(
        &self,
        dev: &Device,
        ckpt: Option<(&CheckpointConfig, bool)>,
    ) -> Result<FactorizeOutput, FactorizeError> {
        let _region = cstf_telemetry::HeapRegion::enter("factorize");
        let shape = self.shape();
        let rank = self.cfg.rank;
        let nmodes = shape.len();
        let policy = self.cfg.recovery;
        let mut report = RecoveryReport::default();

        if rank == 0 {
            return Err(FactorizeError::InvalidConfig("rank must be at least 1".into()));
        }
        if nmodes == 0 {
            return Err(FactorizeError::InvalidConfig("tensor must have at least one mode".into()));
        }
        if self.nnz() == 0 {
            return Err(FactorizeError::InvalidConfig(
                "tensor has no stored values (empty tensor)".into(),
            ));
        }

        // Restore from the newest valid snapshot, if asked to.
        let fingerprint = self.fingerprint();
        let restored: Option<BatchState> = match ckpt {
            Some((cc, true)) => checkpoint::load_latest_batch(&cc.dir, &fingerprint)
                .map_err(|e| FactorizeError::Checkpoint(e.to_string()))?,
            _ => None,
        };

        let (mut factors, mut lambda, mut fits, mut duals, start_iter) = match restored {
            Some(st) => {
                if st.factors.len() != nmodes || st.lambda.len() != rank {
                    return Err(FactorizeError::Checkpoint(format!(
                        "snapshot shape mismatch: {} factor(s), lambda of {}",
                        st.factors.len(),
                        st.lambda.len()
                    )));
                }
                (st.factors, st.lambda, st.fits, st.duals, st.completed_iters)
            }
            None => (
                seeded_factors(&shape, rank, self.cfg.seed),
                vec![1.0f64; rank],
                Vec::with_capacity(self.cfg.max_iters),
                shape.iter().map(|&d| Mat::zeros(d, rank)).collect(),
                0,
            ),
        };

        // One-time transfers: the paper's framework is fully GPU-resident,
        // paying these once instead of per-iteration. Link faults retry
        // with modeled backoff. A tiled run has no up-front tensor copy —
        // tiles stream per sweep, metered inside the MTTKRP loop.
        let tiled = matches!(self.engine, Engine::Tiled(_));
        if !tiled {
            transfer_with_retry(dev, "h2d_tensor", self.tensor_bytes(), &policy, &mut report)?;
        }
        transfer_with_retry(
            dev,
            "h2d_factors",
            factors.iter().map(|f| f.len() as f64 * 8.0).sum::<f64>(),
            &policy,
            &mut report,
        )?;

        // Persistent workspaces: everything the outer loop touches is
        // allocated here (or grown during the first warm-up iteration), so
        // steady-state iterations perform zero heap allocation.
        let mut gram_partials = PartialBuffers::new();
        let mut grams: Vec<Mat> = vec![Mat::zeros(rank, rank); nmodes];
        for (g, h) in grams.iter_mut().zip(&factors) {
            self.gram_guarded(dev, h, g, &mut gram_partials, &policy, &mut report, 0)?;
        }

        // Per-mode ADMM state (dual variables persist across outer
        // iterations, as in SPLATT's AO-ADMM). Restored duals carry over.
        let mut workspaces: Vec<AdmmWorkspace> =
            shape.iter().map(|&d| AdmmWorkspace::new(d, rank)).collect();

        // Per-mode MTTKRP outputs (kept so the fit shortcut can reuse the
        // last one without moving or reallocating it), one shared MTTKRP
        // scratch workspace, and the small reusable matrices.
        let mut m_bufs: Vec<Mat> = shape.iter().map(|&d| Mat::zeros(d, rank)).collect();
        // Tiled runs stage each tile's kernel output separately from the
        // committed panel (format kernels zero their whole buffer, which
        // would clobber previously committed tiles). In-core runs pay
        // nothing for this.
        let mut tile_stages: Vec<Mat> =
            if tiled { shape.iter().map(|&d| Mat::zeros(d, rank)).collect() } else { Vec::new() };
        let mut tiling = TilingReport::default();
        if let Engine::Tiled(te) = &self.engine {
            tiling.tiles = te.tiles;
        }
        let mut mtt_ws = MttkrpWorkspace::new();
        let mut s = Mat::zeros(rank, rank);
        let mut had = Mat::zeros(rank, rank);
        let mut norm_scratch: Vec<f64> = Vec::new();

        // Pre-fault snapshots of the factor/dual pair being updated, so a
        // faulted ADMM call can be retried from clean state. Allocated only
        // when a fault plan is attached — a fault-free run pays nothing.
        let mut snaps: Option<Vec<(Mat, Mat)>> = dev
            .fault_plan()
            .map(|_| shape.iter().map(|&d| (Mat::zeros(d, rank), Mat::zeros(d, rank))).collect());

        let mut convergence = ConvergenceLog::with_capacity(self.cfg.max_iters, nmodes);
        let mut converged = false;
        let mut iters = start_iter;
        // Sticky fused-kernel degradation (graceful fallback to the
        // bitwise-identical multi-kernel path when the fused sweep keeps
        // faulting).
        let mut degraded = false;
        let mut fused_faults_in_a_row = 0u32;

        for outer in start_iter..self.cfg.max_iters {
            let _iter_span = Span::enter("outer_iteration");
            iters = outer + 1;
            let mut last_m: Option<usize> = None;
            for mode in 0..nmodes {
                let _mode_span = Span::enter_mode("mode_update", mode);
                // Key every launch in this body under the mode being
                // updated — the (phase, kernel, mode) attribution the
                // roofline table and perf baselines are indexed by.
                dev.set_mode(Some(mode));
                self.hadamard_guarded(dev, &grams, mode, &mut s, &policy, &mut report)?;
                if let Engine::Tiled(te) = &self.engine {
                    tiled_mttkrp_guarded(
                        dev,
                        te,
                        &shape,
                        &factors,
                        mode,
                        rank,
                        &mut m_bufs[mode],
                        &mut tile_stages[mode],
                        &mut mtt_ws,
                        &policy,
                        &mut report,
                        outer,
                        &mut tiling,
                    )?;
                } else {
                    self.mttkrp_guarded(
                        dev,
                        &factors,
                        mode,
                        &mut m_bufs[mode],
                        &mut mtt_ws,
                        &policy,
                        &mut report,
                        outer,
                    )?;
                }
                let m = &m_bufs[mode];

                match &self.cfg.update {
                    UpdateMethod::Admm(cfg) => {
                        let mut cfg_now = *cfg;
                        if degraded {
                            cfg_now.single_sweep = false;
                        }
                        let mut attempts = 0u32;
                        let mut rescales = 0u32;
                        let stats = loop {
                            if let Some(snaps) = snaps.as_mut() {
                                let (snap_h, snap_u) = &mut snaps[mode];
                                snap_h.copy_from(&factors[mode]);
                                snap_u.copy_from(&duals[mode]);
                            }
                            match admm_update(
                                dev,
                                &cfg_now,
                                m,
                                &s,
                                &mut factors[mode],
                                &mut duals[mode],
                                &mut workspaces[mode],
                            ) {
                                Ok(stats) => {
                                    fused_faults_in_a_row = 0;
                                    break stats;
                                }
                                Err(AdmmError::Fault(fault)) => {
                                    if let Some(snaps) = snaps.as_ref() {
                                        let (snap_h, snap_u) = &snaps[mode];
                                        factors[mode].copy_from(snap_h);
                                        duals[mode].copy_from(snap_u);
                                    }
                                    if cfg_now.single_sweep && fault.kernel == "fused_inner_sweep" {
                                        fused_faults_in_a_row += 1;
                                        if fused_faults_in_a_row >= policy.fused_fault_threshold {
                                            // Permanently fall back to the
                                            // unfused path: bitwise-identical
                                            // numerics, more launches.
                                            degraded = true;
                                            cfg_now.single_sweep = false;
                                            report.degraded_to_unfused = true;
                                        }
                                    }
                                    attempts += 1;
                                    if attempts > policy.max_retries {
                                        return Err(FactorizeError::Fault { fault, attempts });
                                    }
                                    report.transient_retries += 1;
                                    report.total_backoff_s += backoff_s(&policy, attempts);
                                }
                                Err(AdmmError::Cholesky(error)) => {
                                    // The factorization is the first kernel,
                                    // so H and U are untouched — no restore.
                                    rescales += 1;
                                    report.cholesky_retries += 1;
                                    if rescales > policy.max_rho_rescales {
                                        return Err(FactorizeError::Cholesky {
                                            error,
                                            mode,
                                            rescales: rescales - 1,
                                        });
                                    }
                                    match error.source {
                                        LinalgError::NonFinite => {
                                            // Corrupted S: recompute it from
                                            // the (guarded, finite) Grams.
                                            // Deterministic, so no numerical
                                            // drift.
                                            report.nan_events += 1;
                                            self.hadamard_guarded(
                                                dev,
                                                &grams,
                                                mode,
                                                &mut s,
                                                &policy,
                                                &mut report,
                                            )?;
                                        }
                                        LinalgError::NotPositiveDefinite { .. } => {
                                            // Genuinely indefinite S: boost
                                            // rho and refactor.
                                            cfg_now.rho_scale *= policy.rho_rescale;
                                        }
                                    }
                                }
                                Err(AdmmError::NonFinite { .. }) => {
                                    // The inputs were finite (guards) and
                                    // injected corruption is caught above,
                                    // so this is a genuine numerical
                                    // breakdown — not recoverable by replay.
                                    return Err(FactorizeError::NonFinite {
                                        stage: "admm_update",
                                        mode,
                                        outer_iter: outer,
                                    });
                                }
                            }
                        };
                        convergence.log_mode(
                            mode,
                            stats.iters,
                            Some(stats.primal_residual),
                            Some(stats.dual_residual),
                            Some(stats.rho),
                        );
                    }
                    UpdateMethod::Mu(cfg) => {
                        mu_update(dev, cfg, m, &s, &mut factors[mode]);
                        convergence.log_mode(mode, cfg.inner_iters, None, None, None);
                    }
                    UpdateMethod::Hals(cfg) => {
                        hals_update(dev, cfg, m, &s, &mut factors[mode]);
                        convergence.log_mode(mode, cfg.inner_iters, None, None, None);
                    }
                }

                self.normalize(dev, &mut factors[mode], &mut lambda, &mut norm_scratch);
                self.gram_guarded(
                    dev,
                    &factors[mode],
                    &mut grams[mode],
                    &mut gram_partials,
                    &policy,
                    &mut report,
                    outer,
                )?;
                if mode == nmodes - 1 {
                    last_m = Some(mode);
                }
            }
            // Fit checks and convergence bookkeeping are outside any mode.
            dev.set_mode(None);

            let mut iter_fit = None;
            let mut stop = false;
            if self.cfg.compute_fit {
                let fit = self.fit(
                    dev,
                    &factors,
                    &lambda,
                    &grams,
                    last_m.map(|mode| (&m_bufs[mode], mode)),
                    &mut had,
                );
                iter_fit = Some(fit);
                let improved = fits.last().map_or(f64::INFINITY, |&p| fit - p);
                fits.push(fit);
                if self.cfg.fit_tol > 0.0 && improved.abs() < self.cfg.fit_tol {
                    converged = true;
                    stop = true;
                }
            }
            convergence.end_iteration(iter_fit);
            dev.mark("outer_iteration");

            if let Some((cc, _)) = ckpt {
                if (outer + 1) % cc.every == 0 || stop || outer + 1 == self.cfg.max_iters {
                    let _ckpt_region = cstf_telemetry::HeapRegion::enter("checkpoint");
                    checkpoint::save_batch(
                        &cc.dir,
                        &BatchView {
                            fingerprint: &fingerprint,
                            completed_iters: outer + 1,
                            lambda: &lambda,
                            fits: &fits,
                            factors: &factors,
                            duals: &duals,
                        },
                    )
                    .map_err(|e| FactorizeError::Checkpoint(e.to_string()))?;
                }
            }
            if stop {
                break;
            }
        }

        // Result back to the host.
        transfer_with_retry(
            dev,
            "d2h_factors",
            factors.iter().map(|f| f.len() as f64 * 8.0).sum::<f64>(),
            &policy,
            &mut report,
        )?;

        Ok(FactorizeOutput {
            model: Ktensor::new(factors, lambda),
            iters,
            fits,
            converged,
            convergence,
            recovery: report,
            elasticity: ElasticityReport::default(),
            tiling,
        })
    }

    /// MTTKRP with the recovery policy applied: transient launch faults
    /// retry with modeled backoff, and (when `nan_guard` is on) a
    /// non-finite output panel is recomputed — the kernel is deterministic,
    /// so the recompute is exact.
    #[allow(clippy::too_many_arguments)]
    fn mttkrp_guarded(
        &self,
        dev: &Device,
        factors: &[Mat],
        mode: usize,
        out: &mut Mat,
        ws: &mut MttkrpWorkspace,
        policy: &RecoveryPolicy,
        report: &mut RecoveryReport,
        outer: usize,
    ) -> Result<(), FactorizeError> {
        let mut attempts = 0u32;
        loop {
            match self.mttkrp_into(dev, factors, mode, out, ws) {
                Ok(()) => {
                    if policy.nan_guard && !out.all_finite() {
                        report.nan_events += 1;
                        attempts += 1;
                        if attempts > policy.max_retries {
                            return Err(FactorizeError::NonFinite {
                                stage: "mttkrp",
                                mode,
                                outer_iter: outer,
                            });
                        }
                        continue;
                    }
                    return Ok(());
                }
                Err(fault) => {
                    attempts += 1;
                    if attempts > policy.max_retries {
                        return Err(FactorizeError::Fault { fault, attempts });
                    }
                    report.transient_retries += 1;
                    report.total_backoff_s += backoff_s(policy, attempts);
                }
            }
        }
    }

    /// Gram computation with the same guard as
    /// [`mttkrp_guarded`](Self::mttkrp_guarded).
    #[allow(clippy::too_many_arguments)]
    fn gram_guarded(
        &self,
        dev: &Device,
        h: &Mat,
        out: &mut Mat,
        partials: &mut PartialBuffers,
        policy: &RecoveryPolicy,
        report: &mut RecoveryReport,
        outer: usize,
    ) -> Result<(), FactorizeError> {
        let mut attempts = 0u32;
        loop {
            match self.compute_gram_into(dev, h, out, partials) {
                Ok(()) => {
                    if policy.nan_guard && !out.all_finite() {
                        report.nan_events += 1;
                        attempts += 1;
                        if attempts > policy.max_retries {
                            return Err(FactorizeError::NonFinite {
                                stage: "gram_syrk",
                                mode: 0,
                                outer_iter: outer,
                            });
                        }
                        continue;
                    }
                    return Ok(());
                }
                Err(fault) => {
                    attempts += 1;
                    if attempts > policy.max_retries {
                        return Err(FactorizeError::Fault { fault, attempts });
                    }
                    report.transient_retries += 1;
                    report.total_backoff_s += backoff_s(policy, attempts);
                }
            }
        }
    }

    /// Hadamard-of-Grams with launch-fault retry only: output corruption
    /// deliberately flows into the Cholesky factorization, whose typed
    /// error drives the recompute/rescale arm of the recovery ladder.
    fn hadamard_guarded(
        &self,
        dev: &Device,
        grams: &[Mat],
        mode: usize,
        out: &mut Mat,
        policy: &RecoveryPolicy,
        report: &mut RecoveryReport,
    ) -> Result<(), FactorizeError> {
        let mut attempts = 0u32;
        loop {
            match self.hadamard_grams_into(dev, grams, mode, out) {
                Ok(()) => return Ok(()),
                Err(fault) => {
                    attempts += 1;
                    if attempts > policy.max_retries {
                        return Err(FactorizeError::Fault { fault, attempts });
                    }
                    report.transient_retries += 1;
                    report.total_backoff_s += backoff_s(policy, attempts);
                }
            }
        }
    }
}

/// Modeled exponential backoff for the `attempt`-th retry (1-based).
/// Simulated time only — never slept.
pub(crate) fn backoff_s(policy: &RecoveryPolicy, attempt: u32) -> f64 {
    policy.backoff_base_s * f64::powi(2.0, attempt.min(20) as i32 - 1)
}

pub(crate) fn transfer_with_retry(
    dev: &Device,
    name: &'static str,
    bytes: f64,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
) -> Result<(), FactorizeError> {
    let mut attempts = 0u32;
    loop {
        match dev.try_transfer(name, bytes) {
            Ok(()) => return Ok(()),
            Err(fault) => {
                attempts += 1;
                // Device loss is persistent — retrying the transfer cannot
                // help; surface it at once for the group-level ladder.
                if fault.kind == cstf_device::FaultKind::DeviceLoss || attempts > policy.max_retries
                {
                    return Err(FactorizeError::Fault { fault, attempts });
                }
                report.transfer_retries += 1;
                report.total_backoff_s += backoff_s(policy, attempts);
            }
        }
    }
}

/// Deterministic strictly-positive random factors (SplitMix64-based, so the
/// core crate needs no RNG dependency).
pub fn seeded_factors(shape: &[usize], rank: usize, seed: u64) -> Vec<Mat> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    shape.iter().map(|&d| Mat::from_fn(d, rank, |_, _| 0.05 + 0.95 * next())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstf_device::DeviceSpec;

    /// A fully-observed planted non-negative tensor: every cell of the
    /// rank-`rank` model is stored, so an exact fit of ~1.0 is achievable —
    /// the strongest correctness check for the driver.
    fn planted_full(shape: &[usize], rank: usize, seed: u64) -> SparseTensor {
        let truth = seeded_factors(shape, rank, seed ^ 0xABCD);
        let model = Ktensor::from_factors(truth);
        let mut idx = vec![Vec::new(); shape.len()];
        let mut vals = Vec::new();
        let mut coord = vec![0u32; shape.len()];
        let cells: usize = shape.iter().product();
        for _ in 0..cells {
            vals.push(model.value_at(&coord).max(1e-9));
            for (m, &c) in coord.iter().enumerate() {
                idx[m].push(c);
            }
            for m in (0..shape.len()).rev() {
                coord[m] += 1;
                if (coord[m] as usize) < shape[m] {
                    break;
                }
                coord[m] = 0;
            }
        }
        SparseTensor::new(shape.to_vec(), idx, vals)
    }

    /// A sparsely-observed planted tensor (realistic STF input; the exact
    /// model is not recoverable, but the fit must still improve).
    fn planted(shape: &[usize], nnz: usize, rank: usize, seed: u64) -> SparseTensor {
        let truth = seeded_factors(shape, rank, seed ^ 0xABCD);
        let model = Ktensor::from_factors(truth);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut seen = std::collections::HashSet::new();
        let mut idx = vec![Vec::new(); shape.len()];
        let mut vals = Vec::new();
        while vals.len() < nnz {
            let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
            if !seen.insert(c.clone()) {
                continue;
            }
            vals.push(model.value_at(&c).max(1e-6));
            for (m, &ci) in c.iter().enumerate() {
                idx[m].push(ci);
            }
        }
        SparseTensor::new(shape.to_vec(), idx, vals)
    }

    fn base_cfg() -> AuntfConfig {
        AuntfConfig { rank: 4, max_iters: 15, seed: 3, ..Default::default() }
    }

    #[test]
    fn fit_improves_over_iterations_admm() {
        let x = planted(&[20, 18, 16], 1200, 4, 1);
        let auntf = Auntf::new(x, base_cfg());
        let dev = Device::new(DeviceSpec::h100());
        let out = auntf.factorize(&dev).unwrap();
        assert_eq!(out.iters, 15);
        assert!(out.recovery.is_clean(), "fault-free run took recovery actions");
        let first = out.fits[0];
        let last = *out.fits.last().unwrap();
        assert!(last > first, "fit did not improve: {first} -> {last}");
    }

    #[test]
    fn admm_recovers_fully_observed_planted_model() {
        let x = planted_full(&[12, 10, 8], 3, 21);
        let cfg = AuntfConfig { rank: 3, max_iters: 60, seed: 5, ..Default::default() };
        let out = Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        let last = *out.fits.last().unwrap();
        assert!(last > 0.95, "fully-observed planted model should fit ~1, got {last}");
    }

    #[test]
    fn factors_are_nonnegative_with_admm() {
        let x = planted(&[15, 12, 10], 600, 3, 2);
        let auntf = Auntf::new(x, AuntfConfig { rank: 3, ..base_cfg() });
        let out = auntf.factorize(&Device::new(DeviceSpec::a100())).unwrap();
        for f in &out.model.factors {
            assert!(f.is_nonnegative(1e-12));
        }
        assert!(out.model.lambda.iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn all_formats_give_equivalent_fits() {
        let x = planted(&[18, 14, 12], 900, 4, 3);
        let mut fits = Vec::new();
        for format in [
            TensorFormat::Coo,
            TensorFormat::Csf,
            TensorFormat::CsfOne,
            TensorFormat::HiCoo,
            TensorFormat::Alto,
            TensorFormat::Blco,
        ] {
            let cfg = AuntfConfig { format, max_iters: 8, ..base_cfg() };
            let out =
                Auntf::new(x.clone(), cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
            fits.push((format, *out.fits.last().unwrap()));
        }
        let reference = fits[0].1;
        for (format, fit) in &fits[1..] {
            assert!(
                (fit - reference).abs() < 1e-6,
                "{format:?} fit {fit} differs from COO fit {reference}"
            );
        }
    }

    #[test]
    fn mu_and_hals_also_improve_fit() {
        let x = planted_full(&[10, 9, 8], 3, 4);
        for update in
            [UpdateMethod::Mu(MuConfig::default()), UpdateMethod::Hals(HalsConfig::default())]
        {
            let cfg = AuntfConfig { rank: 3, update, max_iters: 40, ..base_cfg() };
            let out =
                Auntf::new(x.clone(), cfg).factorize(&Device::new(DeviceSpec::a100())).unwrap();
            let first = out.fits[0];
            let last = *out.fits.last().unwrap();
            assert!(last >= first - 1e-9, "{} regressed: {first} -> {last}", out.iters);
            assert!(last > 0.8, "fit too low: {last}");
            for f in &out.model.factors {
                assert!(f.is_nonnegative(0.0));
            }
        }
    }

    #[test]
    fn phases_are_all_metered() {
        let x = planted(&[12, 10, 8], 300, 3, 5);
        let auntf = Auntf::new(x, AuntfConfig { rank: 3, max_iters: 2, ..base_cfg() });
        let dev = Device::new(DeviceSpec::h100());
        auntf.factorize(&dev).unwrap();
        for phase in [Phase::Gram, Phase::Mttkrp, Phase::Update, Phase::Normalize, Phase::Transfer]
        {
            assert!(dev.phase_totals(phase).launches > 0, "phase {phase:?} was never exercised");
        }
    }

    #[test]
    fn fast_fit_shortcut_matches_exact_fit() {
        // The driver computes fit via the MTTKRP-reuse shortcut; the
        // Ktensor computes it directly in O(nnz R). They must agree.
        let x = planted(&[18, 15, 12], 700, 4, 31);
        let out =
            Auntf::new(x.clone(), base_cfg()).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        let exact = out.model.fit(&x);
        let reported = *out.fits.last().unwrap();
        assert!((exact - reported).abs() < 1e-9, "shortcut fit {reported} != exact fit {exact}");
    }

    #[test]
    fn fit_tolerance_stops_early() {
        let x = planted(&[14, 12, 10], 500, 3, 6);
        let cfg = AuntfConfig { rank: 3, max_iters: 200, fit_tol: 1e-7, ..base_cfg() };
        let out = Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::a100())).unwrap();
        assert!(out.converged);
        assert!(out.iters < 200);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = planted(&[10, 10, 10], 300, 3, 7);
        let cfg = AuntfConfig { rank: 3, max_iters: 5, format: TensorFormat::Csf, ..base_cfg() };
        let a =
            Auntf::new(x.clone(), cfg.clone()).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        let b = Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        assert_eq!(a.fits, b.fits);
    }

    #[test]
    fn convergence_log_matches_solver() {
        let x = planted(&[14, 12, 10], 500, 3, 9);
        let cfg = AuntfConfig { rank: 3, max_iters: 6, ..base_cfg() };
        let out = Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        let records = out.convergence.records();
        assert_eq!(records.len(), out.iters);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.iter as usize, i);
            assert_eq!(rec.fit, Some(out.fits[i]), "iteration {i} fit mismatch");
            assert_eq!(rec.rel_error, Some(1.0 - out.fits[i]));
            assert_eq!(rec.modes.len(), 3, "one mode row per mode visit");
            for (m, row) in rec.modes.iter().enumerate() {
                assert_eq!(row.mode as usize, m);
                assert!(row.inner_iters >= 1, "ADMM ran at least one inner iteration");
                assert!(row.primal_residual.unwrap() >= 0.0);
                assert!(row.dual_residual.unwrap() >= 0.0);
                assert!(row.rho.unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn convergence_log_mu_reports_configured_inner_iters() {
        let x = planted_full(&[10, 9, 8], 3, 10);
        let update = UpdateMethod::Mu(MuConfig { inner_iters: 4, ..Default::default() });
        let cfg = AuntfConfig { rank: 3, update, max_iters: 3, ..base_cfg() };
        let out = Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::a100())).unwrap();
        for rec in out.convergence.records() {
            for row in &rec.modes {
                assert_eq!(row.inner_iters, 4);
                assert_eq!(row.primal_residual, None, "MU has no ADMM residuals");
                assert_eq!(row.dual_residual, None);
            }
        }
    }

    #[test]
    fn convergence_log_without_fit_still_records_iterations() {
        let x = planted(&[10, 10, 10], 300, 3, 11);
        let cfg = AuntfConfig { rank: 3, max_iters: 4, compute_fit: false, ..base_cfg() };
        let out = Auntf::new(x, cfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        let records = out.convergence.records();
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.fit.is_none() && r.rel_error.is_none()));
    }

    #[test]
    fn dense_driver_runs_and_improves() {
        let shape = vec![8, 6, 5, 4];
        let truth = Ktensor::from_factors(seeded_factors(&shape, 2, 99));
        let x = DenseTensor::from_fn(shape.clone(), |c| {
            let c32: Vec<u32> = c.iter().map(|&v| v as u32).collect();
            truth.value_at(&c32)
        });
        let cfg = AuntfConfig { rank: 2, max_iters: 10, ..base_cfg() };
        let auntf = Auntf::new_dense(x, cfg);
        let out = auntf.factorize(&Device::new(DeviceSpec::icelake_xeon())).unwrap();
        let last = *out.fits.last().unwrap();
        assert!(last > 0.8, "dense fit too low: {last}");
    }

    #[test]
    fn unconstrained_beats_or_matches_constrained_fit() {
        // Removing the constraint can only widen the feasible set.
        let x = planted(&[15, 12, 10], 600, 4, 8);
        let nn =
            Auntf::new(x.clone(), base_cfg()).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        let mut ucfg = base_cfg();
        ucfg.update = UpdateMethod::Admm(AdmmConfig {
            constraint: crate::prox::Constraint::Unconstrained,
            ..AdmmConfig::cuadmm()
        });
        let un = Auntf::new(x, ucfg).factorize(&Device::new(DeviceSpec::h100())).unwrap();
        let f_nn = *nn.fits.last().unwrap();
        let f_un = *un.fits.last().unwrap();
        assert!(f_un > f_nn - 0.05, "unconstrained fit {f_un} far below constrained {f_nn}");
    }
}
