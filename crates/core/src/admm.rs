//! ADMM update for one factor matrix — generic and cuADMM variants.
//!
//! This module implements Algorithm 2 (generic ADMM, cuBLAS-granularity
//! kernels with a triangular solve in the inner loop) and Algorithm 3
//! (cuADMM) of the paper. The two cuADMM optimizations are independently
//! switchable so the Figure 4 ablation can measure each:
//!
//! * **Operation fusion** (§4.3.1): `compute_auxiliary` folds
//!   `H_aux = M + rho * (H + U)` into one kernel (3IR reads + IR writes
//!   instead of 4IR + 2IR), `apply_proximity_operator` fuses the
//!   `H_aux - U` subtraction with the constraint projection, and
//!   `dual_update` reuses the `H - H_aux` difference for both the dual
//!   ascent and the primal-residual norm.
//! * **Pre-inversion** (§4.3.2): `(L L^T)^{-1}` is computed once outside
//!   the inner loop, replacing the serialized forward/backward triangular
//!   solves with a single GEMM per iteration.
//!
//! All four (fusion x pre-inversion) variants compute the same mathematics;
//! the fusion pairs are element-wise identical expressions (bitwise-equal
//! results), while pre-inversion differs only in floating-point rounding.
//! Property tests in `tests/` pin both equivalences.
//!
//! On top of operation fusion, [`AdmmConfig::single_sweep`] collapses the
//! entire fused inner iteration — auxiliary computation, solve, proximal
//! projection, dual ascent and all four residual reductions — into **one**
//! row-blocked parallel pass ([`fused_inner_sweep`]). Each row's `H`/`U`/`M`
//! panel is touched exactly once per inner iteration (two full-matrix sweeps
//! counting the write-back, versus ~6 for the fused multi-kernel path) and
//! the fork/join count drops from four per iteration to one. Because every
//! per-element expression is identical to the multi-kernel kernels and rows
//! are independent, `H` and `U` stay bitwise-equal; only the residual
//! *statistics* are summed in a different order.

use rayon::prelude::*;

use cstf_device::{Device, KernelClass, KernelCost, Phase};
use cstf_linalg::{simd, tuning, Cholesky, Mat};

use crate::prox::Constraint;
use crate::recovery::{AdmmError, CholeskyError};

/// Configuration of the ADMM update.
#[derive(Debug, Clone, Copy)]
pub struct AdmmConfig {
    /// Maximum inner iterations (the paper fixes 10 for all measurements).
    pub inner_iters: usize,
    /// Relative primal/dual residual tolerance for early exit; `0.0`
    /// disables early exit (fixed-iteration mode, as in the paper's
    /// performance runs).
    pub tol: f64,
    /// Enable the fused kernels (OF).
    pub operation_fusion: bool,
    /// Enable the explicit inverse + GEMM solve (PI).
    pub pre_inversion: bool,
    /// Collapse the fused inner iteration into a single row-blocked sweep
    /// (one kernel, one fork/join per inner iteration). Only takes effect
    /// when [`operation_fusion`](Self::operation_fusion) is on; results are
    /// bitwise-identical to the fused multi-kernel path.
    pub single_sweep: bool,
    /// Multiplier on the trace-derived penalty `rho = trace(S)/R`. The
    /// default `1.0` leaves the paper's formula bitwise-unchanged; the
    /// recovery policy boosts it when `S + rho*I` fails to factor (a
    /// genuinely indefinite `S`).
    pub rho_scale: f64,
    /// Constraint to impose.
    pub constraint: Constraint,
}

impl AdmmConfig {
    /// The paper's cuADMM: both optimizations on, non-negativity, 10 inner
    /// iterations. Executes the fused multi-kernel sequence the paper
    /// describes, so its modeled ablation stays in the Fig. 4 regime; see
    /// [`cuadmm_fused`](Self::cuadmm_fused) for the single-sweep extension.
    pub fn cuadmm() -> Self {
        Self {
            inner_iters: 10,
            tol: 0.0,
            operation_fusion: true,
            pre_inversion: true,
            single_sweep: false,
            rho_scale: 1.0,
            constraint: Constraint::NonNegative,
        }
    }

    /// cuADMM plus the single-sweep inner iteration: the whole fused update
    /// in one row-blocked pass per inner iteration. Bitwise-identical
    /// results; fewer kernel launches and genuinely less memory traffic
    /// than the paper's multi-kernel cuADMM, so its modeled speedup exceeds
    /// the Fig. 4 regime — it is a beyond-paper execution mode, not the
    /// reproduction target.
    pub fn cuadmm_fused() -> Self {
        Self { single_sweep: true, ..Self::cuadmm() }
    }

    /// The generic baseline ADMM (Algorithm 2): cuBLAS-style unfused
    /// kernels, triangular solve per iteration.
    pub fn generic() -> Self {
        Self { operation_fusion: false, pre_inversion: false, ..Self::cuadmm() }
    }

    /// Display label for ablation tables.
    pub fn variant_name(&self) -> &'static str {
        match (self.operation_fusion, self.pre_inversion) {
            (false, false) => "ADMM (generic)",
            (true, false) => "ADMM+OF",
            (false, true) => "ADMM+PI",
            (true, true) => "cuADMM (OF+PI)",
        }
    }
}

impl Default for AdmmConfig {
    fn default() -> Self {
        Self::cuadmm()
    }
}

/// Reusable buffers for the update (sized `I x R` plus `R x R` solver
/// state), so a steady-state [`admm_update`] performs zero heap allocation.
#[derive(Debug, Clone)]
pub struct AdmmWorkspace {
    h_aux: Mat,
    tmp: Mat,
    h_old: Mat,
    /// `S + rho*I`, rebuilt in place each call.
    sp: Mat,
    /// Persistent Cholesky factor, refactored in place each call.
    chol: Cholesky,
    /// Explicit `(S + rho*I)^{-1}` for the pre-inversion path.
    inv: Mat,
    /// Per-chunk row scratch (`nchunks x 3 x R`) for the single sweep.
    sweep: Vec<f64>,
}

impl AdmmWorkspace {
    /// Allocates buffers for an `I x R` factor.
    pub fn new(rows: usize, rank: usize) -> Self {
        Self {
            h_aux: Mat::zeros(rows, rank),
            tmp: Mat::zeros(rows, rank),
            h_old: Mat::zeros(rows, rank),
            sp: Mat::zeros(rank, rank),
            chol: Cholesky::identity(rank),
            inv: Mat::zeros(rank, rank),
            sweep: Vec::new(),
        }
    }
}

/// Outcome of one ADMM update call.
#[derive(Debug, Clone, Copy)]
pub struct AdmmStats {
    /// Inner iterations executed.
    pub iters: usize,
    /// Final relative primal residual `||H - H_aux||^2 / ||H||^2`.
    pub primal_residual: f64,
    /// Final relative dual residual `||H - H_old||^2 / ||U||^2`.
    pub dual_residual: f64,
    /// The penalty parameter `rho = trace(S) / R` used.
    pub rho: f64,
}

fn stream_cost(elems: usize, reads: f64, writes: f64, flops: f64) -> KernelCost {
    let e = elems as f64;
    KernelCost {
        flops: flops * e,
        bytes_read: reads * 8.0 * e,
        bytes_written: writes * 8.0 * e,
        gather_traffic: 0.0,
        parallel_work: e,
        serial_steps: 1.0,
        working_set: (reads + writes) * 8.0 * e,
    }
}

fn map2(out: &mut Mat, a: &Mat, b: &Mat, f: impl Fn(f64, f64) -> f64 + Sync) {
    let (o, x, y) = (out.as_mut_slice(), a.as_slice(), b.as_slice());
    if o.len() >= tuning::par_elems() {
        o.par_iter_mut().zip(x.par_iter().zip(y)).for_each(|(o, (&x, &y))| *o = f(x, y));
    } else {
        for (o, (&x, &y)) in o.iter_mut().zip(x.iter().zip(y)) {
            *o = f(x, y);
        }
    }
}

/// Streaming auxiliary kernel `out = M + rho * (H + U)` — the hot Stream
/// kernel of the fused path — routed through the lane-dispatched
/// [`simd::fused_aux`] body. Elementwise, so the parallel chunking cannot
/// change results; lane and scalar bodies are bitwise-identical.
fn compute_aux(out: &mut Mat, m: &Mat, h: &Mat, u: &Mat, rho: f64) {
    let (o, mv, hv, uv) = (out.as_mut_slice(), m.as_slice(), h.as_slice(), u.as_slice());
    if o.len() >= tuning::par_elems() {
        let cl = o.len().div_ceil(rayon::current_num_threads().max(1)).max(1);
        o.par_chunks_mut(cl)
            .zip(mv.par_chunks(cl).zip(hv.par_chunks(cl).zip(uv.par_chunks(cl))))
            .for_each(|(oc, (mc, (hc, uc)))| simd::fused_aux(oc, mc, hc, uc, rho));
    } else {
        simd::fused_aux(o, mv, hv, uv, rho);
    }
}

/// Row-wise proximity application for operators that couple a row's
/// entries (`H = prox_row(H_aux - U)`).
fn apply_rowwise(h: &mut Mat, aux: &Mat, u: &Mat, constraint: Constraint, rho: f64) {
    let r = h.cols().max(1);
    let body = |(i, hrow): (usize, &mut [f64])| {
        for (o, (&a, &uv)) in hrow.iter_mut().zip(aux.row(i).iter().zip(u.row(i))) {
            *o = a - uv;
        }
        constraint.prox_row(hrow, rho);
    };
    if h.len() >= tuning::par_elems() {
        h.as_mut_slice().par_chunks_exact_mut(r).enumerate().for_each(body);
    } else {
        h.as_mut_slice().chunks_exact_mut(r).enumerate().for_each(body);
    }
}

fn sum_sq(a: &Mat) -> f64 {
    cstf_linalg::fro_norm_sq(a)
}

fn sum_sq_diff(a: &Mat, b: &Mat) -> f64 {
    cstf_linalg::diff_norm_sq(a, b)
}

/// Runs the ADMM update for one mode: given the MTTKRP output `m` (`I x R`)
/// and the Hadamard-of-Grams matrix `s` (`R x R`), updates the primal
/// factor `h` and the dual variable `u` in place.
///
/// Every kernel is metered through `dev` under [`Phase::Update`].
///
/// # Errors
/// Returns [`AdmmError::Cholesky`] when `S + rho*I` fails to factor (an
/// indefinite or corrupted `S` — `h` and `u` are untouched in that case),
/// [`AdmmError::Fault`] when a kernel launch draws an injected device
/// fault (caller restores state and retries), and [`AdmmError::NonFinite`]
/// when the per-sweep residual sentinel catches NaN/Inf contamination.
///
/// # Panics
/// Panics on shape mismatches between `m`, `h`, `u` and `s`.
pub fn admm_update(
    dev: &Device,
    cfg: &AdmmConfig,
    m: &Mat,
    s: &Mat,
    h: &mut Mat,
    u: &mut Mat,
    ws: &mut AdmmWorkspace,
) -> Result<AdmmStats, AdmmError> {
    let (rows, rank) = (m.rows(), m.cols());
    assert_eq!((h.rows(), h.cols()), (rows, rank), "H shape mismatch");
    assert_eq!((u.rows(), u.cols()), (rows, rank), "U shape mismatch");
    assert_eq!((s.rows(), s.cols()), (rank, rank), "S must be R x R");
    assert_eq!((ws.h_aux.rows(), ws.h_aux.cols()), (rows, rank), "workspace shape mismatch");
    let elems = rows * rank;

    // rho = trace(S)/R with a floor to keep S + rho*I positive definite
    // even for degenerate (all-zero) Gram products. rho_scale = 1.0 leaves
    // the value bitwise-unchanged.
    let rho = cfg.rho_scale * (s.trace() / rank as f64).max(1e-12);

    // Cholesky factorization of S + rho*I (Algorithm 2/3, line 3), rebuilt
    // in place inside the workspace so no allocation hits the hot path.
    // A well-formed S is PSD, so S + rho*I is positive definite; failure
    // means corruption or rank deficiency and surfaces as a typed error
    // (h and u are untouched at this point).
    {
        let (sp, chol) = (&mut ws.sp, &mut ws.chol);
        dev.try_launch(
            "cholesky_factor",
            Phase::Update,
            KernelClass::Factor,
            KernelCost {
                flops: (rank * rank * rank) as f64 / 3.0,
                bytes_read: (rank * rank) as f64 * 8.0,
                bytes_written: (rank * rank) as f64 * 8.0,
                gather_traffic: 0.0,
                parallel_work: rank as f64,
                serial_steps: rank as f64,
                working_set: (rank * rank) as f64 * 8.0,
            },
            || {
                sp.copy_from(s);
                sp.add_diagonal(rho);
                chol.refactor(sp)
            },
        )?
        .map_err(|source| AdmmError::Cholesky(CholeskyError { source, rho }))?;
    }

    // Pre-inversion (Algorithm 3, line 4): explicit (L L^T)^{-1}, once.
    if cfg.pre_inversion {
        let (chol, inv) = (&ws.chol, &mut ws.inv);
        dev.try_launch(
            "cholesky_explicit_inverse",
            Phase::Update,
            KernelClass::Factor,
            KernelCost {
                flops: 2.0 * (rank * rank * rank) as f64,
                bytes_read: (rank * rank) as f64 * 8.0,
                bytes_written: (rank * rank) as f64 * 8.0,
                // One R x R inverse is launch-bound on a GPU (R columns
                // solve in parallel against the cached triangle).
                gather_traffic: 0.0,
                parallel_work: (rank * rank) as f64,
                serial_steps: 1.0,
                working_set: 2.0 * (rank * rank) as f64 * 8.0,
            },
            || chol.inverse_into(inv),
        )?;
    }

    let mut stats =
        AdmmStats { iters: 0, primal_residual: f64::INFINITY, dual_residual: f64::INFINITY, rho };

    if cfg.operation_fusion && cfg.single_sweep {
        // One kernel per inner iteration: the whole fused update in a
        // single row-blocked pass (reads M/H/U + the R x R inverse or
        // factor, writes H/U — nothing else touches memory).
        let sweep_cost = KernelCost {
            flops: (2.0 * rank as f64 + 14.0) * elems as f64,
            bytes_read: (3 * elems + rank * rank) as f64 * 8.0,
            bytes_written: 2.0 * elems as f64 * 8.0,
            gather_traffic: 0.0,
            // With pre-inversion each element is an independent dot
            // product (GEMM-shaped); without it the per-row triangular
            // solves halve the exploitable parallelism, as in trsm_fwd_bwd.
            parallel_work: if cfg.pre_inversion { elems as f64 } else { elems as f64 / 2.0 },
            serial_steps: 1.0,
            working_set: (5 * elems + rank * rank) as f64 * 8.0,
        };
        let class = if cfg.pre_inversion { KernelClass::Gemm } else { KernelClass::Trsm };
        for it in 0..cfg.inner_iters {
            stats.iters = it + 1;
            let (chol, inv, scratch) = (&ws.chol, &ws.inv, &mut ws.sweep);
            let inv = if cfg.pre_inversion { Some(inv) } else { None };
            let constraint = cfg.constraint;
            let (h_mut, u_mut) = (&mut *h, &mut *u);
            let (primal_sq, h_sq, dual_sq, u_sq) =
                dev.try_launch("fused_inner_sweep", Phase::Update, class, sweep_cost, || {
                    fused_inner_sweep(constraint, rho, m, chol, inv, h_mut, u_mut, scratch)
                })?;
            // NaN sentinel: the four residual sums already touch every
            // element of H and U, so this finiteness check is free.
            if !(primal_sq + h_sq + dual_sq + u_sq).is_finite() {
                return Err(AdmmError::NonFinite { inner_iter: it });
            }
            stats.primal_residual = if h_sq > 0.0 { primal_sq / h_sq } else { primal_sq };
            stats.dual_residual = if u_sq > 0.0 { dual_sq / u_sq } else { dual_sq };
            if cfg.tol > 0.0 && stats.primal_residual < cfg.tol && stats.dual_residual < cfg.tol {
                break;
            }
        }
        return Ok(stats);
    }

    // Per-sweep cost ledger (words/flops per factor element, unfused path).
    // It is calibrated so one generic inner iteration counts exactly the
    // paper's §3.3 closed forms — Eq. 3: W/iter = (19 + 2R)·IR flops and
    // Eq. 4: Q/iter = 22·IR words (+O(R²) for the solver triangle):
    //
    //   kernel                  flops  words   DRAM-traffic note
    //   copy_h_old                0      1     read hits L2 (H is the
    //                                          previous sweep's output);
    //                                          only the snapshot write lands
    //   dgeam_h_plus_u            3      3     cuBLAS DGEAM evaluates the
    //   dgeam_m_plus_rho_t        2      3     full alpha*A + beta*B form
    //   trsm_fwd_bwd             2R      3     read aux + triangle, write
    //                                          in place (§4.3.2 penalties
    //                                          live in the Trsm derate)
    //   dgeam_aux_minus_u         3      3
    //   prox_operator             1      2
    //   dgeam_h_minus_aux         1      3
    //   dgeam_dual_ascent         1      3
    //   reduce_primal_residual    2      0     tmp just streamed: resident
    //   reduce_h_norm             2      0     H resident since prox
    //   reduce_dual_residual      4      1     H/U resident; only the cold
    //                                          H_old snapshot pays DRAM
    //   -------------------------------------
    //   total               19 + 2R     22     = Eqs. 3–4
    //
    // `cstf analyze` and the eq345_intensity bench pin the measured totals
    // against these closed forms within 5%.
    for it in 0..cfg.inner_iters {
        stats.iters = it + 1;

        // H_old <- H (for the dual residual; Algorithm 2 line 5). The read
        // is served from cache (see ledger above): 1 word to DRAM.
        dev.try_launch(
            "copy_h_old",
            Phase::Update,
            KernelClass::Stream,
            stream_cost(elems, 0.0, 1.0, 0.0),
            || ws.h_old.copy_from(h),
        )?;

        // --- auxiliary variable H_aux = M + rho * (H + U) ---
        if cfg.operation_fusion {
            let (h_aux, h_ref, u_ref) = (&mut ws.h_aux, &*h, &*u);
            dev.try_launch(
                "compute_auxiliary",
                Phase::Update,
                KernelClass::Stream,
                stream_cost(elems, 3.0, 1.0, 3.0),
                || compute_aux(h_aux, m, h_ref, u_ref, rho),
            )?;
        } else {
            // DGEAM tmp = H + U, then DGEAM H_aux = M + rho * tmp. cuBLAS
            // DGEAM always evaluates alpha*A + beta*B (2 multiplies + 1
            // add per element), so the pure-add call still costs 3 flops.
            let (tmp, h_ref, u_ref) = (&mut ws.tmp, &*h, &*u);
            dev.try_launch(
                "dgeam_h_plus_u",
                Phase::Update,
                KernelClass::Stream,
                stream_cost(elems, 2.0, 1.0, 3.0),
                || map2(tmp, h_ref, u_ref, |h, u| h + u),
            )?;
            let (h_aux, tmp_ref) = (&mut ws.h_aux, &ws.tmp);
            dev.try_launch(
                "dgeam_m_plus_rho_t",
                Phase::Update,
                KernelClass::Stream,
                stream_cost(elems, 2.0, 1.0, 2.0),
                || map2(h_aux, m, tmp_ref, |m, t| m + rho * t),
            )?;
        }

        // --- solve (S + rho I) X^T = H_aux^T ---
        if cfg.pre_inversion {
            // GEMM against the precomputed inverse (Algorithm 3 line 7).
            let (tmp, h_aux_ref, inv) = (&mut ws.tmp, &ws.h_aux, &ws.inv);
            dev.try_launch(
                "dgemm_apply_inverse",
                Phase::Update,
                KernelClass::Gemm,
                KernelCost {
                    flops: 2.0 * elems as f64 * rank as f64,
                    bytes_read: (elems + rank * rank) as f64 * 8.0,
                    bytes_written: elems as f64 * 8.0,
                    gather_traffic: 0.0,
                    parallel_work: elems as f64,
                    serial_steps: 1.0,
                    working_set: (2 * elems + rank * rank) as f64 * 8.0,
                },
                || cstf_linalg::gemm(1.0, h_aux_ref, inv, 0.0, tmp),
            )?;
            // The GEMM wrote into `tmp`; swap it in as the new H_aux
            // (pointer swap — free, like cuBLAS writing to a second buffer).
            std::mem::swap(&mut ws.h_aux, &mut ws.tmp);
        } else {
            // Forward + backward triangular solves (Algorithm 2 line 6).
            // On the device each right-hand side solves independently
            // (I-way parallel), but the per-thread dependent chains keep
            // compute efficiency far below GEMM (the Trsm class's derate)
            // and halve the exploitable parallelism — the penalties
            // pre-inversion removes (§4.3.2). DRAM traffic is the Eq. 4
            // ledger: read aux + the cached triangle, write in place.
            let (h_aux, chol) = (&mut ws.h_aux, &ws.chol);
            dev.try_launch(
                "trsm_fwd_bwd",
                Phase::Update,
                KernelClass::Trsm,
                KernelCost {
                    flops: 2.0 * elems as f64 * rank as f64,
                    bytes_read: (2.0 * elems as f64 + (rank * rank) as f64) * 8.0,
                    bytes_written: elems as f64 * 8.0,
                    // Column-sweep DTRSM: each of the 2R steps is
                    // I x (remaining columns) wide — elems/2 on average.
                    gather_traffic: 0.0,
                    parallel_work: elems as f64 / 2.0,
                    serial_steps: 1.0,
                    working_set: (2 * elems + rank * rank) as f64 * 8.0,
                },
                || chol.solve_rows(h_aux),
            )?;
        }

        // --- constraint: H = prox(H_aux - U) ---
        if cfg.operation_fusion {
            let constraint = cfg.constraint;
            let (h_mut, h_aux_ref, u_ref) = (&mut *h, &ws.h_aux, &*u);
            dev.try_launch(
                "apply_proximity_operator",
                Phase::Update,
                KernelClass::Stream,
                stream_cost(elems, 2.0, 1.0, 2.0),
                || {
                    if constraint.is_elementwise() {
                        map2(h_mut, h_aux_ref, u_ref, |a, u| constraint.prox(a - u, rho));
                    } else {
                        // Row-coupled operator (simplex): form the row of
                        // H_aux - U, then project it jointly.
                        apply_rowwise(h_mut, h_aux_ref, u_ref, constraint, rho);
                    }
                },
            )?;
        } else {
            // DGEAM tmp = H_aux - U, then a separate prox kernel.
            let (tmp, h_aux_ref, u_ref) = (&mut ws.tmp, &ws.h_aux, &*u);
            dev.try_launch(
                "dgeam_aux_minus_u",
                Phase::Update,
                KernelClass::Stream,
                // Full alpha*A + beta*B DGEAM, as for dgeam_h_plus_u.
                stream_cost(elems, 2.0, 1.0, 3.0),
                || map2(tmp, h_aux_ref, u_ref, |a, u| a - u),
            )?;
            let constraint = cfg.constraint;
            let (h_mut, tmp_ref) = (&mut *h, &ws.tmp);
            dev.try_launch(
                "prox_operator",
                Phase::Update,
                KernelClass::Stream,
                stream_cost(elems, 1.0, 1.0, 1.0),
                || {
                    if constraint.is_elementwise() {
                        let (o, t) = (h_mut.as_mut_slice(), tmp_ref.as_slice());
                        if o.len() >= tuning::par_elems() {
                            o.par_iter_mut()
                                .zip(t.par_iter())
                                .for_each(|(o, &t)| *o = constraint.prox(t, rho));
                        } else {
                            for (o, &t) in o.iter_mut().zip(t) {
                                *o = constraint.prox(t, rho);
                            }
                        }
                    } else {
                        h_mut.copy_from(tmp_ref);
                        let r = h_mut.cols().max(1);
                        h_mut
                            .as_mut_slice()
                            .par_chunks_exact_mut(r)
                            .for_each(|row| constraint.prox_row(row, rho));
                    }
                },
            )?;
        }

        // --- dual update U += H - H_aux, plus residuals ---
        let (primal_sq, h_sq) = if cfg.operation_fusion {
            // Fused kernel: updates U and reuses the H - H_aux difference
            // for the primal-residual reduction.
            let (u_mut, h_ref, h_aux_ref) = (&mut *u, &*h, &ws.h_aux);
            dev.try_launch(
                "dual_update",
                Phase::Update,
                KernelClass::Stream,
                stream_cost(elems, 3.0, 1.0, 5.0),
                || {
                    let (us, hs, asx) =
                        (u_mut.as_mut_slice(), h_ref.as_slice(), h_aux_ref.as_slice());
                    let body = |(u, (&h, &a)): (&mut f64, (&f64, &f64))| {
                        let d = h - a;
                        *u += d;
                        (d * d, h * h)
                    };
                    if us.len() >= tuning::par_elems() {
                        us.par_iter_mut()
                            .zip(hs.par_iter().zip(asx))
                            .map(body)
                            .reduce(|| (0.0, 0.0), |x, y| (x.0 + y.0, x.1 + y.1))
                    } else {
                        let mut acc = (0.0, 0.0);
                        for z in us.iter_mut().zip(hs.iter().zip(asx)) {
                            let (p, q) = body(z);
                            acc.0 += p;
                            acc.1 += q;
                        }
                        acc
                    }
                },
            )?
        } else {
            // Separate DGEAMs and reductions, as cuBLAS would do it.
            let (tmp, h_ref, h_aux_ref) = (&mut ws.tmp, &*h, &ws.h_aux);
            dev.try_launch(
                "dgeam_h_minus_aux",
                Phase::Update,
                KernelClass::Stream,
                stream_cost(elems, 2.0, 1.0, 1.0),
                || map2(tmp, h_ref, h_aux_ref, |h, a| h - a),
            )?;
            let (u_mut, tmp_ref) = (&mut *u, &ws.tmp);
            dev.try_launch(
                "dgeam_dual_ascent",
                Phase::Update,
                KernelClass::Stream,
                stream_cost(elems, 2.0, 1.0, 1.0),
                || {
                    let (us, ts) = (u_mut.as_mut_slice(), tmp_ref.as_slice());
                    if us.len() >= tuning::par_elems() {
                        us.par_iter_mut().zip(ts.par_iter()).for_each(|(u, &t)| *u += t);
                    } else {
                        for (u, &t) in us.iter_mut().zip(ts) {
                            *u += t;
                        }
                    }
                },
            )?;
            // Residual-norm reductions read operands the preceding DGEAMs
            // just streamed (tmp, H are L2-resident), so they add flops and
            // launch latency but no DRAM traffic — the reason Eq. 4's ledger
            // has no separate reduction term.
            let primal = dev.try_launch(
                "reduce_primal_residual",
                Phase::Update,
                KernelClass::Reduce,
                stream_cost(elems, 0.0, 0.0, 2.0),
                || sum_sq(&ws.tmp),
            )?;
            let h_sq = dev.try_launch(
                "reduce_h_norm",
                Phase::Update,
                KernelClass::Reduce,
                stream_cost(elems, 0.0, 0.0, 2.0),
                || sum_sq(h),
            )?;
            (primal, h_sq)
        };

        // Dual residual needs ||H - H_old||^2 and ||U||^2. H and U are
        // resident from the kernels that just wrote them; only the cold
        // H_old snapshot streams from DRAM (1 word/element).
        let (dual_sq, u_sq) = dev.try_launch(
            "reduce_dual_residual",
            Phase::Update,
            KernelClass::Reduce,
            stream_cost(elems, 1.0, 0.0, 4.0),
            || (sum_sq_diff(h, &ws.h_old), sum_sq(u)),
        )?;

        // NaN sentinel: the residual sums already cover every element of H
        // and U, so this finiteness check costs one add and one branch.
        if !(primal_sq + h_sq + dual_sq + u_sq).is_finite() {
            return Err(AdmmError::NonFinite { inner_iter: it });
        }

        stats.primal_residual = if h_sq > 0.0 { primal_sq / h_sq } else { primal_sq };
        stats.dual_residual = if u_sq > 0.0 { dual_sq / u_sq } else { dual_sq };

        if cfg.tol > 0.0 && stats.primal_residual < cfg.tol && stats.dual_residual < cfg.tol {
            break;
        }
    }

    Ok(stats)
}

/// One fully-fused ADMM inner iteration as a single row-blocked pass:
/// auxiliary computation, solve, proximal projection, dual ascent and the
/// four residual reductions, touching each row of `H`/`U`/`M` exactly once.
///
/// Per-element expressions are identical to the fused multi-kernel path
/// (`compute_auxiliary` / `dgemm_apply_inverse` / `trsm_fwd_bwd` /
/// `apply_proximity_operator` / `dual_update`) and rows are independent, so
/// `H` and `U` come out bitwise-equal to it; the returned residual sums
/// `(primal_sq, h_sq, dual_sq, u_sq)` differ only in summation order.
///
/// `scratch` holds three `R`-rows per parallel chunk (auxiliary, solved,
/// old-`H`) and grows on first use only.
#[allow(clippy::too_many_arguments)]
fn fused_inner_sweep(
    constraint: Constraint,
    rho: f64,
    m: &Mat,
    chol: &Cholesky,
    inv: Option<&Mat>,
    h: &mut Mat,
    u: &mut Mat,
    scratch: &mut Vec<f64>,
) -> (f64, f64, f64, f64) {
    let (rows, rank) = (m.rows(), m.cols());
    let elems = rows * rank;
    let srank = rank.max(1);

    let do_chunk = |h_c: &mut [f64], u_c: &mut [f64], m_c: &[f64], sc: &mut [f64]| {
        let (aux, rest) = sc.split_at_mut(srank);
        let (solved, old) = rest.split_at_mut(srank);
        let mut acc = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for ((h_row, u_row), m_row) in h_c
            .chunks_exact_mut(srank)
            .zip(u_c.chunks_exact_mut(srank))
            .zip(m_c.chunks_exact(srank))
        {
            // Auxiliary: H_aux = M + rho * (H + U) — same expression as
            // compute_auxiliary, lane-dispatched.
            simd::fused_aux(aux, m_row, h_row, u_row, rho);
            // Solve (S + rho I) x = aux: either the row of the inverse GEMM
            // (pre-inversion) or an in-place triangular solve — the exact
            // per-row bodies of dgemm_apply_inverse / trsm_fwd_bwd.
            let xrow: &[f64] = if let Some(inv) = inv {
                cstf_linalg::gemm_row(1.0, aux, inv.as_slice(), rank, 0.0, solved);
                solved
            } else {
                chol.solve_in_place(aux);
                aux
            };
            old[..rank].copy_from_slice(h_row);
            // Proximity: H = prox(X - U), matching apply_proximity_operator.
            if constraint.is_elementwise() {
                for (hv, (&xv, &uv)) in h_row.iter_mut().zip(xrow.iter().zip(u_row.iter())) {
                    *hv = constraint.prox(xv - uv, rho);
                }
            } else {
                for (hv, (&xv, &uv)) in h_row.iter_mut().zip(xrow.iter().zip(u_row.iter())) {
                    *hv = xv - uv;
                }
                constraint.prox_row(h_row, rho);
            }
            // Dual ascent + all four residual partials, matching
            // dual_update / reduce_dual_residual element-for-element.
            for j in 0..rank {
                let d = h_row[j] - xrow[j];
                u_row[j] += d;
                acc.0 += d * d;
                acc.1 += h_row[j] * h_row[j];
                let dd = h_row[j] - old[j];
                acc.2 += dd * dd;
                acc.3 += u_row[j] * u_row[j];
            }
        }
        acc
    };

    let chunk_rows = if elems >= tuning::par_elems() {
        rows.div_ceil(rayon::current_num_threads().max(1)).max(1)
    } else {
        rows.max(1)
    };
    let nchunks = rows.div_ceil(chunk_rows).max(1);
    let need = nchunks * 3 * srank;
    if scratch.len() < need {
        scratch.resize(need, 0.0);
    }
    if nchunks == 1 {
        do_chunk(h.as_mut_slice(), u.as_mut_slice(), m.as_slice(), &mut scratch[..3 * srank])
    } else {
        let cl = chunk_rows * srank;
        h.as_mut_slice()
            .par_chunks_mut(cl)
            .zip(u.as_mut_slice().par_chunks_mut(cl))
            .zip(m.as_slice().par_chunks(cl))
            .zip(scratch[..need].par_chunks_mut(3 * srank))
            .map(|(((h_c, u_c), m_c), sc)| do_chunk(h_c, u_c, m_c, sc))
            .reduce(|| (0.0, 0.0, 0.0, 0.0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3))
    }
}

/// Blocked ADMM (Smith et al., ICPP '17 — the paper's ref. [29] and the
/// technique §4.2 says CPUs love and GPUs don't): rows are processed in
/// cache-sized blocks, each running the full inner-iteration loop before
/// moving on, so a block's `H/U/M` panels stay resident in cache.
///
/// With a fixed iteration count the result is bitwise identical to
/// [`admm_update`] (rows are independent); only the kernel granularity —
/// and therefore the modeled time — changes: smaller working sets help the
/// CPU's caches, while the multiplied launch count and shrunken per-kernel
/// parallelism hurt the GPU. `block_rows = 0` means unblocked.
///
/// # Errors
/// Propagates any [`AdmmError`] from the per-block updates.
///
/// # Panics
/// Panics if `cfg.tol != 0` (per-block residuals differ from global ones)
/// or on shape mismatches.
pub fn blocked_admm_update(
    dev: &Device,
    cfg: &AdmmConfig,
    block_rows: usize,
    m: &Mat,
    s: &Mat,
    h: &mut Mat,
    u: &mut Mat,
) -> Result<AdmmStats, AdmmError> {
    assert!(
        cfg.tol == 0.0,
        "blocked ADMM requires fixed iterations (tol = 0); per-block residuals \
         are not the global convergence criterion"
    );
    let (rows, rank) = (m.rows(), m.cols());
    if block_rows == 0 || block_rows >= rows {
        let mut ws = AdmmWorkspace::new(rows, rank);
        return admm_update(dev, cfg, m, s, h, u, &mut ws);
    }

    let mut ws = AdmmWorkspace::new(block_rows, rank);
    let mut last = AdmmStats {
        iters: 0,
        primal_residual: f64::INFINITY,
        dual_residual: f64::INFINITY,
        rho: 0.0,
    };
    let mut start = 0usize;
    while start < rows {
        let end = (start + block_rows).min(rows);
        let take = |src: &Mat| {
            let mut block = Mat::zeros(end - start, rank);
            for (bi, i) in (start..end).enumerate() {
                block.row_mut(bi).copy_from_slice(src.row(i));
            }
            block
        };
        let m_blk = take(m);
        let mut h_blk = take(h);
        let mut u_blk = take(u);
        if h_blk.rows() != ws.h_aux.rows() {
            ws = AdmmWorkspace::new(h_blk.rows(), rank);
        }
        last = admm_update(dev, cfg, &m_blk, s, &mut h_blk, &mut u_blk, &mut ws)?;
        for (bi, i) in (start..end).enumerate() {
            h.row_mut(i).copy_from_slice(h_blk.row(bi));
            u.row_mut(i).copy_from_slice(u_blk.row(bi));
        }
        start = end;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstf_device::DeviceSpec;
    use cstf_linalg::gram;

    /// Builds a well-conditioned random NNLS-ish problem.
    fn problem(rows: usize, rank: usize, seed: u64) -> (Mat, Mat, Mat, Mat) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let truth = Mat::from_fn(rows, rank, |_, _| next());
        let other = Mat::from_fn(rows + 5, rank, |_, _| next());
        let s = gram::gram(&other);
        // m = truth * s  => unconstrained argmin of ||H s^(1/2) - ...|| is truth.
        let m = cstf_linalg::matmul(&truth, &s);
        let h0 = Mat::from_fn(rows, rank, |_, _| next());
        (m, s, h0, truth)
    }

    fn run(cfg: &AdmmConfig, m: &Mat, s: &Mat, h0: &Mat) -> (Mat, Mat, AdmmStats) {
        let dev = Device::new(DeviceSpec::h100());
        let mut h = h0.clone();
        let mut u = Mat::zeros(h0.rows(), h0.cols());
        let mut ws = AdmmWorkspace::new(h0.rows(), h0.cols());
        let stats = admm_update(&dev, cfg, m, s, &mut h, &mut u, &mut ws).unwrap();
        (h, u, stats)
    }

    #[test]
    fn admm_recovers_nonnegative_least_squares_solution() {
        let (m, s, h0, truth) = problem(60, 6, 1);
        let cfg = AdmmConfig { inner_iters: 300, tol: 1e-12, ..AdmmConfig::cuadmm() };
        let (h, _, stats) = run(&cfg, &m, &s, &h0);
        assert!(stats.iters > 1);
        // The unconstrained optimum (truth) is non-negative, so ADMM must
        // converge to it.
        for i in 0..truth.rows() {
            for j in 0..truth.cols() {
                assert!(
                    (h[(i, j)] - truth[(i, j)]).abs() < 1e-3,
                    "({i},{j}): {} vs {}",
                    h[(i, j)],
                    truth[(i, j)]
                );
            }
        }
    }

    #[test]
    fn all_four_variants_agree() {
        let (m, s, h0, _) = problem(80, 8, 2);
        let base = AdmmConfig { inner_iters: 10, tol: 0.0, ..AdmmConfig::cuadmm() };
        let mut outputs = Vec::new();
        for fusion in [false, true] {
            for pi in [false, true] {
                let cfg = AdmmConfig { operation_fusion: fusion, pre_inversion: pi, ..base };
                outputs.push((cfg.variant_name(), run(&cfg, &m, &s, &h0).0));
            }
        }
        let reference = &outputs[0].1;
        for (name, h) in &outputs[1..] {
            for i in 0..h.rows() {
                for j in 0..h.cols() {
                    assert!(
                        (h[(i, j)] - reference[(i, j)]).abs() < 1e-8,
                        "{name} diverges at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn fusion_variants_are_bitwise_identical() {
        // OF changes kernel granularity but not the element expressions.
        let (m, s, h0, _) = problem(50, 4, 3);
        let a = run(
            &AdmmConfig { operation_fusion: false, pre_inversion: true, ..AdmmConfig::cuadmm() },
            &m,
            &s,
            &h0,
        );
        let b = run(
            &AdmmConfig { operation_fusion: true, pre_inversion: true, ..AdmmConfig::cuadmm() },
            &m,
            &s,
            &h0,
        );
        assert_eq!(a.0, b.0, "fused/unfused primal differ");
        assert_eq!(a.1, b.1, "fused/unfused dual differ");
    }

    #[test]
    fn nonnegativity_is_enforced() {
        // Force a problem whose unconstrained solution has negatives.
        let (mut m, s, h0, _) = problem(40, 5, 4);
        for v in m.as_mut_slice() {
            *v = -v.abs();
        }
        let (h, _, _) = run(&AdmmConfig { inner_iters: 50, ..AdmmConfig::cuadmm() }, &m, &s, &h0);
        assert!(h.is_nonnegative(0.0), "ADMM violated the constraint");
        assert!(h.all_finite());
    }

    #[test]
    fn residuals_decrease_with_more_iterations() {
        let (m, s, h0, _) = problem(70, 6, 5);
        let short =
            run(&AdmmConfig { inner_iters: 2, tol: 0.0, ..AdmmConfig::cuadmm() }, &m, &s, &h0);
        let long =
            run(&AdmmConfig { inner_iters: 40, tol: 0.0, ..AdmmConfig::cuadmm() }, &m, &s, &h0);
        assert!(long.2.primal_residual < short.2.primal_residual);
    }

    #[test]
    fn early_exit_honors_tolerance() {
        let (m, s, h0, _) = problem(50, 4, 6);
        let (_, _, stats) =
            run(&AdmmConfig { inner_iters: 500, tol: 1e-6, ..AdmmConfig::cuadmm() }, &m, &s, &h0);
        assert!(stats.iters < 500, "should converge before the cap");
        assert!(stats.primal_residual < 1e-6);
        assert!(stats.dual_residual < 1e-6);
    }

    #[test]
    fn fused_variant_launches_fewer_kernels() {
        let (m, s, h0, _) = problem(100, 8, 7);
        let count = |cfg: &AdmmConfig| {
            let dev = Device::new(DeviceSpec::h100());
            let mut h = h0.clone();
            let mut u = Mat::zeros(h0.rows(), h0.cols());
            let mut ws = AdmmWorkspace::new(h0.rows(), h0.cols());
            admm_update(&dev, cfg, &m, &s, &mut h, &mut u, &mut ws).unwrap();
            dev.total_launches()
        };
        let generic = count(&AdmmConfig::generic());
        let fused = count(&AdmmConfig::cuadmm());
        assert!(fused < generic, "fused {fused} should launch fewer kernels than {generic}");
    }

    #[test]
    fn fused_variant_moves_fewer_bytes() {
        let (m, s, h0, _) = problem(100, 8, 8);
        let bytes = |cfg: &AdmmConfig| {
            let dev = Device::new(DeviceSpec::h100());
            let mut h = h0.clone();
            let mut u = Mat::zeros(h0.rows(), h0.cols());
            let mut ws = AdmmWorkspace::new(h0.rows(), h0.cols());
            admm_update(&dev, cfg, &m, &s, &mut h, &mut u, &mut ws).unwrap();
            dev.phase_totals(Phase::Update).bytes
        };
        let of_only =
            AdmmConfig { operation_fusion: true, pre_inversion: false, ..AdmmConfig::cuadmm() };
        assert!(bytes(&of_only) < bytes(&AdmmConfig::generic()));
    }

    #[test]
    fn l1_constraint_produces_sparser_factors_than_nonneg() {
        let (m, s, h0, _) = problem(100, 6, 9);
        let nn = run(&AdmmConfig { inner_iters: 60, ..AdmmConfig::cuadmm() }, &m, &s, &h0).0;
        let l1cfg = AdmmConfig {
            inner_iters: 60,
            constraint: Constraint::SparseL1 { mu: 5.0 },
            ..AdmmConfig::cuadmm()
        };
        let l1 = run(&l1cfg, &m, &s, &h0).0;
        let zeros = |m: &Mat| m.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros(&l1) >= zeros(&nn), "L1 should zero at least as many entries");
        assert!(l1.is_nonnegative(0.0));
    }

    #[test]
    fn blocked_admm_is_bitwise_identical_to_unblocked() {
        let (m, s, h0, _) = problem(300, 6, 20);
        let cfg = AdmmConfig { tol: 0.0, inner_iters: 10, ..AdmmConfig::cuadmm() };
        let dev = Device::new(DeviceSpec::icelake_xeon());

        let mut h_ref = h0.clone();
        let mut u_ref = Mat::zeros(300, 6);
        let mut ws = AdmmWorkspace::new(300, 6);
        admm_update(&dev, &cfg, &m, &s, &mut h_ref, &mut u_ref, &mut ws).unwrap();

        for block in [64usize, 100, 299, 500] {
            let mut h = h0.clone();
            let mut u = Mat::zeros(300, 6);
            blocked_admm_update(&dev, &cfg, block, &m, &s, &mut h, &mut u).unwrap();
            assert_eq!(h, h_ref, "block {block} changed the primal");
            assert_eq!(u, u_ref, "block {block} changed the dual");
        }
    }

    #[test]
    fn blocking_helps_cpu_and_hurts_gpu() {
        // The §4.2 claim: blockwise reformulation improves CPU temporal
        // locality but is counterproductive on GPUs (launch multiplication,
        // shrunken parallelism).
        // Workload-scaled devices (paper-scale replay, DESIGN.md §6): the
        // factor panel must exceed the LLC unblocked and fit it blocked.
        let scale = 0.002;
        let (m, s, h0, _) = problem(40_000, 16, 21);
        let cfg = AdmmConfig { tol: 0.0, inner_iters: 10, ..AdmmConfig::generic() };
        let time_on = |spec: DeviceSpec, block: usize| {
            let dev = Device::new(spec);
            let mut h = h0.clone();
            let mut u = Mat::zeros(h0.rows(), h0.cols());
            blocked_admm_update(&dev, &cfg, block, &m, &s, &mut h, &mut u).unwrap();
            dev.phase_totals(Phase::Update).seconds
        };
        // A block sized to the (scaled) CPU LLC (and exceeding the GPU L2).
        let block = 500;
        let cpu_blocked = time_on(DeviceSpec::icelake_xeon().scaled(scale), block);
        let cpu_unblocked = time_on(DeviceSpec::icelake_xeon().scaled(scale), 0);
        assert!(
            cpu_blocked < cpu_unblocked,
            "blocking should help the CPU: {cpu_blocked:.3e} vs {cpu_unblocked:.3e}"
        );
        // On the GPU, CPU-cache-sized blocks exceed the L2 and multiply the
        // launch count; blocking must be far less effective than on the CPU
        // (the paper states it is "not effective" on GPUs).
        let gpu_blocked = time_on(DeviceSpec::h100().scaled(scale), block);
        let gpu_unblocked = time_on(DeviceSpec::h100().scaled(scale), 0);
        let cpu_gain = cpu_unblocked / cpu_blocked;
        let gpu_gain = gpu_unblocked / gpu_blocked;
        assert!(
            cpu_gain > 2.0 * gpu_gain,
            "blocking effectiveness should be lopsided toward the CPU: \
             cpu {cpu_gain:.2}x vs gpu {gpu_gain:.2}x"
        );
    }

    #[test]
    #[should_panic(expected = "fixed iterations")]
    fn blocked_admm_rejects_early_exit() {
        let (m, s, h0, _) = problem(50, 4, 22);
        let dev = Device::new(DeviceSpec::a100());
        let mut h = h0.clone();
        let mut u = Mat::zeros(50, 4);
        let cfg = AdmmConfig { tol: 1e-4, ..AdmmConfig::cuadmm() };
        let _ = blocked_admm_update(&dev, &cfg, 16, &m, &s, &mut h, &mut u);
    }

    #[test]
    fn simplex_constraint_yields_row_stochastic_factors() {
        let (m, s, h0, _) = problem(60, 5, 30);
        let cfg =
            AdmmConfig { inner_iters: 60, constraint: Constraint::Simplex, ..AdmmConfig::cuadmm() };
        let (h, _, _) = run(&cfg, &m, &s, &h0);
        for i in 0..h.rows() {
            let sum: f64 = h.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            assert!(h.row(i).iter().all(|&v| v >= 0.0), "row {i} has negatives");
        }
    }

    #[test]
    fn simplex_fused_and_unfused_agree() {
        let (m, s, h0, _) = problem(40, 4, 31);
        let mk = |fusion| AdmmConfig {
            inner_iters: 10,
            operation_fusion: fusion,
            pre_inversion: true,
            constraint: Constraint::Simplex,
            ..AdmmConfig::cuadmm()
        };
        let a = run(&mk(false), &m, &s, &h0);
        let b = run(&mk(true), &m, &s, &h0);
        assert_eq!(a.0, b.0, "simplex fused/unfused primal differ");
    }

    #[test]
    fn single_sweep_is_bitwise_identical_to_multi_kernel() {
        // The tentpole guarantee: collapsing the fused inner iteration into
        // one row-blocked pass must not change a single bit of H or U, for
        // every OF x PI variant and both prox families (element-wise and
        // row-coupled).
        let (m, s, h0, _) = problem(90, 7, 40);
        for fusion in [false, true] {
            for pi in [false, true] {
                for constraint in
                    [Constraint::NonNegative, Constraint::SparseL1 { mu: 0.5 }, Constraint::Simplex]
                {
                    let mk = |sweep| AdmmConfig {
                        operation_fusion: fusion,
                        pre_inversion: pi,
                        single_sweep: sweep,
                        constraint,
                        ..AdmmConfig::cuadmm()
                    };
                    let a = run(&mk(false), &m, &s, &h0);
                    let b = run(&mk(true), &m, &s, &h0);
                    assert_eq!(a.0, b.0, "OF={fusion} PI={pi} {constraint:?}: primal differs");
                    assert_eq!(a.1, b.1, "OF={fusion} PI={pi} {constraint:?}: dual differs");
                }
            }
        }
    }

    #[test]
    fn single_sweep_parallel_path_is_bitwise_identical() {
        // Cross the Rayon threshold so the chunked parallel sweep runs.
        let (m, s, h0, _) = problem(4800, 4, 41);
        let a = run(&AdmmConfig::cuadmm(), &m, &s, &h0);
        let b = run(&AdmmConfig::cuadmm_fused(), &m, &s, &h0);
        assert_eq!(a.0, b.0, "parallel sweep changed the primal");
        assert_eq!(a.1, b.1, "parallel sweep changed the dual");
    }

    #[test]
    fn single_sweep_launches_one_kernel_per_inner_iteration() {
        let (m, s, h0, _) = problem(100, 8, 42);
        let dev = Device::new(DeviceSpec::h100());
        let mut h = h0.clone();
        let mut u = Mat::zeros(h0.rows(), h0.cols());
        let mut ws = AdmmWorkspace::new(h0.rows(), h0.cols());
        let cfg = AdmmConfig::cuadmm_fused();
        admm_update(&dev, &cfg, &m, &s, &mut h, &mut u, &mut ws).unwrap();
        // Factor + explicit inverse + one sweep per inner iteration.
        assert_eq!(dev.total_launches(), 2 + cfg.inner_iters);
    }

    #[test]
    fn single_sweep_respects_tolerance_early_exit() {
        let (m, s, h0, _) = problem(50, 4, 43);
        let (_, _, stats) = run(
            &AdmmConfig { inner_iters: 500, tol: 1e-6, ..AdmmConfig::cuadmm_fused() },
            &m,
            &s,
            &h0,
        );
        assert!(stats.iters < 500);
        assert!(stats.primal_residual < 1e-6);
        assert!(stats.dual_residual < 1e-6);
    }

    #[test]
    fn rho_matches_trace_formula() {
        let (m, s, h0, _) = problem(30, 5, 10);
        let (_, _, stats) = run(&AdmmConfig::cuadmm(), &m, &s, &h0);
        assert!((stats.rho - s.trace() / 5.0).abs() < 1e-12);
    }

    #[test]
    fn rho_scale_multiplies_the_trace_formula() {
        let (m, s, h0, _) = problem(30, 5, 11);
        let cfg = AdmmConfig { rho_scale: 10.0, ..AdmmConfig::cuadmm() };
        let (_, _, stats) = run(&cfg, &m, &s, &h0);
        assert!((stats.rho - 10.0 * (s.trace() / 5.0)).abs() < 1e-10);
    }

    #[test]
    fn indefinite_gram_yields_typed_cholesky_error_and_leaves_state_untouched() {
        // S = [[1,3],[3,1]] has trace 2, so rho = 1 and S + rho*I =
        // [[2,3],[3,2]] (determinant -5) is decisively indefinite: the
        // second Cholesky pivot is 2 - (3/sqrt(2))^2 = -2.5.
        let s = Mat::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 3.0 });
        let m = Mat::from_fn(4, 2, |i, j| (i + j) as f64 + 1.0);
        let h0 = Mat::from_fn(4, 2, |i, j| (2 * i + j) as f64);
        let dev = Device::new(DeviceSpec::h100());
        let mut h = h0.clone();
        let mut u = Mat::from_fn(4, 2, |i, _| i as f64);
        let u0 = u.clone();
        let mut ws = AdmmWorkspace::new(4, 2);
        let err =
            admm_update(&dev, &AdmmConfig::cuadmm(), &m, &s, &mut h, &mut u, &mut ws).unwrap_err();
        match err {
            AdmmError::Cholesky(CholeskyError {
                source: cstf_linalg::LinalgError::NotPositiveDefinite { pivot_value, .. },
                rho,
            }) => {
                assert!((rho - 1.0).abs() < 1e-12, "rho should be trace/R = 1, got {rho}");
                assert!(pivot_value < 0.0, "pivot should be negative, got {pivot_value}");
            }
            other => panic!("expected NotPositiveDefinite Cholesky error, got {other:?}"),
        }
        // The factorization is the first kernel: H and U must be untouched,
        // so the caller can retry with a boosted rho without snapshotting.
        assert_eq!(h, h0, "H was modified by a failed update");
        assert_eq!(u, u0, "U was modified by a failed update");
    }

    #[test]
    fn nan_in_mttkrp_output_trips_the_sentinel_on_every_variant() {
        let (mut m, s, h0, _) = problem(40, 4, 12);
        m[(3, 2)] = f64::NAN;
        for cfg in [AdmmConfig::generic(), AdmmConfig::cuadmm(), AdmmConfig::cuadmm_fused()] {
            let dev = Device::new(DeviceSpec::h100());
            let mut h = h0.clone();
            let mut u = Mat::zeros(40, 4);
            let mut ws = AdmmWorkspace::new(40, 4);
            let err = admm_update(&dev, &cfg, &m, &s, &mut h, &mut u, &mut ws).unwrap_err();
            assert_eq!(
                err,
                AdmmError::NonFinite { inner_iter: 0 },
                "{} should catch the NaN in the first sweep",
                cfg.variant_name()
            );
        }
    }

    #[test]
    fn injected_launch_fault_surfaces_as_typed_error() {
        let (m, s, h0, _) = problem(30, 4, 13);
        let plan =
            cstf_device::FaultPlan { launch_fault_rate: 1.0, ..cstf_device::FaultPlan::quiet(7) };
        let dev = Device::new(DeviceSpec::h100()).with_fault_plan(plan);
        let mut h = h0.clone();
        let mut u = Mat::zeros(30, 4);
        let mut ws = AdmmWorkspace::new(30, 4);
        let err =
            admm_update(&dev, &AdmmConfig::cuadmm(), &m, &s, &mut h, &mut u, &mut ws).unwrap_err();
        match err {
            AdmmError::Fault(fault) => {
                assert_eq!(fault.kernel, "cholesky_factor", "first kernel should draw the fault");
            }
            other => panic!("expected a device fault, got {other:?}"),
        }
    }
}
