//! Norms and the factor-normalization kernel (Algorithm 1, line 11).
//!
//! AO-ADMM normalizes each factor's columns after the update and folds the
//! scales into the weight vector `lambda`; convergence checks use relative
//! Frobenius norms of iterate differences (Algorithm 2, line 9).

use rayon::prelude::*;

use crate::matrix::Mat;
use crate::tuning;

/// Squared Frobenius norm `sum a_ij^2`.
pub fn fro_norm_sq(a: &Mat) -> f64 {
    if a.len() >= tuning::norms_cutoff() {
        a.as_slice().par_iter().map(|&v| v * v).sum()
    } else {
        a.as_slice().iter().map(|&v| v * v).sum()
    }
}

/// Frobenius norm.
pub fn fro_norm(a: &Mat) -> f64 {
    fro_norm_sq(a).sqrt()
}

/// Squared Frobenius norm of the difference `a - b`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn diff_norm_sq(a: &Mat, b: &Mat) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "diff_norm_sq: shape mismatch");
    let body = |(x, y): (&f64, &f64)| {
        let d = x - y;
        d * d
    };
    if a.len() >= tuning::norms_cutoff() {
        a.as_slice().par_iter().zip(b.as_slice()).map(body).sum()
    } else {
        a.as_slice().iter().zip(b.as_slice()).map(body).sum()
    }
}

/// Which column norm the normalization uses.
///
/// SPLATT/PLANC use the 2-norm while converging and the max-norm on the final
/// iteration (it keeps all factor entries `<= 1` so that `lambda` carries all
/// the magnitude); both are provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormKind {
    /// Euclidean column norm.
    Two,
    /// `max(1, max_i |a_ij|)` — never shrinks columns that are already small.
    Max,
}

/// Normalizes each column of `a` by its norm, multiplying the scale into
/// `lambda` (`lambda_j *= norm_j`). Columns with zero norm are left in place
/// and contribute a factor of 1 so `lambda` stays finite.
///
/// Allocating wrapper over [`normalize_columns_scratch`].
///
/// # Panics
/// Panics if `lambda.len() != a.cols()`.
pub fn normalize_columns(a: &mut Mat, lambda: &mut [f64], kind: NormKind) {
    let mut scratch = Vec::new();
    normalize_columns_scratch(a, lambda, kind, &mut scratch);
}

/// [`normalize_columns`] with caller-provided scratch (grown to `2 * R`
/// and reused; steady-state calls perform no heap allocation).
///
/// # Panics
/// Panics if `lambda.len() != a.cols()`.
pub fn normalize_columns_scratch(
    a: &mut Mat,
    lambda: &mut [f64],
    kind: NormKind,
    scratch: &mut Vec<f64>,
) {
    let r = a.cols();
    assert_eq!(lambda.len(), r, "lambda length must equal column count");
    if r == 0 || a.rows() == 0 {
        return;
    }
    if scratch.len() < 2 * r {
        scratch.resize(2 * r, 0.0);
    }
    let (norms, inv) = scratch.split_at_mut(r);
    let norms = &mut norms[..r];
    let inv = &mut inv[..r];

    // Column norms via one pass over the row-major buffer.
    norms.fill(0.0);
    match kind {
        NormKind::Two => {
            for row in a.rows_iter() {
                for (n, &v) in norms.iter_mut().zip(row) {
                    *n += v * v;
                }
            }
            for n in norms.iter_mut() {
                *n = n.sqrt();
            }
        }
        NormKind::Max => {
            for row in a.rows_iter() {
                for (n, &v) in norms.iter_mut().zip(row) {
                    *n = n.max(v.abs());
                }
            }
            for n in norms.iter_mut() {
                *n = n.max(1.0);
            }
        }
    }

    for (s, &n) in inv.iter_mut().zip(norms.iter()) {
        *s = if n > 0.0 { 1.0 / n } else { 1.0 };
    }
    let inv = &*inv;
    let apply = |row: &mut [f64]| {
        for (v, &s) in row.iter_mut().zip(inv) {
            *v *= s;
        }
    };
    if a.len() >= tuning::norms_cutoff() {
        a.as_mut_slice().par_chunks_exact_mut(r).for_each(apply);
    } else {
        a.as_mut_slice().chunks_exact_mut(r).for_each(apply);
    }

    for (l, &n) in lambda.iter_mut().zip(norms.iter()) {
        if n > 0.0 {
            *l *= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fro_norm_of_known_matrix() {
        let a = Mat::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert_eq!(fro_norm_sq(&a), 25.0);
        assert_eq!(fro_norm(&a), 5.0);
    }

    #[test]
    fn diff_norm_is_zero_for_identical() {
        let a = Mat::from_fn(5, 5, |i, j| (i * j) as f64);
        assert_eq!(diff_norm_sq(&a, &a), 0.0);
    }

    #[test]
    fn diff_norm_matches_manual() {
        let a = Mat::full(2, 2, 2.0);
        let b = Mat::full(2, 2, -1.0);
        assert_eq!(diff_norm_sq(&a, &b), 4.0 * 9.0);
    }

    #[test]
    fn normalize_two_norm_gives_unit_columns() {
        let mut a = Mat::from_fn(4, 3, |i, j| (i + j + 1) as f64);
        let mut lambda = vec![1.0; 3];
        normalize_columns(&mut a, &mut lambda, NormKind::Two);
        for j in 0..3 {
            let norm: f64 = (0..4).map(|i| a[(i, j)] * a[(i, j)]).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
            assert!(lambda[j] > 1.0);
        }
    }

    #[test]
    fn normalize_preserves_column_products() {
        // lambda_j * normalized column == original column.
        let orig = Mat::from_fn(5, 2, |i, j| ((i * 2 + j) % 4) as f64 + 0.5);
        let mut a = orig.clone();
        let mut lambda = vec![1.0; 2];
        normalize_columns(&mut a, &mut lambda, NormKind::Two);
        for i in 0..5 {
            for j in 0..2 {
                assert!((a[(i, j)] * lambda[j] - orig[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn normalize_max_norm_bounds_entries() {
        let mut a = Mat::from_fn(6, 2, |i, j| (i as f64 - 2.0) * (j as f64 + 1.0));
        let mut lambda = vec![1.0; 2];
        normalize_columns(&mut a, &mut lambda, NormKind::Max);
        assert!(a.max_abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn normalize_max_norm_leaves_small_columns() {
        // Columns already <= 1 are untouched (the max(1, .) clamp).
        let mut a = Mat::full(3, 1, 0.25);
        let mut lambda = vec![1.0];
        normalize_columns(&mut a, &mut lambda, NormKind::Max);
        assert_eq!(a[(0, 0)], 0.25);
        assert_eq!(lambda[0], 1.0);
    }

    #[test]
    fn zero_column_does_not_produce_nan() {
        let mut a = Mat::zeros(4, 2);
        a[(0, 1)] = 2.0;
        let mut lambda = vec![1.0; 2];
        normalize_columns(&mut a, &mut lambda, NormKind::Two);
        assert!(a.all_finite());
        assert_eq!(lambda[0], 1.0);
        assert_eq!(lambda[1], 2.0);
    }
}
