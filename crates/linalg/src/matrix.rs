//! Row-major dense matrix type used throughout cSTF-rs.
//!
//! Factor matrices in tensor factorization are tall-and-skinny (`I x R` with
//! `I >> R`), and every hot kernel walks them row by row, so a row-major
//! contiguous layout keeps the per-nonzero gathers of MTTKRP and the
//! element-wise ADMM kernels on contiguous cache lines.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major, `f64` matrix.
///
/// The storage is a single contiguous `Vec<f64>` of length `rows * cols`;
/// entry `(i, j)` lives at `data[i * cols + j]`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix with every entry equal to `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Sets every entry to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Copies the contents of `other` into `self` without reallocating.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Returns the transposed matrix (allocates).
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t.data[j * self.rows + i] = v;
            }
        }
        t
    }

    /// Sum of the diagonal entries.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Adds `alpha` to each diagonal entry (diagonal loading, the `+ rho*I`
    /// of the ADMM subproblem).
    pub fn add_diagonal(&mut self, alpha: f64) {
        assert_eq!(self.rows, self.cols, "diagonal loading requires a square matrix");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += alpha;
        }
    }

    /// Scales every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Maximum absolute entry (`max |a_ij|`); 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// True when all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// True when all entries are `>= -tol`.
    pub fn is_nonnegative(&self, tol: f64) -> bool {
        self.data.iter().all(|&v| v >= -tol)
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  ")?;
            let cols = self.cols.min(8);
            for j in 0..cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl cstf_telemetry::MemoryFootprint for Mat {
    fn footprint(&self) -> cstf_telemetry::Footprint {
        let mut fp = cstf_telemetry::Footprint::new();
        fp.add("data", cstf_telemetry::vec_heap_bytes(&self.data));
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Mat::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
        assert_eq!(m.trace(), 4.0);
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Mat::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn row_access_matches_indexing() {
        let m = Mat::from_fn(3, 2, |i, j| (i + j) as f64);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        assert_eq!(m.rows_iter().count(), 3);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Mat::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.transpose(), m);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn add_diagonal_loads_diagonal_only() {
        let mut m = Mat::zeros(3, 3);
        m.add_diagonal(2.5);
        assert_eq!(m.trace(), 7.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn copy_from_replaces_contents() {
        let mut a = Mat::zeros(2, 2);
        let b = Mat::from_fn(2, 2, |i, j| (i + j) as f64 + 1.0);
        a.copy_from(&b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn copy_from_panics_on_shape_mismatch() {
        let mut a = Mat::zeros(2, 2);
        let b = Mat::zeros(2, 3);
        a.copy_from(&b);
    }

    #[test]
    fn max_abs_and_nonnegativity() {
        let m = Mat::from_vec(1, 3, vec![-2.0, 1.0, 0.5]);
        assert_eq!(m.max_abs(), 2.0);
        assert!(!m.is_nonnegative(1e-12));
        assert!(m.is_nonnegative(2.5));
    }

    #[test]
    fn footprint_matches_capacity_sum() {
        use cstf_telemetry::MemoryFootprint;
        let m = Mat::zeros(7, 5);
        let expected = (m.data.capacity() * std::mem::size_of::<f64>()) as u64;
        assert_eq!(m.heap_bytes(), expected);
        assert_eq!(m.footprint().get("data"), expected);
    }

    #[test]
    fn scale_multiplies_all_entries() {
        let mut m = Mat::full(2, 2, 3.0);
        m.scale(2.0);
        assert!(m.as_slice().iter().all(|&v| v == 6.0));
    }
}
