//! Dense matrix multiplication kernels.
//!
//! cSTF needs exactly three GEMM shapes:
//!
//! * `C = A * B` with `A` tall-and-skinny (`I x R`) and `B` small (`R x R`) —
//!   the pre-inversion path of cuADMM (`H_aux * (S + rho I)^{-1}`);
//! * `C = A^T * A` (Gram/SYRK) — see [`crate::gram`];
//! * small square products for tests and the normalization bookkeeping.
//!
//! The `I x R * R x R` case is embarrassingly parallel over the rows of `A`,
//! so the kernel parallelizes with Rayon across row blocks and keeps the
//! small `B` operand resident in cache.

use rayon::prelude::*;

use crate::matrix::Mat;
use crate::scratch::PartialBuffers;
use crate::simd;
use crate::tuning;

/// Single-row GEMM kernel: `c_row = alpha * a_row * B + beta * c_row`.
///
/// This is the exact per-row body of [`gemm`], exported so callers that
/// already iterate rows (the fused ADMM sweep applying the pre-inverted
/// `(S + rho I)^{-1}`) produce bitwise-identical results to a full
/// [`gemm`] call over the same data. `b_data` is row-major `K x n`.
///
/// The body is branch-free over the elements of `a_row`: the operands here
/// (factor rows, Gram inverses) are dense, so a per-element zero test costs
/// a data-dependent branch on every scalar and blocks vectorization of the
/// inner update. Callers whose A operand is genuinely sparse should use
/// [`gemm_row_sparse`], which keeps the zero skip as an explicit hint.
/// B's rows are streamed in register-blocked pairs ([`simd::axpy2`]) so
/// each pass over `c_row` retires two rank-1 updates per load/store.
#[inline]
pub fn gemm_row(alpha: f64, a_row: &[f64], b_data: &[f64], n: usize, beta: f64, c_row: &mut [f64]) {
    if beta == 0.0 {
        c_row.fill(0.0);
    } else if beta != 1.0 {
        simd::scale(c_row, beta);
    }
    // Row-major accumulation: walk A's row once, stream B's rows two at a
    // time. The paired update halves traffic on `c_row` while preserving
    // the rounding order of the single-row walk (two separate adds per
    // element — see `simd::axpy2`).
    let mut pairs = a_row.chunks_exact(2);
    let mut l = 0;
    for pair in &mut pairs {
        let b0 = &b_data[l * n..(l + 1) * n];
        let b1 = &b_data[(l + 1) * n..(l + 2) * n];
        simd::axpy2(c_row, b0, alpha * pair[0], b1, alpha * pair[1]);
        l += 2;
    }
    if let [last] = pairs.remainder() {
        simd::axpy(c_row, &b_data[l * n..(l + 1) * n], alpha * last);
    }
}

/// Sparse-hinted variant of [`gemm_row`]: skips B rows whose A coefficient
/// is exactly zero.
///
/// Use only when the caller *knows* `a_row` is mostly zeros (e.g. masked
/// or pruned factors) — on dense data the per-element branch defeats
/// vectorization and is strictly slower than [`gemm_row`]. The accumulation
/// order over the non-zero coefficients matches [`gemm_row`]'s.
#[inline]
pub fn gemm_row_sparse(
    alpha: f64,
    a_row: &[f64],
    b_data: &[f64],
    n: usize,
    beta: f64,
    c_row: &mut [f64],
) {
    if beta == 0.0 {
        c_row.fill(0.0);
    } else if beta != 1.0 {
        simd::scale(c_row, beta);
    }
    for (l, &a_il) in a_row.iter().enumerate() {
        let scaled = alpha * a_il;
        if scaled == 0.0 {
            continue;
        }
        simd::axpy(c_row, &b_data[l * n..(l + 1) * n], scaled);
    }
}

/// `C = alpha * A * B + beta * C`.
///
/// # Panics
/// Panics on inner/outer dimension mismatches.
pub fn gemm(alpha: f64, a: &Mat, b: &Mat, beta: f64, c: &mut Mat) {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "gemm: output rows must match A rows");
    assert_eq!(c.cols(), b.cols(), "gemm: output cols must match B cols");

    let n = b.cols();
    let b_data = b.as_slice();

    let body =
        |(a_row, c_row): (&[f64], &mut [f64])| gemm_row(alpha, a_row, b_data, n, beta, c_row);

    if a.rows() * n >= tuning::par_threshold() {
        let cols_a = a.cols().max(1);
        a.as_slice()
            .par_chunks_exact(cols_a)
            .zip(c.as_mut_slice().par_chunks_exact_mut(n.max(1)))
            .for_each(body);
    } else {
        let cols_a = a.cols().max(1);
        a.as_slice()
            .chunks_exact(cols_a)
            .zip(c.as_mut_slice().chunks_exact_mut(n.max(1)))
            .for_each(body);
    }
}

/// Convenience wrapper returning a fresh `A * B`.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), b.cols());
    gemm(1.0, a, b, 0.0, &mut c);
    c
}

/// `C = A^T * B` where `A` is `I x R1` and `B` is `I x R2`, producing `R1 x R2`.
///
/// Used for the cross-Gram terms of HALS and for fit computation
/// (`H^T * M`). Allocating wrapper over [`gemm_tn_into`].
pub fn gemm_tn(a: &Mat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(a.cols(), b.cols());
    let mut partials = PartialBuffers::new();
    gemm_tn_into(a, b, &mut out, &mut partials);
    out
}

/// `out = A^T * B`, reusing `partials` for the per-chunk privatized
/// accumulators. `out` is overwritten. Steady-state calls with stable
/// shapes perform no heap allocation; partial accumulators are combined
/// with a pairwise parallel tree instead of a serial per-chunk sweep.
///
/// # Panics
/// Panics if `a` and `b` disagree on row count or `out` is not
/// `a.cols() x b.cols()`.
pub fn gemm_tn_into(a: &Mat, b: &Mat, out: &mut Mat, partials: &mut PartialBuffers) {
    assert_eq!(a.rows(), b.rows(), "gemm_tn: row counts must agree");
    assert_eq!(out.rows(), a.cols(), "gemm_tn: output rows must match A cols");
    assert_eq!(out.cols(), b.cols(), "gemm_tn: output cols must match B cols");
    let (rows, r1, r2) = (a.rows(), a.cols(), b.cols());
    out.as_mut_slice().fill(0.0);
    if rows == 0 || r1 == 0 || r2 == 0 {
        return;
    }

    let accumulate = |acc: &mut [f64], range: std::ops::Range<usize>| {
        for i in range {
            let ar = a.row(i);
            let br = b.row(i);
            // The A^T operand here is a factor matrix mid-ADMM where the
            // non-negativity prox produces exact zeros in bulk, so the
            // sparse skip is a deliberate hint (cf. `gemm_row_sparse`).
            for (p, &av) in ar.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                simd::axpy(&mut acc[p * r2..(p + 1) * r2], br, av);
            }
        }
    };

    let nchunks = if rows * r1 * r2 >= tuning::par_threshold() {
        rayon::current_num_threads().max(1)
    } else {
        1
    };
    if nchunks == 1 {
        accumulate(out.as_mut_slice(), 0..rows);
        return;
    }
    let chunk = rows.div_ceil(nchunks);
    let bufs = partials.ensure(nchunks, r1 * r2);
    bufs.par_iter_mut().enumerate().for_each(|(ci, buf)| {
        let start = ci * chunk;
        if start < rows {
            accumulate(&mut buf[..r1 * r2], start..(start + chunk).min(rows));
        }
    });
    partials.reduce_into(nchunks, r1 * r2, out.as_mut_slice());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for l in 0..a.cols() {
                    s += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn approx_eq(a: &Mat, b: &Mat, tol: f64) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Mat::from_fn(4, 3, |i, j| (i as f64) - (j as f64) * 0.5);
        let b = Mat::from_fn(3, 5, |i, j| (i * j) as f64 + 1.0);
        assert!(approx_eq(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-12));
    }

    #[test]
    fn matmul_matches_naive_parallel_path() {
        // Big enough to cross PAR_THRESHOLD.
        let a = Mat::from_fn(700, 32, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Mat::from_fn(32, 32, |i, j| ((i + 2 * j) % 7) as f64 * 0.25);
        assert!(approx_eq(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-10));
    }

    #[test]
    fn gemm_respects_alpha_beta() {
        let a = Mat::identity(3);
        let b = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut c = Mat::full(3, 3, 1.0);
        gemm(2.0, &a, &b, 3.0, &mut c);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c[(i, j)], 2.0 * (i + j) as f64 + 3.0);
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let e = Mat::identity(5);
        assert!(approx_eq(&matmul(&a, &e), &a, 0.0));
        assert!(approx_eq(&matmul(&e, &a), &a, 0.0));
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = Mat::from_fn(40, 6, |i, j| ((i * j) % 5) as f64 - 2.0);
        let b = Mat::from_fn(40, 4, |i, j| ((i + j) % 3) as f64);
        let expected = naive_matmul(&a.transpose(), &b);
        assert!(approx_eq(&gemm_tn(&a, &b), &expected, 1e-12));
    }

    #[test]
    fn gemm_tn_parallel_matches_serial() {
        let a = Mat::from_fn(5000, 8, |i, j| ((i * 31 + j) % 17) as f64 * 0.1);
        let b = Mat::from_fn(5000, 8, |i, j| ((i + j * 13) % 11) as f64 * 0.2);
        let expected = naive_matmul(&a.transpose(), &b);
        assert!(approx_eq(&gemm_tn(&a, &b), &expected, 1e-9));
    }

    #[test]
    fn empty_matrices_do_not_panic() {
        let a = Mat::zeros(0, 3);
        let b = Mat::zeros(3, 0);
        let c = matmul(&a, &b);
        assert_eq!((c.rows(), c.cols()), (0, 0));
        let g = gemm_tn(&Mat::zeros(0, 4), &Mat::zeros(0, 2));
        assert_eq!((g.rows(), g.cols()), (4, 2));
    }

    #[test]
    fn gemm_row_sparse_matches_dense_on_shared_support() {
        // A rows with exact zeros: the sparse-hinted variant skips them,
        // the dense variant multiplies through — results must agree to
        // rounding (and exactly when contributions are non-zero).
        let n = 7;
        let b: Vec<f64> = (0..5 * n).map(|i| ((i * 13) % 11) as f64 * 0.3 - 1.0).collect();
        let a_row = [0.0, 1.5, 0.0, -2.25, 0.5];
        let mut dense = vec![0.25; n];
        let mut sparse = dense.clone();
        gemm_row(1.75, &a_row, &b, n, 0.5, &mut dense);
        gemm_row_sparse(1.75, &a_row, &b, n, 0.5, &mut sparse);
        for (d, s) in dense.iter().zip(&sparse) {
            assert!((d - s).abs() < 1e-12, "{d} vs {s}");
        }
        // Odd-length A row exercises the paired-update remainder lane.
        let odd = [2.0, -1.0, 0.25];
        let mut c1 = vec![0.0; n];
        let mut c2 = vec![0.0; n];
        gemm_row(1.0, &odd, &b[..3 * n], n, 0.0, &mut c1);
        gemm_row_sparse(1.0, &odd, &b[..3 * n], n, 0.0, &mut c2);
        assert_eq!(c1, c2, "no zeros in A: both variants take identical steps");
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn gemm_panics_on_dim_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(4, 2);
        let mut c = Mat::zeros(2, 2);
        gemm(1.0, &a, &b, 0.0, &mut c);
    }
}
