//! Cholesky factorization and solves.
//!
//! The ADMM subproblem matrix `S + rho*I` is a small (`R x R`) symmetric
//! positive-definite matrix — the Hadamard product of Gram matrices of
//! tall-and-skinny factors plus diagonal loading — so a dense right-looking
//! Cholesky is both adequate and numerically comfortable (the paper makes the
//! same well-conditioning observation in §4.3.2).
//!
//! Two solve paths mirror the paper's two ADMM variants:
//!
//! * [`Cholesky::solve_rows`] — forward + backward substitution per
//!   right-hand side (the *triangular-solve* path of generic ADMM,
//!   Algorithm 2 line 6);
//! * [`Cholesky::inverse`] — the explicit `(L L^T)^{-1}` used by cuADMM's
//!   *pre-inversion* (Algorithm 3 line 4), after which the inner loop only
//!   needs a GEMM.

use rayon::prelude::*;

use crate::matrix::Mat;

/// Errors surfaced by the dense factorizations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix is not positive definite: a non-positive pivot appeared at
    /// the given elimination step.
    NotPositiveDefinite {
        /// Elimination step at which the pivot failed.
        pivot_index: usize,
        /// The offending (non-positive) pivot value.
        pivot_value: f64,
    },
    /// A non-finite value (NaN/inf) appeared during factorization.
    NonFinite,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot_index, pivot_value } => write!(
                f,
                "matrix is not positive definite (pivot {pivot_index} = {pivot_value:.3e})"
            ),
            LinalgError::NonFinite => write!(f, "non-finite value during factorization"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A lower-triangular Cholesky factor `L` with `A = L * L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// `n x n` matrix whose lower triangle (incl. diagonal) holds `L`; the
    /// strict upper triangle is zeroed.
    l: Mat,
}

impl Cholesky {
    /// A factorization of the `n x n` identity (`L = I`). Placeholder with
    /// the right dimensions so a persistent workspace can allocate its
    /// factor up front and [`refactor`](Self::refactor) it each iteration.
    pub fn identity(n: usize) -> Self {
        Self { l: Mat::identity(n) }
    }

    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    pub fn factor(a: &Mat) -> Result<Self, LinalgError> {
        assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
        let mut ch = Self { l: Mat::zeros(a.rows(), a.rows()) };
        ch.refactor(a)?;
        Ok(ch)
    }

    /// Re-factors `a` into this existing factorization without allocating.
    ///
    /// `a` must match the current dimension. On error the factor is left in
    /// an unspecified state and must be refactored before use.
    ///
    /// # Panics
    /// Panics if `a` is not square or disagrees with the current dimension.
    pub fn refactor(&mut self, a: &Mat) -> Result<(), LinalgError> {
        assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
        assert_eq!(a.rows(), self.l.rows(), "refactor: dimension must match");
        let n = a.rows();
        let l = &mut self.l;
        l.as_mut_slice().fill(0.0);

        for j in 0..n {
            // Diagonal pivot: a_jj - sum_k l_jk^2.
            let mut d = a[(j, j)];
            for k in 0..j {
                let v = l[(j, k)];
                d -= v * v;
            }
            if !d.is_finite() {
                return Err(LinalgError::NonFinite);
            }
            if d <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite { pivot_index: j, pivot_value: d });
            }
            let ljj = d.sqrt();
            l[(j, j)] = ljj;

            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / ljj;
            }
        }
        Ok(())
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` in place for a single right-hand side of length `n`.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        debug_assert_eq!(b.len(), n);
        let l = &self.l;
        // Forward: L y = b.
        for i in 0..n {
            let mut s = b[i];
            let row = l.row(i);
            for (k, bk) in b.iter().enumerate().take(i) {
                s -= row[k] * bk;
            }
            b[i] = s / row[i];
        }
        // Backward: L^T x = y.
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in (i + 1)..n {
                s -= l[(k, i)] * b[k];
            }
            b[i] = s / l[(i, i)];
        }
    }

    /// Solves `A X^T = B^T` where each **row** of `B` (`m x n`) is an
    /// independent right-hand side; the solution overwrites `B` row-wise.
    ///
    /// This is the layout the ADMM update needs: the auxiliary matrix is
    /// `I x R` row-major, and each of its `I` rows is solved against the
    /// `R x R` system. Rows are independent, so they are solved in parallel.
    pub fn solve_rows(&self, b: &mut Mat) {
        assert_eq!(b.cols(), self.dim(), "solve_rows: RHS width must equal system size");
        let n = self.dim().max(1);
        if b.rows() * self.dim() >= crate::tuning::solve_rows_cutoff() {
            b.as_mut_slice().par_chunks_exact_mut(n).for_each(|row| self.solve_in_place(row));
        } else {
            b.as_mut_slice().chunks_exact_mut(n).for_each(|row| self.solve_in_place(row));
        }
    }

    /// Explicit inverse `A^{-1} = (L L^T)^{-1}`, computed by solving against
    /// the identity column by column (the cuADMM pre-inversion step).
    ///
    /// The result is symmetric; symmetry is enforced exactly by averaging to
    /// keep downstream GEMMs deterministic.
    pub fn inverse(&self) -> Mat {
        let mut inv = Mat::zeros(self.dim(), self.dim());
        self.inverse_into(&mut inv);
        inv
    }

    /// Writes the explicit inverse into `inv` without allocating.
    ///
    /// # Panics
    /// Panics if `inv` is not `n x n`.
    pub fn inverse_into(&self, inv: &mut Mat) {
        let n = self.dim();
        assert_eq!((inv.rows(), inv.cols()), (n, n), "inverse_into: output must be n x n");
        inv.as_mut_slice().fill(0.0);
        for i in 0..n {
            inv[(i, i)] = 1.0;
        }
        for i in 0..n {
            // Row i of the identity is the i-th unit vector; solve_in_place
            // works row-wise on the row-major buffer, and since A^{-1} is
            // symmetric, solving rows of I yields A^{-1} directly.
            self.solve_in_place(inv.row_mut(i));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (inv[(i, j)] + inv[(j, i)]);
                inv[(i, j)] = avg;
                inv[(j, i)] = avg;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    /// An SPD matrix built as G = B^T B + n*I.
    fn spd(n: usize) -> Mat {
        let b = Mat::from_fn(n + 3, n, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.1 - 0.3);
        let mut g = crate::gram::gram(&b);
        g.add_diagonal(n as f64);
        g
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd(6);
        let ch = Cholesky::factor(&a).unwrap();
        let rebuilt = matmul(ch.l(), &ch.l().transpose());
        for i in 0..6 {
            for j in 0..6 {
                assert!((rebuilt[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn factor_is_lower_triangular() {
        let ch = Cholesky::factor(&spd(5)).unwrap();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_eq!(ch.l()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd(4);
        let x_true = [1.0, -2.0, 0.5, 3.0];
        let mut b = [0.0; 4];
        for i in 0..4 {
            b[i] = (0..4).map(|j| a[(i, j)] * x_true[j]).sum();
        }
        let ch = Cholesky::factor(&a).unwrap();
        ch.solve_in_place(&mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_rows_matches_single_solves() {
        let a = spd(5);
        let ch = Cholesky::factor(&a).unwrap();
        let rhs = Mat::from_fn(9, 5, |i, j| ((i * 5 + j) % 7) as f64 - 3.0);
        let mut batch = rhs.clone();
        ch.solve_rows(&mut batch);
        for i in 0..9 {
            let mut single: Vec<f64> = rhs.row(i).to_vec();
            ch.solve_in_place(&mut single);
            for j in 0..5 {
                assert!((batch[(i, j)] - single[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_rows_parallel_path_matches() {
        let a = spd(8);
        let ch = Cholesky::factor(&a).unwrap();
        let mut big = Mat::from_fn(4000, 8, |i, j| ((i + j * 13) % 19) as f64 * 0.05);
        let reference = {
            let mut r = big.clone();
            for i in 0..r.rows() {
                ch.solve_in_place(r.row_mut(i));
            }
            r
        };
        ch.solve_rows(&mut big);
        assert_eq!(big, reference);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd(7);
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.inverse();
        let prod = matmul(&a, &inv);
        for i in 0..7 {
            for j in 0..7 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-9, "entry ({i},{j}) = {}", prod[(i, j)]);
            }
        }
    }

    #[test]
    fn inverse_is_symmetric() {
        let inv = Cholesky::factor(&spd(6)).unwrap().inverse();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(inv[(i, j)], inv[(j, i)]);
            }
        }
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut a = Mat::identity(3);
        a[(2, 2)] = -1.0;
        match Cholesky::factor(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot_index: 2, .. }) => {}
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn pre_inversion_equals_triangular_solve_path() {
        // The algebraic equivalence cuADMM relies on: X * A^{-1} == solve(A, X).
        let a = spd(6);
        let ch = Cholesky::factor(&a).unwrap();
        let x = Mat::from_fn(20, 6, |i, j| ((i * 3 + j) % 5) as f64 - 2.0);
        let via_inverse = matmul(&x, &ch.inverse());
        let mut via_solve = x.clone();
        ch.solve_rows(&mut via_solve);
        for i in 0..20 {
            for j in 0..6 {
                assert!((via_inverse[(i, j)] - via_solve[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
