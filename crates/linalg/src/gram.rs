//! Gram matrix (SYRK) computation: `G = A^T A` for tall-and-skinny `A`.
//!
//! Every outer iteration of AO-ADMM recomputes the Gram matrix of the factor
//! it just updated (Algorithm 1, line 12), and the ADMM subproblem matrix is
//! the Hadamard product of the other modes' Grams (line 8), so this kernel is
//! on the critical path of the GRAM phase.

use rayon::prelude::*;

use crate::matrix::Mat;
use crate::scratch::PartialBuffers;
use crate::simd;
use crate::tuning;

/// Computes `G = A^T A` (`R x R`, symmetric) for an `I x R` matrix.
///
/// Allocating wrapper over [`gram_into`].
pub fn gram(a: &Mat) -> Mat {
    let r = a.cols();
    let mut g = Mat::zeros(r, r);
    let mut partials = PartialBuffers::new();
    gram_into(a, &mut g, &mut partials);
    g
}

/// Number of privatized row chunks [`gram_into`] uses for an `rows x r`
/// accumulation. A function of shape alone (plus the thread-pool width), so
/// a distributed caller can reproduce the exact same partial-buffer layout
/// and reduction tree and stay bitwise identical to the single-device path.
pub fn gram_chunk_count(rows: usize, r: usize) -> usize {
    if rows * r >= tuning::gram_cutoff() {
        rayon::current_num_threads().max(1)
    } else {
        1
    }
}

/// Accumulates rows `range` of `A^T A`'s upper triangle into `acc` (length
/// `r*r`, row-major). `acc` is not zeroed here; the caller owns init.
///
/// This is the exact per-chunk body of [`gram_into`], exposed so sharded
/// multi-device Gram recomputation can fill the same chunk partials.
pub fn gram_accumulate_range(a: &Mat, range: std::ops::Range<usize>, acc: &mut [f64]) {
    let r = a.cols();
    for i in range {
        let row = a.row(i);
        // Zero skip kept as a sparsity hint: mid-ADMM factors carry exact
        // zeros in bulk from the non-negativity prox, and skipping a whole
        // rank-length update per zero is worth the branch. The surviving
        // inner update is a vectorized axpy over the row suffix.
        for (p, &ap) in row.iter().enumerate() {
            if ap == 0.0 {
                continue;
            }
            simd::axpy(&mut acc[p * r + p..(p + 1) * r], &row[p..], ap);
        }
    }
}

/// Mirrors the upper triangle of a square matrix into the lower.
pub fn gram_mirror(out: &mut Mat) {
    let r = out.rows();
    for i in 0..r {
        for j in 0..i {
            out[(i, j)] = out[(j, i)];
        }
    }
}

/// `out = A^T A`, reusing `partials` for per-chunk privatized accumulators.
///
/// Parallelized by reducing per-chunk partial Grams over row blocks with a
/// pairwise tree; the upper triangle is computed and mirrored. Steady-state
/// calls with stable shapes perform no heap allocation.
///
/// # Panics
/// Panics if `out` is not `A.cols() x A.cols()`.
pub fn gram_into(a: &Mat, out: &mut Mat, partials: &mut PartialBuffers) {
    let (rows, r) = (a.rows(), a.cols());
    assert_eq!((out.rows(), out.cols()), (r, r), "gram: output must be R x R");
    out.as_mut_slice().fill(0.0);
    if r == 0 {
        return;
    }

    let nchunks = gram_chunk_count(rows, r);
    if nchunks == 1 {
        gram_accumulate_range(a, 0..rows, out.as_mut_slice());
    } else {
        let chunk = rows.div_ceil(nchunks).max(1);
        let bufs = partials.ensure(nchunks, r * r);
        bufs.par_iter_mut().enumerate().for_each(|(t, buf)| {
            let start = (t * chunk).min(rows);
            let end = ((t + 1) * chunk).min(rows);
            gram_accumulate_range(a, start..end, &mut buf[..r * r]);
        });
        partials.reduce_into(nchunks, r * r, out.as_mut_slice());
    }

    gram_mirror(out);
}

/// Element-wise (Hadamard) product of two square matrices, in place on `out`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn hadamard_in_place(out: &mut Mat, rhs: &Mat) {
    assert_eq!((out.rows(), out.cols()), (rhs.rows(), rhs.cols()), "hadamard: shape mismatch");
    simd::mul_assign(out.as_mut_slice(), rhs.as_slice());
}

/// The ADMM subproblem matrix: Hadamard product of all Gram matrices except
/// the one for `skip_mode` (Algorithm 1, line 8).
///
/// Returns the all-ones matrix convention when only one mode exists.
pub fn hadamard_of_grams(grams: &[Mat], skip_mode: usize) -> Mat {
    assert!(skip_mode < grams.len(), "skip_mode out of range");
    let r = grams[skip_mode].rows();
    let mut s = Mat::zeros(r, r);
    hadamard_of_grams_into(grams, skip_mode, &mut s);
    s
}

/// Non-allocating form of [`hadamard_of_grams`]: `out` is overwritten with
/// the Hadamard product of all Grams except `skip_mode`'s.
///
/// # Panics
/// Panics if `skip_mode` is out of range or `out` has the wrong shape.
pub fn hadamard_of_grams_into(grams: &[Mat], skip_mode: usize, out: &mut Mat) {
    assert!(skip_mode < grams.len(), "skip_mode out of range");
    let r = grams[skip_mode].rows();
    assert_eq!((out.rows(), out.cols()), (r, r), "hadamard_of_grams: output must be R x R");
    out.as_mut_slice().fill(1.0);
    for (n, g) in grams.iter().enumerate() {
        if n != skip_mode {
            hadamard_in_place(out, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Mat::from_fn(23, 5, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        let g = gram(&a);
        let expected = matmul(&a.transpose(), &a);
        for i in 0..5 {
            for j in 0..5 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Mat::from_fn(50, 8, |i, j| ((i * 13 + j) % 9) as f64 * 0.3);
        let g = gram(&a);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn gram_parallel_matches_serial() {
        let a = Mat::from_fn(20_000, 16, |i, j| ((i * 31 + j * 17) % 23) as f64 * 0.01);
        let g = gram(&a);
        let expected = matmul(&a.transpose(), &a);
        for i in 0..16 {
            for j in 0..16 {
                assert!(
                    (g[(i, j)] - expected[(i, j)]).abs() < 1e-7 * (1.0 + expected[(i, j)].abs())
                );
            }
        }
    }

    #[test]
    fn gram_diagonal_is_column_norms_squared() {
        let a = Mat::from_fn(10, 3, |i, j| (i + j) as f64);
        let g = gram(&a);
        for j in 0..3 {
            let want: f64 = (0..10).map(|i| a[(i, j)] * a[(i, j)]).sum();
            assert!((g[(j, j)] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn hadamard_of_grams_skips_target_mode() {
        let g0 = Mat::full(2, 2, 2.0);
        let g1 = Mat::full(2, 2, 3.0);
        let g2 = Mat::full(2, 2, 5.0);
        let s = hadamard_of_grams(&[g0, g1, g2], 1);
        assert!(s.as_slice().iter().all(|&v| v == 10.0));
    }

    #[test]
    fn hadamard_in_place_multiplies_elementwise() {
        let mut a = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let b = Mat::full(3, 3, 2.0);
        hadamard_in_place(&mut a, &b);
        assert_eq!(a[(1, 2)], 6.0);
    }

    #[test]
    fn gram_of_empty_rows_is_zero() {
        let a = Mat::zeros(0, 4);
        let g = gram(&a);
        assert_eq!((g.rows(), g.cols()), (4, 4));
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }
}
