//! Gram matrix (SYRK) computation: `G = A^T A` for tall-and-skinny `A`.
//!
//! Every outer iteration of AO-ADMM recomputes the Gram matrix of the factor
//! it just updated (Algorithm 1, line 12), and the ADMM subproblem matrix is
//! the Hadamard product of the other modes' Grams (line 8), so this kernel is
//! on the critical path of the GRAM phase.

use rayon::prelude::*;

use crate::matrix::Mat;

/// Computes `G = A^T A` (`R x R`, symmetric) for an `I x R` matrix.
///
/// Parallelized by reducing per-thread partial Grams over row blocks; the
/// upper triangle is computed and mirrored.
pub fn gram(a: &Mat) -> Mat {
    let (rows, r) = (a.rows(), a.cols());
    if r == 0 {
        return Mat::zeros(0, 0);
    }

    let accumulate = |range: std::ops::Range<usize>| -> Vec<f64> {
        let mut acc = vec![0.0f64; r * r];
        for i in range {
            let row = a.row(i);
            for (p, &ap) in row.iter().enumerate() {
                if ap == 0.0 {
                    continue;
                }
                let out = &mut acc[p * r + p..(p + 1) * r];
                for (o, &aq) in out.iter_mut().zip(&row[p..]) {
                    *o += ap * aq;
                }
            }
        }
        acc
    };

    let upper = if rows * r >= 32 * 1024 {
        let nchunks = rayon::current_num_threads().max(1);
        let chunk = rows.div_ceil(nchunks).max(1);
        (0..nchunks)
            .into_par_iter()
            .map(|t| {
                let start = (t * chunk).min(rows);
                let end = ((t + 1) * chunk).min(rows);
                accumulate(start..end)
            })
            .reduce(
                || vec![0.0f64; r * r],
                |mut x, y| {
                    for (a, b) in x.iter_mut().zip(y) {
                        *a += b;
                    }
                    x
                },
            )
    } else {
        accumulate(0..rows)
    };

    let mut g = Mat::from_vec(r, r, upper);
    // Mirror the upper triangle into the lower.
    for i in 0..r {
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
    g
}

/// Element-wise (Hadamard) product of two square matrices, in place on `out`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn hadamard_in_place(out: &mut Mat, rhs: &Mat) {
    assert_eq!((out.rows(), out.cols()), (rhs.rows(), rhs.cols()), "hadamard: shape mismatch");
    for (o, &r) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
        *o *= r;
    }
}

/// The ADMM subproblem matrix: Hadamard product of all Gram matrices except
/// the one for `skip_mode` (Algorithm 1, line 8).
///
/// Returns the all-ones matrix convention when only one mode exists.
pub fn hadamard_of_grams(grams: &[Mat], skip_mode: usize) -> Mat {
    assert!(skip_mode < grams.len(), "skip_mode out of range");
    let r = grams[skip_mode].rows();
    let mut s = Mat::full(r, r, 1.0);
    for (n, g) in grams.iter().enumerate() {
        if n != skip_mode {
            hadamard_in_place(&mut s, g);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Mat::from_fn(23, 5, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        let g = gram(&a);
        let expected = matmul(&a.transpose(), &a);
        for i in 0..5 {
            for j in 0..5 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Mat::from_fn(50, 8, |i, j| ((i * 13 + j) % 9) as f64 * 0.3);
        let g = gram(&a);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn gram_parallel_matches_serial() {
        let a = Mat::from_fn(20_000, 16, |i, j| ((i * 31 + j * 17) % 23) as f64 * 0.01);
        let g = gram(&a);
        let expected = matmul(&a.transpose(), &a);
        for i in 0..16 {
            for j in 0..16 {
                assert!(
                    (g[(i, j)] - expected[(i, j)]).abs() < 1e-7 * (1.0 + expected[(i, j)].abs())
                );
            }
        }
    }

    #[test]
    fn gram_diagonal_is_column_norms_squared() {
        let a = Mat::from_fn(10, 3, |i, j| (i + j) as f64);
        let g = gram(&a);
        for j in 0..3 {
            let want: f64 = (0..10).map(|i| a[(i, j)] * a[(i, j)]).sum();
            assert!((g[(j, j)] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn hadamard_of_grams_skips_target_mode() {
        let g0 = Mat::full(2, 2, 2.0);
        let g1 = Mat::full(2, 2, 3.0);
        let g2 = Mat::full(2, 2, 5.0);
        let s = hadamard_of_grams(&[g0, g1, g2], 1);
        assert!(s.as_slice().iter().all(|&v| v == 10.0));
    }

    #[test]
    fn hadamard_in_place_multiplies_elementwise() {
        let mut a = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let b = Mat::full(3, 3, 2.0);
        hadamard_in_place(&mut a, &b);
        assert_eq!(a[(1, 2)], 6.0);
    }

    #[test]
    fn gram_of_empty_rows_is_zero() {
        let a = Mat::zeros(0, 4);
        let g = gram(&a);
        assert_eq!((g.rows(), g.cols()), (4, 4));
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }
}
