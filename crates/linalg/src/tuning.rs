//! Centralized parallelism thresholds.
//!
//! Every hot kernel in the workspace used to carry its own ad-hoc "go
//! parallel above N elements" constant (`PAR_THRESHOLD` in `gemm`,
//! `PAR_ELEMS` in the ADMM kernels, chunk floors in the BLCO/HiCOO
//! MTTKRPs). They were all tuned relative to the same quantity — the
//! element count below which a Rayon fork/join costs more than it saves —
//! so they now derive from a single base threshold here.
//!
//! The base can be overridden with the `CSTF_PAR_THRESHOLD` environment
//! variable for bench tuning (read once per process; the first call wins).

use std::sync::OnceLock;

/// Default base threshold: minimum number of output elements before an
/// element-wise kernel goes parallel.
pub const DEFAULT_PAR_THRESHOLD: usize = 16 * 1024;

/// Parses a `CSTF_PAR_THRESHOLD` value. Returns the threshold to use plus
/// a warning message when the raw value was present but unusable (not an
/// integer, or zero) — malformed overrides must be *loud*, not silently
/// swallowed into the default.
pub fn parse_par_threshold(raw: Option<&str>) -> (usize, Option<String>) {
    match raw {
        None => (DEFAULT_PAR_THRESHOLD, None),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(v) if v > 0 => (v, None),
            Ok(_) => (
                DEFAULT_PAR_THRESHOLD,
                Some(format!(
                    "CSTF_PAR_THRESHOLD must be a positive integer, got {s:?}; \
                     using default {DEFAULT_PAR_THRESHOLD}"
                )),
            ),
            Err(_) => (
                DEFAULT_PAR_THRESHOLD,
                Some(format!(
                    "CSTF_PAR_THRESHOLD {s:?} is not an integer; \
                     using default {DEFAULT_PAR_THRESHOLD}"
                )),
            ),
        },
    }
}

/// Base parallelism threshold in elements.
///
/// Reads `CSTF_PAR_THRESHOLD` on first use; a malformed or non-positive
/// value warns on stderr and falls back to [`DEFAULT_PAR_THRESHOLD`].
/// Cached for the process lifetime.
pub fn par_threshold() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let raw = std::env::var("CSTF_PAR_THRESHOLD").ok();
        let (value, warning) = parse_par_threshold(raw.as_deref());
        if let Some(msg) = warning {
            eprintln!("cstf-linalg: {msg}");
        }
        value
    })
}

/// Threshold for element-wise map/reduce kernels over factor matrices
/// (the ADMM inner-iteration kernels). Same scale as the base.
pub fn par_elems() -> usize {
    par_threshold()
}

/// Nonzero count below which the COO MTTKRP runs the serial reference
/// kernel instead of privatized parallel accumulation.
pub fn coo_nnz_cutoff() -> usize {
    par_threshold() / 2
}

/// Nonzero count below which a CSF MTTKRP traverses its tree serially.
pub fn csf_nnz_cutoff() -> usize {
    par_threshold() / 4
}

/// Nonzero count below which the HiCOO MTTKRP processes blocks serially.
pub fn hicoo_nnz_cutoff() -> usize {
    par_threshold() / 2
}

/// Minimum nonzeros per parallel chunk of a BLCO block (below this the
/// per-chunk scratch row and CAS traffic dominate).
pub fn blco_chunk_floor() -> usize {
    par_threshold() / 4
}

/// Element threshold for parallel Gram (SYRK) accumulation.
pub fn gram_cutoff() -> usize {
    par_threshold() * 2
}

/// Element threshold for parallel norm reductions and column scaling.
pub fn norms_cutoff() -> usize {
    par_threshold() * 4
}

/// Element threshold (`rows x rank`) for solving triangular systems with
/// one Rayon task per right-hand-side row.
pub fn solve_rows_cutoff() -> usize {
    par_threshold() / 2
}

/// Nonzero count above which a CSF root fiber counts as *heavy* and is
/// processed with an intra-fiber split + ordered reduce instead of riding
/// inside a flat chunk (the fiber-length binning of Nisa et al.).
pub fn csf_heavy_fiber_cutoff() -> usize {
    par_threshold() / 8
}

/// Per-mode nonzero count above which a BLCO output row counts as *heavy*
/// and gets a privatized per-chunk accumulation slot (one CAS flush per
/// chunk) instead of per-nonzero CAS adds.
pub fn blco_heavy_row_cutoff() -> usize {
    par_threshold() / 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_historical_constants() {
        // The derived cutoffs must reproduce the constants the kernels
        // shipped with, so centralizing them changes no default behavior.
        assert_eq!(DEFAULT_PAR_THRESHOLD, 16 * 1024);
        assert_eq!(DEFAULT_PAR_THRESHOLD / 2, 8192); // COO / HiCOO / solve_rows
        assert_eq!(DEFAULT_PAR_THRESHOLD / 4, 4096); // CSF / BLCO chunk floor
        assert_eq!(DEFAULT_PAR_THRESHOLD * 2, 32 * 1024); // Gram
        assert_eq!(DEFAULT_PAR_THRESHOLD * 4, 64 * 1024); // norms
    }

    #[test]
    fn threshold_is_positive_and_stable() {
        let a = par_threshold();
        let b = par_threshold();
        assert!(a > 0);
        assert_eq!(a, b, "cached value must not change within a process");
    }

    #[test]
    fn valid_override_parses_without_warning() {
        assert_eq!(parse_par_threshold(Some("4096")), (4096, None));
        assert_eq!(parse_par_threshold(Some("  32 ")), (32, None));
        assert_eq!(parse_par_threshold(None), (DEFAULT_PAR_THRESHOLD, None));
    }

    #[test]
    fn malformed_override_warns_and_falls_back() {
        for bad in ["16k", "banana", "-5", "1.5", ""] {
            let (v, warning) = parse_par_threshold(Some(bad));
            assert_eq!(v, DEFAULT_PAR_THRESHOLD, "{bad:?} must fall back");
            let msg = warning.unwrap_or_else(|| panic!("{bad:?} must warn"));
            assert!(msg.contains("CSTF_PAR_THRESHOLD"), "{msg}");
        }
    }

    #[test]
    fn zero_override_warns_and_falls_back() {
        let (v, warning) = parse_par_threshold(Some("0"));
        assert_eq!(v, DEFAULT_PAR_THRESHOLD);
        assert!(warning.unwrap().contains("positive"));
    }

    #[test]
    fn bin_cutoffs_derive_from_base() {
        assert_eq!(csf_heavy_fiber_cutoff(), par_threshold() / 8);
        assert_eq!(blco_heavy_row_cutoff(), par_threshold() / 8);
    }
}
