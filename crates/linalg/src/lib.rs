//! # cstf-linalg
//!
//! Dense linear-algebra substrate for the cSTF-rs reproduction of
//! *"Accelerating Constrained Sparse Tensor Factorization on Massively
//! Parallel Architectures"* (ICPP '24).
//!
//! The paper's update kernels reduce to a handful of dense operations on
//! tall-and-skinny factor matrices — GEMM, SYRK/Gram, Cholesky
//! factor/solve/inverse, Frobenius norms and column normalization — which
//! cuBLAS/cuSOLVER provide on the GPU. This crate implements the same
//! operations in pure Rust, Rayon-parallel, with operation counts identical
//! to their BLAS equivalents so the `cstf-device` cost model can meter
//! them faithfully.
//!
//! ```
//! use cstf_linalg::{Mat, Cholesky, gram};
//!
//! let a = Mat::from_fn(100, 8, |i, j| ((i + j) % 5) as f64 + 1.0);
//! let mut g = gram::gram(&a); // A^T A
//! g.add_diagonal(1.0);        // diagonal loading, as in ADMM
//! let chol = Cholesky::factor(&g).expect("SPD by construction");
//! let inv = chol.inverse();   // cuADMM pre-inversion path
//! assert_eq!(inv.rows(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod cholesky;
pub mod gemm;
pub mod gram;
pub mod matrix;
pub mod norms;
pub mod scratch;
pub mod simd;
pub mod tuning;

pub use cholesky::{Cholesky, LinalgError};
pub use gemm::{gemm, gemm_row, gemm_row_sparse, gemm_tn, gemm_tn_into, matmul};
pub use gram::{
    gram, gram_accumulate_range, gram_chunk_count, gram_into, gram_mirror, hadamard_in_place,
    hadamard_of_grams, hadamard_of_grams_into,
};
pub use matrix::Mat;
pub use norms::{
    diff_norm_sq, fro_norm, fro_norm_sq, normalize_columns, normalize_columns_scratch, NormKind,
};
pub use scratch::PartialBuffers;
