//! Explicit-SIMD elementwise primitives with a bitwise-identical scalar
//! fallback.
//!
//! Every hot dense loop in the workspace — GEMM row updates, Gram (SYRK)
//! accumulation, MTTKRP Hadamard products and scatters, the fused-ADMM
//! auxiliary sweep — reduces to a handful of elementwise vector ops. This
//! module centralizes them so the kernels share one implementation, and
//! vectorizes them with portable `std::simd` `f64x4` lanes behind the
//! `simd` cargo feature (nightly-only; the feature off compiles the scalar
//! bodies alone on stable).
//!
//! **Bitwise identity.** The lane bodies vectorize only across
//! *independent output elements* — never across a reduction dimension —
//! and use separate multiply and add instructions (no FMA contraction), so
//! each output element sees exactly the same sequence of IEEE-754
//! operations as the scalar body. The SIMD and scalar paths are therefore
//! bitwise identical, which `tests/proptest_pipeline.rs` asserts across
//! formats, ranks, and ADMM variants.
//!
//! **Runtime selection.** With the feature compiled in, the backend
//! defaults to lanes and can be disabled per process with `CSTF_SIMD=0`
//! (or `off`); [`set_backend_override`] force-selects a backend for tests
//! and microbenchmarks. Without the feature only [`Backend::Scalar`]
//! exists and every knob is inert.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

#[cfg(feature = "simd")]
use std::simd::f64x4;

/// Lane width of the vectorized bodies (f64 lanes per SIMD register).
pub const LANE_WIDTH: usize = 4;

/// Which implementation family executes the primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Plain scalar loops (always available; the only backend on stable).
    Scalar,
    /// Portable `std::simd` `f64x4` bodies (requires the `simd` feature).
    Lanes,
}

impl Backend {
    /// Short label for logs and bench IDs.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Lanes => "lanes",
        }
    }
}

/// 0 = auto (env/default), 1 = force scalar, 2 = force lanes.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force a specific backend (`Some`) or return to auto selection (`None`).
///
/// Test/bench hook: process-global, so concurrent callers see the change.
/// Forcing [`Backend::Lanes`] without the `simd` feature compiled is a
/// no-op — the scalar bodies are the only code that exists.
pub fn set_backend_override(backend: Option<Backend>) {
    let v = match backend {
        None => 0,
        Some(Backend::Scalar) => 1,
        Some(Backend::Lanes) => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Whether the `simd` feature (and therefore the lane bodies) was compiled
/// in at all.
pub const fn lanes_compiled() -> bool {
    cfg!(feature = "simd")
}

/// Auto default: lanes when compiled in and `CSTF_SIMD` does not disable
/// them. Read once per process.
fn auto_lanes() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if !lanes_compiled() {
            return false;
        }
        match std::env::var("CSTF_SIMD") {
            Ok(v) => !matches!(v.trim(), "0" | "off" | "OFF" | "false"),
            Err(_) => true,
        }
    })
}

/// The backend the next primitive call will execute.
pub fn backend() -> Backend {
    let use_lanes = match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => lanes_compiled(),
        _ => auto_lanes(),
    };
    if use_lanes {
        Backend::Lanes
    } else {
        Backend::Scalar
    }
}

// Only referenced by the cfg-gated lane dispatch arms.
#[cfg_attr(not(feature = "simd"), allow(dead_code))]
#[inline(always)]
fn use_lanes() -> bool {
    // With the feature off this folds to `false` at compile time and the
    // dispatched wrappers below become direct calls to the scalar bodies.
    lanes_compiled() && backend() == Backend::Lanes
}

// ---------------------------------------------------------------------------
// acc[j] += s * x[j]
// ---------------------------------------------------------------------------

/// `acc[j] += s * x[j]` — scalar body.
#[inline]
pub fn axpy_scalar(acc: &mut [f64], x: &[f64], s: f64) {
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += s * v;
    }
}

#[cfg(feature = "simd")]
#[inline]
fn axpy_lanes(acc: &mut [f64], x: &[f64], s: f64) {
    let n = acc.len().min(x.len());
    let sv = f64x4::splat(s);
    let (ah, at) = acc[..n].split_at_mut(n - n % LANE_WIDTH);
    let (xh, xt) = x[..n].split_at(n - n % LANE_WIDTH);
    for (a, xv) in ah.chunks_exact_mut(LANE_WIDTH).zip(xh.chunks_exact(LANE_WIDTH)) {
        (f64x4::from_slice(a) + sv * f64x4::from_slice(xv)).copy_to_slice(a);
    }
    axpy_scalar(at, xt, s);
}

/// `acc[j] += s * x[j]`, dispatched to the active backend.
#[inline]
pub fn axpy(acc: &mut [f64], x: &[f64], s: f64) {
    #[cfg(feature = "simd")]
    if use_lanes() {
        return axpy_lanes(acc, x, s);
    }
    axpy_scalar(acc, x, s)
}

// ---------------------------------------------------------------------------
// acc[j] += s0 * x0[j]; acc[j] += s1 * x1[j]   (two separate adds)
// ---------------------------------------------------------------------------

/// Two stacked axpy updates per element (`acc += s0*x0`, then
/// `acc += s1*x1`) — scalar body. Keeping the adds separate (not
/// `s0*x0 + s1*x1` in one expression) preserves the exact rounding of two
/// sequential [`axpy`] calls while halving the loads/stores of `acc`.
#[inline]
pub fn axpy2_scalar(acc: &mut [f64], x0: &[f64], s0: f64, x1: &[f64], s1: f64) {
    for ((a, &v0), &v1) in acc.iter_mut().zip(x0).zip(x1) {
        *a += s0 * v0;
        *a += s1 * v1;
    }
}

#[cfg(feature = "simd")]
#[inline]
fn axpy2_lanes(acc: &mut [f64], x0: &[f64], s0: f64, x1: &[f64], s1: f64) {
    let n = acc.len().min(x0.len()).min(x1.len());
    let (s0v, s1v) = (f64x4::splat(s0), f64x4::splat(s1));
    let head = n - n % LANE_WIDTH;
    let (ah, at) = acc[..n].split_at_mut(head);
    for ((a, x0v), x1v) in ah
        .chunks_exact_mut(LANE_WIDTH)
        .zip(x0[..head].chunks_exact(LANE_WIDTH))
        .zip(x1[..head].chunks_exact(LANE_WIDTH))
    {
        let mut av = f64x4::from_slice(a);
        av += s0v * f64x4::from_slice(x0v);
        av += s1v * f64x4::from_slice(x1v);
        av.copy_to_slice(a);
    }
    axpy2_scalar(at, &x0[head..n], s0, &x1[head..n], s1);
}

/// Two stacked axpy updates, dispatched to the active backend.
#[inline]
pub fn axpy2(acc: &mut [f64], x0: &[f64], s0: f64, x1: &[f64], s1: f64) {
    #[cfg(feature = "simd")]
    if use_lanes() {
        return axpy2_lanes(acc, x0, s0, x1, s1);
    }
    axpy2_scalar(acc, x0, s0, x1, s1)
}

// ---------------------------------------------------------------------------
// out[j] *= rhs[j]   (Hadamard)
// ---------------------------------------------------------------------------

/// `out[j] *= rhs[j]` — scalar body.
#[inline]
pub fn mul_assign_scalar(out: &mut [f64], rhs: &[f64]) {
    for (o, &r) in out.iter_mut().zip(rhs) {
        *o *= r;
    }
}

#[cfg(feature = "simd")]
#[inline]
fn mul_assign_lanes(out: &mut [f64], rhs: &[f64]) {
    let n = out.len().min(rhs.len());
    let head = n - n % LANE_WIDTH;
    let (oh, ot) = out[..n].split_at_mut(head);
    for (o, rv) in oh.chunks_exact_mut(LANE_WIDTH).zip(rhs[..head].chunks_exact(LANE_WIDTH)) {
        (f64x4::from_slice(o) * f64x4::from_slice(rv)).copy_to_slice(o);
    }
    mul_assign_scalar(ot, &rhs[head..n]);
}

/// Hadamard `out[j] *= rhs[j]`, dispatched to the active backend.
#[inline]
pub fn mul_assign(out: &mut [f64], rhs: &[f64]) {
    #[cfg(feature = "simd")]
    if use_lanes() {
        return mul_assign_lanes(out, rhs);
    }
    mul_assign_scalar(out, rhs)
}

// ---------------------------------------------------------------------------
// acc[j] += x[j] * y[j]   (elementwise multiply-accumulate)
// ---------------------------------------------------------------------------

/// `acc[j] += x[j] * y[j]` — scalar body. The multiply and the add are
/// separate operations (no FMA contraction), matching the lane body.
#[inline]
pub fn mac_scalar(acc: &mut [f64], x: &[f64], y: &[f64]) {
    for (a, (&xv, &yv)) in acc.iter_mut().zip(x.iter().zip(y)) {
        *a += xv * yv;
    }
}

#[cfg(feature = "simd")]
#[inline]
fn mac_lanes(acc: &mut [f64], x: &[f64], y: &[f64]) {
    let n = acc.len().min(x.len()).min(y.len());
    let head = n - n % LANE_WIDTH;
    let (ah, at) = acc[..n].split_at_mut(head);
    for ((a, xv), yv) in ah
        .chunks_exact_mut(LANE_WIDTH)
        .zip(x[..head].chunks_exact(LANE_WIDTH))
        .zip(y[..head].chunks_exact(LANE_WIDTH))
    {
        let prod = f64x4::from_slice(xv) * f64x4::from_slice(yv);
        (f64x4::from_slice(a) + prod).copy_to_slice(a);
    }
    mac_scalar(at, &x[head..n], &y[head..n]);
}

/// Multiply-accumulate `acc[j] += x[j] * y[j]`, dispatched to the active
/// backend — the CSF upward-accumulation inner step (`acc += subtree ⊙
/// factor_row`).
#[inline]
pub fn mac(acc: &mut [f64], x: &[f64], y: &[f64]) {
    #[cfg(feature = "simd")]
    if use_lanes() {
        return mac_lanes(acc, x, y);
    }
    mac_scalar(acc, x, y)
}

// ---------------------------------------------------------------------------
// dst[j] += src[j]
// ---------------------------------------------------------------------------

/// `dst[j] += src[j]` — scalar body.
#[inline]
pub fn add_assign_scalar(dst: &mut [f64], src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(feature = "simd")]
#[inline]
fn add_assign_lanes(dst: &mut [f64], src: &[f64]) {
    let n = dst.len().min(src.len());
    let head = n - n % LANE_WIDTH;
    let (dh, dt) = dst[..n].split_at_mut(head);
    for (d, sv) in dh.chunks_exact_mut(LANE_WIDTH).zip(src[..head].chunks_exact(LANE_WIDTH)) {
        (f64x4::from_slice(d) + f64x4::from_slice(sv)).copy_to_slice(d);
    }
    add_assign_scalar(dt, &src[head..n]);
}

/// `dst[j] += src[j]`, dispatched to the active backend.
#[inline]
pub fn add_assign(dst: &mut [f64], src: &[f64]) {
    #[cfg(feature = "simd")]
    if use_lanes() {
        return add_assign_lanes(dst, src);
    }
    add_assign_scalar(dst, src)
}

// ---------------------------------------------------------------------------
// v[j] *= s
// ---------------------------------------------------------------------------

/// `v[j] *= s` — scalar body.
#[inline]
pub fn scale_scalar(v: &mut [f64], s: f64) {
    for e in v.iter_mut() {
        *e *= s;
    }
}

#[cfg(feature = "simd")]
#[inline]
fn scale_lanes(v: &mut [f64], s: f64) {
    let sv = f64x4::splat(s);
    let head = v.len() - v.len() % LANE_WIDTH;
    let (vh, vt) = v.split_at_mut(head);
    for c in vh.chunks_exact_mut(LANE_WIDTH) {
        (f64x4::from_slice(c) * sv).copy_to_slice(c);
    }
    scale_scalar(vt, s);
}

/// In-place scaling `v[j] *= s`, dispatched to the active backend.
#[inline]
pub fn scale(v: &mut [f64], s: f64) {
    #[cfg(feature = "simd")]
    if use_lanes() {
        return scale_lanes(v, s);
    }
    scale_scalar(v, s)
}

// ---------------------------------------------------------------------------
// aux[j] = m[j] + rho * (h[j] + u[j])   (fused-ADMM auxiliary)
// ---------------------------------------------------------------------------

/// `aux[j] = m[j] + rho * (h[j] + u[j])` — scalar body. The per-element
/// expression matches the multi-kernel `compute_auxiliary` map exactly.
#[inline]
pub fn fused_aux_scalar(aux: &mut [f64], m: &[f64], h: &[f64], u: &[f64], rho: f64) {
    for (a, ((&mv, &hv), &uv)) in aux.iter_mut().zip(m.iter().zip(h).zip(u)) {
        *a = mv + rho * (hv + uv);
    }
}

#[cfg(feature = "simd")]
#[inline]
fn fused_aux_lanes(aux: &mut [f64], m: &[f64], h: &[f64], u: &[f64], rho: f64) {
    let n = aux.len().min(m.len()).min(h.len()).min(u.len());
    let rv = f64x4::splat(rho);
    let head = n - n % LANE_WIDTH;
    let (ah, at) = aux[..n].split_at_mut(head);
    for (((a, mv), hv), uv) in ah
        .chunks_exact_mut(LANE_WIDTH)
        .zip(m[..head].chunks_exact(LANE_WIDTH))
        .zip(h[..head].chunks_exact(LANE_WIDTH))
        .zip(u[..head].chunks_exact(LANE_WIDTH))
    {
        let sum = f64x4::from_slice(hv) + f64x4::from_slice(uv);
        (f64x4::from_slice(mv) + rv * sum).copy_to_slice(a);
    }
    fused_aux_scalar(at, &m[head..n], &h[head..n], &u[head..n], rho);
}

/// Fused-ADMM auxiliary `aux = m + rho * (h + u)`, dispatched to the
/// active backend.
#[inline]
pub fn fused_aux(aux: &mut [f64], m: &[f64], h: &[f64], u: &[f64], rho: f64) {
    #[cfg(feature = "simd")]
    if use_lanes() {
        return fused_aux_lanes(aux, m, h, u, rho);
    }
    fused_aux_scalar(aux, m, h, u, rho)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64) / (1u64 << 31) as f64 - 0.5
            })
            .collect()
    }

    /// Runs `f` once under each backend (restoring auto afterwards) and
    /// returns both results for bitwise comparison. With the `simd` feature
    /// off both executions are the scalar body, so the assertion is trivial
    /// — the nightly `--features simd` run is where it bites.
    fn both<T>(mut f: impl FnMut() -> T) -> (T, T) {
        set_backend_override(Some(Backend::Scalar));
        let a = f();
        set_backend_override(Some(Backend::Lanes));
        let b = f();
        set_backend_override(None);
        (a, b)
    }

    #[test]
    fn axpy_matches_scalar_bitwise_all_lengths() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 65] {
            let x = vecs(n, 7);
            let base = vecs(n, 9);
            let (a, b) = both(|| {
                let mut acc = base.clone();
                axpy(&mut acc, &x, 0.3);
                acc
            });
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn axpy2_equals_two_axpy_calls_bitwise() {
        for n in [1usize, 4, 7, 33] {
            let (x0, x1) = (vecs(n, 3), vecs(n, 5));
            let mut expect = vecs(n, 11);
            let mut got = expect.clone();
            axpy_scalar(&mut expect, &x0, 1.25);
            axpy_scalar(&mut expect, &x1, -0.75);
            let (a, b) = both(|| {
                let mut acc = got.clone();
                axpy2(&mut acc, &x0, 1.25, &x1, -0.75);
                acc
            });
            assert_eq!(a, expect, "n={n}: axpy2 must round like two axpy calls");
            assert_eq!(a, b, "n={n}");
            got.clear();
        }
    }

    #[test]
    fn elementwise_primitives_match_scalar_bitwise() {
        for n in [0usize, 2, 4, 6, 13, 40] {
            let rhs = vecs(n, 17);
            let (m, h, u) = (vecs(n, 19), vecs(n, 23), vecs(n, 29));
            let (a, b) = both(|| {
                let mut out = vecs(n, 31);
                mul_assign(&mut out, &rhs);
                add_assign(&mut out, &m);
                scale(&mut out, -1.5);
                let mut aux = vec![0.0; n];
                fused_aux(&mut aux, &m, &h, &u, 0.875);
                let mut acc = vecs(n, 37);
                mac(&mut acc, &h, &u);
                (out, aux, acc)
            });
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn backend_reports_and_overrides() {
        set_backend_override(Some(Backend::Scalar));
        assert_eq!(backend(), Backend::Scalar);
        set_backend_override(Some(Backend::Lanes));
        if lanes_compiled() {
            assert_eq!(backend(), Backend::Lanes);
        } else {
            assert_eq!(backend(), Backend::Scalar, "lanes unavailable without the feature");
        }
        set_backend_override(None);
        assert!(!backend().label().is_empty());
    }
}
