//! Reusable privatization buffers for parallel reductions.
//!
//! The MTTKRP and Gram kernels privatize their accumulation: each Rayon
//! chunk owns a dense buffer, and the buffers are combined afterwards.
//! Allocating those buffers per call (and reducing them serially) is
//! exactly the per-iteration overhead the paper's fused update removes on
//! the GPU side, so [`PartialBuffers`] keeps them alive across calls —
//! grow-only, like a device scratch arena — and reduces them with a
//! parallel pairwise tree instead of a serial `O(chunks x len)` sweep.

use rayon::prelude::*;

use crate::tuning;

/// A grow-only set of per-chunk accumulation buffers.
///
/// `ensure(nchunks, len)` hands out `nchunks` zeroed buffers of `len`
/// elements, reusing prior capacity; `reduce_into` combines them into an
/// output slice with a parallel pairwise tree.
#[derive(Debug, Default)]
pub struct PartialBuffers {
    bufs: Vec<Vec<f64>>,
}

impl PartialBuffers {
    /// An empty buffer set (no allocation until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares `nchunks` buffers of `len` zeroed elements and returns
    /// them. Only grows storage; steady-state calls with stable sizes do
    /// not allocate.
    pub fn ensure(&mut self, nchunks: usize, len: usize) -> &mut [Vec<f64>] {
        if self.bufs.len() < nchunks {
            self.bufs.resize_with(nchunks, Vec::new);
        }
        for buf in &mut self.bufs[..nchunks] {
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
            buf[..len].fill(0.0);
        }
        &mut self.bufs[..nchunks]
    }

    /// The first `nchunks` buffers, for a second pass over already-ensured
    /// storage.
    pub fn chunks_mut(&mut self, nchunks: usize) -> &mut [Vec<f64>] {
        &mut self.bufs[..nchunks]
    }

    /// Adds the first `nchunks` buffers (first `len` elements each) into
    /// `out` via [`reduce_partials_into`]. `out` is accumulated into, not
    /// overwritten.
    pub fn reduce_into(&mut self, nchunks: usize, len: usize, out: &mut [f64]) {
        reduce_partials_into(&mut self.bufs[..nchunks], len, out);
    }
}

/// Pairwise-parallel tree reduction of privatized buffers into `out`.
///
/// Halves the buffer set repeatedly — each surviving buffer absorbs a
/// partner, all pairs in parallel — then adds the single survivor into
/// `out`. `O(log chunks)` parallel depth instead of the serial
/// `O(chunks x len)` sweep. Buffers are left dirty.
///
/// # Panics
/// Panics if any buffer or `out` is shorter than `len`.
pub fn reduce_partials_into(bufs: &mut [Vec<f64>], len: usize, out: &mut [f64]) {
    assert!(out.len() >= len, "reduce: output shorter than reduction length");
    if bufs.is_empty() || len == 0 {
        return;
    }
    let parallel = bufs.len() * len >= tuning::par_threshold();
    let mut live = bufs.len();
    while live > 1 {
        let half = live / 2;
        let keep_len = live - half;
        let (keep, fold) = bufs[..live].split_at_mut(keep_len);
        let dsts = &mut keep[keep_len - half..];
        if parallel {
            dsts.par_iter_mut()
                .zip(fold.par_iter())
                .for_each(|(dst, src)| add_assign(&mut dst[..len], &src[..len]));
        } else {
            for (dst, src) in dsts.iter_mut().zip(fold.iter()) {
                add_assign(&mut dst[..len], &src[..len]);
            }
        }
        live -= half;
    }
    let src = &bufs[0][..len];
    if parallel {
        out[..len].par_iter_mut().zip(src.par_iter()).for_each(|(o, &v)| *o += v);
    } else {
        add_assign(&mut out[..len], src);
    }
}

fn add_assign(dst: &mut [f64], src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

impl cstf_telemetry::MemoryFootprint for PartialBuffers {
    fn footprint(&self) -> cstf_telemetry::Footprint {
        let mut fp = cstf_telemetry::Footprint::new();
        fp.add("bufs", cstf_telemetry::nested_vec_heap_bytes(&self.bufs));
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_matches_serial_sum() {
        for nchunks in [1usize, 2, 3, 5, 8, 13] {
            let mut bufs: Vec<Vec<f64>> = (0..nchunks)
                .map(|c| (0..17).map(|i| (c * 31 + i) as f64 * 0.5).collect())
                .collect();
            let mut expected = vec![0.0f64; 17];
            for b in &bufs {
                for (e, &v) in expected.iter_mut().zip(b) {
                    *e += v;
                }
            }
            let mut out = vec![0.0f64; 17];
            reduce_partials_into(&mut bufs, 17, &mut out);
            for (o, e) in out.iter().zip(&expected) {
                assert!((o - e).abs() < 1e-12, "{nchunks} chunks: {o} vs {e}");
            }
        }
    }

    #[test]
    fn reduce_accumulates_into_out() {
        let mut bufs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let mut out = vec![10.0, 20.0];
        reduce_partials_into(&mut bufs, 2, &mut out);
        assert_eq!(out, vec![14.0, 26.0]);
    }

    #[test]
    fn ensure_zeroes_and_reuses() {
        let mut pb = PartialBuffers::new();
        {
            let bufs = pb.ensure(3, 4);
            assert_eq!(bufs.len(), 3);
            bufs[0][0] = 7.0;
        }
        let bufs = pb.ensure(2, 4);
        assert_eq!(bufs.len(), 2);
        assert_eq!(bufs[0][0], 0.0, "ensure must re-zero");
    }

    #[test]
    fn footprint_matches_capacity_sum() {
        use cstf_telemetry::MemoryFootprint;
        let mut pb = PartialBuffers::new();
        assert_eq!(pb.heap_bytes(), 0, "fresh buffers own nothing");
        pb.ensure(3, 16);
        let spine = (pb.bufs.capacity() * std::mem::size_of::<Vec<f64>>()) as u64;
        let inners: u64 =
            pb.bufs.iter().map(|b| (b.capacity() * std::mem::size_of::<f64>()) as u64).sum();
        assert_eq!(pb.heap_bytes(), spine + inners);
        assert_eq!(pb.footprint().get("bufs"), spine + inners);
    }

    #[test]
    fn reduce_respects_len_under_capacity() {
        let mut pb = PartialBuffers::new();
        pb.ensure(2, 8);
        // Shrink the active length; stale capacity beyond `len` must not leak.
        let bufs = pb.ensure(2, 3);
        bufs[0][..3].copy_from_slice(&[1.0, 2.0, 3.0]);
        bufs[1][..3].copy_from_slice(&[4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 3];
        pb.reduce_into(2, 3, &mut out);
        assert_eq!(out, vec![5.0, 7.0, 9.0]);
    }
}
