//! Property-based tests for the dense linear-algebra substrate.

use cstf_linalg::{gemm_tn, gram, matmul, normalize_columns, Cholesky, Mat, NormKind};
use proptest::prelude::*;

/// Strategy: a rows x cols matrix with bounded entries.
fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v))
}

fn approx(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A B) C == A (B C) — associativity of matmul.
    #[test]
    fn matmul_associative(a in mat_strategy(4, 3), b in mat_strategy(3, 5), c in mat_strategy(5, 2)) {
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        for i in 0..4 {
            for j in 0..2 {
                prop_assert!(approx(left[(i, j)], right[(i, j)], 1e-9));
            }
        }
    }

    /// gram(A) == A^T A computed via transpose + matmul.
    #[test]
    fn gram_equals_transpose_product(a in mat_strategy(17, 6)) {
        let g = gram::gram(&a);
        let e = matmul(&a.transpose(), &a);
        for i in 0..6 {
            for j in 0..6 {
                prop_assert!(approx(g[(i, j)], e[(i, j)], 1e-10));
            }
        }
    }

    /// gemm_tn(A, B) == A^T B.
    #[test]
    fn gemm_tn_equals_transpose_product(a in mat_strategy(11, 4), b in mat_strategy(11, 3)) {
        let g = gemm_tn(&a, &b);
        let e = matmul(&a.transpose(), &b);
        for i in 0..4 {
            for j in 0..3 {
                prop_assert!(approx(g[(i, j)], e[(i, j)], 1e-10));
            }
        }
    }

    /// Cholesky solve inverts multiplication: solve(A, A x) == x for SPD A.
    #[test]
    fn cholesky_solve_roundtrip(b in mat_strategy(9, 5), x in proptest::collection::vec(-5.0f64..5.0, 5)) {
        let mut a = gram::gram(&b);
        a.add_diagonal(5.0 + 1e-3); // guarantee SPD
        let ch = Cholesky::factor(&a).unwrap();
        let mut rhs = vec![0.0; 5];
        for i in 0..5 {
            rhs[i] = (0..5).map(|j| a[(i, j)] * x[j]).sum();
        }
        ch.solve_in_place(&mut rhs);
        for (got, want) in rhs.iter().zip(&x) {
            prop_assert!(approx(*got, *want, 1e-7));
        }
    }

    /// Explicit inverse agrees with row solves (the PI == TRSM equivalence
    /// that cuADMM's pre-inversion depends on).
    #[test]
    fn preinversion_matches_solve(b in mat_strategy(8, 4), rhs in mat_strategy(6, 4)) {
        let mut a = gram::gram(&b);
        a.add_diagonal(4.0 + 1e-3);
        let ch = Cholesky::factor(&a).unwrap();
        let via_inv = matmul(&rhs, &ch.inverse());
        let mut via_solve = rhs.clone();
        ch.solve_rows(&mut via_solve);
        for i in 0..6 {
            for j in 0..4 {
                prop_assert!(approx(via_inv[(i, j)], via_solve[(i, j)], 1e-7));
            }
        }
    }

    /// Normalization is lossless: lambda_j * column_j reconstructs A.
    #[test]
    fn normalization_is_lossless(a in mat_strategy(12, 4)) {
        let orig = a.clone();
        let mut m = a;
        let mut lambda = vec![1.0; 4];
        normalize_columns(&mut m, &mut lambda, NormKind::Two);
        prop_assert!(m.all_finite());
        for i in 0..12 {
            for j in 0..4 {
                prop_assert!(approx(m[(i, j)] * lambda[j], orig[(i, j)], 1e-10));
            }
        }
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(a in mat_strategy(7, 9)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }
}
